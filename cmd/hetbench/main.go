// Command hetbench regenerates the paper's evaluation artifacts: the Table 1
// comparison, the figure-style sweeps E2..E16, and the heterogeneous-profile
// sweeps E17..E19 (see DESIGN.md §2/§6 and EXPERIMENTS.md).
//
// Usage:
//
//	hetbench                    # run everything, text tables to stdout
//	hetbench -exp table1,e5     # selected experiments
//	hetbench -exp e2 -csv       # CSV output (for plotting)
//	hetbench -json -out bench   # machine-readable BENCH_<exp>.json artifacts
//	hetbench -seed 7            # reseed the workloads
//	hetbench -exp table1 -profile straggler:2:8
//	                            # rebuild the clusters under a machine
//	                            # profile (uniform, zipf:S[:FLOOR],
//	                            # bimodal:SLOWFRAC:FACTOR, straggler:N:SLOW)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetmpc/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment ids (table1, e2..e19) or 'all'")
		seedFlag    = flag.Uint64("seed", 7, "workload seed")
		csvFlag     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonFlag    = flag.Bool("json", false, "write BENCH_<exp>.json artifacts (rounds, words, makespan, wall ns, allocs) instead of text tables")
		outFlag     = flag.String("out", ".", "output directory for -json artifacts")
		listFlag    = flag.Bool("list", false, "list experiment ids and exit")
		profileFlag = flag.String("profile", "", "machine profile applied to every experiment cluster: uniform, zipf:S[:FLOOR], bimodal:SLOWFRAC:FACTOR, straggler:N:SLOWDOWN")
	)
	flag.Parse()

	if err := exp.SetProfile(*profileFlag); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	all := exp.All()
	if *listFlag {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return 0
	}
	var ids []string
	if *expFlag == "all" {
		ids = exp.Order()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "hetbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		if *jsonFlag {
			art, err := exp.Run(id, *seedFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
				return 1
			}
			path, err := art.WriteFile(*outFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
				return 1
			}
			fmt.Printf("%s\trounds=%d words=%d makespan=%.3g wall=%dms allocs=%d\n",
				path, art.Model.Rounds, art.Model.TotalWords, art.Model.Makespan, art.WallNS/1e6, art.Allocs)
			continue
		}
		table, err := all[id](*seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
			return 1
		}
		if *csvFlag {
			table.RenderCSV(os.Stdout)
		} else {
			table.Render(os.Stdout)
		}
	}
	return 0
}
