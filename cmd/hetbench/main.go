// Command hetbench regenerates the paper's evaluation artifacts: the Table 1
// comparison, the figure-style sweeps E2..E16, the heterogeneous-profile
// sweeps E17..E19, the fault-injection sweeps E20..E22, and the
// placement-policy sweeps E23..E25 (see DESIGN.md §2/§6/§7/§8 and
// EXPERIMENTS.md).
//
// Usage:
//
//	hetbench                    # run everything, text tables to stdout
//	hetbench -exp table1,e5     # selected experiments
//	hetbench -exp e2 -csv       # CSV output (for plotting)
//	hetbench -json -out bench   # machine-readable BENCH_<exp>.json artifacts
//	hetbench -seed 7            # reseed the workloads
//	hetbench -exp table1 -profile straggler:2:8
//	                            # rebuild the clusters under a machine
//	                            # profile (uniform, zipf:S[:FLOOR],
//	                            # bimodal:SLOWFRAC:FACTOR, straggler:N:SLOW,
//	                            # custom:I=SPEED,...)
//	hetbench -exp table1 -faults ckpt:8+rate:0.002
//	                            # rebuild the clusters under a fault plan
//	                            # (ckpt:I, crash:R:M[:K], rate:P[:SEED],
//	                            # slow:M:FROM:TO:FACTOR, restart:K, joined
//	                            # by +); artifacts gain crashes /
//	                            # recovery_rounds / replication_words
//	hetbench -exp e18 -placement throughput
//	                            # rebuild the clusters under a placement
//	                            # policy (cap, throughput, speculate:R);
//	                            # speculative traffic lands in
//	                            # speculation_words
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetmpc/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag       = flag.String("exp", "all", "comma-separated experiment ids (table1, e2..e25) or 'all'")
		seedFlag      = flag.Uint64("seed", 7, "workload seed")
		csvFlag       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonFlag      = flag.Bool("json", false, "write BENCH_<exp>.json artifacts (rounds, words, makespan, wall ns, allocs) instead of text tables")
		outFlag       = flag.String("out", ".", "output directory for -json artifacts")
		listFlag      = flag.Bool("list", false, "list experiment ids and exit")
		profileFlag   = flag.String("profile", "", "machine profile applied to every experiment cluster: uniform, zipf:S[:FLOOR], bimodal:SLOWFRAC:FACTOR, straggler:N:SLOWDOWN, custom:I=SPEED,...")
		faultsFlag    = flag.String("faults", "", "fault plan applied to every experiment cluster: +-joined ckpt:I, crash:R:M[:K], rate:P[:SEED], slow:M:FROM:TO:FACTOR, restart:K (e.g. ckpt:8+rate:0.002)")
		placementFlag = flag.String("placement", "", "placement policy applied to every experiment cluster: cap, throughput, speculate:R")
	)
	flag.Parse()

	if err := exp.SetProfile(*profileFlag); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	if err := exp.SetFaults(*faultsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	if err := exp.SetPlacement(*placementFlag); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	all := exp.All()
	if *listFlag {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return 0
	}
	var ids []string
	if *expFlag == "all" {
		ids = exp.Order()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "hetbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		if *jsonFlag {
			art, err := exp.Run(id, *seedFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
				return 1
			}
			path, err := art.WriteFile(*outFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
				return 1
			}
			line := fmt.Sprintf("%s\trounds=%d words=%d makespan=%.3g wall=%dms allocs=%d",
				path, art.Model.Rounds, art.Model.TotalWords, art.Model.Makespan, art.WallNS/1e6, art.Allocs)
			if art.Model.Crashes > 0 || art.Model.Checkpoints > 0 {
				line += fmt.Sprintf(" crashes=%d recovery-rounds=%d repl-words=%d",
					art.Model.Crashes, art.Model.RecoveryRounds, art.Model.ReplicationWords)
			}
			if art.Model.SpeculationWords > 0 {
				line += fmt.Sprintf(" spec-words=%d", art.Model.SpeculationWords)
			}
			fmt.Println(line)
			continue
		}
		table, err := all[id](*seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
			return 1
		}
		if *csvFlag {
			table.RenderCSV(os.Stdout)
		} else {
			table.Render(os.Stdout)
		}
	}
	return 0
}
