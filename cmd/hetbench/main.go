// Command hetbench regenerates the paper's evaluation artifacts: the Table 1
// comparison, the figure-style sweeps E2..E16, the heterogeneous-profile
// sweeps E17..E19, the fault-injection sweeps E20..E22, the placement-policy
// sweeps E23..E25, the trace/critical-path sweeps E26..E28, the
// adaptive-placement sweeps E29..E31, the wire-transport sweep E32, and the
// kernel scale sweep E33 (see DESIGN.md §2/§6/§7/§8/§9/§10/§11/§14 and
// EXPERIMENTS.md).
//
// Usage:
//
//	hetbench                    # run everything, text tables to stdout
//	hetbench -exp table1,e5     # selected experiments
//	hetbench -exp e2 -csv       # CSV output (for plotting)
//	hetbench -json -out bench   # machine-readable BENCH_<exp>.json artifacts
//	hetbench -seed 7            # reseed the workloads
//	hetbench -exp table1 -profile straggler:2:8
//	                            # rebuild the clusters under a machine
//	                            # profile (uniform, zipf:S[:FLOOR],
//	                            # bimodal:SLOWFRAC:FACTOR, straggler:N:SLOW,
//	                            # custom:I=SPEED,...)
//	hetbench -exp table1 -faults ckpt:8+rate:0.002
//	                            # rebuild the clusters under a fault plan
//	                            # (ckpt:I, crash:R:M[:K], rate:P[:SEED],
//	                            # slow:M:FROM:TO:FACTOR, restart:K, joined
//	                            # by +); artifacts gain crashes /
//	                            # recovery_rounds / replication_words
//	hetbench -exp e18 -placement throughput
//	                            # rebuild the clusters under a placement
//	                            # policy (cap, throughput, speculate:R,
//	                            # adaptive[:ALPHA]); speculative traffic
//	                            # lands in speculation_words; adaptive
//	                            # re-estimates speeds online and re-splits
//	                            # at round boundaries
//	hetbench -exp e32 -transport tcp
//	                            # rebuild the clusters on a real Exchange
//	                            # transport (inproc, pipe, tcp); artifacts
//	                            # gain wire_bytes (measured frame bytes)
//	                            # while every modeled number stays
//	                            # bit-identical — the conformance contract
//	hetbench -exp table1 -trace # collect the per-round trace: text mode
//	                            # appends the phase summary table, -json
//	                            # artifacts gain the "trace" field (phase
//	                            # makespan shares, bottleneck machines);
//	                            # the measured stats are unchanged
//	hetbench -exp e14 -metrics m.json -traceout t.json
//	                            # observability outputs (DESIGN.md §12), one
//	                            # experiment at a time: the run-wide engine
//	                            # metrics snapshot ('-' = stdout; -json
//	                            # artifacts also embed it in the "metrics"
//	                            # field) and the concatenated per-round trace
//	                            # as Perfetto trace-event JSON (.jsonl =
//	                            # streaming JSONL); -traceout implies -trace
//	hetbench -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	                            # pprof captures of the whole run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetmpc/internal/cliflags"
	"hetmpc/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids (table1, e2..e33) or 'all'")
		seedFlag = flag.Uint64("seed", 7, "workload seed")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonFlag = flag.Bool("json", false, "write BENCH_<exp>.json artifacts (rounds, words, makespan, wall ns, allocs) instead of text tables")
		outFlag  = flag.String("out", ".", "output directory for -json artifacts")
		listFlag = flag.Bool("list", false, "list experiment ids and exit")
		model    = cliflags.Register(flag.CommandLine, " applied to every experiment cluster")
		obs      = cliflags.RegisterObs(flag.CommandLine)
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "hetbench:", err)
		}
	}()

	if err := exp.SetProfile(model.Profile); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	if err := exp.SetFaults(model.Faults); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	if err := exp.SetPlacement(model.Placement); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	if err := exp.SetTransport(model.Transport); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		return 2
	}
	exp.SetTrace(obs.Tracing(model))
	exp.SetMetrics(obs.Metrics != "")
	all := exp.All()
	if *listFlag {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return 0
	}
	var ids []string
	if *expFlag == "all" {
		ids = exp.Order()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "hetbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}
	if (obs.Metrics != "" || obs.TraceOut != "") && len(ids) != 1 {
		fmt.Fprintln(os.Stderr, "hetbench: -metrics and -traceout write one file; select exactly one experiment with -exp")
		return 2
	}
	for _, id := range ids {
		if *jsonFlag || obs.Tracing(model) || obs.Metrics != "" {
			// Artifact path: -json, and any observability output (-trace,
			// -traceout, -metrics) that needs the run-wide collection
			// exp.RunFull does.
			art, rounds, err := exp.RunFull(id, *seedFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
				return 1
			}
			if obs.TraceOut != "" {
				if err := cliflags.WriteTraceFile(obs.TraceOut, rounds); err != nil {
					fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
					return 1
				}
			}
			if obs.Metrics != "" {
				if err := cliflags.WriteMetricsFile(obs.Metrics, art.Metrics); err != nil {
					fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
					return 1
				}
			}
			if !*jsonFlag {
				render(art.Table, *csvFlag)
				if model.Trace && art.Trace != nil {
					render(art.Trace.Table(fmt.Sprintf("%s — trace phase summary (%d clusters, %d rounds)",
						id, art.Trace.Clusters, art.Trace.Rounds)), *csvFlag)
				}
				continue
			}
			path, err := art.WriteFile(*outFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
				return 1
			}
			line := fmt.Sprintf("%s\trounds=%d words=%d makespan=%.3g wall=%dms allocs=%d",
				path, art.Model.Rounds, art.Model.TotalWords, art.Model.Makespan, art.WallNS/1e6, art.Allocs)
			if art.NsPerOp > 0 {
				line += fmt.Sprintf(" ns/op=%d allocs/op=%d B/op=%d",
					art.NsPerOp, art.AllocsPerOp, art.AllocBytesPerOp)
			}
			if art.Model.Crashes > 0 || art.Model.Checkpoints > 0 {
				line += fmt.Sprintf(" crashes=%d recovery-rounds=%d repl-words=%d",
					art.Model.Crashes, art.Model.RecoveryRounds, art.Model.ReplicationWords)
			}
			if art.Model.SpeculationWords > 0 {
				line += fmt.Sprintf(" spec-words=%d", art.Model.SpeculationWords)
			}
			if art.Model.WireBytes > 0 {
				line += fmt.Sprintf(" wire-bytes=%d", art.Model.WireBytes)
			}
			if art.Trace != nil {
				line += fmt.Sprintf(" trace-phases=%d", len(art.Trace.Phases))
			}
			fmt.Println(line)
			continue
		}
		table, err := all[id](*seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetbench: %s: %v\n", id, err)
			return 1
		}
		render(table, *csvFlag)
	}
	return 0
}

func render(t *exp.Table, csv bool) {
	if csv {
		t.RenderCSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
}
