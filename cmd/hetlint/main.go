// Command hetlint runs the repo's static-invariant analyzers (DESIGN.md §13)
// over packages of this module:
//
//	go run ./cmd/hetlint ./...
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/usage error. Every
// diagnostic is either a bug to fix or a site to justify with a
// //hetlint:<key> comment (see internal/lint). -vet additionally runs a
// curated `go vet` pass set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/build"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"hetmpc/internal/lint"
)

// vetPasses is the curated go vet subset that complements hetlint: the
// passes whose findings are always bugs in this codebase.
var vetPasses = []string{
	"atomic", "bools", "copylocks", "loopclosure",
	"lostcancel", "nilfunc", "printf", "unreachable",
}

func main() { os.Exit(run()) }

func run() int {
	var (
		list = flag.Bool("list", false, "print the analyzer catalogue and exit")
		vet  = flag.Bool("vet", false, "also run the curated go vet passes")
	)
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			scope := "all packages"
			if a.EngineOnly {
				scope = "engine packages"
			}
			fmt.Printf("%-10s [%s, //hetlint:%s] %s\n", a.Name, scope, a.Key, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return fail(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return fail(err)
	}

	count := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			var ng *build.NoGoError
			if errors.As(err, &ng) {
				continue // directory with only build-tag-excluded files
			}
			return fail(err)
		}
		for _, d := range lint.RunPackage(pkg, lint.IsEnginePath(path), lint.All()) {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			count++
		}
	}

	status := 0
	if count > 0 {
		fmt.Fprintf(os.Stderr, "hetlint: %d diagnostic(s); fix or justify with //hetlint:<key> comments\n", count)
		status = 1
	}
	if *vet && !runVet(patterns) {
		status = 1
	}
	return status
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "hetlint:", err)
	return 2
}

// runVet shells out to the toolchain's vet with the curated pass set.
func runVet(patterns []string) bool {
	args := []string{"vet"}
	for _, p := range vetPasses {
		args = append(args, "-"+p)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "hetlint: go vet:", err)
		return false
	}
	return true
}
