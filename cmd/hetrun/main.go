// Command hetrun executes one heterogeneous-MPC algorithm on one graph and
// reports the output quality and the measured model metrics (rounds,
// messages, words).
//
// Usage:
//
//	hetrun -alg mst -n 1024 -m 8192
//	hetrun -alg spanner -k 4 -gen connected -n 512 -m 6144
//	hetrun -alg matching -gen hubs -n 600
//	hetrun -alg connectivity -input graph.txt
//	hetrun -alg mst -f 0.5            # superlinear large machine
//	hetrun -alg baseline-mst          # sublinear regime (no large machine)
//	hetrun -alg mst -profile straggler:2:8
//	                                  # heterogeneous machine profile; the
//	                                  # model line reports the simulated
//	                                  # makespan under it
//	hetrun -alg mst -faults ckpt:8+rate:0.002
//	                                  # fault injection + recovery: crashes,
//	                                  # recovery rounds and replication words
//	                                  # join the model line; the output is
//	                                  # still validated exact
//	hetrun -alg mst -profile straggler:2:8 -placement speculate:2
//	                                  # placement policy (cap, throughput,
//	                                  # speculate:R, adaptive[:ALPHA]): work
//	                                  # splits follow the policy, speculative
//	                                  # copies land in spec-words on the
//	                                  # model line; adaptive re-splits at
//	                                  # round boundaries from measured speeds
//	hetrun -alg mst -trace            # per-round trace: appends the phase
//	                                  # summary (makespan share + bottleneck
//	                                  # machine per phase span); the model
//	                                  # line is unchanged — tracing observes
//	hetrun -alg mst -transport tcp    # run the Exchange deliver phase over a
//	                                  # real transport (inproc, pipe, tcp);
//	                                  # the model line gains wire-bytes, the
//	                                  # measured frame bytes, while every
//	                                  # modeled number stays bit-identical
//	                                  # (DESIGN.md §11)
//	hetrun -alg mst -metrics m.json -traceout t.json
//	                                  # observability outputs (DESIGN.md §12):
//	                                  # the engine metrics snapshot as JSON
//	                                  # ('-' = stdout) and the per-round trace
//	                                  # as Perfetto-loadable trace-event JSON
//	                                  # (.jsonl extension = streaming JSONL);
//	                                  # -traceout implies -trace collection
//	hetrun -alg mst -cpuprofile cpu.pprof -memprofile mem.pprof
//	                                  # pprof captures; inspect with
//	                                  # go tool pprof cpu.pprof
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hetmpc"
	"hetmpc/internal/cliflags"
	"hetmpc/internal/graph"
	"hetmpc/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		alg   = flag.String("alg", "mst", "algorithm: mst, spanner, apsp, matching, matching-filter, connectivity, approx-mst, mincut, approx-mincut, mis, coloring, 2v1, baseline-mst, baseline-cc, baseline-mis, baseline-coloring, baseline-matching")
		n     = flag.Int("n", 512, "vertices (generated workloads)")
		m     = flag.Int("m", 4096, "edges (generated workloads)")
		gen   = flag.String("gen", "gnm", "generator: gnm, connected, cycles, cycles2, hubs, grid, star")
		input = flag.String("input", "", "read the graph from a file instead of generating")
		seed  = flag.Uint64("seed", 1, "seed for the workload and the cluster")
		gamma = flag.Float64("gamma", 0.5, "small-machine exponent γ")
		f     = flag.Float64("f", 0, "large-machine extra exponent f")
		k     = flag.Int("k", 4, "spanner parameter k")
		eps   = flag.Float64("eps", 0.25, "approximation parameter ε")
		model = cliflags.Register(flag.CommandLine, "")
		obs   = cliflags.RegisterObs(flag.CommandLine)
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "hetrun:", err)
		}
	}()

	g, err := makeGraph(*input, *gen, *n, *m, *seed, *alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	noLarge := len(*alg) > 9 && (*alg)[:9] == "baseline-"
	cfg := hetmpc.Config{
		N: g.N, M: g.M(), Gamma: *gamma, F: *f, Seed: *seed, NoLarge: noLarge,
	}
	cfg.Profile, err = hetmpc.ParseProfile(model.Profile, cfg.DeriveK())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	cfg.Faults, err = hetmpc.ParseFaultPlan(model.Faults, cfg.DeriveK())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	cfg.Placement, err = hetmpc.ParsePlacement(model.Placement)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	cfg.Transport, err = hetmpc.ParseTransport(model.Transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	if obs.Tracing(model) {
		cfg.Trace = hetmpc.NewTrace()
	}
	if obs.Metrics != "" {
		cfg.Metrics = hetmpc.NewMetrics()
	}
	c, err := hetmpc.NewCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 2
	}
	defer c.Close()
	fmt.Printf("graph: n=%d m=%d Δ=%d avg-deg=%.1f | cluster: K=%d small-cap=%d large-cap=%d",
		g.N, g.M(), g.MaxDegree(), g.AvgDegree(), c.K(), c.SmallCap(), c.LargeCap())
	if p := c.Profile(); p != nil {
		fmt.Printf(" profile=%s min-cap=%d", p.Name, c.MinSmallCap())
	}
	if p := c.Faults(); p != nil {
		fmt.Printf(" faults=%s", p.Name)
	}
	if p := c.Placement(); p.Name() != "cap" {
		fmt.Printf(" placement=%s", p.Name())
		if got := c.SpeculationR(); got != p.Speculation() {
			// The dial was clamped to K/2: report what actually runs.
			fmt.Printf(" (effective speculate:%d)", got)
		}
	}
	if name := c.TransportName(); name != "inproc" {
		fmt.Printf(" transport=%s", name)
	}
	fmt.Println()

	if err := dispatch(c, g, *alg, *k, *eps); err != nil {
		fmt.Fprintln(os.Stderr, "hetrun:", err)
		return 1
	}
	st := c.Stats()
	fmt.Printf("model: rounds=%d messages=%d words=%d max-send=%d max-recv=%d makespan=%.4g imbalance=%.2f",
		st.Rounds, st.Messages, st.TotalWords, st.MaxSendWords, st.MaxRecvWords, st.Makespan, c.BusyImbalance())
	if c.FaultsActive() {
		fmt.Printf(" crashes=%d recovery-rounds=%d checkpoints=%d repl-words=%d",
			st.Crashes, st.RecoveryRounds, st.Checkpoints, st.ReplicationWords)
	}
	if st.SpeculationWords > 0 {
		fmt.Printf(" spec-words=%d", st.SpeculationWords)
	}
	if st.WireBytes > 0 {
		fmt.Printf(" wire-bytes=%d", st.WireBytes)
	}
	fmt.Println()
	if tr := c.Trace(); tr != nil {
		if model.Trace {
			printTrace(tr, st)
		}
		if obs.TraceOut != "" {
			if err := cliflags.WriteTraceFile(obs.TraceOut, tr.Rounds()); err != nil {
				fmt.Fprintln(os.Stderr, "hetrun:", err)
				return 1
			}
		}
	}
	if obs.Metrics != "" {
		if err := cliflags.WriteMetricsFile(obs.Metrics, c.Metrics().Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "hetrun:", err)
			return 1
		}
	}
	return 0
}

// printTrace renders the phase-level critical-path summary of a -trace run:
// one line per phase path with its makespan share and bottleneck machine.
// The footer re-states the conservation contract the trace satisfies.
func printTrace(tr *hetmpc.Trace, st hetmpc.ClusterStats) {
	s := hetmpc.SummarizeTrace(tr.Rounds())
	fmt.Printf("trace: %d records, %d exchange rounds, %d phases\n", tr.Len(), s.Rounds, len(s.Phases))
	fmt.Printf("  %-44s %7s %10s %10s %6s  %s\n", "phase", "rounds", "words", "makespan", "share", "bottleneck")
	for _, p := range s.Phases {
		name := p.Phase
		if name == "" {
			name = "(untagged)"
		}
		fmt.Printf("  %-44s %7d %10d %10.4g %5.1f%%  %s (%.0f%% of phase busy)\n",
			name, p.Rounds, p.Words, p.Makespan, 100*p.Share, hetmpc.TraceMachineName(p.Top), 100*p.TopShare)
	}
	fmt.Printf("  conservation: trace makespan %.6g == model %.6g, trace words %d == model %d\n",
		s.Makespan, st.Makespan, s.Words, st.TotalWords)
}

func makeGraph(input, gen string, n, m int, seed uint64, alg string) (*hetmpc.Graph, error) {
	if input != "" {
		fh, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		// Accept both graph formats: the binary shard stream (graphgen -bin)
		// is sniffed by its block magic, anything else is the text format.
		br := bufio.NewReader(fh)
		if wire.SniffBlock(br) {
			return wire.ReadGraph(br)
		}
		return graph.Read(br)
	}
	weighted := alg == "mst" || alg == "baseline-mst" || alg == "approx-mst" || alg == "approx-mincut"
	switch gen {
	case "gnm":
		if weighted {
			return hetmpc.GNMWeighted(n, m, seed), nil
		}
		return hetmpc.GNM(n, m, seed), nil
	case "connected":
		return hetmpc.ConnectedGNM(n, m, seed, weighted), nil
	case "cycles":
		return hetmpc.Cycles(n, 1, seed), nil
	case "cycles2":
		return hetmpc.Cycles(n, 2, seed), nil
	case "hubs":
		return hetmpc.PlantedHubs(n, 4, 4, n/2, seed), nil
	case "grid":
		r := 1
		for r*r < n {
			r++
		}
		return hetmpc.Grid(r, r), nil
	case "star":
		return hetmpc.Star(n), nil
	}
	return nil, fmt.Errorf("unknown generator %q", gen)
}

func dispatch(c *hetmpc.Cluster, g *hetmpc.Graph, alg string, k int, eps float64) error {
	switch alg {
	case "mst":
		r, err := hetmpc.MST(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMST(g, r.Edges); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("MST: weight=%d edges=%d boruvka-phases=%d sample-tries=%d (validated exact)\n",
			r.Weight, len(r.Edges), r.BoruvkaPhases, r.SampleTries)
	case "spanner":
		r, err := hetmpc.Spanner(c, g, k)
		if err != nil {
			return err
		}
		h := hetmpc.NewGraph(g.N, r.Edges, false)
		if err := hetmpc.CheckSpanner(g, h, r.Stretch, 4, 9); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("spanner: k=%d stretch<=%d edges=%d of %d (validated on sampled pairs)\n",
			k, r.Stretch, len(r.Edges), g.M())
	case "apsp":
		o, err := hetmpc.BuildAPSPOracle(c, g)
		if err != nil {
			return err
		}
		fmt.Printf("APSP oracle: spanner edges=%d stretch<=%d d(0,%d)=%d\n",
			o.Spanner.M(), o.Stretch, g.N-1, o.Dist(0, g.N-1))
	case "matching":
		r, err := hetmpc.MaximalMatching(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMatching(g, r.Edges, true); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("matching: edges=%d phase1-iters=%d (validated maximal)\n", len(r.Edges), r.Phase1Iters)
	case "matching-filter":
		r, err := hetmpc.MatchingFiltering(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMatching(g, r.Edges, true); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("matching (filtering): edges=%d filter-iters=%d (validated maximal)\n", len(r.Edges), r.FilterIters)
	case "connectivity":
		r, err := hetmpc.Connectivity(c, g)
		if err != nil {
			return err
		}
		_, want := hetmpc.Components(g)
		if r.Components != want {
			return fmt.Errorf("validation: %d components, want %d", r.Components, want)
		}
		fmt.Printf("connectivity: components=%d phases=%d (validated exact)\n", r.Components, r.Phases)
	case "approx-mst":
		r, err := hetmpc.ApproxMSTWeight(c, g, eps)
		if err != nil {
			return err
		}
		_, exact := hetmpc.KruskalMSF(g)
		fmt.Printf("approx MST: estimate=%d exact=%d thresholds=%d\n", r.Estimate, exact, r.Thresholds)
	case "mincut":
		r, err := hetmpc.MinCutUnweighted(c, g)
		if err != nil {
			return err
		}
		fmt.Printf("min cut: value=%d trials=%d\n", r.Value, r.Trials)
	case "approx-mincut":
		r, err := hetmpc.ApproxMinCut(c, g, eps)
		if err != nil {
			return err
		}
		fmt.Printf("approx min cut: value=%d guesses=%d\n", r.Value, r.Trials)
	case "mis":
		r, err := hetmpc.MIS(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMIS(g, r.Set); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("MIS: size=%d iterations=%d (validated)\n", len(r.Set), r.Iterations)
	case "coloring":
		r, err := hetmpc.Coloring(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckColoring(g, r.Colors, r.MaxColor); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("coloring: palette=%d conflict-edges=%d retries=%d (validated proper)\n",
			r.MaxColor+1, r.ConflictEdges, r.Retries)
	case "2v1":
		r, err := hetmpc.TwoVsOneCycle(c, g)
		if err != nil {
			return err
		}
		fmt.Printf("2-vs-1 cycle: cycles=%d\n", r.Cycles)
	case "baseline-mst":
		r, err := hetmpc.BaselineMST(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMST(g, r.Edges); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("baseline MST: weight=%d phases=%d (validated exact)\n", r.Weight, r.Phases)
	case "baseline-cc":
		r, err := hetmpc.BaselineConnectivity(c, g)
		if err != nil {
			return err
		}
		fmt.Printf("baseline connectivity: components=%d phases=%d\n", r.Components, r.Phases)
	case "baseline-mis":
		r, err := hetmpc.BaselineMIS(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMIS(g, r.Set); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("baseline MIS (Luby): size=%d rounds=%d (validated)\n", len(r.Set), r.Rounds)
	case "baseline-coloring":
		r, err := hetmpc.BaselineColoring(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckColoring(g, r.Colors, r.MaxColor); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("baseline coloring: palette=%d trials=%d (validated proper)\n", r.MaxColor+1, r.Rounds)
	case "baseline-matching":
		match, peel, err := hetmpc.BaselineMatching(c, g)
		if err != nil {
			return err
		}
		if err := hetmpc.CheckMatching(g, match, true); err != nil {
			return fmt.Errorf("validation: %w", err)
		}
		fmt.Printf("baseline matching: edges=%d peel-iters=%d (validated maximal)\n", len(match), peel.Iterations)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	return nil
}
