// Command graphgen writes workload graphs in the repository's text format
// or, with -bin, the binary shard-block format (DESIGN.md §11). Both are
// read back by cmd/hetrun -input, which sniffs the format.
//
// Usage:
//
//	graphgen -gen gnm -n 1024 -m 8192 -weighted -o g.txt
//	graphgen -gen cycles2 -n 4096 > two-cycles.txt
//	graphgen -gen gnm -n 1024 -m 8192 -bin -o g.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetmpc"
	"hetmpc/internal/graph"
	"hetmpc/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gen      = flag.String("gen", "gnm", "generator: gnm, connected, cycles, cycles2, hubs, cut, grid, star, complete")
		n        = flag.Int("n", 1024, "vertices")
		m        = flag.Int("m", 8192, "edges (where applicable)")
		seed     = flag.Uint64("seed", 1, "seed")
		weighted = flag.Bool("weighted", false, "assign unique integer weights")
		bin      = flag.Bool("bin", false, "write the binary shard-block format (16 bytes/edge) instead of text")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *hetmpc.Graph
	switch *gen {
	case "gnm":
		if *weighted {
			g = hetmpc.GNMWeighted(*n, *m, *seed)
		} else {
			g = hetmpc.GNM(*n, *m, *seed)
		}
	case "connected":
		g = hetmpc.ConnectedGNM(*n, *m, *seed, *weighted)
	case "cycles":
		g = hetmpc.Cycles(*n, 1, *seed)
	case "cycles2":
		g = hetmpc.Cycles(*n, 2, *seed)
	case "hubs":
		g = hetmpc.PlantedHubs(*n, 4, 4, *n/2, *seed)
	case "cut":
		g = hetmpc.PlantedCut(*n, *m/2, 3, *seed, *weighted)
	case "grid":
		r := 1
		for r*r < *n {
			r++
		}
		g = hetmpc.Grid(r, r)
	case "star":
		g = hetmpc.Star(*n)
	case "complete":
		g = hetmpc.Complete(*n, *weighted, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown generator %q\n", *gen)
		return 2
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	write := graph.Write
	if *bin {
		write = wire.WriteGraph
	}
	if err := write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "graphgen: n=%d m=%d Δ=%d weighted=%v\n", g.N, g.M(), g.MaxDegree(), g.Weighted)
	return 0
}
