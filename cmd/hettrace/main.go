// Command hettrace analyzes hetmpc observability artifacts: the per-round
// trace streams (-traceout *.jsonl) and the BENCH_<exp>.json artifacts
// hetbench writes (DESIGN.md §12).
//
// Usage:
//
//	hettrace summarize trace.jsonl      # critical-path + phase-share table
//	hettrace summarize BENCH_e14.json   # same table from an artifact's
//	                                    # embedded trace summary
//	hettrace export trace.jsonl         # Chrome trace-event JSON to stdout;
//	                                    # load in Perfetto (ui.perfetto.dev)
//	hettrace export -o t.json trace.jsonl
//	hettrace diff OLD.json NEW.json     # per-phase makespan and wire-byte
//	                                    # deltas between two BENCH artifacts;
//	                                    # exits 1 when NEW regresses OLD
//	hettrace diff -threshold 5 OLD.json NEW.json
//	                                    # tolerate up to 5% growth
//
// Exit codes: 0 ok (diff: no regression), 1 regression, 2 bad input — which
// includes artifacts or streams whose schema version this build does not
// speak (the "schema" field exists so readers refuse rather than
// mis-attribute renamed fields).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"hetmpc/internal/exp"
	"hetmpc/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  hettrace summarize FILE             critical-path + phase-share table of a
                                      trace stream (.jsonl) or BENCH artifact
  hettrace export [-o OUT] FILE       render a trace stream as Chrome
                                      trace-event JSON (Perfetto-loadable)
  hettrace diff [-threshold PCT] OLD NEW
                                      compare two BENCH artifacts; exit 1 when
                                      NEW's makespan or wire bytes grow more
                                      than PCT percent (default 0)
`)
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "summarize":
		return cmdSummarize(args[1:], stdout, stderr)
	case "export":
		return cmdExport(args[1:], stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "hettrace: unknown command %q\n", args[0])
	usage(stderr)
	return 2
}

// loadRounds reads a -traceout JSONL stream ("-" = stdin).
func loadRounds(path string) ([]trace.Round, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	rounds, err := trace.ReadJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rounds, nil
}

// loadArtifact reads a BENCH_<exp>.json artifact, refusing schemas this
// build does not speak (pre-schema artifacts report version 0).
func loadArtifact(path string) (*exp.Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a exp.Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema != exp.SchemaVersion {
		return nil, fmt.Errorf("%s: artifact schema %d, this hettrace speaks %d — regenerate with the matching hetbench",
			path, a.Schema, exp.SchemaVersion)
	}
	return &a, nil
}

// summaryOf resolves FILE into a phase summary: a JSONL trace stream is
// summarized from its raw records, a BENCH artifact contributes its embedded
// trace summary.
func summaryOf(path string) (*trace.Summary, error) {
	rounds, jerr := loadRounds(path)
	if jerr == nil {
		return trace.Summarize(rounds), nil
	}
	if !errors.Is(jerr, trace.ErrSchema) {
		return nil, jerr
	}
	// Not a trace stream; try the artifact shape.
	a, aerr := loadArtifact(path)
	if aerr != nil {
		return nil, fmt.Errorf("%s: neither a trace stream (%w) nor a readable artifact (%w)", path, jerr, aerr)
	}
	if a.Trace == nil {
		return nil, fmt.Errorf("%s: artifact has no trace summary (regenerate under hetbench -trace)", path)
	}
	return &trace.Summary{
		Rounds:   a.Trace.Rounds,
		Words:    a.Trace.Words,
		Makespan: a.Trace.Makespan,
		Phases:   a.Trace.Phases,
	}, nil
}

func cmdSummarize(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: hettrace summarize FILE")
		return 2
	}
	s, err := summaryOf(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "hettrace:", err)
		return 2
	}
	printSummary(stdout, s)
	return 0
}

// printSummary renders the critical-path table: one row per phase with its
// makespan share and bottleneck machine, phases in first-seen order.
func printSummary(w io.Writer, s *trace.Summary) {
	fmt.Fprintf(w, "%d exchange rounds, %d words, makespan %.6g\n", s.Rounds, s.Words, s.Makespan)
	fmt.Fprintf(w, "%-44s %7s %12s %12s %7s  %s\n", "phase", "rounds", "words", "makespan", "share", "bottleneck")
	for _, p := range s.Phases {
		name := p.Phase
		if name == "" {
			name = "(untagged)"
		}
		fmt.Fprintf(w, "%-44s %7d %12d %12.6g %6.1f%%  %s (%.0f%% of phase busy)\n",
			name, p.Rounds, p.Words, p.Makespan, 100*p.Share, trace.MachineName(p.Top), 100*p.TopShare)
	}
}

func cmdExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hettrace export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "-", "output file ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: hettrace export [-o OUT] TRACE.jsonl")
		return 2
	}
	rounds, err := loadRounds(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "hettrace:", err)
		return 2
	}
	w := io.Writer(stdout)
	var closeFn func() error
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "hettrace:", err)
			return 2
		}
		w, closeFn = f, f.Close
	}
	if err := trace.WritePerfetto(w, rounds); err != nil {
		fmt.Fprintln(stderr, "hettrace:", err)
		return 2
	}
	if closeFn != nil {
		if err := closeFn(); err != nil {
			fmt.Fprintln(stderr, "hettrace:", err)
			return 2
		}
	}
	return 0
}

// deltaRow is one compared quantity of a diff.
type deltaRow struct {
	name     string
	old, new float64
	gate     bool // counts toward the regression verdict
}

// pctDelta is the relative growth in percent; growth from zero is +Inf
// (always a regression), zero-to-zero is 0.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (new - old) / old
}

// diffArtifacts builds the comparison rows: the gated totals (makespan, wire
// bytes), the informational totals, and — when both artifacts carry a trace
// — the per-phase makespan rows (gated too: a phase regression is a
// regression even if another phase's win hides it in the total).
func diffArtifacts(old, cur *exp.Artifact) []deltaRow {
	rows := []deltaRow{
		{"makespan", old.Model.Makespan, cur.Model.Makespan, true},
		{"wire_bytes", float64(old.Model.WireBytes), float64(cur.Model.WireBytes), true},
		{"rounds", float64(old.Model.Rounds), float64(cur.Model.Rounds), false},
		{"messages", float64(old.Model.Messages), float64(cur.Model.Messages), false},
		{"total_words", float64(old.Model.TotalWords), float64(cur.Model.TotalWords), false},
	}
	if old.Trace != nil && cur.Trace != nil {
		oldPhases := map[string]trace.PhaseStat{}
		for _, p := range old.Trace.Phases {
			oldPhases[p.Phase] = p
		}
		for _, p := range cur.Trace.Phases {
			name := p.Phase
			if name == "" {
				name = "(untagged)"
			}
			rows = append(rows, deltaRow{"phase " + name, oldPhases[p.Phase].Makespan, p.Makespan, true})
		}
	}
	return rows
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hettrace diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0, "regression threshold in percent: exit 1 when a gated quantity grows more than this")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: hettrace diff [-threshold PCT] OLD.json NEW.json")
		return 2
	}
	old, err := loadArtifact(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "hettrace:", err)
		return 2
	}
	cur, err := loadArtifact(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "hettrace:", err)
		return 2
	}
	if old.Exp != cur.Exp {
		fmt.Fprintf(stderr, "hettrace: warning: comparing different experiments (%s vs %s)\n", old.Exp, cur.Exp)
	}
	regressed := false
	fmt.Fprintf(stdout, "%-44s %14s %14s %9s\n", "quantity", "old", "new", "delta")
	for _, r := range diffArtifacts(old, cur) {
		d := pctDelta(r.old, r.new)
		mark := ""
		if r.gate && d > *threshold {
			regressed = true
			mark = "  REGRESSION"
		}
		fmt.Fprintf(stdout, "%-44s %14.6g %14.6g %+8.2f%%%s\n", r.name, r.old, r.new, d, mark)
	}
	if regressed {
		fmt.Fprintf(stdout, "regression: a gated quantity grew more than %g%%\n", *threshold)
		return 1
	}
	fmt.Fprintln(stdout, "ok: no regression")
	return 0
}
