package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetmpc/internal/exp"
	"hetmpc/internal/trace"
)

// writeArtifact marshals a to a temp BENCH file and returns the path.
func writeArtifact(t *testing.T, a *exp.Artifact) string {
	t.Helper()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleArtifact() *exp.Artifact {
	a := &exp.Artifact{Schema: exp.SchemaVersion, Exp: "e14", Seed: 7}
	a.Model.Clusters = 2
	a.Model.Rounds = 100
	a.Model.Messages = 4000
	a.Model.TotalWords = 50000
	a.Model.Makespan = 1.25e6
	a.Model.WireBytes = 800000
	a.Trace = &exp.TraceStats{
		Clusters: 2, Rounds: 100, Words: 50000, Makespan: 1.25e6,
		Phases: []trace.PhaseStat{
			{Phase: "build", Rounds: 60, Words: 30000, Makespan: 7.5e5, Share: 0.6, Top: trace.Large, TopShare: 0.5},
			{Phase: "query", Rounds: 40, Words: 20000, Makespan: 5.0e5, Share: 0.4, Top: 1, TopShare: 0.7},
		},
	}
	return a
}

// sampleTracePath writes a small timeline as a -traceout JSONL stream.
func sampleTracePath(t *testing.T) string {
	t.Helper()
	rounds := []trace.Round{
		{Round: 1, Phase: "build", Kind: trace.KindExchange, Messages: 4, Words: 40,
			MaxTime: 10, Makespan: 10, Argmax: trace.Large, Victim: trace.None,
			SendWords: []int{20, 10, 10}, RecvWords: []int{20, 10, 10}, Busy: []float64{10, 5, 5}},
		{Round: 2, Phase: "query", Kind: trace.KindExchange, Messages: 2, Words: 20,
			MaxTime: 8, Makespan: 8, Argmax: 0, Victim: trace.None,
			SendWords: []int{0, 10, 10}, RecvWords: []int{0, 10, 10}, Busy: []float64{0, 8, 4}},
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, rounds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI drives run() and captures the streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestDiffSelfIsZero pins the CI self-comparison gate: an artifact diffed
// against itself reports zero delta on every row and exits 0 at the
// strictest threshold.
func TestDiffSelfIsZero(t *testing.T) {
	path := writeArtifact(t, sampleArtifact())
	code, out, errs := runCLI("diff", path, path)
	if code != 0 {
		t.Fatalf("self-diff exit %d, stderr %q", code, errs)
	}
	if !strings.Contains(out, "ok: no regression") {
		t.Fatalf("self-diff verdict missing: %s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("self-diff flagged a regression: %s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "%") && !strings.Contains(line, "+0.00%") {
			t.Fatalf("non-zero delta in self-diff: %q", line)
		}
	}
}

// TestDiffRegressionGate: growth beyond the threshold exits 1 and names the
// row; raising the threshold over the growth passes.
func TestDiffRegressionGate(t *testing.T) {
	old := writeArtifact(t, sampleArtifact())
	worse := sampleArtifact()
	worse.Model.Makespan *= 1.10
	worse.Trace.Makespan = worse.Model.Makespan
	worse.Trace.Phases[0].Makespan *= 1.16667
	cur := writeArtifact(t, worse)

	code, out, _ := runCLI("diff", old, cur)
	if code != 1 {
		t.Fatalf("10%% makespan growth at threshold 0: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regression rows unmarked: %s", out)
	}
	code, out, _ = runCLI("diff", "-threshold", "20", old, cur)
	if code != 0 {
		t.Fatalf("10%% growth under threshold 20: exit %d\n%s", code, out)
	}
}

// TestDiffPhaseRegressionGated: a phase-level regression fails the gate even
// when the totals are unchanged (one phase's win hides the other's loss).
func TestDiffPhaseRegressionGated(t *testing.T) {
	old := writeArtifact(t, sampleArtifact())
	shifted := sampleArtifact()
	shifted.Trace.Phases[0].Makespan += 1e5 // build regresses...
	shifted.Trace.Phases[1].Makespan -= 1e5 // ...query's win hides it in the total
	cur := writeArtifact(t, shifted)
	code, out, _ := runCLI("diff", old, cur)
	if code != 1 {
		t.Fatalf("hidden phase regression passed: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "phase build") {
		t.Fatalf("regressed phase not named: %s", out)
	}
}

// TestDiffSchemaRefusal: mismatched artifact schemas exit 2 before any
// comparison (the satellite acceptance criterion).
func TestDiffSchemaRefusal(t *testing.T) {
	good := writeArtifact(t, sampleArtifact())
	stale := sampleArtifact()
	stale.Schema = exp.SchemaVersion + 1
	bad := writeArtifact(t, stale)
	code, _, errs := runCLI("diff", good, bad)
	if code != 2 {
		t.Fatalf("schema mismatch exit %d", code)
	}
	if !strings.Contains(errs, "schema") {
		t.Fatalf("refusal does not name the schema: %q", errs)
	}
	// Pre-schema artifacts (no schema field at all) are refused the same way.
	preSchema := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(preSchema, []byte(`{"exp":"e14","seed":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI("diff", good, preSchema); code != 2 {
		t.Fatalf("pre-schema artifact accepted: exit %d", code)
	}
}

// TestSummarizeStream: a raw JSONL timeline renders the phase table.
func TestSummarizeStream(t *testing.T) {
	code, out, errs := runCLI("summarize", sampleTracePath(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	for _, want := range []string{"2 exchange rounds, 60 words", "build", "query", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary lacks %q:\n%s", want, out)
		}
	}
}

// TestSummarizeArtifact: a BENCH artifact's embedded summary renders the
// same table shape.
func TestSummarizeArtifact(t *testing.T) {
	code, out, errs := runCLI("summarize", writeArtifact(t, sampleArtifact()))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	if !strings.Contains(out, "100 exchange rounds, 50000 words") || !strings.Contains(out, "build") {
		t.Fatalf("artifact summary wrong:\n%s", out)
	}
}

// TestExportPerfetto: export renders loadable trace-event JSON.
func TestExportPerfetto(t *testing.T) {
	out := filepath.Join(t.TempDir(), "perfetto.json")
	code, _, errs := runCLI("export", "-o", out, sampleTracePath(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Schema int `json:"schema"`
		Events []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if f.Schema != trace.SchemaVersion || len(f.Events) == 0 {
		t.Fatalf("export shape wrong: schema %d, %d events", f.Schema, len(f.Events))
	}
}

// TestUsageAndUnknown: bare and unknown invocations exit 2 with usage.
func TestUsageAndUnknown(t *testing.T) {
	if code, _, errs := runCLI(); code != 2 || !strings.Contains(errs, "usage") {
		t.Fatalf("bare invocation: exit %d, stderr %q", code, errs)
	}
	if code, _, _ := runCLI("frobnicate"); code != 2 {
		t.Fatal("unknown command accepted")
	}
	if code, out, _ := runCLI("help"); code != 0 || !strings.Contains(out, "summarize") {
		t.Fatalf("help: exit %d", code)
	}
}
