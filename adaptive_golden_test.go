package hetmpc_test

import (
	"bytes"
	"runtime"
	"testing"

	"hetmpc"
	"hetmpc/internal/exp"
)

// misreportedConfig is the E30-style scenario shared by the adaptive
// goldens: an 8-machine cluster declared uniform whose last two machines
// actually run 4× slower for the whole run (a fault.Slowdown window the
// static policies cannot see but the adaptive estimator measures).
func misreportedConfig(pol hetmpc.PlacementPolicy, tr *hetmpc.Trace) hetmpc.Config {
	const k = 8
	cfg := hetmpc.Config{N: 512, M: 4096, K: k, Seed: 7, Placement: pol, Trace: tr}
	p := hetmpc.UniformProfile(k)
	p.LargeSpeed, p.LargeBandwidth = 64, 64
	cfg.Profile = p
	cfg.Faults = &hetmpc.FaultPlan{Slowdowns: []hetmpc.FaultSlowdown{
		{Machine: k - 2, From: 1, To: 1 << 20, Factor: 4},
		{Machine: k - 1, From: 1, To: 1 << 20, Factor: 4},
	}}
	return cfg
}

// TestAdaptiveGoldenThroughputEquivalence pins the two exact degenerations
// of adaptive placement (DESIGN.md §10) against the MST golden on a
// truthful straggler profile: a frozen estimator (alpha 0) and a default
// estimator fed truthful measurements must both reproduce static
// throughput's full Stats bit-identically — the EWMA's fixed point is the
// declared profile, so re-splitting every round changes nothing at all.
func TestAdaptiveGoldenThroughputEquivalence(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	run := func(pol hetmpc.PlacementPolicy) hetmpc.ClusterStats {
		cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7, Placement: pol}
		p := hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
		p.LargeSpeed, p.LargeBandwidth = 64, 64
		cfg.Profile = p
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != 153235 {
			t.Fatalf("%s: mst weight %d, want golden 153235", pol.Name(), r.Weight)
		}
		return c.Stats()
	}
	want := run(hetmpc.ThroughputPlacement{})
	for _, pol := range []hetmpc.PlacementPolicy{
		hetmpc.AdaptivePlacement{Alpha: 0},
		hetmpc.AdaptivePlacement{Alpha: 0.5},
	} {
		if got := run(pol); got != want {
			t.Fatalf("%s on a truthful profile not bit-identical to static throughput:\n got: %+v\nwant: %+v",
				pol.Name(), got, want)
		}
	}
}

// TestAdaptiveGoldenTraceConservationAcrossGOMAXPROCS pins the trace
// conservation contract under mid-run share rebalancing: on the
// misreported-profile scenario — where the adaptive estimator genuinely
// moves the shares round over round — the ordered sum of per-round
// makespan contributions must equal Stats.Makespan bit-identically and the
// per-round words must sum to Stats.TotalWords, at GOMAXPROCS 1, 4 and 8,
// with the full Stats bit-identical across all three.
func TestAdaptiveGoldenTraceConservationAcrossGOMAXPROCS(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	run := func() hetmpc.ClusterStats {
		tr := hetmpc.NewTrace()
		c, err := hetmpc.NewCluster(misreportedConfig(hetmpc.AdaptivePlacement{Alpha: 0.5}, tr))
		if err != nil {
			t.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != 153235 {
			t.Fatalf("mst weight %d, want golden 153235", r.Weight)
		}
		st := c.Stats()
		s := hetmpc.SummarizeTrace(tr.Rounds())
		if s.Makespan != st.Makespan {
			t.Fatalf("trace makespan %v != stats makespan %v (conservation broken under adaptive rebalancing)",
				s.Makespan, st.Makespan)
		}
		if s.Words != st.TotalWords {
			t.Fatalf("trace words %d != stats words %d", s.Words, st.TotalWords)
		}
		if est := c.PlacementEstimator(); est == nil || est.Rounds() == 0 {
			t.Fatal("the estimator observed nothing — the scenario is not exercising adaptation")
		}
		return st
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var want hetmpc.ClusterStats
	for i, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		got := run()
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("stats diverge at GOMAXPROCS=%d:\n got: %+v\nwant: %+v", procs, got, want)
		}
	}
}

// TestTraceArgmaxBusyRegression pins the argmax attribution under the two
// policies that reshape per-round charging — speculation's partner pairing
// and adaptive's share shifts: no exchange record may name a bottleneck
// machine that was charged zero busy time, and a record with no bottleneck
// (Argmax == None) must have moved no words.
func TestTraceArgmaxBusyRegression(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	for _, tc := range []struct {
		name string
		cfg  func(tr *hetmpc.Trace) hetmpc.Config
	}{
		{"speculate-straggler", func(tr *hetmpc.Trace) hetmpc.Config {
			cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7, Placement: hetmpc.SpeculatePlacement{R: 2}, Trace: tr}
			p := hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
			p.LargeSpeed, p.LargeBandwidth = 64, 64
			cfg.Profile = p
			return cfg
		}},
		{"adaptive-misreported", func(tr *hetmpc.Trace) hetmpc.Config {
			return misreportedConfig(hetmpc.AdaptivePlacement{Alpha: 0.5}, tr)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := hetmpc.NewTrace()
			c, err := hetmpc.NewCluster(tc.cfg(tr))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := hetmpc.MST(c, g); err != nil {
				t.Fatal(err)
			}
			for _, r := range tr.Rounds() {
				if r.Kind != hetmpc.TraceKindExchange {
					continue
				}
				if r.Argmax == hetmpc.TraceNone {
					if r.Words != 0 {
						t.Fatalf("round %d moved %d words but attributes no bottleneck machine", r.Round, r.Words)
					}
					continue
				}
				slot := r.Argmax + 1 // trace ids: Large = -1 → slot 0, small i → slot 1+i
				if slot < 0 || slot >= len(r.Busy) {
					t.Fatalf("round %d: argmax %d outside the busy vector (len %d)", r.Round, r.Argmax, len(r.Busy))
				}
				if !(r.Busy[slot] > 0) {
					t.Fatalf("round %d: argmax machine %s has zero busy time (busy: %v)",
						r.Round, hetmpc.TraceMachineName(r.Argmax), r.Busy)
				}
			}
		})
	}
}

// TestAdaptiveExperimentsDeterministicAcrossGOMAXPROCS extends the E23–E25
// determinism golden to the adaptive sweeps: E29–E31 must render
// byte-identical tables on one CPU and on all of them — the estimator
// observes and the shares switch at the same serial program point of every
// run.
func TestAdaptiveExperimentsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment sweep skipped in -short mode")
	}
	for _, id := range []string{"e29", "e30", "e31"} {
		id := id
		t.Run(id, func(t *testing.T) {
			render := func() string {
				tab, err := exp.All()[id](7)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				return buf.String()
			}
			prev := runtime.GOMAXPROCS(1)
			one := render()
			runtime.GOMAXPROCS(prev)
			many := render()
			if one != many {
				t.Fatalf("%s diverges across GOMAXPROCS:\n--- 1 ---\n%s\n--- n ---\n%s", id, one, many)
			}
		})
	}
}
