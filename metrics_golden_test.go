package hetmpc_test

import (
	"runtime"
	"testing"

	"hetmpc"
)

// TestMetricsObservationalGoldenAcrossGOMAXPROCS pins the Config.Metrics
// analogue of the nil-collector trace guarantee at the facade level: a full
// MST run — straggler profile, checkpointed fault plan, seed-derived crashes
// — produces bit-identical ClusterStats with and without a metrics registry
// attached, at GOMAXPROCS 1, 4 and 8, and every run reproduces the golden
// MST weight. The attached registry must also satisfy the word-conservation
// law the engine promises: the run-wide word counter equals
// Stats.TotalWords exactly.
func TestMetricsObservationalGoldenAcrossGOMAXPROCS(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	plan := &hetmpc.FaultPlan{
		Interval:  4,
		CrashRate: 0.003,
		Crashes:   []hetmpc.FaultCrash{{Round: 10, Machine: 2, RestartAfter: 1}},
	}
	run := func(reg *hetmpc.Metrics) hetmpc.ClusterStats {
		t.Helper()
		cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7, Faults: plan, Metrics: reg}
		cfg.Profile = hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != 153235 {
			t.Fatalf("mst weight %d, want golden 153235", r.Weight)
		}
		return c.Stats()
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var golden hetmpc.ClusterStats
	for i, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		reg := hetmpc.NewMetrics()
		metered := run(reg)
		plain := run(nil)
		if metered != plain {
			t.Fatalf("GOMAXPROCS=%d: metrics perturbed the run:\nmetered %+v\nplain   %+v", procs, metered, plain)
		}
		if i == 0 {
			golden = metered
		} else if metered != golden {
			t.Fatalf("GOMAXPROCS=%d stats diverged from GOMAXPROCS=1:\n%+v\n%+v", procs, metered, golden)
		}
		// Conservation at the facade: the registry's run-wide word counter
		// is exactly Stats.TotalWords (fresh registry, single cluster).
		if got := reg.Counter("mpc_words_total").Value(); got != metered.TotalWords {
			t.Fatalf("GOMAXPROCS=%d: mpc_words_total = %d, Stats.TotalWords = %d", procs, got, metered.TotalWords)
		}
	}
	if golden.Crashes == 0 || golden.Checkpoints == 0 {
		t.Fatalf("fault plan exercised no recovery: %+v", golden)
	}
}
