// Fault tolerance, measured: what surviving crashes costs a
// Heterogeneous-MPC algorithm in rounds, words and makespan (DESIGN.md §7).
//
// The walkthrough runs MST three ways on the same graph and seed:
//
//  1. the reliable cluster of the paper;
//  2. checkpointing only — every 8 rounds each machine replicates its
//     state to a capacity-aware buddy, and the replication traffic is
//     charged like any other message;
//  3. checkpointing plus a seed-derived crash schedule — victims restore
//     from their buddies and replay the rounds since the last checkpoint.
//
// The punchline the fault subsystem is built around: the MST weight and
// the round structure are bit-identical in all three runs — recovery is
// lossless by construction — while the crashes/recovery_rounds/
// replication_words/makespan columns price what that protection costs.
//
// Run with:
//
//	go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n, m = 512, 4096
	g := hetmpc.ConnectedGNM(n, m, 7, true)
	_, exact := hetmpc.KruskalMSF(g)

	run := func(plan *hetmpc.FaultPlan) hetmpc.ClusterStats {
		cfg := hetmpc.Config{N: g.N, M: g.M(), Seed: 7, Faults: plan}
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			log.Fatal(err)
		}
		if r.Weight != exact {
			log.Fatalf("recovery lost state: MST weight %d, want %d", r.Weight, exact)
		}
		return c.Stats()
	}

	fmt.Println("MST under fault injection (n=512 m=4096, seed 7; weight validated exact in every run)")
	fmt.Printf("%-28s | %6s | %7s | %9s | %11s | %9s\n",
		"cluster", "rounds", "crashes", "rec rounds", "repl words", "makespan")
	base := run(nil)
	fmt.Printf("%-28s | %6d | %7d | %9d | %11d | %9.4g\n",
		"reliable (paper model)", base.Rounds, base.Crashes, base.RecoveryRounds, base.ReplicationWords, base.Makespan)

	ckpt := run(&hetmpc.FaultPlan{Interval: 8})
	fmt.Printf("%-28s | %6d | %7d | %9d | %11d | %9.4g\n",
		"ckpt every 8 rounds", ckpt.Rounds, ckpt.Crashes, ckpt.RecoveryRounds, ckpt.ReplicationWords, ckpt.Makespan)

	faulty := run(&hetmpc.FaultPlan{Interval: 8, CrashRate: 0.002})
	fmt.Printf("%-28s | %6d | %7d | %9d | %11d | %9.4g\n",
		"ckpt + crash rate 0.002", faulty.Rounds, faulty.Crashes, faulty.RecoveryRounds, faulty.ReplicationWords, faulty.Makespan)

	if base.Rounds != ckpt.Rounds || base.Rounds != faulty.Rounds {
		log.Fatal("fault injection changed the round structure")
	}
	fmt.Println()
	fmt.Printf("fault-tolerance premium: checkpointing %.2f%%, checkpointing+crashes %.2f%% of the reliable makespan\n",
		100*(ckpt.Makespan/base.Makespan-1), 100*(faulty.Makespan/base.Makespan-1))

	// A targeted crash: machine 3 dies at round 20 and stays down 2 rounds;
	// its buddy restores it. The same spec is available on the CLIs as
	// `-faults ckpt:8+crash:20:3:2`.
	one := run(&hetmpc.FaultPlan{
		Interval: 8,
		Crashes:  []hetmpc.FaultCrash{{Round: 20, Machine: 3, RestartAfter: 2}},
	})
	fmt.Printf("\nsingle crash (round 20, machine 3, 2 rounds down): %d recovery rounds, %d restore words, makespan +%.3g\n",
		one.RecoveryRounds, one.ReplicationWords-ckpt.ReplicationWords, one.Makespan-ckpt.Makespan)
}
