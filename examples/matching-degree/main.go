// Matching and the average degree (§5, Theorem 5.1): the heterogeneous
// algorithm's peeling phase runs only on the subgraph induced by vertices of
// degree ≤ d² (d = average degree), so its iteration count is immune to
// high-degree hubs — unlike the pure-sublinear baseline, which peels the
// whole graph.
//
//	go run ./examples/matching-degree
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n = 600
	fmt.Println("planted-hub workloads: average degree ≈ 4 everywhere, Δ grows")
	fmt.Printf("%8s | %6s | %22s | %22s\n", "hub deg", "Δ", "heterogeneous", "sublinear baseline")
	for _, hubDeg := range []int{50, 200, 500} {
		g := hetmpc.PlantedHubs(n, 4, 4, hubDeg, uint64(hubDeg))

		het, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		rh, err := hetmpc.MaximalMatching(het, g)
		if err != nil {
			log.Fatal(err)
		}
		if err := hetmpc.CheckMatching(g, rh.Edges, true); err != nil {
			log.Fatal("heterogeneous matching invalid: ", err)
		}

		sub, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), NoLarge: true, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		match, peel, err := hetmpc.BaselineMatching(sub, g)
		if err != nil {
			log.Fatal(err)
		}
		if err := hetmpc.CheckMatching(g, match, true); err != nil {
			log.Fatal("baseline matching invalid: ", err)
		}

		fmt.Printf("%8d | %6d | %3d iters, %4d rounds | %3d iters, %4d rounds\n",
			hubDeg, g.MaxDegree(), rh.Phase1Iters, rh.Stats.Rounds,
			peel.Iterations, peel.Stats.Rounds)
	}
	fmt.Println()
	fmt.Println("the heterogeneous column stays flat as Δ grows: hubs are handled by")
	fmt.Println("phase 2 (2d·log n random edges per hub to the large machine) in O(1)")
	fmt.Println("rounds, exactly as Theorem 5.1 promises.")
}
