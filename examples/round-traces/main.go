// Round traces: where does the makespan actually go?
//
// Stats.Makespan is one number; the paper's cost arguments — and any
// attempt to make a heterogeneous cluster faster — are per-round and
// per-phase. This example walks the trace layer (DESIGN.md §9) on an MST
// run over a straggler cluster:
//
//  1. attach a collector (Config.Trace = hetmpc.NewTrace()). The simulator
//     now records every makespan contribution — exchange rounds, and on
//     fault-active clusters checkpoint barriers and crash recoveries —
//     tagged with the phase-span path the algorithm had open
//     (Cluster.Span; the prims tag themselves: distribute, sort,
//     aggregate, broadcast, …);
//  2. read the raw timeline: each record carries the round's words, its
//     exact makespan contribution, and the argmax machine that set the
//     round's clock;
//  3. summarize: per-phase makespan shares and the bottleneck machine per
//     phase — the critical path. Conservation is exact: the ordered sum of
//     the contributions reproduces Stats.Makespan bit-for-bit, and the
//     per-round words sum to TotalWords.
//
// Tracing observes and never perturbs: the traced run's Stats are
// bit-identical to the same run untraced.
//
// Run with:
//
//	go run ./examples/round-traces
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n, m = 256, 2048
	g := hetmpc.ConnectedGNM(n, m, 5, true)
	_, exact := hetmpc.KruskalMSF(g)

	// Step 1: a straggler cluster with a trace collector attached.
	tr := hetmpc.NewTrace()
	cfg := hetmpc.Config{N: n, M: m, Seed: 9, Trace: tr}
	p := hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
	p.LargeSpeed, p.LargeBandwidth = 64, 64 // beefy coordinator: the slow tail sets the clock
	cfg.Profile = p
	c, err := hetmpc.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := hetmpc.MST(c, g)
	if err != nil {
		log.Fatal(err)
	}
	if r.Weight != exact {
		log.Fatalf("MST weight %d, want %d", r.Weight, exact)
	}
	st := c.Stats()

	// Step 2: the raw timeline — the first rounds, one line each.
	rounds := tr.Rounds()
	fmt.Printf("MST on straggler:2:8: %d trace records for %d rounds, makespan %.4g\n\n",
		len(rounds), st.Rounds, st.Makespan)
	fmt.Printf("%5s  %-40s %8s %10s  %s\n", "round", "phase", "words", "makespan", "set by")
	show := 12
	for i, rec := range rounds {
		if i >= show {
			fmt.Printf("%5s  ... %d more rounds\n", "", len(rounds)-show)
			break
		}
		fmt.Printf("%5d  %-40s %8d %10.4g  %s\n",
			rec.Round, rec.Phase, rec.Words, rec.Makespan, hetmpc.TraceMachineName(rec.Argmax))
	}

	// Step 3: the critical-path summary — which phase carries the clock,
	// and which machine bounds it.
	s := hetmpc.SummarizeTrace(rounds)
	fmt.Printf("\nphase summary (shares partition the makespan exactly):\n")
	fmt.Printf("%-40s %6s %9s %6s  %s\n", "phase", "rounds", "makespan", "share", "bottleneck")
	for _, ph := range s.Phases {
		fmt.Printf("%-40s %6d %9.4g %5.1f%%  %s\n",
			ph.Phase, ph.Rounds, ph.Makespan, 100*ph.Share, hetmpc.TraceMachineName(ph.Top))
	}

	// Conservation: the trace is the makespan, decomposed.
	sum := 0.0
	var words int64
	for _, rec := range rounds {
		sum += rec.Makespan
		words += rec.Words
	}
	fmt.Printf("\nconservation: Σ contributions = %.6g (Stats.Makespan %.6g), Σ words = %d (TotalWords %d)\n",
		sum, st.Makespan, words, st.TotalWords)
	if sum != st.Makespan || words != st.TotalWords {
		log.Fatal("conservation broken — this is a bug")
	}

	// Spans also replace the before/diff pattern for ad-hoc measurement:
	// an explicit scope around a second run returns its Stats delta.
	sp := c.Span("second-run")
	if _, err := hetmpc.MST(c, g); err != nil {
		log.Fatal(err)
	}
	d := sp.End()
	fmt.Printf("\nSpan(\"second-run\").End(): %d rounds, %d words, makespan +%.4g\n",
		d.Rounds, d.TotalWords, d.Makespan)
}
