// Placement policies: who gets the work on a skewed cluster?
//
// The paper places work uniformly; the cost model (DESIGN.md §6) made
// placement capacity-proportional. This example walks the third step — the
// pluggable placement policies of DESIGN.md §8 — on a straggler cluster
// whose slow tail sets the wall-clock:
//
//   - cap: capacity-proportional (the default). Capacities are uniform
//     here, so the stragglers hold full shares and dominate the makespan;
//   - throughput: share ∝ min(capacity, effective speed) — the stragglers
//     hold less, the route traffic rebalances;
//   - speculate:R: throughput plus first-copy-wins redundant execution of
//     the R slowest per-round shards on idle fast machines. The rounds no
//     static placement can rebalance (everyone receives the same broadcast)
//     shrink too, and every mirrored word is charged honestly.
//
// The MST itself is validated exact in every configuration: placement moves
// data and the clock, never the answer.
//
// Run with:
//
//	go run ./examples/placement-policies
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n, m = 512, 4096
	g := hetmpc.ConnectedGNM(n, m, 5, true)
	_, exact := hetmpc.KruskalMSF(g)

	run := func(pol hetmpc.PlacementPolicy) hetmpc.ClusterStats {
		cfg := hetmpc.Config{N: n, M: m, Seed: 9, Placement: pol}
		// Two stragglers at 1/8 speed; the large machine is the beefy
		// server (it holds ~n^{1-γ} small machines' memory — provision its
		// speed to match), so the small-machine tail sets the clock.
		p := hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
		p.LargeSpeed, p.LargeBandwidth = 64, 64
		cfg.Profile = p
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			log.Fatal(err)
		}
		if r.Weight != exact {
			log.Fatalf("placement changed the MST weight: %d, want %d", r.Weight, exact)
		}
		return c.Stats()
	}

	fmt.Println("MST on a straggler:2:8 cluster (weight validated exact everywhere)")
	fmt.Printf("%12s | %6s | %9s | %7s | %10s\n", "policy", "rounds", "makespan", "vs cap", "spec words")
	base := run(nil).Makespan
	for _, pol := range []hetmpc.PlacementPolicy{
		hetmpc.CapPlacement{},
		hetmpc.ThroughputPlacement{},
		hetmpc.SpeculatePlacement{R: 1},
		hetmpc.SpeculatePlacement{R: 2},
	} {
		st := run(pol)
		fmt.Printf("%12s | %6d | %9.4g | %7.3f | %10d\n",
			pol.Name(), st.Rounds, st.Makespan, st.Makespan/base, st.SpeculationWords)
	}

	fmt.Println()
	fmt.Println("The same dial from the CLI:")
	fmt.Println("  hetrun -alg mst -profile straggler:2:8 -placement speculate:2")
	fmt.Println("  hetbench -exp e23,e24,e25            # the placement sweeps")
	fmt.Println("  hetbench -exp e18 -placement throughput -json -out bench")
}
