// Placement policies: who gets the work on a skewed cluster?
//
// The paper places work uniformly; the cost model (DESIGN.md §6) made
// placement capacity-proportional. This example walks the third step — the
// pluggable placement policies of DESIGN.md §8 — on a straggler cluster
// whose slow tail sets the wall-clock:
//
//   - cap: capacity-proportional (the default). Capacities are uniform
//     here, so the stragglers hold full shares and dominate the makespan;
//   - throughput: share ∝ min(capacity, effective speed) — the stragglers
//     hold less, the route traffic rebalances;
//   - speculate:R: throughput plus first-copy-wins redundant execution of
//     the R slowest per-round shards on idle fast machines. The rounds no
//     static placement can rebalance (everyone receives the same broadcast)
//     shrink too, and every mirrored word is charged honestly;
//   - adaptive:ALPHA: throughput's split recomputed every round from
//     measured per-word costs (DESIGN.md §10). On a truthful profile it is
//     bit-identical to throughput — the estimator's fixed point is the
//     declaration; the second table below misreports the profile, the case
//     adaptive exists for.
//
// The MST itself is validated exact in every configuration: placement moves
// data and the clock, never the answer.
//
// Run with:
//
//	go run ./examples/placement-policies
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n, m = 512, 4096
	g := hetmpc.ConnectedGNM(n, m, 5, true)
	_, exact := hetmpc.KruskalMSF(g)

	run := func(pol hetmpc.PlacementPolicy) hetmpc.ClusterStats {
		cfg := hetmpc.Config{N: n, M: m, Seed: 9, Placement: pol}
		// Two stragglers at 1/8 speed; the large machine is the beefy
		// server (it holds ~n^{1-γ} small machines' memory — provision its
		// speed to match), so the small-machine tail sets the clock.
		p := hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
		p.LargeSpeed, p.LargeBandwidth = 64, 64
		cfg.Profile = p
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			log.Fatal(err)
		}
		if r.Weight != exact {
			log.Fatalf("placement changed the MST weight: %d, want %d", r.Weight, exact)
		}
		return c.Stats()
	}

	fmt.Println("MST on a straggler:2:8 cluster (weight validated exact everywhere)")
	fmt.Printf("%12s | %6s | %9s | %7s | %10s\n", "policy", "rounds", "makespan", "vs cap", "spec words")
	base := run(nil).Makespan
	for _, pol := range []hetmpc.PlacementPolicy{
		hetmpc.CapPlacement{},
		hetmpc.ThroughputPlacement{},
		hetmpc.SpeculatePlacement{R: 1},
		hetmpc.SpeculatePlacement{R: 2},
		hetmpc.AdaptivePlacement{Alpha: 0.5}, // truthful profile: == throughput
	} {
		st := run(pol)
		fmt.Printf("%12s | %6d | %9.4g | %7.3f | %10d\n",
			pol.Name(), st.Rounds, st.Makespan, st.Makespan/base, st.SpeculationWords)
	}

	// The adaptive case: the cluster *declares* itself uniform, but two of
	// its eight machines actually run 4× slower (a whole-run slowdown
	// window from the fault plan — DESIGN.md §7). Static policies trust the
	// declaration and split evenly; the adaptive estimator measures the
	// real per-word costs off the early rounds and re-splits at each round
	// barrier.
	const k = 8
	misreported := func(pol hetmpc.PlacementPolicy) hetmpc.ClusterStats {
		cfg := hetmpc.Config{N: n, M: m, K: k, Seed: 9, Placement: pol}
		p := hetmpc.UniformProfile(k)
		p.LargeSpeed, p.LargeBandwidth = 64, 64
		cfg.Profile = p
		cfg.Faults = &hetmpc.FaultPlan{Slowdowns: []hetmpc.FaultSlowdown{
			{Machine: k - 2, From: 1, To: 1 << 20, Factor: 4},
			{Machine: k - 1, From: 1, To: 1 << 20, Factor: 4},
		}}
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			log.Fatal(err)
		}
		if r.Weight != exact {
			log.Fatalf("placement changed the MST weight: %d, want %d", r.Weight, exact)
		}
		return c.Stats()
	}

	fmt.Println()
	fmt.Println("Misreported profile: declared uniform, 2 of 8 machines actually 4× slower")
	fmt.Printf("%12s | %6s | %9s | %7s\n", "policy", "rounds", "makespan", "vs cap")
	base = misreported(hetmpc.CapPlacement{}).Makespan
	for _, pol := range []hetmpc.PlacementPolicy{
		hetmpc.CapPlacement{},        // trusts the declaration: even split
		hetmpc.ThroughputPlacement{}, // same — the *declared* speeds are uniform
		hetmpc.AdaptivePlacement{Alpha: 0.5},
	} {
		st := misreported(pol)
		fmt.Printf("%12s | %6d | %9.4g | %7.3f\n",
			pol.Name(), st.Rounds, st.Makespan, st.Makespan/base)
	}

	fmt.Println()
	fmt.Println("The same dial from the CLI:")
	fmt.Println("  hetrun -alg mst -profile straggler:2:8 -placement speculate:2")
	fmt.Println("  hetrun -alg mst -faults slow:6:1:64:4+slow:7:1:64:4 -placement adaptive")
	fmt.Println("  hetbench -exp e23,e24,e25            # the static placement sweeps")
	fmt.Println("  hetbench -exp e29,e30,e31            # the adaptive sweeps")
	fmt.Println("  hetbench -exp e18 -placement throughput -json -out bench")
}
