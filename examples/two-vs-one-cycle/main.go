// The 2-vs-1-cycle problem (§1): the conjectured-Ω(log n) instance that
// underlies the sublinear regime's conditional hardness becomes trivial with
// one near-linear machine — the whole input has n edges and fits on it.
//
//	go run ./examples/two-vs-one-cycle
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	fmt.Printf("%6s | %5s | %26s | %26s\n", "n", "truth", "heterogeneous", "sublinear baseline")
	for _, n := range []int{256, 1024, 4096} {
		for parts := 1; parts <= 2; parts++ {
			g := hetmpc.Cycles(n, parts, uint64(n+parts))

			het, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 2})
			if err != nil {
				log.Fatal(err)
			}
			rh, err := hetmpc.TwoVsOneCycle(het, g)
			if err != nil {
				log.Fatal(err)
			}
			if rh.Cycles != parts {
				log.Fatalf("wrong answer: got %d cycles, want %d", rh.Cycles, parts)
			}

			sub, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), NoLarge: true, Seed: 2})
			if err != nil {
				log.Fatal(err)
			}
			rs, err := hetmpc.BaselineConnectivity(sub, g)
			if err != nil {
				log.Fatal(err)
			}
			if rs.Components != parts {
				log.Fatalf("baseline wrong: got %d, want %d", rs.Components, parts)
			}

			fmt.Printf("%6d | %5d | answered in %2d round(s)    | %3d phases, %4d rounds\n",
				n, parts, rh.Stats.Rounds, rs.Phases, rs.Stats.Rounds)
		}
	}
	fmt.Println()
	fmt.Println("the heterogeneous side is O(1) at every n; the baseline's phase count")
	fmt.Println("grows with n — the separation that motivates the whole model.")
}
