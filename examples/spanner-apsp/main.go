// Spanner + APSP (Corollary 4.2): build an O(log n)-spanner of size Õ(n) in
// O(1) rounds, keep it on the large machine, and answer all-pairs
// shortest-path queries with O(log n) stretch.
//
//	go run ./examples/spanner-apsp
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	g := hetmpc.ConnectedGNM(512, 8192, 7, false)
	cluster, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// First, a plain (6k-1)-spanner for a small k: the paper's headline.
	k := 3
	sp, err := hetmpc.Spanner(cluster, g, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(6k-1)-spanner, k=%d: %d of %d edges kept (%.1f%%), %d rounds\n",
		k, len(sp.Edges), g.M(), 100*float64(len(sp.Edges))/float64(g.M()), sp.Stats.Rounds)
	h := hetmpc.NewGraph(g.N, sp.Edges, false)
	if err := hetmpc.CheckSpanner(g, h, sp.Stretch, 6, 11); err != nil {
		log.Fatal("stretch validation failed: ", err)
	}
	fmt.Printf("stretch ≤ %d validated on sampled pairs\n", sp.Stretch)

	// Then the APSP oracle: k = log n, spanner size Õ(n).
	cluster2, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := hetmpc.BuildAPSPOracle(cluster2, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAPSP oracle: %d-edge spanner on the large machine, built in %d rounds\n",
		oracle.Spanner.M(), oracle.BuildStats.Rounds)

	// Compare oracle answers against exact BFS on a few pairs.
	adj := g.Adj()
	worst := 1.0
	for _, src := range []int{0, 100, 250} {
		exact := hetmpc.BFSDist(adj, src)
		for _, dst := range []int{5, 77, 311, 501} {
			est := oracle.Dist(src, dst)
			ratio := float64(est) / float64(exact[dst])
			if ratio > worst {
				worst = ratio
			}
			fmt.Printf("  d(%3d,%3d): exact %d, oracle %d (x%.1f)\n", src, dst, exact[dst], est, ratio)
		}
	}
	fmt.Printf("worst observed stretch x%.1f (guarantee x%d)\n", worst, oracle.Stretch)
}
