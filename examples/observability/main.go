// Observability: metrics, Perfetto traces, and the hettrace workflow.
//
// DESIGN.md §12 adds three observation channels to the simulator, all
// strictly read-only — a metered, traced run's Stats are bit-identical to
// the bare run, and leaving both hooks nil is the zero-overhead path:
//
//  1. a metrics registry (Config.Metrics = hetmpc.NewMetrics()): the
//     engine prebinds counters, gauges and histograms at cluster build
//     and updates them at the round barrier — run-wide totals
//     (mpc_words_total == Stats.TotalWords, exactly), per-machine
//     dimensions (mpc_send_words_total{machine}), per-phase attribution
//     (mpc_phase_words_total{phase}), fault and wire instrument families;
//  2. the per-round trace (Config.Trace = hetmpc.NewTrace(), see
//     examples/round-traces), exportable as streaming JSONL or as Chrome
//     trace-event JSON you can drop into https://ui.perfetto.dev;
//  3. pprof hooks on the CLIs (-cpuprofile/-memprofile) for host-side
//     profiles of the simulator itself.
//
// This example runs MST on a straggler cluster with both hooks attached,
// verifies the conservation law, writes trace.jsonl + trace-perfetto.json
// + metrics.json into a temp dir, and prints the hettrace commands that
// pick the files up.
//
// Run with:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hetmpc"
)

func main() {
	const n, m = 256, 2048
	g := hetmpc.ConnectedGNM(n, m, 5, true)

	// Step 1: a straggler cluster with a metrics registry and a trace
	// collector attached. Both observe; neither perturbs.
	reg := hetmpc.NewMetrics()
	tr := hetmpc.NewTrace()
	cfg := hetmpc.Config{N: n, M: m, Seed: 9, Metrics: reg, Trace: tr}
	cfg.Profile = hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
	c, err := hetmpc.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hetmpc.MST(c, g); err != nil {
		log.Fatal(err)
	}
	st := c.Stats()

	// Step 2: the conservation law the registry promises — the run-wide
	// word counter equals Stats.TotalWords exactly, and the per-phase
	// counters partition it.
	words := reg.Counter("mpc_words_total").Value()
	fmt.Printf("mpc_words_total = %d, Stats.TotalWords = %d (equal: %v)\n",
		words, st.TotalWords, words == st.TotalWords)
	fmt.Printf("mpc_rounds_total = %d (Stats.Rounds = %d), makespan gauge %.4g\n\n",
		reg.Counter("mpc_rounds_total").Value(), st.Rounds, reg.Gauge("mpc_makespan").Value())

	// Step 3: the per-phase traffic attribution, straight from the
	// snapshot (sorted, so the output is deterministic).
	fmt.Printf("%-44s %10s\n", "phase", "words")
	for _, s := range reg.Snapshot() {
		if s.Name != "mpc_phase_words_total" {
			continue
		}
		name := s.Labels["phase"]
		if name == "" {
			name = "(untagged)"
		}
		fmt.Printf("%-44s %10d\n", name, s.Value)
	}

	// Step 4: export. JSONL is the streaming format hettrace reads back;
	// the Perfetto file loads directly in https://ui.perfetto.dev (one
	// track per machine, one slice per round, phase spans as metadata).
	dir, err := os.MkdirTemp("", "hetmpc-obs")
	if err != nil {
		log.Fatal(err)
	}
	rounds := tr.Rounds()
	write := func(name string, emit func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := emit(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		return path
	}
	jsonl := write("trace.jsonl", func(f *os.File) error { return hetmpc.WriteTraceJSONL(f, rounds) })
	perfetto := write("trace-perfetto.json", func(f *os.File) error { return hetmpc.WriteTracePerfetto(f, rounds) })
	mjson := write("metrics.json", func(f *os.File) error { return reg.WriteJSON(f) })

	fmt.Printf("\nwrote %s, %s, %s\n", jsonl, perfetto, mjson)
	fmt.Println(`
next steps:
  go run ./cmd/hettrace summarize ` + jsonl + `
      critical-path table: per-phase makespan shares + bottleneck machines
  go run ./cmd/hettrace export -o t.json ` + jsonl + `
      Chrome trace-event JSON; open https://ui.perfetto.dev and load t.json
  go run ./cmd/hetbench -exp e14 -json -out /tmp/a && cp /tmp/a/BENCH_e14.json /tmp/old.json
  go run ./cmd/hetbench -exp e14 -json -out /tmp/a
  go run ./cmd/hettrace diff -threshold 2 /tmp/old.json /tmp/a/BENCH_e14.json
      per-phase makespan + wire-byte deltas; exits 1 on regression (CI gate)
  go run ./cmd/hetbench -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof
  go tool pprof -top cpu.pprof
      host-side profile of the simulator itself`)
}
