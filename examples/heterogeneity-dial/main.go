// The heterogeneity dial, on both axes the simulator exposes.
//
// The paper's axis (Theorems 3.1 and 5.5): giving the single large machine
// superlinear memory n^{1+f} shrinks the round structure — MST's Borůvka
// phases fall like log(log_n(m/n)/f) and matching's filtering iterations
// like 1/f, reaching O(1) as the abstract promises.
//
// The cost-model axis (DESIGN.md §6): per-machine speed profiles leave the
// round structure untouched but move the simulated makespan — slowing half
// the machines slows the whole cluster's clock at identical rounds.
//
// Run with:
//
//	go run ./examples/heterogeneity-dial
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n, m = 512, 16384
	gW := hetmpc.ConnectedGNM(n, m, 5, true)
	gU := hetmpc.GNM(256, 16384, 6)

	fmt.Println("MST (Theorem 3.1): phases vs large-machine exponent f")
	fmt.Printf("%6s | %13s | %6s\n", "f", "Borůvka phases", "rounds")
	for _, f := range []float64{0, 0.125, 0.25, 0.5} {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: n, M: m, F: f, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MST(c, gW)
		if err != nil {
			log.Fatal(err)
		}
		if err := hetmpc.CheckMST(gW, r.Edges); err != nil {
			log.Fatal("validation: ", err)
		}
		fmt.Printf("%6.3f | %13d | %6d\n", f, r.BoruvkaPhases, r.Stats.Rounds)
	}

	fmt.Println()
	fmt.Println("maximal matching (Theorem 5.5): filtering iterations ~ 1/f")
	fmt.Printf("%6s | %11s | %6s\n", "f", "filter iters", "rounds")
	for _, f := range []float64{0.1, 0.2, 0.35, 0.6} {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: gU.N, M: gU.M(), F: f, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MatchingFiltering(c, gU)
		if err != nil {
			log.Fatal(err)
		}
		if err := hetmpc.CheckMatching(gU, r.Edges, true); err != nil {
			log.Fatal("validation: ", err)
		}
		fmt.Printf("%6.2f | %11d | %6d\n", f, r.FilterIters, r.Stats.Rounds)
	}

	fmt.Println()
	fmt.Println("machine profiles (DESIGN.md §6): slowing half the machines moves the makespan, not the rounds")
	fmt.Println("(sketch connectivity, n=512 m=4096)")
	gC := hetmpc.GNM(512, 4096, 6)
	_, wantComps := hetmpc.Components(gC)
	fmt.Printf("%11s | %6s | %12s | %11s\n", "slow factor", "rounds", "makespan", "vs uniform")
	var base float64
	for _, factor := range []float64{1, 4, 16, 64} {
		cfg := hetmpc.Config{N: gC.N, M: gC.M(), Seed: 9}
		cfg.Profile = hetmpc.BimodalProfile(cfg.DeriveK(), 0.5, factor)
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.Connectivity(c, gC)
		if err != nil {
			log.Fatal(err)
		}
		if r.Components != wantComps {
			log.Fatalf("validation: %d components, want %d", r.Components, wantComps)
		}
		st := c.Stats()
		if factor == 1 {
			base = st.Makespan
		}
		fmt.Printf("%11.0f | %6d | %12.4g | %10.2f×\n", factor, st.Rounds, st.Makespan, st.Makespan/base)
	}
}
