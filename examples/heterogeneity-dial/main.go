// The heterogeneity dial (Theorems 3.1 and 5.5): giving the single large
// machine superlinear memory n^{1+f} shrinks the round structure — MST's
// Borůvka phases fall like log(log_n(m/n)/f) and matching's filtering
// iterations like 1/f, reaching O(1) as the paper's abstract promises.
//
//	go run ./examples/heterogeneity-dial
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	const n, m = 512, 16384
	gW := hetmpc.ConnectedGNM(n, m, 5, true)
	gU := hetmpc.GNM(256, 16384, 6)

	fmt.Println("MST (Theorem 3.1): phases vs large-machine exponent f")
	fmt.Printf("%6s | %13s | %6s\n", "f", "Borůvka phases", "rounds")
	for _, f := range []float64{0, 0.125, 0.25, 0.5} {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: n, M: m, F: f, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MST(c, gW)
		if err != nil {
			log.Fatal(err)
		}
		if err := hetmpc.CheckMST(gW, r.Edges); err != nil {
			log.Fatal("validation: ", err)
		}
		fmt.Printf("%6.3f | %13d | %6d\n", f, r.BoruvkaPhases, r.Stats.Rounds)
	}

	fmt.Println()
	fmt.Println("maximal matching (Theorem 5.5): filtering iterations ~ 1/f")
	fmt.Printf("%6s | %11s | %6s\n", "f", "filter iters", "rounds")
	for _, f := range []float64{0.1, 0.2, 0.35, 0.6} {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: gU.N, M: gU.M(), F: f, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		r, err := hetmpc.MatchingFiltering(c, gU)
		if err != nil {
			log.Fatal(err)
		}
		if err := hetmpc.CheckMatching(gU, r.Edges, true); err != nil {
			log.Fatal("validation: ", err)
		}
		fmt.Printf("%6.2f | %11d | %6d\n", f, r.FilterIters, r.Stats.Rounds)
	}
}
