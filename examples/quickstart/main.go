// Quickstart: build a heterogeneous cluster, run the §3 MST algorithm, and
// validate the result against Kruskal.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetmpc"
)

func main() {
	// A weighted random graph: 1024 vertices, 8192 edges, unique weights.
	g := hetmpc.GNMWeighted(1024, 8192, 42)

	// One near-linear machine + K = ⌈m/√n⌉ sublinear machines (γ = 0.5).
	cluster, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d small machines of %d words, large machine of %d words\n",
		cluster.K(), cluster.SmallCap(), cluster.LargeCap())

	// MST in O(log log(m/n)) Borůvka phases + one KKT sampling step.
	res, err := hetmpc.MST(cluster, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MST weight %d with %d edges\n", res.Weight, len(res.Edges))
	fmt.Printf("  doubly-exponential Borůvka phases: %d (log log(m/n) ≈ 2)\n", res.BoruvkaPhases)
	fmt.Printf("  KKT sampling tries:                %d\n", res.SampleTries)
	fmt.Printf("  communication rounds:              %d\n", res.Stats.Rounds)
	fmt.Printf("  words exchanged:                   %d\n", res.Stats.TotalWords)

	// The simulator never leaves the model, so validate against the exact
	// sequential reference.
	if err := hetmpc.CheckMST(g, res.Edges); err != nil {
		log.Fatal("validation failed: ", err)
	}
	_, exact := hetmpc.KruskalMSF(g)
	fmt.Printf("validated: matches Kruskal weight %d exactly\n", exact)
}
