module hetmpc

go 1.22
