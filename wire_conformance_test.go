package hetmpc_test

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hetmpc"
)

// The cross-transport conformance suite (DESIGN.md §11): one table-driven
// harness run over all three Exchange transports, asserting that moving the
// deliver phase onto a real wire changes nothing the model can see —
// byte-identical algorithm outputs, identical ClusterStats and trace
// records (the modeled side), identical frame streams between the two real
// transports — and that the only new observable is wire_bytes.

// wireRun is one workload execution's full observable surface.
type wireRun struct {
	result    any                 // the algorithm's result struct (output + comm stats)
	stats     hetmpc.ClusterStats // cluster stats with WireBytes zeroed for comparison
	wireBytes int64               // measured bytes (zero iff inproc)
	trace     []hetmpc.TraceRound // trace records with WireBytes zeroed
	traceWire int64               // Σ per-round wire bytes from the trace
}

// conformanceWorkloads are the algorithm × profile cells of the suite.
// Connectivity runs the speed-skew axis only: capacity skew (zipf) shrinks
// the small machines below its sketch volume at this scale, and the
// capacity model rejects the run, as it must (same split as E26/E27).
var conformanceWorkloads = []struct {
	name     string
	profiles []string
	run      func(c *hetmpc.Cluster) (any, error)
}{
	{"mst", []string{"", "zipf:0.8", "straggler:2:8"}, func(c *hetmpc.Cluster) (any, error) {
		g := hetmpc.ConnectedGNM(512, 4096, 7, true)
		return hetmpc.MST(c, g)
	}},
	{"connectivity", []string{"", "bimodal:0.25:4", "straggler:2:8"}, func(c *hetmpc.Cluster) (any, error) {
		g := hetmpc.GNM(512, 4096, 7)
		return hetmpc.Connectivity(c, g)
	}},
}

func runConformanceCell(t *testing.T, alg, profile, transport string) wireRun {
	t.Helper()
	cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7}
	if profile != "" {
		p, err := hetmpc.ParseProfile(profile, cfg.DeriveK())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Profile = p
	}
	tr, err := hetmpc.ParseTransport(transport)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = tr
	col := hetmpc.NewTrace()
	cfg.Trace = col
	c, err := hetmpc.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wl func(*hetmpc.Cluster) (any, error)
	for _, w := range conformanceWorkloads {
		if w.name == alg {
			wl = w.run
		}
	}
	res, err := wl(c)
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", alg, profile, transport, err)
	}
	r := wireRun{result: res, stats: c.Stats(), wireBytes: c.Stats().WireBytes}
	r.stats.WireBytes = 0
	r.trace = append([]hetmpc.TraceRound(nil), col.Rounds()...)
	for i := range r.trace {
		r.traceWire += r.trace[i].WireBytes
		r.trace[i].WireBytes = 0
	}
	return r
}

// TestCrossTransportGolden is the conformance gate: every (algorithm ×
// profile) cell must produce bit-identical outputs, ClusterStats and trace
// timelines on inproc, pipe and tcp, under GOMAXPROCS 1, 4 and 8 — and the
// two real transports must put the identical, non-zero byte count on the
// wire, with the per-round trace bytes summing to it exactly.
func TestCrossTransportGolden(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, wl := range conformanceWorkloads {
		for _, spec := range wl.profiles {
			profName := spec
			if profName == "" {
				profName = "uniform"
			}
			t.Run(wl.name+"/"+profName, func(t *testing.T) {
				runtime.GOMAXPROCS(prev)
				base := runConformanceCell(t, wl.name, spec, "inproc")
				if base.wireBytes != 0 || base.traceWire != 0 {
					t.Fatalf("inproc measured %d wire bytes (%d traced), want 0", base.wireBytes, base.traceWire)
				}
				var pipeBytes, tcpBytes int64
				for _, transport := range []string{"inproc", "pipe", "tcp"} {
					for _, procs := range []int{1, 4, 8} {
						runtime.GOMAXPROCS(procs)
						got := runConformanceCell(t, wl.name, spec, transport)
						tag := fmt.Sprintf("%s@GOMAXPROCS=%d", transport, procs)
						if !reflect.DeepEqual(got.result, base.result) {
							t.Errorf("%s: algorithm output diverged from inproc", tag)
						}
						if got.stats != base.stats {
							t.Errorf("%s: modeled stats diverged:\n got %+v\nwant %+v", tag, got.stats, base.stats)
						}
						if !reflect.DeepEqual(got.trace, base.trace) {
							t.Errorf("%s: trace timeline diverged from inproc", tag)
						}
						if got.traceWire != got.wireBytes {
							t.Errorf("%s: trace wire bytes %d != stats wire bytes %d", tag, got.traceWire, got.wireBytes)
						}
						switch transport {
						case "inproc":
							if got.wireBytes != 0 {
								t.Errorf("%s: measured %d wire bytes on shared memory", tag, got.wireBytes)
							}
						case "pipe":
							if got.wireBytes <= 0 {
								t.Errorf("%s: no bytes measured", tag)
							}
							if pipeBytes == 0 {
								pipeBytes = got.wireBytes
							} else if got.wireBytes != pipeBytes {
								t.Errorf("%s: wire bytes vary across GOMAXPROCS: %d vs %d", tag, got.wireBytes, pipeBytes)
							}
						case "tcp":
							if tcpBytes == 0 {
								tcpBytes = got.wireBytes
							} else if got.wireBytes != tcpBytes {
								t.Errorf("%s: wire bytes vary across GOMAXPROCS: %d vs %d", tag, got.wireBytes, tcpBytes)
							}
						}
					}
				}
				if pipeBytes != tcpBytes {
					t.Errorf("frame streams differ between transports: pipe %d bytes, tcp %d bytes", pipeBytes, tcpBytes)
				}
			})
		}
	}
}

// TestTransportPeerDeathSurfacesError is the facade-level half of the
// silent-hang regression: when a machine's link dies, the next algorithm
// run must fail — inside the watchdog window — with a typed ErrTransport
// naming the dead link, propagated through the algorithm entry point.
func TestTransportPeerDeathSurfacesError(t *testing.T) {
	for _, transport := range []string{"pipe", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			tr, err := hetmpc.ParseTransport(transport)
			if err != nil {
				t.Fatal(err)
			}
			cfg := hetmpc.Config{N: 256, M: 2048, Seed: 3, Transport: tr}
			c, err := hetmpc.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			g := hetmpc.GNM(256, 2048, 3)
			if _, err := hetmpc.Connectivity(c, g); err != nil {
				t.Fatalf("healthy run: %v", err)
			}
			if err := c.KillLink(1); err != nil {
				t.Fatalf("KillLink: %v", err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := hetmpc.Connectivity(c, g)
				done <- err
			}()
			select {
			case err = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("algorithm hung after the peer died (silent-hang regression)")
			}
			if !errors.Is(err, hetmpc.ErrTransport) {
				t.Fatalf("err = %v, want wrapped hetmpc.ErrTransport", err)
			}
		})
	}
}
