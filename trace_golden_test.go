package hetmpc_test

import (
	"errors"
	"testing"

	"hetmpc"
)

// TestTraceConservationGolden pins the acceptance criteria of the trace
// refactor: with tracing enabled, the ordered sum of the per-round makespan
// contributions is bit-identical to Stats.Makespan and the per-round words
// sum to TotalWords — on uniform, zipf (capacity-skew), straggler and
// fault-active clusters — and with Config.Trace nil the Stats are
// bit-identical to the traced run (tracing observes, never perturbs), which
// also keeps them bit-identical to the pre-refactor goldens that
// TestUniformProfileGoldens pins.
func TestTraceConservationGolden(t *testing.T) {
	gW := hetmpc.ConnectedGNM(256, 2048, 7, true)
	gU := hetmpc.GNM(256, 2048, 7)

	flavors := []struct {
		name string
		cfg  func() hetmpc.Config
	}{
		{"uniform", func() hetmpc.Config {
			return hetmpc.Config{N: 256, M: 2048, Seed: 7}
		}},
		{"zipf", func() hetmpc.Config {
			cfg := hetmpc.Config{N: 256, M: 2048, Seed: 7}
			cfg.Profile = hetmpc.ZipfProfile(cfg.DeriveK(), 0.8, 0.05)
			return cfg
		}},
		{"straggler", func() hetmpc.Config {
			cfg := hetmpc.Config{N: 256, M: 2048, Seed: 7}
			cfg.Profile = hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
			return cfg
		}},
		{"faults", func() hetmpc.Config {
			cfg := hetmpc.Config{N: 256, M: 2048, Seed: 7}
			cfg.Faults = &hetmpc.FaultPlan{Interval: 4, CrashRate: 0.003}
			return cfg
		}},
	}
	algs := []struct {
		name string
		run  func(c *hetmpc.Cluster) error
	}{
		{"mst", func(c *hetmpc.Cluster) error {
			r, err := hetmpc.MST(c, gW)
			if err != nil {
				return err
			}
			return hetmpc.CheckMST(gW, r.Edges)
		}},
		{"matching", func(c *hetmpc.Cluster) error {
			r, err := hetmpc.MaximalMatching(c, gU)
			if err != nil {
				return err
			}
			return hetmpc.CheckMatching(gU, r.Edges, true)
		}},
	}

	for _, alg := range algs {
		for _, fl := range flavors {
			t.Run(alg.name+"/"+fl.name, func(t *testing.T) {
				// Traced run.
				cfg := fl.cfg()
				tr := hetmpc.NewTrace()
				cfg.Trace = tr
				c, err := hetmpc.NewCluster(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := alg.run(c); err != nil {
					t.Fatal(err)
				}
				st := c.Stats()

				// Conservation: ordered per-record sums reproduce the
				// aggregate Stats bit-for-bit.
				makespan := 0.0
				var words int64
				exchanges := 0
				for _, r := range tr.Rounds() {
					makespan += r.Makespan
					words += r.Words
					if r.Kind == "exchange" {
						exchanges++
					}
				}
				if makespan != st.Makespan {
					t.Fatalf("Σ trace makespan %v != Stats.Makespan %v (bit-identity required)", makespan, st.Makespan)
				}
				if words != st.TotalWords {
					t.Fatalf("Σ trace words %d != Stats.TotalWords %d", words, st.TotalWords)
				}
				if exchanges != st.Rounds {
					t.Fatalf("trace exchange records %d != Stats.Rounds %d", exchanges, st.Rounds)
				}
				if fl.name == "faults" && (st.Crashes == 0 || st.Checkpoints == 0) {
					t.Fatalf("fault flavor exercised no faults: %+v", st)
				}

				// The phase summary partitions the same totals and is
				// non-empty for every ported entry point.
				s := hetmpc.SummarizeTrace(tr.Rounds())
				if len(s.Phases) == 0 {
					t.Fatal("empty phase breakdown")
				}
				if s.Makespan != st.Makespan || s.Words != st.TotalWords {
					t.Fatalf("summary totals (%v, %d) != stats (%v, %d)", s.Makespan, s.Words, st.Makespan, st.TotalWords)
				}

				// Untraced twin: bit-identical Stats (the nil-trace path is
				// exactly the pre-refactor simulator).
				cfg2 := fl.cfg()
				c2, err := hetmpc.NewCluster(cfg2)
				if err != nil {
					t.Fatal(err)
				}
				if err := alg.run(c2); err != nil {
					t.Fatal(err)
				}
				if c2.Stats() != st {
					t.Fatalf("untraced stats diverged from traced:\nuntraced: %+v\n  traced: %+v", c2.Stats(), st)
				}
			})
		}
	}
}

// TestPhaseBreakdownAllEntryPoints drives every heterogeneous algorithm and
// every sublinear baseline through a traced cluster and requires a
// non-empty, conserving phase breakdown from each — the contract that the
// per-algorithm span port is complete.
func TestPhaseBreakdownAllEntryPoints(t *testing.T) {
	gW := hetmpc.ConnectedGNM(128, 1024, 7, true)
	gU := hetmpc.ConnectedGNM(128, 1024, 7, false)
	gC := hetmpc.Cycles(128, 2, 7)

	cases := []struct {
		name    string
		noLarge bool
		g       *hetmpc.Graph
		run     func(c *hetmpc.Cluster, g *hetmpc.Graph) error
	}{
		{"mst", false, gW, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.MST(c, g)
			return err
		}},
		{"spanner", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.Spanner(c, g, 3)
			return err
		}},
		{"spanner-weighted", false, gW, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.SpannerWeighted(c, g, 3)
			return err
		}},
		{"apsp", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.BuildAPSPOracle(c, g)
			return err
		}},
		{"matching", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.MaximalMatching(c, g)
			return err
		}},
		{"connectivity", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.Connectivity(c, g)
			return err
		}},
		{"approx-mst", false, gW, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.ApproxMSTWeight(c, g, 0.5)
			return err
		}},
		{"mincut", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.MinCutUnweighted(c, g)
			return err
		}},
		{"approx-mincut", false, gW, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.ApproxMinCut(c, g, 0.5)
			return err
		}},
		{"mis", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.MIS(c, g)
			return err
		}},
		{"coloring", false, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.Coloring(c, g)
			return err
		}},
		{"2v1", false, gC, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.TwoVsOneCycle(c, g)
			return err
		}},
		{"baseline-mst", true, gW, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.BaselineMST(c, g)
			return err
		}},
		{"baseline-cc", true, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.BaselineConnectivity(c, g)
			return err
		}},
		{"baseline-mis", true, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.BaselineMIS(c, g)
			return err
		}},
		{"baseline-coloring", true, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.BaselineColoring(c, g)
			return err
		}},
		{"baseline-matching", true, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, _, err := hetmpc.BaselineMatching(c, g)
			return err
		}},
		{"baseline-spanner", true, gU, func(c *hetmpc.Cluster, g *hetmpc.Graph) error {
			_, err := hetmpc.BaselineSpanner(c, g, 3)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := hetmpc.NewTrace()
			cfg := hetmpc.Config{N: tc.g.N, M: tc.g.M(), Seed: 7, NoLarge: tc.noLarge, Trace: tr}
			c, err := hetmpc.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.run(c, tc.g); err != nil {
				t.Fatal(err)
			}
			s := hetmpc.SummarizeTrace(tr.Rounds())
			if len(s.Phases) == 0 {
				t.Fatal("no phase breakdown recorded")
			}
			for _, p := range s.Phases {
				if p.Phase == "" {
					t.Fatalf("untagged rounds leaked past the algorithm span: %+v", p)
				}
			}
			if st := c.Stats(); s.Makespan != st.Makespan || s.Words != st.TotalWords || s.Rounds != st.Rounds {
				t.Fatalf("summary (%v, %d, %d) != stats (%v, %d, %d)",
					s.Makespan, s.Words, s.Rounds, st.Makespan, st.TotalWords, st.Rounds)
			}
			// The span stack must be fully unwound after the entry point
			// returns, or later algorithms on this cluster inherit a stale
			// phase prefix.
			if got := tr.Depth(); got != 0 {
				t.Fatalf("span stack depth %d after %s returned, want 0", got, tc.name)
			}
		})
	}
}

// TestErrNeedsLarge is the regression test for the unified requires-large
// failure: every large-requiring algorithm on a NoLarge cluster fails with
// an error that errors.Is-matches hetmpc.ErrNeedsLarge and still names the
// algorithm.
func TestErrNeedsLarge(t *testing.T) {
	gU := hetmpc.ConnectedGNM(128, 1024, 7, false)
	gW := hetmpc.ConnectedGNM(128, 1024, 7, true)
	gC := hetmpc.Cycles(128, 2, 7)
	c, err := hetmpc.NewCluster(hetmpc.Config{N: 128, M: 1024, Seed: 7, NoLarge: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"MST", func() error { _, err := hetmpc.MST(c, gW); return err }},
		{"Spanner", func() error { _, err := hetmpc.Spanner(c, gU, 3); return err }},
		{"SpannerWeighted", func() error { _, err := hetmpc.SpannerWeighted(c, gW, 3); return err }},
		{"BuildAPSPOracle", func() error { _, err := hetmpc.BuildAPSPOracle(c, gU); return err }},
		{"MaximalMatching", func() error { _, err := hetmpc.MaximalMatching(c, gU); return err }},
		{"MatchingFiltering", func() error { _, err := hetmpc.MatchingFiltering(c, gU); return err }},
		{"Connectivity", func() error { _, err := hetmpc.Connectivity(c, gU); return err }},
		{"ApproxMSTWeight", func() error { _, err := hetmpc.ApproxMSTWeight(c, gW, 0.5); return err }},
		{"MinCutUnweighted", func() error { _, err := hetmpc.MinCutUnweighted(c, gU); return err }},
		{"ApproxMinCut", func() error { _, err := hetmpc.ApproxMinCut(c, gW, 0.5); return err }},
		{"MIS", func() error { _, err := hetmpc.MIS(c, gU); return err }},
		{"Coloring", func() error { _, err := hetmpc.Coloring(c, gU); return err }},
		{"TwoVsOneCycle", func() error { _, err := hetmpc.TwoVsOneCycle(c, gC); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatalf("%s ran without the large machine", tc.name)
			}
			if !errors.Is(err, hetmpc.ErrNeedsLarge) {
				t.Fatalf("%s error %q does not match ErrNeedsLarge", tc.name, err)
			}
			if !containsName(err.Error(), tc.name) {
				t.Fatalf("%s error %q does not name the algorithm", tc.name, err)
			}
			// The refused call must not have touched the cluster.
			if st := c.Stats(); st.Rounds != 0 {
				t.Fatalf("%s consumed %d rounds before refusing", tc.name, st.Rounds)
			}
		})
	}
}

func containsName(s, name string) bool {
	for i := 0; i+len(name) <= len(s); i++ {
		if s[i:i+len(name)] == name {
			return true
		}
	}
	return false
}
