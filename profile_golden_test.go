package hetmpc_test

import (
	"runtime"
	"testing"

	"hetmpc"
)

// comm is the communication-side of ClusterStats (everything except the
// profile-dependent makespan), for comparing runs against the pre-profile
// goldens.
type comm struct {
	Rounds                 int
	Messages, TotalWords   int64
	MaxSendWords, MaxRecvW int
}

func commOf(s hetmpc.ClusterStats) comm {
	return comm{s.Rounds, s.Messages, s.TotalWords, s.MaxSendWords, s.MaxRecvWords}
}

// TestUniformProfileGoldens pins the uniform regime to the exact Stats the
// simulator produced before the cost-model refactor (captured at that
// commit with seed 7): per-machine caps, weighted placement and weighted
// splitter selection must all reduce bit-identically on uniform profiles.
// The table runs each workload three ways — no profile, explicit uniform
// profile, and a straggler (speed-only) profile — all three must reproduce
// the golden communication stats; the straggler run must additionally show
// a strictly larger makespan at the identical round structure.
func TestUniformProfileGoldens(t *testing.T) {
	gW := hetmpc.ConnectedGNM(512, 4096, 7, true)
	gU := hetmpc.GNM(512, 4096, 7)

	cases := []struct {
		name    string
		noLarge bool
		run     func(c *hetmpc.Cluster) error
		want    comm
	}{
		{"mst", false, func(c *hetmpc.Cluster) error {
			r, err := hetmpc.MST(c, gW)
			if err == nil && r.Weight != 153235 {
				t.Errorf("mst weight %d, want 153235", r.Weight)
			}
			return err
		}, comm{56, 39592, 1037522, 99008, 25337}},
		{"connectivity", false, func(c *hetmpc.Cluster) error {
			r, err := hetmpc.Connectivity(c, gU)
			if err == nil && r.Components != 1 {
				t.Errorf("components %d, want 1", r.Components)
			}
			return err
		}, comm{8, 32179, 8756340, 99008, 525312}},
		{"matching", false, func(c *hetmpc.Cluster) error {
			_, err := hetmpc.MaximalMatching(c, gU)
			return err
		}, comm{92, 100655, 1750624, 99008, 25391}},
		{"baseline-mst", true, func(c *hetmpc.Cluster) error {
			r, err := hetmpc.BaselineMST(c, gW)
			if err == nil && r.Weight != 153235 {
				t.Errorf("baseline mst weight %d, want 153235", r.Weight)
			}
			return err
		}, comm{309, 168442, 4554789, 67456, 24212}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7, NoLarge: tc.noLarge}
			k := cfg.DeriveK()
			profiles := map[string]*hetmpc.Profile{
				"nil":       nil,
				"uniform":   hetmpc.UniformProfile(k),
				"straggler": hetmpc.StragglerProfile(k, 4, 16),
			}
			makespans := map[string]float64{}
			for pname, p := range profiles {
				cfg.Profile = p
				c, err := hetmpc.NewCluster(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := tc.run(c); err != nil {
					t.Fatalf("profile %s: %v", pname, err)
				}
				if got := commOf(c.Stats()); got != tc.want {
					t.Fatalf("profile %s: stats %+v, want golden %+v", pname, got, tc.want)
				}
				makespans[pname] = c.Stats().Makespan
			}
			if makespans["nil"] != makespans["uniform"] {
				t.Fatalf("uniform makespan %v differs from nil %v", makespans["uniform"], makespans["nil"])
			}
			if makespans["straggler"] <= makespans["uniform"] {
				t.Fatalf("straggler makespan %v not above uniform %v at equal rounds",
					makespans["straggler"], makespans["uniform"])
			}

			// Fault axis of the same goldens: a fault-free (zero) plan is
			// bit-identical to no plan at all — full Stats, not just the
			// communication side — and an active plan keeps the golden
			// communication stats while charging its overhead on top.
			cfg.Profile = nil
			cfg.Faults = &hetmpc.FaultPlan{}
			cZero, err := hetmpc.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.run(cZero); err != nil {
				t.Fatalf("zero fault plan: %v", err)
			}
			cfg.Faults = nil
			cNil, err := hetmpc.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.run(cNil); err != nil {
				t.Fatal(err)
			}
			if cZero.Stats() != cNil.Stats() {
				t.Fatalf("zero fault plan not bit-identical to nil:\n zero: %+v\n  nil: %+v",
					cZero.Stats(), cNil.Stats())
			}
			cfg.Faults = &hetmpc.FaultPlan{Interval: 8, CrashRate: 0.002}
			cFault, err := hetmpc.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.run(cFault); err != nil {
				t.Fatalf("active fault plan: %v", err)
			}
			st := cFault.Stats()
			if got := commOf(st); got != tc.want {
				t.Fatalf("active fault plan changed the golden communication stats: %+v vs %+v", got, tc.want)
			}
			if st.Checkpoints == 0 || st.ReplicationWords == 0 {
				t.Fatalf("active plan replicated nothing: %+v", st)
			}
			if st.Makespan <= makespans["nil"] {
				t.Fatalf("fault overhead missing: makespan %v <= fault-free %v", st.Makespan, makespans["nil"])
			}
		})
	}
}

// TestRecoveryDeterministicAcrossGOMAXPROCS pins the acceptance criterion
// that recovery is deterministic under any GOMAXPROCS: a full MST run with
// checkpoints, seed-derived crashes and a transient slowdown produces
// bit-identical Stats on one CPU and on all of them.
func TestRecoveryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	plan := &hetmpc.FaultPlan{
		Interval:  4,
		CrashRate: 0.003,
		Crashes:   []hetmpc.FaultCrash{{Round: 10, Machine: 2, RestartAfter: 1}},
		Slowdowns: []hetmpc.FaultSlowdown{{Machine: 5, From: 3, To: 30, Factor: 8}},
	}
	run := func() hetmpc.ClusterStats {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: 512, M: 4096, Seed: 7, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != 153235 {
			t.Fatalf("mst weight %d, want golden 153235", r.Weight)
		}
		return c.Stats()
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(prev)
	many := run()
	if one != many {
		t.Fatalf("recovery stats differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one, many)
	}
	if one.Crashes == 0 {
		t.Fatalf("plan injected no crashes: %+v", one)
	}
}

// TestMakespanMonotoneInSlowdown is the property test: Stats.Makespan is
// monotone nondecreasing in any single machine's slowdown factor, on both
// slowdown axes the simulator has — a transient fault window and a
// persistent profile speed.
func TestMakespanMonotoneInSlowdown(t *testing.T) {
	g := hetmpc.GNM(256, 2048, 11)
	cfg := hetmpc.Config{N: 256, M: 2048, Seed: 11}
	k := cfg.DeriveK()
	factors := []float64{1, 4, 32, 256, 4096}

	connectivity := func(c *hetmpc.Cluster) {
		t.Helper()
		r, err := hetmpc.Connectivity(c, g)
		if err != nil {
			t.Fatal(err)
		}
		_, want := hetmpc.Components(g)
		if r.Components != want {
			t.Fatalf("components %d, want %d", r.Components, want)
		}
	}
	for _, machine := range []int{0, k / 2, k - 1} {
		prevWindow, prevSpeed := 0.0, 0.0
		for _, f := range factors {
			// Axis 1: transient fault-plan window covering the whole run.
			c := cfg
			if f > 1 {
				c.Faults = &hetmpc.FaultPlan{Slowdowns: []hetmpc.FaultSlowdown{
					{Machine: machine, From: 1, To: 1 << 20, Factor: f},
				}}
			}
			cw, err := hetmpc.NewCluster(c)
			if err != nil {
				t.Fatal(err)
			}
			connectivity(cw)
			if ms := cw.Stats().Makespan; ms < prevWindow {
				t.Fatalf("machine %d: window makespan fell from %v to %v at factor %g",
					machine, prevWindow, ms, f)
			} else {
				prevWindow = ms
			}

			// Axis 2: persistent profile speed 1/f on the same machine.
			c = cfg
			p := hetmpc.UniformProfile(k)
			p.Speed[machine] = 1 / f
			c.Profile = p
			cs, err := hetmpc.NewCluster(c)
			if err != nil {
				t.Fatal(err)
			}
			connectivity(cs)
			if ms := cs.Stats().Makespan; ms < prevSpeed {
				t.Fatalf("machine %d: speed makespan fell from %v to %v at factor %g",
					machine, prevSpeed, ms, f)
			} else {
				prevSpeed = ms
			}
		}
	}
}
