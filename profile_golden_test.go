package hetmpc_test

import (
	"testing"

	"hetmpc"
)

// comm is the communication-side of ClusterStats (everything except the
// profile-dependent makespan), for comparing runs against the pre-profile
// goldens.
type comm struct {
	Rounds                 int
	Messages, TotalWords   int64
	MaxSendWords, MaxRecvW int
}

func commOf(s hetmpc.ClusterStats) comm {
	return comm{s.Rounds, s.Messages, s.TotalWords, s.MaxSendWords, s.MaxRecvWords}
}

// TestUniformProfileGoldens pins the uniform regime to the exact Stats the
// simulator produced before the cost-model refactor (captured at that
// commit with seed 7): per-machine caps, weighted placement and weighted
// splitter selection must all reduce bit-identically on uniform profiles.
// The table runs each workload three ways — no profile, explicit uniform
// profile, and a straggler (speed-only) profile — all three must reproduce
// the golden communication stats; the straggler run must additionally show
// a strictly larger makespan at the identical round structure.
func TestUniformProfileGoldens(t *testing.T) {
	gW := hetmpc.ConnectedGNM(512, 4096, 7, true)
	gU := hetmpc.GNM(512, 4096, 7)

	cases := []struct {
		name    string
		noLarge bool
		run     func(c *hetmpc.Cluster) error
		want    comm
	}{
		{"mst", false, func(c *hetmpc.Cluster) error {
			r, err := hetmpc.MST(c, gW)
			if err == nil && r.Weight != 153235 {
				t.Errorf("mst weight %d, want 153235", r.Weight)
			}
			return err
		}, comm{56, 39592, 1037522, 99008, 25337}},
		{"connectivity", false, func(c *hetmpc.Cluster) error {
			r, err := hetmpc.Connectivity(c, gU)
			if err == nil && r.Components != 1 {
				t.Errorf("components %d, want 1", r.Components)
			}
			return err
		}, comm{8, 32179, 8756340, 99008, 525312}},
		{"matching", false, func(c *hetmpc.Cluster) error {
			_, err := hetmpc.MaximalMatching(c, gU)
			return err
		}, comm{92, 100655, 1750624, 99008, 25391}},
		{"baseline-mst", true, func(c *hetmpc.Cluster) error {
			r, err := hetmpc.BaselineMST(c, gW)
			if err == nil && r.Weight != 153235 {
				t.Errorf("baseline mst weight %d, want 153235", r.Weight)
			}
			return err
		}, comm{309, 168442, 4554789, 67456, 24212}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7, NoLarge: tc.noLarge}
			k := cfg.DeriveK()
			profiles := map[string]*hetmpc.Profile{
				"nil":       nil,
				"uniform":   hetmpc.UniformProfile(k),
				"straggler": hetmpc.StragglerProfile(k, 4, 16),
			}
			makespans := map[string]float64{}
			for pname, p := range profiles {
				cfg.Profile = p
				c, err := hetmpc.NewCluster(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := tc.run(c); err != nil {
					t.Fatalf("profile %s: %v", pname, err)
				}
				if got := commOf(c.Stats()); got != tc.want {
					t.Fatalf("profile %s: stats %+v, want golden %+v", pname, got, tc.want)
				}
				makespans[pname] = c.Stats().Makespan
			}
			if makespans["nil"] != makespans["uniform"] {
				t.Fatalf("uniform makespan %v differs from nil %v", makespans["uniform"], makespans["nil"])
			}
			if makespans["straggler"] <= makespans["uniform"] {
				t.Fatalf("straggler makespan %v not above uniform %v at equal rounds",
					makespans["straggler"], makespans["uniform"])
			}
		})
	}
}
