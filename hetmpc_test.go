package hetmpc_test

import (
	"errors"
	"testing"

	"hetmpc"
	"hetmpc/internal/mpc"
)

// TestPublicAPIEndToEnd drives every public entry point once through the
// facade, the way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	gW := hetmpc.ConnectedGNM(128, 1024, 3, true)
	gU := gW.Unweighted()

	newC := func(noLarge bool, f float64) *hetmpc.Cluster {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: gW.N, M: gW.M(), F: f, NoLarge: noLarge, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	mst, err := hetmpc.MST(newC(false, 0), gW)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckMST(gW, mst.Edges); err != nil {
		t.Fatal(err)
	}

	sp, err := hetmpc.Spanner(newC(false, 0), gU, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckSpanner(gU, hetmpc.NewGraph(gU.N, sp.Edges, false), sp.Stretch, 4, 7); err != nil {
		t.Fatal(err)
	}

	mm, err := hetmpc.MaximalMatching(newC(false, 0), gU)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckMatching(gU, mm.Edges, true); err != nil {
		t.Fatal(err)
	}

	mf, err := hetmpc.MatchingFiltering(newC(false, 0.4), gU)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckMatching(gU, mf.Edges, true); err != nil {
		t.Fatal(err)
	}

	cc, err := hetmpc.Connectivity(newC(false, 0), gU)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := hetmpc.Components(gU); cc.Components != want {
		t.Fatalf("components %d want %d", cc.Components, want)
	}

	mis, err := hetmpc.MIS(newC(false, 0), gU)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckMIS(gU, mis.Set); err != nil {
		t.Fatal(err)
	}

	col, err := hetmpc.Coloring(newC(false, 0), gU)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckColoring(gU, col.Colors, col.MaxColor); err != nil {
		t.Fatal(err)
	}

	mc, err := hetmpc.MinCutUnweighted(newC(false, 0), gU)
	if err != nil {
		t.Fatal(err)
	}
	if want := hetmpc.StoerWagner(gU); mc.Value != want {
		t.Fatalf("min cut %d want %d", mc.Value, want)
	}

	// Baselines on a large-machine-free cluster.
	bmst, err := hetmpc.BaselineMST(newC(true, 0), gW)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetmpc.CheckMST(gW, bmst.Edges); err != nil {
		t.Fatal(err)
	}
	bcc, err := hetmpc.BaselineConnectivity(newC(true, 0), gU)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := hetmpc.Components(gU); bcc.Components != want {
		t.Fatalf("baseline components %d want %d", bcc.Components, want)
	}
}

// TestHeterogeneousVsBaselineRounds is the repository's headline invariant:
// on the same workload, the heterogeneous regime uses far fewer rounds than
// the sublinear baseline for connectivity (the clearest O(1)-vs-log-n row).
func TestHeterogeneousVsBaselineRounds(t *testing.T) {
	g := hetmpc.Cycles(1024, 2, 9)
	het, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := hetmpc.TwoVsOneCycle(het, g)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), NoLarge: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := hetmpc.BaselineConnectivity(sub, g)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Cycles != 2 || rs.Components != 2 {
		t.Fatal("wrong answers")
	}
	if rh.Stats.Rounds*10 >= rs.Stats.Rounds {
		t.Fatalf("no separation: het %d rounds vs baseline %d", rh.Stats.Rounds, rs.Stats.Rounds)
	}
}

// TestCapacityFailureInjection shrinks the machine capacities until the
// model enforcement fires, and checks the error is the typed one.
func TestCapacityFailureInjection(t *testing.T) {
	g := hetmpc.GNMWeighted(256, 2048, 3)
	c, err := hetmpc.NewCluster(hetmpc.Config{
		N: g.N, M: g.M(), Seed: 1,
		CSmall: 0.05, LogExpSmall: 1, // starve the small machines
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = hetmpc.MST(c, g)
	if err == nil {
		t.Fatal("starved cluster still succeeded")
	}
	if !errors.Is(err, mpc.ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	if _, err := hetmpc.NewCluster(hetmpc.Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := hetmpc.NewCluster(hetmpc.Config{N: 100, Gamma: 2}); err == nil {
		t.Fatal("gamma=2 accepted")
	}
}
