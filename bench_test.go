package hetmpc_test

// One benchmark per evaluation artifact (DESIGN.md §2, EXPERIMENTS.md):
// BenchmarkE1_Table1 regenerates the paper's Table 1; E2..E16 are the
// figure-style sweeps; E17..E19 sweep heterogeneous machine profiles and
// report the simulated makespan (DESIGN.md §6); E20..E22 sweep the
// fault-injection and recovery subsystem (DESIGN.md §7); E23..E25 sweep
// the placement-policy subsystem (DESIGN.md §8); E26..E28 sweep the trace
// subsystem's phase timelines and critical-path attribution (DESIGN.md
// §9); E29..E31 sweep adaptive placement — online speed re-estimation
// with round-boundary re-splitting (DESIGN.md §10); E32 sweeps the
// Exchange transports — the deliver phase over a real wire at asserted
// bit-identical model numbers (DESIGN.md §11); E33 is the hot-path speed
// gate — reference vs optimized kernels at 10× Table-1 sizes with outputs
// asserted identical (DESIGN.md §14). Each benchmark
// runs its experiment through the heterogeneous-MPC simulator, validates
// every output against the exact references, and reports measured model
// metrics via b.ReportMetric.
//
// Run everything once:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Individual experiments also report headline metrics (rounds, phases,
// sizes) so that `go test -bench=E2` gives the Table/figure numbers without
// the CLI.

import (
	"math"
	"os"
	"testing"

	"hetmpc"
	"hetmpc/internal/exp"
)

// benchDir is where experiment benchmarks drop their BENCH_<exp>.json
// artifacts (override with the BENCH_DIR environment variable; "-" disables
// artifact writing). The artifacts record the perf trajectory across PRs:
// model metrics (rounds, words) plus wall-clock ns and allocations.
func benchDir() string {
	if d := os.Getenv("BENCH_DIR"); d != "" {
		return d
	}
	return "bench"
}

// runExp executes one experiment table per benchmark iteration, reports the
// model metrics, and writes the BENCH_<exp>.json artifact of the last
// iteration.
func runExp(b *testing.B, id string) {
	b.Helper()
	var art *exp.Artifact
	for i := 0; i < b.N; i++ {
		a, err := exp.Run(id, 7)
		if err != nil {
			b.Fatal(err)
		}
		art = a
	}
	b.ReportMetric(float64(art.Model.Rounds), "rounds")
	b.ReportMetric(float64(art.Model.TotalWords), "words")
	b.ReportMetric(art.Model.Makespan, "makespan")
	if dir := benchDir(); dir != "-" {
		if _, err := art.WriteFile(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_Table1(b *testing.B)                { runExp(b, "table1") }
func BenchmarkE2_MSTRoundsVsDensity(b *testing.B)    { runExp(b, "e2") }
func BenchmarkE3_MSTSuperlinear(b *testing.B)        { runExp(b, "e3") }
func BenchmarkE4_KKTFLight(b *testing.B)             { runExp(b, "e4") }
func BenchmarkE5_SpannerSizeStretch(b *testing.B)    { runExp(b, "e5") }
func BenchmarkE6_ModifiedBaswanaSen(b *testing.B)    { runExp(b, "e6") }
func BenchmarkE7_MatchingDegreeVsDelta(b *testing.B) { runExp(b, "e7") }
func BenchmarkE8_MatchingFiltering(b *testing.B)     { runExp(b, "e8") }
func BenchmarkE9_Connectivity(b *testing.B)          { runExp(b, "e9") }
func BenchmarkE10_ApproxMST(b *testing.B)            { runExp(b, "e10") }
func BenchmarkE11_MinCut(b *testing.B)               { runExp(b, "e11") }
func BenchmarkE12_MIS(b *testing.B)                  { runExp(b, "e12") }
func BenchmarkE13_Coloring(b *testing.B)             { runExp(b, "e13") }
func BenchmarkE14_TwoVsOneCycle(b *testing.B)        { runExp(b, "e14") }
func BenchmarkE15_APSP(b *testing.B)                 { runExp(b, "e15") }
func BenchmarkE16_MSTAblation(b *testing.B)          { runExp(b, "e16") }
func BenchmarkE17_SkewPlacement(b *testing.B)        { runExp(b, "e17") }
func BenchmarkE18_Stragglers(b *testing.B)           { runExp(b, "e18") }
func BenchmarkE19_Bimodal(b *testing.B)              { runExp(b, "e19") }
func BenchmarkE20_CrashRate(b *testing.B)            { runExp(b, "e20") }
func BenchmarkE21_CheckpointInterval(b *testing.B)   { runExp(b, "e21") }
func BenchmarkE22_StragglerCrash(b *testing.B)       { runExp(b, "e22") }
func BenchmarkE23_PlacementPolicies(b *testing.B)    { runExp(b, "e23") }
func BenchmarkE24_SpeculationDial(b *testing.B)      { runExp(b, "e24") }
func BenchmarkE25_PlacementFaults(b *testing.B)      { runExp(b, "e25") }
func BenchmarkE26_PhaseBreakdown(b *testing.B)       { runExp(b, "e26") }
func BenchmarkE27_CriticalPath(b *testing.B)         { runExp(b, "e27") }
func BenchmarkE28_TraceGuidedPlacement(b *testing.B) { runExp(b, "e28") }

func BenchmarkE29_AdaptivePolicyGrid(b *testing.B)        { runExp(b, "e29") }
func BenchmarkE30_MisreportedProfile(b *testing.B)        { runExp(b, "e30") }
func BenchmarkE31_AdaptiveTransientSlowdown(b *testing.B) { runExp(b, "e31") }
func BenchmarkE32_TransportSweep(b *testing.B)            { runExp(b, "e32") }
func BenchmarkE33_KernelScaleSweep(b *testing.B)          { runExp(b, "e33") }

// --- direct algorithm micro-benchmarks with model-metric reporting ---

func benchCluster(b *testing.B, n, m int, f float64, noLarge bool) *hetmpc.Cluster {
	b.Helper()
	c, err := hetmpc.NewCluster(hetmpc.Config{N: n, M: m, F: f, NoLarge: noLarge, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkMSTHeterogeneous(b *testing.B) {
	g := hetmpc.GNMWeighted(512, 8192, 3)
	var rounds, phases float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.MST(c, g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
		phases = float64(r.BoruvkaPhases)
	}
	b.ReportMetric(rounds, "rounds")
	b.ReportMetric(phases, "phases")
}

func BenchmarkMSTSublinearBaseline(b *testing.B) {
	g := hetmpc.GNMWeighted(512, 8192, 3)
	var rounds, phases float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, true)
		r, err := hetmpc.BaselineMST(c, g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
		phases = float64(r.Phases)
	}
	b.ReportMetric(rounds, "rounds")
	b.ReportMetric(phases, "phases")
}

func BenchmarkSpannerK4(b *testing.B) {
	g := hetmpc.ConnectedGNM(512, 6144, 5, false)
	var rounds, size float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.Spanner(c, g, 4)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
		size = float64(len(r.Edges))
	}
	b.ReportMetric(rounds, "rounds")
	b.ReportMetric(size, "edges")
}

func BenchmarkConnectivitySketches(b *testing.B) {
	g := hetmpc.GNM(512, 2048, 7)
	var rounds float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.Connectivity(c, g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
}

func BenchmarkMatchingHeterogeneous(b *testing.B) {
	g := hetmpc.GNM(512, 4096, 9)
	var rounds float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.MaximalMatching(c, g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
}

func BenchmarkMISHeterogeneous(b *testing.B) {
	g := hetmpc.GNM(512, 4096, 11)
	var iters float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.MIS(c, g)
		if err != nil {
			b.Fatal(err)
		}
		iters = float64(r.Iterations)
	}
	b.ReportMetric(iters, "iterations")
	b.ReportMetric(math.Log2(math.Log2(float64(g.MaxDegree()))+1), "loglogΔ")
}

func BenchmarkColoringHeterogeneous(b *testing.B) {
	g := hetmpc.GNM(512, 8192, 13)
	var rounds float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.Coloring(c, g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
}

func BenchmarkTwoVsOneCycle(b *testing.B) {
	g := hetmpc.Cycles(4096, 2, 3)
	var rounds float64
	for i := 0; i < b.N; i++ {
		c := benchCluster(b, g.N, g.M(), 0, false)
		r, err := hetmpc.TwoVsOneCycle(c, g)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(r.Stats.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
}
