// Package hetmpc is an executable reproduction of "Massively Parallel
// Computation in a Heterogeneous Regime" (Fischer, Horowitz, Oshman — PODC
// 2022): a simulator for the Heterogeneous MPC model — one near-linear (or
// superlinear) machine plus many sublinear machines, synchronous rounds,
// strict per-round communication caps — together with the paper's
// algorithms:
//
//   - MST in O(log log(m/n)) Borůvka phases (§3, Theorem 3.1);
//   - O(k)-spanners of size O(n^{1+1/k}) in O(1) rounds (§4, Theorem 4.1),
//     and the O(log n)-approximate APSP oracle of Corollary 4.2;
//   - maximal matching whose round count depends on the average degree
//     (§5, Theorem 5.1) and the filtering variant for superlinear memory
//     (Theorem 5.5);
//   - the ported near-linear algorithms of Appendix C: connectivity and
//     (1+ε)-MST weight via graph sketches, exact and (1±ε) minimum cut,
//     MIS in O(log log Δ) and (Δ+1)-coloring in O(1) rounds;
//   - the "2-vs-1 cycle" problem that motivates the model;
//   - sublinear-regime baselines (no large machine) for every comparison
//     row of the paper's Table 1.
//
// Beyond the paper's uniform small machines, the simulator supports
// heterogeneous machine profiles (Profile; generators UniformProfile,
// ZipfProfile, BimodalProfile, StragglerProfile, and the CLI-spec parser
// ParseProfile): per-machine capacities, compute speeds and link
// bandwidths, with the simulated makespan reported in ClusterStats.Makespan
// and per-machine busy time on the Cluster. A nil profile reproduces the
// paper's model exactly.
//
// How work is split across those machines is a pluggable placement policy
// (Config.Placement; parser ParsePlacement, DESIGN.md §8): the default
// capacity-proportional CapPlacement, the min-makespan
// ThroughputPlacement (share ∝ min(capacity, effective speed)),
// SpeculatePlacement, which adds first-copy-wins redundant execution of
// the slowest per-round shards on idle fast machines — speculative copies
// are charged honestly in ClusterStats.SpeculationWords — and
// AdaptivePlacement, which re-estimates every machine's effective speed
// online (EWMA over the rounds it actually runs) and recomputes the
// throughput shares at round boundaries, so placement stays right even
// when the declared profile is wrong (DESIGN.md §10). Policies move
// data, never correctness: every algorithm validates its output under
// every policy.
//
// The simulator also measures what fault tolerance costs a
// Heterogeneous-MPC algorithm: Config.Faults takes a deterministic
// FaultPlan (crash schedules, transient slowdown windows, a checkpoint
// cadence; parser ParseFaultPlan), and the recovery engine replicates each
// machine's registered state to a capacity-aware buddy and restores it on
// crashes — charging every replication and recovery action in words,
// rounds and makespan (ClusterStats.Crashes, RecoveryRounds,
// ReplicationWords, Checkpoints). Faults never change an algorithm's round
// structure or output, only its measured cost; a nil (or zero) plan is
// bit-identical to the reliable cluster. See DESIGN.md §7.
//
// Quickstart:
//
//	g := hetmpc.GNMWeighted(1024, 8192, 42)
//	c, err := hetmpc.NewCluster(hetmpc.Config{N: g.N, M: g.M(), Seed: 1})
//	if err != nil { ... }
//	res, err := hetmpc.MST(c, g)
//	fmt.Println(res.Weight, res.Stats.Rounds)
//
// and under a heterogeneous profile:
//
//	cfg := hetmpc.Config{N: g.N, M: g.M(), Seed: 1}
//	cfg.Profile = hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
//	c, err = hetmpc.NewCluster(cfg)
//	// ... run as before; c.Stats().Makespan is the simulated wall-clock.
//
// Every algorithm runs entirely inside the simulated model (all cross-machine
// data moves through capacity-checked Exchange rounds) and returns the
// measured round count and traffic alongside its output.
package hetmpc

import (
	"io"

	"hetmpc/internal/core"
	"hetmpc/internal/fault"
	"hetmpc/internal/graph"
	"hetmpc/internal/metrics"
	"hetmpc/internal/mpc"
	"hetmpc/internal/sched"
	"hetmpc/internal/sublinear"
	"hetmpc/internal/trace"
	"hetmpc/internal/wire"
)

// ErrNeedsLarge is the unified "requires the large machine" failure: every
// large-requiring algorithm (MST, Spanner, Connectivity, …) wraps it with
// its own name when run on a NoLarge cluster, so callers detect the
// condition with errors.Is(err, hetmpc.ErrNeedsLarge) and fall back to a
// Baseline* algorithm.
var ErrNeedsLarge = mpc.ErrNeedsLarge

// Re-exported model types.
type (
	// Config parameterizes a cluster; see mpc.Config for field docs.
	Config = mpc.Config
	// Cluster is a running heterogeneous MPC system.
	Cluster = mpc.Cluster
	// ClusterStats are the accumulated communication metrics of a cluster
	// (rounds, messages, words, and the simulated Makespan).
	ClusterStats = mpc.Stats
	// Profile describes per-machine heterogeneity: capacity, compute speed
	// and link bandwidth scales; nil is the paper's uniform cluster.
	Profile = mpc.Profile
	// PlacementPolicy decides how the placement primitives split work
	// across heterogeneous machines (Config.Placement); nil is the
	// capacity-proportional default. See CapPlacement,
	// ThroughputPlacement, SpeculatePlacement and DESIGN.md §8.
	PlacementPolicy = sched.Policy
	// CapPlacement is the capacity-proportional placement policy (the
	// default; bit-identical to a nil Config.Placement).
	CapPlacement = sched.Cap
	// ThroughputPlacement is the LPT-style min-makespan placement policy:
	// share ∝ min(capacity share, effective speed).
	ThroughputPlacement = sched.Throughput
	// SpeculatePlacement is ThroughputPlacement plus redundant execution
	// of the R slowest per-round shards on idle fast machines,
	// first-copy-wins, charged in ClusterStats.SpeculationWords.
	SpeculatePlacement = sched.Speculate
	// AdaptivePlacement is ThroughputPlacement recomputed online: an EWMA
	// estimator (gain Alpha) re-estimates every machine's effective
	// per-word cost from the rounds it actually runs, and the recomputed
	// shares switch in at round boundaries — so placement converges to the
	// truth even when the declared Profile is wrong. Alpha = 0 (and any
	// truthful profile) is bit-identical to ThroughputPlacement; the bare
	// "adaptive" spec uses the default gain 0.5. See DESIGN.md §10.
	AdaptivePlacement = sched.Adaptive
	// FaultPlan is a deterministic fault-injection schedule plus the
	// checkpoint cadence of the recovery protocol (Config.Faults); nil is
	// the reliable cluster. See fault.Plan.
	FaultPlan = fault.Plan
	// FaultCrash schedules one machine failure inside a FaultPlan.
	FaultCrash = fault.Crash
	// FaultSlowdown is a transient straggler window inside a FaultPlan.
	FaultSlowdown = fault.Slowdown
	// Checkpointer is implemented by a machine's algorithm state so the
	// recovery engine can replicate and restore it
	// (Cluster.SetCheckpointer).
	Checkpointer = fault.Checkpointer
	// Trace is the per-round trace collector (Config.Trace): with one
	// attached, the simulator records every makespan contribution — tagged
	// with the phase-span path (Cluster.Span) — without perturbing the run.
	// See NewTrace, SummarizeTrace and DESIGN.md §9.
	Trace = trace.Collector
	// TraceRound is one record of the trace timeline: an exchange round, a
	// checkpoint barrier or a crash recovery, with its exact makespan
	// contribution, words, argmax machine and per-machine detail.
	TraceRound = trace.Round
	// TraceSummary is the aggregated critical-path view of a timeline
	// (SummarizeTrace): totals plus per-phase makespan shares and
	// bottleneck machines.
	TraceSummary = trace.Summary
	// TracePhase is one phase row of a TraceSummary.
	TracePhase = trace.PhaseStat
)

// Trace machine-id and record-kind constants, re-exported so TraceRound
// consumers can interpret Argmax/Victim and Kind without importing the
// internal package: TraceLarge is the large machine, TraceNone marks "no
// machine" (a silent round), and the kinds tag exchange rounds, checkpoint
// barriers and crash recoveries.
const (
	TraceLarge          = trace.Large
	TraceNone           = trace.None
	TraceKindExchange   = trace.KindExchange
	TraceKindCheckpoint = trace.KindCheckpoint
	TraceKindRecovery   = trace.KindRecovery
)

type (
	// Span is a phase-scoped measurement window (Cluster.Span): End returns
	// the ClusterStats delta of the scope, and traced rounds inside it are
	// tagged with the span path. Spans nest without double-counting.
	Span = mpc.Span
	// Graph is an edge-list graph over vertices 0..N-1.
	Graph = graph.Graph
	// Edge is an undirected edge with U < V.
	Edge = graph.Edge
	// Half is one direction of an edge in an adjacency list.
	Half = graph.Half
	// Stats is the per-run metrics snapshot attached to algorithm results.
	Stats = core.Stats
)

// Re-exported result types.
type (
	MSTResult          = core.MSTResult
	SpannerResult      = core.SpannerResult
	MatchingResult     = core.MatchingResult
	ConnectivityResult = core.ConnectivityResult
	MSTApproxResult    = core.MSTApproxResult
	MinCutResult       = core.MinCutResult
	MISResult          = core.MISResult
	ColoringResult     = core.ColoringResult
	TwoVsOneCycleRes   = core.TwoVsOneCycleResult
	APSPOracle         = core.APSPOracle

	BaselineCCResult       = sublinear.CCResult
	BaselineMSTResult      = sublinear.MSTResult
	BaselineMISResult      = sublinear.MISResult
	BaselineColoringResult = sublinear.ColoringResult
	BaselineSpannerResult  = sublinear.SpannerResult
	PeelResult             = sublinear.PeelResult

	// MSTOptions exposes the §3 ablation knobs (experiment E16).
	MSTOptions = core.MSTOptions
)

// NewCluster validates cfg and builds a heterogeneous cluster: one large
// machine with Õ(n^{1+F}) words of memory (disable with NoLarge for the
// pure-sublinear baseline regime) and K = ⌈m/n^γ⌉ small machines with
// Õ(n^γ) words each.
func NewCluster(cfg Config) (*Cluster, error) { return mpc.New(cfg) }

// --- Machine profiles (heterogeneous capacities and speeds) ---

// UniformProfile is the explicit form of the default profile: k machines,
// every scale 1; bit-identical to a nil profile.
func UniformProfile(k int) *Profile { return mpc.UniformProfile(k) }

// ZipfProfile skews capacities: machine i's cap scale is (i+1)^-s, clamped
// below at floor (0 = default 0.05). Speeds stay 1.
func ZipfProfile(k int, s, floor float64) *Profile { return mpc.ZipfProfile(k, s, floor) }

// BimodalProfile slows the last ⌈slowFrac·k⌉ machines' speed and bandwidth
// by factor; capacities stay uniform, so only the makespan changes.
func BimodalProfile(k int, slowFrac, factor float64) *Profile {
	return mpc.BimodalProfile(k, slowFrac, factor)
}

// StragglerProfile slows the last `stragglers` machines' compute by
// slowdown; capacities and bandwidths stay uniform.
func StragglerProfile(k, stragglers int, slowdown float64) *Profile {
	return mpc.StragglerProfile(k, stragglers, slowdown)
}

// ParseProfile builds a profile from a CLI spec ("uniform", "zipf:S[:FLOOR]",
// "bimodal:SLOWFRAC:FACTOR", "straggler:N:SLOWDOWN", "custom:I=SPEED,...")
// for a k-machine cluster (k = Config.DeriveK()).
func ParseProfile(spec string, k int) (*Profile, error) { return mpc.ParseProfile(spec, k) }

// --- Placement policies (DESIGN.md §8) ---

// ParsePlacement builds a placement policy from a CLI spec ("cap",
// "throughput", "speculate:R", "adaptive[:ALPHA]"). The empty spec and
// "cap" return nil — the capacity-proportional default.
func ParsePlacement(spec string) (PlacementPolicy, error) { return sched.Parse(spec) }

// --- Exchange transports and the wire codec (DESIGN.md §11) ---

// Transport selects how the Exchange deliver phase moves bytes
// (Config.Transport): nil is the in-process shared-memory path,
// bit-identical to the pre-wire engine; NewPipeTransport and
// NewTCPTransport push every round through real file descriptors, with the
// measured bytes reported in ClusterStats.WireBytes beside the modeled
// words the cost model keeps charging unchanged. A transport belongs to
// exactly one cluster; release it with Cluster.Close.
type Transport = wire.Transport

// ErrTransport is wrapped by every transport-layer failure an Exchange
// surfaces — a link dying mid-round, a transport that cannot open. The
// error names the failed link; detect with errors.Is.
var ErrTransport = wire.ErrTransport

// NewPipeTransport returns the socketpair transport: one AF_UNIX stream
// pair per machine, the single-host multi-process wire shape.
func NewPipeTransport() Transport { return wire.NewPipe() }

// NewTCPTransport returns the loopback TCP transport: one TCP connection
// per machine through an ephemeral 127.0.0.1 listener.
func NewTCPTransport() Transport { return wire.NewTCP() }

// ParseTransport resolves a -transport CLI spec: "" and "inproc" select the
// shared-memory path (nil Transport), "pipe" and "tcp" the real-wire
// transports.
func ParseTransport(spec string) (Transport, error) { return wire.Parse(spec) }

// --- Per-round tracing and phase spans (DESIGN.md §9) ---

// NewTrace returns an empty trace collector for Config.Trace. A traced
// run's ClusterStats are bit-identical to the same run untraced; the
// collector only observes.
func NewTrace() *Trace { return trace.New() }

// SummarizeTrace aggregates a recorded timeline (Trace.Rounds) into the
// per-phase critical-path summary: makespan share and bottleneck machine
// per phase. The phase rows partition the totals exactly.
func SummarizeTrace(rounds []TraceRound) *TraceSummary { return trace.Summarize(rounds) }

// TraceMachineName renders a trace machine id ("large", "small-3", "-").
func TraceMachineName(id int) string { return trace.MachineName(id) }

// WriteTraceJSONL streams a recorded timeline as schema-stamped JSONL (one
// header line, one record per line) — the long-run export format; read it
// back with ReadTraceJSONL. See DESIGN.md §12.
func WriteTraceJSONL(w io.Writer, rounds []TraceRound) error { return trace.WriteJSONL(w, rounds) }

// ReadTraceJSONL loads a timeline written by WriteTraceJSONL, refusing
// streams whose schema version or format tag does not match.
func ReadTraceJSONL(r io.Reader) ([]TraceRound, error) { return trace.ReadJSONL(r) }

// WriteTracePerfetto renders a recorded timeline as Chrome trace-event JSON:
// one track per machine (busy spans), a rounds track (per-round makespan
// contributions), and instant markers for checkpoint barriers and crash
// recoveries. The output loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func WriteTracePerfetto(w io.Writer, rounds []TraceRound) error {
	return trace.WritePerfetto(w, rounds)
}

// --- Engine metrics (DESIGN.md §12) ---

type (
	// Metrics is the engine metrics registry (Config.Metrics): counters,
	// gauges and fixed-bucket histograms with per-machine / per-link /
	// per-phase labels, published by the Exchange engine, the wire
	// transports, the adaptive scheduler and the recovery engine. Like the
	// trace collector it only observes — a metered run's ClusterStats are
	// bit-identical to the same run unmetered, and a nil registry is the
	// zero-overhead path.
	Metrics = metrics.Registry
	// MetricSample is one instrument of a Metrics.Snapshot.
	MetricSample = metrics.Sample
)

// NewMetrics returns an empty metrics registry for Config.Metrics. Counters
// are cumulative for the registry's lifetime (never rebased by ResetStats),
// so share one registry across clusters to aggregate, or use one per
// cluster to keep them apart.
func NewMetrics() *Metrics { return metrics.New() }

// --- Fault injection and recovery (DESIGN.md §7) ---

// ParseFaultPlan builds a fault plan from a CLI spec of +-joined clauses
// ("ckpt:I", "crash:R:M[:K]", "rate:P[:SEED]", "slow:M:FROM:TO:FACTOR",
// "restart:K") for a k-machine cluster. The empty spec and "none" return
// nil (the reliable cluster).
func ParseFaultPlan(spec string, k int) (*FaultPlan, error) { return fault.ParsePlan(spec, k) }

// NewGraph builds a graph from an edge list (canonicalized, deduplicated).
func NewGraph(n int, edges []Edge, weighted bool) *Graph { return graph.New(n, edges, weighted) }

// NewEdge returns the canonical form of edge {u, v} with weight w.
func NewEdge(u, v int, w int64) Edge { return graph.NewEdge(u, v, w) }

// --- Workload generators ---

// GNM returns a uniformly random simple unweighted graph.
func GNM(n, m int, seed uint64) *Graph { return graph.GNM(n, m, seed) }

// GNMWeighted is GNM with a random permutation of 1..m as (unique) weights.
func GNMWeighted(n, m int, seed uint64) *Graph { return graph.GNMWeighted(n, m, seed) }

// ConnectedGNM returns a connected random graph (random recursive tree plus
// random extra edges).
func ConnectedGNM(n, m int, seed uint64, weighted bool) *Graph {
	return graph.ConnectedGNM(n, m, seed, weighted)
}

// Cycles returns a disjoint union of `parts` cycles covering n vertices
// (parts = 1 or 2 gives the paper's "2-vs-1 cycle" instances).
func Cycles(n, parts int, seed uint64) *Graph { return graph.Cycles(n, parts, seed) }

// PlantedHubs returns a sparse core of average degree ~d plus `hubs`
// vertices of degree ~hubDeg (the workload separating average from maximum
// degree in the matching experiment).
func PlantedHubs(n, d, hubs, hubDeg int, seed uint64) *Graph {
	return graph.PlantedHubs(n, d, hubs, hubDeg, seed)
}

// PlantedCut returns two dense halves joined by exactly `cut` cross edges.
func PlantedCut(n, mPerSide, cut int, seed uint64, weighted bool) *Graph {
	return graph.PlantedCut(n, mPerSide, cut, seed, weighted)
}

// Star, Path, Grid and Complete build the standard fixed topologies.
func Star(n int) *Graph { return graph.Star(n) }

// Path returns the path graph on n vertices.
func Path(n int) *Graph { return graph.Path(n) }

// Grid returns the r×c grid graph.
func Grid(r, c int) *Graph { return graph.Grid(r, c) }

// Complete returns K_n.
func Complete(n int, weighted bool, seed uint64) *Graph { return graph.Complete(n, weighted, seed) }

// --- Heterogeneous MPC algorithms (the paper's contributions) ---

// MST computes a minimum spanning forest in O(log log(m/n)) Borůvka phases
// plus an O(1)-round KKT sampling step (§3, Theorem 3.1).
func MST(c *Cluster, g *Graph) (*MSTResult, error) { return core.MST(c, g) }

// Spanner computes a (6k-1)-spanner of expected size O(n^{1+1/k}) in O(1)
// rounds for unweighted graphs (§4, Theorem 4.1).
func Spanner(c *Cluster, g *Graph, k int) (*SpannerResult, error) { return core.Spanner(c, g, k) }

// SpannerWeighted is the weighted reduction: a (12k-1)-spanner of size
// O(n^{1+1/k} log n).
func SpannerWeighted(c *Cluster, g *Graph, k int) (*SpannerResult, error) {
	return core.SpannerWeighted(c, g, k)
}

// BuildAPSPOracle builds the Corollary 4.2 oracle: an O(log n)-stretch
// spanner of size Õ(n) kept on the large machine, answering all-pairs
// distance queries locally.
func BuildAPSPOracle(c *Cluster, g *Graph) (*APSPOracle, error) { return core.BuildAPSPOracle(c, g) }

// MaximalMatching computes a maximal matching by the three-phase algorithm
// of §5 (Theorem 5.1); its iteration count depends on the average degree d,
// not on Δ.
func MaximalMatching(c *Cluster, g *Graph) (*MatchingResult, error) {
	return core.MaximalMatching(c, g)
}

// MatchingFiltering is the Theorem 5.5 variant for superlinear large-machine
// memory (configure the cluster with F > 0): O(1/f) filtering iterations.
func MatchingFiltering(c *Cluster, g *Graph) (*MatchingResult, error) {
	return core.MatchingFiltering(c, g)
}

// Connectivity identifies connected components in O(1) rounds via AGM graph
// sketches (Appendix C.1, Theorem C.1).
func Connectivity(c *Cluster, g *Graph) (*ConnectivityResult, error) {
	return core.Connectivity(c, g)
}

// ApproxMSTWeight estimates the MST weight within (1+ε) via component
// counting (Appendix C.1.1, Theorem C.2). The input should be connected.
func ApproxMSTWeight(c *Cluster, g *Graph, eps float64) (*MSTApproxResult, error) {
	return core.ApproxMSTWeight(c, g, eps)
}

// MinCutUnweighted computes the exact minimum cut w.h.p. via 2-out
// contraction (Appendix C.2, Theorem C.3).
func MinCutUnweighted(c *Cluster, g *Graph) (*MinCutResult, error) {
	return core.MinCutUnweighted(c, g)
}

// ApproxMinCut estimates a weighted minimum cut within (1±ε) via Karger-style
// skeletons (Appendix C.3, Theorem C.4).
func ApproxMinCut(c *Cluster, g *Graph, eps float64) (*MinCutResult, error) {
	return core.ApproxMinCut(c, g, eps)
}

// MIS computes a maximal independent set in O(log log Δ) iterations
// (Appendix C.4, Theorem C.6).
func MIS(c *Cluster, g *Graph) (*MISResult, error) { return core.MIS(c, g) }

// Coloring computes a (Δ+1)-coloring in O(1) rounds via color-list sampling
// (Appendix C.5, Theorem C.7).
func Coloring(c *Cluster, g *Graph) (*ColoringResult, error) { return core.Coloring(c, g) }

// TwoVsOneCycle solves the model's motivating problem in O(1) rounds: the
// input (a union of cycles, m = n) fits the large machine whole.
func TwoVsOneCycle(c *Cluster, g *Graph) (*TwoVsOneCycleRes, error) {
	return core.TwoVsOneCycle(c, g)
}

// --- Sublinear-regime baselines (clusters built with Config.NoLarge) ---

// BaselineConnectivity is random-mate label contraction: Θ(log n) phases.
func BaselineConnectivity(c *Cluster, g *Graph) (*BaselineCCResult, error) {
	return sublinear.Connectivity(c, g)
}

// BaselineMST is Borůvka with random-mate contraction: Θ(log n) phases.
func BaselineMST(c *Cluster, g *Graph) (*BaselineMSTResult, error) {
	return sublinear.MST(c, g)
}

// BaselineMIS is Luby's algorithm: Θ(log n) rounds.
func BaselineMIS(c *Cluster, g *Graph) (*BaselineMISResult, error) {
	return sublinear.MIS(c, g)
}

// BaselineColoring is iterated random color trials: Θ(log n) rounds.
func BaselineColoring(c *Cluster, g *Graph) (*BaselineColoringResult, error) {
	return sublinear.Coloring(c, g)
}

// BaselineMatching is mirror-matching peeling to full maximality: the
// iteration count tracks log Δ (DESIGN.md substitution 1).
func BaselineMatching(c *Cluster, g *Graph) ([]Edge, *PeelResult, error) {
	return sublinear.MaximalMatching(c, g)
}

// BaselineSpanner is plain distributed Baswana-Sen: Θ(k) rounds.
func BaselineSpanner(c *Cluster, g *Graph, k int) (*BaselineSpannerResult, error) {
	return sublinear.Spanner(c, g, k)
}

// MSTWithOptions runs the §3 MST with ablation knobs (experiment E16).
func MSTWithOptions(c *Cluster, g *Graph, opts MSTOptions) (*MSTResult, error) {
	return core.MSTWithOptions(c, g, opts)
}

// --- Reference (exact, out-of-model) algorithms for validation ---

// KruskalMSF returns the exact minimum spanning forest and its weight.
func KruskalMSF(g *Graph) ([]Edge, int64) { return graph.KruskalMSF(g) }

// Components returns exact per-vertex component labels and the count.
func Components(g *Graph) ([]int, int) { return graph.Components(g) }

// StoerWagner returns the exact global minimum cut weight.
func StoerWagner(g *Graph) int64 { return graph.StoerWagner(g) }

// BFSDist returns exact unweighted distances from src (math.MaxInt marks
// unreachable vertices).
func BFSDist(adj [][]Half, src int) []int { return graph.BFSDist(adj, src) }

// DijkstraDist returns exact weighted distances from src.
func DijkstraDist(adj [][]Half, src int) []int64 { return graph.DijkstraDist(adj, src) }

// CheckMST, CheckMatching, CheckMIS, CheckColoring and CheckSpanner validate
// outputs against the input graph; they return nil on success.
func CheckMST(g *Graph, tree []Edge) error { return graph.CheckMST(g, tree) }

// CheckMatching validates a (maximal) matching.
func CheckMatching(g *Graph, m []Edge, maximal bool) error { return graph.CheckMatching(g, m, maximal) }

// CheckMIS validates a maximal independent set.
func CheckMIS(g *Graph, set []int) error { return graph.CheckMIS(g, set) }

// CheckColoring validates a proper coloring with palette [0, maxColor].
func CheckColoring(g *Graph, colors []int, maxColor int) error {
	return graph.CheckColoring(g, colors, maxColor)
}

// CheckSpanner validates subgraph-ness and stretch on sampled sources.
func CheckSpanner(g, h *Graph, stretch, samples int, seed uint64) error {
	return graph.CheckSpanner(g, h, stretch, samples, seed)
}
