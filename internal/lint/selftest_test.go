package lint

import (
	"errors"
	"go/build"
	"testing"
)

// TestRepoHetlintClean is the self-test the CI lint job gates on: the whole
// module must produce zero hetlint diagnostics — every real finding is
// either fixed or carries a justified //hetlint: suppression. It mirrors
// `go run ./cmd/hetlint ./...` exactly (same loader, same engine gating).
func TestRepoHetlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("expanded only %d packages (%v); module walk is broken", len(paths), paths)
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			var ng *build.NoGoError
			if errors.As(err, &ng) {
				continue // build-tag-excluded directory
			}
			t.Fatalf("load %s: %v", path, err)
		}
		for _, d := range RunPackage(pkg, IsEnginePath(path), All()) {
			t.Errorf("%s", d)
		}
	}
}
