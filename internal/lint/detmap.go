package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetMap forbids ranging over a map in the deterministic-engine packages:
// Go randomizes map iteration order, so any map range that feeds Stats,
// trace records, rendered tables or message schedules is a bit-level
// nondeterminism bug (the class the GOMAXPROCS golden sweeps catch only
// when they get lucky). A range is allowed when the loop provably only
// collects keys/values for a subsequent sort in the same function (append
// into locals + a sort downstream — the sort/slices packages or any
// Sort*-named helper — with order-insensitive integer counting permitted
// alongside), or when a justified
// //hetlint:sorted comment explains why the iteration order cannot reach
// any observable output.
var DetMap = &Analyzer{
	Name:       "detmap",
	Doc:        "forbid map iteration in engine packages unless it feeds a sort or carries //hetlint:sorted",
	Key:        "sorted",
	EngineOnly: true,
	Run:        runDetMap,
}

func runDetMap(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fb := range funcBodies(f) {
			body := fb.body
			inspectShallow(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if feedsSort(pass, body, rs) {
					return true
				}
				pass.Reportf(rs.Pos(), "map iteration order is nondeterministic; sort the keys first (collect+sort is exempt) or justify with //hetlint:sorted")
				return true
			})
		}
	}
}

// feedsSort reports whether the range loop only accumulates into local
// slices/integer counters and at least one accumulated slice is passed to a
// sort later in the same function — the canonical deterministic pattern
//
//	for k := range m { keys = append(keys, k) }
//	slices.Sort(keys)
func feedsSort(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	appended := map[types.Object]bool{}
	if !benignBody(pass, rs.Body.List, appended) || len(appended) == 0 {
		return false
	}
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !isSortCall(fn) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && appended[pass.ObjectOf(id)] {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort/slices packages plus Sort*-named helpers
// (SortKVsByKey and friends — the repo's deterministic-order workhorses).
func isSortCall(fn *types.Func) bool {
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return strings.HasPrefix(fn.Name(), "Sort") || strings.HasPrefix(fn.Name(), "sort")
}

// benignBody reports whether every statement is order-insensitive
// accumulation: `v = append(v, ...)` (recording v), integer ++/--/+=/-=, or
// an if statement whose branches are themselves benign.
func benignBody(pass *Pass, stmts []ast.Stmt, appended map[types.Object]bool) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if !benignAssign(pass, s, appended) {
				return false
			}
		case *ast.IncDecStmt:
			if !isInteger(pass.TypeOf(s.X)) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !benignBody(pass, s.Body.List, appended) {
				return false
			}
			if s.Else != nil {
				eb, ok := s.Else.(*ast.BlockStmt)
				if !ok || !benignBody(pass, eb.List, appended) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

func benignAssign(pass *Pass, s *ast.AssignStmt, appended map[types.Object]bool) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return isInteger(pass.TypeOf(s.Lhs[0]))
	case token.ASSIGN, token.DEFINE:
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || builtinName(pass, call) != "append" || len(call.Args) == 0 {
			return false
		}
		if exprString(call.Args[0]) != exprString(s.Lhs[0]) {
			return false
		}
		if id := baseIdent(s.Lhs[0]); id != nil {
			if obj := pass.ObjectOf(id); obj != nil {
				appended[obj] = true
				return true
			}
		}
	}
	return false
}

// baseIdent unwraps out[i][j]-style targets to their base identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
