package lint

import (
	"go/ast"
	"strconv"
)

// WrapCheck keeps every error chain errors.Is-reachable to its typed
// sentinel:
//
//   - a fmt.Errorf argument that IS a sentinel (package-level ErrX variable)
//     must be wrapped with %w — a %v/%s sentinel prints the same string but
//     silently severs errors.Is, the bug class the NoLarge and transport
//     regression tests only catch for the paths they exercise;
//   - an error-typed argument rendered with %v/%s in a format that carries
//     no %w at all is flattened out of the chain entirely (the CLI-main
//     pattern) — use %w, possibly several (fmt.Errorf wraps multiple %w
//     since Go 1.20). The deliberate `%v ... %w` idiom — flatten the
//     underlying cause, wrap the sentinel — is allowed;
//   - in engine packages, an exported function must not return a bare
//     errors.New: name a package sentinel so callers can errors.Is.
//
// Deliberate flattening (an error demoted to plain text) carries
// //hetlint:wrap with the justification.
var WrapCheck = &Analyzer{
	Name: "wrapcheck",
	Doc:  "sentinels must be wrapped with %w; exported engine errors must reach a typed sentinel",
	Key:  "wrap",
	Run:  runWrapCheck,
}

func runWrapCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkErrorf(pass, call)
			}
			return true
		})
		if pass.Engine {
			checkExportedErrorsNew(pass, f)
		}
	}
}

func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(calleeFunc(pass, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // dynamic format string: out of static reach
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	hasW := false
	for _, v := range verbs {
		if v == 'w' {
			hasW = true
		}
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		verb := verbs[i]
		switch {
		case isSentinel(pass, arg) && verb != 'w':
			pass.Reportf(arg.Pos(), "sentinel %s formatted with %%%c is unreachable by errors.Is; wrap it with %%w", exprString(arg), verb)
		case !hasW && (verb == 'v' || verb == 's') && implementsError(pass.TypeOf(arg)):
			pass.Reportf(arg.Pos(), "error %s is flattened to text (%%%c with no %%w in the format); wrap with %%w so errors.Is reaches the cause", exprString(arg), verb)
		}
	}
}

// formatVerbs returns the verb letters in argument-consuming order: one
// entry per consumed argument, '*' width/precision arguments included as
// '*'. %% consumes nothing. Explicit argument indexes (%[1]d) end the
// static mapping — the tail is left unchecked.
func formatVerbs(format string) []rune {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i < len(rs) && rs[i] == '%' {
			continue
		}
		for i < len(rs) {
			c := rs[i]
			if c == '[' { // explicit index: give up on the mapping
				return verbs
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}

// checkExportedErrorsNew flags `return errors.New(...)` inside exported
// functions of engine packages.
func checkExportedErrorsNew(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		inspectShallow(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok &&
					isPkgFunc(calleeFunc(pass, call), "errors", "New") {
					pass.Reportf(call.Pos(), "exported engine entry point returns a bare errors.New; name a typed package sentinel (var ErrX = ...) and wrap it with %%w")
				}
			}
			return true
		})
	}
}
