package lint

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// testLoader builds one shared Loader per test binary: the source importer
// re-type-checks stdlib packages from GOROOT, so sharing its cache across
// fixtures is what keeps the suite fast.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	sharedErr    error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			sharedErr = err
			return
		}
		sharedLoader, sharedErr = NewLoader(root)
	})
	if sharedErr != nil {
		t.Fatalf("loader: %v", sharedErr)
	}
	return sharedLoader
}

// wantRe matches the analysistest convention: a trailing
//
//	// want `regex`
//
// comment on the line a diagnostic is expected at.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantEntry struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<name>, runs the single analyzer over it
// (with the given engine classification), and checks the diagnostics against
// the fixture's `// want` comments: every diagnostic must match a want on
// its line, and every want must be hit.
func runFixture(t *testing.T, a *Analyzer, name string, engine bool) {
	t.Helper()
	l := testLoader(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags := RunPackage(pkg, engine, []*Analyzer{a})

	var wants []*wantEntry
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &wantEntry{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", name)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func TestDetMapFixture(t *testing.T)    { runFixture(t, DetMap, "detmap", true) }
func TestNonDetFixture(t *testing.T)    { runFixture(t, NonDet, "nondet", true) }
func TestSpanPairFixture(t *testing.T)  { runFixture(t, SpanPair, "spanpair", false) }
func TestWrapCheckFixture(t *testing.T) { runFixture(t, WrapCheck, "wrapcheck", true) }
func TestZeroAllocFixture(t *testing.T) { runFixture(t, ZeroAlloc, "zeroalloc", false) }

// TestEngineGating: an EngineOnly analyzer must stay silent outside the
// engine package set.
func TestEngineGating(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "detmap"), "fixture/detmap-offengine")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunPackage(pkg, false, []*Analyzer{DetMap}); len(diags) != 0 {
		t.Errorf("EngineOnly analyzer ran outside the engine set: %v", diags)
	}
}
