package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SpanPair requires every Cluster.Span(...) to be paired with an End() on
// all paths of the opening function. §9's depth-truncation makes a leaked
// inner span benign for trace attribution at runtime, but only because some
// outer End() eventually truncates past it — the static pairing keeps phase
// windows exact and the Stats deltas meaningful. Checked patterns:
//
//   - defer c.Span("x").End() / inline c.Span("x").End()   — paired
//   - sp := c.Span("x") with defer sp.End() or a deferred closure calling
//     sp.End() — paired, unless a return precedes the defer registration
//   - sp := c.Span("x") with only plain sp.End() calls — every return after
//     the open must be lexically preceded by an End (the loop-body error
//     return that skips the End is exactly the leak this flags)
//   - discarded result (c.Span("x") as a statement, or assigned to _) — leak
//
// The match is semantic, not name-based on Cluster: any method named Span
// whose single result has an End method is covered, so future span-shaped
// APIs inherit the check. Provably-benign leaks (error paths into an outer
// deferred End whose truncation the trace goldens pin) carry
// //hetlint:span with the justification.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "every Cluster.Span(...) must reach End() on all paths of the opening function",
	Key:  "span",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		parents := newParents(f)
		for _, fb := range funcBodies(f) {
			checkSpans(pass, fb.body, parents)
		}
	}
}

// spanCall reports whether call is a Span(...) invocation returning a
// span-shaped value (single result carrying an End method).
func spanCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Span" {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	return hasEndMethod(sig.Results().At(0).Type())
}

func hasEndMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "End")
	_, ok := obj.(*types.Func)
	return ok
}

// spanName extracts the phase name literal for messages ("?" when dynamic).
func spanName(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				return s
			}
		}
	}
	return "?"
}

func checkSpans(pass *Pass, body *ast.BlockStmt, parents parentMap) {
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !spanCall(pass, call) {
			return true
		}
		name := spanName(call)
		switch parent := parents[call].(type) {
		case *ast.SelectorExpr: // c.Span("x").End() — inline or deferred
			if parent.Sel.Name == "End" {
				return true
			}
		case *ast.AssignStmt:
			checkAssignedSpan(pass, body, parents, call, parent, name)
			return true
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "span %q is opened and discarded; call End() (or defer it)", name)
			return true
		}
		// Any other parent (argument position, composite field, ...) makes
		// the span's lifetime opaque to the lexical check; leave it to the
		// runtime truncation goldens.
		return true
	})
}

// checkAssignedSpan handles sp := c.Span("x").
func checkAssignedSpan(pass *Pass, body *ast.BlockStmt, parents parentMap, call *ast.CallExpr, assign *ast.AssignStmt, name string) {
	// Locate the LHS receiving the span (single-RHS assignment only; a Span
	// call cannot appear in a multi-value RHS).
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "span %q is assigned to _ and leaks; call End()", name)
		return
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return
	}

	type endUse struct {
		call     *ast.CallExpr
		deferred bool
		deferPos ast.Node // the DeferStmt registering it, when deferred
	}
	var ends []endUse
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use == id || pass.ObjectOf(use) != obj {
			return true
		}
		// sp.End() — the selector parent, then the call parent.
		if sel, ok := parents[use].(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if c, ok := parents[sel].(*ast.CallExpr); ok && c.Fun == sel {
				deferStmt := enclosingDefer(parents, c)
				ends = append(ends, endUse{call: c, deferred: deferStmt != nil, deferPos: deferStmt})
				return true
			}
		}
		escapes = true // sp used some other way: stored, passed, compared
		return true
	})
	if escapes {
		return // lifetime is no longer lexical; runtime goldens own it
	}
	if len(ends) == 0 {
		pass.Reportf(call.Pos(), "span %q is never ended in this function; add defer %s.End()", name, id.Name)
		return
	}
	var firstDefer ast.Node
	for _, e := range ends {
		if e.deferred && firstDefer == nil {
			firstDefer = e.deferPos
		}
	}
	if firstDefer != nil {
		for _, r := range returnsBefore(body, assign.End(), firstDefer.Pos()) {
			pass.Reportf(r.Pos(), "return before defer of %s.End() is registered; span %q leaks on this path", id.Name, name)
		}
		return
	}
	// Plain End()s only: every later return must be lexically preceded by
	// one (the approximation that catches the error-path leak without a CFG;
	// annotate provably-benign leaks with //hetlint:span).
	for _, r := range returnsBefore(body, assign.End(), body.End()) {
		covered := false
		for _, e := range ends {
			if e.call.Pos() > assign.End() && e.call.End() < r.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(r.Pos(), "span %q has no %s.End() before this return; it leaks on this path (defer the End or justify with //hetlint:span)", name, id.Name)
		}
	}
}

// enclosingDefer returns the DeferStmt that will run n at function exit: n
// is the deferred call itself, or sits inside a FuncLit that a DeferStmt
// invokes directly.
func enclosingDefer(parents parentMap, n ast.Node) ast.Node {
	for cur := ast.Node(n); cur != nil; cur = parents[cur] {
		switch p := parents[cur].(type) {
		case *ast.DeferStmt:
			if p.Call == cur {
				return p
			}
		case *ast.CallExpr:
			if lit, ok := cur.(*ast.FuncLit); ok && p.Fun == lit {
				if d, ok := parents[p].(*ast.DeferStmt); ok && d.Call == p {
					return d
				}
			}
		}
	}
	return nil
}
