// Package wrapcheck is the hetlint wrapcheck fixture: sentinels must stay
// errors.Is-reachable through every fmt.Errorf, and exported engine entry
// points must not mint bare errors.New values.
package wrapcheck

import (
	"errors"
	"fmt"
)

// ErrNeedsLarge mirrors the engine's typed sentinels.
var ErrNeedsLarge = errors.New("algorithm needs a large cluster")

func sentinelBad(name string) error {
	return fmt.Errorf("algorithm %s: %v", name, ErrNeedsLarge) // want `sentinel ErrNeedsLarge formatted with %v`
}

func sentinelGood(name string) error {
	return fmt.Errorf("algorithm %s: %w", name, ErrNeedsLarge)
}

func flattened(err error) error {
	return fmt.Errorf("round failed: %v", err) // want `flattened to text`
}

// flattenPlusSentinel is the deliberate engine idiom: the underlying cause
// is demoted to display text while the sentinel stays errors.Is-reachable.
func flattenPlusSentinel(err error) error {
	return fmt.Errorf("transport: %v: %w", err, ErrNeedsLarge)
}

// doubleWrap keeps both reachable (legal since Go 1.20).
func doubleWrap(err error) error {
	return fmt.Errorf("transport: %w: %w", err, ErrNeedsLarge)
}

// justifiedFlatten demotes the cause on purpose and says why.
func justifiedFlatten(err error) error {
	//hetlint:wrap advisory display text only; callers match on the sentinel attached by the caller
	return fmt.Errorf("warning: %v", err)
}

// Validate is an exported engine entry point: bare errors.New is banned.
func Validate(n int) error {
	if n < 0 {
		return errors.New("negative cluster size") // want `bare errors.New`
	}
	return nil
}

// helper is unexported, so ad-hoc errors are its caller's problem.
func helper(n int) error {
	if n < 0 {
		return errors.New("unexported helpers may use ad-hoc errors")
	}
	return nil
}

var _ = []any{sentinelBad, sentinelGood, flattened, flattenPlusSentinel, doubleWrap, justifiedFlatten, Validate, helper}
