// Package nondet is the hetlint nondet fixture: ambient nondeterminism
// (wall-clock, global rand, environment, CPU shape) is banned from engine
// packages.
package nondet

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func clock() time.Duration {
	start := time.Now()      // want `time.Now is nondeterministic`
	return time.Since(start) // want `time.Since is nondeterministic`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn draws from the shared process-wide source`
}

// seeded streams are the sanctioned path: rand.New/NewSource construct, the
// draw happens on the stream's methods.
func seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

func env() string {
	return os.Getenv("HETMPC_DEBUG") // want `engine behavior must be a function of Config`
}

func cpus() int {
	return runtime.NumCPU() // want `bit-identical across CPU counts`
}

// workers carries the justified escape: pool sizing that cannot reach the
// modeled stats.
func workers() int {
	//hetlint:nondet worker-pool sizing only; outputs are pinned bit-identical by the GOMAXPROCS golden sweeps
	return 2*runtime.GOMAXPROCS(0) + 2
}

var _ = []any{clock, globalRand, seeded, env, cpus, workers}
