// Package spanpair is the hetlint spanpair fixture: every Span(...) must
// reach an End() on all paths of the opening function. The types mirror the
// engine's Cluster.Span shape — the analyzer matches any method named Span
// whose single result carries an End method.
package spanpair

type Stats struct{ Rounds int }

type Span struct{ name string }

func (s *Span) End() Stats { return Stats{} }

type Cluster struct{}

func (c *Cluster) Span(name string) *Span { return &Span{name: name} }

func work() error { return nil }

// deferredChain pairs open and close in one statement.
func deferredChain(c *Cluster) error {
	defer c.Span("chain").End()
	return work()
}

// deferredClosure is the engine's dominant pattern: the closure harvests the
// Stats delta at exit.
func deferredClosure(c *Cluster) (st Stats, err error) {
	sp := c.Span("closure")
	defer func() { st = sp.End() }()
	if err := work(); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// inlinePlain ends on its only path.
func inlinePlain(c *Cluster) Stats {
	sp := c.Span("plain")
	st := sp.End()
	return st
}

// discarded opens a span as a bare statement.
func discarded(c *Cluster) {
	c.Span("discarded") // want `opened and discarded`
}

// blackhole assigns the span to the blank identifier.
func blackhole(c *Cluster) {
	_ = c.Span("blackhole") // want `assigned to _ and leaks`
}

// neverEnded parks the span in a named result and forgets it.
func neverEnded(c *Cluster) (sp *Span) {
	sp = c.Span("never") // want `never ended`
	return
}

// leakOnErrorPath skips the plain End on the early return.
func leakOnErrorPath(c *Cluster) error {
	sp := c.Span("early")
	if err := work(); err != nil {
		return err // want `no sp.End\(\) before this return`
	}
	sp.End()
	return nil
}

// returnBeforeDefer registers the deferred End after a return can fire.
func returnBeforeDefer(c *Cluster) error {
	sp := c.Span("late")
	if err := work(); err != nil {
		return err // want `return before defer`
	}
	defer sp.End()
	return work()
}

// justifiedLeak documents a benign leak: the caller's deferred End truncates
// past it, and the trace goldens pin that attribution.
func justifiedLeak(c *Cluster) error {
	sp := c.Span("inner")
	if err := work(); err != nil {
		//hetlint:span truncated by the caller's deferred End; attribution pinned by the trace goldens
		return err
	}
	sp.End()
	return nil
}

var _ = []any{deferredChain, deferredClosure, inlinePlain, discarded, blackhole, neverEnded, leakOnErrorPath, returnBeforeDefer, justifiedLeak}
