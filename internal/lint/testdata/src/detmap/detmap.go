// Package detmap is the hetlint detmap fixture: map ranges in an engine
// package must feed a sort or carry a justified //hetlint:sorted comment.
package detmap

import "sort"

// countBad sums map values in iteration order. Exact integer addition is
// commutative, but the analyzer still demands the written justification —
// the reviewer, not the linter, proves commutativity.
func countBad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// sortedKeys is the canonical exempt pattern: collect into locals, then
// sort before anything observable happens.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedConditional still qualifies: conditional appends plus an integer
// counter are order-insensitive accumulation.
func sortedConditional(m map[string]int) ([]string, int) {
	var hot []string
	n := 0
	for k, v := range m {
		if v > 0 {
			hot = append(hot, k)
		}
		n++
	}
	sort.Strings(hot)
	return hot, n
}

// sortHelper stands in for the repo's SortKVsByKey-style helpers: a
// Sort*-named callee also counts as the downstream sort.
func sortHelper(xs []string) { sort.Strings(xs) }

// sortedViaHelper collects and sorts through a local helper.
func sortedViaHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortHelper(keys)
	return keys
}

// sortedIndexed appends into an indexed slot and sorts that slot.
func sortedIndexed(ms [2]map[string]int) [][]string {
	out := make([][]string, len(ms))
	for i, m := range ms {
		for k := range m {
			out[i] = append(out[i], k)
		}
		sort.Strings(out[i])
	}
	return out
}

// unsortedCollect collects but never sorts — the iteration order leaks into
// the returned slice.
func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// justified carries the escape hatch with a reason.
func justified(m map[string]int) bool {
	//hetlint:sorted existence scan: the boolean result is order-independent
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// bareSuppression shows that a justification-free comment does not
// suppress.
func bareSuppression(m map[string]int) int {
	n := 0
	//hetlint:sorted
	for range m { // want `carries no justification`
		n++
	}
	return n
}

var _ = []any{countBad, sortedKeys, sortedConditional, sortedViaHelper, sortedIndexed, unsortedCollect, justified, bareSuppression}
