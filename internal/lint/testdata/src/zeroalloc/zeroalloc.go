// Package zeroalloc is the hetlint zeroalloc fixture: bodies marked with
// the //hetlint:zeroalloc directive must not allocate outside the two
// sanctioned idioms (cold error paths and cap()-guarded arena growth).
package zeroalloc

import "fmt"

type pair struct{ a, b int }

func sink(v any) { _ = v }

// Encode shows the sanctioned arena shape: a cold error path, cap-guarded
// growth, and append-back — none of it flagged.
//
//hetlint:zeroalloc pinned by the codec AllocsPerRun suite
func Encode(dst []byte, vals []int64, scratch []int64) ([]byte, []int64, error) {
	if len(vals) > 1<<20 {
		return nil, scratch, fmt.Errorf("too many values: %d", len(vals))
	}
	if cap(scratch) < len(vals) {
		scratch = make([]int64, len(vals))
	}
	scratch = scratch[:len(vals)]
	for i, v := range vals {
		scratch[i] = v
		dst = append(dst, byte(v))
	}
	return dst, scratch, nil
}

// Hot trips every allocation class the analyzer knows.
//
//hetlint:zeroalloc demo body for the fixture
func Hot(n int, b []byte) int {
	buf := make([]int, n) // want `make allocates`
	out := []int{1}       // want `slice literal allocates`
	out = append(buf, 2)  // want `append result is not assigned back to buf`
	fmt.Println(n)        // want `fmt.Println allocates`
	sink(n)               // want `boxes int into interface`
	s := string(b)        // want `conversion copies`
	p := &pair{a: n}      // want `&composite literal escapes`
	total := 0
	bump := func() { total++ } // want `closure captures total`
	bump()
	go bump() // want `go statement spawns a goroutine`
	//hetlint:alloc one-time header row, amortized across the run; pinned by the fixture itself
	hdr := make([]byte, 8)
	return n + len(buf) + len(out) + len(s) + p.a + total + len(hdr)
}
