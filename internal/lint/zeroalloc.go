package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ZeroAlloc statically audits the functions whose AllocsPerRun==0 pins the
// runtime suite already enforces — the wire codec encode/decode paths and
// the Exchange deliver inner loops. A function opts in by carrying the
// `//hetlint:zeroalloc` directive in its doc comment (the same names the
// alloc-pin tests exercise, so the static check and the runtime pin gate
// one set of functions). Inside a marked body the analyzer flags the
// allocation sites the pins would catch only after a perf regression ships:
//
//   - fmt.* calls, make/new, slice/map composite literals and
//     heap-escaping &composites
//   - interface boxing: a concrete value passed to an interface parameter
//     or converted to an interface type
//   - closures capturing variables, and `go` statements
//   - non-arena append growth: append whose result is not assigned back to
//     the buffer it extends (y = append(x, ...)), the fresh-backing-array
//     pattern
//   - string<->[]byte conversions
//
// Two idioms are exempt because they are exactly how the hot paths stay
// zero-alloc in steady state: the cold error path (an allocation feeding a
// non-nil error return — errors never fire in the pinned steady state) and
// arena growth (an allocation guarded by a cap() check — it fires until the
// high-water mark, then never again). Anything else provably amortized
// carries //hetlint:alloc with the justification and the pinning test's
// name. The check is intraprocedural: callees are covered by their own
// markers and by the AllocsPerRun pins.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "flag allocation sites in //hetlint:zeroalloc-marked functions",
	Key:  "alloc",
	Run:  runZeroAlloc,
}

// zeroAllocMarker is the function doc directive opting a body in.
const zeroAllocMarker = "//hetlint:zeroalloc"

func hasZeroAllocMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == zeroAllocMarker || strings.HasPrefix(c.Text, zeroAllocMarker+" ") {
			return true
		}
	}
	return false
}

func runZeroAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		parents := newParents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasZeroAllocMarker(fd.Doc) {
				continue
			}
			za := &zeroAllocCheck{pass: pass, parents: parents, body: fd.Body}
			za.check()
		}
	}
}

type zeroAllocCheck struct {
	pass    *Pass
	parents parentMap
	body    *ast.BlockStmt
}

func (za *zeroAllocCheck) check() {
	ast.Inspect(za.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			za.checkCall(x)
		case *ast.CompositeLit:
			za.checkComposite(x)
		case *ast.FuncLit:
			za.checkFuncLit(x)
		case *ast.GoStmt:
			za.flag(n, "go statement spawns a goroutine (allocates a stack)")
		}
		return true
	})
}

// flag reports at n unless the site is on a cold error path or behind an
// arena cap() guard.
func (za *zeroAllocCheck) flag(n ast.Node, format string, args ...any) {
	if za.coldErrorPath(n) || za.arenaGuarded(n) {
		return
	}
	za.pass.Reportf(n.Pos(), "zero-alloc function: "+format, args...)
}

func (za *zeroAllocCheck) checkCall(call *ast.CallExpr) {
	switch builtinName(za.pass, call) {
	case "make":
		za.flag(call, "make allocates; reuse capacity (cap()-guarded arena growth is exempt)")
		return
	case "new":
		za.flag(call, "new allocates; reuse a scratch value")
		return
	case "append":
		za.checkAppend(call)
		return
	case "":
	default:
		return // len, cap, copy, ...
	}
	if fn := calleeFunc(za.pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		za.flag(call, "fmt.%s allocates (formats into fresh memory and boxes its operands)", fn.Name())
		return
	}
	za.checkConversion(call)
	za.checkBoxing(call)
}

// checkAppend flags append calls that are not assigned back to the buffer
// they extend: `x = append(x, ...)` and `x = append(x[:0], ...)` are the
// arena idioms (amortized zero against a warm buffer); anything else risks
// a fresh backing array every call.
func (za *zeroAllocCheck) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if assign, ok := za.parents[call].(*ast.AssignStmt); ok && len(assign.Lhs) == len(assign.Rhs) {
		for i, rhs := range assign.Rhs {
			if rhs != call {
				continue
			}
			base := ast.Unparen(call.Args[0])
			if se, ok := base.(*ast.SliceExpr); ok {
				base = se.X
			}
			if exprString(assign.Lhs[i]) == exprString(base) {
				return
			}
		}
	}
	za.flag(call, "append result is not assigned back to %s; non-arena growth allocates a fresh backing array", exprString(call.Args[0]))
}

// checkConversion flags conversions that allocate: to an interface type and
// between string and byte/rune slices.
func (za *zeroAllocCheck) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := za.pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := za.pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); ok {
		if _, isIface := src.Underlying().(*types.Interface); !isIface {
			za.flag(call, "conversion boxes %s into interface %s (allocates)", src, dst)
		}
		return
	}
	db, dok := dst.Underlying().(*types.Basic)
	_, sok := src.Underlying().(*types.Slice)
	if dok && db.Info()&types.IsString != 0 && sok {
		za.flag(call, "[]byte-to-string conversion copies (allocates)")
		return
	}
	sb, sbok := src.Underlying().(*types.Basic)
	_, dslice := dst.Underlying().(*types.Slice)
	if sbok && sb.Info()&types.IsString != 0 && dslice {
		za.flag(call, "string-to-slice conversion copies (allocates)")
	}
}

// checkBoxing flags concrete values passed to interface parameters.
func (za *zeroAllocCheck) checkBoxing(call *ast.CallExpr) {
	sig, ok := za.pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-arg boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, ok := param.Underlying().(*types.Interface); !ok {
			continue
		}
		at := za.pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		za.flag(arg, "argument %s boxes %s into interface %s (allocates)", exprString(arg), at, param)
	}
}

// checkComposite flags slice/map literals (always heap-backed) and
// &composites (escape candidates); plain struct values are fine.
func (za *zeroAllocCheck) checkComposite(lit *ast.CompositeLit) {
	if ue, ok := za.parents[lit].(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
		za.flag(ue, "&composite literal escapes to the heap")
		return
	}
	t := za.pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		za.flag(lit, "slice literal allocates a backing array")
	case *types.Map:
		za.flag(lit, "map literal allocates")
	}
}

// checkFuncLit flags closures that capture variables (the capture cells and
// often the closure itself allocate).
func (za *zeroAllocCheck) checkFuncLit(lit *ast.FuncLit) {
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := za.pass.ObjectOf(id).(*types.Var)
		if !ok || seen[v] || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if !v.IsField() {
				seen[v] = true
				captured = append(captured, v.Name())
			}
		}
		return true
	})
	if len(captured) > 0 {
		za.flag(lit, "closure captures %s (capture cells escape)", strings.Join(captured, ", "))
	}
}

// coldErrorPath reports whether n only executes on an error return: n sits
// inside a return statement carrying a non-nil error result, or inside an
// if/case branch whose final statement is such a return. Allocation there
// never runs in the pinned steady state.
func (za *zeroAllocCheck) coldErrorPath(n ast.Node) bool {
	for cur := n; cur != nil && cur != za.body; cur = za.parents[cur] {
		if ret, ok := cur.(*ast.ReturnStmt); ok && returnsNonNilError(za.pass, ret) {
			return true
		}
		block, ok := cur.(*ast.BlockStmt)
		if !ok || block == za.body {
			continue
		}
		switch za.parents[block].(type) {
		case *ast.IfStmt:
		default:
			continue
		}
		if len(block.List) == 0 {
			continue
		}
		if ret, ok := block.List[len(block.List)-1].(*ast.ReturnStmt); ok && returnsNonNilError(za.pass, ret) {
			return true
		}
	}
	// case/comm clauses have no BlockStmt; check them directly.
	for cur := n; cur != nil && cur != za.body; cur = za.parents[cur] {
		var list []ast.Stmt
		switch cl := cur.(type) {
		case *ast.CaseClause:
			list = cl.Body
		case *ast.CommClause:
			list = cl.Body
		default:
			continue
		}
		if len(list) > 0 {
			if ret, ok := list[len(list)-1].(*ast.ReturnStmt); ok && returnsNonNilError(za.pass, ret) {
				return true
			}
		}
	}
	return false
}

func returnsNonNilError(pass *Pass, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if implementsError(pass.TypeOf(res)) {
			return true
		}
	}
	return false
}

// arenaGuarded reports whether n sits in an if branch whose condition
// consults cap() — the grow-to-high-water-mark arena idiom, which
// allocates only until steady state.
func (za *zeroAllocCheck) arenaGuarded(n ast.Node) bool {
	for cur := n; cur != nil && cur != za.body; cur = za.parents[cur] {
		ifs, ok := cur.(*ast.IfStmt)
		if !ok {
			continue
		}
		capCall := false
		ast.Inspect(ifs.Cond, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && builtinName(za.pass, call) == "cap" {
				capCall = true
			}
			return !capCall
		})
		if capCall {
			return true
		}
	}
	return false
}
