package lint

import (
	"strings"
	"testing"
)

func TestHetlintComment(t *testing.T) {
	cases := []struct {
		text      string
		key, just string
		ok        bool
	}{
		{"//hetlint:sorted keys feed a golden", "sorted", "keys feed a golden", true},
		{"//hetlint:sorted", "sorted", "", true},
		{"//hetlint:nondet — wall-clock metering only", "nondet", "wall-clock metering only", true},
		{"// plain comment", "", "", false},
		{"//hetlint:", "", "", false},
		{"// hetlint:sorted spaced prefix is not a directive", "", "", false},
	}
	for _, c := range cases {
		key, just, ok := hetlintComment(c.text)
		if key != c.key || just != c.just || ok != c.ok {
			t.Errorf("hetlintComment(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, key, just, ok, c.key, c.just, c.ok)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
	}{
		{"plain", ""},
		{"%s: %v", "sv"},
		{"%d%%", "d"},
		{"%+v and %#x", "vx"},
		{"%*d", "*d"},
		{"%.2f", "f"},
		{"%s: %v: %w", "svw"},
		{"%[1]d stops the mapping", ""},
	}
	for _, c := range cases {
		if got := string(formatVerbs(c.format)); got != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, want %q", c.format, got, c.verbs)
		}
	}
}

func TestIsEnginePath(t *testing.T) {
	for _, p := range []string{
		"hetmpc/internal/mpc", "hetmpc/internal/prims", "hetmpc/internal/sched",
		"hetmpc/internal/trace", "hetmpc/internal/metrics", "hetmpc/internal/wire",
	} {
		if !IsEnginePath(p) {
			t.Errorf("IsEnginePath(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"hetmpc", "hetmpc/internal/exp", "hetmpc/internal/graph",
		"hetmpc/internal/lint", "hetmpc/cmd/hetlint",
	} {
		if IsEnginePath(p) {
			t.Errorf("IsEnginePath(%q) = true, want false", p)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "detmap", Message: "map iteration"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line, d.Pos.Column = 7, 3
	if got, want := d.String(), "a/b.go:7:3: detmap: map iteration"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !strings.Contains(d.String(), d.Analyzer) {
		t.Error("String() must carry the analyzer name")
	}
}
