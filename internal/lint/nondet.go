package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NonDet forbids ambient nondeterminism in the deterministic-engine
// packages: wall-clock time (time.Now/Since/Until — model time is the only
// clock), the global math/rand source (internal/xrand seeds every stream),
// environment lookups (engine behavior is a function of Config, never of
// the process environment), and scheduler-shape probes
// (runtime.NumCPU/GOMAXPROCS — results must be bit-identical across
// GOMAXPROCS, so any dependence is at best a justified worker-pool sizing).
// Observability wall-clocks that provably never feed Stats or the trace are
// the intended //hetlint:nondet escape.
var NonDet = &Analyzer{
	Name:       "nondet",
	Doc:        "forbid wall-clock, global rand, env and CPU-count dependence in engine packages",
	Key:        "nondet",
	EngineOnly: true,
	Run:        runNonDet,
}

// nondetFuncs maps package path -> function name -> remedy. Only
// package-level functions are matched (rand.New(...).Intn is a seeded
// stream, not the global source).
var nondetFuncs = map[string]map[string]string{
	"time": {
		"Now":   "model time is the only engine clock; wall-clock may only feed observability (justify with //hetlint:nondet)",
		"Since": "model time is the only engine clock; wall-clock may only feed observability (justify with //hetlint:nondet)",
		"Until": "model time is the only engine clock; wall-clock may only feed observability (justify with //hetlint:nondet)",
	},
	"os": {
		"Getenv":    "engine behavior must be a function of Config, not the environment",
		"LookupEnv": "engine behavior must be a function of Config, not the environment",
		"Environ":   "engine behavior must be a function of Config, not the environment",
	},
	"runtime": {
		"NumCPU":     "results must be bit-identical across CPU counts; derive sizes from Config",
		"GOMAXPROCS": "results must be bit-identical across GOMAXPROCS; justify pure worker-pool sizing with //hetlint:nondet",
	},
}

func runNonDet(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			if path == "math/rand" || path == "math/rand/v2" {
				if !strings.HasPrefix(name, "New") {
					pass.Reportf(sel.Pos(), "global %s.%s draws from the shared process-wide source; use a seeded internal/xrand stream", pathBase(path), name)
				}
				return true
			}
			if remedy, ok := nondetFuncs[path][name]; ok {
				pass.Reportf(sel.Pos(), "%s.%s is nondeterministic in the engine: %s", path, name, remedy)
			}
			return true
		})
	}
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
