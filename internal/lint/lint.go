// Package lint is the repo's static-invariant suite (DESIGN.md §13): five
// go/analysis-style analyzers that enforce at compile time the invariants
// the runtime goldens, fuzzers and AllocsPerRun pins only catch after the
// fact — deterministic iteration (detmap), no ambient nondeterminism
// (nondet), paired phase spans (spanpair), errors.Is-reachable sentinels
// (wrapcheck) and allocation-free hot paths (zeroalloc).
//
// The framework mirrors the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Diagnostic, testdata fixtures with `// want` comments) but is built
// on the standard library only — go/ast and go/types driven by a source
// importer — because the build environment pins the Go toolchain without
// x/tools. A future migration to the real multichecker is mechanical: each
// Run func already receives exactly the pass state analysis.Pass carries.
//
// # Suppressions
//
// A diagnostic is silenced by a `//hetlint:<key> <justification>` comment on
// the flagged line or the line directly above it, where <key> is the
// analyzer's suppression key (sorted, nondet, span, wrap, alloc). The
// justification text is mandatory: a bare `//hetlint:<key>` does not
// suppress — CI fails on any unjustified diagnostic by construction. The
// `//hetlint:zeroalloc` function marker is not a suppression; it opts a
// function's body in to the zeroalloc analyzer (see zeroalloc.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. EngineOnly analyzers run only on the
// deterministic-engine packages (EnginePaths); the others run repo-wide.
type Analyzer struct {
	Name       string // diagnostic prefix and CI identity
	Doc        string // one-line description (hetlint -list)
	Key        string // //hetlint:<Key> suppression-comment key
	EngineOnly bool
	Run        func(pass *Pass)
}

// enginePaths is the deterministic-engine package set of ISSUE/DESIGN §13:
// the packages whose Stats/trace output must be bit-identical across
// GOMAXPROCS, transports and runs.
var enginePaths = map[string]bool{
	"hetmpc/internal/mpc":     true,
	"hetmpc/internal/prims":   true,
	"hetmpc/internal/sched":   true,
	"hetmpc/internal/trace":   true,
	"hetmpc/internal/metrics": true,
	"hetmpc/internal/wire":    true,
}

// IsEnginePath reports whether the import path belongs to the deterministic
// engine (the scope of the EngineOnly analyzers).
func IsEnginePath(path string) bool { return enginePaths[path] }

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Engine   bool // package is in the deterministic-engine set
	diags    *[]Diagnostic
}

// Fset returns the pass's position table.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypeOf returns the static type of e (nil when untyped).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Reportf files a diagnostic at pos unless a justified
// //hetlint:<key> suppression covers the line (or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	switch p.Pkg.suppressionAt(position, p.Analyzer.Key) {
	case suppressJustified:
		return
	case suppressBare:
		format += fmt.Sprintf(" [a //hetlint:%s comment is present but carries no justification; add one]", p.Analyzer.Key)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the hetlint suite in the order DESIGN.md §13 catalogues it.
func All() []*Analyzer {
	return []*Analyzer{DetMap, NonDet, SpanPair, WrapCheck, ZeroAlloc}
}

// RunPackage applies analyzers to pkg (engine gates the EngineOnly ones) and
// returns the diagnostics sorted by position.
func RunPackage(pkg *Package, engine bool, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.EngineOnly && !engine {
			continue
		}
		a.Run(&Pass{Analyzer: a, Pkg: pkg, Engine: engine, diags: &diags})
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diags by file, line, column, analyzer — the stable
// output order of cmd/hetlint.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppression states of a line for a key.
type suppressState int

const (
	suppressNone      suppressState = iota
	suppressBare                    // //hetlint:key with no justification text
	suppressJustified               // //hetlint:key <why>
)

// hetlintComment parses a //hetlint:<key> comment, returning the key and the
// justification text ("" when bare). ok is false for non-hetlint comments.
func hetlintComment(text string) (key, justification string, ok bool) {
	const prefix = "//hetlint:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	key, justification, _ = strings.Cut(rest, " ")
	justification = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(justification), "—"))
	if key == "" {
		return "", "", false
	}
	return key, justification, true
}

// buildSuppressions indexes every //hetlint: comment of the package by file
// and line.
func (pkg *Package) buildSuppressions() {
	pkg.suppress = map[string]map[int]map[string]suppressState{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				key, just, ok := hetlintComment(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := pkg.suppress[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]suppressState{}
					pkg.suppress[pos.Filename] = lines
				}
				keys := lines[pos.Line]
				if keys == nil {
					keys = map[string]suppressState{}
					lines[pos.Line] = keys
				}
				st := suppressBare
				if just != "" {
					st = suppressJustified
				}
				if keys[key] < st {
					keys[key] = st
				}
			}
		}
	}
}

// suppressionAt reports the suppression state of key at pos: the comment may
// sit on the flagged line or the line directly above it.
func (pkg *Package) suppressionAt(pos token.Position, key string) suppressState {
	lines := pkg.suppress[pos.Filename]
	if lines == nil {
		return suppressNone
	}
	st := lines[pos.Line][key]
	if s := lines[pos.Line-1][key]; s > st {
		st = s
	}
	return st
}
