package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// parentMap maps every node of a file to its parent, for the analyzers that
// need to classify a node by its enclosing statements (spanpair's defer
// detection, zeroalloc's cold-path and arena-guard exemptions).
type parentMap map[ast.Node]ast.Node

func newParents(f *ast.File) parentMap {
	pm := parentMap{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// funcBodies returns every function body of the file paired with its doc
// comment (nil for FuncLits): the per-function analysis units. Nested
// FuncLit bodies appear as their own entries.
type funcBody struct {
	decl *ast.FuncDecl // nil for a FuncLit
	lit  *ast.FuncLit  // nil for a FuncDecl
	body *ast.BlockStmt
}

func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{decl: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{lit: fn, body: fn.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks the statements of body without descending into
// nested FuncLits (their bodies are separate analysis units).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == body || n == nil {
			return true
		}
		return fn(n)
	})
}

// calleeFunc resolves a call's callee to its types.Func (package-level
// function or method), or nil for builtins, conversions and function
// values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// builtinName returns the name of the builtin a call invokes ("" when the
// callee is not a builtin).
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isSentinel reports whether e denotes a package-level error variable whose
// name follows the ErrX sentinel convention (mpc.ErrNeedsLarge,
// wire.ErrTransport, ...).
func isSentinel(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	name := v.Name()
	return strings.HasPrefix(name, "Err") && len(name) > 3 &&
		name[3] >= 'A' && name[3] <= 'Z' && implementsError(v.Type())
}

// exprString renders e compactly for structural comparison (the
// assigned-back-to-itself append test) and messages.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// returnsBefore collects the ReturnStmts of body positioned in (after,
// before), skipping nested FuncLits (their returns leave the lit, not this
// function).
func returnsBefore(body *ast.BlockStmt, after, before token.Pos) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	inspectShallow(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > after && r.Pos() < before {
			out = append(out, r)
		}
		return true
	})
	return out
}
