package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: the unit an analyzer pass runs over.
// Test files (_test.go) are excluded — the invariants hetlint enforces are
// production-code properties, and the tests deliberately exercise
// nondeterminism (GOMAXPROCS sweeps, wall-clock benchmarks, fuzzers).
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	suppress map[string]map[int]map[string]suppressState // file -> line -> key -> state
}

// Loader loads and type-checks packages from the module root using only the
// standard library: module-internal imports resolve by path mapping, stdlib
// imports go through go/importer's source importer (the toolchain ships no
// pre-compiled export data, and x/tools is unavailable offline). Pure-Go
// only — cgo is disabled for the load, which this repo satisfies.
type Loader struct {
	Fset   *token.FileSet
	root   string // module root directory
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package
	fix    map[string]string // fixture import path -> dir (LoadDir)
}

// NewLoader builds a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	mod, err := moduleName(root)
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build's default context; cgo-built
	// stdlib variants (net's cgo resolver, notably) cannot be type-checked
	// from source, so force the pure-Go file set.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: mod,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		fix:    map[string]string{},
	}, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// moduleName reads the module path from root's go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Import implements types.Importer: module-internal paths load (and cache)
// through the loader, everything else falls through to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.isLocal(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) isLocal(path string) bool {
	if _, ok := l.fix[path]; ok {
		return true
	}
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

// dirOf maps a module-internal (or fixture) import path to its directory.
func (l *Loader) dirOf(path string) string {
	if dir, ok := l.fix[path]; ok {
		return dir
	}
	return filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/"))
}

// Load type-checks the package at the import path (module-internal or a
// registered fixture), memoized per loader.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirOf(path)
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	pkg.buildSuppressions()
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir registers dir under importPath (a fixture package outside the
// module tree, e.g. internal/lint/testdata/src/detmap) and loads it.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.fix[importPath] = abs
	return l.Load(importPath)
}

// Expand resolves package patterns relative to the module root into import
// paths: "./..." (or "...") walks the tree, "./x/y" names one directory.
// Walks skip testdata, hidden directories and directories without buildable
// Go files.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		path := l.module
		if rel != "" && rel != "." {
			path += "/" + rel
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk("", add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := l.walk(strings.TrimPrefix(strings.TrimSuffix(pat, "/..."), "./"), add); err != nil {
				return nil, err
			}
		default:
			add(strings.TrimPrefix(pat, "./"))
		}
	}
	return out, nil
}

// walk adds every directory under rel (module-root-relative) that holds
// buildable Go files.
func (l *Loader) walk(rel string, add func(string)) error {
	base := filepath.Join(l.root, filepath.FromSlash(rel))
	return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			r, err := filepath.Rel(l.root, p)
			if err != nil {
				return err
			}
			add(r)
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
