package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModPReduction(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{MersennePrime, 0},
		{MersennePrime + 1, 1},
		{MersennePrime - 1, MersennePrime - 1},
		{2 * MersennePrime, 0},
	}
	for _, c := range cases {
		if got := ModP(c.in); got != c.want {
			t.Errorf("ModP(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMulModPAgainstBigIntLikeReference(t *testing.T) {
	// Reference via repeated addition on small values and via float check on
	// random values using the identity (a*b) mod p computed with math/bits
	// through an independent route: decompose b into 32-bit halves.
	ref := func(a, b uint64) uint64 {
		// a*b = a*(bh*2^32 + bl) mod p
		bh, bl := b>>32, b&0xffffffff
		// a*bh*2^32 mod p: multiply in stages that cannot overflow 2^122.
		x := mulSmall(a, bh) // < p
		x = mulSmall(x, 1<<32)
		y := mulSmall(a, bl)
		return AddModP(x, y)
	}
	rng := New(7)
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() % MersennePrime
		b := rng.Uint64() % MersennePrime
		if got, want := MulModP(a, b), ref(a, b); got != want {
			t.Fatalf("MulModP(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// mulSmall multiplies via MulModP but is kept as an alias so the reference
// path above differs from the tested path in how it decomposes operands.
func mulSmall(a, b uint64) uint64 { return MulModP(a, b) }

func TestPowModP(t *testing.T) {
	if got := PowModP(2, 61); got != 1 {
		// 2^61 mod (2^61-1) == 2^61 - (2^61-1) == 1
		t.Errorf("PowModP(2,61) = %d, want 1", got)
	}
	if got := PowModP(3, 0); got != 1 {
		t.Errorf("PowModP(3,0) = %d, want 1", got)
	}
	// Fermat: a^(p-1) == 1 mod p for a != 0.
	rng := New(11)
	for i := 0; i < 50; i++ {
		a := rng.Uint64()%(MersennePrime-1) + 1
		if got := PowModP(a, MersennePrime-1); got != 1 {
			t.Fatalf("Fermat failed for a=%d: got %d", a, got)
		}
	}
}

func TestSplitDeterminismAndDivergence(t *testing.T) {
	if Split(42, 1) != Split(42, 1) {
		t.Fatal("Split is not deterministic")
	}
	if Split(42, 1) == Split(42, 2) {
		t.Fatal("Split children collide")
	}
	if Split(42, 1) == Split(43, 1) {
		t.Fatal("Split parents collide")
	}
}

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("two PRNGs with the same seed diverged")
		}
	}
}

func TestHashDeterministicAndInRange(t *testing.T) {
	h := NewHash(5, 8)
	for i := uint64(0); i < 1000; i++ {
		v := h.Eval(i)
		if v >= MersennePrime {
			t.Fatalf("hash value %d out of range", v)
		}
		if v != h.Eval(i) {
			t.Fatal("hash not deterministic")
		}
	}
}

func TestHashPairwiseIndependenceMoments(t *testing.T) {
	// For a pairwise-independent family mapped to [0,1), the empirical
	// correlation of h(x), h(y) over random functions should be near zero,
	// and the mean near 1/2.
	const trials = 4000
	var sumX, sumY, sumXY float64
	for i := 0; i < trials; i++ {
		h := NewHash(uint64(i)+1000, 2)
		x, y := h.Eval01(12345), h.Eval01(987654321)
		sumX += x
		sumY += y
		sumXY += x * y
	}
	meanX, meanY := sumX/trials, sumY/trials
	cov := sumXY/trials - meanX*meanY
	if math.Abs(meanX-0.5) > 0.05 || math.Abs(meanY-0.5) > 0.05 {
		t.Errorf("means drifted: %f %f", meanX, meanY)
	}
	if math.Abs(cov) > 0.02 {
		t.Errorf("covariance too large for pairwise independence: %f", cov)
	}
}

func TestFieldPropertiesQuick(t *testing.T) {
	mulCommutes := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		return MulModP(a, b) == MulModP(b, a)
	}
	if err := quick.Check(mulCommutes, nil); err != nil {
		t.Error(err)
	}
	distributes := func(a, b, c uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		c %= MersennePrime
		left := MulModP(a, AddModP(b, c))
		right := AddModP(MulModP(a, b), MulModP(a, c))
		return left == right
	}
	if err := quick.Check(distributes, nil); err != nil {
		t.Error(err)
	}
	subInverse := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		return AddModP(SubModP(a, b), b) == a
	}
	if err := quick.Check(subInverse, nil); err != nil {
		t.Error(err)
	}
}
