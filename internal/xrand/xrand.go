// Package xrand provides the deterministic randomness substrate used by the
// heterogeneous-MPC simulator: splittable seeds, per-machine PRNGs (the
// paper's model of §2, in which every machine holds private random bits),
// and the t-wise independent hash families over the Mersenne field
// GF(2^61 - 1) that the ℓ0-sampling sketches of Appendix C.1 require.
//
// Every algorithm in this repository takes an explicit seed, and all
// per-machine randomness is derived from it with SplitMix64, so runs are
// reproducible regardless of goroutine scheduling.
package xrand

import (
	"math/bits"
	"math/rand/v2"
)

// MersennePrime is the field modulus 2^61 - 1 used by the hash families and
// the sketch fingerprints.
const MersennePrime uint64 = (1 << 61) - 1

// SplitMix64 advances the SplitMix64 generator once and returns the output.
// It is the standard seed-derivation function: feeding distinct inputs yields
// statistically independent streams, which we use to split one master seed
// into per-machine and per-purpose seeds.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives the i-th child seed of seed.
func Split(seed uint64, i uint64) uint64 {
	return SplitMix64(seed ^ SplitMix64(i+0x1234_5678_9abc_def1))
}

// New returns a deterministic PRNG derived from seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, SplitMix64(seed)))
}

// ModP reduces x modulo MersennePrime.
func ModP(x uint64) uint64 {
	x = (x & MersennePrime) + (x >> 61)
	if x >= MersennePrime {
		x -= MersennePrime
	}
	return x
}

// MulModP returns a*b mod 2^61-1 using 128-bit intermediate arithmetic.
func MulModP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61, so the 122-bit product is (hi<<64)|lo with hi < 2^58.
	// x mod (2^61-1) == (x & P) + (x >> 61), applied until < P.
	r := (lo & MersennePrime) + ((lo >> 61) | (hi << 3))
	return ModP(r)
}

// AddModP returns a+b mod 2^61-1 for a, b < 2^61-1.
func AddModP(a, b uint64) uint64 {
	return ModP(a + b)
}

// SubModP returns a-b mod 2^61-1 for a, b < 2^61-1.
func SubModP(a, b uint64) uint64 {
	return ModP(a + MersennePrime - b)
}

// PowModP returns base^exp mod 2^61-1.
func PowModP(base, exp uint64) uint64 {
	result := uint64(1)
	base = ModP(base)
	for exp > 0 {
		if exp&1 == 1 {
			result = MulModP(result, base)
		}
		base = MulModP(base, base)
		exp >>= 1
	}
	return result
}

// Hash is a t-wise independent hash function over GF(2^61-1): a random
// polynomial of degree t-1 evaluated at the key. For t = 2 it is the classic
// pairwise-independent family; sketches use t = Θ(log n).
type Hash struct {
	coeff []uint64 // degree t-1 polynomial, coeff[0] is the constant term
}

// NewHash draws a t-wise independent hash function from seed. t must be >= 1.
func NewHash(seed uint64, t int) Hash {
	if t < 1 {
		t = 1
	}
	coeff := make([]uint64, t)
	rng := New(seed)
	for i := range coeff {
		coeff[i] = rng.Uint64() % MersennePrime
	}
	return Hash{coeff: coeff}
}

// Eval evaluates the hash at key x, returning a value in [0, 2^61-1).
func (h Hash) Eval(x uint64) uint64 {
	x = ModP(x)
	acc := uint64(0)
	for i := len(h.coeff) - 1; i >= 0; i-- {
		acc = AddModP(MulModP(acc, x), h.coeff[i])
	}
	return acc
}

// Eval01 evaluates the hash and maps it to [0, 1).
func (h Hash) Eval01(x uint64) float64 {
	return float64(h.Eval(x)) / float64(MersennePrime)
}
