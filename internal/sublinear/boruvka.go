package sublinear

import (
	"fmt"
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// MSTResult is the output of the Borůvka baseline.
type MSTResult struct {
	Edges  []graph.Edge // validation view (edges remain distributed in-model)
	Weight int64
	Phases int
	Stats  mpc.Stats
}

// minEdgeVal is the per-component minimum outgoing edge.
type minEdgeVal struct {
	W          int64
	OU, OV     int32 // original edge (unique tie-break)
	OtherLabel int64
}

const minEdgeWords = 4

func lessMinEdge(a, b minEdgeVal) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.OU != b.OU {
		return a.OU < b.OU
	}
	return a.OV < b.OV
}

// MST is the sublinear-regime baseline: plain Borůvka with random-mate
// contraction and no large machine — Θ(log n) phases of O(1) rounds each
// (the paper's Table 1 contrasts this O(log n) [5] against the heterogeneous
// O(log log(m/n)) algorithm).
//
// Each phase: every component finds its minimum outgoing edge (Claim 2
// aggregation under the unique-weight order); tail-flipping components
// contract along that edge into head-flipping neighbors (coins from a shared
// seed); labels update by dissemination. Every contraction edge is a true
// minimum outgoing edge, so the output is exactly the MSF.
func MST(c *mpc.Cluster, g *graph.Graph) (*MSTResult, error) {
	sp := c.Span("baseline-mst")
	n := g.N
	res := &MSTResult{}
	defer func() { res.Stats = sp.End() }()
	kk := c.K()
	edges := make([][]bEdge, kk)
	dist, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	for i := range dist {
		for _, e := range dist[i] {
			edges[i] = append(edges[i], bEdge{LU: int64(e.U), LV: int64(e.V), W: e.W, OU: int32(e.U), OV: int32(e.V)})
		}
	}

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	coinHash := xrand.NewHash(xrand.Split(seed, 2), 6)
	coin := func(phase int, label int64) bool {
		return coinHash.Eval(uint64(phase)*uint64(n+1)+uint64(label))&1 == 0
	}

	mstParts := make([][]graph.Edge, kk) // MST edges stay distributed
	maxPhases := 6*int(math.Ceil(math.Log2(float64(n)+2))) + 12

	for phase := 0; ; phase++ {
		live, err := prims.SumAll(c, liveCounts(edges))
		if err != nil {
			return nil, err
		}
		if live == 0 {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("sublinear: Borůvka failed to converge")
		}
		res.Phases++

		// Minimum outgoing edge per component (both directions).
		items := make([][]prims.KV[minEdgeVal], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if e.LU == e.LV {
					continue
				}
				mv := minEdgeVal{W: e.W, OU: e.OU, OV: e.OV}
				a := mv
				a.OtherLabel = e.LV
				b := mv
				b.OtherLabel = e.LU
				items[i] = append(items[i],
					prims.KV[minEdgeVal]{K: e.LU, V: a},
					prims.KV[minEdgeVal]{K: e.LV, V: b})
			}
			return nil
		}); err != nil {
			return nil, err
		}
		minRoots, _, err := prims.AggregateByKey(c, items, minEdgeWords,
			func(a, b minEdgeVal) minEdgeVal {
				if lessMinEdge(b, a) {
					return b
				}
				return a
			}, false)
		if err != nil {
			return nil, err
		}
		// Tail components contract along their min edge into head neighbors;
		// the root machine of the component records the MST edge.
		adoptions := make([][]prims.KV[int64], kk)
		if err := c.ForSmall(func(i int) error {
			keys := make([]int64, 0, len(minRoots[i]))
			for k := range minRoots[i] {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			for _, label := range keys {
				mv := minRoots[i][label]
				if !coin(phase, label) && coin(phase, mv.OtherLabel) {
					adoptions[i] = append(adoptions[i], prims.KV[int64]{K: label, V: mv.OtherLabel})
					mstParts[i] = append(mstParts[i], graph.NewEdge(int(mv.OU), int(mv.OV), mv.W))
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Disseminate the adoption map to every machine holding the label.
		labelNeeds := make([][]int64, kk)
		if err := c.ForSmall(func(i int) error {
			seen := make(map[int64]bool)
			for _, e := range edges[i] {
				for _, l := range [2]int64{e.LU, e.LV} {
					if !seen[l] {
						seen[l] = true
						labelNeeds[i] = append(labelNeeds[i], l)
					}
				}
			}
			slices.Sort(labelNeeds[i])
			return nil
		}); err != nil {
			return nil, err
		}
		adoptVals := make([][]prims.KV[int64], kk)
		for i := range adoptions {
			adoptVals[i] = adoptions[i]
		}
		maps, err := prims.SegmentedBroadcast(c, labelNeeds, adoptVals, nil, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			out := edges[i][:0]
			for _, e := range edges[i] {
				if nl, ok := maps[i][e.LU]; ok {
					e.LU = nl
				}
				if nl, ok := maps[i][e.LV]; ok {
					e.LV = nl
				}
				if e.LU != e.LV {
					out = append(out, e)
				}
			}
			edges[i] = out
			return nil
		}); err != nil {
			return nil, err
		}
	}

	all := prims.Flatten(mstParts)
	slices.SortFunc(all, graph.Edge.Compare)
	res.Edges = all
	for _, e := range all {
		res.Weight += e.W
	}
	return res, nil
}

// bEdge is a contracted baseline edge: current component labels plus the
// original (unique-weight) edge.
type bEdge struct {
	LU, LV int64
	W      int64
	OU, OV int32
}

func liveCounts(edges [][]bEdge) []int64 {
	out := make([]int64, len(edges))
	for i := range edges {
		for _, e := range edges[i] {
			if e.LU != e.LV {
				out[i]++
			}
		}
	}
	return out
}
