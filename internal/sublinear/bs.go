package sublinear

import (
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// SpannerResult is the output of the distributed Baswana-Sen baseline.
type SpannerResult struct {
	Edges  []graph.Edge
	Levels int // = k: each level costs O(1) rounds, so Θ(k) rounds total
	Stats  mpc.Stats
}

// Spanner is the sublinear-regime spanner baseline: the Baswana-Sen
// algorithm run level by level with no large machine — k levels of O(1)
// rounds each, i.e. Θ(k) rounds (the paper's Table 1 cites [14]'s O(log k)
// as the best known; plain Baswana-Sen is the classical simple baseline the
// heterogeneous O(1) rounds is contrasted against in experiment E5b).
//
// Center survival is decided by a shared-seed hash (locally computable);
// per-vertex cluster assignments are maintained consistently on every
// machine holding the vertex via aggregation + dissemination.
func Spanner(c *mpc.Cluster, g *graph.Graph, k int) (*SpannerResult, error) {
	sp := c.Span("baseline-spanner")
	if k < 1 {
		k = 1
	}
	n := g.N
	res := &SpannerResult{Levels: k}
	defer func() { res.Stats = sp.End() }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()
	needs := endpointNeeds(edges)

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	centerHash := xrand.NewHash(xrand.Split(seed, 3), 6)
	survives := func(level, center int) bool {
		p := 1 / math.Pow(float64(n), 1/float64(k))
		return centerHash.Eval01(uint64(level)*uint64(n+1)+uint64(center)) < p
	}

	// Per-machine cluster state: center[v] for the vertices the machine
	// holds (consistent across machines), -1 = unclustered, and the level at
	// which v was removed (for lines 16-18).
	center := make([]map[int64]int64, kk)
	removedAt := make([]map[int64]int, kk)
	prevCenter := make([]map[int64]int64, kk)
	if err := c.ForSmall(func(i int) error {
		center[i] = make(map[int64]int64)
		removedAt[i] = make(map[int64]int)
		prevCenter[i] = make(map[int64]int64)
		for _, e := range edges[i] {
			center[i][int64(e.U)] = int64(e.U)
			center[i][int64(e.V)] = int64(e.V)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	spannerParts := make([][]graph.Edge, kk)

	type reclusterVal struct {
		U   int32 // smallest eligible neighbor
		Ctr int64 // that neighbor's surviving center
		OU  int32
		OV  int32
		W   int64
	}
	for level := 1; level <= k; level++ {
		// Snapshot c_{level-1} for every vertex (including -1 for already
		// removed ones) before any update.
		if err := c.ForSmall(func(i int) error {
			for v, cv := range center[i] {
				prevCenter[i][v] = cv
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Each still-clustered vertex whose center dies looks for a neighbor
		// whose center survives; the smallest such neighbor wins (matching
		// core's deterministic choice). One aggregation + one dissemination.
		items := make([][]prims.KV[reclusterVal], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				for dir := 0; dir < 2; dir++ {
					v, u := e.U, e.V
					if dir == 1 {
						v, u = e.V, e.U
					}
					cv, cu := center[i][int64(v)], center[i][int64(u)]
					if cv < 0 || cu < 0 {
						continue
					}
					if level < k && survives(level, int(cv)) {
						continue // v keeps its cluster; no candidate needed
					}
					if level < k && !survives(level, int(cu)) {
						continue // u's center dies too: not a re-cluster target
					}
					if level == k {
						continue // C_k = ∅: nobody re-clusters at the last level
					}
					items[i] = append(items[i], prims.KV[reclusterVal]{
						K: int64(v),
						V: reclusterVal{U: int32(u), Ctr: cu, OU: int32(e.U), OV: int32(e.V), W: e.W},
					})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		minRoots, _, err := prims.AggregateByKey(c, items, 5,
			func(a, b reclusterVal) reclusterVal {
				if b.U < a.U {
					return b
				}
				return a
			}, false)
		if err != nil {
			return nil, err
		}
		// The aggregation root records the spanner edge for re-clustered v.
		if err := c.ForSmall(func(i int) error {
			keys := make([]int64, 0, len(minRoots[i]))
			for key := range minRoots[i] {
				keys = append(keys, key)
			}
			slices.Sort(keys)
			for _, key := range keys {
				rv := minRoots[i][key]
				spannerParts[i] = append(spannerParts[i], graph.NewEdge(int(rv.OU), int(rv.OV), rv.W))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		newCenters, err := prims.SegmentedBroadcast(c, needs, rootsToKVs(c, minRoots), nil, 5)
		if err != nil {
			return nil, err
		}
		// Update cluster state consistently everywhere.
		if err := c.ForSmall(func(i int) error {
			for v, cv := range center[i] {
				if cv < 0 {
					continue
				}
				if level < k && survives(level, int(cv)) {
					continue // center survives
				}
				if rv, ok := newCenters[i][v]; ok {
					center[i][v] = rv.Ctr
					continue
				}
				center[i][v] = -1
				removedAt[i][v] = level
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Lines 16-18 for this level: removed vertices add one edge per
		// adjacent previous-level cluster (aggregation keyed (v, cluster)).
		type remVal struct {
			U      int32
			OU, OV int32
			W      int64
		}
		remItems := make([][]prims.KV[remVal], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				for dir := 0; dir < 2; dir++ {
					v, u := e.U, e.V
					if dir == 1 {
						v, u = e.V, e.U
					}
					if removedAt[i][int64(v)] != level {
						continue
					}
					cu := prevCenter[i][int64(u)]
					cv := prevCenter[i][int64(v)]
					if _, had := prevCenter[i][int64(u)]; !had {
						continue
					}
					if cu < 0 || cu == cv {
						continue
					}
					key := int64(v)*int64(n) + cu
					remItems[i] = append(remItems[i], prims.KV[remVal]{
						K: key,
						V: remVal{U: int32(u), OU: int32(e.U), OV: int32(e.V), W: e.W},
					})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		remRoots, _, err := prims.AggregateByKey(c, remItems, 4,
			func(a, b remVal) remVal {
				if b.U < a.U {
					return b
				}
				return a
			}, false)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			keys := make([]int64, 0, len(remRoots[i]))
			for key := range remRoots[i] {
				keys = append(keys, key)
			}
			slices.Sort(keys)
			for _, key := range keys {
				rv := remRoots[i][key]
				spannerParts[i] = append(spannerParts[i], graph.NewEdge(int(rv.OU), int(rv.OV), rv.W))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Validation view: flatten and dedupe.
	all := prims.Flatten(spannerParts)
	seen := make(map[int64]bool, len(all))
	out := all[:0]
	for _, e := range all {
		key := e.Key(n)
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	slices.SortFunc(out, graph.CompareEndpoints)
	res.Edges = out
	return res, nil
}
