// Package sublinear implements the sublinear-MPC baseline algorithms used
// for the Table 1 comparison (the "Sublinear MPC" column): they run on a
// cluster with NO large machine (mpc.Config.NoLarge) and exhibit the round
// complexities the paper contrasts against — Θ(log n) Borůvka MST and
// random-mate connectivity, Θ(log n) Luby MIS, and mirror-matching peeling
// whose round count tracks log Δ.
//
// The peeling matching primitive is shared with the heterogeneous algorithm
// of §5 (Phase 1 runs it on the low-degree induced subgraph), which is what
// makes the paper's d-vs-Δ separation directly observable (experiment E7);
// see DESIGN.md substitution 1.
package sublinear

import (
	"fmt"
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
)

// PeelResult is the outcome of the mirror-matching peeling loop.
type PeelResult struct {
	Matched    [][]graph.Edge // matching edges, per machine
	Live       [][]graph.Edge // remaining edges with both endpoints unmatched
	Iterations int
	Remaining  int64
	Stats      mpc.Stats // communication metrics of the peeling run
}

// rankVal is the per-vertex aggregation value: the minimum (rank, edge) of
// the live edges incident to the vertex.
type rankVal struct {
	Rank   uint64
	EU, EV int32
}

const rankValWords = 3

func lessRank(a, b rankVal) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.EU != b.EU {
		return a.EU < b.EU
	}
	return a.EV < b.EV
}

// PeelMatching runs mirror-matching peeling on the distributed edge set:
// each iteration every live edge draws a random rank; an edge enters the
// matching iff it holds the minimum rank at BOTH endpoints; endpoints of
// matched edges die and their edges are dropped. The loop stops when the
// number of live edges is at most stopRemaining (use 0 for a maximal
// matching). Each iteration is O(1) rounds; the iteration count is
// O(log Δ') w.h.p. where Δ' is the max degree of the input edges.
//
// Works on clusters with or without a large machine (the baseline regime
// uses machine 0 as coordinator).
func PeelMatching(c *mpc.Cluster, edges [][]graph.Edge, stopRemaining int64) (*PeelResult, error) {
	sp := c.Span("peel")
	k := c.K()
	live := make([][]graph.Edge, k)
	for i := 0; i < k && i < len(edges); i++ {
		live[i] = append([]graph.Edge(nil), edges[i]...)
	}
	matched := make([][]graph.Edge, k)
	res := &PeelResult{}
	defer func() { res.Stats = sp.End() }()

	total := int64(0)
	for i := range live {
		total += int64(len(live[i]))
	}
	maxIters := 4*int(math.Ceil(math.Log2(float64(total)+2))) + 12

	for iter := 0; ; iter++ {
		remaining, err := prims.SumAll(c, counts(live))
		if err != nil {
			return nil, err
		}
		res.Remaining = remaining
		if remaining <= stopRemaining {
			break
		}
		if iter >= maxIters {
			return nil, fmt.Errorf("sublinear: peeling failed to converge after %d iterations (%d live)", iter, remaining)
		}
		res.Iterations++

		// Draw ranks and aggregate the per-vertex minimum.
		ranks := make([][]uint64, k)
		items := make([][]prims.KV[rankVal], k)
		if err := c.ForSmall(func(i int) error {
			rng := c.Rand(i)
			ranks[i] = make([]uint64, len(live[i]))
			items[i] = make([]prims.KV[rankVal], 0, 2*len(live[i]))
			for j, e := range live[i] {
				r := rng.Uint64()
				ranks[i][j] = r
				rv := rankVal{Rank: r, EU: int32(e.U), EV: int32(e.V)}
				items[i] = append(items[i],
					prims.KV[rankVal]{K: int64(e.U), V: rv},
					prims.KV[rankVal]{K: int64(e.V), V: rv})
			}
			return nil
		}); err != nil {
			return nil, err
		}
		minRoots, _, err := prims.AggregateByKey(c, items, rankValWords,
			func(a, b rankVal) rankVal {
				if lessRank(b, a) {
					return b
				}
				return a
			}, false)
		if err != nil {
			return nil, err
		}
		needs := endpointNeeds(live)
		rootKVs := rootsToKVs(c, minRoots)
		minMaps, err := prims.SegmentedBroadcast(c, needs, rootKVs, nil, rankValWords)
		if err != nil {
			return nil, err
		}

		// An edge is matched iff it is the minimum at both endpoints.
		deadItems := make([][]prims.KV[bool], k)
		if err := c.ForSmall(func(i int) error {
			for j, e := range live[i] {
				rv := rankVal{Rank: ranks[i][j], EU: int32(e.U), EV: int32(e.V)}
				mu, okU := minMaps[i][int64(e.U)]
				mv, okV := minMaps[i][int64(e.V)]
				if okU && okV && mu == rv && mv == rv {
					matched[i] = append(matched[i], e)
					deadItems[i] = append(deadItems[i],
						prims.KV[bool]{K: int64(e.U), V: true},
						prims.KV[bool]{K: int64(e.V), V: true})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		deadRoots, _, err := prims.AggregateByKey(c, deadItems, 1,
			func(a, b bool) bool { return a || b }, false)
		if err != nil {
			return nil, err
		}
		deadMaps, err := prims.SegmentedBroadcast(c, needs, rootsToKVs(c, deadRoots), nil, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			out := live[i][:0]
			for _, e := range live[i] {
				if deadMaps[i][int64(e.U)] || deadMaps[i][int64(e.V)] {
					continue
				}
				out = append(out, e)
			}
			live[i] = out
			return nil
		}); err != nil {
			return nil, err
		}
	}
	res.Matched = matched
	res.Live = live
	return res, nil
}

// counts returns per-machine item counts as int64s.
func counts[T any](data [][]T) []int64 {
	out := make([]int64, len(data))
	for i := range data {
		out[i] = int64(len(data[i]))
	}
	return out
}

// endpointNeeds returns each machine's deduplicated endpoint key list,
// sorted. Dedup goes through sort + compact rather than a hash set: the
// loop runs once per peeling iteration over every live edge, and the sort
// is the radix kernel under the fast kernel set.
func endpointNeeds(edges [][]graph.Edge) [][]int64 {
	needs := make([][]int64, len(edges))
	for i := range edges {
		if len(edges[i]) == 0 {
			continue
		}
		vs := make([]int64, 0, 2*len(edges[i]))
		for _, e := range edges[i] {
			vs = append(vs, int64(e.U), int64(e.V))
		}
		prims.SortInts(vs)
		needs[i] = slices.Compact(vs)
	}
	return needs
}

// rootsToKVs converts per-machine root maps into sorted KV slices for
// SegmentedBroadcast's distributed-values input.
func rootsToKVs[V any](c *mpc.Cluster, roots []map[int64]V) [][]prims.KV[V] {
	out := make([][]prims.KV[V], c.K())
	for i := range roots {
		out[i] = make([]prims.KV[V], 0, len(roots[i]))
		for key, v := range roots[i] {
			out[i] = append(out[i], prims.KV[V]{K: key, V: v})
		}
		prims.SortKVsByKey(out[i])
	}
	return out
}

// MaximalMatching is the sublinear-regime baseline: peel to full maximality
// with no large machine involved. The returned stats show Θ(log Δ)
// iterations of O(1) rounds each.
func MaximalMatching(c *mpc.Cluster, g *graph.Graph) ([]graph.Edge, *PeelResult, error) {
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, nil, err
	}
	res, err := PeelMatching(c, edges, 0)
	if err != nil {
		return nil, nil, err
	}
	return prims.Flatten(res.Matched), res, nil
}
