package sublinear

import (
	"fmt"
	"math"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// ColoringResult is the output of the random-trial coloring baseline.
type ColoringResult struct {
	Colors   []int
	MaxColor int
	Rounds   int // trial rounds (Θ(log n)), each O(1) communication rounds
	Stats    mpc.Stats
}

// Coloring is the sublinear-regime baseline: iterated random color trials
// with no large machine — Θ(log n) rounds (Table 1 contrasts the
// heterogeneous O(1) [6] against the sublinear O(log log log n) [19];
// random trials are the classical simple baseline with non-constant round
// count).
//
// Each round every uncolored vertex tries a shared-seed random color from
// [0, Δ]; it keeps the color if no neighbor holds or tries the same one.
func Coloring(c *mpc.Cluster, g *graph.Graph) (*ColoringResult, error) {
	sp := c.Span("baseline-coloring")
	n := g.N
	res := &ColoringResult{}
	defer func() { res.Stats = sp.End() }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()
	needs := endpointNeeds(edges)

	// Δ via aggregation with distributed results + SumAll on the max: use a
	// max-aggregation keyed by a single key.
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		local := make(map[int64]int64)
		for _, e := range edges[i] {
			local[int64(e.U)]++
			local[int64(e.V)]++
		}
		for v, d := range local {
			degItems[i] = append(degItems[i], prims.KV[int64]{K: v, V: d})
		}
		prims.SortKVsByKey(degItems[i])
		return nil
	}); err != nil {
		return nil, err
	}
	degRoots, _, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, false)
	if err != nil {
		return nil, err
	}
	localMax := make([]int64, kk)
	for i := range degRoots {
		for _, d := range degRoots[i] {
			if d > localMax[i] {
				localMax[i] = d
			}
		}
	}
	// Max via SumAll trick is wrong; do a dedicated max round through the
	// coordinator (still O(1)).
	maxDeg, err := maxAll(c, localMax)
	if err != nil {
		return nil, err
	}
	if maxDeg < 1 {
		maxDeg = 1
	}
	res.MaxColor = int(maxDeg)

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	tryHash := xrand.NewHash(xrand.Split(seed, 9), 6)
	try := func(round, v int) int {
		return int(tryHash.Eval(uint64(round)*uint64(n+1)+uint64(v)) % uint64(maxDeg+1))
	}

	// Per-machine per-vertex fixed color (-1 = uncolored), consistent across
	// machines because all decisions derive from disseminated aggregates.
	colors := make([]map[int64]int, kk)
	if err := c.ForSmall(func(i int) error {
		colors[i] = make(map[int64]int)
		for _, e := range edges[i] {
			colors[i][int64(e.U)] = -1
			colors[i][int64(e.V)] = -1
		}
		return nil
	}); err != nil {
		return nil, err
	}
	maxRounds := 8*int(math.Ceil(math.Log2(float64(n)+2))) + 16

	for round := 0; ; round++ {
		liveCounts := make([]int64, kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if colors[i][int64(e.U)] < 0 || colors[i][int64(e.V)] < 0 {
					liveCounts[i]++
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		live, err := prims.SumAll(c, liveCounts)
		if err != nil {
			return nil, err
		}
		if live == 0 {
			break
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("sublinear: coloring failed to converge")
		}
		res.Rounds++

		// Per uncolored vertex: does any neighbor block its tried color
		// (same trial, or an already-fixed equal color)?
		items := make([][]prims.KV[bool], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				cu, cv := colors[i][int64(e.U)], colors[i][int64(e.V)]
				if cu < 0 {
					blocked := (cv < 0 && try(round, e.V) == try(round, e.U)) ||
						(cv >= 0 && cv == try(round, e.U))
					items[i] = append(items[i], prims.KV[bool]{K: int64(e.U), V: blocked})
				}
				if cv < 0 {
					blocked := (cu < 0 && try(round, e.U) == try(round, e.V)) ||
						(cu >= 0 && cu == try(round, e.V))
					items[i] = append(items[i], prims.KV[bool]{K: int64(e.V), V: blocked})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		blockRoots, _, err := prims.AggregateByKey(c, items, 1,
			func(a, b bool) bool { return a || b }, false)
		if err != nil {
			return nil, err
		}
		blockMaps, err := prims.SegmentedBroadcast(c, needs, rootsToKVs(c, blockRoots), nil, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			for v, col := range colors[i] {
				if col >= 0 {
					continue
				}
				blocked, known := blockMaps[i][v]
				if known && !blocked {
					colors[i][v] = try(round, int(v))
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Validation view.
	out := make([]int, n)
	for v := range out {
		out[v] = 0 // isolated vertices
	}
	for i := range colors {
		for v, col := range colors[i] {
			if col >= 0 {
				out[v] = col
			}
		}
	}
	res.Colors = out
	return res, nil
}

// maxAll computes the max of one value per machine at the coordinator and
// broadcasts it.
func maxAll(c *mpc.Cluster, vals []int64) (int64, error) {
	outs := make([][]mpc.Msg, c.K())
	for i := 0; i < c.K(); i++ {
		var v int64
		if i < len(vals) {
			v = vals[i]
		}
		outs[i] = []mpc.Msg{{To: coordinatorOf(c), Words: 1, Data: v}}
	}
	ins, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return 0, err
	}
	inbox := inLarge
	if !c.HasLarge() {
		inbox = ins[0]
	}
	var max int64
	for _, m := range inbox {
		v, ok := m.Data.(int64)
		if !ok {
			return 0, fmt.Errorf("sublinear: unexpected max payload %T", m.Data)
		}
		if v > max {
			max = v
		}
	}
	if _, err := prims.BroadcastValue(c, max, 1); err != nil {
		return 0, err
	}
	return max, nil
}

func coordinatorOf(c *mpc.Cluster) int {
	if c.HasLarge() {
		return mpc.Large
	}
	return 0
}
