package sublinear

import (
	"fmt"
	"math"
	"sort"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// MISResult is the output of the Luby baseline.
type MISResult struct {
	Set    []int
	Rounds int // Luby rounds (Θ(log n)), each O(1) communication rounds
	Stats  mpc.Stats
}

// MIS is the sublinear-regime baseline: Luby's algorithm with no large
// machine — Θ(log n) rounds (Table 1 contrasts the heterogeneous
// O(log log Δ) against the sublinear Õ(√log Δ + ...) [33]; Luby is the
// classical simple baseline with the same non-constant behaviour).
//
// Each round every live vertex draws a shared-seed priority; strict local
// minima join the MIS; MIS vertices and their neighbors die.
func MIS(c *mpc.Cluster, g *graph.Graph) (*MISResult, error) {
	sp := c.Span("baseline-mis")
	n := g.N
	res := &MISResult{}
	defer func() { res.Stats = sp.End() }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	prioHash := xrand.NewHash(xrand.Split(seed, 5), 6)
	prio := func(round, v int) uint64 {
		return prioHash.Eval(uint64(round)*uint64(n+1) + uint64(v))
	}

	// Per-machine vertex state: 0 live, 1 in MIS, 2 dead (dominated).
	state := make([]map[int64]byte, kk)
	if err := c.ForSmall(func(i int) error {
		state[i] = make(map[int64]byte)
		for _, e := range edges[i] {
			state[i][int64(e.U)] = 0
			state[i][int64(e.V)] = 0
		}
		return nil
	}); err != nil {
		return nil, err
	}
	needs := endpointNeeds(edges)
	maxRounds := 6*int(math.Ceil(math.Log2(float64(n)+2))) + 12

	for round := 0; ; round++ {
		liveCounts := make([]int64, kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if state[i][int64(e.U)] == 0 && state[i][int64(e.V)] == 0 {
					liveCounts[i]++
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		live, err := prims.SumAll(c, liveCounts)
		if err != nil {
			return nil, err
		}
		if live == 0 {
			break
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("sublinear: Luby failed to converge")
		}
		res.Rounds++

		// Per live vertex: minimum live-neighbor priority.
		items := make([][]prims.KV[uint64], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if state[i][int64(e.U)] != 0 || state[i][int64(e.V)] != 0 {
					continue
				}
				items[i] = append(items[i],
					prims.KV[uint64]{K: int64(e.U), V: prio(round, e.V)},
					prims.KV[uint64]{K: int64(e.V), V: prio(round, e.U)})
			}
			return nil
		}); err != nil {
			return nil, err
		}
		minRoots, _, err := prims.AggregateByKey(c, items, 1,
			func(a, b uint64) uint64 {
				if a < b {
					return a
				}
				return b
			}, false)
		if err != nil {
			return nil, err
		}
		minMaps, err := prims.SegmentedBroadcast(c, needs, rootsToKVs(c, minRoots), nil, 1)
		if err != nil {
			return nil, err
		}
		// A live vertex with priority strictly below all live neighbors
		// joins the MIS; every machine holding it reaches the same verdict.
		// Then domination spreads by one more aggregation round.
		domItems := make([][]prims.KV[bool], kk)
		if err := c.ForSmall(func(i int) error {
			// Two passes: decide verdicts from the pre-round state, then
			// apply them (deciding and mutating in one pass would hide a
			// vertex's MIS-ness from its later edges on the same machine).
			verdict := make(map[int64]bool, len(state[i]))
			for v, s := range state[i] {
				if s != 0 {
					continue
				}
				minNbr, ok := minMaps[i][v]
				if !ok || prio(round, int(v)) < minNbr {
					verdict[v] = true
				}
			}
			for v := range verdict {
				state[i][v] = 1
			}
			for _, e := range edges[i] {
				if verdict[int64(e.U)] {
					domItems[i] = append(domItems[i], prims.KV[bool]{K: int64(e.V), V: true})
				}
				if verdict[int64(e.V)] {
					domItems[i] = append(domItems[i], prims.KV[bool]{K: int64(e.U), V: true})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		domRoots, _, err := prims.AggregateByKey(c, domItems, 1,
			func(a, b bool) bool { return a || b }, false)
		if err != nil {
			return nil, err
		}
		domMaps, err := prims.SegmentedBroadcast(c, needs, rootsToKVs(c, domRoots), nil, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			for v := range state[i] {
				if state[i][v] == 0 && domMaps[i][v] {
					state[i][v] = 2
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Assemble the MIS (validation view): MIS-state vertices, still-alive
	// vertices (all their neighbors died dominated, so they are independent
	// of the MIS and must join for maximality), plus isolated vertices.
	misSet := map[int]bool{}
	hasEdges := make([]bool, n)
	for i := range state {
		for v, s := range state[i] {
			hasEdges[v] = true
			if s == 1 || s == 0 {
				misSet[int(v)] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if !hasEdges[v] {
			misSet[v] = true
		}
	}
	out := make([]int, 0, len(misSet))
	for v := range misSet {
		out = append(out, v)
	}
	sort.Ints(out)
	res.Set = out
	return res, nil
}
