package sublinear

import (
	"fmt"
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// CCResult is the output of the random-mate connectivity baseline.
type CCResult struct {
	Labels     []int // per-vertex component label (validation view)
	Components int
	Phases     int
	Stats      mpc.Stats
}

// Connectivity is the sublinear-regime baseline: random-mate label
// contraction with no large machine, Θ(log n) phases of O(1) rounds each
// (the quantity the paper's O(1)-round heterogeneous algorithm is compared
// against; the best known sublinear bound is O(log D + log log n) [11], also
// non-constant).
//
// Each phase, every current label flips a shared coin; a tail-labeled
// component adopts the smallest head-labeled neighbor label. Coins come from
// a broadcast shared seed, so they are locally computable everywhere.
func Connectivity(c *mpc.Cluster, g *graph.Graph) (*CCResult, error) {
	sp := c.Span("baseline-cc")
	n := g.N
	res := &CCResult{}
	// Registered before the first fallible call so the span closes on every
	// path (the early-return leak hetlint's spanpair analyzer flags).
	defer func() { res.Stats = sp.End() }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	coinHash := xrand.NewHash(xrand.Split(seed, 1), 6)
	coin := func(phase, label int) bool { // true = head
		return coinHash.Eval(uint64(phase)*uint64(n+1)+uint64(label))&1 == 0
	}

	// Per-machine current label of every vertex it stores.
	labels := make([]map[int64]int64, kk)
	if err := c.ForSmall(func(i int) error {
		labels[i] = make(map[int64]int64)
		for _, e := range edges[i] {
			labels[i][int64(e.U)] = int64(e.U)
			labels[i][int64(e.V)] = int64(e.V)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	maxPhases := 4*int(math.Ceil(math.Log2(float64(n)+2))) + 10
	for phase := 0; ; phase++ {
		// Count live (inter-component) edges.
		liveCounts := make([]int64, kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if labels[i][int64(e.U)] != labels[i][int64(e.V)] {
					liveCounts[i]++
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		live, err := prims.SumAll(c, liveCounts)
		if err != nil {
			return nil, err
		}
		if live == 0 {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("sublinear: connectivity failed to converge")
		}
		res.Phases++

		// Tail labels adopt the smallest head neighbor label.
		items := make([][]prims.KV[int64], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				lu, lv := labels[i][int64(e.U)], labels[i][int64(e.V)]
				if lu == lv {
					continue
				}
				if !coin(phase, int(lu)) && coin(phase, int(lv)) {
					items[i] = append(items[i], prims.KV[int64]{K: lu, V: lv})
				}
				if !coin(phase, int(lv)) && coin(phase, int(lu)) {
					items[i] = append(items[i], prims.KV[int64]{K: lv, V: lu})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		adoptRoots, _, err := prims.AggregateByKey(c, items, 1,
			func(a, b int64) int64 {
				if a < b {
					return a
				}
				return b
			}, false)
		if err != nil {
			return nil, err
		}
		// Machines need the adoption mapping for every LABEL they hold.
		labelNeeds := make([][]int64, kk)
		if err := c.ForSmall(func(i int) error {
			seen := make(map[int64]bool, len(labels[i]))
			for _, l := range labels[i] {
				if !seen[l] {
					seen[l] = true
					labelNeeds[i] = append(labelNeeds[i], l)
				}
			}
			slices.Sort(labelNeeds[i])
			return nil
		}); err != nil {
			return nil, err
		}
		adoptMaps, err := prims.SegmentedBroadcast(c, labelNeeds, rootsToKVs(c, adoptRoots), nil, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			for v, l := range labels[i] {
				if nl, ok := adoptMaps[i][l]; ok {
					labels[i][v] = nl
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Validation view: assemble the global labels (outside the model).
	global := make([]int, n)
	for v := range global {
		global[v] = v
	}
	for i := range labels {
		for v, l := range labels[i] {
			global[v] = int(l)
		}
	}
	// Normalize to smallest-member labels for comparison with references.
	remap := map[int]int{}
	for v := 0; v < n; v++ {
		l := global[v]
		if cur, ok := remap[l]; !ok || v < cur {
			remap[l] = v
		}
	}
	distinct := map[int]bool{}
	for v := 0; v < n; v++ {
		global[v] = remap[global[v]]
		distinct[global[v]] = true
	}
	res.Labels = global
	res.Components = len(distinct)
	return res, nil
}
