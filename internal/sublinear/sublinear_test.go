package sublinear

import (
	"math"
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

func newBaselineCluster(t *testing.T, n, m int, seed uint64) *mpc.Cluster {
	t.Helper()
	c, err := mpc.New(mpc.Config{N: n, M: m, NoLarge: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBaselineConnectivity(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GNM(96, 300, 3),
		graph.Cycles(90, 2, 7),
		graph.Grid(8, 10),
		graph.Path(64),
	} {
		c := newBaselineCluster(t, g.N, g.M(), 11)
		res, err := Connectivity(c, g)
		if err != nil {
			t.Fatal(err)
		}
		wantLabels, wantCC := graph.Components(g)
		if res.Components != wantCC {
			t.Fatalf("components %d want %d", res.Components, wantCC)
		}
		for v := range wantLabels {
			if res.Labels[v] != wantLabels[v] {
				t.Fatalf("label mismatch at %d", v)
			}
		}
	}
}

func TestBaselineConnectivityPhasesGrowWithN(t *testing.T) {
	// The baseline's point: phases ~ Θ(log n), unlike the heterogeneous O(1).
	phasesAt := func(n int) int {
		g := graph.Cycles(n, 1, 5)
		c := newBaselineCluster(t, g.N, g.M(), 7)
		res, err := Connectivity(c, g)
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases
	}
	small, big := phasesAt(64), phasesAt(512)
	if big <= small {
		t.Logf("phases: n=64 -> %d, n=512 -> %d (expected growth, may flake)", small, big)
	}
	if big > 4*int(math.Log2(512))+8 {
		t.Fatalf("phases blew past the log-n envelope: %d", big)
	}
}

func TestBaselineMST(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{64, 300},
		{100, 150},
	} {
		g := graph.GNMWeighted(tc.n, tc.m, uint64(tc.n))
		c := newBaselineCluster(t, g.N, g.M(), 5)
		res, err := MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckMST(g, res.Edges); err != nil {
			t.Fatal(err)
		}
		_, want := graph.KruskalMSF(g)
		if res.Weight != want {
			t.Fatalf("weight %d want %d", res.Weight, want)
		}
		if res.Phases < 2 {
			t.Fatalf("suspiciously few phases: %d", res.Phases)
		}
	}
}

func TestBaselineLubyMIS(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GNM(96, 400, 9),
		graph.Star(50),
		graph.Complete(24, false, 1),
		graph.Path(60),
	} {
		c := newBaselineCluster(t, g.N, g.M(), 13)
		res, err := MIS(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckMIS(g, res.Set); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBaselineColoring(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GNM(96, 400, 9),
		graph.Cycles(60, 1, 3),
		graph.Grid(7, 9),
	} {
		c := newBaselineCluster(t, g.N, g.M(), 17)
		res, err := Coloring(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckColoring(g, res.Colors, res.MaxColor); err != nil {
			t.Fatal(err)
		}
		if res.MaxColor != g.MaxDegree() {
			t.Fatalf("palette %d want Δ=%d", res.MaxColor, g.MaxDegree())
		}
	}
}

func TestPeelMatchingStopsEarly(t *testing.T) {
	g := graph.GNM(128, 900, 21)
	c := newBaselineCluster(t, g.N, g.M(), 9)
	edges := make([][]graph.Edge, c.K())
	for j, e := range g.Edges {
		edges[j%c.K()] = append(edges[j%c.K()], e)
	}
	res, err := PeelMatching(c, edges, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining > 400 {
		t.Fatalf("stopped with %d live edges", res.Remaining)
	}
	// The partial matching must still be a valid matching.
	match := make([]graph.Edge, 0)
	for i := range res.Matched {
		match = append(match, res.Matched[i]...)
	}
	if err := graph.CheckMatching(g, match, false); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSpanner(t *testing.T) {
	for _, k := range []int{2, 3} {
		g := graph.ConnectedGNM(96, 1200, uint64(k)+3, false)
		c := newBaselineCluster(t, g.N, g.M(), 7)
		res, err := Spanner(c, g, k)
		if err != nil {
			t.Fatal(err)
		}
		h := graph.New(g.N, res.Edges, false)
		if err := graph.CheckSpanner(g, h, 2*k-1, 5, 11); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(res.Edges) >= g.M() {
			t.Fatalf("k=%d: no sparsification (%d of %d)", k, len(res.Edges), g.M())
		}
	}
}

func TestBaselineSpannerRoundsGrowWithK(t *testing.T) {
	// Θ(k) levels of O(1) rounds: rounds must grow with k (vs the
	// heterogeneous O(1)).
	g := graph.ConnectedGNM(96, 900, 5, false)
	roundsAt := func(k int) int {
		c := newBaselineCluster(t, g.N, g.M(), 9)
		res, err := Spanner(c, g, k)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	if r2, r6 := roundsAt(2), roundsAt(6); r6 <= r2 {
		t.Fatalf("rounds did not grow with k: k=2 -> %d, k=6 -> %d", r2, r6)
	}
}

func TestBaselinesAreDeterministic(t *testing.T) {
	g := graph.GNMWeighted(80, 320, 5)
	run := func() int64 {
		c := newBaselineCluster(t, g.N, g.M(), 23)
		res, err := MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		return res.Weight
	}
	if run() != run() {
		t.Fatal("baseline MST nondeterministic")
	}
}
