package prims

import (
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

func edgeKey(e graph.Edge) SortKey {
	return SortKey{A: e.W, B: int64(e.U), C: int64(e.V)}
}

// TestDistributeEdgesUniformIsRoundRobin: with uniform caps the weighted
// allotment must stay the historical round-robin (placement feeds every
// downstream golden).
func TestDistributeEdgesUniformIsRoundRobin(t *testing.T) {
	g := graph.GNMWeighted(128, 1024, 3)
	cfg := mpc.Config{N: g.N, M: g.M(), Seed: 1}
	cNil, err := mpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = mpc.UniformProfile(cfg.DeriveK())
	cUni, err := mpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := DistributeEdges(cNil, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistributeEdges(cUni, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("machine %d: %d vs %d edges", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("machine %d item %d differs", i, j)
			}
		}
	}
	for j, e := range g.Edges {
		if a[j%cNil.K()][j/cNil.K()] != e {
			t.Fatalf("edge %d not at round-robin position", j)
		}
	}
}

// TestDistributeEdgesProportional: under capacity skew the held volume
// tracks CapShare within rounding.
func TestDistributeEdgesProportional(t *testing.T) {
	g := graph.GNMWeighted(128, 1024, 3)
	cfg := mpc.Config{N: g.N, M: g.M(), Seed: 1}
	k := cfg.DeriveK()
	cfg.Profile = mpc.ZipfProfile(k, 1, 0.05)
	c, err := mpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := DistributeEdges(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountItems(data); got != g.M() {
		t.Fatalf("%d items distributed, want %d", got, g.M())
	}
	var totalShare float64
	for i := 0; i < k; i++ {
		totalShare += c.CapShare(i)
	}
	for i := 0; i < k; i++ {
		expect := float64(g.M()) * c.CapShare(i) / totalShare
		if d := float64(len(data[i])) - expect; d > 1.5 || d < -1.5 {
			t.Fatalf("machine %d holds %d edges, want ~%.1f (share %.3f)", i, len(data[i]), expect, c.CapShare(i))
		}
	}
}

// TestSortUnderCapacitySkew: the sample sort stays correct and inside every
// machine's own cap when capacities are Zipf-skewed.
func TestSortUnderCapacitySkew(t *testing.T) {
	g := graph.GNMWeighted(256, 4096, 9)
	cfg := mpc.Config{N: g.N, M: g.M(), Seed: 2}
	cfg.Profile = mpc.ZipfProfile(cfg.DeriveK(), 1.2, 0.05)
	c, err := mpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := DistributeEdges(c, g)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := Sort(c, data, EdgeWords, edgeKey)
	if err != nil {
		t.Fatal(err)
	}
	if !IsGloballySorted(sorted, edgeKey) {
		t.Fatal("not globally sorted under capacity skew")
	}
	if got := CountItems(sorted); got != g.M() {
		t.Fatalf("%d items after sort, want %d", got, g.M())
	}
	for i := range sorted {
		if words := len(sorted[i]) * EdgeWords; words > c.SmallCapOf(i) {
			t.Fatalf("machine %d holds %d words over its cap %d", i, words, c.SmallCapOf(i))
		}
	}
}
