package prims

import (
	"slices"

	"hetmpc/internal/mpc"
)

// Checkpointable state (DESIGN.md §7): the toolbox primitives register the
// per-machine buckets they leave behind — the edges placed by
// DistributeEdges, the buckets Sort routes and re-sorts, the combined runs
// of AggregateByKey — with the cluster's fault engine, so that checkpoint
// barriers replicate the machines' *live* state volume and crash recovery
// round-trips real data through Snapshot/Restore. On clusters without an
// active fault plan every registration is a no-op, so the fault-free path
// pays nothing.

// bucketCheckpointer adapts one machine's slice bucket inside a shared
// [][]T to fault.Checkpointer. Snapshot deep-copies the bucket (the engine
// holds snapshots across rounds while the bucket mutates); Restore writes
// the snapshot back through the shared outer slice, so the owner of the
// [][]T observes the restored state.
type bucketCheckpointer[T any] struct {
	data      [][]T
	i         int
	itemWords int
}

func (b bucketCheckpointer[T]) Snapshot() (any, int) {
	cp := slices.Clone(b.data[b.i])
	return cp, len(cp) * b.itemWords
}

func (b bucketCheckpointer[T]) Restore(data any) { b.data[b.i] = data.([]T) }

// RegisterState registers machine i's bucket data[i] (for every i) as its
// recoverable state, sized at itemWords words per item. Primitives call it
// whenever the live per-machine state changes hands; algorithms with
// additional scratch can layer their own fault.Checkpointer via
// mpc.Cluster.SetCheckpointer. A no-op without an active fault plan.
func RegisterState[T any](c *mpc.Cluster, data [][]T, itemWords int) {
	if !c.FaultsActive() {
		return
	}
	for i := 0; i < c.K() && i < len(data); i++ {
		c.SetCheckpointer(i, bucketCheckpointer[T]{data: data, i: i, itemWords: itemWords})
	}
}
