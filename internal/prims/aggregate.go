package prims

import (
	"fmt"

	"hetmpc/internal/arena"
	"hetmpc/internal/mpc"
)

// AggregateByKey implements Claim 2: items (key, value) spread over the
// small machines are combined per key with the aggregation function
// `combine`. The protocol is: local combine → sort partials by key → detect
// runs that span machine boundaries → combine up a capacity-bounded tree per
// spanning run. Afterwards each key's final value is held by the first
// machine of its run ("M_first(key)" in the paper); roots[i] maps the keys
// finalized at machine i.
//
// Bucket assignment is placement-aware through the Sort step: the key
// ranges each machine ends up owning follow the cluster's placement policy
// (PlaceShare weighting of the splitters, DESIGN.md §8), so slow or small
// machines own fewer keys under throughput/speculate placement. The
// tree-combine branching stays capacity-bounded (MinSmallCap), since a
// tree message must fit the receiving machine regardless of its placement
// weight.
//
// If gatherLarge is true an extra round ships every (key, value) to the
// large machine and atLarge holds them all; the caller is responsible for
// the total fitting the large machine's capacity (≤ Õ(n) keys, as in every
// use in the paper).
//
// combine must be associative and commutative. It receives ownership of both
// arguments: for pointer-typed V it may mutate and return `a` (no value it
// has combined away is ever read again), which lets sketch-like values merge
// without cloning. vwords is the value size in words.
func AggregateByKey[V any](
	c *mpc.Cluster,
	items [][]KV[V],
	vwords int,
	combine func(a, b V) V,
	gatherLarge bool,
) (roots []map[int64]V, atLarge map[int64]V, err error) {
	defer c.Span("aggregate").End()
	k := c.K()
	if len(items) < k {
		ni := make([][]KV[V], k)
		copy(ni, items)
		items = ni
	}

	// Local combine. The fast path sorts a slab-backed copy by key and folds
	// adjacent runs in place: the stable sort keeps each key's occurrences in
	// input order, so the left-fold per key — and therefore the combined
	// values — are exactly those of the reference map path (which also folds
	// in input order and then sorts); pinned by
	// TestAggregateCombineKernelMatchesMap.
	partials := make([][]KV[V], k)
	if err := c.ForSmall(func(i int) error {
		if referenceKernels {
			m := make(map[int64]V, len(items[i]))
			for _, kv := range items[i] {
				if cur, ok := m[kv.K]; ok {
					m[kv.K] = combine(cur, kv.V)
				} else {
					m[kv.K] = kv.V
				}
			}
			out := make([]KV[V], 0, len(m))
			for key, v := range m {
				out = append(out, KV[V]{K: key, V: v})
			}
			SortKVsByKey(out)
			partials[i] = out
			return nil
		}
		buf := arena.New[KV[V]](len(items[i])).AllocUninit(len(items[i]))
		copy(buf, items[i])
		sortByKey(buf, func(kv KV[V]) SortKey { return SortKey{A: kv.K} })
		out := buf[:0]
		for j := 0; j < len(buf); j++ {
			if len(out) > 0 && out[len(out)-1].K == buf[j].K {
				out[len(out)-1].V = combine(out[len(out)-1].V, buf[j].V)
			} else {
				out = append(out, buf[j])
			}
		}
		partials[i] = out
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Global sort by key.
	sorted, err := Sort(c, partials, vwords+1, func(kv KV[V]) SortKey { return SortKey{A: kv.K} })
	if err != nil {
		return nil, nil, err
	}

	// Local combine of same-key runs that were routed to the same machine.
	if err := c.ForSmall(func(i int) error {
		in := sorted[i]
		out := in[:0]
		for j := 0; j < len(in); j++ {
			if len(out) > 0 && out[len(out)-1].K == in[j].K {
				out[len(out)-1].V = combine(out[len(out)-1].V, in[j].V)
			} else {
				out = append(out, in[j])
			}
		}
		sorted[i] = out
		return nil
	}); err != nil {
		return nil, nil, err
	}
	// The combined runs are the machines' recoverable state through the
	// tree-combine rounds below (Sort registered the pre-combine buckets;
	// re-register so checkpoints see the shrunken volume).
	RegisterState(c, sorted, vwords+1)

	// Boundary reports → spanning runs.
	spans, err := reportBounds(c, func(i int) boundsReport {
		if len(sorted[i]) == 0 {
			return boundsReport{}
		}
		return boundsReport{First: sorted[i][0].K, Last: sorted[i][len(sorted[i])-1].K, NonEmpty: true}
	})
	if err != nil {
		return nil, nil, err
	}
	instr, err := sendSpanInstructions(c, spans)
	if err != nil {
		return nil, nil, err
	}

	// Tree-combine each spanning run upward, level by level. The branching
	// factor is capacity-bounded (the concrete form of the paper's
	// branching-n^γ trees) and the depth loop is over the public bound
	// treeDepth(K, b), so the round count depends only on public parameters.
	b := branching(c, vwords+1)
	depth := treeDepth(k, b)
	// Per machine: value for each spanning key it participates in (local
	// computation, parallel over the small-machine axis).
	local := make([]map[int64]V, k)
	if err := c.ForSmall(func(i int) error {
		local[i] = make(map[int64]V, len(instr[i]))
		for _, kv := range sorted[i] {
			for _, si := range instr[i] {
				if si.Key == kv.K {
					local[i][kv.K] = kv.V
				}
			}
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	type upMsg struct {
		Key int64
		Val V
	}
	for d := depth; d >= 1; d-- {
		outs := make([][]mpc.Msg, k)
		if err := c.ForSmall(func(i int) error {
			for _, si := range instr[i] {
				p := i - si.A
				size := si.B - si.A + 1
				if p <= 0 || p >= size || posDepth(p, b) != d {
					continue
				}
				v, ok := local[i][si.Key]
				if !ok {
					continue // empty bridge machine: nothing to contribute
				}
				parent := si.A + posParent(p, b)
				outs[i] = append(outs[i], mpc.Msg{To: parent, Words: vwords + 1, Data: upMsg{Key: si.Key, Val: v}})
				delete(local[i], si.Key)
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
		ins, _, err := c.Exchange(outs, nil)
		if err != nil {
			return nil, nil, err
		}
		if err := c.ForSmall(func(i int) error {
			for _, m := range ins[i] {
				um, ok := m.Data.(upMsg)
				if !ok {
					return fmt.Errorf("prims: unexpected aggregate payload %T", m.Data)
				}
				if cur, ok := local[i][um.Key]; ok {
					local[i][um.Key] = combine(cur, um.Val)
				} else {
					local[i][um.Key] = um.Val
				}
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}

	// Assemble per-machine final maps: all non-spanning keys plus spanning
	// keys rooted here.
	roots = make([]map[int64]V, k)
	if err := c.ForSmall(func(i int) error {
		spanKey := make(map[int64]bool, len(instr[i]))
		for _, si := range instr[i] {
			spanKey[si.Key] = true
		}
		roots[i] = make(map[int64]V, len(sorted[i]))
		for _, kv := range sorted[i] {
			if !spanKey[kv.K] {
				roots[i][kv.K] = kv.V
			}
		}
		for _, si := range instr[i] {
			if si.A != i {
				continue
			}
			if v, ok := local[i][si.Key]; ok {
				roots[i][si.Key] = v
			}
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	if !gatherLarge {
		return roots, nil, nil
	}
	flat := make([][]KV[V], k)
	if err := c.ForSmall(func(i int) error {
		flat[i] = make([]KV[V], 0, len(roots[i]))
		for key, v := range roots[i] {
			flat[i] = append(flat[i], KV[V]{K: key, V: v})
		}
		SortKVsByKey(flat[i])
		return nil
	}); err != nil {
		return nil, nil, err
	}
	all, err := GatherToLarge(c, flat, vwords+1)
	if err != nil {
		return nil, nil, err
	}
	atLarge = make(map[int64]V, len(all))
	for _, kv := range all {
		atLarge[kv.K] = kv.V
	}
	return roots, atLarge, nil
}
