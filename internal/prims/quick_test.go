package prims

import (
	"testing"
	"testing/quick"

	"hetmpc/internal/mpc"
	"hetmpc/internal/xrand"
)

// TestSortQuickAcrossGammas property-tests Sort over random data shapes and
// machine-memory exponents: the result must always be the same multiset,
// globally sorted, within O(1) rounds.
func TestSortQuickAcrossGammas(t *testing.T) {
	prop := func(seed uint64, gammaPick uint8, skew uint8) bool {
		gammas := []float64{0.3, 0.5, 0.7}
		gamma := gammas[int(gammaPick)%len(gammas)]
		c, err := mpc.New(mpc.Config{N: 256, M: 1024, Gamma: gamma, Seed: seed})
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		data := make([][]int64, c.K())
		total := 0
		var sum int64
		for i := range data {
			n := rng.IntN(16)
			if skew%3 == 0 && i != 0 {
				n = 0 // everything on machine 0
			}
			for j := 0; j < n; j++ {
				v := rng.Int64N(1 << 40)
				data[i] = append(data[i], v)
				total++
				sum += v
			}
		}
		before := c.Rounds()
		sorted, err := Sort(c, data, 1, func(v int64) SortKey { return SortKey{A: v} })
		if err != nil {
			return false
		}
		if c.Rounds()-before > 15 {
			return false
		}
		if CountItems(sorted) != total {
			return false
		}
		var gotSum int64
		for _, part := range sorted {
			for _, v := range part {
				gotSum += v
			}
		}
		if gotSum != sum {
			return false
		}
		return IsGloballySorted(sorted, func(v int64) SortKey { return SortKey{A: v} })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAggregateQuick property-tests AggregateByKey: the per-key sums must
// match a sequential reference for random key distributions, including hot
// keys spanning all machines.
func TestAggregateQuick(t *testing.T) {
	prop := func(seed uint64, hot bool) bool {
		c, err := mpc.New(mpc.Config{N: 128, M: 512, Seed: seed, NoLarge: seed%2 == 0})
		if err != nil {
			return false
		}
		rng := xrand.New(seed + 5)
		items := make([][]KV[int64], c.K())
		want := map[int64]int64{}
		keyRange := int64(40)
		if hot {
			keyRange = 3
		}
		for i := range items {
			for j := 0; j < 12; j++ {
				k := rng.Int64N(keyRange)
				v := rng.Int64N(1000)
				items[i] = append(items[i], KV[int64]{K: k, V: v})
				want[k] += v
			}
		}
		roots, _, err := AggregateByKey(c, items, 1, func(a, b int64) int64 { return a + b }, false)
		if err != nil {
			return false
		}
		got := map[int64]int64{}
		for i := range roots {
			for k, v := range roots[i] {
				if _, dup := got[k]; dup {
					return false
				}
				got[k] = v
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDisseminateQuick property-tests SegmentedBroadcast: every requested
// key with a value is answered with exactly that value; keys without values
// stay unanswered.
func TestDisseminateQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		c, err := mpc.New(mpc.Config{N: 128, M: 512, Seed: seed})
		if err != nil {
			return false
		}
		rng := xrand.New(seed + 9)
		values := map[int64]int64{}
		for k := int64(0); k < 30; k++ {
			if rng.IntN(2) == 0 {
				values[k] = rng.Int64N(1 << 30)
			}
		}
		needs := make([][]int64, c.K())
		for i := range needs {
			seen := map[int64]bool{}
			for j := 0; j < 6; j++ {
				k := rng.Int64N(40)
				if !seen[k] {
					seen[k] = true
					needs[i] = append(needs[i], k)
				}
			}
		}
		got, err := DisseminateFromLarge(c, needs, values, 1)
		if err != nil {
			return false
		}
		for i := range needs {
			for _, k := range needs[i] {
				v, ok := got[i][k]
				wv, wok := values[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			// No phantom keys.
			for k := range got[i] {
				found := false
				for _, need := range needs[i] {
					if need == k {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
