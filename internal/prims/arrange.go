package prims

import (
	"fmt"
	"slices"

	"hetmpc/internal/mpc"
)

// RunPart is one machine's share of a key's sorted run.
type RunPart struct {
	Machine int
	Count   int
}

// Arranged is the product of Claim 4: items sorted so each key's run is
// contiguous across machines, with the large machine knowing every run's
// (machine, count) decomposition — i.e. M_first(v), the out-degree of v, and
// exactly how many of v's items each machine stores (the k(v,M) table used
// by the MST collection step).
type Arranged[T any] struct {
	Data [][]T               // per-machine sorted items
	Keys []int64             // distinct keys in global order (large machine's view)
	Runs map[int64][]RunPart // large machine's view: ordered run decomposition

	key       func(T) int64
	itemWords int
	local     []map[int64]localRun // per machine: key → (start, count)
}

type localRun struct {
	Start, Count int
}

// Arrange sorts the items by sortKey — whose leading component .A is the
// grouping key — and builds the run index on the large machine. Requires a
// large machine. Rounds: one Sort plus one report round.
func Arrange[T any](
	c *mpc.Cluster,
	data [][]T,
	sortKey func(T) SortKey,
	itemWords int,
) (*Arranged[T], error) {
	if !c.HasLarge() {
		return nil, fmt.Errorf("prims: Arrange: %w", mpc.ErrNeedsLarge)
	}
	defer c.Span("arrange").End()
	key := func(it T) int64 { return sortKey(it).A }
	k := c.K()
	sorted, err := Sort(c, data, itemWords, sortKey)
	if err != nil {
		return nil, err
	}
	// Local run index.
	local := make([]map[int64]localRun, k)
	type runRec struct {
		Key   int64
		Count int
	}
	reports := make([][]runRec, k)
	if err := c.ForSmall(func(i int) error {
		local[i] = make(map[int64]localRun)
		for j := 0; j < len(sorted[i]); {
			kk := key(sorted[i][j])
			start := j
			for j < len(sorted[i]) && key(sorted[i][j]) == kk {
				j++
			}
			local[i][kk] = localRun{Start: start, Count: j - start}
			reports[i] = append(reports[i], runRec{Key: kk, Count: j - start})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// One round: every machine reports its runs. By contiguity the total is
	// at most (#distinct keys) + K - 1 records.
	outs := make([][]mpc.Msg, k)
	for i := 0; i < k; i++ {
		if len(reports[i]) == 0 {
			continue
		}
		outs[i] = []mpc.Msg{{To: mpc.Large, Words: 2 * len(reports[i]), Data: reports[i]}}
	}
	_, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return nil, err
	}
	runs := make(map[int64][]RunPart)
	var keys []int64
	for _, m := range inLarge { // delivery is in machine order
		recs, ok := m.Data.([]runRec)
		if !ok {
			return nil, fmt.Errorf("prims: unexpected run report %T", m.Data)
		}
		for _, r := range recs {
			if len(runs[r.Key]) == 0 {
				keys = append(keys, r.Key)
			}
			runs[r.Key] = append(runs[r.Key], RunPart{Machine: m.From, Count: r.Count})
		}
	}
	slices.Sort(keys)
	return &Arranged[T]{
		Data:      sorted,
		Keys:      keys,
		Runs:      runs,
		key:       key,
		itemWords: itemWords,
		local:     local,
	}, nil
}

// Degree returns the total run length of key (the out-degree in the directed
// edge arrangements), from the large machine's view.
func (a *Arranged[T]) Degree(key int64) int {
	d := 0
	for _, p := range a.Runs[key] {
		d += p.Count
	}
	return d
}

// CollectBudget implements the collection pattern of §3 and §5: for each
// key, the large machine requests the first budget(key) items of the key's
// global run (they are the lightest, since runs are sorted) and returns them
// per key, in global order. Two rounds: queries out, items back. The caller
// is responsible for Σ budgets fitting the large machine (the paper's
// O(n log n) bound).
func (a *Arranged[T]) CollectBudget(c *mpc.Cluster, budget func(key int64) int) (map[int64][]T, error) {
	k := c.K()
	type query struct {
		Key  int64
		Take int
	}
	queries := make([][]query, k)
	for _, kk := range a.Keys {
		want := budget(kk)
		for _, part := range a.Runs[kk] {
			if want <= 0 {
				break
			}
			take := part.Count
			if take > want {
				take = want
			}
			queries[part.Machine] = append(queries[part.Machine], query{Key: kk, Take: take})
			want -= take
		}
	}
	qmsgs := make([]mpc.Msg, 0, k)
	for i := 0; i < k; i++ {
		if len(queries[i]) == 0 {
			continue
		}
		qmsgs = append(qmsgs, mpc.Msg{To: i, Words: 2 * len(queries[i]), Data: queries[i]})
	}
	ins, _, err := c.Exchange(nil, qmsgs)
	if err != nil {
		return nil, err
	}
	// Machines answer with the first Take items of each queried run.
	type reply struct {
		Key   int64
		Items []T
	}
	outs := make([][]mpc.Msg, k)
	if err := c.ForSmall(func(i int) error {
		for _, m := range ins[i] {
			qs, ok := m.Data.([]query)
			if !ok {
				return fmt.Errorf("prims: unexpected query payload %T", m.Data)
			}
			var replies []reply
			words := 0
			for _, q := range qs {
				run, ok := a.local[i][q.Key]
				if !ok {
					continue
				}
				take := q.Take
				if take > run.Count {
					take = run.Count
				}
				items := a.Data[i][run.Start : run.Start+take]
				replies = append(replies, reply{Key: q.Key, Items: items})
				words += 1 + take*a.itemWords
			}
			if len(replies) > 0 {
				outs[i] = append(outs[i], mpc.Msg{To: mpc.Large, Words: words, Data: replies})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[int64][]T, len(a.Keys))
	for _, m := range inLarge { // machine order == run order per key
		replies, ok := m.Data.([]reply)
		if !ok {
			return nil, fmt.Errorf("prims: unexpected collect payload %T", m.Data)
		}
		for _, r := range replies {
			out[r.Key] = append(out[r.Key], r.Items...)
		}
	}
	return out, nil
}
