package prims

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"hetmpc/internal/fault"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

func TestWeightedAssignZeroCapacity(t *testing.T) {
	for _, shares := range [][]float64{
		{0, 0, 0},
		{math.NaN(), 1, 1},
		{}, // no machines at all
	} {
		if _, err := weightedAssign(10, shares); !errors.Is(err, ErrZeroCapacity) {
			t.Fatalf("shares %v: want ErrZeroCapacity, got %v", shares, err)
		}
	}
	owner, err := weightedAssign(6, []float64{1, 1, 1})
	if err != nil || len(owner) != 6 {
		t.Fatalf("healthy shares failed: %v %v", owner, err)
	}
}

// TestSortCheckpointsLiveState: under an active fault plan the
// Distribute→Sort pipeline registers its buckets, so checkpoint barriers
// replicate real word volumes — and the sorted output stays bit-identical
// to the fault-free run (recovery is lossless).
func TestSortCheckpointsLiveState(t *testing.T) {
	g := graph.GNMWeighted(128, 1024, 3)
	run := func(plan *fault.Plan) ([][]graph.Edge, mpc.Stats) {
		cfg := mpc.Config{N: g.N, M: g.M(), Seed: 1, Faults: plan}
		c, err := mpc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := DistributeEdges(c, g)
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := Sort(c, data, EdgeWords, edgeKey)
		if err != nil {
			t.Fatal(err)
		}
		return sorted, c.Stats()
	}
	plain, plainStats := run(nil)
	faulty, faultyStats := run(&fault.Plan{
		Interval: 1,
		Crashes:  []fault.Crash{{Round: 2, Machine: 0, RestartAfter: 1}},
	})
	if !reflect.DeepEqual(plain, faulty) {
		t.Fatal("fault injection changed the sorted output")
	}
	if faultyStats.Checkpoints == 0 || faultyStats.ReplicationWords == 0 {
		t.Fatalf("no state replicated: %+v", faultyStats)
	}
	if faultyStats.Crashes != 1 || faultyStats.RecoveryRounds == 0 {
		t.Fatalf("crash not recovered: %+v", faultyStats)
	}
	// Every edge lives on some machine the whole time, so each checkpoint
	// barrier replicates at least the full edge volume once.
	if want := int64(g.M() * EdgeWords); faultyStats.ReplicationWords < want {
		t.Fatalf("replication words %d below one full state pass %d",
			faultyStats.ReplicationWords, want)
	}
	if plainStats.Rounds != faultyStats.Rounds {
		t.Fatalf("fault plan changed the round structure: %d vs %d",
			plainStats.Rounds, faultyStats.Rounds)
	}
	if faultyStats.Makespan <= plainStats.Makespan {
		t.Fatal("recovery overhead missing from the makespan")
	}
}
