//go:build race

package prims

// raceEnabled reports that the race detector is active: allocation-count
// pins are skipped there, since the detector's shadow allocations and pool
// evictions make the counts nondeterministic.
const raceEnabled = true
