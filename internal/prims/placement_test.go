package prims

import (
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/sched"
)

func placementCluster(t *testing.T, profile func(k int) *mpc.Profile, pol sched.Policy) *mpc.Cluster {
	t.Helper()
	cfg := mpc.Config{N: 256, M: 4096, Seed: 3, Placement: pol}
	if profile != nil {
		cfg.Profile = profile(cfg.DeriveK())
	}
	c, err := mpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPlacementPolicies is the table-driven policy test over the placement
// primitives: on a uniform profile every policy is bit-identical to cap
// (same buckets, same stats); under skew the buckets follow the policy's
// shares while the sorted output stays the same sequence.
func TestPlacementPolicies(t *testing.T) {
	g := graph.GNMWeighted(256, 4096, 5)
	straggler := func(k int) *mpc.Profile { return mpc.StragglerProfile(k, 2, 8) }

	type run struct {
		placed []int // items per machine after DistributeEdges
		sorted []graph.Edge
		stats  mpc.Stats
	}
	do := func(profile func(k int) *mpc.Profile, pol sched.Policy) run {
		c := placementCluster(t, profile, pol)
		data, err := DistributeEdges(c, g)
		if err != nil {
			t.Fatal(err)
		}
		placed := make([]int, c.K())
		for i := range data {
			placed[i] = len(data[i])
		}
		sorted, err := Sort(c, data, EdgeWords, edgeKey)
		if err != nil {
			t.Fatal(err)
		}
		if !IsGloballySorted(sorted, edgeKey) {
			t.Fatal("sort postcondition violated")
		}
		return run{placed: placed, sorted: Flatten(sorted), stats: c.Stats()}
	}
	same := func(a, b []graph.Edge) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// Uniform profile: cap, throughput and speculate place identically
	// (all shares exactly 1) and produce bit-identical stats — speculation
	// never launches a copy between equal machines.
	capU := do(nil, nil)
	for _, pol := range []sched.Policy{sched.Throughput{}, sched.Speculate{R: 2}} {
		r := do(nil, pol)
		if r.stats != capU.stats {
			t.Fatalf("%s on uniform profile diverged from cap:\n cap: %+v\n got: %+v", pol.Name(), capU.stats, r.stats)
		}
		if !same(r.sorted, capU.sorted) {
			t.Fatalf("%s on uniform profile changed the sorted output", pol.Name())
		}
	}

	// Straggler profile: throughput hands the slow tail a smaller bucket
	// than cap does, the output sequence is unchanged, and the makespan
	// improves strictly.
	capS := do(straggler, nil)
	thrS := do(straggler, sched.Throughput{})
	k := len(capS.placed)
	if thrS.placed[k-1] >= capS.placed[k-1] {
		t.Fatalf("throughput did not shrink the straggler's bucket: cap %d, throughput %d",
			capS.placed[k-1], thrS.placed[k-1])
	}
	if !same(thrS.sorted, capS.sorted) {
		t.Fatal("throughput changed the sorted output")
	}
	if thrS.stats.Rounds != capS.stats.Rounds {
		t.Fatalf("throughput changed the round structure: %d vs %d", thrS.stats.Rounds, capS.stats.Rounds)
	}
	if thrS.stats.Makespan >= capS.stats.Makespan {
		t.Fatalf("throughput makespan %v not below cap %v", thrS.stats.Makespan, capS.stats.Makespan)
	}

	// Speculation: same placement as throughput, strictly lower makespan
	// than cap, honest extra words, identical output and round structure.
	specS := do(straggler, sched.Speculate{R: 2})
	if !same(specS.sorted, capS.sorted) {
		t.Fatal("speculate changed the sorted output")
	}
	if specS.stats.Rounds != capS.stats.Rounds {
		t.Fatalf("speculate changed the round structure: %d vs %d", specS.stats.Rounds, capS.stats.Rounds)
	}
	if specS.stats.Makespan >= capS.stats.Makespan {
		t.Fatalf("speculate makespan %v not strictly below cap %v", specS.stats.Makespan, capS.stats.Makespan)
	}
	if specS.stats.Makespan > thrS.stats.Makespan {
		t.Fatalf("speculate makespan %v above plain throughput %v", specS.stats.Makespan, thrS.stats.Makespan)
	}
	if specS.stats.SpeculationWords <= 0 {
		t.Fatal("speculate launched no copies on a straggler profile")
	}
	if capS.stats.SpeculationWords != 0 || thrS.stats.SpeculationWords != 0 {
		t.Fatal("non-speculative policies charged speculation words")
	}
}

// TestPlacementFollowsShares: the DistributeEdges allotment tracks the
// policy's weights within one item (largest-remainder apportionment).
func TestPlacementFollowsShares(t *testing.T) {
	g := graph.GNMWeighted(256, 4096, 5)
	c := placementCluster(t, func(k int) *mpc.Profile { return mpc.StragglerProfile(k, 2, 8) }, sched.Throughput{})
	data, err := DistributeEdges(c, g)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < c.K(); i++ {
		total += c.PlaceShare(i)
	}
	for i := 0; i < c.K(); i++ {
		want := float64(len(g.Edges)) * c.PlaceShare(i) / total
		got := float64(len(data[i]))
		if got < want-1 || got > want+1 {
			t.Fatalf("machine %d holds %v items, want %v ± 1 (share %v)", i, got, want, c.PlaceShare(i))
		}
	}
}
