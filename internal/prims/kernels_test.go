package prims

import (
	"math/rand/v2"
	"reflect"
	"slices"
	"sort"
	"testing"

	"hetmpc/internal/mpc"
	"hetmpc/internal/xrand"
)

type kitem struct {
	key  SortKey
	tag  int // distinguishes equal-key items so stability is observable
	pad  [2]int64
	pad2 int64
}

func fuzzedItems(rng *rand.Rand, n, keyRange int) []kitem {
	out := make([]kitem, n)
	for i := range out {
		out[i] = kitem{
			key: SortKey{
				A: int64(rng.Uint64() % uint64(keyRange)),
				B: int64(rng.Uint64() % 4),
				C: int64(rng.Uint64() % 4),
			},
			tag: i,
		}
	}
	return out
}

// TestSortKernelMatchesStable pins the local-sort kernel against the
// reference stable sort: the (key, original index) tiebreak must make
// sortByKey's unstable pdqsort produce exactly the stable order, including
// among equal keys (observable through the tags).
func TestSortKernelMatchesStable(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, keyRange := range []int{1, 3, 1 << 30} {
			items := fuzzedItems(rng, n, keyRange)
			want := slices.Clone(items)
			slices.SortStableFunc(want, func(a, b kitem) int { return a.key.Compare(b.key) })
			got := slices.Clone(items)
			sortByKey(got, func(it kitem) SortKey { return it.key })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d keyRange=%d: sortByKey diverges from stable sort", n, keyRange)
			}
		}
	}
}

// TestScatterKernelMatchesSearch pins the bucket-routing kernel against the
// reference sort.Search + append loop on locally-sorted input (Sort's
// precondition for the fast path), including the empty-bucket convention
// (untouched buckets are nil in both) and duplicate splitters (forced
// empty middle buckets).
func TestScatterKernelMatchesSearch(t *testing.T) {
	rng := xrand.New(11)
	key := func(it kitem) SortKey { return it.key }
	for _, n := range []int{0, 1, 5, 257} {
		for _, nb := range []int{1, 2, 8, 33} {
			sp := make([]SortKey, nb-1)
			for i := range sp {
				sp[i] = SortKey{A: int64(rng.Uint64() % 8), B: int64(rng.Uint64() % 2)}
			}
			slices.SortFunc(sp, func(a, b SortKey) int { return a.Compare(b) })
			items := fuzzedItems(rng, n, 8)
			slices.SortStableFunc(items, func(a, b kitem) int { return a.key.Compare(b.key) })

			want := make([][]kitem, nb)
			for _, it := range items {
				kk := key(it)
				j := sort.Search(len(sp), func(x int) bool { return kk.Less(sp[x]) })
				want[j] = append(want[j], it)
			}
			got := scatterSortedByKey(items, sp, nb, key)
			if len(got) != len(want) {
				t.Fatalf("n=%d nb=%d: %d buckets, want %d", n, nb, len(got), len(want))
			}
			for b := range want {
				if (got[b] == nil) != (want[b] == nil) || !reflect.DeepEqual(got[b], want[b]) {
					t.Fatalf("n=%d nb=%d bucket %d: scatterSortedByKey diverges from sort.Search routing", n, nb, b)
				}
			}
		}
	}
}

// TestScatterConstantAllocs pins the scatter kernel's allocation count: one
// allocation (the bucket headers) regardless of item count — the buckets
// are subslices of the sorted input, versus the reference path's per-bucket
// append doublings.
func TestScatterConstantAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	rng := xrand.New(13)
	key := func(it kitem) SortKey { return it.key }
	sp := make([]SortKey, 31)
	for i := range sp {
		sp[i] = SortKey{A: int64(i * 8)}
	}
	alloc := func(n int) float64 {
		items := fuzzedItems(rng, n, 256)
		slices.SortStableFunc(items, func(a, b kitem) int { return a.key.Compare(b.key) })
		return testing.AllocsPerRun(20, func() { scatterSortedByKey(items, sp, 32, key) })
	}
	small, large := alloc(64), alloc(16384)
	if small != large {
		t.Errorf("scatter allocations scale with input: %v at n=64, %v at n=16384", small, large)
	}
	if large > 1 {
		t.Errorf("scatter performs %v allocations per call, want 1 (bucket headers)", large)
	}
}

// TestScatterViewsAreCapClamped pins the no-clobber guarantee of the
// subslice buckets: appending past a bucket's length copies out instead of
// overwriting the neighboring run of the shared backing array.
func TestScatterViewsAreCapClamped(t *testing.T) {
	items := []kitem{{key: SortKey{A: 0}}, {key: SortKey{A: 10}, tag: 42}}
	sp := []SortKey{{A: 5}}
	got := scatterSortedByKey(items, sp, 2, func(it kitem) SortKey { return it.key })
	_ = append(got[0], kitem{tag: -1}) // must not clobber got[1][0]
	if got[1][0].tag != 42 {
		t.Fatalf("append past bucket 0 clobbered bucket 1: tag = %d", got[1][0].tag)
	}
}

// TestSortLocalSteadyStateAllocs pins the pooled keyed scratch: once the
// pool is warm, sorting allocates nothing beyond the sort itself.
func TestSortLocalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	rng := xrand.New(17)
	items := fuzzedItems(rng, 4096, 1<<20)
	scratch := slices.Clone(items)
	key := func(it kitem) SortKey { return it.key }
	sortByKey(scratch, key) // warm the pool
	if got := testing.AllocsPerRun(20, func() {
		copy(scratch, items)
		sortByKey(scratch, key)
	}); got != 0 {
		t.Errorf("steady-state sortByKey allocates %v per call, want 0", got)
	}
}

// TestSortKernelPackedPaths pins the packed radix variants against the
// stable reference across key-entropy regimes: ≤8 varying bytes (16-byte
// packed records), 9..16 (24-byte), and >16 (unpacked fallback), plus
// negative key words (bias flip on every word).
func TestSortKernelPackedPaths(t *testing.T) {
	rng := xrand.New(53)
	gens := map[string]func() SortKey{
		"packed16": func() SortKey {
			return SortKey{A: int64(rng.Uint64() % (1 << 24)), B: int64(rng.Uint64() % 4), C: int64(rng.Uint64() % 256)}
		},
		"packed24": func() SortKey {
			return SortKey{A: int64(rng.Uint64()), B: int64(rng.Uint64() % 65536), C: int64(rng.Uint64() % 4)}
		},
		"unpacked": func() SortKey {
			return SortKey{A: int64(rng.Uint64()), B: int64(rng.Uint64()), C: int64(rng.Uint64())}
		},
		"negative": func() SortKey {
			return SortKey{A: int64(rng.Uint64()%512) - 256, B: int64(rng.Uint64()%16) - 8, C: int64(rng.Uint64())}
		},
	}
	for name, gen := range gens {
		for _, n := range []int{96, 500, 4096} {
			items := make([]kitem, n)
			for i := range items {
				items[i] = kitem{key: gen(), tag: i}
			}
			want := slices.Clone(items)
			slices.SortStableFunc(want, func(a, b kitem) int { return a.key.Compare(b.key) })
			got := slices.Clone(items)
			sortByKey(got, func(it kitem) SortKey { return it.key })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s n=%d: sortByKey diverges from stable sort", name, n)
			}
		}
	}
}

// TestSortIntsMatchesSlices pins the int64 radix kernel against slices.Sort
// across sizes straddling the radix cutoff, negative values (bias flip),
// duplicates, and all-equal inputs.
func TestSortIntsMatchesSlices(t *testing.T) {
	rng := xrand.New(41)
	for _, n := range []int{0, 1, 2, 95, 96, 97, 1000, 4096} {
		for _, gen := range []func() int64{
			func() int64 { return int64(rng.Uint64()) },              // full range incl. negatives
			func() int64 { return int64(rng.Uint64()%64) - 32 },      // small signed range, duplicates
			func() int64 { return 7 },                                // all equal
			func() int64 { return int64(rng.Uint64() & 0xffff00ff) }, // sparse varying bytes
		} {
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = gen()
			}
			want := slices.Clone(xs)
			slices.Sort(want)
			SortInts(xs)
			if !slices.Equal(xs, want) {
				t.Fatalf("n=%d: SortInts diverges from slices.Sort", n)
			}
		}
	}
}

// TestSortIntsSteadyStateAllocs pins the pooled SortInts scratch: warm-pool
// calls allocate nothing.
func TestSortIntsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	rng := xrand.New(43)
	items := make([]int64, 8192)
	for i := range items {
		items[i] = int64(rng.Uint64())
	}
	scratch := slices.Clone(items)
	SortInts(scratch) // warm the pool
	if got := testing.AllocsPerRun(20, func() {
		copy(scratch, items)
		SortInts(scratch)
	}); got != 0 {
		t.Errorf("steady-state SortInts allocates %v per call, want 0", got)
	}
}

// TestAggregateCombineKernelMatchesMap pins the local-combine kernel:
// AggregateByKey under fast kernels must produce the same roots as the
// reference map-based combine, fold order included (the combine below is
// deliberately non-commutative in its fold history so any reordering of a
// key's occurrences shows up in the result).
func TestAggregateCombineKernelMatchesMap(t *testing.T) {
	run := func(ref bool) []map[int64][]int64 {
		SetReferenceKernels(ref)
		defer SetReferenceKernels(false)
		c, err := mpc.New(mpc.Config{N: 256, M: 1024, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		k := c.K()
		rng := xrand.New(23)
		items := make([][]KV[[]int64], k)
		for i := 0; i < k; i++ {
			for j := 0; j < 40; j++ {
				key := int64(rng.Uint64() % 50)
				items[i] = append(items[i], KV[[]int64]{K: key, V: []int64{int64(i*1000 + j)}})
			}
		}
		combine := func(a, b []int64) []int64 { return append(a, b...) }
		roots, _, err := AggregateByKey(c, items, 1, combine, false)
		if err != nil {
			t.Fatal(err)
		}
		return roots
	}
	fast := run(false)
	refr := run(true)
	if !reflect.DeepEqual(fast, refr) {
		t.Fatal("AggregateByKey roots diverge between fast and reference kernels")
	}
}

// TestSortKernelEndToEnd pins the full Sort primitive (local sort, splitter
// scatter, final sort) fast-vs-reference on identical clusters: buckets,
// contents and order must match exactly.
func TestSortKernelEndToEnd(t *testing.T) {
	run := func(ref bool) [][]kitem {
		SetReferenceKernels(ref)
		defer SetReferenceKernels(false)
		c, err := mpc.New(mpc.Config{N: 256, M: 4096, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		k := c.K()
		rng := xrand.New(31)
		data := make([][]kitem, k)
		for i := 0; i < k; i++ {
			data[i] = fuzzedItems(rng, 64, 1<<16)
		}
		out, err := Sort(c, data, 7, func(it kitem) SortKey { return it.key })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	fast := run(false)
	refr := run(true)
	if !reflect.DeepEqual(fast, refr) {
		t.Fatal("Sort output diverges between fast and reference kernels")
	}
	if !IsGloballySorted(fast, func(it kitem) SortKey { return it.key }) {
		t.Fatal("Sort output is not globally sorted")
	}
}
