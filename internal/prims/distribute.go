package prims

import (
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

// EdgeWords is the accounted size of one undirected edge (two endpoints and
// a weight).
const EdgeWords = 3

// DistributeEdges places the input graph's edges on the small machines
// round-robin. This models the paper's "edges initially stored on the small
// machines arbitrarily" and costs no rounds (it is the input placement).
func DistributeEdges(c *mpc.Cluster, g *graph.Graph) [][]graph.Edge {
	k := c.K()
	per := (len(g.Edges) + k - 1) / k
	out := make([][]graph.Edge, k)
	for i := range out {
		out[i] = make([]graph.Edge, 0, per)
	}
	for j, e := range g.Edges {
		out[j%k] = append(out[j%k], e)
	}
	return out
}

// CountItems returns the total number of items across machines.
func CountItems[T any](data [][]T) int {
	n := 0
	for i := range data {
		n += len(data[i])
	}
	return n
}

// Flatten concatenates all machines' items (a test/validation helper; real
// algorithms never do this outside the model).
func Flatten[T any](data [][]T) []T {
	out := make([]T, 0, CountItems(data))
	for i := range data {
		out = append(out, data[i]...)
	}
	return out
}
