package prims

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"hetmpc/internal/arena"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

// EdgeWords is the accounted size of one undirected edge (two endpoints and
// a weight).
const EdgeWords = 3

// ErrZeroCapacity is returned by placement primitives when the cluster
// profile's capacity shares sum to zero (or are not finite), leaving no
// machine able to hold anything.
var ErrZeroCapacity = errors.New("prims: zero total capacity")

// DistributeEdges places the input graph's edges on the small machines in
// proportion to their placement weights under the cluster's placement
// policy (DESIGN.md §8): capacity shares under the default cap policy
// (Frisk's balancing rule), min(capacity, effective speed) under
// throughput/speculate. This models the paper's "edges initially stored on
// the small machines arbitrarily" and costs no rounds (it is the input
// placement). With uniform weights it is an exact round-robin (machine j%k
// gets edge j); under skew the allotment is a smooth weighted round-robin —
// machine i holds a PlaceShare(i)/ΣPlaceShare fraction — which reduces to
// plain round-robin when all weights are equal. A policy whose weights sum
// to zero yields ErrZeroCapacity. The placed buckets are registered as the
// machines' recoverable state (RegisterState) when fault injection is
// active.
func DistributeEdges(c *mpc.Cluster, g *graph.Graph) ([][]graph.Edge, error) {
	defer c.Span("distribute").End()
	k := c.K()
	n := len(g.Edges)
	out := make([][]graph.Edge, k)
	if c.UniformPlacement() {
		// Round-robin counts are exact (machine i gets one extra edge while
		// i < n%k), so the shards carve from a single slab with no append
		// doublings. Machines past the edge count keep the historical
		// non-nil empty shard.
		ar := arena.New[graph.Edge](n)
		for i := range out {
			cnt := n / k
			if i < n%k {
				cnt++
			}
			if cnt == 0 {
				out[i] = emptyEdges
			} else {
				out[i] = ar.AllocUninit(cnt)[:0]
			}
		}
		for j, e := range g.Edges {
			out[j%k] = append(out[j%k], e) // always within the carved cap
		}
		RegisterState(c, out, EdgeWords)
		return out, nil
	}
	shares := make([]float64, k)
	for i := range shares {
		shares[i] = c.PlaceShare(i)
	}
	owner, err := weightedAssign(n, shares)
	if err != nil {
		return nil, err
	}
	counts := make([]int, k)
	for _, o := range owner {
		counts[o]++
	}
	ar := arena.New[graph.Edge](n)
	for i := range out {
		if counts[i] > 0 { // zero-count shards stay nil, as before
			out[i] = ar.AllocUninit(counts[i])[:0]
		}
	}
	for i, o := range owner {
		out[o] = append(out[o], g.Edges[i])
	}
	RegisterState(c, out, EdgeWords)
	return out, nil
}

// emptyEdges is the shared zero-length (but non-nil) shard handed to
// machines that receive no edges under uniform placement — preserving the
// pre-arena make([]graph.Edge, 0, per) semantics that distinguish "empty
// shard" from "no shard" in deep-equality comparisons.
var emptyEdges = []graph.Edge{}

// weightedAssign deals n items to machines in proportion to their capacity
// shares: per-machine counts come from largest-remainder apportionment
// (exact proportionality within one item), and the items interleave by
// merging each machine's evenly spaced virtual positions through a heap
// (smallest position first, lowest index on ties). O(n log k),
// deterministic, and with equal shares the schedule is exactly
// round-robin. Shares that sum to zero (or are not finite) would divide by
// zero in the quota computation; that degenerate profile surfaces as
// ErrZeroCapacity instead.
func weightedAssign(n int, shares []float64) ([]int, error) {
	k := len(shares)
	var totalShare float64
	for i := 0; i < k; i++ {
		totalShare += shares[i]
	}
	if !(totalShare > 0) { // catches 0, NaN and negative sums alike
		return nil, fmt.Errorf("%w: capacity shares sum to %v over K=%d machines",
			ErrZeroCapacity, totalShare, k)
	}
	// Largest-remainder counts: floor the quotas, then hand the leftover
	// items to the largest fractional parts (lowest index on ties).
	counts := make([]int, k)
	type frac struct {
		f float64
		i int
	}
	fracs := make([]frac, k)
	assigned := 0
	for i := 0; i < k; i++ {
		q := float64(n) * shares[i] / totalShare
		counts[i] = int(q)
		assigned += counts[i]
		fracs[i] = frac{q - float64(counts[i]), i}
	}
	slices.SortFunc(fracs, func(a, b frac) int {
		if a.f != b.f {
			return cmp.Compare(b.f, a.f) // descending remainder
		}
		return cmp.Compare(a.i, b.i)
	})
	for j := 0; j < n-assigned; j++ {
		counts[fracs[j%k].i]++
	}

	// Interleave: machine i's j-th item sits at virtual position
	// (j + ½)·n/counts[i]; merging positions spreads every machine's
	// items evenly over the deal order.
	type slot struct {
		pos    float64
		period float64
		i      int
		left   int
	}
	less := func(a, b slot) bool { return a.pos < b.pos || (a.pos == b.pos && a.i < b.i) }
	h := make([]slot, 0, k)
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			continue
		}
		p := float64(n) / float64(counts[i])
		h = append(h, slot{pos: p / 2, period: p, i: i, left: counts[i]})
	}
	down := func(root int) {
		for {
			child := 2*root + 1
			if child >= len(h) {
				return
			}
			if child+1 < len(h) && less(h[child+1], h[child]) {
				child++
			}
			if !less(h[child], h[root]) {
				return
			}
			h[root], h[child] = h[child], h[root]
			root = child
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	owner := make([]int, n)
	for j := 0; j < n; j++ {
		owner[j] = h[0].i
		h[0].left--
		if h[0].left == 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			h[0].pos += h[0].period
		}
		down(0)
	}
	return owner, nil
}

// CountItems returns the total number of items across machines.
func CountItems[T any](data [][]T) int {
	n := 0
	for i := range data {
		n += len(data[i])
	}
	return n
}

// Flatten concatenates all machines' items (a test/validation helper; real
// algorithms never do this outside the model).
func Flatten[T any](data [][]T) []T {
	out := make([]T, 0, CountItems(data))
	for i := range data {
		out = append(out, data[i]...)
	}
	return out
}
