// Package prims implements the paper's algorithmic toolbox (§2) as real
// multi-round protocols on the mpc simulator:
//
//   - Claim 1 (Sorting): a coordinator-based sample sort, O(1) rounds;
//   - Claim 2 (Aggregation): local combine → sort by key → machine-range
//     trees with capacity-bounded branching (the paper's trees with
//     branching n^γ), results at the range roots and optionally gathered to
//     the large machine;
//   - Claim 3 (Dissemination): the same range trees run downward
//     (SegmentedBroadcast), delivering per-key values to every machine that
//     requested the key;
//   - Claim 4 (Arranging nodes): sort directed edges by source, report the
//     per-key machine runs to the large machine (at most n + K - 1 runs by
//     contiguity), enabling the "collect the k lightest edges of each
//     vertex" pattern used by the MST and matching algorithms.
//
// Every primitive is charged its true round cost through mpc.Exchange; none
// of them moves information outside the model.
package prims

import (
	"cmp"
	"fmt"
	"slices"

	"hetmpc/internal/mpc"
	"hetmpc/internal/xrand"
)

// KV pairs an int64 key with a value. Composite keys (vertex pairs etc.) are
// packed into the int64 by the caller.
type KV[V any] struct {
	K int64
	V V
}

// coordinator returns the machine id that plays the coordinator role:
// the large machine when present, otherwise small machine 0.
func coordinator(c *mpc.Cluster) int {
	if c.HasLarge() {
		return mpc.Large
	}
	return 0
}

// coordCap returns the coordinator's capacity.
func coordCap(c *mpc.Cluster) int {
	if c.HasLarge() {
		return c.LargeCap()
	}
	return c.SmallCapOf(0)
}

// branching returns the tree branching factor for payloads of `words` words:
// as large as possible while a parent can feed all children in one round
// within half its capacity. This is the simulator's concrete version of the
// paper's "trees with branching factor n^γ". Under capacity-skewed profiles
// the bound is the smallest machine's capacity, since any machine can land
// anywhere in a range tree.
func branching(c *mpc.Cluster, words int) int {
	if words < 1 {
		words = 1
	}
	b := c.MinSmallCap() / (2 * words)
	if b < 2 {
		b = 2
	}
	return b
}

// treeDepth returns the number of edge-levels of a B-ary heap over size
// nodes (0 for size <= 1).
func treeDepth(size, b int) int {
	d := 0
	span := 1
	for span < size {
		span = span*b + 1
		d++
	}
	return d
}

// posDepth returns the depth of heap position p in a B-ary heap.
func posDepth(p, b int) int {
	d := 0
	for p > 0 {
		p = (p - 1) / b
		d++
	}
	return d
}

// posParent returns the heap parent position of p (p > 0).
func posParent(p, b int) int { return (p - 1) / b }

// posChildren appends the heap children of p that are < size.
func posChildren(p, b, size int) []int {
	out := make([]int, 0, b)
	for j := 1; j <= b; j++ {
		ch := b*p + j
		if ch >= size {
			break
		}
		out = append(out, ch)
	}
	return out
}

// span is a key whose sorted run covers machines A..B (inclusive, B > A).
type span struct {
	Key  int64
	A, B int
}

// boundsReport is one machine's (firstKey, lastKey, n>0) report.
type boundsReport struct {
	First, Last int64
	NonEmpty    bool
}

// chainSpans computes, from the per-machine boundary reports of sorted data,
// the set of keys whose runs span more than one machine, bridging empty
// machines that sit inside a run.
func chainSpans(bounds []boundsReport) []span {
	var spans []span
	i := 0
	k := len(bounds)
	for i < k {
		if !bounds[i].NonEmpty {
			i++
			continue
		}
		key := bounds[i].Last
		// Find the furthest machine j > i whose first key equals key,
		// allowing empty machines in between.
		j := i
		probe := i + 1
		for probe < k {
			if !bounds[probe].NonEmpty {
				probe++
				continue
			}
			if bounds[probe].First == key {
				j = probe
				if bounds[probe].Last != key {
					break
				}
				probe++
				continue
			}
			break
		}
		if j > i {
			spans = append(spans, span{Key: key, A: i, B: j})
			// Continue scanning from j: j's last key may itself span further.
			if bounds[j].Last == key {
				i = j + 1
			} else {
				i = j
			}
			continue
		}
		i++
	}
	return spans
}

// reportBounds runs one round in which every machine reports its
// (firstKey, lastKey) to the coordinator; the coordinator returns the chain
// spans. firstLast(i) must return machine i's report.
func reportBounds(c *mpc.Cluster, firstLast func(i int) boundsReport) ([]span, error) {
	outs := make([][]mpc.Msg, c.K())
	for i := 0; i < c.K(); i++ {
		br := firstLast(i)
		outs[i] = []mpc.Msg{{To: coordinator(c), Words: 3, Data: br}}
	}
	ins, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return nil, err
	}
	inbox := inLarge
	if !c.HasLarge() {
		inbox = ins[0]
	}
	bounds := make([]boundsReport, c.K())
	for _, m := range inbox {
		br, ok := m.Data.(boundsReport)
		if !ok {
			return nil, fmt.Errorf("prims: unexpected bounds payload %T", m.Data)
		}
		bounds[m.From] = br
	}
	return chainSpans(bounds), nil
}

// spanInstr tells a machine it is part of key Key's run over machines A..B.
type spanInstr struct {
	Key  int64
	A, B int
}

// sendSpanInstructions has the coordinator tell every machine of every span
// which (key, A, B) ranges it belongs to. One machine can be in at most two
// spans. Costs one round.
func sendSpanInstructions(c *mpc.Cluster, spans []span) ([][]spanInstr, error) {
	out := make([]mpc.Msg, 0, len(spans)*2)
	for _, s := range spans {
		for m := s.A; m <= s.B; m++ {
			out = append(out, mpc.Msg{To: m, Words: 3, Data: spanInstr(s)})
		}
	}
	var (
		ins [][]mpc.Msg
		err error
	)
	if c.HasLarge() {
		ins, _, err = c.Exchange(nil, out)
	} else {
		outs := make([][]mpc.Msg, c.K())
		outs[0] = out
		ins, _, err = c.Exchange(outs, nil)
	}
	if err != nil {
		return nil, err
	}
	instr := make([][]spanInstr, c.K())
	for i, inbox := range ins {
		for _, m := range inbox {
			si, ok := m.Data.(spanInstr)
			if !ok {
				return nil, fmt.Errorf("prims: unexpected span payload %T", m.Data)
			}
			instr[i] = append(instr[i], si)
		}
	}
	return instr, nil
}

// BroadcastValue delivers one value held by the coordinator to every small
// machine, using a direct send when it fits the coordinator's round budget
// and a capacity-bounded B-ary tree otherwise. Returns the per-machine
// copies.
func BroadcastValue[V any](c *mpc.Cluster, val V, words int) ([]V, error) {
	defer c.Span("broadcast").End()
	k := c.K()
	out := make([]V, k)
	direct := k*words <= coordCap(c)/2
	if direct {
		msgs := make([]mpc.Msg, 0, k)
		for i := 0; i < k; i++ {
			msgs = append(msgs, mpc.Msg{To: i, Words: words, Data: val})
		}
		var err error
		if c.HasLarge() {
			_, _, err = c.Exchange(nil, msgs)
		} else {
			outs := make([][]mpc.Msg, k)
			outs[0] = msgs
			// machine 0 keeps its own copy locally
			outs[0] = outs[0][1:]
			_, _, err = c.Exchange(outs, nil)
		}
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = val
		}
		return out, nil
	}
	// Tree broadcast rooted at machine 0.
	if c.HasLarge() {
		if _, _, err := c.Exchange(nil, []mpc.Msg{{To: 0, Words: words, Data: val}}); err != nil {
			return nil, err
		}
	}
	b := branching(c, words)
	depth := treeDepth(k, b)
	have := make([]bool, k)
	have[0] = true
	out[0] = val
	for d := 0; d < depth; d++ {
		outs := make([][]mpc.Msg, k)
		for p := 0; p < k; p++ {
			if !have[p] || posDepth(p, b) != d {
				continue
			}
			for _, ch := range posChildren(p, b, k) {
				outs[p] = append(outs[p], mpc.Msg{To: ch, Words: words, Data: out[p]})
			}
		}
		ins, _, err := c.Exchange(outs, nil)
		if err != nil {
			return nil, err
		}
		for i, inbox := range ins {
			for _, m := range inbox {
				v, ok := m.Data.(V)
				if !ok {
					return nil, fmt.Errorf("prims: unexpected broadcast payload %T", m.Data)
				}
				out[i] = v
				have[i] = true
			}
		}
	}
	return out, nil
}

// GatherToLarge sends every machine's items to the large machine and returns
// them concatenated in (machine, local index) order. The receive cap of the
// large machine bounds the legal volume; violations surface as ErrCapacity.
func GatherToLarge[T any](c *mpc.Cluster, data [][]T, itemWords int) ([]T, error) {
	if !c.HasLarge() {
		return nil, fmt.Errorf("prims: GatherToLarge: %w", mpc.ErrNeedsLarge)
	}
	defer c.Span("gather").End()
	type chunk struct{ Items []T }
	outs := make([][]mpc.Msg, c.K())
	total := 0
	for i := range data {
		if i >= c.K() {
			break
		}
		if len(data[i]) == 0 {
			continue
		}
		total += len(data[i])
		outs[i] = []mpc.Msg{{To: mpc.Large, Words: len(data[i]) * itemWords, Data: chunk{Items: data[i]}}}
	}
	_, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, total)
	for _, m := range inLarge {
		ch, ok := m.Data.(chunk)
		if !ok {
			return nil, fmt.Errorf("prims: unexpected gather payload %T", m.Data)
		}
		out = append(out, ch.Items...)
	}
	return out, nil
}

// SumToLarge adds one int64 per machine at the large machine (one round).
func SumToLarge(c *mpc.Cluster, vals []int64) (int64, error) {
	if !c.HasLarge() {
		return 0, fmt.Errorf("prims: SumToLarge: %w", mpc.ErrNeedsLarge)
	}
	defer c.Span("sum").End()
	outs := make([][]mpc.Msg, c.K())
	for i := 0; i < c.K(); i++ {
		var v int64
		if i < len(vals) {
			v = vals[i]
		}
		outs[i] = []mpc.Msg{{To: mpc.Large, Words: 1, Data: v}}
	}
	_, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, m := range inLarge {
		v, ok := m.Data.(int64)
		if !ok {
			return 0, fmt.Errorf("prims: unexpected sum payload %T", m.Data)
		}
		sum += v
	}
	return sum, nil
}

// SumAll adds one int64 per machine at the coordinator and broadcasts the
// total back to every machine, so all machines (and the caller) learn it.
// Works with or without a large machine. Two-plus rounds.
func SumAll(c *mpc.Cluster, vals []int64) (int64, error) {
	defer c.Span("sum").End()
	outs := make([][]mpc.Msg, c.K())
	for i := 0; i < c.K(); i++ {
		var v int64
		if i < len(vals) {
			v = vals[i]
		}
		outs[i] = []mpc.Msg{{To: coordinator(c), Words: 1, Data: v}}
	}
	ins, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return 0, err
	}
	inbox := inLarge
	if !c.HasLarge() {
		inbox = ins[0]
	}
	var sum int64
	for _, m := range inbox {
		v, ok := m.Data.(int64)
		if !ok {
			return 0, fmt.Errorf("prims: unexpected sum payload %T", m.Data)
		}
		sum += v
	}
	if _, err := BroadcastValue(c, sum, 1); err != nil {
		return 0, err
	}
	return sum, nil
}

// ScatterFromLarge routes per-machine message lists from the large machine
// (one round). msgs[i] is delivered to machine i.
func ScatterFromLarge[T any](c *mpc.Cluster, items [][]T, itemWords int) ([][]T, error) {
	if !c.HasLarge() {
		return nil, fmt.Errorf("prims: ScatterFromLarge: %w", mpc.ErrNeedsLarge)
	}
	defer c.Span("scatter").End()
	type chunk struct{ Items []T }
	out := make([]mpc.Msg, 0, len(items))
	for i := range items {
		if len(items[i]) == 0 {
			continue
		}
		out = append(out, mpc.Msg{To: i, Words: len(items[i]) * itemWords, Data: chunk{Items: items[i]}})
	}
	ins, _, err := c.Exchange(nil, out)
	if err != nil {
		return nil, err
	}
	res := make([][]T, c.K())
	for i, inbox := range ins {
		for _, m := range inbox {
			ch, ok := m.Data.(chunk)
			if !ok {
				return nil, fmt.Errorf("prims: unexpected scatter payload %T", m.Data)
			}
			res[i] = append(res[i], ch.Items...)
		}
	}
	return res, nil
}

// BroadcastSeed derives a fresh shared random seed at the coordinator and
// broadcasts it (the paper's "one machine generates O(polylog n) random bits
// and disseminates them", App. C.1). Returns the seed.
func BroadcastSeed(c *mpc.Cluster) (uint64, error) {
	defer c.Span("seed").End()
	var seed uint64
	if c.HasLarge() {
		seed = c.LargeRand().Uint64()
	} else {
		seed = c.Rand(0).Uint64()
	}
	if _, err := BroadcastValue(c, seed, 1); err != nil {
		return 0, err
	}
	return seed, nil
}

// hashKeyToMachine places key on a machine pseudo-uniformly.
func hashKeyToMachine(key int64, k int) int {
	return int(xrand.SplitMix64(uint64(key)+0x9e37) % uint64(k))
}

// SortKVsByKey sorts a KV slice by key, stable among equal keys. It is a
// kernel site: the fast path runs the byte-skipping radix local sort (the
// index tiebreak reproduces the stable order exactly), the reference path
// the closure-based stable sort it replaces.
func SortKVsByKey[V any](kvs []KV[V]) {
	if referenceKernels {
		slices.SortStableFunc(kvs, func(a, b KV[V]) int { return cmp.Compare(a.K, b.K) })
		return
	}
	sortByKey(kvs, func(kv KV[V]) SortKey { return SortKey{A: kv.K} })
}
