package prims

import (
	"slices"
	"sync"

	"hetmpc/internal/arena"
)

// referenceKernels switches the package to its straightforward reference
// implementations: closure-based stable sorts and sort.Search + append
// bucket routing. The fast kernels below produce identical output (pinned
// by the kernel equivalence tests); the toggle exists so the E33 scale
// sweep can measure the speedup against asserted-identical results. Not
// safe to flip while primitives are in flight.
var referenceKernels bool

// SetReferenceKernels selects the reference (true) or optimized (false)
// kernel implementations. Used by benchmarks; the default is optimized.
func SetReferenceKernels(on bool) { referenceKernels = on }

// ReferenceKernels reports the current kernel selection.
func ReferenceKernels() bool { return referenceKernels }

// keyed pairs an extracted sort key with the item's original position. The
// key is held as bias-flipped uint64 words (lexicographic uint64 order over
// w equals SortKey.Compare order), so both the radix digits and the
// small-slice comparator work on plain unsigned words; the position doubles
// as the comparator tiebreak (making the comparison fallback stable) and as
// the permutation applied back to the items.
type keyed struct {
	w   [3]uint64 // bias-flipped {A, B, C}, most significant first
	idx int32
}

// flipKey converts k to its bias-flipped word triple: XORing the sign
// bit maps int64 order onto uint64 order.
func flipKey(k SortKey) [3]uint64 {
	const flip = 1 << 63
	return [3]uint64{uint64(k.A) ^ flip, uint64(k.B) ^ flip, uint64(k.C) ^ flip}
}

// keyedPool recycles the keyed scratch of sortByKey across calls: the
// primitives sort per small machine per round, so steady-state rounds reuse
// warm slabs instead of reallocating the side buffers every time.
var keyedPool = sync.Pool{New: func() any { return &arena.Arena[keyed]{} }}

// radixCutoff is the slice length below which sortByKey uses the
// comparison fallback: an LSD pass costs two linear sweeps plus a 256-entry
// histogram, which only amortizes once the slice dwarfs the histogram.
const radixCutoff = 96

// sortByKey sorts items by their SortKey, equivalent to a stable sort with
// a key-extracting comparator but without per-comparison key extraction or
// closure dispatch: keys are pulled once into a (words, index) side buffer
// and sorted with a stable LSD radix over the key bytes. The extraction
// pass folds OR/AND masks over the key words, so only bytes that actually
// vary across the slice get a counting pass — low-entropy keys (the common
// case: single-word keys with a bounded range) sort in two or three linear
// sweeps instead of n·log n comparisons. Counting sort is stable, so the
// byte-skipping LSD order reproduces the stable comparator order exactly —
// pinned by TestSortKernelMatchesStable. Small slices fall back to pdqsort
// on the flipped words with the index tiebreak (stable in effect). The
// resulting permutation is applied in place by cycle-following.
func sortByKey[T any](items []T, key func(T) SortKey) {
	n := len(items)
	if n < 2 {
		return
	}
	ar := keyedPool.Get().(*arena.Arena[keyed])
	kb := ar.AllocUninit(n)
	or := [3]uint64{}
	and := [3]uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	for i, it := range items {
		w := flipKey(key(it))
		kb[i] = keyed{w: w, idx: int32(i)}
		or[0] |= w[0]
		and[0] &= w[0]
		or[1] |= w[1]
		and[1] &= w[1]
		or[2] |= w[2]
		and[2] &= w[2]
	}
	if n < radixCutoff {
		slices.SortFunc(kb, func(a, b keyed) int {
			for w := 0; w < 3; w++ {
				if a.w[w] != b.w[w] {
					if a.w[w] < b.w[w] {
						return -1
					}
					return 1
				}
			}
			return int(a.idx) - int(b.idx)
		})
		applyPerm(items, kb)
		ar.Reset()
		keyedPool.Put(ar)
		return
	}
	// Plan one pass per byte that actually varies, least-significant key
	// word first (LSD order over the triple).
	var plan [24]bytePass
	np := 0
	for word := 2; word >= 0; word-- {
		vary := or[word] ^ and[word]
		for shift := uint(0); shift < 64; shift += 8 {
			if (vary>>shift)&0xff != 0 {
				plan[np] = bytePass{word, shift}
				np++
			}
		}
	}
	switch {
	case np == 0:
		// All keys equal: the stable order is the input order.
	case np <= 8:
		sortPacked16(items, kb, plan[:np])
	case np <= 16:
		sortPacked24(items, kb, plan[:np])
	default:
		sortUnpacked(items, kb, plan[:np], ar)
	}
	ar.Reset()
	keyedPool.Put(ar)
}

// bytePass names one varying key byte: which flipped word it lives in and
// its bit offset there. A radix run's pass plan is the LSD-ordered list of
// varying bytes.
type bytePass struct {
	word  int
	shift uint
}

// Packed key records: the pass plan squeezes the ≤8 (≤16) varying key
// bytes of the whole slice into one (two) words, packed LSD — pass p's
// digit sits at bits [8p, 8p+8). Radix passes then move 16- or 24-byte
// records instead of the 32-byte keyed form, and digit extraction is a
// single shift off a fixed word. The packing is order-preserving over the
// planned passes (skipped bytes are constant across the slice), so the
// pass sequence sorts exactly as the unpacked form would.
type keyed16 struct {
	k   uint64
	idx int32
}

type keyed24 struct {
	k0, k1 uint64
	idx    int32
}

var k16Pool = sync.Pool{New: func() any { return &arena.Arena[keyed16]{} }}
var k24Pool = sync.Pool{New: func() any { return &arena.Arena[keyed24]{} }}

// sortPacked16 runs the radix passes on 16-byte packed records. The pack
// sweep is fused with the histogram sweep (counting-sort histograms depend
// only on the key multiset, never on arrangement), so the whole sort is
// one read of kb plus np scatter sweeps over the compact records.
func sortPacked16[T any](items []T, kb []keyed, plan []bytePass) {
	n, np := len(kb), len(plan)
	pa := k16Pool.Get().(*arena.Arena[keyed16])
	buf := pa.AllocUninit(2 * n)
	src, dst := buf[:n], buf[n:]
	ca := countsPool.Get().(*arena.Arena[int32])
	scratch := ca.AllocUninit(np*256 + n)
	counts, perm := scratch[:np*256], scratch[np*256:]
	clear(counts)
	for i := range kb {
		var k uint64
		for p := 0; p < np; p++ {
			d := (kb[i].w[plan[p].word] >> plan[p].shift) & 0xff
			counts[p<<8|int(d)]++
			k |= d << (8 * uint(p))
		}
		src[i] = keyed16{k: k, idx: int32(i)}
	}
	for p := 0; p < np; p++ {
		prefixSum(counts[p<<8 : p<<8+256])
		cp := counts[p<<8 : p<<8+256]
		shift := 8 * uint(p)
		for i := range src {
			d := (src[i].k >> shift) & 0xff
			dst[cp[d]] = src[i]
			cp[d]++
		}
		src, dst = dst, src
	}
	for i := range src {
		perm[i] = src[i].idx
	}
	applyPermIdx(items, perm)
	ca.Reset()
	countsPool.Put(ca)
	pa.Reset()
	k16Pool.Put(pa)
}

// sortPacked24 is sortPacked16 for 9..16 varying bytes: passes 0..7 pack
// into k0, passes 8..15 into k1.
func sortPacked24[T any](items []T, kb []keyed, plan []bytePass) {
	n, np := len(kb), len(plan)
	pa := k24Pool.Get().(*arena.Arena[keyed24])
	buf := pa.AllocUninit(2 * n)
	src, dst := buf[:n], buf[n:]
	ca := countsPool.Get().(*arena.Arena[int32])
	scratch := ca.AllocUninit(np*256 + n)
	counts, perm := scratch[:np*256], scratch[np*256:]
	clear(counts)
	lo := plan[:8]
	hi := plan[8:]
	for i := range kb {
		var k0, k1 uint64
		for p, bp := range lo {
			d := (kb[i].w[bp.word] >> bp.shift) & 0xff
			counts[p<<8|int(d)]++
			k0 |= d << (8 * uint(p))
		}
		for p, bp := range hi {
			d := (kb[i].w[bp.word] >> bp.shift) & 0xff
			counts[(p+8)<<8|int(d)]++
			k1 |= d << (8 * uint(p))
		}
		src[i] = keyed24{k0: k0, k1: k1, idx: int32(i)}
	}
	for p := 0; p < np; p++ {
		prefixSum(counts[p<<8 : p<<8+256])
		cp := counts[p<<8 : p<<8+256]
		if p < 8 {
			shift := 8 * uint(p)
			for i := range src {
				d := (src[i].k0 >> shift) & 0xff
				dst[cp[d]] = src[i]
				cp[d]++
			}
		} else {
			shift := 8 * uint(p-8)
			for i := range src {
				d := (src[i].k1 >> shift) & 0xff
				dst[cp[d]] = src[i]
				cp[d]++
			}
		}
		src, dst = dst, src
	}
	for i := range src {
		perm[i] = src[i].idx
	}
	applyPermIdx(items, perm)
	ca.Reset()
	countsPool.Put(ca)
	pa.Reset()
	k24Pool.Put(pa)
}

// sortUnpacked is the >16-varying-byte fallback: radix passes directly on
// the 32-byte keyed records, histograms still fused into one sweep.
func sortUnpacked[T any](items []T, kb []keyed, plan []bytePass, ar *arena.Arena[keyed]) {
	n, np := len(kb), len(plan)
	ca := countsPool.Get().(*arena.Arena[int32])
	counts := ca.AllocUninit(np * 256)
	clear(counts)
	for i := range kb {
		for p := 0; p < np; p++ {
			counts[p<<8|int((kb[i].w[plan[p].word]>>plan[p].shift)&0xff)]++
		}
	}
	src, dst := kb, ar.AllocUninit(n)
	for p := 0; p < np; p++ {
		prefixSum(counts[p<<8 : p<<8+256])
		cp := counts[p<<8 : p<<8+256]
		word, shift := plan[p].word, plan[p].shift
		for i := range src {
			d := (src[i].w[word] >> shift) & 0xff
			dst[cp[d]] = src[i]
			cp[d]++
		}
		src, dst = dst, src
	}
	applyPerm(items, src)
	ca.Reset()
	countsPool.Put(ca)
}

// prefixSum converts a 256-digit histogram into exclusive start offsets.
func prefixSum(cp []int32) {
	sum := int32(0)
	for d := range cp {
		c := cp[d]
		cp[d] = sum
		sum += c
	}
}

// applyPermIdx rearranges items so that items[i] = old items[perm[i]],
// following permutation cycles in place; perm is consumed (visited entries
// are bit-complemented).
func applyPermIdx[T any](items []T, perm []int32) {
	for i := range perm {
		if perm[i] < 0 {
			continue
		}
		j := i
		tmp := items[i]
		for {
			src := int(perm[j])
			perm[j] = ^perm[j]
			if src == i {
				items[j] = tmp
				break
			}
			items[j] = items[src]
			j = src
		}
	}
}

// countsPool recycles the fused radix histograms of sortByKey (up to 24
// passes × 256 digits of int32 counts).
var countsPool = sync.Pool{New: func() any { return &arena.Arena[int32]{} }}

// u64Pool recycles the flipped-word scratch of SortInts.
var u64Pool = sync.Pool{New: func() any { return &arena.Arena[uint64]{} }}

// SortInts sorts xs ascending. It is the plain-int64 sibling of the
// sortByKey kernel: the engine's map-drain loops (collect keys, sort,
// iterate deterministically) sit on the per-round hot path of every
// algorithm, so they get the same byte-skipping LSD radix treatment —
// bias-flipped words, OR/AND vary masks, fused histograms, pooled scratch.
// Under reference kernels (or below the radix cutoff) it is exactly
// slices.Sort; equivalence is pinned by TestSortIntsMatchesSlices.
func SortInts(xs []int64) {
	n := len(xs)
	if referenceKernels || n < radixCutoff {
		slices.Sort(xs)
		return
	}
	const flip = 1 << 63
	ar := u64Pool.Get().(*arena.Arena[uint64])
	buf := ar.AllocUninit(2 * n)
	src, dst := buf[:n], buf[n:]
	var or uint64
	and := ^uint64(0)
	for i, x := range xs {
		u := uint64(x) ^ flip
		src[i] = u
		or |= u
		and &= u
	}
	vary := or ^ and
	var shifts [8]uint
	np := 0
	for s := uint(0); s < 64; s += 8 {
		if (vary>>s)&0xff != 0 {
			shifts[np] = s
			np++
		}
	}
	if np == 0 {
		// All values equal: xs is already sorted.
		ar.Reset()
		u64Pool.Put(ar)
		return
	}
	ca := countsPool.Get().(*arena.Arena[int32])
	counts := ca.AllocUninit(np * 256)
	clear(counts)
	for _, u := range src {
		for p := 0; p < np; p++ {
			counts[p<<8|int((u>>shifts[p])&0xff)]++
		}
	}
	for p := 0; p < np; p++ {
		cp := counts[p<<8 : p<<8+256]
		sum := int32(0)
		for d := range cp {
			c := cp[d]
			cp[d] = sum
			sum += c
		}
		shift := shifts[p]
		for _, u := range src {
			d := (u >> shift) & 0xff
			dst[cp[d]] = u
			cp[d]++
		}
		src, dst = dst, src
	}
	for i, u := range src {
		xs[i] = int64(u ^ flip)
	}
	ca.Reset()
	countsPool.Put(ca)
	ar.Reset()
	u64Pool.Put(ar)
}

// applyPerm rearranges items so that items[i] = old items[kb[i].idx],
// following permutation cycles in place with O(1) extra space; visited
// entries are marked by bit-complementing their idx (kb is scratch and is
// consumed by the walk).
func applyPerm[T any](items []T, kb []keyed) {
	for i := range kb {
		if kb[i].idx < 0 {
			continue // already placed by an earlier cycle
		}
		j := i
		tmp := items[i]
		for {
			src := int(kb[j].idx)
			kb[j].idx = ^kb[j].idx
			if src == i {
				items[j] = tmp
				break
			}
			items[j] = items[src]
			j = src
		}
	}
}

// SortLocal sorts one machine's items by key under the selected kernel
// set: the radix local-sort kernel, or (reference) the closure-based stable
// sort it replaces. It exposes the Sort primitive's step-1 kernel to
// algorithm code that sorts large-machine slices outside any primitive.
func SortLocal[T any](items []T, key func(T) SortKey) {
	if referenceKernels {
		slices.SortStableFunc(items, func(a, b T) int { return key(a).Compare(key(b)) })
		return
	}
	sortByKey(items, key)
}

// scatterSortedByKey routes locally-sorted items into nb splitter buckets.
// Because the items are sorted by the same key order the splitters are
// drawn from, every bucket is a contiguous run, so the kernel does no
// per-item work at all: it binary-searches each splitter's boundary
// (nb·log L comparisons instead of the reference path's L·log nb) and
// returns capacity-clamped subslices of the input — a single allocation
// for the bucket headers, pinned by TestScatterConstantAllocs. Buckets
// that receive nothing stay nil, matching the reference path's
// untouched-append behavior. The sorted precondition is the caller's
// (Sort routes the output of its local-sort step); equivalence against
// per-item sort.Search routing is pinned by TestScatterKernelMatchesSearch.
func scatterSortedByKey[T any](items []T, sp []SortKey, nb int, key func(T) SortKey) [][]T {
	out := make([][]T, nb)
	lo := 0
	for j := 0; j < nb && lo < len(items); j++ {
		hi := len(items)
		if j < len(sp) {
			// Lower bound of "key >= sp[j]" in items[lo:]: the end of
			// bucket j, since b(it) > j exactly when !key(it).Less(sp[j]).
			l, h := lo, len(items)
			for l < h {
				mid := int(uint(l+h) >> 1)
				if key(items[mid]).Less(sp[j]) {
					l = mid + 1
				} else {
					h = mid
				}
			}
			hi = l
		}
		if hi > lo {
			out[j] = items[lo:hi:hi] // cap-clamped: appends can't clobber the neighbor run
		}
		lo = hi
	}
	return out
}
