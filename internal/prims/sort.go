package prims

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"hetmpc/internal/mpc"
)

// SortKey is the compact, 3-word lexicographic sort key extracted from every
// item. Keeping splitters to 3 words (rather than whole items, which may
// carry large payloads such as labels) keeps the splitter broadcast within
// the small machines' capacity.
type SortKey struct{ A, B, C int64 }

// Less is the lexicographic order on sort keys.
func (k SortKey) Less(o SortKey) bool {
	if k.A != o.A {
		return k.A < o.A
	}
	if k.B != o.B {
		return k.B < o.B
	}
	return k.C < o.C
}

// Compare is the three-way lexicographic order on sort keys.
func (k SortKey) Compare(o SortKey) int {
	if c := cmp.Compare(k.A, o.A); c != 0 {
		return c
	}
	if c := cmp.Compare(k.B, o.B); c != 0 {
		return c
	}
	return cmp.Compare(k.C, o.C)
}

const sortKeyWords = 3

// Sort implements Claim 1: it sorts the items stored on the small machines
// by their SortKey so that afterwards machine i's items all precede machine
// i+1's items and each machine's slice is locally sorted. It is a sample
// sort:
//
//  1. local sort;
//  2. every machine sends a small weighted key sample to the coordinator
//     (1 round);
//  3. the coordinator picks K-1 splitter keys and broadcasts them (1 round,
//     or a capacity-bounded tree when the list is too large to send K times
//     directly);
//  4. items are routed to their splitter bucket (1 round) and re-sorted.
//
// itemWords is the accounted size of one item.
func Sort[T any](c *mpc.Cluster, data [][]T, itemWords int, key func(T) SortKey) ([][]T, error) {
	defer c.Span("sort").End()
	k := c.K()
	if len(data) < k {
		nd := make([][]T, k)
		copy(nd, data)
		data = nd
	}
	// Under fault injection the input buckets are the machines' live state
	// until the routed buckets replace them below.
	RegisterState(c, data, itemWords)

	// Step 1: local sort (parallel local computation, no rounds). The fast
	// path extracts keys once and sorts a compact side buffer (kernels.go);
	// the reference path is the closure-based stable sort it replaces.
	byKey := func(a, b T) int { return key(a).Compare(key(b)) }
	if err := c.ForSmall(func(i int) error {
		if referenceKernels {
			slices.SortStableFunc(data[i], byKey)
		} else {
			sortByKey(data[i], key)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Step 2: weighted key samples to the coordinator (sample extraction is
	// local computation, parallel over the small-machine axis).
	q := coordCap(c) / (2 * k * (sortKeyWords + 1))
	if q < 1 {
		q = 1
	}
	if q > 64 {
		q = 64
	}
	type sample struct {
		Keys  []SortKey
		Count int
	}
	outs := make([][]mpc.Msg, k)
	if err := c.ForSmall(func(i int) error {
		n := len(data[i])
		take := q
		if take > n {
			take = n
		}
		keys := make([]SortKey, 0, take)
		for j := 0; j < take; j++ {
			keys = append(keys, key(data[i][j*n/take]))
		}
		outs[i] = []mpc.Msg{{To: coordinator(c), Words: len(keys)*sortKeyWords + 1, Data: sample{Keys: keys, Count: n}}}
		return nil
	}); err != nil {
		return nil, err
	}
	ins, inLarge, err := c.Exchange(outs, nil)
	if err != nil {
		return nil, err
	}
	inbox := inLarge
	if !c.HasLarge() {
		inbox = ins[0]
	}

	// Step 3: coordinator picks splitters weighted by machine loads.
	type weighted struct {
		key    SortKey
		weight float64
	}
	var samples []weighted
	total := 0
	for _, m := range inbox {
		s, ok := m.Data.(sample)
		if !ok {
			return nil, fmt.Errorf("prims: unexpected sample payload %T", m.Data)
		}
		total += s.Count
		if len(s.Keys) == 0 {
			continue
		}
		w := float64(s.Count) / float64(len(s.Keys))
		for _, kk := range s.Keys {
			samples = append(samples, weighted{key: kk, weight: w})
		}
	}
	slices.SortStableFunc(samples, func(a, b weighted) int { return a.key.Compare(b.key) })
	// Splitter targets are placement-weighted: bucket i should hold a
	// PlaceShare(i)/Σ share of the items under the cluster's placement
	// policy (DESIGN.md §8) — capacity shares under the default cap policy
	// (Frisk's balancing rule), min(capacity, effective speed) under
	// throughput/speculate — so skewed machines receive only what they can
	// absorb (or move in time). With uniform weights (all exactly 1) this
	// reduces to the even split total/k.
	splitters := make([]SortKey, 0, k-1)
	if len(samples) > 0 && total > 0 {
		var totalShare float64
		prefix := make([]float64, k) // prefix[j] = Σ_{i<j} PlaceShare(i)
		for i := 0; i < k; i++ {
			prefix[i] = totalShare
			totalShare += c.PlaceShare(i)
		}
		var cum float64
		next := 1
		target := float64(total) / totalShare
		for _, s := range samples {
			cum += s.weight
			for next < k && cum >= prefix[next]*target {
				splitters = append(splitters, s.key)
				next++
			}
		}
	}

	// Broadcast the splitter list (3 words per splitter).
	type splitterList struct{ Keys []SortKey }
	words := len(splitters)*sortKeyWords + 1
	lists, err := BroadcastValue(c, splitterList{Keys: splitters}, words)
	if err != nil {
		return nil, err
	}

	// Step 4: route every item to its bucket. The fast path exploits step
	// 1's local sort — buckets are contiguous runs, found by binary-searching
	// each splitter boundary (kernels.go); the reference path is the
	// per-item sort.Search + append loop it replaces.
	type chunk struct{ Items []T }
	buckets := make([][][]T, k)
	if err := c.ForSmall(func(i int) error {
		sp := lists[i].Keys
		if referenceKernels {
			buckets[i] = make([][]T, k)
			for _, it := range data[i] {
				kk := key(it)
				j := sort.Search(len(sp), func(x int) bool { return kk.Less(sp[x]) })
				buckets[i][j] = append(buckets[i][j], it)
			}
		} else {
			buckets[i] = scatterSortedByKey(data[i], sp, k, key)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	routeOuts := make([][]mpc.Msg, k)
	if err := c.ForSmall(func(i int) error {
		for j := 0; j < k; j++ {
			if len(buckets[i][j]) == 0 {
				continue
			}
			routeOuts[i] = append(routeOuts[i], mpc.Msg{To: j, Words: len(buckets[i][j]) * itemWords, Data: chunk{Items: buckets[i][j]}})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	ins, _, err = c.Exchange(routeOuts, nil)
	if err != nil {
		return nil, err
	}
	result := make([][]T, k)
	if err := c.ForSmall(func(i int) error {
		n := 0
		for _, m := range ins[i] {
			ch, ok := m.Data.(chunk)
			if !ok {
				return fmt.Errorf("prims: unexpected route payload %T", m.Data)
			}
			n += len(ch.Items)
		}
		result[i] = make([]T, 0, n)
		for _, m := range ins[i] {
			result[i] = append(result[i], m.Data.(chunk).Items...)
		}
		if referenceKernels {
			slices.SortStableFunc(result[i], byKey)
		} else {
			sortByKey(result[i], key)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// The routed, locally sorted buckets are now the machines' state.
	RegisterState(c, result, itemWords)
	return result, nil
}

// IsGloballySorted verifies the Sort postcondition (used by tests).
func IsGloballySorted[T any](data [][]T, key func(T) SortKey) bool {
	var last *SortKey
	for i := range data {
		for j := range data[i] {
			kk := key(data[i][j])
			if last != nil && kk.Less(*last) {
				return false
			}
			last = &kk
		}
	}
	return true
}
