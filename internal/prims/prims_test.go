package prims

import (
	"sort"
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/xrand"
)

func newCluster(t *testing.T, n, m int, noLarge bool) *mpc.Cluster {
	t.Helper()
	c, err := mpc.New(mpc.Config{N: n, M: m, Seed: 42, NoLarge: noLarge})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainSpans(t *testing.T) {
	b := func(first, last int64) boundsReport {
		return boundsReport{First: first, Last: last, NonEmpty: true}
	}
	empty := boundsReport{}
	cases := []struct {
		name   string
		bounds []boundsReport
		want   []span
	}{
		{"disjoint", []boundsReport{b(1, 3), b(4, 6), b(7, 9)}, nil},
		{"one-span", []boundsReport{b(1, 5), b(5, 9)}, []span{{5, 0, 1}}},
		{"long-span", []boundsReport{b(1, 5), b(5, 5), b(5, 9)}, []span{{5, 0, 2}}},
		{"bridged-empty", []boundsReport{b(1, 5), empty, b(5, 9)}, []span{{5, 0, 2}}},
		{"not-bridged", []boundsReport{b(1, 5), empty, b(6, 9)}, nil},
		{"two-spans", []boundsReport{b(1, 2), b(2, 7), b(7, 9)}, []span{{2, 0, 1}, {7, 1, 2}}},
		{"back-to-back", []boundsReport{b(2, 2), b(2, 7), b(7, 7), b(7, 8)}, []span{{2, 0, 1}, {7, 1, 3}}},
		{"all-one-key", []boundsReport{b(3, 3), b(3, 3), b(3, 3)}, []span{{3, 0, 2}}},
	}
	for _, tc := range cases {
		got := chainSpans(tc.bounds)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %v want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: got %v want %v", tc.name, got, tc.want)
			}
		}
	}
}

func TestTreeHelpers(t *testing.T) {
	if d := treeDepth(1, 4); d != 0 {
		t.Fatalf("depth(1) = %d", d)
	}
	if d := treeDepth(5, 4); d != 1 {
		t.Fatalf("depth(5,b=4) = %d", d)
	}
	if d := treeDepth(6, 4); d != 2 {
		t.Fatalf("depth(6,b=4) = %d", d)
	}
	// Heap arithmetic consistency: parent of every child is the sender.
	for p := 0; p < 20; p++ {
		for _, ch := range posChildren(p, 3, 60) {
			if posParent(ch, 3) != p {
				t.Fatalf("parent(children(%d)) mismatch", p)
			}
			if posDepth(ch, 3) != posDepth(p, 3)+1 {
				t.Fatalf("depth mismatch for %d->%d", p, ch)
			}
		}
	}
}

func testSortRoundTrip(t *testing.T, noLarge bool) {
	t.Helper()
	c := newCluster(t, 256, 2048, noLarge)
	rng := xrand.New(7)
	data := make([][]int64, c.K())
	var all []int64
	for i := range data {
		n := rng.IntN(40)
		for j := 0; j < n; j++ {
			v := rng.Int64N(10000)
			data[i] = append(data[i], v)
			all = append(all, v)
		}
	}
	sorted, err := Sort(c, data, 1, func(v int64) SortKey { return SortKey{A: v} })
	if err != nil {
		t.Fatal(err)
	}
	if !IsGloballySorted(sorted, func(v int64) SortKey { return SortKey{A: v} }) {
		t.Fatal("not globally sorted")
	}
	got := Flatten(sorted)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(got) != len(all) {
		t.Fatalf("lost items: %d vs %d", len(got), len(all))
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("item %d: %d != %d", i, got[i], all[i])
		}
	}
	if c.Rounds() > 20 {
		t.Fatalf("sort used %d rounds, want O(1)", c.Rounds())
	}
}

func TestSortWithLarge(t *testing.T) { testSortRoundTrip(t, false) }
func TestSortSublinear(t *testing.T) { testSortRoundTrip(t, true) }

func TestSortSkewedAndEmpty(t *testing.T) {
	c := newCluster(t, 256, 1024, false)
	data := make([][]int64, c.K())
	// All items on one machine, many duplicates.
	for j := 0; j < 500; j++ {
		data[3] = append(data[3], int64(j%7))
	}
	sorted, err := Sort(c, data, 1, func(v int64) SortKey { return SortKey{A: v} })
	if err != nil {
		t.Fatal(err)
	}
	if !IsGloballySorted(sorted, func(v int64) SortKey { return SortKey{A: v} }) {
		t.Fatal("not sorted")
	}
	if CountItems(sorted) != 500 {
		t.Fatalf("items lost: %d", CountItems(sorted))
	}
	// Fully empty input.
	c2 := newCluster(t, 64, 256, false)
	empty := make([][]int64, c2.K())
	sorted2, err := Sort(c2, empty, 1, func(v int64) SortKey { return SortKey{A: v} })
	if err != nil {
		t.Fatal(err)
	}
	if CountItems(sorted2) != 0 {
		t.Fatal("phantom items")
	}
}

func TestBroadcastValueDirectAndTree(t *testing.T) {
	for _, noLarge := range []bool{false, true} {
		c := newCluster(t, 512, 4096, noLarge)
		vals, err := BroadcastValue(c, int64(777), 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v != 777 {
				t.Fatalf("noLarge=%v machine %d got %d", noLarge, i, v)
			}
		}
	}
	// Force the tree path with a huge payload word count.
	c := newCluster(t, 512, 4096, true)
	payload := c.SmallCap() / 3 // K*payload >> smallCap forces the tree
	vals, err := BroadcastValue(c, int64(55), payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 55 {
			t.Fatal("tree broadcast corrupted value")
		}
	}
}

func TestGatherScatterSum(t *testing.T) {
	c := newCluster(t, 256, 1024, false)
	data := make([][]int64, c.K())
	want := int64(0)
	for i := range data {
		data[i] = []int64{int64(i), int64(i * 2)}
		want += int64(i) + int64(i*2)
	}
	all, err := GatherToLarge(c, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, v := range all {
		got += v
	}
	if got != want {
		t.Fatalf("gather sum %d want %d", got, want)
	}
	// Scatter back.
	back, err := ScatterFromLarge(c, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if len(back[i]) != 2 || back[i][0] != data[i][0] {
			t.Fatalf("scatter mismatch at %d", i)
		}
	}
	counts := make([]int64, c.K())
	for i := range counts {
		counts[i] = 2
	}
	sum, err := SumToLarge(c, counts)
	if err != nil {
		t.Fatal(err)
	}
	if sum != int64(2*c.K()) {
		t.Fatalf("SumToLarge = %d", sum)
	}
}

func TestBroadcastSeedShared(t *testing.T) {
	c := newCluster(t, 128, 512, false)
	s1, err := BroadcastSeed(c)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BroadcastSeed(c)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("seeds should differ between calls")
	}
}

func TestAggregateByKeySums(t *testing.T) {
	for _, noLarge := range []bool{false, true} {
		c := newCluster(t, 256, 2048, noLarge)
		rng := xrand.New(3)
		items := make([][]KV[int64], c.K())
		want := map[int64]int64{}
		for i := range items {
			for j := 0; j < 30; j++ {
				k := rng.Int64N(50) // few keys => long spanning runs
				v := rng.Int64N(100)
				items[i] = append(items[i], KV[int64]{K: k, V: v})
				want[k] += v
			}
		}
		roots, atLarge, err := AggregateByKey(c, items, 1,
			func(a, b int64) int64 { return a + b }, !noLarge)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]int64{}
		for i := range roots {
			for k, v := range roots[i] {
				if _, dup := got[k]; dup {
					t.Fatalf("key %d finalized on two machines", k)
				}
				got[k] = v
			}
		}
		if len(got) != len(want) {
			t.Fatalf("noLarge=%v: %d keys, want %d", noLarge, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("noLarge=%v key %d: got %d want %d", noLarge, k, got[k], v)
			}
		}
		if !noLarge {
			for k, v := range want {
				if atLarge[k] != v {
					t.Fatalf("atLarge key %d: got %d want %d", k, atLarge[k], v)
				}
			}
		}
	}
}

func TestAggregateByKeyMin(t *testing.T) {
	c := newCluster(t, 256, 2048, false)
	items := make([][]KV[int64], c.K())
	// One hot key spread across every machine; min should win.
	for i := range items {
		items[i] = append(items[i], KV[int64]{K: 9, V: int64(1000 - i)})
	}
	_, atLarge, err := AggregateByKey(c, items, 1,
		func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1000 - (c.K() - 1))
	if atLarge[9] != want {
		t.Fatalf("min = %d, want %d", atLarge[9], want)
	}
}

func TestSegmentedBroadcastFromLarge(t *testing.T) {
	c := newCluster(t, 256, 2048, false)
	values := map[int64]int64{}
	for k := int64(0); k < 200; k++ {
		values[k] = k * 10
	}
	rng := xrand.New(5)
	needs := make([][]int64, c.K())
	for i := range needs {
		seen := map[int64]bool{}
		for j := 0; j < 20; j++ {
			k := rng.Int64N(220) // some keys have no value
			if !seen[k] {
				seen[k] = true
				needs[i] = append(needs[i], k)
			}
		}
	}
	got, err := DisseminateFromLarge(c, needs, values, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range needs {
		for _, k := range needs[i] {
			v, ok := got[i][k]
			wantV, wantOK := values[k]
			if ok != wantOK || (ok && v != wantV) {
				t.Fatalf("machine %d key %d: got (%d,%v) want (%d,%v)", i, k, v, ok, wantV, wantOK)
			}
		}
	}
}

func TestSegmentedBroadcastDistributedValues(t *testing.T) {
	// Values live on the small machines (no large-machine source): the
	// hot-key case where one key is needed by every machine.
	for _, noLarge := range []bool{false, true} {
		c := newCluster(t, 256, 2048, noLarge)
		smallValues := make([][]KV[int64], c.K())
		smallValues[c.K()-1] = []KV[int64]{{K: 7, V: 700}} // value at the far end
		needs := make([][]int64, c.K())
		for i := range needs {
			needs[i] = []int64{7}
		}
		got, err := SegmentedBroadcast(c, needs, smallValues, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i][7] != 700 {
				t.Fatalf("noLarge=%v machine %d got %v", noLarge, i, got[i])
			}
		}
	}
}

func TestArrangeAndCollectBudget(t *testing.T) {
	c := newCluster(t, 256, 2048, false)
	g := graph.GNMWeighted(100, 600, 9)
	// Directed duplication sorted by (source, weight) — the §3 arrangement.
	dir := make([][]graph.Edge, c.K())
	for j, e := range g.Edges {
		m := j % c.K()
		dir[m] = append(dir[m], e)
		dir[(j+1)%c.K()] = append(dir[(j+1)%c.K()], graph.Edge{U: e.V, V: e.U, W: e.W})
	}
	sortKey := func(e graph.Edge) SortKey { return SortKey{A: int64(e.U), B: e.W, C: int64(e.V)} }
	arr, err := Arrange(c, dir, sortKey, EdgeWords)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees from the run index must match the real degrees.
	deg := g.Degrees()
	for v := 0; v < g.N; v++ {
		if got := arr.Degree(int64(v)); got != deg[v] {
			t.Fatalf("degree of %d: got %d want %d", v, got, deg[v])
		}
	}
	// Collect the 3 lightest out-edges of every vertex.
	collected, err := arr.CollectBudget(c, func(key int64) int { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Adj()
	for v := 0; v < g.N; v++ {
		items := collected[int64(v)]
		wantN := 3
		if deg[v] < 3 {
			wantN = deg[v]
		}
		if len(items) != wantN {
			t.Fatalf("vertex %d: collected %d, want %d", v, len(items), wantN)
		}
		// They must be the lightest.
		ws := make([]int64, 0, len(adj[v]))
		for _, h := range adj[v] {
			ws = append(ws, h.W)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for x, it := range items {
			if it.W != ws[x] {
				t.Fatalf("vertex %d item %d: weight %d want %d", v, x, it.W, ws[x])
			}
			if it.U != v {
				t.Fatalf("vertex %d: collected foreign edge %v", v, it)
			}
		}
	}
}

func TestDistributeEdgesBalanced(t *testing.T) {
	c := newCluster(t, 256, 2048, false)
	g := graph.GNM(256, 2048, 3)
	data, err := DistributeEdges(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if CountItems(data) != g.M() {
		t.Fatal("edges lost in distribution")
	}
	max := 0
	for i := range data {
		if len(data[i]) > max {
			max = len(data[i])
		}
	}
	if max > (g.M()/c.K())+1 {
		t.Fatalf("imbalanced: max %d", max)
	}
}

func TestPrimitivesRoundCountsConstant(t *testing.T) {
	// The whole point of Claims 1-4: O(1) rounds. Check against generous
	// constants.
	c := newCluster(t, 512, 4096, false)
	items := make([][]KV[int64], c.K())
	for i := range items {
		items[i] = []KV[int64]{{K: int64(i % 17), V: 1}}
	}
	before := c.Rounds()
	if _, _, err := AggregateByKey(c, items, 1, func(a, b int64) int64 { return a + b }, true); err != nil {
		t.Fatal(err)
	}
	if used := c.Rounds() - before; used > 25 {
		t.Fatalf("AggregateByKey used %d rounds", used)
	}
	needs := make([][]int64, c.K())
	for i := range needs {
		needs[i] = []int64{int64(i % 17)}
	}
	before = c.Rounds()
	if _, err := DisseminateFromLarge(c, needs, map[int64]int64{0: 1, 5: 2, 16: 3}, 1); err != nil {
		t.Fatal(err)
	}
	if used := c.Rounds() - before; used > 25 {
		t.Fatalf("Disseminate used %d rounds", used)
	}
}
