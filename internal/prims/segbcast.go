package prims

import (
	"fmt"

	"hetmpc/internal/mpc"
)

// SegmentedBroadcast implements Claim 3 (dissemination): per-key values —
// held by the large machine and/or scattered over the small machines — are
// delivered to every small machine that requests the key. needs[i] lists the
// (deduplicated) keys machine i requires; the result maps mirror needs.
//
// Protocol: value items and request items are sorted together by
// (key, kind), so each key's run starts with its value at the run's first
// machine; runs spanning several machines broadcast the value down a
// capacity-bounded interval tree (the paper's trees of Claims 2/3); finally
// each request is answered to its requester. Requests for keys with no value
// are silently unanswered (absent from the result map).
//
// The requester-side receive volume is Σ|needs[i]|·(vwords+1), which the
// caller keeps within capacity exactly as the paper does (labels and cluster
// ids are polylog-sized).
func SegmentedBroadcast[V any](
	c *mpc.Cluster,
	needs [][]int64,
	smallValues [][]KV[V],
	largeValues []KV[V],
	vwords int,
) ([]map[int64]V, error) {
	defer c.Span("broadcast").End()
	k := c.K()
	type item struct {
		Key  int64
		Rank int32 // 0 = value, 1 = request
		Req  int32 // requester (rank 1)
		Orig int32 // origin machine, tiebreak
		Seq  int32 // origin sequence, tiebreak
		Val  V
	}
	itemWords := vwords + 3
	itemKey := func(it item) SortKey {
		return SortKey{A: it.Key, B: int64(it.Rank), C: int64(it.Orig)<<32 | int64(it.Seq)}
	}

	// Round 0 (optional): inject the large machine's values, hashed across
	// the machines; they only need to enter the sort somewhere.
	injected := make([][]KV[V], k)
	if len(largeValues) > 0 {
		if !c.HasLarge() {
			return nil, fmt.Errorf("prims: large values without a large machine")
		}
		perMachine := make([][]KV[V], k)
		for _, kv := range largeValues {
			m := hashKeyToMachine(kv.K, k)
			perMachine[m] = append(perMachine[m], kv)
		}
		got, err := ScatterFromLarge(c, perMachine, vwords+1)
		if err != nil {
			return nil, err
		}
		injected = got
	}

	// Build combined item lists.
	items := make([][]item, k)
	if err := c.ForSmall(func(i int) error {
		var seq int32
		add := func(it item) {
			it.Orig = int32(i)
			it.Seq = seq
			seq++
			items[i] = append(items[i], it)
		}
		if i < len(smallValues) {
			for _, kv := range smallValues[i] {
				add(item{Key: kv.K, Rank: 0, Req: -1, Val: kv.V})
			}
		}
		for _, kv := range injected[i] {
			add(item{Key: kv.K, Rank: 0, Req: -1, Val: kv.V})
		}
		if i < len(needs) {
			for _, key := range needs[i] {
				add(item{Key: key, Rank: 1, Req: int32(i)})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	sorted, err := Sort(c, items, itemWords, itemKey)
	if err != nil {
		return nil, err
	}

	spans, err := reportBounds(c, func(i int) boundsReport {
		if len(sorted[i]) == 0 {
			return boundsReport{}
		}
		return boundsReport{First: sorted[i][0].Key, Last: sorted[i][len(sorted[i])-1].Key, NonEmpty: true}
	})
	if err != nil {
		return nil, err
	}
	instr, err := sendSpanInstructions(c, spans)
	if err != nil {
		return nil, err
	}

	// Per machine: resolve values for fully local runs.
	resolved := make([]map[int64]V, k)
	if err := c.ForSmall(func(i int) error {
		resolved[i] = make(map[int64]V)
		for _, it := range sorted[i] {
			if it.Rank != 0 {
				continue
			}
			if _, ok := resolved[i][it.Key]; !ok {
				resolved[i][it.Key] = it.Val
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Tree-down per spanning run: the root (first machine of the run) holds
	// the value if one exists; forward level by level.
	type downMsg struct {
		Key int64
		Val V
	}
	b := branching(c, vwords+1)
	depth := treeDepth(k, b)
	for d := 0; d < depth; d++ {
		outs := make([][]mpc.Msg, k)
		for i := 0; i < k; i++ {
			for _, si := range instr[i] {
				p := i - si.A
				size := si.B - si.A + 1
				if posDepth(p, b) != d {
					continue
				}
				v, ok := resolved[i][si.Key]
				if !ok {
					continue // no value for this key, or not yet received
				}
				for _, ch := range posChildren(p, b, size) {
					outs[i] = append(outs[i], mpc.Msg{To: si.A + ch, Words: vwords + 1, Data: downMsg{Key: si.Key, Val: v}})
				}
			}
		}
		ins, _, err := c.Exchange(outs, nil)
		if err != nil {
			return nil, err
		}
		for i, inbox := range ins {
			for _, m := range inbox {
				dm, ok := m.Data.(downMsg)
				if !ok {
					return nil, fmt.Errorf("prims: unexpected dissemination payload %T", m.Data)
				}
				if _, exists := resolved[i][dm.Key]; !exists {
					resolved[i][dm.Key] = dm.Val
				}
			}
		}
	}

	// Answer the requests.
	type answer struct {
		Key int64
		Val V
	}
	outs := make([][]mpc.Msg, k)
	for i := 0; i < k; i++ {
		for _, it := range sorted[i] {
			if it.Rank != 1 {
				continue
			}
			v, ok := resolved[i][it.Key]
			if !ok {
				continue
			}
			outs[i] = append(outs[i], mpc.Msg{To: int(it.Req), Words: vwords + 1, Data: answer{Key: it.Key, Val: v}})
		}
	}
	ins, _, err := c.Exchange(outs, nil)
	if err != nil {
		return nil, err
	}
	result := make([]map[int64]V, k)
	for i := range result {
		result[i] = make(map[int64]V)
	}
	for i, inbox := range ins {
		for _, m := range inbox {
			a, ok := m.Data.(answer)
			if !ok {
				return nil, fmt.Errorf("prims: unexpected answer payload %T", m.Data)
			}
			result[i][a.Key] = a.Val
		}
	}
	return result, nil
}

// DisseminateFromLarge is the common special case of Claim 3: the large
// machine holds values for a set of keys; machine i needs the keys in
// needs[i].
func DisseminateFromLarge[V any](c *mpc.Cluster, needs [][]int64, values map[int64]V, vwords int) ([]map[int64]V, error) {
	kvs := make([]KV[V], 0, len(values))
	for key, v := range values {
		kvs = append(kvs, KV[V]{K: key, V: v})
	}
	SortKVsByKey(kvs)
	return SegmentedBroadcast(c, needs, nil, kvs, vwords)
}
