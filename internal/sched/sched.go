// Package sched is the placement-policy subsystem: it decides how the
// toolbox primitives split work across heterogeneous small machines.
//
// The paper's model places work uniformly; the heterogeneous cost model
// (DESIGN.md §6) made placement capacity-proportional, which keeps every
// machine inside its per-round cap but ignores speed — a fast-but-small
// machine idles while a slow-but-big one sets the makespan. That assignment
// problem is exactly the heterogeneous-machine query-processing setting of
// Frisk & Koutris ("Parallel Query Processing with Heterogeneous Machines"),
// and the redundant-work mitigation comes from Reisizadeh et al. ("Coded
// Computation over Heterogeneous Clusters"). This package makes the policy
// pluggable:
//
//   - Cap — the capacity-proportional split; the default, bit-identical to
//     the pre-policy behavior (share_i = CapShare_i);
//   - Throughput — an LPT-style min-makespan split: share_i proportional to
//     min(CapShare_i, effective speed under 1/Speed_i + 1/Bandwidth_i), so
//     slow machines hold less work and a fast-but-small machine is never
//     weighted beyond its memory (see Throughput for what the clip does
//     and does not guarantee about absolute caps);
//   - Speculate — Throughput placement plus redundant execution of the R
//     slowest per-round shards on idle fast machines, first-copy-wins; the
//     speculative copies are charged honestly (mpc.Stats.SpeculationWords
//     and the partner's busy time);
//   - Adaptive — Throughput recomputed online: an EWMA Estimator over the
//     simulator's per-round observations (trace.Round-shaped) replaces the
//     declared costs with measured ones, and the recomputed shares switch
//     in at round boundaries (snapshot-and-switch, DESIGN.md §10) — the
//     policy to reach for when the declared profile is wrong.
//
// A Policy only returns static placement weights; the per-round
// first-copy-wins accounting of Speculate, and the round-barrier
// observe/recompute/switch loop of Adaptive (OnlinePolicy), live in the mpc
// engine (DESIGN.md §8, §10), because only the simulator sees per-round
// traffic and transient slowdown windows. Policies never change what a
// correct algorithm computes — placement moves data between machines, and
// every experiment validates its output against the exact references under
// every policy.
package sched

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Machines describes the cluster to a policy: one entry per small machine.
// Both slices are normalized views the simulator derives from its Profile;
// policies must not mutate them.
type Machines struct {
	// CapShare is the per-machine capacity scale normalized so the largest
	// machine has share 1 (mpc.Cluster.CapShare).
	CapShare []float64
	// InvCost is the per-machine per-word time, 1/Speed + 1/Bandwidth —
	// the same quantity the makespan scan charges (DESIGN.md §6). Uniform
	// clusters have 2 everywhere.
	InvCost []float64
}

// Policy decides the relative share of work each small machine is allotted
// by the placement primitives (prims.DistributeEdges, prims.Sort splitter
// weighting and, through Sort, AggregateByKey's bucket assignment).
type Policy interface {
	// Name labels tables, artifacts and error messages ("cap",
	// "throughput", "speculate:2").
	Name() string
	// Shares returns one positive finite placement weight per machine.
	// Only ratios matter; the primitives normalize. It is an error for a
	// degenerate Machines description (e.g. non-positive InvCost) to reach
	// a policy that needs it.
	Shares(m Machines) ([]float64, error)
	// Speculation returns R, the number of slowest per-round shards the
	// simulator redundantly executes on idle fast machines (0 = none).
	Speculation() int
}

// Cap is the capacity-proportional policy: share_i = CapShare_i, the
// placement rule the cost-model subsystem shipped with (Frisk's balancing
// rule). It is the default — a nil mpc.Config.Placement behaves exactly
// like Cap — and is bit-identical to the pre-policy simulator on every
// profile.
type Cap struct{}

// Name implements Policy.
func (Cap) Name() string { return "cap" }

// Shares implements Policy: the capacity shares themselves.
func (Cap) Shares(m Machines) ([]float64, error) {
	return slices.Clone(m.CapShare), nil
}

// Speculation implements Policy: Cap never speculates.
func (Cap) Speculation() int { return 0 }

// Throughput is the min-makespan policy: share_i ∝ min(CapShare_i, thr_i)
// where thr_i = (1/InvCost_i) normalized so the fastest machine has 1 —
// each machine is asked to hold work proportional to how fast it can move
// it, clipped by its capacity share so a fast-but-small machine is never
// weighted beyond its memory. Note what the clip does and does not
// guarantee: it bounds each machine's weight *relative to the fastest*,
// but because the primitives normalize shares, shrinking the slow
// machines' weights necessarily inflates everyone else's normalized
// fraction above the capacity-proportional allotment (any placement whose
// fractions never exceed Cap's anywhere is Cap itself). Per-machine caps
// are still enforced exactly — by Exchange, loudly — so a workload sized
// to the brim of the Cap split can trip ErrCapacity under Throughput;
// the experiments' workloads leave the usual Õ slack. On a pure
// capacity skew (speeds uniform, e.g. Zipf profiles) thr_i = 1 and the
// policy reduces to Cap exactly; on a uniform profile every share is
// exactly 1 and the placement is bit-identical to Cap (tested).
type Throughput struct{}

// Name implements Policy.
func (Throughput) Name() string { return "throughput" }

// Shares implements Policy.
func (Throughput) Shares(m Machines) ([]float64, error) {
	return throughputShares(m, nil)
}

// throughputShares is the one implementation of the min(cap, speed) share
// formula, shared by Throughput, Speculate and the adaptive Estimator (which
// feeds it measured rather than declared costs). Sharing the exact float
// operations is what makes "adaptive at its declared seed == throughput"
// bit-identical rather than merely close. dst is reused when it has the
// right length; otherwise a fresh slice is allocated.
func throughputShares(m Machines, dst []float64) ([]float64, error) {
	shares := dst
	if len(shares) != len(m.InvCost) {
		shares = make([]float64, len(m.InvCost))
	}
	maxThr := 0.0
	for i, ic := range m.InvCost {
		if !(ic > 0) || math.IsInf(ic, 0) {
			return nil, fmt.Errorf("sched: throughput: machine %d has per-word cost %v, want positive finite", i, ic)
		}
		shares[i] = 1 / ic
		if shares[i] > maxThr {
			maxThr = shares[i]
		}
	}
	for i := range shares {
		shares[i] /= maxThr
		if cs := m.CapShare[i]; shares[i] > cs {
			shares[i] = cs
		}
	}
	return shares, nil
}

// Speculation implements Policy: plain Throughput never speculates.
func (Throughput) Speculation() int { return 0 }

// Speculate is Throughput placement plus redundant execution: each round
// the R slowest shards (the largest per-machine word-times, where static
// placement cannot help — broadcasts, samples, transient slowdown windows)
// are mirrored onto the fastest machines outside that slow set,
// first-copy-wins. The simulator launches a copy only when the partner's
// predicted finish beats the victim's, and charges every launched copy:
// the mirrored words land in Stats.SpeculationWords and the partner's busy
// time (DESIGN.md §8). R = 0 is exactly Throughput.
type Speculate struct {
	R int
}

// Name implements Policy.
func (s Speculate) Name() string { return fmt.Sprintf("speculate:%d", s.R) }

// Shares implements Policy: identical to Throughput.
func (s Speculate) Shares(m Machines) ([]float64, error) { return Throughput{}.Shares(m) }

// Speculation implements Policy.
func (s Speculate) Speculation() int { return s.R }

// Parse builds a policy from a CLI spec:
//
//	cap              capacity-proportional (the default)
//	throughput       min-makespan split by min(cap, effective speed)
//	speculate:R      throughput + redundant execution of the R slowest shards
//	adaptive[:ALPHA] throughput shares recomputed per round from measured
//	                 costs, EWMA gain ALPHA in [0,1] (default 0.5; 0 freezes
//	                 the declared estimate and is exactly throughput)
//
// The empty spec and "cap" return (nil, nil): a nil policy is the default
// Cap placement, mirroring how ParseProfile maps "uniform" to nil.
func Parse(spec string) (Policy, error) {
	switch spec {
	case "", "cap":
		return nil, nil
	case "throughput":
		return Throughput{}, nil
	case "adaptive":
		return Adaptive{Alpha: DefaultAlpha}, nil
	}
	if rest, ok := strings.CutPrefix(spec, "speculate:"); ok {
		r, err := strconv.Atoi(rest)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("sched: placement %q: want speculate:R with integer R >= 0", spec)
		}
		return Speculate{R: r}, nil
	}
	if rest, ok := strings.CutPrefix(spec, "adaptive:"); ok {
		a, err := strconv.ParseFloat(rest, 64)
		if err != nil || !(a >= 0) || a > 1 {
			return nil, fmt.Errorf("sched: placement %q: want adaptive[:ALPHA] with ALPHA in [0,1]", spec)
		}
		return Adaptive{Alpha: a}, nil
	}
	return nil, fmt.Errorf("sched: unknown placement %q (cap, throughput, speculate:R, adaptive[:ALPHA])", spec)
}
