package sched

import (
	"math"
	"testing"
)

func uniform(k int) Machines {
	m := Machines{CapShare: make([]float64, k), InvCost: make([]float64, k)}
	for i := 0; i < k; i++ {
		m.CapShare[i] = 1
		m.InvCost[i] = 2
	}
	return m
}

// TestPolicyShares pins each policy's share vector on the canonical machine
// descriptions: uniform, capacity-skewed (zipf-like), speed-skewed
// (straggler-like), and both at once.
func TestPolicyShares(t *testing.T) {
	straggler := uniform(4)
	straggler.InvCost[3] = 9 // speed 1/8: 8 + 1

	zipf := uniform(4)
	zipf.CapShare = []float64{1, 0.5, 0.25, 0.125}

	both := Machines{
		CapShare: []float64{1, 0.1, 1, 1},
		InvCost:  []float64{2, 2, 2, 18},
	}

	cases := []struct {
		name string
		pol  Policy
		m    Machines
		want []float64
	}{
		{"cap/uniform", Cap{}, uniform(4), []float64{1, 1, 1, 1}},
		{"cap/zipf", Cap{}, zipf, []float64{1, 0.5, 0.25, 0.125}},
		// Cap ignores speeds entirely: the straggler keeps a full share.
		{"cap/straggler", Cap{}, straggler, []float64{1, 1, 1, 1}},
		// Throughput on a uniform cluster is exactly Cap.
		{"throughput/uniform", Throughput{}, uniform(4), []float64{1, 1, 1, 1}},
		// Speed-skew only: the straggler's share is its relative speed 2/9.
		{"throughput/straggler", Throughput{}, straggler, []float64{1, 1, 1, 2.0 / 9}},
		// Capacity-skew only: throughput clips at the capacity share, so it
		// reduces to Cap (speeds are uniform, thr_i = 1 everywhere).
		{"throughput/zipf", Throughput{}, zipf, []float64{1, 0.5, 0.25, 0.125}},
		// Both: machine 1 is capacity-bound (0.1), machine 3 speed-bound (2/18).
		{"throughput/both", Throughput{}, both, []float64{1, 0.1, 1, 2.0 / 18}},
		// Speculate places exactly like Throughput.
		{"speculate/straggler", Speculate{R: 2}, straggler, []float64{1, 1, 1, 2.0 / 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.pol.Shares(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d shares, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if math.Abs(got[i]-tc.want[i]) > 1e-12 {
					t.Fatalf("share[%d] = %v, want %v (full: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestThroughputNeverExceedsCap: the clip min(cap, thr) bounds every raw
// share by the machine's capacity share, so a fast-but-small machine is
// never weighted beyond its memory. (This is a relative bound: after
// normalization the fast machines' fractions legitimately exceed Cap's —
// absolute caps are enforced by Exchange, not promised by the policy.)
func TestThroughputNeverExceedsCap(t *testing.T) {
	m := Machines{
		CapShare: []float64{1, 0.3, 0.05, 0.6},
		InvCost:  []float64{2, 3, 2, 40},
	}
	shares, err := Throughput{}.Shares(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if s > m.CapShare[i]+1e-15 {
			t.Fatalf("machine %d: throughput share %v exceeds capacity share %v", i, s, m.CapShare[i])
		}
		if !(s > 0) {
			t.Fatalf("machine %d: non-positive share %v", i, s)
		}
	}
}

// TestThroughputRejectsDegenerateCost: a non-positive or infinite per-word
// cost cannot be inverted into a throughput.
func TestThroughputRejectsDegenerateCost(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		m := uniform(3)
		m.InvCost[1] = bad
		if _, err := (Throughput{}).Shares(m); err == nil {
			t.Fatalf("InvCost %v accepted", bad)
		}
	}
}

// TestParse covers the CLI specs: defaults map to nil (like ParseProfile's
// "uniform"), the named policies parse, and malformed specs are rejected.
func TestParse(t *testing.T) {
	for _, spec := range []string{"", "cap"} {
		p, err := Parse(spec)
		if err != nil || p != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	p, err := Parse("throughput")
	if err != nil || p.Name() != "throughput" || p.Speculation() != 0 {
		t.Fatalf("Parse(throughput) = %v, %v", p, err)
	}
	p, err = Parse("speculate:3")
	if err != nil || p.Name() != "speculate:3" || p.Speculation() != 3 {
		t.Fatalf("Parse(speculate:3) = %v, %v", p, err)
	}
	p, err = Parse("speculate:0")
	if err != nil || p.Speculation() != 0 {
		t.Fatalf("Parse(speculate:0) = %v, %v", p, err)
	}
	for _, bad := range []string{"speculate", "speculate:", "speculate:-1", "speculate:x", "lpt", "cap:2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
