package sched

import (
	"math"
	"testing"
)

// FuzzParsePlacement fuzzes the placement-spec grammar (DESIGN.md §8/§10):
// Parse must never panic, and every accepted spec must round-trip — the
// policy's canonical Name() re-parses to an identical policy, so a policy
// that came off a CLI flag can always be reconstructed from the spec tag
// recorded in the bench artifacts.
func FuzzParsePlacement(f *testing.F) {
	for _, seed := range []string{
		"", "cap", "throughput",
		"speculate:0", "speculate:2", "speculate:-1", "speculate:2:3",
		"adaptive", "adaptive:0", "adaptive:0.25", "adaptive:1",
		"adaptive:1.5", "adaptive:-0.1", "adaptive:NaN", "adaptive:",
		"adaptive:1e-3", "bogus",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		pol, err := Parse(spec)
		if err != nil {
			if pol != nil {
				t.Fatalf("Parse(%q) returned policy %#v alongside error %v", spec, pol, err)
			}
			return
		}
		if pol == nil {
			// The capacity-proportional default: only the empty spec and
			// "cap" may resolve to it.
			if spec != "" && spec != "cap" {
				t.Fatalf("Parse(%q) silently resolved to the nil default policy", spec)
			}
			return
		}
		switch p := pol.(type) {
		case Speculate:
			if p.R < 0 {
				t.Fatalf("Parse(%q) accepted negative speculation dial %d", spec, p.R)
			}
		case Adaptive:
			if !(p.Alpha >= 0) || p.Alpha > 1 || math.IsNaN(p.Alpha) {
				t.Fatalf("Parse(%q) accepted EWMA gain %v outside [0,1]", spec, p.Alpha)
			}
		}
		name := pol.Name()
		pol2, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q) accepted, but its canonical Name %q does not re-parse: %v", spec, name, err)
		}
		if pol2 != pol {
			t.Fatalf("Parse(%q) = %#v, but re-parsing its Name %q = %#v", spec, pol, name, pol2)
		}
	})
}
