package sched

import (
	"fmt"
	"math"
	"strconv"

	"hetmpc/internal/metrics"
	"hetmpc/internal/trace"
)

// Adaptive is the online placement policy: Throughput's min-makespan split,
// but recomputed every round from measured per-word costs instead of the
// declared profile. An EWMA Estimator folds each round's trace-shaped
// observation (words moved, busy time per machine) into a per-machine cost
// estimate, and the simulator swaps the recomputed shares in at the round
// barrier — a snapshot-and-switch: every placement decision inside a round
// sees one consistent share vector, and the switch happens at the same
// serial point of every run, so adaptive runs stay bit-identical under any
// GOMAXPROCS (DESIGN.md §10).
//
// Before the first observation the estimate is the declared profile, so
// Shares — the static seed placement — is exactly Throughput's. Two exact
// degenerations anchor the policy (both golden-tested):
//
//   - Alpha = 0 freezes the estimator: est += 0·(measured − est) never
//     moves, every round recomputes the same shares, and the run is
//     bit-identical to static Throughput on any profile;
//   - a truthful profile measures back the declared costs exactly
//     (busy_i = w_i·cost_i, so busy_i/w_i = cost_i with no rounding when
//     the costs are integers), the EWMA is a fixed point, and adaptive is
//     again bit-identical to Throughput.
//
// Where the declared profile is wrong — misreported speeds, transient
// slowdown windows the fault plan opens mid-run — the estimate converges to
// the effective costs at rate Alpha per observed round, which is what E30
// and E31 measure. Adaptive never speculates (Speculation = 0); it moves
// future placement instead of mirroring the current round.
type Adaptive struct {
	// Alpha is the EWMA gain in [0,1]: est += Alpha·(measured − est) per
	// observed round. 0 freezes the declared estimate (static Throughput);
	// 1 trusts only the latest round. Parse fills DefaultAlpha for the bare
	// "adaptive" spec.
	Alpha float64
}

// DefaultAlpha is the EWMA gain of the bare "adaptive" CLI spec: halfway
// between the frozen estimator (0) and last-round-only (1), it converges to
// a 4× misreport within a couple of observed rounds while still damping
// single-round traffic noise.
const DefaultAlpha = 0.5

// Name implements Policy. The rendered form is the canonical spec:
// Parse(a.Name()) reproduces the policy exactly (fuzz-tested).
func (a Adaptive) Name() string {
	return "adaptive:" + strconv.FormatFloat(a.Alpha, 'g', -1, 64)
}

// Shares implements Policy: the static seed placement, computed from the
// declared profile exactly like Throughput (the estimator has seen nothing
// yet when New builds the cluster).
func (a Adaptive) Shares(m Machines) ([]float64, error) {
	return throughputShares(m, nil)
}

// Speculation implements Policy: Adaptive never mirrors shards.
func (a Adaptive) Speculation() int { return 0 }

// NewEstimator implements OnlinePolicy: an estimator seeded with the
// declared per-word costs, validated like Throughput's Shares.
func (a Adaptive) NewEstimator(m Machines) (*Estimator, error) {
	if !(a.Alpha >= 0) || a.Alpha > 1 {
		return nil, fmt.Errorf("sched: adaptive: alpha %v outside [0,1]", a.Alpha)
	}
	if _, err := throughputShares(m, nil); err != nil {
		return nil, err
	}
	e := &Estimator{
		alpha:    a.Alpha,
		capShare: append([]float64(nil), m.CapShare...),
		declared: append([]float64(nil), m.InvCost...),
		est:      append([]float64(nil), m.InvCost...),
	}
	return e, nil
}

// OnlinePolicy is a Policy whose shares adapt to per-round measurements:
// the simulator builds one Estimator per cluster, feeds it every exchange
// round's trace-shaped observation at the round barrier, and swaps the
// recomputed shares in before the next round's placement decisions
// (mpc.Cluster, DESIGN.md §10). Static policies simply don't implement it.
type OnlinePolicy interface {
	Policy
	NewEstimator(m Machines) (*Estimator, error)
}

// Estimator is the online half of an Adaptive policy: an EWMA per-machine
// per-word cost estimate, seeded with the declared profile and updated from
// trace.Round-shaped observations. It is not safe for concurrent use — the
// model is synchronous rounds, and the simulator observes on the round
// barrier, serially.
type Estimator struct {
	alpha    float64
	capShare []float64
	declared []float64 // declared per-word costs; the Reset target
	est      []float64 // EWMA per-word cost estimate, per small machine
	rounds   int       // observations folded in since the last Reset

	// Observability instruments (SetMetrics); nil = unmetered, the
	// zero-overhead default.
	resplits *metrics.Counter
	estDelta *metrics.Histogram
}

// SetMetrics publishes the estimator's activity through reg:
// sched_resplits_total counts share recomputations (every Shares call — one
// per observed round at the simulator's barrier, plus resets), and the
// sched_estimate_delta histogram records |measured − estimate| per machine
// per observation, the convergence signal of the EWMA. A nil reg leaves the
// estimator unmetered; the estimate arithmetic is identical either way.
func (e *Estimator) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	e.resplits = reg.Counter("sched_resplits_total")
	e.estDelta = reg.Histogram("sched_estimate_delta", metrics.ExpBuckets(1e-3, 10, 8))
}

// K returns the number of machines the estimator tracks.
func (e *Estimator) K() int { return len(e.est) }

// Alpha returns the EWMA gain.
func (e *Estimator) Alpha() float64 { return e.alpha }

// Rounds returns how many observations Observe has folded in since the
// last Reset.
func (e *Estimator) Rounds() int { return e.rounds }

// Estimate returns the current per-word cost estimate of small machine i.
func (e *Estimator) Estimate(i int) float64 { return e.est[i] }

// SetEstimate overrides machine i's cost estimate (tests drive the
// estimator to arbitrary EWMA states with it). The value must be positive
// and finite with a finite reciprocal — the invariant Observe maintains
// (a subnormal cost would overflow the throughput inversion in Shares).
func (e *Estimator) SetEstimate(i int, cost float64) error {
	if !(cost > 0) || math.IsInf(cost, 0) || math.IsInf(1/cost, 0) {
		return fmt.Errorf("sched: estimator: cost %v for machine %d, want positive finite", cost, i)
	}
	e.est[i] = cost
	return nil
}

// Reset restores the declared-profile estimate (the state of a freshly
// built estimator). The simulator calls it from ResetStats, so a reset run
// re-adapts from scratch exactly as if the cluster had been rebuilt.
func (e *Estimator) Reset() {
	copy(e.est, e.declared)
	e.rounds = 0
}

// Observe folds one exchange round into the estimate. r uses the trace
// slot convention (slot 0 = large machine, slot 1+i = small machine i);
// only SendWords, RecvWords and Busy are read, so the simulator can pass a
// scratch record without building a full trace. For each machine that
// moved words this round, the measured per-word cost busy/words updates the
// EWMA: est += alpha·(measured − est). Machines with no traffic keep their
// estimate — a silent machine carries no speed information. With alpha = 0
// the update is an exact no-op, preserving bit-identity with Throughput.
// The large machine (slot 0) is never estimated: it is the coordinator,
// not a placement target.
func (e *Estimator) Observe(r trace.Round) {
	observed := false
	for i := range e.est {
		slot := 1 + i
		if slot >= len(r.Busy) {
			break
		}
		var w int
		if slot < len(r.SendWords) {
			w += r.SendWords[slot]
		}
		if slot < len(r.RecvWords) {
			w += r.RecvWords[slot]
		}
		if w <= 0 || !(r.Busy[slot] > 0) {
			continue
		}
		measured := r.Busy[slot] / float64(w)
		e.estDelta.Observe(math.Abs(measured - e.est[i]))
		e.est[i] += e.alpha * (measured - e.est[i])
		observed = true
	}
	if observed {
		e.rounds++
	}
}

// Shares recomputes the throughput-style shares from the current estimate:
// share_i ∝ min(CapShare_i, 1/est_i normalized to the fastest machine) —
// the same formula, clip and float operations as Throughput.Shares, so an
// estimator still at its declared seed returns Throughput's shares
// bit-identically. dst is reused when it has the right length (the
// simulator passes its live share vector: snapshot-and-switch at the round
// barrier); otherwise a fresh slice is returned. Observe keeps every
// estimate positive and finite, so recomputation cannot fail.
func (e *Estimator) Shares(dst []float64) []float64 {
	e.resplits.Inc()
	shares, err := throughputShares(Machines{CapShare: e.capShare, InvCost: e.est}, dst)
	if err != nil {
		// Unreachable through Observe/SetEstimate, which guard positivity;
		// fail loudly rather than return a corrupt placement.
		panic(err)
	}
	return shares
}
