package sched

import (
	"math"
	"testing"

	"hetmpc/internal/trace"
)

// propFixtures are the canonical machine descriptions the property tests
// sweep: uniform, capacity-skewed (zipf-like), speed-skewed (bimodal- and
// straggler-like), and capacity+speed skew at once.
func propFixtures() []struct {
	name string
	m    Machines
} {
	zipf := uniform(4)
	zipf.CapShare = []float64{1, 0.5, 0.25, 0.125}

	bimodal := uniform(8)
	bimodal.InvCost[6], bimodal.InvCost[7] = 8, 8

	straggler := uniform(4)
	straggler.InvCost[3] = 9

	both := Machines{
		CapShare: []float64{1, 0.1, 1, 1},
		InvCost:  []float64{2, 2, 2, 18},
	}
	return []struct {
		name string
		m    Machines
	}{
		{"uniform", uniform(4)},
		{"zipf", zipf},
		{"bimodal", bimodal},
		{"straggler", straggler},
		{"both", both},
	}
}

// checkShareInvariants asserts the contract every share vector must satisfy
// regardless of policy or estimator state: one positive finite weight per
// machine, never above the machine's capacity share (the clip is exact, not
// approximate), and the normalized fractions summing to 1 within one ulp
// per machine.
func checkShareInvariants(t *testing.T, m Machines, shares []float64) {
	t.Helper()
	if len(shares) != len(m.CapShare) {
		t.Fatalf("got %d shares for %d machines", len(shares), len(m.CapShare))
	}
	total := 0.0
	for i, s := range shares {
		if !(s > 0) || math.IsInf(s, 0) {
			t.Fatalf("share[%d] = %v, want positive finite (full: %v)", i, s, shares)
		}
		if s > m.CapShare[i] {
			t.Fatalf("share[%d] = %v exceeds capacity share %v (full: %v)", i, s, m.CapShare[i], shares)
		}
		total += s
	}
	fracSum := 0.0
	for _, s := range shares {
		fracSum += s / total
	}
	if ulps := float64(len(shares)) * 0x1p-52; math.Abs(fracSum-1) > ulps {
		t.Fatalf("normalized fractions sum to %v, off 1 by %g > %g (one ulp per machine; full: %v)",
			fracSum, math.Abs(fracSum-1), ulps, shares)
	}
}

// TestSharesProperties sweeps every policy — including adaptive at its
// alpha extremes — over the canonical skew fixtures and asserts the share
// invariants on each result.
func TestSharesProperties(t *testing.T) {
	policies := []Policy{Cap{}, Throughput{}, Speculate{R: 0}, Speculate{R: 2},
		Adaptive{Alpha: 0}, Adaptive{Alpha: DefaultAlpha}, Adaptive{Alpha: 1}}
	for _, fix := range propFixtures() {
		for _, pol := range policies {
			t.Run(fix.name+"/"+pol.Name(), func(t *testing.T) {
				shares, err := pol.Shares(fix.m)
				if err != nil {
					t.Fatal(err)
				}
				checkShareInvariants(t, fix.m, shares)
			})
		}
	}
}

// TestEstimatorSharesProperties drives one estimator per fixture to several
// hundred arbitrary (but deterministic) EWMA states — per-machine cost
// overrides spanning 15 orders of magnitude, interleaved with trace-shaped
// observations — and asserts the share invariants after every step. This is
// the mid-run contract: whatever the measurements did to the estimate, the
// next round's placement weights are well-formed and capacity-clipped.
func TestEstimatorSharesProperties(t *testing.T) {
	mags := []float64{1e-6, 1e-3, 0.25, 1, 2, 3.75, 9, 1e3, 1e6, 1e9}
	for _, fix := range propFixtures() {
		t.Run(fix.name, func(t *testing.T) {
			est, err := Adaptive{Alpha: DefaultAlpha}.NewEstimator(fix.m)
			if err != nil {
				t.Fatal(err)
			}
			k := est.K()
			rng := uint64(1)
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			send := make([]int, k+1)
			busy := make([]float64, k+1)
			for step := 0; step < 400; step++ {
				if step%3 == 2 {
					// Every third step observes a synthetic round instead of
					// overriding directly: a few machines move words at
					// arbitrary measured costs.
					for slot := range send {
						send[slot], busy[slot] = 0, 0
					}
					for n := next(k) + 1; n > 0; n-- {
						slot := 1 + next(k)
						w := 1 + next(4096)
						send[slot] = w
						busy[slot] = float64(w) * mags[next(len(mags))]
					}
					est.Observe(trace.Round{SendWords: send, Busy: busy})
				} else if err := est.SetEstimate(next(k), mags[next(len(mags))]); err != nil {
					t.Fatal(err)
				}
				checkShareInvariants(t, fix.m, est.Shares(nil))
			}
		})
	}
}

// TestParseAdaptive covers the adaptive CLI specs: the bare form fills
// DefaultAlpha, explicit gains parse at both ends of [0,1], and malformed
// or out-of-range gains are rejected.
func TestParseAdaptive(t *testing.T) {
	p, err := Parse("adaptive")
	if err != nil || p.(Adaptive).Alpha != DefaultAlpha || p.Speculation() != 0 {
		t.Fatalf("Parse(adaptive) = %#v, %v", p, err)
	}
	for spec, alpha := range map[string]float64{
		"adaptive:0": 0, "adaptive:0.25": 0.25, "adaptive:0.5": 0.5, "adaptive:1": 1,
	} {
		p, err := Parse(spec)
		if err != nil || p.(Adaptive).Alpha != alpha {
			t.Fatalf("Parse(%q) = %#v, %v; want alpha %v", spec, p, err, alpha)
		}
		if p.Name() != spec {
			t.Fatalf("Parse(%q).Name() = %q", spec, p.Name())
		}
	}
	for _, bad := range []string{"adaptive:", "adaptive:-0.1", "adaptive:1.5",
		"adaptive:x", "adaptive:NaN", "adaptive:+Inf", "adaptive:0:1"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestAdaptiveStaticSharesMatchThroughput: the static seed placement of an
// adaptive policy (what New uses before any observation exists) is
// bit-identical to Throughput's on every fixture — same formula, same float
// operations.
func TestAdaptiveStaticSharesMatchThroughput(t *testing.T) {
	for _, fix := range propFixtures() {
		want, err := Throughput{}.Shares(fix.m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Adaptive{Alpha: DefaultAlpha}.Shares(fix.m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: adaptive seed share[%d] = %v, throughput %v", fix.name, i, got[i], want[i])
			}
		}
		est, err := Adaptive{Alpha: DefaultAlpha}.NewEstimator(fix.m)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range est.Shares(nil) {
			if s != want[i] {
				t.Fatalf("%s: estimator seed share[%d] = %v, throughput %v", fix.name, i, s, want[i])
			}
		}
	}
}

// TestEstimatorObserve pins the EWMA arithmetic: est += alpha·(busy/w −
// est) for every machine that moved words, silent machines keep their
// estimate, and the observation counter ticks once per observed round.
func TestEstimatorObserve(t *testing.T) {
	est, err := Adaptive{Alpha: 0.5}.NewEstimator(uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	// Both machines measure cost 3 (machine 0: 20 words / busy 60; machine
	// 1: 40 words / busy 120): est 2 → 2 + 0.5·(3−2) = 2.5.
	est.Observe(trace.Round{
		SendWords: []int{0, 10, 40},
		RecvWords: []int{0, 10, 0},
		Busy:      []float64{0, 60, 120},
	})
	if est.Estimate(0) != 2.5 || est.Estimate(1) != 2.5 || est.Rounds() != 1 {
		t.Fatalf("after round 1: est %v/%v, rounds %d", est.Estimate(0), est.Estimate(1), est.Rounds())
	}
	// Only machine 0 moves: 10 words at cost 8.5 → 2.5 + 0.5·6 = 5.5;
	// machine 1 is silent and keeps 2.5.
	est.Observe(trace.Round{
		SendWords: []int{0, 10, 0},
		Busy:      []float64{0, 85, 0},
	})
	if est.Estimate(0) != 5.5 || est.Estimate(1) != 2.5 || est.Rounds() != 2 {
		t.Fatalf("after round 2: est %v/%v, rounds %d", est.Estimate(0), est.Estimate(1), est.Rounds())
	}
	// An all-silent round (and a round with zero busy time) carries no
	// information: estimates and counter unchanged.
	est.Observe(trace.Round{SendWords: []int{0, 0, 0}, Busy: []float64{0, 0, 0}})
	est.Observe(trace.Round{SendWords: []int{0, 7, 0}, Busy: []float64{0, 0, 0}})
	// Short slices (a truncated scratch record) must not panic or observe.
	est.Observe(trace.Round{SendWords: []int{0, 9}, Busy: []float64{0}})
	est.Observe(trace.Round{})
	if est.Estimate(0) != 5.5 || est.Estimate(1) != 2.5 || est.Rounds() != 2 {
		t.Fatalf("after silent rounds: est %v/%v, rounds %d", est.Estimate(0), est.Estimate(1), est.Rounds())
	}
}

// TestEstimatorAlphaZero: a frozen estimator (alpha 0) never moves off the
// declared costs no matter what it observes — the exact no-op that makes
// adaptive:0 bit-identical to static throughput.
func TestEstimatorAlphaZero(t *testing.T) {
	m := propFixtures()[3].m // straggler
	est, err := Adaptive{Alpha: 0}.NewEstimator(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Throughput{}.Shares(m)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		est.Observe(trace.Round{
			SendWords: []int{0, 100, 100, 100, 100},
			Busy:      []float64{0, 1e6, 7, 1e-3, 4242},
		})
	}
	if est.Rounds() != 5 {
		t.Fatalf("rounds %d, want 5 (alpha 0 still observes, it just never moves)", est.Rounds())
	}
	for i := 0; i < est.K(); i++ {
		if est.Estimate(i) != m.InvCost[i] {
			t.Fatalf("est[%d] = %v moved off declared %v under alpha 0", i, est.Estimate(i), m.InvCost[i])
		}
	}
	for i, s := range est.Shares(nil) {
		if s != want[i] {
			t.Fatalf("share[%d] = %v, throughput %v", i, s, want[i])
		}
	}
}

// TestEstimatorReset: Reset restores the declared seed exactly — the state
// of a freshly built estimator — so a ResetStats replay re-adapts from
// scratch.
func TestEstimatorReset(t *testing.T) {
	m := propFixtures()[4].m // both
	est, err := Adaptive{Alpha: 1}.NewEstimator(m)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(trace.Round{SendWords: []int{0, 10, 10, 10, 10}, Busy: []float64{0, 10, 20, 30, 40}})
	if err := est.SetEstimate(2, 1e6); err != nil {
		t.Fatal(err)
	}
	est.Reset()
	if est.Rounds() != 0 {
		t.Fatalf("rounds %d after Reset", est.Rounds())
	}
	want, err := Throughput{}.Shares(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < est.K(); i++ {
		if est.Estimate(i) != m.InvCost[i] {
			t.Fatalf("est[%d] = %v after Reset, declared %v", i, est.Estimate(i), m.InvCost[i])
		}
	}
	for i, s := range est.Shares(nil) {
		if s != want[i] {
			t.Fatalf("share[%d] = %v after Reset, throughput %v", i, s, want[i])
		}
	}
}

// TestEstimatorRejects: out-of-range gains and degenerate machine
// descriptions fail at construction; degenerate cost overrides fail at
// SetEstimate. Nothing may reach Shares with an uninvertible estimate.
func TestEstimatorRejects(t *testing.T) {
	for _, alpha := range []float64{-0.1, 1.5, math.NaN(), math.Inf(1)} {
		if _, err := (Adaptive{Alpha: alpha}.NewEstimator(uniform(3))); err == nil {
			t.Fatalf("alpha %v accepted", alpha)
		}
	}
	bad := uniform(3)
	bad.InvCost[1] = 0
	if _, err := (Adaptive{Alpha: 0.5}.NewEstimator(bad)); err == nil {
		t.Fatal("zero declared cost accepted")
	}
	est, err := Adaptive{Alpha: 0.5}.NewEstimator(uniform(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, cost := range []float64{0, -1, math.NaN(), math.Inf(1), 1e-320} {
		if err := est.SetEstimate(0, cost); err == nil {
			t.Fatalf("SetEstimate(0, %v) accepted", cost)
		}
	}
	if est.Estimate(0) != 2 {
		t.Fatalf("rejected overrides moved the estimate to %v", est.Estimate(0))
	}
}
