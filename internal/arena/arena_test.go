package arena

import (
	"sync"
	"testing"
)

// lcg is a tiny deterministic generator so the property tests fuzz sizes
// without importing the engine's rng (no Date/rand dependence in tests that
// pin allocation behavior).
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// TestArenaReuseMatchesFresh is the arena contract's property test: across
// Reset cycles with fuzzed allocation sizes, a value built from arena views
// is bit-identical to one built from fresh make() slices fed the same
// writes. Exercised over several chunk sizes so carving crosses slab
// boundaries, hits oversized dedicated slabs, and reuses mixed-size slabs
// out of order.
func TestArenaReuseMatchesFresh(t *testing.T) {
	for _, chunk := range []int{1, 3, 16, 128} {
		a := New[int64](chunk)
		rng := lcg(uint64(chunk) * 0x9E3779B97F4A7C15)
		for cycle := 0; cycle < 50; cycle++ {
			views := make([][]int64, 0, 32)
			fresh := make([][]int64, 0, 32)
			nAllocs := 1 + rng.intn(31)
			for i := 0; i < nAllocs; i++ {
				n := rng.intn(3 * chunk)
				v, f := a.Alloc(n), make([]int64, n)
				if len(v) != n || cap(v) != n {
					t.Fatalf("chunk %d cycle %d: Alloc(%d) returned len %d cap %d", chunk, cycle, n, len(v), cap(v))
				}
				for j := range v {
					x := int64(rng.next() >> 1)
					v[j], f[j] = x, x
				}
				views, fresh = append(views, v), append(fresh, f)
			}
			// Every view must still hold exactly its writes — i.e. later
			// Allocs didn't alias or move earlier views, and the post-Reset
			// zeroing didn't leak stale contents in.
			for i := range views {
				for j := range views[i] {
					if views[i][j] != fresh[i][j] {
						t.Fatalf("chunk %d cycle %d: view %d[%d] = %d, fresh %d", chunk, cycle, i, j, views[i][j], fresh[i][j])
					}
				}
			}
			a.Reset()
			if a.Used() != 0 {
				t.Fatalf("Used() = %d after Reset", a.Used())
			}
		}
	}
}

// TestArenaViewsAreCapClamped pins the no-clobber guarantee: appending past
// a view's length lands in a fresh backing array, never in the neighbor.
func TestArenaViewsAreCapClamped(t *testing.T) {
	a := New[int32](64)
	v1 := a.Alloc(4)
	v2 := a.Alloc(4)
	for i := range v1 {
		v1[i] = 1
	}
	for i := range v2 {
		v2[i] = 2
	}
	_ = append(v1, 99) // must copy out, not overwrite v2[0]
	if v2[0] != 2 {
		t.Fatalf("append past a view clobbered its neighbor: v2[0] = %d", v2[0])
	}
}

// TestArenaZeroLengthAlloc pins the zero-length semantics: nil before the
// first slab exists (matching a nil slice), empty non-nil afterwards
// (matching a warm decoder arena) — the wire decoder depends on this.
func TestArenaZeroLengthAlloc(t *testing.T) {
	a := New[uint64](8)
	if v := a.Alloc(0); v != nil {
		t.Fatalf("Alloc(0) on a virgin arena = %v, want nil", v)
	}
	a.Alloc(1)
	if v := a.Alloc(0); v == nil || len(v) != 0 {
		t.Fatalf("Alloc(0) on a warm arena = %v (nil=%v), want empty non-nil", v, v == nil)
	}
}

// TestArenaSteadyStateAllocs pins the zeroalloc contract: once the
// high-water mark is reached, a Reset/Alloc cycle performs zero heap
// allocations.
func TestArenaSteadyStateAllocs(t *testing.T) {
	a := New[int64](256)
	cycle := func() {
		a.Reset()
		for i := 0; i < 8; i++ {
			v := a.Alloc(100)
			v[0] = int64(i)
		}
	}
	cycle() // warm to the high-water mark
	if got := testing.AllocsPerRun(100, cycle); got != 0 {
		t.Fatalf("steady-state Reset/Alloc cycle allocates %v times per run, want 0", got)
	}
}

// TestArenaCleanTailIsZero pins the dirty-watermark short-circuit: Alloc
// skips the clearing pass for slab memory no previous cycle handed out, so
// interleavings of AllocUninit garbage, Reset and Alloc across the
// watermark must still always yield zeroed Alloc views.
func TestArenaCleanTailIsZero(t *testing.T) {
	a := New[int64](64)
	u := a.AllocUninit(10)
	for i := range u {
		u[i] = -1 // dirty the first 10 elements
	}
	a.Reset()
	// Straddles the watermark: [0,10) needs the clear, [10,20) is clean.
	v := a.Alloc(20)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("post-Reset Alloc view dirty at [%d]: %d", i, x)
		}
	}
	for i := range v {
		v[i] = -2
	}
	a.Reset()
	// Now the full 20 are dirty; a larger window straddles again.
	w := a.Alloc(40)
	for i, x := range w {
		if x != 0 {
			t.Fatalf("second-cycle Alloc view dirty at [%d]: %d", i, x)
		}
	}
}

// TestArenaDropReleasesCapacity verifies the mid-run reset path: Drop
// surrenders the slabs and the arena grows back from scratch.
func TestArenaDropReleasesCapacity(t *testing.T) {
	a := New[byte](512)
	a.Alloc(1000)
	if a.Cap() == 0 {
		t.Fatal("Cap() = 0 after Alloc")
	}
	a.Drop()
	if a.Cap() != 0 || a.Used() != 0 {
		t.Fatalf("Drop left Cap=%d Used=%d", a.Cap(), a.Used())
	}
	v := a.Alloc(10)
	if len(v) != 10 {
		t.Fatalf("post-Drop Alloc returned len %d", len(v))
	}
}

// TestArenaConcurrentPerGoroutine runs one arena per goroutine under -race:
// the documented concurrency contract is per-goroutine ownership, and this
// is the regression net that the package keeps no hidden shared state.
func TestArenaConcurrentPerGoroutine(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := New[uint32](64)
			rng := lcg(uint64(g + 1))
			for cycle := 0; cycle < 200; cycle++ {
				views := make([][]uint32, 0, 8)
				for i := 0; i < 8; i++ {
					v := a.Alloc(rng.intn(200))
					for j := range v {
						v[j] = uint32(g)<<16 | uint32(i)<<8 | uint32(j)
					}
					views = append(views, v)
				}
				for i, v := range views {
					for j := range v {
						if want := uint32(g)<<16 | uint32(i)<<8 | uint32(j); v[j] != want {
							errs[g] = "corrupted view"
							return
						}
					}
				}
				a.Reset()
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Fatalf("goroutine %d: %s", g, e)
		}
	}
}

// FuzzArenaAllocSizes drives the arena with arbitrary byte-derived size
// sequences and checks the cap-clamp and zeroing invariants hold for every
// view on every cycle.
func FuzzArenaAllocSizes(f *testing.F) {
	f.Add([]byte{1, 0, 255, 7}, uint8(3))
	f.Add([]byte{16, 16, 16}, uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, sizes []byte, chunk uint8) {
		a := New[int16](int(chunk))
		for cycle := 0; cycle < 3; cycle++ {
			views := make([][]int16, 0, len(sizes))
			for _, b := range sizes {
				n := int(b)
				v := a.Alloc(n)
				if len(v) != n || cap(v) != n {
					t.Fatalf("Alloc(%d): len %d cap %d", n, len(v), cap(v))
				}
				for j := range v {
					if v[j] != 0 {
						t.Fatalf("Alloc returned dirty memory at [%d]: %d", j, v[j])
					}
					v[j] = int16(len(views) + 1)
				}
				views = append(views, v)
			}
			for i, v := range views {
				for j := range v {
					if v[j] != int16(i+1) {
						t.Fatalf("view %d[%d] corrupted: %d", i, j, v[j])
					}
				}
			}
			a.Reset()
		}
	})
}
