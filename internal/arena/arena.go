// Package arena provides a typed slab allocator for the engine's hot paths:
// per-round scratch that is carved from a few large slabs, handed out as
// capacity-clamped views, and reclaimed wholesale with Reset instead of
// being garbage collected piecemeal.
//
// The contract (DESIGN.md §14):
//
//   - Alloc(n) returns a zeroed view of exactly n elements with cap == n,
//     so caller-side appends can never clobber a neighboring view.
//   - Views stay valid until the next Reset: slabs are chunked, never
//     reallocated, so later Allocs cannot move earlier ones.
//   - Reset rewinds the arena to empty while retaining every slab, so a
//     steady-state round allocates nothing once the high-water mark is
//     reached (the cap()-guarded growth idiom the zeroalloc analyzer
//     sanctions).
//   - An Arena is not safe for concurrent use; use one per goroutine.
//
// Bit-identity: a value built from Alloc views is indistinguishable from
// one built from fresh make() slices — Alloc zeroes the returned window —
// which is what lets the engine adopt arenas under golden suites that pin
// results bit-for-bit (see TestArenaReuseMatchesFresh).
package arena

// An Arena hands out []T views carved from chunked slabs.
//
// The zero value is ready to use with a default slab size; New sets an
// explicit per-slab element count (rounded up per oversized request).
type Arena[T any] struct {
	slabs [][]T
	dirty []int // per-slab high-water offset ever handed out (survives Reset)
	cur   int   // index of the slab Alloc carves from
	off   int   // elements of slabs[cur] already handed out
	chunk int   // slab size floor, in elements
	used  int   // elements handed out since the last Reset
}

// DefaultChunk is the slab size floor (in elements) of a zero-value Arena.
const DefaultChunk = 1024

// New returns an arena whose slabs hold at least chunk elements each.
func New[T any](chunk int) *Arena[T] {
	if chunk < 1 {
		chunk = 1
	}
	return &Arena[T]{chunk: chunk}
}

// Alloc returns a zeroed n-element view with cap n. The view stays valid
// until the next Reset. n == 0 returns a zero-length view of the current
// slab (nil before the first slab exists), matching the semantics of a
// fresh zero-length make.
//
//hetlint:zeroalloc steady-state Alloc reuses warm slabs; growth is the sanctioned cap()-guarded idiom (pinned by TestArenaSteadyStateAllocs)
func (a *Arena[T]) Alloc(n int) []T {
	s, slab, start := a.carve(n)
	if slab < 0 {
		return s
	}
	// Clear only the prefix a previous cycle dirtied: make() delivered the
	// slab zeroed, so memory past the slab's all-time high-water mark has
	// never been written and needs no pass (the dominant cost of bulk
	// sketch allocation before this short-circuit; TestArenaCleanTailIsZero
	// pins the correctness side).
	if d := a.dirty[slab]; start < d {
		end := d - start
		if end > n {
			end = n
		}
		clear(s[:end])
	}
	if start+n > a.dirty[slab] {
		a.dirty[slab] = start + n
	}
	return s
}

// AllocUninit is Alloc without the zeroing pass: the returned view holds
// whatever the slab last held, so the caller must overwrite all n elements
// before reading any. Decoders that fill every element use it to skip the
// redundant clear.
//
//hetlint:zeroalloc steady-state Alloc reuses warm slabs; growth is the sanctioned cap()-guarded idiom (pinned by TestArenaSteadyStateAllocs)
func (a *Arena[T]) AllocUninit(n int) []T {
	s, slab, start := a.carve(n)
	if slab >= 0 && start+n > a.dirty[slab] {
		a.dirty[slab] = start + n
	}
	return s
}

// carve hands out the next n-element window: the view, the slab it came
// from and the start offset within it (slab -1 for the zero-length case).
//
//hetlint:zeroalloc steady-state Alloc reuses warm slabs; growth is the sanctioned cap()-guarded idiom (pinned by TestArenaSteadyStateAllocs)
func (a *Arena[T]) carve(n int) ([]T, int, int) {
	if n < 0 {
		panic("arena: negative Alloc") // programming error, not data error
	}
	if n == 0 {
		if a.cur < len(a.slabs) {
			s := a.slabs[a.cur]
			return s[a.off:a.off:a.off], -1, 0
		}
		return nil, -1, 0
	}
	if a.cur >= len(a.slabs) || a.off+n > cap(a.slabs[a.cur]) {
		a.advance(n)
	}
	start := a.off
	s := a.slabs[a.cur][start : start+n : start+n]
	a.off += n
	a.used += n
	return s, a.cur, start
}

// advance moves to the next slab able to hold n elements, appending a new
// slab only past the high-water mark. Slabs grow geometrically — each new
// slab is at least as large as the arena's total existing capacity, with
// chunk as the floor — so a small cluster pays only for small slabs while
// a large run reaches its footprint in O(log) allocations. Oversized
// requests get a slab of exactly n elements so they reuse cleanly.
func (a *Arena[T]) advance(n int) {
	if a.cur < len(a.slabs) && a.off > 0 {
		a.cur++ // abandon the tail of the active slab
	}
	for a.cur < len(a.slabs) {
		if n <= cap(a.slabs[a.cur]) {
			a.off = 0
			return
		}
		a.cur++ // too small for this request; later requests may fit it
	}
	size := a.chunk
	if size < 1 {
		size = DefaultChunk
	}
	if total := a.Cap(); size < total {
		size = total // geometric growth: double the footprint per new slab
	}
	if size < n {
		size = n
	}
	a.slabs = append(a.slabs, make([]T, size))
	a.dirty = append(a.dirty, 0)
	a.cur = len(a.slabs) - 1
	a.off = 0
}

// Reset rewinds the arena: every view handed out since the previous Reset
// becomes invalid, every slab is retained for reuse. Alloc zeroes on the
// way out, so stale contents can never leak into a post-Reset view.
func (a *Arena[T]) Reset() {
	a.cur, a.off, a.used = 0, 0, 0
}

// Used returns the number of elements handed out since the last Reset.
func (a *Arena[T]) Used() int { return a.used }

// Cap returns the total element capacity across all slabs — the arena's
// high-water footprint.
func (a *Arena[T]) Cap() int {
	total := 0
	for _, s := range a.slabs {
		total += cap(s)
	}
	return total
}

// Drop releases every slab to the garbage collector. Unlike Reset it
// surrenders the high-water capacity: the next Alloc starts growing from
// scratch. Clusters call it when they are reset mid-run so scratch memory
// is returned rather than leaked into the next, possibly smaller, run.
func (a *Arena[T]) Drop() {
	a.slabs, a.dirty, a.cur, a.off, a.used = nil, nil, 0, 0, 0
}
