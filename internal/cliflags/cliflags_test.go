package cliflags

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetmpc/internal/metrics"
	"hetmpc/internal/trace"
)

func sampleRounds() []trace.Round {
	return []trace.Round{
		{Round: 1, Phase: "mst/contract", Kind: "exchange", Words: 64, Latency: 1, MaxTime: 2, Makespan: 3, Argmax: 0},
		{Round: 2, Phase: "mst/contract", Kind: "barrier", Latency: 1, Makespan: 1, Argmax: trace.None},
	}
}

func TestRegisterInstallsEveryModelFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	m := Register(fs, " applied to every experiment cluster")
	for _, name := range []string{"profile", "faults", "placement", "transport", "trace"} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if name != "trace" && !strings.Contains(f.Usage, "applied to every experiment cluster") {
			t.Errorf("-%s usage lost the scope suffix: %q", name, f.Usage)
		}
	}
	err := fs.Parse([]string{
		"-profile", "zipf:1.1", "-faults", "ckpt:8", "-placement", "adaptive",
		"-transport", "pipe", "-trace",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Model{Profile: "zipf:1.1", Faults: "ckpt:8", Placement: "adaptive", Transport: "pipe", Trace: true}
	if *m != want {
		t.Errorf("parsed model = %+v, want %+v", *m, want)
	}
}

func TestRegisterObsInstallsEveryObsFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObs(fs)
	for _, name := range []string{"metrics", "traceout", "cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-metrics", "-", "-traceout", "t.jsonl"}); err != nil {
		t.Fatal(err)
	}
	if o.Metrics != "-" || o.TraceOut != "t.jsonl" || o.CPUProfile != "" || o.MemProfile != "" {
		t.Errorf("parsed obs = %+v", *o)
	}
}

// Tracing: -traceout alone must imply a collector, exactly as its help text
// promises.
func TestTracingImpliedByTraceOut(t *testing.T) {
	cases := []struct {
		trace    bool
		traceOut string
		want     bool
	}{
		{false, "", false},
		{true, "", true},
		{false, "out.jsonl", true},
		{true, "out.json", true},
	}
	for _, c := range cases {
		m := &Model{Trace: c.trace}
		o := &Obs{TraceOut: c.traceOut}
		if got := o.Tracing(m); got != c.want {
			t.Errorf("Tracing(trace=%v, traceout=%q) = %v, want %v", c.trace, c.traceOut, got, c.want)
		}
	}
}

// WriteTraceFile picks the format by extension: .jsonl streams the
// schema-stamped record format, anything else renders Chrome trace-event
// JSON for Perfetto.
func TestWriteTraceFileFormatByExtension(t *testing.T) {
	dir := t.TempDir()

	jl := filepath.Join(dir, "run.jsonl")
	if err := WriteTraceFile(jl, sampleRounds()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jl)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatalf("ReadJSONL on WriteTraceFile(.jsonl) output: %v", err)
	}
	if len(rounds) != 2 || rounds[0].Phase != "mst/contract" {
		t.Errorf("round-tripped %d rounds, first phase %q", len(rounds), rounds[0].Phase)
	}

	pf := filepath.Join(dir, "run.json")
	if err := WriteTraceFile(pf, sampleRounds()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	var pf2 struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &pf2); err != nil {
		t.Fatalf("non-.jsonl output is not trace-event JSON: %v", err)
	}
	if len(pf2.TraceEvents) == 0 {
		t.Error("Perfetto export has no traceEvents")
	}
	if strings.HasPrefix(string(data), `{"format":`) {
		t.Error("non-.jsonl path emitted the JSONL header")
	}
}

// The "-" convention must hit stdout and must not close it. "-" has no
// .jsonl suffix, so the extension rule renders trace-event JSON.
func TestWriteTraceFileStdout(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	werr := WriteTraceFile("-", sampleRounds())
	os.Stdout = old
	w.Close()
	if werr != nil {
		t.Fatalf("WriteTraceFile(-): %v", werr)
	}
	raw, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	var pf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &pf); err != nil {
		t.Fatalf("stdout stream is not trace-event JSON: %v\nstream:\n%s", err, raw)
	}
	if len(pf.TraceEvents) == 0 {
		t.Error("stdout export has no traceEvents")
	}
	// Stdout must survive the "close": a second write has to succeed.
	os.Stdout = w2Reopen(t)
	defer func() { os.Stdout = old }()
	if err := WriteTraceFile("-", sampleRounds()); err != nil {
		t.Fatalf("second WriteTraceFile(-) after the first close: %v", err)
	}
}

// w2Reopen hands the test a throwaway stdout target.
func w2Reopen(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestWriteMetricsFile(t *testing.T) {
	reg := metrics.New()
	reg.Counter("cliflags_test_total").Add(3)

	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteMetricsFile(path, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "cliflags_test_total") {
		t.Errorf("snapshot JSON lost the counter: %s", data)
	}
}

// Unwritable targets must surface as errors, not silent drops.
func TestUnwritableTargets(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out")
	if err := WriteMetricsFile(bad, nil); err == nil {
		t.Error("WriteMetricsFile to a missing directory returned nil")
	}
	if err := WriteTraceFile(bad+".jsonl", nil); err == nil {
		t.Error("WriteTraceFile to a missing directory returned nil")
	}
	o := &Obs{CPUProfile: bad}
	if _, err := o.StartProfiles(); err == nil {
		t.Error("StartProfiles with an unwritable -cpuprofile returned nil")
	}
}

func TestStartProfilesNoFlagsIsNoop(t *testing.T) {
	o := &Obs{}
	stop, err := o.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	o := &Obs{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	stop, err := o.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.CPUProfile, o.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
