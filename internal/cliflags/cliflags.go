// Package cliflags is the single source of the cross-cutting model flags
// shared by cmd/hetbench and cmd/hetrun: -profile, -faults, -placement,
// -transport and -trace. The two commands used to duplicate the spec-syntax help strings
// and they drifted once already; both now register through Register, so the
// option syntax cannot diverge again and a new cross-cutting flag lands in
// both commands by construction.
package cliflags

import "flag"

// Spec-syntax fragments, shared verbatim by every command's help text.
const (
	// ProfileSyntax is the mpc.ParseProfile spec grammar.
	ProfileSyntax = "uniform, zipf:S[:FLOOR], bimodal:SLOWFRAC:FACTOR, straggler:N:SLOWDOWN, custom:I=SPEED,..."
	// FaultsSyntax is the fault.ParsePlan spec grammar.
	FaultsSyntax = "+-joined ckpt:I, crash:R:M[:K], rate:P[:SEED], slow:M:FROM:TO:FACTOR, restart:K (e.g. ckpt:8+rate:0.002)"
	// PlacementSyntax is the sched.Parse spec grammar.
	PlacementSyntax = "cap, throughput, speculate:R, adaptive[:ALPHA]"
	// TransportSyntax is the wire.Parse spec grammar (DESIGN.md §11).
	TransportSyntax = "inproc (shared memory), pipe (socketpair), tcp (loopback)"
	// TraceHelp describes the -trace toggle (DESIGN.md §9).
	TraceHelp = "collect the per-round trace timeline (phase spans, per-round makespan contributions, bottleneck machines); never changes the measured stats"
)

// Model holds the parsed cross-cutting model flags.
type Model struct {
	Profile   string
	Faults    string
	Placement string
	Transport string
	Trace     bool
}

// Register installs the shared model flags on fs. scope is appended to the
// flag nouns to say what the spec applies to (hetbench: " applied to every
// experiment cluster"; hetrun: ""), keeping each command's phrasing while
// sharing the one syntax string.
func Register(fs *flag.FlagSet, scope string) *Model {
	m := &Model{}
	fs.StringVar(&m.Profile, "profile", "", "machine profile"+scope+": "+ProfileSyntax)
	fs.StringVar(&m.Faults, "faults", "", "fault plan"+scope+": "+FaultsSyntax)
	fs.StringVar(&m.Placement, "placement", "", "placement policy"+scope+": "+PlacementSyntax)
	fs.StringVar(&m.Transport, "transport", "", "Exchange transport"+scope+": "+TransportSyntax)
	fs.BoolVar(&m.Trace, "trace", false, TraceHelp)
	return m
}
