// Package cliflags is the single source of the cross-cutting model flags
// shared by cmd/hetbench and cmd/hetrun: -profile, -faults, -placement,
// -transport and -trace. The two commands used to duplicate the spec-syntax help strings
// and they drifted once already; both now register through Register, so the
// option syntax cannot diverge again and a new cross-cutting flag lands in
// both commands by construction.
//
// The observability flags (-metrics, -traceout, -cpuprofile, -memprofile)
// follow the same rule through RegisterObs: one definition, every command.
// The helpers WriteMetricsFile, WriteTraceFile and Obs.StartProfiles carry
// the shared output conventions ("-" = stdout, trace format by extension)
// so the commands cannot diverge on those either.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hetmpc/internal/metrics"
	"hetmpc/internal/trace"
)

// Spec-syntax fragments, shared verbatim by every command's help text.
const (
	// ProfileSyntax is the mpc.ParseProfile spec grammar.
	ProfileSyntax = "uniform, zipf:S[:FLOOR], bimodal:SLOWFRAC:FACTOR, straggler:N:SLOWDOWN, custom:I=SPEED,..."
	// FaultsSyntax is the fault.ParsePlan spec grammar.
	FaultsSyntax = "+-joined ckpt:I, crash:R:M[:K], rate:P[:SEED], slow:M:FROM:TO:FACTOR, restart:K (e.g. ckpt:8+rate:0.002)"
	// PlacementSyntax is the sched.Parse spec grammar.
	PlacementSyntax = "cap, throughput, speculate:R, adaptive[:ALPHA]"
	// TransportSyntax is the wire.Parse spec grammar (DESIGN.md §11).
	TransportSyntax = "inproc (shared memory), pipe (socketpair), tcp (loopback)"
	// TraceHelp describes the -trace toggle (DESIGN.md §9).
	TraceHelp = "collect the per-round trace timeline (phase spans, per-round makespan contributions, bottleneck machines); never changes the measured stats"
)

// Model holds the parsed cross-cutting model flags.
type Model struct {
	Profile   string
	Faults    string
	Placement string
	Transport string
	Trace     bool
}

// Register installs the shared model flags on fs. scope is appended to the
// flag nouns to say what the spec applies to (hetbench: " applied to every
// experiment cluster"; hetrun: ""), keeping each command's phrasing while
// sharing the one syntax string.
func Register(fs *flag.FlagSet, scope string) *Model {
	m := &Model{}
	fs.StringVar(&m.Profile, "profile", "", "machine profile"+scope+": "+ProfileSyntax)
	fs.StringVar(&m.Faults, "faults", "", "fault plan"+scope+": "+FaultsSyntax)
	fs.StringVar(&m.Placement, "placement", "", "placement policy"+scope+": "+PlacementSyntax)
	fs.StringVar(&m.Transport, "transport", "", "Exchange transport"+scope+": "+TransportSyntax)
	fs.BoolVar(&m.Trace, "trace", false, TraceHelp)
	return m
}

// Observability flag help, shared verbatim (DESIGN.md §12).
const (
	// MetricsHelp describes -metrics: the engine metrics snapshot target.
	MetricsHelp = "write the engine metrics snapshot (counters, gauges, histograms) as JSON to this file; '-' = stdout; metrics observe, they never change the measured stats"
	// TraceOutHelp describes -traceout: the raw trace export target; the
	// extension picks the format.
	TraceOutHelp = "write the per-round trace to this file: .jsonl = streaming JSONL, anything else = Chrome trace-event JSON (load in Perfetto/chrome://tracing); implies -trace"
	// CPUProfileHelp / MemProfileHelp describe the pprof capture flags.
	CPUProfileHelp = "write a CPU profile to this file (inspect with go tool pprof)"
	MemProfileHelp = "write a heap profile to this file at exit (inspect with go tool pprof)"
)

// Obs holds the parsed observability flags.
type Obs struct {
	Metrics    string
	TraceOut   string
	CPUProfile string
	MemProfile string
}

// RegisterObs installs the shared observability flags on fs.
func RegisterObs(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.Metrics, "metrics", "", MetricsHelp)
	fs.StringVar(&o.TraceOut, "traceout", "", TraceOutHelp)
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", CPUProfileHelp)
	fs.StringVar(&o.MemProfile, "memprofile", "", MemProfileHelp)
	return o
}

// Tracing reports whether the run needs a trace collector: either the user
// asked for the timeline summary (-trace) or for a trace export (-traceout).
func (o *Obs) Tracing(model *Model) bool {
	return model.Trace || o.TraceOut != ""
}

// StartProfiles begins the pprof captures o asks for and returns the stop
// function to defer: it stops the CPU profile and writes the heap profile
// (after a final GC, so the profile shows live objects rather than garbage).
// With neither flag set it is a no-op pair.
func (o *Obs) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if o.CPUProfile != "" {
		cpu, err = os.Create(o.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if o.MemProfile != "" {
			f, err := os.Create(o.MemProfile)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// openOut resolves the "-" = stdout convention. The returned close func is a
// no-op for stdout (the process owns that descriptor).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// WriteMetricsFile writes a metrics snapshot as schema-stamped JSON to path
// ("-" = stdout).
func WriteMetricsFile(path string, samples []metrics.Sample) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteSamples(w, samples); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

// WriteTraceFile writes a recorded timeline to path ("-" = stdout) in the
// format the extension names: ".jsonl" streams the schema-stamped JSONL
// record format (trace.WriteJSONL), anything else renders the Chrome
// trace-event JSON that Perfetto and chrome://tracing load directly.
func WriteTraceFile(path string, rounds []trace.Round) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = trace.WriteJSONL(w, rounds)
	} else {
		err = trace.WritePerfetto(w, rounds)
	}
	if err != nil {
		closeFn()
		return fmt.Errorf("%s: %w", path, err)
	}
	return closeFn()
}
