package unionfind

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(5)
	if d.Count() != 5 {
		t.Fatalf("Count = %d, want 5", d.Count())
	}
	if !d.Union(0, 1) {
		t.Fatal("first Union(0,1) should merge")
	}
	if d.Union(0, 1) {
		t.Fatal("second Union(0,1) should be a no-op")
	}
	if !d.Same(0, 1) {
		t.Fatal("0 and 1 should be in the same set")
	}
	if d.Same(0, 2) {
		t.Fatal("0 and 2 should be in different sets")
	}
	if d.Count() != 4 {
		t.Fatalf("Count = %d, want 4", d.Count())
	}
	d.Union(2, 3)
	d.Union(1, 3)
	if !d.Same(0, 2) {
		t.Fatal("transitive merge failed")
	}
	if d.Count() != 2 {
		t.Fatalf("Count = %d, want 2", d.Count())
	}
}

func TestLabelsConsistent(t *testing.T) {
	d := New(10)
	d.Union(0, 5)
	d.Union(5, 9)
	d.Union(2, 3)
	labels := d.Labels()
	if labels[0] != labels[5] || labels[5] != labels[9] {
		t.Fatalf("labels of merged set differ: %v", labels)
	}
	if labels[2] != labels[3] {
		t.Fatalf("labels of merged set differ: %v", labels)
	}
	if labels[0] == labels[2] {
		t.Fatal("labels of different sets collide")
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != d.Count() {
		t.Fatalf("distinct labels %d != Count %d", len(seen), d.Count())
	}
}

func TestReset(t *testing.T) {
	d := New(4)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Reset()
	if d.Count() != 4 {
		t.Fatalf("Count after Reset = %d, want 4", d.Count())
	}
	if d.Same(0, 1) {
		t.Fatal("sets survived Reset")
	}
}

// TestAgainstNaive cross-checks DSU behaviour against a quadratic reference
// implementation on random union sequences.
func TestAgainstNaive(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		d := New(n)
		ref := make([]int, n) // ref[i] = naive component label
		for i := range ref {
			ref[i] = i
		}
		for op := 0; op < 100; op++ {
			a, b := rng.IntN(n), rng.IntN(n)
			d.Union(a, b)
			la, lb := ref[a], ref[b]
			if la != lb {
				for i := range ref {
					if ref[i] == lb {
						ref[i] = la
					}
				}
			}
			// Spot-check equivalence of a few random pairs.
			for q := 0; q < 5; q++ {
				x, y := rng.IntN(n), rng.IntN(n)
				if d.Same(x, y) != (ref[x] == ref[y]) {
					t.Fatalf("Same(%d,%d) disagrees with reference", x, y)
				}
			}
		}
		distinct := map[int]bool{}
		for _, l := range ref {
			distinct[l] = true
		}
		if d.Count() != len(distinct) {
			t.Fatalf("Count %d != reference %d", d.Count(), len(distinct))
		}
	}
}

func TestQuickProperties(t *testing.T) {
	// Union is idempotent and Count decreases exactly on novel merges.
	prop := func(ops []uint16) bool {
		const n = 32
		d := New(n)
		for _, op := range ops {
			a := int(op) % n
			b := int(op>>8) % n
			before := d.Count()
			merged := d.Union(a, b)
			after := d.Count()
			if merged && after != before-1 {
				return false
			}
			if !merged && after != before {
				return false
			}
			if !d.Same(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
