// Package unionfind implements a disjoint-set forest with union by rank and
// path halving. It is the workhorse of the local (in-machine) computations
// the paper assigns to the large machine: the Borůvka contractions of the
// §3 MST algorithm (Theorem 3.1) and of the sketch-based connectivity of
// Appendix C.1, plus the out-of-model exact references (Kruskal, connected
// components) every output is validated against.
package unionfind

// DSU is a disjoint-set union structure over elements 0..n-1.
// The zero value is unusable; create one with New.
type DSU struct {
	parent []int
	rank   []byte
	count  int // number of disjoint sets
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Find returns the representative of x's set, using path halving.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b. It reports whether a merge happened
// (false means they were already in the same set).
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.count--
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// Labels returns, for each element, the representative of its set.
func (d *DSU) Labels() []int {
	out := make([]int, len(d.parent))
	for i := range d.parent {
		out[i] = d.Find(i)
	}
	return out
}

// Reset returns every element to its own singleton set.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = i
		d.rank[i] = 0
	}
	d.count = len(d.parent)
}
