package exp

import (
	"fmt"

	"hetmpc/internal/core"
	"hetmpc/internal/fault"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

// The E20–E22 sweeps exercise the fault-injection and recovery subsystem
// (DESIGN.md §7): deterministic crash/slowdown schedules, round-level
// checkpoint replication to capacity-aware buddies, and replicated-state
// recovery. The invariant every row re-asserts: faults never change the
// algorithm's round structure or output — recovery is lossless — they only
// add measured cost (crashes, recovery rounds, replication words, and a
// recovery-inflated makespan).

// E20CrashRate sweeps the seed-derived crash rate under MST at a fixed
// checkpoint cadence: the rate-0 row prices pure checkpointing, and each
// rate step adds recovery rounds and restore traffic while rounds and the
// MST weight stay bit-identical.
func E20CrashRate(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	const interval = 8
	t := &Table{
		Title: fmt.Sprintf("E20 — crash rate vs recovery overhead under MST, n=%d m=%d (ckpt every %d rounds)", n, m, interval),
		Header: []string{"crash rate", "crashes", "recovery rounds", "repl. words",
			"rounds", "makespan", "vs fault-free"},
	}
	g := graph.ConnectedGNM(n, m, seed, true)
	_, exact := graph.KruskalMSF(g)
	baseRounds, baseMakespan := 0, 0.0
	for _, rate := range []float64{0, 0.0005, 0.002, 0.008} {
		cfg := mpc.Config{N: n, M: m, Seed: seed}
		cfg.Faults = &fault.Plan{Interval: interval, CrashRate: rate}
		c, err := build(cfg)
		if err != nil {
			return nil, err
		}
		r, err := core.MST(c, g)
		if err != nil {
			return nil, err
		}
		if r.Weight != exact {
			return nil, fmt.Errorf("e20: rate=%g: MST weight %d, want %d (recovery lost state)", rate, r.Weight, exact)
		}
		st := c.Stats()
		if rate == 0 {
			baseRounds, baseMakespan = st.Rounds, st.Makespan
			if st.Crashes != 0 {
				return nil, fmt.Errorf("e20: rate=0 crashed %d times", st.Crashes)
			}
		} else if st.Rounds != baseRounds {
			return nil, fmt.Errorf("e20: rate=%g changed the round count: %d vs %d", rate, st.Rounds, baseRounds)
		}
		t.AddRow(rate, st.Crashes, st.RecoveryRounds, st.ReplicationWords,
			st.Rounds, st.Makespan, st.Makespan/baseMakespan)
	}
	t.Notes = append(t.Notes,
		"rounds and the MST weight are bit-identical across rows: recovery restores exactly the pre-crash state",
		"the rate-0 row prices pure checkpoint replication; each crash adds detect+restore+replay rounds",
	)
	return t, nil
}

// E21CheckpointInterval sweeps the checkpoint cadence at a fixed crash
// rate: frequent checkpoints pay replication words every barrier, rare
// checkpoints pay long replays on every crash — the classic trade-off
// curve, with the makespan showing the sweet spot.
func E21CheckpointInterval(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	const rate = 0.002
	t := &Table{
		Title: fmt.Sprintf("E21 — checkpoint interval trade-off under MST, n=%d m=%d (crash rate %g)", n, m, rate),
		Header: []string{"interval", "checkpoints", "repl. words", "crashes",
			"recovery rounds", "makespan"},
	}
	g := graph.ConnectedGNM(n, m, seed, true)
	_, exact := graph.KruskalMSF(g)
	for _, interval := range []int{2, 4, 8, 16, 32, 64} {
		cfg := mpc.Config{N: n, M: m, Seed: seed}
		cfg.Faults = &fault.Plan{Interval: interval, CrashRate: rate}
		c, err := build(cfg)
		if err != nil {
			return nil, err
		}
		r, err := core.MST(c, g)
		if err != nil {
			return nil, err
		}
		if r.Weight != exact {
			return nil, fmt.Errorf("e21: interval=%d: MST weight %d, want %d", interval, r.Weight, exact)
		}
		st := c.Stats()
		t.AddRow(interval, st.Checkpoints, st.ReplicationWords, st.Crashes,
			st.RecoveryRounds, st.Makespan)
	}
	t.Notes = append(t.Notes,
		"the crash schedule is identical in every row (same seed, same rounds); only the recovery cost moves",
		"short intervals: replication words dominate; long intervals: replay rounds dominate",
	)
	return t, nil
}

// E22StragglerCrash crosses a straggler speed profile with an explicit
// crash schedule under sketch connectivity: the same crash is injected
// once into a fast machine and once into the straggler tail. Recovering a
// straggler pays the slow machine's replay and restore costs, so the
// absolute recovery cost compounds with the slowdown instead of adding a
// constant to it.
func E22StragglerCrash(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	const interval = 2
	const crashRound = 4
	t := &Table{
		Title: fmt.Sprintf("E22 — straggler profile × crash interaction under connectivity, n=%d m=%d (one crash at round %d)", n, m, crashRound),
		Header: []string{"slowdown", "victim", "crashes", "recovery rounds",
			"makespan", "recovery cost", "vs fast victim"},
	}
	g := graph.GNM(n, m, seed)
	_, wantComps := graph.Components(g)
	run := func(slowdown float64, victim int) (mpc.Stats, error) {
		cfg := mpc.Config{N: n, M: m, Seed: seed}
		k := cfg.DeriveK()
		stragglers := k / 8
		if stragglers < 1 {
			stragglers = 1
		}
		if slowdown > 1 {
			cfg.Profile = mpc.StragglerProfile(k, stragglers, slowdown)
		} else {
			// Pin the explicit uniform profile (bit-identical to nil) so a
			// cross-cutting -profile override cannot reach only these rows
			// and skew the cross-row comparison.
			cfg.Profile = mpc.UniformProfile(k)
		}
		plan := &fault.Plan{Interval: interval}
		if victim >= 0 {
			plan.Crashes = []fault.Crash{{Round: crashRound, Machine: victim}}
		}
		cfg.Faults = plan
		c, err := build(cfg)
		if err != nil {
			return mpc.Stats{}, err
		}
		rc, err := core.Connectivity(c, g)
		if err != nil {
			return mpc.Stats{}, err
		}
		if rc.Components != wantComps {
			return mpc.Stats{}, fmt.Errorf("e22: slowdown=%g victim=%d: %d components, want %d",
				slowdown, victim, rc.Components, wantComps)
		}
		return c.Stats(), nil
	}
	for _, slowdown := range []float64{1, 16, 64} {
		base, err := run(slowdown, -1) // checkpointing only, no crash
		if err != nil {
			return nil, err
		}
		k := mpc.Config{N: n, M: m}.DeriveK()
		fastCost := 0.0
		for _, v := range []struct {
			name    string
			machine int
		}{
			{"fast (machine 0)", 0},
			{fmt.Sprintf("straggler (machine %d)", k-1), k - 1},
		} {
			st, err := run(slowdown, v.machine)
			if err != nil {
				return nil, err
			}
			cost := st.Makespan - base.Makespan
			if v.machine == 0 {
				fastCost = cost
			}
			t.AddRow(slowdown, v.name, st.Crashes, st.RecoveryRounds,
				st.Makespan, cost, cost/fastCost)
		}
	}
	t.Notes = append(t.Notes,
		"recovery cost = makespan minus the same profile's crash-free makespan (checkpointing included in both)",
		"replaying and restoring a straggler victim pays its slow compute/link, so its recovery cost scales with the slowdown",
	)
	return t, nil
}
