package exp

import (
	"encoding/json"
	"testing"

	"hetmpc/internal/trace"
)

// TestSetMetricsArtifact: under the cross-cutting metrics toggle (hetbench
// -metrics) an ordinary experiment's artifact gains the registry snapshot,
// the run-wide aggregate counters reconcile exactly with the summed model
// stats (one registry shared by every cluster of the run), the artifact
// keeps its baseline name (metrics are observational), and the field
// marshals under the stable "metrics" key.
func TestSetMetricsArtifact(t *testing.T) {
	SetMetrics(true)
	defer SetMetrics(false)
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != SchemaVersion {
		t.Fatalf("artifact schema %d, want %d", art.Schema, SchemaVersion)
	}
	if len(art.Metrics) == 0 {
		t.Fatal("artifact has no metrics under SetMetrics(true)")
	}
	find := func(name string) int64 {
		for _, s := range art.Metrics {
			if s.Name == name && len(s.Labels) == 0 {
				return s.Value
			}
		}
		t.Fatalf("snapshot lacks %q", name)
		return 0
	}
	if got := find("mpc_words_total"); got != art.Model.TotalWords {
		t.Fatalf("mpc_words_total %d != model total words %d", got, art.Model.TotalWords)
	}
	if got := find("mpc_rounds_total"); got != int64(art.Model.Rounds) {
		t.Fatalf("mpc_rounds_total %d != model rounds %d", got, art.Model.Rounds)
	}
	if got := find("mpc_messages_total"); got != art.Model.Messages {
		t.Fatalf("mpc_messages_total %d != model messages %d", got, art.Model.Messages)
	}
	// Metering is observational: no override tag, baseline name preserved.
	if art.Profile != "" || art.Faults != "" || art.Placement != "" || art.Transport != "" {
		t.Fatalf("metrics tagged the artifact: %+v", art)
	}
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["metrics"].([]any); !ok {
		t.Fatalf("marshaled artifact lacks the metrics array: %s", raw[:min(len(raw), 200)])
	}
	if got, ok := m["schema"].(float64); !ok || int(got) != SchemaVersion {
		t.Fatalf("marshaled artifact schema %v", m["schema"])
	}
}

// TestUnmeteredArtifactOmitsMetrics mirrors the trace-key guarantee: without
// the toggle the wire format has no "metrics" key at all.
func TestUnmeteredArtifactOmitsMetrics(t *testing.T) {
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Metrics != nil {
		t.Fatal("unmetered run produced a metrics snapshot")
	}
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["metrics"]; ok {
		t.Fatalf("unmetered artifact carries a metrics key: %s", raw)
	}
}

// TestRunFullReturnsRounds: RunFull hands back the raw concatenated trace —
// the record stream -traceout exports — and its totals match the artifact's
// own trace summary.
func TestRunFullReturnsRounds(t *testing.T) {
	SetTrace(true)
	defer SetTrace(false)
	art, rounds, err := RunFull("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("traced run returned no rounds")
	}
	if art.Trace == nil {
		t.Fatal("artifact has no trace summary")
	}
	var words int64
	exch := 0
	for _, r := range rounds {
		words += r.Words
		if r.Kind == trace.KindExchange {
			exch++
		}
	}
	if words != art.Trace.Words {
		t.Fatalf("raw rounds carry %d words, summary says %d", words, art.Trace.Words)
	}
	if exch != art.Trace.Rounds {
		t.Fatalf("raw rounds have %d exchange records, summary says %d", exch, art.Trace.Rounds)
	}
}
