//go:build !race

package exp

// raceEnabled reports that the race detector is active; see race_on.go.
const raceEnabled = false
