package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunProducesArtifact(t *testing.T) {
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Exp != "e14" || art.Seed != 7 {
		t.Fatalf("identity fields: %+v", art)
	}
	if art.Model.Clusters == 0 || art.Model.Rounds == 0 || art.Model.TotalWords == 0 {
		t.Fatalf("model stats not collected: %+v", art.Model)
	}
	if art.WallNS <= 0 || art.Allocs == 0 {
		t.Fatalf("host metrics not collected: wall=%d allocs=%d", art.WallNS, art.Allocs)
	}
	if art.Table == nil || len(art.Table.Rows) == 0 {
		t.Fatal("table missing")
	}
}

func TestArtifactWriteFileRoundTrips(t *testing.T) {
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := art.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_e14.json" {
		t.Fatalf("artifact name %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Exp != art.Exp || back.Model != art.Model || len(back.Table.Rows) != len(art.Table.Rows) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, art)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}
