package exp

import (
	"fmt"
	"sort"

	"hetmpc/internal/core"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
)

// The E26–E28 sweeps exercise the trace subsystem (DESIGN.md §9): the
// per-round timeline behind Config.Trace, the phase spans the algorithms
// tag their round loops with, and the critical-path summary derived from
// both. Every cell re-asserts the conservation contract — the ordered sum
// of per-round makespan contributions is bit-identical to Stats.Makespan
// and the per-round words sum to Stats.TotalWords — so the sweeps are also
// end-to-end tests of the trace layer on real algorithm traffic.

// traceConserved checks the trace conservation contract of one traced
// cluster and returns its summary.
func traceConserved(label string, c *mpc.Cluster) (*trace.Summary, error) {
	st := c.Stats()
	s := trace.Summarize(c.Trace().Rounds())
	if s.Makespan != st.Makespan {
		return nil, fmt.Errorf("%s: trace makespan %v != stats makespan %v (conservation broken)", label, s.Makespan, st.Makespan)
	}
	if s.Words != st.TotalWords {
		return nil, fmt.Errorf("%s: trace words %d != stats words %d", label, s.Words, st.TotalWords)
	}
	if s.Rounds != st.Rounds {
		return nil, fmt.Errorf("%s: trace rounds %d != stats rounds %d", label, s.Rounds, st.Rounds)
	}
	if len(s.Phases) == 0 {
		return nil, fmt.Errorf("%s: empty phase breakdown", label)
	}
	return s, nil
}

// topPhases returns the n largest-makespan phases of a summary (ties by
// first appearance).
func topPhases(s *trace.Summary, n int) []trace.PhaseStat {
	ps := append([]trace.PhaseStat(nil), s.Phases...)
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].Makespan > ps[b].Makespan })
	if len(ps) > n {
		ps = ps[:n]
	}
	return ps
}

// E26PhaseBreakdown decomposes three algorithms' makespans into their phase
// timelines across three machine profiles: which phase — distribute, sort,
// sketch aggregation, dissemination, sampling — carries the clock, and how
// the answer moves when capacity skew or stragglers are dialed in. Every
// cell validates its output exactly and re-proves trace conservation.
func E26PhaseBreakdown(seed uint64) (*Table, error) {
	const n, m = 256, 2048
	t := &Table{
		Title: fmt.Sprintf("E26 — phase breakdown (top 3 phases by makespan share), n=%d m=%d", n, m),
		Header: []string{"alg", "profile", "phase", "rounds", "words",
			"makespan", "share", "top machine"},
	}
	gW := graph.ConnectedGNM(n, m, seed, true)
	gU := graph.ConnectedGNM(n, m, seed, false)
	_, wantW := graph.KruskalMSF(gW)

	// Speed-skew profiles only: capacity skew (zipf) shrinks the small
	// machines below the sketch volume connectivity needs at this scale
	// (the capacity model rejects the run, as it must); E27 covers the
	// capacity-skew axis with MST, whose per-machine volume adapts.
	profiles := []struct {
		name string
		gen  func(k int) *mpc.Profile
	}{
		{"uniform", nil},
		{"bimodal:0.25:4", func(k int) *mpc.Profile { return beefyCoordinator(mpc.BimodalProfile(k, 0.25, 4)) }},
		{"straggler:2:8", func(k int) *mpc.Profile { return beefyCoordinator(mpc.StragglerProfile(k, 2, 8)) }},
	}
	algs := []struct {
		name string
		run  func(c *mpc.Cluster) error
	}{
		{"mst", func(c *mpc.Cluster) error {
			r, err := core.MST(c, gW)
			if err != nil {
				return err
			}
			if r.Weight != wantW {
				return fmt.Errorf("mst weight %d, want %d", r.Weight, wantW)
			}
			return nil
		}},
		{"connectivity", func(c *mpc.Cluster) error {
			r, err := core.Connectivity(c, gU)
			if err != nil {
				return err
			}
			_, want := graph.Components(gU)
			if r.Components != want {
				return fmt.Errorf("components %d, want %d", r.Components, want)
			}
			return nil
		}},
		{"matching", func(c *mpc.Cluster) error {
			r, err := core.MaximalMatching(c, gU)
			if err != nil {
				return err
			}
			return graph.CheckMatching(gU, r.Edges, true)
		}},
	}
	for _, alg := range algs {
		for _, prof := range profiles {
			cfg := mpc.Config{N: n, M: m, Seed: seed, Trace: trace.New()}
			if prof.gen != nil {
				cfg.Profile = prof.gen(cfg.DeriveK())
			}
			c, err := build(cfg)
			if err != nil {
				return nil, err
			}
			if err := alg.run(c); err != nil {
				return nil, fmt.Errorf("e26: %s/%s: %w", alg.name, prof.name, err)
			}
			s, err := traceConserved("e26: "+alg.name+"/"+prof.name, c)
			if err != nil {
				return nil, err
			}
			for _, p := range topPhases(s, 3) {
				t.AddRow(alg.name, prof.name, p.Phase, p.Rounds, p.Words,
					p.Makespan, p.Share, trace.MachineName(p.Top))
			}
		}
	}
	t.Notes = append(t.Notes,
		"each row is one phase path (innermost span wins, so shares partition the makespan exactly)",
		"conservation is re-proved per cell: Σ per-round contributions == Stats.Makespan bit-identically, Σ words == TotalWords",
	)
	return t, nil
}

// E27CriticalPath asks, per phase, which machine bounds the clock — the
// large coordinator or a slow small machine — under capacity skew (zipf)
// and compute stragglers, with the coordinator provisioned both ways. With
// a stock (speed-1) coordinator its fan-out dominates nearly every phase;
// provisioning it away (the beefy server of E23–E25) hands the critical
// path to the slow small machines exactly where the profile says it should.
func E27CriticalPath(seed uint64) (*Table, error) {
	const n, m = 256, 2048
	t := &Table{
		Title: fmt.Sprintf("E27 — critical-path machine attribution (top 3 phases), MST n=%d m=%d", n, m),
		Header: []string{"profile", "coordinator", "phase", "share",
			"bound by", "machine speed", "top share"},
	}
	g := graph.ConnectedGNM(n, m, seed, true)
	_, want := graph.KruskalMSF(g)
	profiles := []struct {
		name string
		gen  func(k int) *mpc.Profile
	}{
		{"zipf:0.8", func(k int) *mpc.Profile { return mpc.ZipfProfile(k, 0.8, 0.05) }},
		{"straggler:2:8", func(k int) *mpc.Profile { return mpc.StragglerProfile(k, 2, 8) }},
	}
	largeBound, smallBound := 0, 0
	for _, prof := range profiles {
		for _, beefy := range []bool{false, true} {
			coord := "stock"
			cfg := mpc.Config{N: n, M: m, Seed: seed, Trace: trace.New()}
			p := prof.gen(cfg.DeriveK())
			if beefy {
				coord = "beefy"
				p = beefyCoordinator(p)
			}
			cfg.Profile = p
			c, err := build(cfg)
			if err != nil {
				return nil, err
			}
			r, err := core.MST(c, g)
			if err != nil {
				return nil, fmt.Errorf("e27: %s/%s: %w", prof.name, coord, err)
			}
			if r.Weight != want {
				return nil, fmt.Errorf("e27: %s/%s: weight %d, want %d", prof.name, coord, r.Weight, want)
			}
			s, err := traceConserved("e27: "+prof.name+"/"+coord, c)
			if err != nil {
				return nil, err
			}
			for _, ph := range topPhases(s, 3) {
				speed := "-"
				switch {
				case ph.Top == trace.Large:
					largeBound++
					speed = fmt.Sprintf("%g", orOne(p.LargeSpeed))
				case ph.Top >= 0:
					smallBound++
					speed = fmt.Sprintf("%g", p.Speed[ph.Top])
				}
				t.AddRow(prof.name, coord, ph.Phase, ph.Share,
					trace.MachineName(ph.Top), speed, ph.TopShare)
			}
		}
	}
	if largeBound == 0 || smallBound == 0 {
		return nil, fmt.Errorf("e27: expected both large- and small-bound phases, got large=%d small=%d", largeBound, smallBound)
	}
	t.Notes = append(t.Notes,
		"'bound by' is the machine with the largest summed per-round charge inside the phase; 'machine speed' is its profile speed",
		"stock coordinator: the large machine's fan-out bounds the top phases; beefy: the critical path moves to the slow small machines",
	)
	return t, nil
}

// orOne mirrors the profile default: a zero spec field means scale 1.
func orOne(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// E28TraceGuidedPlacement explains E24/E25's placement wins phase by phase:
// the same place+sample-sort workload as E23/E24 under straggler:4:16 (the
// E24 row where the dial matters most), run under cap, throughput and
// speculate:4, each with a trace. The per-phase gap columns attribute each
// policy's total makespan win to the phases that produced it — the route
// rounds that static throughput rebalances versus the uniform-traffic
// sample/broadcast rounds only speculation can rescue (E24's R=4 cliff).
func E28TraceGuidedPlacement(seed uint64) (*Table, error) {
	const n, m = 512, 8192
	t := &Table{
		Title: fmt.Sprintf("E28 — trace-guided placement comparison (place + sample sort, straggler:4:16), n=%d m=%d", n, m),
		Header: []string{"policy", "phase", "makespan", "share",
			"gap vs cap", "gap share"},
	}
	g := graph.GNMWeighted(n, m, seed)
	gen := func(k int) *mpc.Profile { return beefyCoordinator(mpc.StragglerProfile(k, 4, 16)) }
	policies := []sched.Policy{sched.Cap{}, sched.Throughput{}, sched.Speculate{R: 4}}

	capPhase := map[string]float64{}
	capTotal, thrTotal := 0.0, 0.0
	for _, pol := range policies {
		c, _, err := e23Workload(g, seed, gen, pol, trace.New())
		if err != nil {
			return nil, fmt.Errorf("e28: %s: %w", pol.Name(), err)
		}
		s, err := traceConserved("e28: "+pol.Name(), c)
		if err != nil {
			return nil, err
		}
		isCap := pol.Name() == "cap"
		switch pol.Name() {
		case "cap":
			capTotal = s.Makespan
			for _, p := range s.Phases {
				capPhase[p.Phase] = p.Makespan
			}
		case "throughput":
			thrTotal = s.Makespan
		default:
			if s.Makespan >= thrTotal {
				return nil, fmt.Errorf("e28: speculation makespan %g did not beat static throughput %g at this dial", s.Makespan, thrTotal)
			}
		}
		// Per-phase gap attribution. The phase sets match across policies
		// (placement moves data, never the round structure), so the phase
		// gaps sum to the total gap.
		totalGap := capTotal - s.Makespan
		gapSum := 0.0
		for _, p := range s.Phases {
			gap := capPhase[p.Phase] - p.Makespan
			gapSum += gap
			gapShare := 0.0
			if totalGap != 0 {
				gapShare = gap / totalGap
			}
			t.AddRow(pol.Name(), p.Phase, p.Makespan, p.Share, gap, gapShare)
		}
		if !isCap {
			if s.Makespan >= capTotal {
				return nil, fmt.Errorf("e28: %s makespan %g did not beat cap %g (E24's invariant)", pol.Name(), s.Makespan, capTotal)
			}
			if diff := gapSum - totalGap; diff > 1e-6 || diff < -1e-6 {
				return nil, fmt.Errorf("e28: %s: phase gaps sum to %g, total gap is %g", pol.Name(), gapSum, totalGap)
			}
		}
	}
	t.Notes = append(t.Notes,
		"'gap vs cap' is cap's phase makespan minus this policy's; the gaps sum to the total makespan win (checked)",
		"throughput's win concentrates in the placement-weighted route phase; speculation additionally collapses the straggler-bound sample/broadcast phases E24 measures",
	)
	return t, nil
}
