package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestE20ArtifactCarriesFaultMetrics: the E20 artifact must expose the
// fault-tolerance metrics in its model stats (the wire format the CI smoke
// step checks).
func TestE20ArtifactCarriesFaultMetrics(t *testing.T) {
	art, err := Run("e20", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Model.Crashes == 0 || art.Model.RecoveryRounds == 0 || art.Model.ReplicationWords == 0 {
		t.Fatalf("fault metrics missing from model stats: %+v", art.Model)
	}
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"crashes"`, `"recovery_rounds"`, `"replication_words"`, `"checkpoints"`, `"makespan"`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("artifact JSON lacks %s", field)
		}
	}
}

// TestSetFaultsOverride: a cross-cutting fault spec rebuilds an experiment
// under faults, tags its artifact, and renames the file so the committed
// baseline is never clobbered.
func TestSetFaultsOverride(t *testing.T) {
	if err := SetFaults("bogus"); err == nil {
		t.Fatal("bad fault spec accepted")
	}
	if err := SetFaults("ckpt:4+rate:0.002"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetFaults(""); err != nil {
			t.Fatal(err)
		}
	}()
	art, err := Run("e9", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Faults != "ckpt:4+rate:0.002" {
		t.Fatalf("artifact faults tag %q", art.Faults)
	}
	if art.Model.Checkpoints == 0 {
		t.Fatalf("override did not reach the clusters: %+v", art.Model)
	}
	dir := t.TempDir()
	path, err := art.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, "@faults=") {
		t.Fatalf("faulted artifact path %q lacks the @faults= tag", path)
	}
}
