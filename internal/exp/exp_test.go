package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x,y", "q\"z")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a ", "bb", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.RenderCSV(&buf)
	csv := buf.String()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""z"`) {
		t.Fatalf("CSV escaping broken:\n%s", csv)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	for _, id := range Order() {
		if all[id] == nil {
			t.Fatalf("experiment %q in Order but not registered", id)
		}
	}
	if len(all) != len(Order()) {
		t.Fatalf("registry size %d != order size %d", len(all), len(Order()))
	}
}

// TestExperimentsExecute runs every experiment end to end (each validates
// its own outputs against the exact references and returns an error on any
// mismatch). The heavy ones are skipped with -short.
func TestExperimentsExecute(t *testing.T) {
	light := map[string]bool{"e4": true, "e6": true, "e10": true, "e11": true, "e15": true}
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && !light[id] {
				t.Skip("heavy experiment skipped in -short mode")
			}
			tab, err := All()[id](7)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			t.Log("\n" + buf.String())
		})
	}
}
