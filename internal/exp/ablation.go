package exp

import (
	"hetmpc/internal/core"
	"hetmpc/internal/graph"
)

// E16MSTAblation isolates the contribution of each §3 ingredient:
//
//   - "full": doubly-exponential budgets + KKT sampling (the paper);
//   - "budget=2": plain Borůvka budgets with the sampling finish — phases
//     grow to Θ(log of the contraction target);
//   - "no sampling": doubly-exponential budgets run to completion — the
//     final contractions happen against a shrinking vertex set instead of
//     handing Õ(n) F-light edges to the large machine;
//   - "budget=2, no sampling": plain distributed Borůvka through the
//     heterogeneous toolbox, Θ(log n) phases.
//
// Every variant must still produce the exact MSF.
func E16MSTAblation(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E16 — MST ablation (§3 design choices), n=1024 m=2048 (sparse: the sampling step matters)",
		Header: []string{"variant", "phases", "rounds", "sample tries", "exact"},
	}
	n, m := 1024, 2048
	g := graph.ConnectedGNM(n, m, seed, true)
	_, want := graph.KruskalMSF(g)
	variants := []struct {
		name string
		opts core.MSTOptions
	}{
		{"full (paper)", core.MSTOptions{}},
		{"budget=2", core.MSTOptions{FixedBudget: 2}},
		{"no sampling", core.MSTOptions{DisableSampling: true}},
		{"budget=2, no sampling", core.MSTOptions{FixedBudget: 2, DisableSampling: true}},
	}
	for _, v := range variants {
		c, err := newHet(n, m, 0, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.MSTWithOptions(c, g, v.opts)
		if err != nil {
			return nil, err
		}
		exact := "yes"
		if r.Weight != want {
			exact = "NO"
		}
		if err := graph.CheckMST(g, r.Edges); err != nil {
			exact = err.Error()
		}
		t.AddRow(v.name, r.BoruvkaPhases, r.Stats.Rounds, r.SampleTries, exact)
	}
	t.Notes = append(t.Notes,
		"disabling the KKT sampling step costs extra contraction phases (the tail the sampling removes)",
		"budget=2 matches the doubly-exponential schedule at laptop scales because the budgeted local merging already over-achieves; the schedules separate only when log(m/n) >> loglog(m/n)")
	return t, nil
}
