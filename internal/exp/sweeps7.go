package exp

import (
	"fmt"

	"hetmpc/internal/core"
	"hetmpc/internal/fault"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
)

// The E29–E31 sweeps exercise adaptive placement (DESIGN.md §10): the
// sched.Adaptive policy re-estimates every machine's effective per-word
// cost online (an EWMA over the rounds the run actually executes) and
// recomputes the throughput-style split at each round barrier. The
// experiments pin down its contract from three sides: with a truthful
// profile it degenerates to static throughput bit-identically (E29), with
// a misreported profile it is the only policy that recovers the makespan
// the static splits leave on the table (E30), and under transient
// slowdown windows it tracks the effective speeds through the window and
// back out (E31). Placement still moves data, never correctness: every
// cell validates its output exactly, and the traced cells re-prove the
// conservation contract under mid-run share switches.

// E29AdaptivePolicyGrid reruns the E23 policy × skew-profile grid with
// adaptive placement in the lineup. The declared profiles are truthful
// here, so the measured per-word costs reproduce the declared ones
// exactly and adaptive must land bit-identically on static throughput —
// the grid is a regression test that the estimator's steady state is the
// declared profile, cell by cell. Every cell runs traced and re-proves
// trace conservation under the (no-op) round-barrier share refresh.
func E29AdaptivePolicyGrid(seed uint64) (*Table, error) {
	const n, m = 512, 8192
	t := &Table{
		Title: fmt.Sprintf("E29 — adaptive vs static placement × skew profiles (place + sample sort), n=%d m=%d", n, m),
		Header: []string{"profile", "policy", "rounds", "est rounds", "makespan", "vs cap",
			"imbalance"},
	}
	g := graph.GNMWeighted(n, m, seed)
	profiles := []struct {
		name string
		gen  func(k int) *mpc.Profile
	}{
		{"zipf:0.8", func(k int) *mpc.Profile { return beefyCoordinator(mpc.ZipfProfile(k, 0.8, 0.05)) }},
		{"bimodal:0.25:4", func(k int) *mpc.Profile { return beefyCoordinator(mpc.BimodalProfile(k, 0.25, 4)) }},
		{"straggler:2:8", func(k int) *mpc.Profile { return beefyCoordinator(mpc.StragglerProfile(k, 2, 8)) }},
	}
	policies := []sched.Policy{sched.Cap{}, sched.Throughput{},
		sched.Adaptive{Alpha: sched.DefaultAlpha}, sched.Speculate{R: 2}}
	for _, prof := range profiles {
		var capOut []graph.Edge
		var capStats, thrStats mpc.Stats
		for _, pol := range policies {
			c, out, err := e23Workload(g, seed, prof.gen, pol, trace.New())
			if err != nil {
				return nil, fmt.Errorf("e29: %s/%s: %w", prof.name, pol.Name(), err)
			}
			st := c.Stats()
			if _, err := traceConserved(fmt.Sprintf("e29: %s/%s", prof.name, pol.Name()), c); err != nil {
				return nil, err
			}
			switch pol.Name() {
			case "cap":
				capOut, capStats = out, st
			default:
				if len(out) != len(capOut) {
					return nil, fmt.Errorf("e29: %s/%s: output length %d, cap had %d", prof.name, pol.Name(), len(out), len(capOut))
				}
				for i := range out {
					if out[i] != capOut[i] {
						return nil, fmt.Errorf("e29: %s/%s: sorted output diverged from cap at item %d", prof.name, pol.Name(), i)
					}
				}
				if st.Rounds != capStats.Rounds {
					return nil, fmt.Errorf("e29: %s/%s: round structure changed: %d vs cap %d", prof.name, pol.Name(), st.Rounds, capStats.Rounds)
				}
			}
			estRounds := 0
			if est := c.PlacementEstimator(); est != nil {
				estRounds = est.Rounds()
				// Truthful profile: measured cost == declared cost exactly,
				// so the adaptive run must be bit-identical to throughput.
				if st.Makespan != thrStats.Makespan || st.TotalWords != thrStats.TotalWords {
					return nil, fmt.Errorf("e29: %s: adaptive (makespan %v, words %d) diverged from static throughput (%v, %d) under a truthful profile",
						prof.name, st.Makespan, st.TotalWords, thrStats.Makespan, thrStats.TotalWords)
				}
			}
			if pol.Name() == "throughput" {
				thrStats = st
			}
			t.AddRow(prof.name, pol.Name(), st.Rounds, estRounds, st.Makespan,
				st.Makespan/capStats.Makespan, c.BusyImbalance())
		}
	}
	t.Notes = append(t.Notes,
		"truthful declared profiles: the estimator measures back exactly what was declared, so every adaptive cell is bit-identical to static throughput (asserted)",
		"est rounds counts the exchange rounds the EWMA actually observed; every cell is traced and re-proves conservation under the round-barrier share refresh",
	)
	return t, nil
}

// e30Workload runs the E23 place+sort workload on an 8-machine cluster
// whose declared profile is uniform but whose last two machines actually
// run factor× slower for the whole run (a whole-run fault.Slowdown window
// — invisible to any static policy, whose shares are fixed at New, but
// visible to the adaptive estimator through the measured per-word costs).
// K is pinned to 8 so the route rounds dominate and the placement split is
// what the makespan measures.
func e30Workload(g *graph.Graph, seed uint64, factor float64, pol sched.Policy, tr *trace.Collector) (*mpc.Cluster, []graph.Edge, error) {
	const k, wholeRun = 8, 1 << 20
	cfg := mpc.Config{N: g.N, M: g.M(), K: k, Seed: seed, Placement: pol, Trace: tr}
	cfg.Profile = beefyCoordinator(mpc.UniformProfile(k))
	cfg.Faults = &fault.Plan{Slowdowns: []fault.Slowdown{
		{Machine: k - 2, From: 1, To: wholeRun, Factor: factor},
		{Machine: k - 1, From: 1, To: wholeRun, Factor: factor},
	}}
	c, err := build(cfg)
	if err != nil {
		return nil, nil, err
	}
	data, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, nil, err
	}
	sorted, err := prims.Sort(c, data, prims.EdgeWords, e17SortKey)
	if err != nil {
		return nil, nil, err
	}
	if !prims.IsGloballySorted(sorted, e17SortKey) {
		return nil, nil, fmt.Errorf("sort postcondition violated")
	}
	return c, prims.Flatten(sorted), nil
}

// E30MisreportedProfile is the scenario adaptive placement exists for: the
// declared profile says the cluster is uniform, but two of the eight
// machines actually run 2–10× slower. Static cap and throughput both
// believe the declaration and split evenly, so every round waits for the
// slow pair; the adaptive estimator measures the real per-word costs off
// the first rounds and shifts the split, recovering most of the loss. The
// acceptance gate: at 4× (and above) misreporting, adaptive's makespan is
// at most 0.8× every static policy's.
func E30MisreportedProfile(seed uint64) (*Table, error) {
	const n, m = 512, 8192
	t := &Table{
		Title: fmt.Sprintf("E30 — misreported profile: declared uniform, 2 of 8 machines actually slow (place + sample sort), n=%d m=%d", n, m),
		Header: []string{"actual slowdown", "policy", "rounds", "makespan", "vs cap",
			"spec words"},
	}
	g := graph.GNMWeighted(n, m, seed)
	policies := []sched.Policy{sched.Cap{}, sched.Throughput{},
		sched.Speculate{R: 2}, sched.Adaptive{Alpha: sched.DefaultAlpha}}
	for _, factor := range []float64{2, 4, 10} {
		label := fmt.Sprintf("%g×", factor)
		var capOut []graph.Edge
		var capStats, thrStats mpc.Stats
		for _, pol := range policies {
			c, out, err := e30Workload(g, seed, factor, pol, trace.New())
			if err != nil {
				return nil, fmt.Errorf("e30: %s/%s: %w", label, pol.Name(), err)
			}
			st := c.Stats()
			if _, err := traceConserved(fmt.Sprintf("e30: %s/%s", label, pol.Name()), c); err != nil {
				return nil, err
			}
			switch pol.Name() {
			case "cap":
				capOut, capStats = out, st
			default:
				if len(out) != len(capOut) {
					return nil, fmt.Errorf("e30: %s/%s: output length %d, cap had %d", label, pol.Name(), len(out), len(capOut))
				}
				for i := range out {
					if out[i] != capOut[i] {
						return nil, fmt.Errorf("e30: %s/%s: sorted output diverged from cap at item %d", label, pol.Name(), i)
					}
				}
				if st.Rounds != capStats.Rounds {
					return nil, fmt.Errorf("e30: %s/%s: round structure changed: %d vs cap %d", label, pol.Name(), st.Rounds, capStats.Rounds)
				}
			}
			if pol.Name() == "throughput" {
				thrStats = st
			}
			if c.PlacementEstimator() != nil && factor >= 4 {
				// The acceptance gate: adaptive must recover at least 20% of
				// makespan against every static split once the declaration is
				// 4× wrong. (cap and throughput coincide here — both trust
				// the uniform declaration.)
				for _, static := range []struct {
					name     string
					makespan float64
				}{{"cap", capStats.Makespan}, {"throughput", thrStats.Makespan}} {
					if st.Makespan > 0.8*static.makespan {
						return nil, fmt.Errorf("e30: %s: adaptive makespan %g is not <= 0.8× static %s %g",
							label, st.Makespan, static.name, static.makespan)
					}
				}
			}
			t.AddRow(label, pol.Name(), st.Rounds, st.Makespan,
				st.Makespan/capStats.Makespan, st.SpeculationWords)
		}
	}
	t.Notes = append(t.Notes,
		"cap and throughput coincide: both trust the uniform declaration and split evenly, so every round waits for the slow pair",
		"adaptive measures the real per-word costs off the early rounds and re-splits; at >=4× misreporting its makespan is asserted <= 0.8× every static policy's",
	)
	return t, nil
}

// E31AdaptiveTransientSlowdown puts adaptive placement under the E25-style
// dynamic case: a truthful straggler cluster whose fastest machine opens a
// transient 16× slowdown window mid-run (rounds 5–40). Static throughput
// keeps feeding it a full share through the window; the adaptive estimator
// tracks the effective cost up as the window opens and back down after it
// closes, and must beat static throughput's makespan under both the pure
// slowdown plan and the slowdown + checkpoint-cadence plan. The MST weight
// is validated exact in every cell.
func E31AdaptiveTransientSlowdown(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	t := &Table{
		Title: fmt.Sprintf("E31 — adaptive placement under transient slowdown windows (MST), n=%d m=%d (straggler:2:8 cluster)", n, m),
		Header: []string{"fault plan", "policy", "rounds", "est rounds",
			"spec words", "makespan", "vs cap"},
	}
	g := graph.ConnectedGNM(n, m, seed, true)
	_, exact := graph.KruskalMSF(g)
	plans := []struct {
		name string
		plan func() *fault.Plan
	}{
		{"slow:0:5:40:16", func() *fault.Plan {
			return &fault.Plan{Slowdowns: []fault.Slowdown{{Machine: 0, From: 5, To: 40, Factor: 16}}}
		}},
		{"ckpt:8+slow:0:5:40:16", func() *fault.Plan {
			return &fault.Plan{Interval: 8, Slowdowns: []fault.Slowdown{{Machine: 0, From: 5, To: 40, Factor: 16}}}
		}},
	}
	policies := []sched.Policy{sched.Cap{}, sched.Throughput{},
		sched.Speculate{R: 2}, sched.Adaptive{Alpha: sched.DefaultAlpha}}
	for _, pl := range plans {
		capMakespan, thrMakespan := 0.0, 0.0
		for _, pol := range policies {
			cfg := mpc.Config{N: n, M: m, Seed: seed, Placement: pol, Trace: trace.New()}
			cfg.Profile = beefyCoordinator(mpc.StragglerProfile(cfg.DeriveK(), 2, 8))
			cfg.Faults = pl.plan()
			c, err := build(cfg)
			if err != nil {
				return nil, err
			}
			r, err := core.MST(c, g)
			if err != nil {
				return nil, fmt.Errorf("e31: %s/%s: %w", pl.name, pol.Name(), err)
			}
			if r.Weight != exact {
				return nil, fmt.Errorf("e31: %s/%s: MST weight %d, want %d (placement or recovery corrupted the run)",
					pl.name, pol.Name(), r.Weight, exact)
			}
			st := c.Stats()
			if _, err := traceConserved(fmt.Sprintf("e31: %s/%s", pl.name, pol.Name()), c); err != nil {
				return nil, err
			}
			estRounds := 0
			switch pol.Name() {
			case "cap":
				capMakespan = st.Makespan
			case "throughput":
				thrMakespan = st.Makespan
			}
			if est := c.PlacementEstimator(); est != nil {
				estRounds = est.Rounds()
				if st.Makespan >= thrMakespan {
					return nil, fmt.Errorf("e31: %s: adaptive makespan %g did not beat static throughput %g",
						pl.name, st.Makespan, thrMakespan)
				}
			}
			t.AddRow(pl.name, pol.Name(), st.Rounds, estRounds,
				st.SpeculationWords, st.Makespan, st.Makespan/capMakespan)
		}
	}
	t.Notes = append(t.Notes,
		"the MST weight is validated exact in every cell: adaptive re-splitting may move data, never correctness",
		"static shares are fixed before the window opens; the estimator tracks the effective per-word cost up into the window and back out after it closes (asserted: adaptive beats static throughput under both plans)",
	)
	return t, nil
}
