package exp

import (
	"fmt"
	"math"

	"hetmpc/internal/core"
	"hetmpc/internal/graph"
	"hetmpc/internal/sublinear"
)

// E9Connectivity checks the O(1)-rounds claim across n: heterogeneous
// rounds stay flat while the baseline grows like log n.
func E9Connectivity(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E9 — connectivity rounds vs n (Theorem C.1): het flat, baseline ~ log n",
		Header: []string{"n", "m", "het rounds", "baseline rounds", "baseline phases", "components"},
	}
	for _, n := range []int{128, 256, 512, 1024} {
		m := 4 * n
		g := graph.GNM(n, m, seed+uint64(n))
		ch, err := newHet(n, m, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.Connectivity(ch, g)
		if err != nil {
			return nil, err
		}
		_, want := graph.Components(g)
		if rh.Components != want {
			return nil, fmt.Errorf("n=%d: components %d want %d", n, rh.Components, want)
		}
		cs, err := newSub(n, m, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.Connectivity(cs, g)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, m, rh.Stats.Rounds, rs.Stats.Rounds, rs.Phases, rh.Components)
	}
	return t, nil
}

// E10ApproxMST sweeps ε: the estimate tightens as ε shrinks (Theorem C.2).
func E10ApproxMST(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E10 — (1+eps)-MST weight approximation (Theorem C.2), n=96",
		Header: []string{"eps", "estimate", "exact", "rel err", "thresholds", "rounds/threshold"},
	}
	g := graph.ConnectedGNM(96, 600, seed, true)
	for i := range g.Edges {
		g.Edges[i].W = g.Edges[i].W%32 + 1
	}
	_, exact := graph.KruskalMSF(g)
	for _, eps := range []float64{1.0, 0.5, 0.25, 0.1} {
		c, err := newHet(g.N, g.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.ApproxMSTWeight(c, g, eps)
		if err != nil {
			return nil, err
		}
		relErr := float64(r.Estimate-exact) / float64(exact)
		t.AddRow(eps, r.Estimate, exact, relErr, r.Thresholds, r.Stats.Rounds/r.Thresholds)
	}
	return t, nil
}

// E11MinCut validates the exact algorithm against Stoer-Wagner and sweeps ε
// for the approximate one.
func E11MinCut(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E11 — minimum cut (Theorems C.3/C.4), n=128",
		Header: []string{"instance", "algorithm", "value", "reference", "rounds/trial"},
	}
	for _, cut := range []int{2, 4} {
		g := graph.PlantedCut(128, 400, cut, seed+uint64(cut), false)
		want := graph.StoerWagner(g)
		c, err := newHet(g.N, g.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.MinCutUnweighted(c, g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("planted cut %d", cut), "exact 2-out", r.Value, want, r.Stats.Rounds/r.Trials)
	}
	gw := graph.PlantedCut(128, 400, 3, seed+9, true)
	want := graph.StoerWagner(gw)
	for _, eps := range []float64{0.5, 0.25} {
		c, err := newHet(gw.N, gw.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.ApproxMinCut(c, gw, eps)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("weighted, eps=%.2f", eps), "Karger skeleton", r.Value, want, r.Stats.Rounds/r.Trials)
	}
	return t, nil
}

// E12MIS sweeps the density: heterogeneous iterations stay ~ log log Δ while
// Luby rounds track log n.
func E12MIS(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E12 — MIS iterations vs Δ (Theorem C.6), n=512",
		Header: []string{"m", "Δ", "het iterations", "het rounds", "Luby rounds", "baseline rounds", "loglog Δ"},
	}
	n := 512
	for _, m := range []int{1024, 4096, 16384} {
		g := graph.GNM(n, m, seed+uint64(m))
		ch, err := newHet(n, m, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MIS(ch, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMIS(g, rh.Set); err != nil {
			return nil, err
		}
		cs, err := newSub(n, m, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.MIS(cs, g)
		if err != nil {
			return nil, err
		}
		delta := float64(g.MaxDegree())
		t.AddRow(m, g.MaxDegree(), rh.Iterations, rh.Stats.Rounds, rs.Rounds, rs.Stats.Rounds,
			math.Log2(math.Log2(delta)+1))
	}
	return t, nil
}

// E13Coloring measures the conflict-edge volume and round counts
// (Theorem C.7) against the baseline.
func E13Coloring(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E13 — (Δ+1)-coloring (Theorem C.7), n=512",
		Header: []string{"m", "Δ", "het rounds", "conflict edges", "baseline rounds", "baseline trials"},
	}
	n := 512
	for _, m := range []int{2048, 8192} {
		g := graph.GNM(n, m, seed+uint64(m))
		ch, err := newHet(n, m, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.Coloring(ch, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckColoring(g, rh.Colors, rh.MaxColor); err != nil {
			return nil, err
		}
		cs, err := newSub(n, m, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.Coloring(cs, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckColoring(g, rs.Colors, rs.MaxColor); err != nil {
			return nil, err
		}
		t.AddRow(m, g.MaxDegree(), rh.Stats.Rounds, rh.ConflictEdges, rs.Stats.Rounds, rs.Rounds)
	}
	return t, nil
}

// E14TwoCycle is the motivating separation: with the large machine the
// 2-vs-1-cycle instance takes O(1) rounds at every n; the baseline's phase
// count grows with n (the conjectured Ω(log n)).
func E14TwoCycle(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E14 — 2-vs-1 cycle (§1): het O(1) rounds vs baseline ~ log n phases",
		Header: []string{"n", "parts", "het answer", "het rounds", "baseline phases", "baseline rounds"},
	}
	for _, n := range []int{256, 1024, 4096} {
		for parts := 1; parts <= 2; parts++ {
			g := graph.Cycles(n, parts, seed+uint64(n)+uint64(parts))
			ch, err := newHet(n, g.M(), 0, seed)
			if err != nil {
				return nil, err
			}
			rh, err := core.TwoVsOneCycle(ch, g)
			if err != nil {
				return nil, err
			}
			if rh.Cycles != parts {
				return nil, fmt.Errorf("n=%d: got %d cycles want %d", n, rh.Cycles, parts)
			}
			cs, err := newSub(n, g.M(), seed)
			if err != nil {
				return nil, err
			}
			rs, err := sublinear.Connectivity(cs, g)
			if err != nil {
				return nil, err
			}
			if rs.Components != parts {
				return nil, fmt.Errorf("baseline n=%d: got %d want %d", n, rs.Components, parts)
			}
			t.AddRow(n, parts, rh.Cycles, rh.Stats.Rounds, rs.Phases, rs.Stats.Rounds)
		}
	}
	return t, nil
}

// E15APSP measures the Corollary 4.2 oracle: observed stretch on sampled
// pairs stays within the O(log n) guarantee.
func E15APSP(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E15 — APSP via log n-spanner (Corollary 4.2), n=256 m=2048",
		Header: []string{"source", "pairs", "max observed stretch", "guaranteed stretch", "spanner edges", "build rounds"},
	}
	g := graph.ConnectedGNM(256, 2048, seed, false)
	c, err := newHet(g.N, g.M(), 0, seed)
	if err != nil {
		return nil, err
	}
	oracle, err := core.BuildAPSPOracle(c, g)
	if err != nil {
		return nil, err
	}
	adj := g.Adj()
	for _, src := range []int{0, 101, 222} {
		exact := graph.BFSDist(adj, src)
		worst := 1.0
		pairs := 0
		for v := 0; v < g.N; v += 3 {
			if v == src || exact[v] == math.MaxInt {
				continue
			}
			pairs++
			est := oracle.Dist(src, v)
			ratio := float64(est) / float64(exact[v])
			if ratio > worst {
				worst = ratio
			}
		}
		t.AddRow(src, pairs, worst, oracle.Stretch, oracle.Spanner.M(), oracle.BuildStats.Rounds)
	}
	return t, nil
}

// All returns every experiment keyed by id, for the CLI and benchmarks.
func All() map[string]func(seed uint64) (*Table, error) {
	return map[string]func(seed uint64) (*Table, error){
		"table1": Table1,
		"e2":     E2MSTDensity,
		"e3":     E3MSTSuperlinear,
		"e4":     E4KKT,
		"e5":     E5Spanner,
		"e6":     E6ModifiedBS,
		"e7":     E7Matching,
		"e8":     E8Filtering,
		"e9":     E9Connectivity,
		"e10":    E10ApproxMST,
		"e11":    E11MinCut,
		"e12":    E12MIS,
		"e13":    E13Coloring,
		"e14":    E14TwoCycle,
		"e15":    E15APSP,
		"e16":    E16MSTAblation,
		"e17":    E17SkewPlacement,
		"e18":    E18Stragglers,
		"e19":    E19Bimodal,
		"e20":    E20CrashRate,
		"e21":    E21CheckpointInterval,
		"e22":    E22StragglerCrash,
		"e23":    E23PlacementPolicies,
		"e24":    E24SpeculationDial,
		"e25":    E25PlacementFaults,
		"e26":    E26PhaseBreakdown,
		"e27":    E27CriticalPath,
		"e28":    E28TraceGuidedPlacement,
		"e29":    E29AdaptivePolicyGrid,
		"e30":    E30MisreportedProfile,
		"e31":    E31AdaptiveTransientSlowdown,
		"e32":    E32TransportSweep,
		"e33":    E33ScaleSweep,
	}
}

// Order is the canonical experiment ordering for "run everything".
func Order() []string {
	return []string{"table1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26", "e27", "e28", "e29", "e30", "e31", "e32", "e33"}
}
