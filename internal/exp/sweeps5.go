package exp

import (
	"fmt"

	"hetmpc/internal/core"
	"hetmpc/internal/fault"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
)

// The E23–E25 sweeps exercise the placement-policy subsystem (DESIGN.md
// §8): pluggable work placement across heterogeneous machines — the
// capacity-proportional cap default, the min-makespan throughput split, and
// speculate:R's first-copy-wins redundant execution. The invariant every
// row re-asserts: placement moves data, never correctness — outputs are
// validated against the exact references under every policy, and the
// speculative copies are charged honestly (speculation words, partner busy
// time) rather than conjured for free.

// beefyCoordinator marks the large machine as the fast server it is in the
// model (it already holds ~n^{1-γ} times a small machine's memory; E23–E25
// provision its speed and link to match). Without this the coordinator's
// broadcast fan-out dominates every round's clock and no small-machine
// placement decision is visible in the makespan at all.
func beefyCoordinator(p *mpc.Profile) *mpc.Profile {
	p.LargeSpeed, p.LargeBandwidth = 64, 64
	return p
}

// e23Workload places and sample-sorts m weighted edges under one profile ×
// policy and returns the flattened sorted output with the cluster (E23 and
// E24 both compare it row-for-row against the cap baseline's; E28 passes a
// trace collector to decompose the same workload into phases).
func e23Workload(g *graph.Graph, seed uint64, profile func(k int) *mpc.Profile, pol sched.Policy, tr *trace.Collector) (*mpc.Cluster, []graph.Edge, error) {
	cfg := mpc.Config{N: g.N, M: g.M(), Seed: seed, Placement: pol, Trace: tr}
	if profile != nil {
		cfg.Profile = profile(cfg.DeriveK())
	}
	c, err := build(cfg)
	if err != nil {
		return nil, nil, err
	}
	data, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, nil, err
	}
	sorted, err := prims.Sort(c, data, prims.EdgeWords, e17SortKey)
	if err != nil {
		return nil, nil, err
	}
	if !prims.IsGloballySorted(sorted, e17SortKey) {
		return nil, nil, fmt.Errorf("sort postcondition violated")
	}
	return c, prims.Flatten(sorted), nil
}

// E23PlacementPolicies crosses the three placement policies with the three
// canonical skew profiles under the placement+sort workload: cap pays the
// straggler tax, throughput irons static skew out of the route rounds, and
// speculation additionally rescues the uniform-traffic rounds (samples,
// broadcasts) that no static placement can rebalance. Every row must
// reproduce the cap row's sorted output and round structure exactly.
func E23PlacementPolicies(seed uint64) (*Table, error) {
	const n, m = 512, 8192
	t := &Table{
		Title: fmt.Sprintf("E23 — placement policies × skew profiles (place + sample sort), n=%d m=%d", n, m),
		Header: []string{"profile", "policy", "rounds", "makespan", "vs cap",
			"imbalance", "spec words"},
	}
	g := graph.GNMWeighted(n, m, seed)
	profiles := []struct {
		name string
		gen  func(k int) *mpc.Profile
	}{
		{"zipf:0.8", func(k int) *mpc.Profile { return beefyCoordinator(mpc.ZipfProfile(k, 0.8, 0.05)) }},
		{"bimodal:0.25:4", func(k int) *mpc.Profile { return beefyCoordinator(mpc.BimodalProfile(k, 0.25, 4)) }},
		{"straggler:2:8", func(k int) *mpc.Profile { return beefyCoordinator(mpc.StragglerProfile(k, 2, 8)) }},
	}
	policies := []sched.Policy{sched.Cap{}, sched.Throughput{}, sched.Speculate{R: 2}}
	for _, prof := range profiles {
		var capOut []graph.Edge
		var capStats mpc.Stats
		for _, pol := range policies {
			c, out, err := e23Workload(g, seed, prof.gen, pol, nil)
			if err != nil {
				return nil, fmt.Errorf("e23: %s/%s: %w", prof.name, pol.Name(), err)
			}
			st := c.Stats()
			if pol.Name() == "cap" {
				capOut, capStats = out, st
			} else {
				if len(out) != len(capOut) {
					return nil, fmt.Errorf("e23: %s/%s: output length %d, cap had %d", prof.name, pol.Name(), len(out), len(capOut))
				}
				for i := range out {
					if out[i] != capOut[i] {
						return nil, fmt.Errorf("e23: %s/%s: sorted output diverged from cap at item %d", prof.name, pol.Name(), i)
					}
				}
				if st.Rounds != capStats.Rounds {
					return nil, fmt.Errorf("e23: %s/%s: round structure changed: %d vs cap %d", prof.name, pol.Name(), st.Rounds, capStats.Rounds)
				}
			}
			t.AddRow(prof.name, pol.Name(), st.Rounds, st.Makespan,
				st.Makespan/capStats.Makespan, c.BusyImbalance(), st.SpeculationWords)
		}
	}
	t.Notes = append(t.Notes,
		"every policy reproduces the cap row's sorted output and round count exactly; only placement and the clock move",
		"zipf skews capacity only, so throughput clips to cap and the ratio stays 1; speed skew is where placement pays",
	)
	return t, nil
}

// E24SpeculationDial sweeps the redundancy dial R = 0..4 under straggler
// profiles: R = 0 is pure throughput placement (the route rounds balance,
// the sample/broadcast rounds still wait for the stragglers), and each
// additional speculated shard shaves the uniform-traffic rounds until every
// straggler is covered — at an honestly charged word cost. Every speculate
// row must beat the cap baseline's makespan at an identical round structure
// and output.
func E24SpeculationDial(seed uint64) (*Table, error) {
	const n, m = 512, 8192
	t := &Table{
		Title: fmt.Sprintf("E24 — speculation dial R=0..4 under straggler profiles (place + sample sort), n=%d m=%d", n, m),
		Header: []string{"profile", "policy", "makespan", "vs cap",
			"spec words", "words"},
	}
	g := graph.GNMWeighted(n, m, seed)
	profiles := []struct {
		name       string
		stragglers int
		slowdown   float64
	}{
		{"straggler:2:8", 2, 8},
		{"straggler:4:16", 4, 16},
	}
	for _, prof := range profiles {
		gen := func(k int) *mpc.Profile {
			return beefyCoordinator(mpc.StragglerProfile(k, prof.stragglers, prof.slowdown))
		}
		capC, capOut, err := e23Workload(g, seed, gen, sched.Cap{}, nil)
		if err != nil {
			return nil, fmt.Errorf("e24: %s/cap: %w", prof.name, err)
		}
		capStats := capC.Stats()
		t.AddRow(prof.name, "cap", capStats.Makespan, 1.0, 0, capStats.TotalWords)
		for r := 0; r <= 4; r++ {
			c, out, err := e23Workload(g, seed, gen, sched.Speculate{R: r}, nil)
			if err != nil {
				return nil, fmt.Errorf("e24: %s/R=%d: %w", prof.name, r, err)
			}
			st := c.Stats()
			if len(out) != len(capOut) {
				return nil, fmt.Errorf("e24: %s/R=%d: output length %d, cap had %d", prof.name, r, len(out), len(capOut))
			}
			for i := range out {
				if out[i] != capOut[i] {
					return nil, fmt.Errorf("e24: %s/R=%d: output diverged from cap at item %d", prof.name, r, i)
				}
			}
			if st.Rounds != capStats.Rounds || st.TotalWords != capStats.TotalWords {
				return nil, fmt.Errorf("e24: %s/R=%d: comm structure changed (rounds %d vs %d, words %d vs %d)",
					prof.name, r, st.Rounds, capStats.Rounds, st.TotalWords, capStats.TotalWords)
			}
			if st.Makespan >= capStats.Makespan {
				return nil, fmt.Errorf("e24: %s/R=%d: makespan %g did not beat cap %g",
					prof.name, r, st.Makespan, capStats.Makespan)
			}
			t.AddRow(prof.name, fmt.Sprintf("speculate:%d", r), st.Makespan,
				st.Makespan/capStats.Makespan, st.SpeculationWords, st.TotalWords)
		}
	}
	t.Notes = append(t.Notes,
		"R=0 is pure throughput placement; R>=1 additionally mirrors the slowest per-round shards, first-copy-wins",
		"spec words are the honestly charged redundant traffic; algorithm words (last column) are identical in every row",
	)
	return t, nil
}

// E25PlacementFaults crosses the placement policies with two PR-3 fault
// plans under MST on a straggler cluster: the E20 crash plan (checkpoints +
// seed-derived crashes) and a transient slowdown window on a fast machine —
// the case static placement cannot see coming, because shares are fixed
// before the run while the window opens mid-flight. Speculation reads the
// effective per-round costs, so it adapts to the window and must beat
// static throughput there. The MST weight is validated exact in every cell.
func E25PlacementFaults(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	t := &Table{
		Title: fmt.Sprintf("E25 — placement × fault interaction under MST, n=%d m=%d (straggler:2:8 cluster)", n, m),
		Header: []string{"fault plan", "policy", "rounds", "crashes", "recovery rounds",
			"spec words", "makespan", "vs cap"},
	}
	g := graph.ConnectedGNM(n, m, seed, true)
	_, exact := graph.KruskalMSF(g)
	plans := []struct {
		name string
		plan func() *fault.Plan
	}{
		{"ckpt:8+rate:0.002", func() *fault.Plan { return &fault.Plan{Interval: 8, CrashRate: 0.002} }},
		{"ckpt:8+slow:0:5:40:16", func() *fault.Plan {
			return &fault.Plan{Interval: 8, Slowdowns: []fault.Slowdown{{Machine: 0, From: 5, To: 40, Factor: 16}}}
		}},
	}
	policies := []sched.Policy{sched.Cap{}, sched.Throughput{}, sched.Speculate{R: 2}}
	for _, pl := range plans {
		capMakespan, thrMakespan := 0.0, 0.0
		for _, pol := range policies {
			cfg := mpc.Config{N: n, M: m, Seed: seed, Placement: pol}
			cfg.Profile = beefyCoordinator(mpc.StragglerProfile(cfg.DeriveK(), 2, 8))
			cfg.Faults = pl.plan()
			c, err := build(cfg)
			if err != nil {
				return nil, err
			}
			r, err := core.MST(c, g)
			if err != nil {
				return nil, fmt.Errorf("e25: %s/%s: %w", pl.name, pol.Name(), err)
			}
			if r.Weight != exact {
				return nil, fmt.Errorf("e25: %s/%s: MST weight %d, want %d (placement or recovery corrupted the run)",
					pl.name, pol.Name(), r.Weight, exact)
			}
			st := c.Stats()
			switch pol.Name() {
			case "cap":
				capMakespan = st.Makespan
			case "throughput":
				thrMakespan = st.Makespan
			default:
				if st.Makespan >= thrMakespan {
					return nil, fmt.Errorf("e25: %s: speculation makespan %g did not beat static throughput %g",
						pl.name, st.Makespan, thrMakespan)
				}
			}
			t.AddRow(pl.name, pol.Name(), st.Rounds, st.Crashes, st.RecoveryRounds,
				st.SpeculationWords, st.Makespan, st.Makespan/capMakespan)
		}
	}
	t.Notes = append(t.Notes,
		"the MST weight is validated exact in every cell: neither placement nor crash recovery may change the output",
		"the slow-window plan is the dynamic case: static shares are fixed pre-run, speculation reads per-round effective costs and adapts",
	)
	return t, nil
}
