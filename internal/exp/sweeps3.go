package exp

import (
	"fmt"

	"hetmpc/internal/core"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
)

// The E17–E19 sweeps exercise the heterogeneous cost model (DESIGN.md §6):
// per-machine capacity/speed profiles and the simulated makespan. E17 skews
// capacities and shows capacity-proportional placement keeping every
// machine inside its cap; E18 and E19 skew only speeds/bandwidths, so the
// round structure stays bit-identical to the uniform run while the makespan
// shows stragglers and slow cohorts dominating the simulated wall-clock.

// e17SortKey orders edges by (weight, u, v) for the E17 sample sort.
func e17SortKey(e graph.Edge) prims.SortKey {
	return prims.SortKey{A: e.W, B: int64(e.U), C: int64(e.V)}
}

// E17SkewPlacement sweeps a Zipf capacity skew: edges are placed and sample
// sorted under per-machine caps; proportional allotment (Frisk's rule)
// keeps every bucket within its machine's capacity, and the held-item ratio
// tracks the capacity ratio.
func E17SkewPlacement(seed uint64) (*Table, error) {
	const n, m = 512, 8192
	t := &Table{
		Title: fmt.Sprintf("E17 — Zipf capacity skew: proportional placement + sort, n=%d m=%d", n, m),
		Header: []string{"zipf s", "cap scale min..max", "items first/last machine",
			"held words/cap", "rounds", "makespan", "imbalance"},
	}
	g := graph.GNMWeighted(n, m, seed)
	for _, s := range []float64{0, 0.4, 0.8, 1.2} {
		cfg := mpc.Config{N: n, M: m, Seed: seed}
		cfg.Profile = mpc.ZipfProfile(cfg.DeriveK(), s, 0.05)
		c, err := build(cfg)
		if err != nil {
			return nil, err
		}
		k := c.K()
		data, err := prims.DistributeEdges(c, g)
		if err != nil {
			return nil, err
		}
		sorted, err := prims.Sort(c, data, prims.EdgeWords, e17SortKey)
		if err != nil {
			return nil, err
		}
		if !prims.IsGloballySorted(sorted, e17SortKey) {
			return nil, fmt.Errorf("e17: s=%g: sort postcondition violated", s)
		}
		if got := prims.CountItems(sorted); got != m {
			return nil, fmt.Errorf("e17: s=%g: %d items after sort, want %d", s, got, m)
		}
		// Occupancy after the sort: the largest final bucket relative to
		// its own machine's cap. Per-round receive volumes are enforced
		// separately by Exchange (any violation would have errored above).
		worstFill := 0.0
		for i := 0; i < k; i++ {
			if fill := float64(len(sorted[i])*prims.EdgeWords) / float64(c.SmallCapOf(i)); fill > worstFill {
				worstFill = fill
			}
		}
		st := c.Stats()
		t.AddRow(s,
			fmt.Sprintf("%.2f..%.2f", c.CapShare(k-1), c.CapShare(0)),
			fmt.Sprintf("%d/%d", len(sorted[0]), len(sorted[k-1])),
			worstFill, st.Rounds, st.Makespan, c.BusyImbalance())
	}
	t.Notes = append(t.Notes,
		"buckets follow CapShare (machine 0 largest); every machine stays inside its own cap",
		"imbalance = max/mean small-machine busy time; 1 = perfectly balanced",
	)
	return t, nil
}

// E18Stragglers sweeps a straggler tail under MST: capacities (and hence
// the round structure and the output) are identical to the uniform run,
// while the makespan grows with the slowdown — the Reisizadeh et al.
// observation that stragglers dominate wall-clock.
func E18Stragglers(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	t := &Table{
		Title:  fmt.Sprintf("E18 — straggler tail under MST, n=%d m=%d: rounds flat, makespan tracks the slowdown", n, m),
		Header: []string{"slowdown", "stragglers", "rounds", "makespan", "vs uniform", "straggler busy share"},
	}
	g := graph.ConnectedGNM(n, m, seed, true)
	_, exact := graph.KruskalMSF(g)
	baseRounds, baseMakespan := 0, 0.0
	for _, slowdown := range []float64{1, 4, 16, 64, 256} {
		cfg := mpc.Config{N: n, M: m, Seed: seed}
		k := cfg.DeriveK()
		stragglers := k / 16
		if stragglers < 1 {
			stragglers = 1
		}
		cfg.Profile = mpc.StragglerProfile(k, stragglers, slowdown)
		c, err := build(cfg)
		if err != nil {
			return nil, err
		}
		r, err := core.MST(c, g)
		if err != nil {
			return nil, err
		}
		if r.Weight != exact {
			return nil, fmt.Errorf("e18: slowdown=%g: MST weight %d, want %d", slowdown, r.Weight, exact)
		}
		st := c.Stats()
		if slowdown == 1 {
			baseRounds, baseMakespan = st.Rounds, st.Makespan
		} else if st.Rounds != baseRounds {
			return nil, fmt.Errorf("e18: slowdown=%g changed the round count: %d vs %d", slowdown, st.Rounds, baseRounds)
		}
		t.AddRow(slowdown, stragglers, st.Rounds, st.Makespan,
			st.Makespan/baseMakespan, c.BusyTime(k-1)/st.Makespan)
	}
	t.Notes = append(t.Notes,
		"speed-only skew: caps uniform, so placement, messages and output are bit-identical across rows",
	)
	return t, nil
}

// E19Bimodal sweeps a fast/slow cluster (bimodal speeds and bandwidths)
// under connectivity and matching: growing the slow cohort grows the
// makespan at constant round counts, until at half the cluster the slow
// machines set the clock.
func E19Bimodal(seed uint64) (*Table, error) {
	const n, m = 512, 4096
	const factor = 4.0
	t := &Table{
		Title:  fmt.Sprintf("E19 — bimodal fast/slow (×%g) cluster, n=%d m=%d", factor, n, m),
		Header: []string{"slow frac", "cc rounds", "cc makespan", "vs uniform", "matching rounds", "matching makespan", "vs uniform"},
	}
	g := graph.GNM(n, m, seed)
	_, wantComps := graph.Components(g)
	baseCC, baseMatch := 0.0, 0.0
	for _, slowFrac := range []float64{0, 0.125, 0.25, 0.5} {
		mk := func() (*mpc.Cluster, error) {
			cfg := mpc.Config{N: n, M: m, Seed: seed}
			cfg.Profile = mpc.BimodalProfile(cfg.DeriveK(), slowFrac, factor)
			return build(cfg)
		}
		cc, err := mk()
		if err != nil {
			return nil, err
		}
		rc, err := core.Connectivity(cc, g)
		if err != nil {
			return nil, err
		}
		if rc.Components != wantComps {
			return nil, fmt.Errorf("e19: slowfrac=%g: %d components, want %d", slowFrac, rc.Components, wantComps)
		}
		cm, err := mk()
		if err != nil {
			return nil, err
		}
		rm, err := core.MaximalMatching(cm, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMatching(g, rm.Edges, true); err != nil {
			return nil, err
		}
		stc, stm := cc.Stats(), cm.Stats()
		if slowFrac == 0 {
			baseCC, baseMatch = stc.Makespan, stm.Makespan
		}
		t.AddRow(slowFrac, stc.Rounds, stc.Makespan, stc.Makespan/baseCC,
			stm.Rounds, stm.Makespan, stm.Makespan/baseMatch)
	}
	t.Notes = append(t.Notes,
		"the slow cohort sits at the high machine ids; speeds and bandwidths scaled, caps uniform",
	)
	return t, nil
}
