package exp

import (
	"fmt"

	"hetmpc/internal/core"
	"hetmpc/internal/fault"
	"hetmpc/internal/graph"
	"hetmpc/internal/metrics"
	"hetmpc/internal/mpc"
	"hetmpc/internal/sched"
	"hetmpc/internal/sublinear"
	"hetmpc/internal/trace"
	"hetmpc/internal/wire"
)

// Sizes used by the Table 1 reproduction. Small enough to run in seconds,
// large enough that the log-vs-loglog-vs-constant separations are visible.
const (
	t1N       = 512
	t1M       = 4096
	t1CutN    = 128 // Stoer-Wagner reference is cubic; min-cut rows use this
	t1ApproxN = 96  // the threshold sweep runs many sketch-connectivity passes
)

func newHet(n, m int, f float64, seed uint64) (*mpc.Cluster, error) {
	return build(mpc.Config{N: n, M: m, F: f, Seed: seed})
}

func newSub(n, m int, seed uint64) (*mpc.Cluster, error) {
	return build(mpc.Config{N: n, M: m, NoLarge: true, Seed: seed})
}

// build applies the package profile, fault-plan, placement and transport
// overrides (SetProfile, SetFaults, SetPlacement, SetTransport), constructs
// the cluster and registers it with the run tracker.
func build(cfg mpc.Config) (*mpc.Cluster, error) {
	profileApplied, faultsApplied, placementApplied := false, false, false
	transportApplied := false
	if profileSpec != "" && cfg.Profile == nil {
		p, err := mpc.ParseProfile(profileSpec, cfg.DeriveK())
		if err != nil {
			return nil, err
		}
		cfg.Profile = p
		profileApplied = p != nil // "uniform" parses to nil: baseline, no tag
	}
	if faultSpec != "" && cfg.Faults == nil {
		p, err := fault.ParsePlan(faultSpec, cfg.DeriveK())
		if err != nil {
			return nil, err
		}
		cfg.Faults = p
		faultsApplied = p != nil // "none" parses to nil: baseline, no tag
	}
	if placementSpec != "" && cfg.Placement == nil {
		p, err := sched.Parse(placementSpec)
		if err != nil {
			return nil, err
		}
		cfg.Placement = p
		placementApplied = p != nil // "cap" parses to nil: baseline, no tag
	}
	if transportSpec != "" && cfg.Transport == nil {
		// Each cluster gets its own transport instance: links are per-cluster
		// resources, not shareable across concurrently live clusters.
		tr, err := wire.Parse(transportSpec)
		if err != nil {
			return nil, err
		}
		cfg.Transport = tr
		transportApplied = tr != nil // "inproc" parses to nil: baseline, no tag
	}
	if traceOn && cfg.Trace == nil {
		// Unlike the overrides above, tracing observes without perturbing:
		// the artifact gains a trace summary but keeps its baseline name
		// and bit-identical model numbers, so no tag is recorded.
		cfg.Trace = trace.New()
	}
	if metricsReg != nil && cfg.Metrics == nil {
		// Metrics share the trace contract — observation only — and the one
		// run-wide registry, so the snapshot sums every cluster of the run.
		cfg.Metrics = metricsReg
	}
	c, err := mpc.New(cfg)
	if err == nil {
		trackCluster(c)
		if profileApplied || faultsApplied || placementApplied || transportApplied {
			trackOverrides(profileApplied, faultsApplied, placementApplied, transportApplied)
		}
	}
	return c, err
}

// profileSpec is the cross-cutting machine-profile override; see SetProfile.
var profileSpec string

// faultSpec is the cross-cutting fault-plan override; see SetFaults.
var faultSpec string

// placementSpec is the cross-cutting placement-policy override; see
// SetPlacement.
var placementSpec string

// transportSpec is the cross-cutting Exchange-transport override; see
// SetTransport.
var transportSpec string

// traceOn is the cross-cutting trace toggle; see SetTrace.
var traceOn bool

// metricsOn is the cross-cutting metrics toggle; see SetMetrics. metricsReg
// is the in-flight run's registry, created by RunFull and cleared when the
// run finishes (nil outside a metered run).
var (
	metricsOn  bool
	metricsReg *metrics.Registry
)

// SetMetrics attaches a fresh metrics registry to every cluster of each
// subsequently started Run (hetbench -metrics): the artifact gains the
// sorted registry snapshot in its "metrics" field — the engine-level
// counters, gauges and histograms of DESIGN.md §12. Metrics observe without
// perturbing (the Config.Metrics contract), so metered artifacts keep the
// baseline name and bit-identical model numbers.
func SetMetrics(on bool) { metricsOn = on }

// SetTrace attaches a fresh trace collector to every subsequently built
// experiment cluster that does not pin its own (hetbench -trace): the
// artifact gains the per-phase critical-path summary in its "trace" field.
// Tracing never changes the measured model stats, so traced artifacts keep
// the baseline name. E26–E28 trace their clusters unconditionally.
func SetTrace(on bool) { traceOn = on }

// specProbeK is the machine count the override setters pre-validate their
// specs against: large enough that machine-addressed clauses (custom:…,
// crash:…, slow:…) of any realistic cluster pass here and are checked for
// real — against the cluster's true K — at build time.
const specProbeK = 1 << 16

// SetProfile installs a machine-profile spec (mpc.ParseProfile syntax) that
// every subsequently built experiment cluster adopts — e.g. run Table 1
// under "straggler:2:8" and read the makespan column of the artifact. The
// empty spec (or "uniform") restores the paper's uniform cluster. Specs are
// validated here; the per-cluster K is only known at build time.
func SetProfile(spec string) error {
	if _, err := mpc.ParseProfile(spec, specProbeK); err != nil {
		return err
	}
	profileSpec = spec
	return nil
}

// SetFaults installs a fault-plan spec (fault.ParsePlan syntax) that every
// subsequently built experiment cluster adopts — e.g. run Table 1 under
// "ckpt:8+rate:0.002" and read the crashes/recovery_rounds/makespan columns
// of the artifact. The empty spec (or "none") restores the reliable
// cluster.
func SetFaults(spec string) error {
	if _, err := fault.ParsePlan(spec, specProbeK); err != nil {
		return err
	}
	faultSpec = spec
	return nil
}

// SetPlacement installs a placement-policy spec (sched.Parse syntax) that
// every subsequently built experiment cluster adopts — e.g. run Table 1
// under "throughput" or "speculate:2" and compare the makespan column
// against the committed cap baseline. The empty spec (or "cap") restores
// the capacity-proportional default. Experiments that pin their own policy
// (E23–E25) ignore the override, exactly like pinned profiles and plans.
func SetPlacement(spec string) error {
	if _, err := sched.Parse(spec); err != nil {
		return err
	}
	placementSpec = spec
	return nil
}

// SetTransport installs an Exchange-transport spec (wire.Parse syntax:
// "inproc", "pipe", "tcp") that every subsequently built experiment cluster
// adopts — e.g. run Table 1 over loopback TCP and read the wire_bytes column
// of the artifact next to the unchanged modeled words. The empty spec (or
// "inproc") restores the in-process memcpy path. Each cluster gets a fresh
// transport instance at build time; only the spec is cross-cutting.
func SetTransport(spec string) error {
	if _, err := wire.Parse(spec); err != nil {
		return err
	}
	transportSpec = spec
	return nil
}

// Table1 reproduces the paper's Table 1: for each problem it measures the
// executed communication rounds in the sublinear baseline regime (no large
// machine), the heterogeneous regime (one near-linear machine), and the
// heterogeneous regime with a superlinear machine (f = 0.5, the abstract's
// "all problems in O(1) rounds" setting), next to the complexities the paper
// states. Output correctness is validated on every run.
func Table1(seed uint64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Table 1 — measured rounds, n=%d m=%d (γ=0.5; min-cut rows n=%d)", t1N, t1M, t1CutN),
		Header: []string{"problem", "sublinear (measured)", "heterogeneous (measured)", "het+superlinear (measured)",
			"paper: sublinear", "paper: heterogeneous", "paper: near-linear"},
	}

	gU := graph.ConnectedGNM(t1N, t1M, seed, false)
	gW := graph.ConnectedGNM(t1N, t1M, seed, true)

	// --- Connectivity ---
	{
		cs, err := newSub(t1N, t1M, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.Connectivity(cs, gU)
		if err != nil {
			return nil, err
		}
		ch, err := newHet(t1N, t1M, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.Connectivity(ch, gU)
		if err != nil {
			return nil, err
		}
		if rh.Components != rs.Components {
			return nil, fmt.Errorf("connectivity mismatch: %d vs %d", rh.Components, rs.Components)
		}
		cf, err := newHet(t1N, t1M, 0.5, seed)
		if err != nil {
			return nil, err
		}
		rf, err := core.Connectivity(cf, gU)
		if err != nil {
			return nil, err
		}
		t.AddRow("connectivity",
			fmt.Sprintf("%d rounds (%d phases)", rs.Stats.Rounds, rs.Phases),
			fmt.Sprintf("%d rounds", rh.Stats.Rounds),
			fmt.Sprintf("%d rounds", rf.Stats.Rounds),
			"O(log D + loglog n)", "O(1)", "O(1)")
	}

	// --- MST ---
	{
		cs, err := newSub(t1N, t1M, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.MST(cs, gW)
		if err != nil {
			return nil, err
		}
		ch, err := newHet(t1N, t1M, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MST(ch, gW)
		if err != nil {
			return nil, err
		}
		if rh.Weight != rs.Weight {
			return nil, fmt.Errorf("MST weight mismatch: %d vs %d", rh.Weight, rs.Weight)
		}
		if err := graph.CheckMST(gW, rh.Edges); err != nil {
			return nil, err
		}
		cf, err := newHet(t1N, t1M, 0.5, seed)
		if err != nil {
			return nil, err
		}
		rf, err := core.MST(cf, gW)
		if err != nil {
			return nil, err
		}
		t.AddRow("MST",
			fmt.Sprintf("%d rounds (%d phases)", rs.Stats.Rounds, rs.Phases),
			fmt.Sprintf("%d rounds (%d phases)", rh.Stats.Rounds, rh.BoruvkaPhases),
			fmt.Sprintf("%d rounds (%d phases)", rf.Stats.Rounds, rf.BoruvkaPhases),
			"O(log n)", "O(loglog(m/n)) [new]", "O(1)")
	}

	// --- (1+ε)-approx MST weight ---
	{
		gA := graph.ConnectedGNM(t1ApproxN, t1ApproxN*6, seed, true)
		for i := range gA.Edges {
			gA.Edges[i].W = gA.Edges[i].W%32 + 1
		}
		_, exact := graph.KruskalMSF(gA)
		ch, err := newHet(gA.N, gA.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.ApproxMSTWeight(ch, gA, 0.25)
		if err != nil {
			return nil, err
		}
		errPct := 100 * float64(rh.Estimate-exact) / float64(exact)
		t.AddRow("(1+eps)-approx MST",
			"(no better than exact)",
			fmt.Sprintf("%d rounds/threshold, err %+.1f%%", rh.Stats.Rounds/rh.Thresholds, errPct),
			"same as heterogeneous",
			"—", "O(1) per threshold", "exact in O(1)")
	}

	// --- O(k)-spanner ---
	{
		k := 4
		cs, err := newSub(t1N, t1M, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.Spanner(cs, gU, k)
		if err != nil {
			return nil, err
		}
		hs := graph.New(gU.N, rs.Edges, false)
		if err := graph.CheckSpanner(gU, hs, 2*k-1, 4, seed); err != nil {
			return nil, err
		}
		ch, err := newHet(t1N, t1M, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.Spanner(ch, gU, k)
		if err != nil {
			return nil, err
		}
		h := graph.New(gU.N, rh.Edges, false)
		if err := graph.CheckSpanner(gU, h, rh.Stretch, 4, seed); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("O(k)-spanner (k=%d)", k),
			fmt.Sprintf("%d rounds (%d levels; plain BS)", rs.Stats.Rounds, rs.Levels),
			fmt.Sprintf("%d rounds, %d edges", rh.Stats.Rounds, len(rh.Edges)),
			"same as heterogeneous",
			"O(log k) [14]", "O(1) [new]", "O(1)")
	}

	// --- exact unweighted min cut ---
	{
		gC := graph.PlantedCut(t1CutN, 400, 3, seed, false)
		want := graph.StoerWagner(gC)
		ch, err := newHet(gC.N, gC.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MinCutUnweighted(ch, gC)
		if err != nil {
			return nil, err
		}
		status := "exact"
		if rh.Value != want {
			status = fmt.Sprintf("MISMATCH got %d want %d", rh.Value, want)
		}
		t.AddRow("exact unweighted min cut",
			"(not reproduced; [25])",
			fmt.Sprintf("%d rounds/trial (%s)", rh.Stats.Rounds/rh.Trials, status),
			"same as heterogeneous",
			"O(polylog n)", "O(1) per trial", "O(1)")
	}

	// --- (1±ε) weighted min cut ---
	{
		gC := graph.PlantedCut(t1CutN, 400, 3, seed+1, true)
		want := graph.StoerWagner(gC)
		ch, err := newHet(gC.N, gC.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.ApproxMinCut(ch, gC, 0.25)
		if err != nil {
			return nil, err
		}
		errPct := 100 * float64(rh.Value-want) / float64(want)
		t.AddRow("(1±eps) weighted min cut",
			"(2+eps) in O(log n loglog n)",
			fmt.Sprintf("%d rounds/guess, err %+.1f%%", rh.Stats.Rounds/rh.Trials, errPct),
			"same as heterogeneous",
			"O(log n · loglog n)", "O(1) per guess", "exact in O(1)")
	}

	// --- (Δ+1) coloring ---
	{
		cs, err := newSub(t1N, t1M, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.Coloring(cs, gU)
		if err != nil {
			return nil, err
		}
		ch, err := newHet(t1N, t1M, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.Coloring(ch, gU)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckColoring(gU, rh.Colors, rh.MaxColor); err != nil {
			return nil, err
		}
		t.AddRow("(Δ+1) vertex coloring",
			fmt.Sprintf("%d rounds (%d trials)", rs.Stats.Rounds, rs.Rounds),
			fmt.Sprintf("%d rounds", rh.Stats.Rounds),
			"same as heterogeneous",
			"O(logloglog n)", "O(1)", "O(1)")
	}

	// --- MIS ---
	{
		cs, err := newSub(t1N, t1M, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.MIS(cs, gU)
		if err != nil {
			return nil, err
		}
		ch, err := newHet(t1N, t1M, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MIS(ch, gU)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMIS(gU, rh.Set); err != nil {
			return nil, err
		}
		t.AddRow("maximal independent set",
			fmt.Sprintf("%d rounds (%d Luby rounds)", rs.Stats.Rounds, rs.Rounds),
			fmt.Sprintf("%d rounds (%d iterations)", rh.Stats.Rounds, rh.Iterations),
			"same as heterogeneous",
			"Õ(√log Δ + √loglog n)", "O(loglog Δ)", "O(loglog Δ)")
	}

	// --- maximal matching ---
	{
		cs, err := newSub(t1N, t1M, seed)
		if err != nil {
			return nil, err
		}
		_, ps, err := sublinear.MaximalMatching(cs, gU)
		if err != nil {
			return nil, err
		}
		ch, err := newHet(t1N, t1M, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MaximalMatching(ch, gU)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMatching(gU, rh.Edges, true); err != nil {
			return nil, err
		}
		cf, err := newHet(t1N, t1M, 0.5, seed)
		if err != nil {
			return nil, err
		}
		rf, err := core.MatchingFiltering(cf, gU)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMatching(gU, rf.Edges, true); err != nil {
			return nil, err
		}
		t.AddRow("maximal matching",
			fmt.Sprintf("%d rounds (%d peel iters)", ps.Stats.Rounds, ps.Iterations),
			fmt.Sprintf("%d rounds (%d phase-1 iters)", rh.Stats.Rounds, rh.Phase1Iters),
			fmt.Sprintf("%d rounds (%d filter iters)", rf.Stats.Rounds, rf.FilterIters),
			"Õ(√log Δ + √loglog n)", "Õ(√log(m/n)) [new]", "O(loglog Δ)")
	}

	t.Notes = append(t.Notes,
		"every output is validated against exact references before the row is emitted",
		"peeling substitutes [33]'s sparsification (DESIGN.md subst. 1); sequential trials per DESIGN.md subst. 2",
	)
	return t, nil
}
