package exp

import (
	"strings"
	"testing"
)

// TestSetPlacementOverride: a cross-cutting placement spec rebuilds an
// experiment under the policy, tags its artifact, and renames the file so
// the committed cap baseline is never clobbered.
func TestSetPlacementOverride(t *testing.T) {
	if err := SetPlacement("bogus"); err == nil {
		t.Fatal("bad placement spec accepted")
	}
	if err := SetPlacement("throughput"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetPlacement(""); err != nil {
			t.Fatal(err)
		}
	}()
	art, err := Run("e9", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Placement != "throughput" {
		t.Fatalf("artifact placement tag %q, want throughput", art.Placement)
	}
	dir := t.TempDir()
	path, err := art.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, "@place=throughput") {
		t.Fatalf("placed artifact path %q lacks the @place= tag", path)
	}

	// E23 pins its own policies per row; the override must not reach it,
	// and its artifact must keep the baseline name.
	art, err = Run("e23", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Placement != "" {
		t.Fatalf("pinned experiment tagged with the override: %q", art.Placement)
	}
}

// TestE24ArtifactCarriesSpeculationWords: the E24 artifact must expose the
// speculation traffic in its model stats (the wire format the CI smoke
// step checks).
func TestE24ArtifactCarriesSpeculationWords(t *testing.T) {
	art, err := Run("e24", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Model.SpeculationWords == 0 {
		t.Fatalf("speculation words missing from model stats: %+v", art.Model)
	}
}
