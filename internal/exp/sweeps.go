package exp

import (
	"fmt"
	"math"

	"hetmpc/internal/core"
	"hetmpc/internal/graph"
	"hetmpc/internal/labeling"
	"hetmpc/internal/sublinear"
	"hetmpc/internal/xrand"
)

// E2MSTDensity sweeps the edge density: heterogeneous rounds should track
// log log(m/n) (near-flat) while the sublinear baseline tracks log n phases.
func E2MSTDensity(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E2 — MST rounds vs density (n=512): het ~ loglog(m/n), baseline ~ log n",
		Header: []string{"m/n", "het phases", "het rounds", "baseline phases", "baseline rounds", "loglog(m/n)"},
	}
	n := 512
	for _, ratio := range []int{2, 4, 8, 16, 32} {
		m := ratio * n
		g := graph.ConnectedGNM(n, m, seed+uint64(ratio), true)
		ch, err := newHet(n, m, 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MST(ch, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMST(g, rh.Edges); err != nil {
			return nil, err
		}
		cs, err := newSub(n, m, seed)
		if err != nil {
			return nil, err
		}
		rs, err := sublinear.MST(cs, g)
		if err != nil {
			return nil, err
		}
		if rs.Weight != rh.Weight {
			return nil, fmt.Errorf("weight mismatch at ratio %d", ratio)
		}
		t.AddRow(ratio, rh.BoruvkaPhases, rh.Stats.Rounds, rs.Phases, rs.Stats.Rounds,
			math.Log2(math.Log2(float64(ratio))+1))
	}
	return t, nil
}

// E3MSTSuperlinear sweeps the large machine's exponent f (Theorem 3.1):
// phases shrink as log(log_n(m/n)/f).
func E3MSTSuperlinear(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E3 — MST phases vs large-machine exponent f (Theorem 3.1), n=512 m=16384",
		Header: []string{"f", "phases", "rounds", "sample tries"},
	}
	n, m := 512, 16384
	g := graph.ConnectedGNM(n, m, seed, true)
	for _, f := range []float64{0, 0.125, 0.25, 0.5} {
		c, err := newHet(n, m, f, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.MST(c, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMST(g, r.Edges); err != nil {
			return nil, err
		}
		t.AddRow(f, r.BoruvkaPhases, r.Stats.Rounds, r.SampleTries)
	}
	return t, nil
}

// E4KKT validates Lemma 3.2 empirically: E[#F-light edges] ≤ n/p.
func E4KKT(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E4 — KKT sampling lemma (Lemma 3.2): measured F-light edges vs n/p bound (n=256, m=4096)",
		Header: []string{"p", "avg F-light", "bound n/p", "ratio"},
	}
	n, m := 256, 4096
	g := graph.GNMWeighted(n, m, seed)
	rng := xrand.New(seed + 7)
	for _, p := range []float64{0.05, 0.1, 0.2, 0.4} {
		const trials = 5
		total := 0
		for trial := 0; trial < trials; trial++ {
			var sample []graph.Edge
			for _, e := range g.Edges {
				if rng.Float64() < p {
					sample = append(sample, e)
				}
			}
			f, _ := graph.KruskalMSF(graph.New(n, sample, true))
			labels := labeling.Build(n, f)
			for _, e := range g.Edges {
				if labeling.FLight(e, labels[e.U], labels[e.V]) {
					total++
				}
			}
		}
		avg := float64(total) / trials
		bound := float64(n) / p
		t.AddRow(p, avg, bound, avg/bound)
	}
	t.Notes = append(t.Notes, "ratio must stay at most ~1 (the lemma bounds the expectation)")
	return t, nil
}

// E5Spanner sweeps k: size must scale like n^{1+1/k} and rounds stay O(1).
func E5Spanner(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E5 — spanner size & rounds vs k (Theorem 4.1), n=256 m=16384",
		Header: []string{"k", "stretch bound", "edges", "n^{1+1/k}", "size ratio", "rounds", "stretch check"},
	}
	n, m := 256, 16384
	g := graph.ConnectedGNM(n, m, seed, false)
	for _, k := range []int{2, 3, 4, 6, 8} {
		c, err := newHet(n, m, 0, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.Spanner(c, g, k)
		if err != nil {
			return nil, err
		}
		h := graph.New(n, r.Edges, false)
		check := "ok"
		if err := graph.CheckSpanner(g, h, r.Stretch, 4, seed); err != nil {
			check = err.Error()
		}
		bound := math.Pow(float64(n), 1+1/float64(k))
		t.AddRow(k, r.Stretch, len(r.Edges), bound, float64(len(r.Edges))/bound, r.Stats.Rounds, check)
	}
	t.Notes = append(t.Notes,
		"size stays well under the O(n^{1+1/k}) bound at every k and rounds are k-independent (O(1))",
		"random graphs admit far smaller spanners than the worst-case bound (tightness needs high-girth instances)")
	return t, nil
}

// E6ModifiedBS reproduces Figure 1's behaviour quantitatively: the modified
// Baswana-Sen spanner grows by ≈1/p relative to the original (Lemma 4.3).
func E6ModifiedBS(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E6 — Figure 1: original vs modified Baswana-Sen (n=256, m=4096, k=3)",
		Header: []string{"p", "avg size", "size vs original", "1/p", "stretch check"},
	}
	n, m, k := 256, 4096, 3
	g := graph.ConnectedGNM(n, m, seed, false)
	origSize := 0
	{
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			h := core.BaswanaSenReference(g, k, xrand.Split(seed, uint64(trial)))
			origSize += len(h)
		}
		origSize /= trials
	}
	t.AddRow("1 (original)", origSize, 1.0, 1.0, "ok")
	for _, p := range []float64{0.5, 0.25, 0.125} {
		const trials = 3
		total := 0
		check := "ok"
		for trial := 0; trial < trials; trial++ {
			h := core.ModifiedBaswanaSenReference(g, k, p, xrand.Split(seed, uint64(trial)*13+1))
			hg := graph.New(n, h, false)
			if err := graph.CheckSpanner(g, hg, 2*k-1, 3, seed); err != nil {
				check = err.Error()
			}
			total += len(h)
		}
		avg := total / trials
		t.AddRow(p, avg, float64(avg)/float64(origSize), 1/p, check)
	}
	t.Notes = append(t.Notes, "Lemma 4.3: expected size O(k n^{1+1/k} / p); stretch stays 2k-1")
	return t, nil
}

// E7Matching demonstrates the d-vs-Δ separation of Theorem 5.1: phase-1
// iterations are flat in the hub degree (Δ) and grow with the average
// degree d, while the baseline tracks the whole graph.
func E7Matching(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E7 — matching rounds: average degree d vs max degree Δ (Theorem 5.1), n=600",
		Header: []string{"workload", "Δ", "avg deg", "het phase-1 iters", "het rounds", "baseline peel iters", "baseline rounds"},
	}
	n := 600
	for _, hubDeg := range []int{50, 200, 500} {
		g := graph.PlantedHubs(n, 4, 4, hubDeg, seed+uint64(hubDeg))
		ch, err := newHet(n, g.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MaximalMatching(ch, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMatching(g, rh.Edges, true); err != nil {
			return nil, err
		}
		cs, err := newSub(n, g.M(), seed)
		if err != nil {
			return nil, err
		}
		_, ps, err := sublinear.MaximalMatching(cs, g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("hubs Δ≈%d, d≈4", hubDeg), g.MaxDegree(),
			fmt.Sprintf("%.1f", g.AvgDegree()), rh.Phase1Iters, rh.Stats.Rounds,
			ps.Iterations, ps.Stats.Rounds)
	}
	for _, d := range []int{4, 16, 48} {
		g := graph.GNM(n, n*d/2, seed+uint64(d))
		ch, err := newHet(n, g.M(), 0, seed)
		if err != nil {
			return nil, err
		}
		rh, err := core.MaximalMatching(ch, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMatching(g, rh.Edges, true); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("GNM d≈%d", d), g.MaxDegree(),
			fmt.Sprintf("%.1f", g.AvgDegree()), rh.Phase1Iters, rh.Stats.Rounds, "—", "—")
	}
	return t, nil
}

// E8Filtering sweeps the superlinear exponent for Theorem 5.5: filtering
// iterations scale like 1/f.
func E8Filtering(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "E8 — matching filtering iterations vs f (Theorem 5.5), n=256 m=16384",
		Header: []string{"f", "filter iters", "rounds", "~1/f"},
	}
	n, m := 256, 16384
	g := graph.GNM(n, m, seed)
	for _, f := range []float64{0.1, 0.2, 0.35, 0.6} {
		c, err := newHet(n, m, f, seed)
		if err != nil {
			return nil, err
		}
		r, err := core.MatchingFiltering(c, g)
		if err != nil {
			return nil, err
		}
		if err := graph.CheckMatching(g, r.Edges, true); err != nil {
			return nil, err
		}
		t.AddRow(f, r.FilterIters, r.Stats.Rounds, 1/f)
	}
	return t, nil
}
