package exp

import (
	"encoding/json"
	"testing"
)

// TestSetTraceArtifact: under the cross-cutting trace toggle (hetbench
// -trace) an ordinary experiment's artifact gains the phase summary, the
// summary conserves the model totals exactly (every cluster of the run is
// traced), the artifact keeps its baseline name (tracing is observational,
// not an override), and the field marshals under the stable "trace" key.
// E14 is the cheapest experiment that moves real traffic.
func TestSetTraceArtifact(t *testing.T) {
	SetTrace(true)
	defer SetTrace(false)
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Trace == nil {
		t.Fatal("artifact has no trace field under SetTrace(true)")
	}
	if art.Trace.Clusters != art.Model.Clusters {
		t.Fatalf("traced %d of %d clusters", art.Trace.Clusters, art.Model.Clusters)
	}
	if len(art.Trace.Phases) == 0 {
		t.Fatal("empty phase breakdown")
	}
	if art.Trace.Words != art.Model.TotalWords {
		t.Fatalf("trace words %d != model %d", art.Trace.Words, art.Model.TotalWords)
	}
	if art.Trace.Makespan != art.Model.Makespan {
		t.Fatalf("trace makespan %v != model %v (must be bit-identical: same sums, same order)",
			art.Trace.Makespan, art.Model.Makespan)
	}
	if art.Trace.Rounds != art.Model.Rounds {
		t.Fatalf("trace rounds %d != model %d", art.Trace.Rounds, art.Model.Rounds)
	}
	// The phase rows partition the totals (tolerance-free for words).
	var words int64
	for _, p := range art.Trace.Phases {
		words += p.Words
	}
	if words != art.Trace.Words {
		t.Fatalf("phase words sum %d != trace total %d", words, art.Trace.Words)
	}
	// Profile/Faults/Placement naming is untouched by tracing.
	if art.Profile != "" || art.Faults != "" || art.Placement != "" {
		t.Fatalf("tracing tagged the artifact: %+v", art)
	}
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	tr, ok := m["trace"].(map[string]any)
	if !ok {
		t.Fatalf("marshaled artifact lacks the trace object: %s", raw)
	}
	for _, key := range []string{"clusters", "rounds", "total_words", "makespan", "phases"} {
		if _, ok := tr[key]; !ok {
			t.Fatalf("trace object lacks %q: %s", key, raw)
		}
	}
}

// TestSetTraceArtifactNonDyadicCosts: the cross-cluster bit-identity must
// survive per-word costs that are not exactly representable in binary
// (slowdown 1.7). Regression for a real drift: summing the concatenated
// records as one running total regroups the float additions across
// cluster boundaries and lands ulps away from the model's
// per-cluster-subtotal sum; the artifact must group the same way the
// model does.
func TestSetTraceArtifactNonDyadicCosts(t *testing.T) {
	SetTrace(true)
	if err := SetProfile("straggler:2:1.7"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		SetTrace(false)
		if err := SetProfile(""); err != nil {
			t.Fatal(err)
		}
	}()
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Trace == nil || art.Trace.Clusters < 2 {
		t.Fatalf("want a traced multi-cluster run, got %+v", art.Trace)
	}
	if art.Trace.Makespan != art.Model.Makespan {
		t.Fatalf("trace makespan %.17g != model %.17g under non-dyadic costs",
			art.Trace.Makespan, art.Model.Makespan)
	}
}

// TestUntracedArtifactOmitsTrace: without the toggle (and for experiments
// that do not trace themselves) the wire format is unchanged — no "trace"
// key at all, so downstream consumers of the committed baselines see the
// exact pre-refactor schema.
func TestUntracedArtifactOmitsTrace(t *testing.T) {
	art, err := Run("e14", 7)
	if err != nil {
		t.Fatal(err)
	}
	if art.Trace != nil {
		t.Fatal("untraced run produced a trace summary")
	}
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["trace"]; ok {
		t.Fatalf("untraced artifact carries a trace key: %s", raw)
	}
}
