package exp

import (
	"fmt"
	"reflect"

	"hetmpc/internal/core"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/wire"
)

// The E32 sweep exercises the wire subsystem (DESIGN.md §11): the deliver
// phase of Exchange moved onto a real transport — framed binary codec over
// a socketpair (pipe) or loopback TCP — with the in-process memcpy path as
// the baseline. The contract the sweep re-proves cell by cell is the
// conformance guarantee: transports change *how* bytes move, never *what*
// the model sees. Outputs, modeled stats and round structure are asserted
// bit-identical across all three transports; the only new observable is
// wire_bytes, which must be identical between the two real transports (the
// frame stream is canonical) and zero on inproc.

// E32TransportSweep runs MST and connectivity across machine profiles ×
// transports and reports the measured frame bytes next to the modeled
// words. Connectivity runs the speed-skew axis only, for E26's reason:
// capacity skew (zipf) shrinks the small machines below its sketch volume
// at this scale, and the capacity model rejects the run, as it must; MST
// covers the capacity-skew axis.
func E32TransportSweep(seed uint64) (*Table, error) {
	const n, m = 256, 2048
	t := &Table{
		Title: fmt.Sprintf("E32 — transport × profile sweep (measured wire bytes vs modeled words), n=%d m=%d", n, m),
		Header: []string{"alg", "profile", "transport", "rounds", "words",
			"wire bytes", "bytes/word", "makespan"},
	}
	gW := graph.ConnectedGNM(n, m, seed, true)
	gU := graph.GNM(n, m, seed)
	_, wantW := graph.KruskalMSF(gW)
	_, wantComps := graph.Components(gU)

	algs := []struct {
		name     string
		profiles []string
		run      func(c *mpc.Cluster) (any, error)
	}{
		{"mst", []string{"uniform", "zipf:0.8", "straggler:2:8"},
			func(c *mpc.Cluster) (any, error) {
				r, err := core.MST(c, gW)
				if err != nil {
					return nil, err
				}
				if r.Weight != wantW {
					return nil, fmt.Errorf("mst weight %d, want %d", r.Weight, wantW)
				}
				return r, nil
			}},
		{"connectivity", []string{"uniform", "bimodal:0.25:4", "straggler:2:8"},
			func(c *mpc.Cluster) (any, error) {
				r, err := core.Connectivity(c, gU)
				if err != nil {
					return nil, err
				}
				if r.Components != wantComps {
					return nil, fmt.Errorf("components %d, want %d", r.Components, wantComps)
				}
				return r, nil
			}},
	}
	for _, alg := range algs {
		for _, prof := range alg.profiles {
			var baseResult any
			var baseStats mpc.Stats
			var pipeBytes int64
			for _, transport := range []string{"inproc", "pipe", "tcp"} {
				label := fmt.Sprintf("e32: %s/%s/%s", alg.name, prof, transport)
				cfg := mpc.Config{N: n, M: m, Seed: seed}
				p, err := mpc.ParseProfile(prof, cfg.DeriveK())
				if err != nil {
					return nil, err
				}
				cfg.Profile = p
				if cfg.Transport, err = wire.Parse(transport); err != nil {
					return nil, err
				}
				c, err := build(cfg)
				if err != nil {
					return nil, err
				}
				res, err := alg.run(c)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", label, err)
				}
				st := c.Stats()
				c.Close() // sockets are per-cell resources; stats are read
				wireBytes := st.WireBytes
				st.WireBytes = 0 // compare the modeled side only
				switch transport {
				case "inproc":
					if wireBytes != 0 {
						return nil, fmt.Errorf("%s: measured %d wire bytes on shared memory", label, wireBytes)
					}
					baseResult, baseStats = res, st
				default:
					// The conformance contract, re-proved on every cell: the
					// wire changes nothing the model can see.
					if !reflect.DeepEqual(res, baseResult) {
						return nil, fmt.Errorf("%s: algorithm output diverged from inproc", label)
					}
					if st != baseStats {
						return nil, fmt.Errorf("%s: modeled stats diverged from inproc:\n got %+v\nwant %+v", label, st, baseStats)
					}
					if wireBytes <= 0 {
						return nil, fmt.Errorf("%s: no bytes measured on a real transport", label)
					}
					if transport == "pipe" {
						pipeBytes = wireBytes
					} else if wireBytes != pipeBytes {
						return nil, fmt.Errorf("%s: frame stream differs from pipe: %d vs %d bytes (encoding not canonical?)", label, wireBytes, pipeBytes)
					}
				}
				t.AddRow(alg.name, prof, transport, st.Rounds, st.TotalWords,
					wireBytes, float64(wireBytes)/float64(st.TotalWords), st.Makespan)
			}
		}
	}
	t.Notes = append(t.Notes,
		"outputs and modeled stats are asserted bit-identical across inproc/pipe/tcp in every cell; wire_bytes is the only observable that moves",
		"pipe and tcp carry the identical canonical frame stream (asserted equal), so bytes/word is a transport-independent framing overhead",
		"connectivity runs the speed-skew axis only: capacity skew shrinks the small machines below its sketch volume at this scale (E26's split); MST covers zipf",
	)
	return t, nil
}
