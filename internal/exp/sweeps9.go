package exp

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"hetmpc/internal/core"
	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/sketch"
	"hetmpc/internal/xrand"
)

// The E33 sweep is the hot-path speed gate (DESIGN.md §14): every cell runs
// one Table-1 algorithm twice on identically-configured clusters — once
// under the reference kernels (closure-based stable sorts, sort.Search
// bucket routing, heap-allocated sketches, map-based combines) and once
// under the optimized kernels (byte-skipping LSD radix sorts, sorted-run
// splitter scatter, arena-backed sketches) — and asserts the algorithm
// output and every modeled stat bit-identical before reporting the
// wall-clock ratio. The kernels are pure local-compute substitutions, so
// rounds, words and makespan cannot move; only time may.

// e33XLEnv unlocks the extra-large rungs (10^8-item routing, the 4M-edge
// MST cell). They need several GB of RAM and minutes of wall clock, so the
// default sweep stays test-sized.
const e33XLEnv = "HETMPC_E33_XL"

// E33ScaleSweep measures the optimized-vs-reference kernel speedup at 10×
// the Table-1 sizes, across K ∈ {64, 512, 4096}. The K=4096 rung exercises
// the routing substrate itself (prims.Sort over the flat-offset Exchange)
// rather than a full algorithm: at that width connectivity's sketch volume
// exceeds the per-machine capacity the model derives, as it must.
func E33ScaleSweep(seed uint64) (*Table, error) {
	t := &Table{
		Title: "E33 — kernel speedup at scale (reference vs optimized, outputs asserted identical)",
		Header: []string{"cell", "K", "n", "m", "rounds", "words",
			"ref ms", "fast ms", "speedup"},
	}
	defer func() { e33Graphs = map[string]*graph.Graph{} }()
	type cell struct {
		alg     string
		k, n, m int
	}
	cells := []cell{
		{"connectivity", 64, 4096, 4096},
		{"connectivity", 512, 8192, 32768},
		{"mst", 64, 4096, 262144},
		{"mst", 512, 8192, 1048576},
		{"matching", 64, 4096, 262144},
		{"sort-route", 4096, 1 << 20, 1 << 20},
	}
	if raceEnabled {
		// The race detector slows the kernels by an order of magnitude;
		// shrink to cells with the same K-vs-capacity shape, don't skip.
		cells = []cell{
			{"connectivity", 64, 1024, 2048},
			{"mst", 64, 1024, 16384},
			{"matching", 64, 1024, 16384},
			{"sort-route", 512, 1 << 16, 1 << 16},
		}
	}
	if os.Getenv(e33XLEnv) != "" {
		cells = append(cells,
			cell{"mst", 512, 8192, 4194304},
			cell{"sort-route", 4096, 1 << 30, 100_000_000},
		)
	}
	for _, cl := range cells {
		n, m := cl.n, cl.m
		var ref, fast *e33Run
		var err error
		for _, reference := range []bool{true, false} {
			// Best of two: the ratio column should reflect the kernels, not
			// whichever run a host hiccup landed on. Results are
			// deterministic, so the faster rep's output is the output.
			var best *e33Run
			for rep := 0; rep < 2 && err == nil; rep++ {
				r, e := e33RunCell(cl.alg, cl.k, n, m, seed, reference)
				if e != nil {
					err = fmt.Errorf("e33: %s K=%d: %w", cl.alg, cl.k, e)
					break
				}
				if best == nil || r.wall < best.wall {
					best = r
				}
			}
			if reference {
				ref = best
			} else {
				fast = best
			}
		}
		if err != nil {
			return nil, err
		}
		// The equivalence contract: kernels change time, never results or
		// the model. Any drift here is a kernel bug, not a regression to
		// tolerate.
		if !reflect.DeepEqual(ref.out, fast.out) {
			return nil, fmt.Errorf("e33: %s K=%d: output diverges between reference and fast kernels", cl.alg, cl.k)
		}
		if ref.st != fast.st {
			return nil, fmt.Errorf("e33: %s K=%d: modeled stats diverge between reference and fast kernels:\n ref %+v\nfast %+v", cl.alg, cl.k, ref.st, fast.st)
		}
		t.AddRow(cl.alg, cl.k, n, m, fast.st.Rounds, fast.st.TotalWords,
			float64(ref.wall.Microseconds())/1e3,
			float64(fast.wall.Microseconds())/1e3,
			fmt.Sprintf("%.2fx", float64(ref.wall)/float64(fast.wall)))
	}
	t.Notes = append(t.Notes,
		"per cell: identical clusters run under reference kernels (stable sorts, sort.Search routing, heap sketches) then optimized kernels (radix sorts, sorted-run scatter, arena sketches); outputs and modeled stats asserted bit-identical",
		"speedup is wall-clock ref/fast on this host; rounds/words/makespan cannot move (kernels are local compute)",
		"sort-route pins the K=4096 routing substrate (prims.Sort over the flat-offset Exchange); full connectivity at that width exceeds the derived per-machine sketch capacity, as the model requires. Its wall clock is delivery-bound — the per-machine sorts are m/K items — so a speedup near 1x is the expected reading; the row is the scale witness, not a kernel ratio",
		fmt.Sprintf("set %s=1 for the extra-large rungs (10^8 routed items, 4M-edge MST); they need several GB of RAM", e33XLEnv),
	)
	if raceEnabled {
		t.Notes = append(t.Notes, "race detector active: cells run at 1/8 size")
	}
	return t, nil
}

type e33Run struct {
	out  any
	st   mpc.Stats
	wall time.Duration
}

// e33RunCell builds one cluster, runs one algorithm under the requested
// kernel set and returns its output, modeled stats and wall time. Graph
// generation happens outside the timed region via the per-(alg,size) cache
// below — the sweep measures kernels, not generators.
func e33RunCell(alg string, k, n, m int, seed uint64, reference bool) (*e33Run, error) {
	prims.SetReferenceKernels(reference)
	sketch.SetReferenceKernels(reference)
	defer prims.SetReferenceKernels(false)
	defer sketch.SetReferenceKernels(false)

	c, err := build(mpc.Config{N: n, M: m, K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	run := &e33Run{}
	switch alg {
	case "sort-route":
		data := e33RouteItems(c.K(), m, seed)
		key := func(e graph.Edge) prims.SortKey {
			return prims.SortKey{A: int64(e.U), B: int64(e.V), C: e.W}
		}
		start := time.Now()
		out, err := prims.Sort(c, data, 3, key)
		run.wall = time.Since(start)
		if err != nil {
			return nil, err
		}
		if !prims.IsGloballySorted(out, key) {
			return nil, fmt.Errorf("sort-route output is not globally sorted")
		}
		run.out = out
	default:
		g := e33Graph(alg, n, m, seed)
		start := time.Now()
		var out any
		switch alg {
		case "connectivity":
			out, err = core.Connectivity(c, g)
		case "mst":
			out, err = core.MST(c, g)
		case "matching":
			out, err = core.MaximalMatching(c, g)
		default:
			err = fmt.Errorf("unknown e33 cell %q", alg)
		}
		run.wall = time.Since(start)
		if err != nil {
			return nil, err
		}
		run.out = out
	}
	run.st = c.Stats()
	return run, nil
}

// e33Graphs caches the generated input per (alg, n, m, seed) so the
// reference and fast passes of a cell time the algorithm on the exact same
// graph without regenerating it. The cache is cleared after each sweep
// (E33ScaleSweep's caller pattern is one sweep per process run; the XL
// graphs are the reason not to keep them alive).
var e33Graphs = map[string]*graph.Graph{}

func e33Graph(alg string, n, m int, seed uint64) *graph.Graph {
	ck := fmt.Sprintf("%s/%d/%d/%d", alg, n, m, seed)
	if g, ok := e33Graphs[ck]; ok {
		return g
	}
	var g *graph.Graph
	if alg == "mst" {
		g = graph.ConnectedGNM(n, m, seed, true)
	} else {
		g = graph.GNM(n, m, seed)
	}
	e33Graphs[ck] = g
	return g
}

// e33RouteItems synthesizes m pseudo-edges spread round-robin over k
// machines for the sort-route rung. Unlike the graph cells this skips GNM's
// distinctness machinery: the routing substrate doesn't care about simple
// graphs, and at 10^8 items a dedup set would cost more memory than the
// sweep itself.
func e33RouteItems(k, m int, seed uint64) [][]graph.Edge {
	rng := xrand.New(seed)
	data := make([][]graph.Edge, k)
	per := (m + k - 1) / k
	for i := range data {
		data[i] = make([]graph.Edge, 0, per)
	}
	for j := 0; j < m; j++ {
		data[j%k] = append(data[j%k], graph.Edge{
			U: int(rng.Uint64() % (1 << 30)),
			V: int(rng.Uint64() % (1 << 30)),
			W: int64(rng.Uint64() % (1 << 30)),
		})
	}
	return data
}
