// Package exp is the experiment harness: it regenerates the paper's Table 1
// and the figure-style sweeps listed in DESIGN.md §2 (E1..E25), printing
// measured round counts, output quality and paper-predicted complexities
// side by side. E17–E25 go beyond the paper's uniform model: E17–E19 sweep
// heterogeneous machine profiles (capacity skew, stragglers, fast/slow
// cohorts; DESIGN.md §6) and report the simulated makespan next to the
// round counts, E20–E22 sweep the fault-injection and recovery subsystem
// (DESIGN.md §7), and E23–E25 sweep the placement policies and speculation
// (DESIGN.md §8). It is consumed by cmd/hetbench and by the top-level
// benchmarks in bench_test.go; EXPERIMENTS.md records representative
// output, and SetProfile/SetFaults/SetPlacement rebuild any experiment
// under a chosen profile, fault plan or placement policy.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells. The JSON
// field names are part of the BENCH_*.json wire format.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, " | "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (no notes).
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}
