//go:build race

package exp

// raceEnabled reports that the race detector is active: the E33 scale sweep
// shrinks its cells there — the detector slows the hot kernels by an order
// of magnitude, and the sweep's contract (ref/fast equivalence) is
// size-independent.
const raceEnabled = true
