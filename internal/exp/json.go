package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"hetmpc/internal/metrics"
	"hetmpc/internal/mpc"
	"hetmpc/internal/trace"
)

// SchemaVersion is the version stamped into every BENCH artifact's "schema"
// field. Readers (hettrace diff in particular) refuse artifacts whose schema
// does not match theirs instead of mis-attributing renamed or re-grouped
// fields. Bump it on any incompatible change to Artifact, ModelStats or
// TraceStats; additive omitempty fields do not need a bump.
const SchemaVersion = 1

// ModelStats sums the in-model communication metrics of every cluster an
// experiment ran (one experiment typically builds several clusters: the
// baseline, heterogeneous and superlinear regimes of each row).
type ModelStats struct {
	Clusters     int     `json:"clusters"`
	Rounds       int     `json:"rounds"`
	Messages     int64   `json:"messages"`
	TotalWords   int64   `json:"total_words"`
	MaxSendWords int     `json:"max_send_words"`
	MaxRecvWords int     `json:"max_recv_words"`
	Makespan     float64 `json:"makespan"` // simulated time under the machine profiles (mpc.Stats.Makespan)

	// Fault-tolerance metrics (DESIGN.md §7); zero on fault-free runs.
	Crashes          int   `json:"crashes"`
	RecoveryRounds   int   `json:"recovery_rounds"`
	Checkpoints      int   `json:"checkpoints"`
	ReplicationWords int64 `json:"replication_words"`

	// SpeculationWords is the redundant traffic launched by speculate:R
	// placement (DESIGN.md §8); zero under cap and throughput.
	SpeculationWords int64 `json:"speculation_words"`

	// WireBytes is the measured frame bytes the deliver phase put on a real
	// transport (DESIGN.md §11); zero on the in-process memcpy path. It sits
	// beside TotalWords (the modeled cost) deliberately: the model numbers
	// must not move when the wire turns on.
	WireBytes int64 `json:"wire_bytes"`
}

func (m *ModelStats) add(s mpc.Stats) {
	m.Clusters++
	m.Rounds += s.Rounds
	m.Messages += s.Messages
	m.TotalWords += s.TotalWords
	if s.MaxSendWords > m.MaxSendWords {
		m.MaxSendWords = s.MaxSendWords
	}
	if s.MaxRecvWords > m.MaxRecvWords {
		m.MaxRecvWords = s.MaxRecvWords
	}
	m.Makespan += s.Makespan
	m.Crashes += s.Crashes
	m.RecoveryRounds += s.RecoveryRounds
	m.Checkpoints += s.Checkpoints
	m.ReplicationWords += s.ReplicationWords
	m.SpeculationWords += s.SpeculationWords
	m.WireBytes += s.WireBytes
}

// TraceStats is the per-phase critical-path summary of an experiment's
// traced clusters (DESIGN.md §9): trace.Summarize over every traced
// cluster's timeline, concatenated in build order. Conservation is part of
// the schema — total_words equals the model total exactly, and makespan
// sums each cluster's per-round contributions in order and then the
// per-cluster subtotals in build order (the same grouping ModelStats.add
// uses), so it is bit-identical to the model makespan whenever every
// cluster of the run was traced (E26–E28, and any run under the -trace
// flag). The CI jq smoke-check enforces both.
type TraceStats struct {
	Clusters int               `json:"clusters"` // clusters that carried a collector
	Rounds   int               `json:"rounds"`
	Words    int64             `json:"total_words"`
	Makespan float64           `json:"makespan"`
	Phases   []trace.PhaseStat `json:"phases"`
}

// Table renders the per-phase summary as a text table (hetbench -trace).
func (ts *TraceStats) Table(title string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"phase", "rounds", "words", "makespan", "share", "top machine", "top share"},
	}
	for _, p := range ts.Phases {
		name := p.Phase
		if name == "" {
			name = "(untagged)"
		}
		t.AddRow(name, p.Rounds, p.Words, p.Makespan, p.Share, trace.MachineName(p.Top), p.TopShare)
	}
	return t
}

// Artifact is one machine-readable bench record: the experiment's table plus
// the measured model metrics (rounds, words) and host metrics (wall-clock
// ns, allocations). It is the schema of the BENCH_<exp>.json files that
// track the perf trajectory across PRs.
type Artifact struct {
	// Schema is the artifact schema version (SchemaVersion); hettrace diff
	// refuses to compare artifacts whose schemas differ from its own.
	Schema int    `json:"schema"`
	Exp    string `json:"exp"`
	Seed   uint64 `json:"seed"`
	// Profile is the cross-cutting machine-profile spec the clusters were
	// built under (SetProfile / hetbench -profile); empty = the canonical
	// uniform cluster. It distinguishes profiled artifacts from the
	// committed uniform baseline in bench/.
	Profile string `json:"profile,omitempty"`
	// Faults is the cross-cutting fault-plan spec (SetFaults / hetbench
	// -faults); empty = the reliable cluster. Like Profile it re-names the
	// artifact so faulted runs never clobber the committed baseline.
	Faults string `json:"faults,omitempty"`
	// Placement is the cross-cutting placement-policy spec (SetPlacement /
	// hetbench -placement); empty = the capacity-proportional default.
	// Like Profile and Faults it re-names the artifact.
	Placement string `json:"placement,omitempty"`
	// Transport is the cross-cutting Exchange-transport spec (SetTransport /
	// hetbench -transport); empty = the in-process memcpy path. Conformance
	// (DESIGN.md §11) guarantees the model numbers are bit-identical either
	// way, but the artifact gains a nonzero wire_bytes, so it is re-named
	// like the other overrides to protect the committed baseline.
	Transport  string `json:"transport,omitempty"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	WallNS     int64  `json:"wall_ns"`
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Per-op normalization of the host metrics, where one "op" is one
	// engine round (Model.Rounds) — the unit the alloc-regression CI job
	// tracks across PRs, stable against experiments adding or removing
	// whole cells. Omitted when the run recorded no rounds. Additive
	// omitempty fields, so no schema bump.
	NsPerOp         int64      `json:"ns_per_op,omitempty"`
	AllocsPerOp     uint64     `json:"allocs_per_op,omitempty"`
	AllocBytesPerOp uint64     `json:"alloc_bytes_per_op,omitempty"`
	Model           ModelStats `json:"model"`
	// Trace is the phase-timeline summary, present when at least one
	// cluster of the run carried a trace collector — experiments that
	// trace themselves (E26–E28) and any experiment run under SetTrace
	// (hetbench -trace). Tracing observes without perturbing, so a traced
	// artifact's model numbers are bit-identical to the untraced baseline
	// and the artifact name does not change.
	Trace *TraceStats `json:"trace,omitempty"`
	// Metrics is the sorted registry snapshot of the run, present under
	// SetMetrics (hetbench -metrics): one fresh registry is shared by every
	// cluster of the run, so the counters are the experiment-wide totals.
	// Like tracing, metrics observe without perturbing — the model numbers
	// and the artifact name are unchanged.
	Metrics []metrics.Sample `json:"metrics,omitempty"`
	Table   *Table           `json:"table"`
}

// tracker collects the clusters built through newHet/newSub while a Run is
// in flight, so Run can sum their stats without threading a context through
// every experiment. The tracker is global state, so runMu serializes whole
// Run calls; tracker.Mutex only guards field access from the constructors.
var runMu sync.Mutex

var tracker struct {
	sync.Mutex
	active   bool
	clusters []*mpc.Cluster
	// Whether the SetProfile/SetFaults/SetPlacement overrides actually
	// reached at least one cluster of the running experiment. Experiments
	// that pin their own Profile/Faults/Placement ignore the overrides;
	// their artifacts must not be tagged (and renamed) as if they ran
	// under them.
	profileApplied   bool
	faultsApplied    bool
	placementApplied bool
	transportApplied bool
}

func trackCluster(c *mpc.Cluster) {
	tracker.Lock()
	if tracker.active {
		tracker.clusters = append(tracker.clusters, c)
	}
	tracker.Unlock()
}

// trackOverrides records that build() injected the cross-cutting overrides
// into a cluster of the in-flight experiment.
func trackOverrides(profile, faults, placement, transport bool) {
	tracker.Lock()
	tracker.profileApplied = tracker.profileApplied || profile
	tracker.faultsApplied = tracker.faultsApplied || faults
	tracker.placementApplied = tracker.placementApplied || placement
	tracker.transportApplied = tracker.transportApplied || transport
	tracker.Unlock()
}

// Run executes one experiment by id and wraps its table in an Artifact with
// model and host metrics attached.
func Run(id string, seed uint64) (*Artifact, error) {
	a, _, err := RunFull(id, seed)
	return a, err
}

// RunFull is Run plus the raw per-round trace: the concatenated trace
// records of every traced cluster, in build order — the timeline hetbench
// -traceout streams to JSONL or renders as a Perfetto file. Empty when no
// cluster carried a collector (run under SetTrace to trace everything).
func RunFull(id string, seed uint64) (*Artifact, []trace.Round, error) {
	fn := All()[id]
	if fn == nil {
		return nil, nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
	runMu.Lock()
	defer runMu.Unlock()
	if metricsOn {
		// One fresh registry per run: counters are cumulative across clusters
		// (never rebased), so reuse across runs would double-count.
		metricsReg = metrics.New()
		defer func() { metricsReg = nil }()
	}
	tracker.Lock()
	tracker.active = true
	tracker.clusters = tracker.clusters[:0]
	tracker.profileApplied, tracker.faultsApplied = false, false
	tracker.placementApplied, tracker.transportApplied = false, false
	tracker.Unlock()

	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	table, err := fn(seed)
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	tracker.Lock()
	clusters := tracker.clusters
	profileApplied, faultsApplied := tracker.profileApplied, tracker.faultsApplied
	placementApplied, transportApplied := tracker.placementApplied, tracker.transportApplied
	tracker.clusters = nil
	tracker.active = false
	tracker.Unlock()
	if err != nil {
		return nil, nil, err
	}

	a := &Artifact{
		Schema:     SchemaVersion,
		Exp:        id,
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WallNS:     wall.Nanoseconds(),
		Allocs:     msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		Table:      table,
	}
	// Tag the artifact with an override spec only when it actually reached
	// a cluster: experiments that pin their own Profile/Faults (E17–E22)
	// would otherwise emit baseline numbers under an override-labeled name.
	if profileApplied {
		a.Profile = profileSpec
	}
	if faultsApplied {
		a.Faults = faultSpec
	}
	if placementApplied {
		a.Placement = placementSpec
	}
	if transportApplied {
		a.Transport = transportSpec
	}
	var rounds []trace.Round
	traced := 0
	makespan := 0.0
	for _, c := range clusters {
		a.Model.add(c.Stats())
		if tr := c.Trace(); tr != nil {
			traced++
			rounds = append(rounds, tr.Rounds()...)
			// Sum each cluster's contributions separately, then add the
			// subtotals in build order — the exact grouping ModelStats.add
			// uses for Stats.Makespan. A single running total over the
			// concatenated records would regroup the float additions and
			// drift in the low bits on non-dyadic per-word costs.
			sub := 0.0
			for _, r := range tr.Rounds() {
				sub += r.Makespan
			}
			makespan += sub
		}
	}
	// Clusters built on a real transport hold open sockets; release them now
	// that their stats and traces have been read (no-op for inproc).
	for _, c := range clusters {
		c.Close()
	}
	if r := a.Model.Rounds; r > 0 {
		a.NsPerOp = a.WallNS / int64(r)
		a.AllocsPerOp = a.Allocs / uint64(r)
		a.AllocBytesPerOp = a.AllocBytes / uint64(r)
	}
	if traced > 0 {
		s := trace.Summarize(rounds)
		a.Trace = &TraceStats{
			Clusters: traced,
			Rounds:   s.Rounds,
			Words:    s.Words,
			Makespan: makespan,
			Phases:   s.Phases,
		}
	}
	if metricsOn {
		a.Metrics = metricsReg.Snapshot()
	}
	return a, rounds, nil
}

// WriteFile writes the artifact as BENCH_<exp>.json under dir (created if
// missing) and returns the path. Artifacts produced under a profile,
// fault-plan, placement or transport override are written as
// BENCH_<exp>@<profile>.json / BENCH_<exp>@faults=<plan>.json /
// BENCH_<exp>@place=<policy>.json / BENCH_<exp>@wire=<transport>.json so
// they never clobber the committed baseline.
func (a *Artifact) WriteFile(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sanitize := func(s string) string {
		return strings.NewReplacer(":", "-", "+", "_", "=", "~", ",", ".").Replace(s)
	}
	name := "BENCH_" + a.Exp
	if a.Profile != "" {
		name += "@" + sanitize(a.Profile)
	}
	if a.Faults != "" {
		name += "@faults=" + sanitize(a.Faults)
	}
	if a.Placement != "" {
		name += "@place=" + sanitize(a.Placement)
	}
	if a.Transport != "" {
		name += "@wire=" + sanitize(a.Transport)
	}
	path := filepath.Join(dir, name+".json")
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
