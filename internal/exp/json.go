package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"hetmpc/internal/mpc"
)

// ModelStats sums the in-model communication metrics of every cluster an
// experiment ran (one experiment typically builds several clusters: the
// baseline, heterogeneous and superlinear regimes of each row).
type ModelStats struct {
	Clusters     int     `json:"clusters"`
	Rounds       int     `json:"rounds"`
	Messages     int64   `json:"messages"`
	TotalWords   int64   `json:"total_words"`
	MaxSendWords int     `json:"max_send_words"`
	MaxRecvWords int     `json:"max_recv_words"`
	Makespan     float64 `json:"makespan"` // simulated time under the machine profiles (mpc.Stats.Makespan)
}

func (m *ModelStats) add(s mpc.Stats) {
	m.Clusters++
	m.Rounds += s.Rounds
	m.Messages += s.Messages
	m.TotalWords += s.TotalWords
	if s.MaxSendWords > m.MaxSendWords {
		m.MaxSendWords = s.MaxSendWords
	}
	if s.MaxRecvWords > m.MaxRecvWords {
		m.MaxRecvWords = s.MaxRecvWords
	}
	m.Makespan += s.Makespan
}

// Artifact is one machine-readable bench record: the experiment's table plus
// the measured model metrics (rounds, words) and host metrics (wall-clock
// ns, allocations). It is the schema of the BENCH_<exp>.json files that
// track the perf trajectory across PRs.
type Artifact struct {
	Exp  string `json:"exp"`
	Seed uint64 `json:"seed"`
	// Profile is the cross-cutting machine-profile spec the clusters were
	// built under (SetProfile / hetbench -profile); empty = the canonical
	// uniform cluster. It distinguishes profiled artifacts from the
	// committed uniform baseline in bench/.
	Profile    string     `json:"profile,omitempty"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	WallNS     int64      `json:"wall_ns"`
	Allocs     uint64     `json:"allocs"`
	AllocBytes uint64     `json:"alloc_bytes"`
	Model      ModelStats `json:"model"`
	Table      *Table     `json:"table"`
}

// tracker collects the clusters built through newHet/newSub while a Run is
// in flight, so Run can sum their stats without threading a context through
// every experiment. The tracker is global state, so runMu serializes whole
// Run calls; tracker.Mutex only guards field access from the constructors.
var runMu sync.Mutex

var tracker struct {
	sync.Mutex
	active   bool
	clusters []*mpc.Cluster
}

func trackCluster(c *mpc.Cluster) {
	tracker.Lock()
	if tracker.active {
		tracker.clusters = append(tracker.clusters, c)
	}
	tracker.Unlock()
}

// Run executes one experiment by id and wraps its table in an Artifact with
// model and host metrics attached.
func Run(id string, seed uint64) (*Artifact, error) {
	fn := All()[id]
	if fn == nil {
		return nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
	runMu.Lock()
	defer runMu.Unlock()
	tracker.Lock()
	tracker.active = true
	tracker.clusters = tracker.clusters[:0]
	tracker.Unlock()

	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	table, err := fn(seed)
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	tracker.Lock()
	clusters := tracker.clusters
	tracker.clusters = nil
	tracker.active = false
	tracker.Unlock()
	if err != nil {
		return nil, err
	}

	a := &Artifact{
		Exp:        id,
		Seed:       seed,
		Profile:    profileSpec,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WallNS:     wall.Nanoseconds(),
		Allocs:     msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		Table:      table,
	}
	for _, c := range clusters {
		a.Model.add(c.Stats())
	}
	return a, nil
}

// WriteFile writes the artifact as BENCH_<exp>.json under dir (created if
// missing) and returns the path. Artifacts produced under a profile
// override are written as BENCH_<exp>@<profile>.json so they never
// clobber the committed uniform baseline.
func (a *Artifact) WriteFile(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := "BENCH_" + a.Exp
	if a.Profile != "" {
		name += "@" + strings.ReplaceAll(a.Profile, ":", "-")
	}
	path := filepath.Join(dir, name+".json")
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
