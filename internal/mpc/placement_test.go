package mpc

import (
	"testing"

	"hetmpc/internal/sched"
)

// ringRound builds one round of small-machine-only traffic: every machine
// sends `words` words to its successor, so each machine moves 2·words and
// the large machine stays silent (speculation never touches it anyway).
func ringRound(c *Cluster, words int) [][]Msg {
	outs := make([][]Msg, c.K())
	for i := 0; i < c.K(); i++ {
		outs[i] = []Msg{{To: (i + 1) % c.K(), Words: words, Data: i}}
	}
	return outs
}

// TestPlacementDefaultIsCap: a nil policy resolves to Cap and reuses the
// capacity shares verbatim — same backing floats, same legacy uniformity
// flag — so the default is bit-identical to the pre-policy simulator.
func TestPlacementDefaultIsCap(t *testing.T) {
	for _, pol := range []sched.Policy{nil, sched.Cap{}} {
		cfg := Config{N: 64, M: 256, Seed: 1, Placement: pol}
		cfg.Profile = ZipfProfile(cfg.DeriveK(), 0.8, 0.05)
		c := newTest(t, cfg)
		if c.Placement().Name() != "cap" {
			t.Fatalf("default policy is %q, want cap", c.Placement().Name())
		}
		if c.UniformPlacement() != c.UniformCaps() {
			t.Fatalf("cap uniformity flag diverged from UniformCaps")
		}
		for i := 0; i < c.K(); i++ {
			if c.PlaceShare(i) != c.CapShare(i) {
				t.Fatalf("machine %d: PlaceShare %v != CapShare %v", i, c.PlaceShare(i), c.CapShare(i))
			}
		}
	}
}

// TestThroughputSharesOnCluster: on a uniform profile throughput shares are
// all exactly 1 (the even-split fast path, bit-identical to cap); under a
// straggler profile the slow tail's share drops to its relative effective
// speed, clipped by capacity.
func TestThroughputSharesOnCluster(t *testing.T) {
	cfg := Config{N: 64, M: 256, Seed: 1, Placement: sched.Throughput{}}
	c := newTest(t, cfg)
	if !c.UniformPlacement() {
		t.Fatal("throughput on the uniform profile must take the even-split fast path")
	}
	for i := 0; i < c.K(); i++ {
		if c.PlaceShare(i) != 1 {
			t.Fatalf("uniform throughput share[%d] = %v, want exactly 1", i, c.PlaceShare(i))
		}
	}

	k := cfg.DeriveK()
	cfg.Profile = StragglerProfile(k, 2, 8) // last 2 machines at speed 1/8
	c = newTest(t, cfg)
	if c.UniformPlacement() {
		t.Fatal("straggler throughput placement cannot be uniform")
	}
	// Fast machines: cost 2, thr 1. Stragglers: cost 8+1 = 9, thr 2/9.
	want := 2.0 / 9.0
	for i := 0; i < k-2; i++ {
		if c.PlaceShare(i) != 1 {
			t.Fatalf("fast machine %d share %v, want 1", i, c.PlaceShare(i))
		}
	}
	for i := k - 2; i < k; i++ {
		if got := c.PlaceShare(i); got < want-1e-12 || got > want+1e-12 {
			t.Fatalf("straggler %d share %v, want %v", i, got, want)
		}
	}
}

// TestSpeculationAccounting drives one concrete round and checks the
// first-copy-wins arithmetic: the straggler's shard is mirrored onto the
// fastest machine, the round time falls from the straggler's 18B to the
// partner's own-plus-copy 8B, and the mirrored words are charged.
func TestSpeculationAccounting(t *testing.T) {
	const B = 5
	cfg := Config{N: 64, M: 256, Seed: 1}
	k := cfg.DeriveK()
	cfg.Profile = StragglerProfile(k, 1, 8) // machine k-1 at cost 8+1 = 9/word

	run := func(pol sched.Policy) *Cluster {
		cfg := cfg
		cfg.Placement = pol
		c := newTest(t, cfg)
		if _, _, err := c.Exchange(ringRound(c, B), nil); err != nil {
			t.Fatal(err)
		}
		return c
	}
	thr := run(sched.Throughput{})
	spec := run(sched.Speculate{R: 1})

	// Without speculation the straggler sets the round: 2B words at cost 9.
	wantThr := 1 + float64(2*B)*9
	if got := thr.Stats().Makespan; got != wantThr {
		t.Fatalf("throughput makespan %v, want %v", got, wantThr)
	}
	if thr.Stats().SpeculationWords != 0 {
		t.Fatalf("throughput charged %d speculation words", thr.Stats().SpeculationWords)
	}
	// With speculate:1 machine 0 re-executes the straggler's 2B-word shard
	// after its own: both finish at 2B·2 + 2B·2 = 8B, the new round max.
	wantSpec := 1 + float64(8*B)
	if got := spec.Stats().Makespan; got != wantSpec {
		t.Fatalf("speculate makespan %v, want %v", got, wantSpec)
	}
	if got := spec.Stats().SpeculationWords; got != int64(2*B) {
		t.Fatalf("speculation words %d, want %d", got, 2*B)
	}
	// Both sides of the pair finish at the copy's time; the partner's busy
	// time carries the honest extra work.
	if got := spec.BusyTime(0); got != float64(8*B) {
		t.Fatalf("partner busy %v, want %v", got, float64(8*B))
	}
	if got := spec.BusyTime(k - 1); got != float64(8*B) {
		t.Fatalf("victim busy %v, want %v", got, float64(8*B))
	}
	// Round structure is untouched: same rounds, messages, and words.
	if thr.Stats().Rounds != spec.Stats().Rounds ||
		thr.Stats().Messages != spec.Stats().Messages ||
		thr.Stats().TotalWords != spec.Stats().TotalWords {
		t.Fatalf("speculation changed the comm structure:\n thr: %+v\nspec: %+v", thr.Stats(), spec.Stats())
	}
}

// TestSpeculationSkipsHopelessCopies: when every machine runs at the same
// speed a copy can never beat the original (it starts after the partner's
// own shard), so nothing is launched and nothing is charged.
func TestSpeculationSkipsHopelessCopies(t *testing.T) {
	cfg := Config{N: 64, M: 256, Seed: 1, Placement: sched.Speculate{R: 3}}
	c := newTest(t, cfg)
	if _, _, err := c.Exchange(ringRound(c, 4), nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SpeculationWords; got != 0 {
		t.Fatalf("uniform cluster launched %d speculation words", got)
	}
	// The makespan must match the unspeculated accounting exactly.
	want := 1 + float64(2*4)*2
	if got := c.Stats().Makespan; got != want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

// TestSpeculationClampsR: R beyond K/2 cannot pair every victim with a
// distinct partner and is clamped, not rejected.
func TestSpeculationClampsR(t *testing.T) {
	cfg := Config{N: 64, M: 256, Seed: 1, Placement: sched.Speculate{R: 1 << 20}}
	c := newTest(t, cfg)
	if c.specR != c.k/2 {
		t.Fatalf("specR %d, want clamp at k/2 = %d", c.specR, c.k/2)
	}
}
