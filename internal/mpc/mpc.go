// Package mpc implements the Heterogeneous MPC model of the paper (§2) as an
// executable simulator:
//
//   - one large machine with memory O(n^{1+f} polylog n) words (f = 0 is the
//     near-linear setting studied in most of the paper; f > 0 enables the
//     superlinear variants of Theorems 3.1 and 5.5; the large machine can
//     also be disabled entirely, giving the pure sublinear regime used by
//     the baseline algorithms);
//   - K = ⌈m/n^γ⌉ small machines, each with memory O(n^γ polylog n) words;
//   - computation proceeds in synchronous rounds; in each round every
//     machine may send and receive at most as many words as its capacity.
//
// The simulator enforces the per-round send/receive caps exactly (violations
// are errors, never silent), counts rounds and traffic, runs per-machine
// local computation on goroutines, and gives each machine a private,
// deterministic PRNG. One word models one O(log n)-bit quantity (a vertex
// id, a weight, a counter).
//
// Beyond the paper's uniform small machines, a Profile gives every machine
// its own capacity, compute speed and link bandwidth, and Stats.Makespan
// reports the simulated wall-clock under that profile (per round: barrier
// latency plus the busiest machine's word-time). A nil Profile reproduces
// the paper's model bit-for-bit. See Profile and DESIGN.md §6.
package mpc

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"hetmpc/internal/fault"
	"hetmpc/internal/metrics"
	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
	"hetmpc/internal/wire"
	"hetmpc/internal/xrand"
)

// Large is the machine id of the large machine. Small machines are 0..K-1.
const Large = -1

// ErrCapacity is wrapped by all communication- and memory-cap violations.
var ErrCapacity = errors.New("mpc: capacity exceeded")

// ErrRounds is returned when a run exceeds the configured round budget
// (a safety valve against non-terminating algorithms).
var ErrRounds = errors.New("mpc: round budget exhausted")

// ErrUnknownSender is wrapped by Exchange when outs names a sender outside
// the cluster (an index at or beyond K holding messages). Before this error
// existed such traffic was silently dropped.
var ErrUnknownSender = errors.New("mpc: sender outside the cluster")

// ErrNeedsLarge is wrapped by every algorithm that requires the large
// machine when run on a NoLarge cluster, always with the algorithm's name
// ("core: MST: %w"), so callers can uniformly detect the condition with
// errors.Is and dispatch to a sublinear baseline instead.
var ErrNeedsLarge = errors.New("requires the large machine (cluster built with NoLarge)")

// Msg is one point-to-point message. Words is the accounted size; Data is
// the payload (typed per algorithm and asserted on receipt).
type Msg struct {
	From  int
	To    int
	Words int
	Data  any
}

// Config parameterizes a cluster. The zero value is not valid; use the
// documented defaults via New.
type Config struct {
	N     int     // number of vertices of the input graph
	M     int     // number of edges of the input graph
	Gamma float64 // small-machine memory exponent γ ∈ (0,1); default 0.5
	F     float64 // extra large-machine exponent f ≥ 0; default 0 (near-linear)
	K     int     // number of small machines; 0 derives ⌈m/n^γ⌉ (min 2)

	// Capacity formula constants: capacity = C · n^exp · ⌈log2 n⌉^LogExp.
	// The paper's Õ hides these; defaults (6, 3) and (8, 3) are generous
	// enough for every algorithm here — the binding case is the per-vertex
	// sketch volume of Appendix C.1, Θ(log² n) words per vertex incidence —
	// while still being Õ(n^γ) and Õ(n^{1+f}).
	CSmall      float64
	CLarge      float64
	LogExpSmall int
	LogExpLarge int

	NoLarge   bool   // pure sublinear cluster (baselines)
	Seed      uint64 // master seed; all machine PRNGs derive from it
	MaxRounds int    // safety valve; default 100000

	// Profile describes per-machine heterogeneity (capacity, speed,
	// bandwidth); nil is the paper's uniform cluster. See Profile.
	Profile *Profile

	// Placement is the policy deciding how the placement primitives split
	// work across the small machines (sched.Cap, sched.Throughput,
	// sched.Speculate, sched.Adaptive). Nil is the capacity-proportional
	// default, bit-identical to the pre-policy simulator. Adaptive policies
	// additionally re-estimate machine speeds from the rounds the run
	// actually executes and re-split at round boundaries (DESIGN.md §10).
	// See sched and DESIGN.md §8.
	Placement sched.Policy

	// Faults is a deterministic fault-injection schedule (crashes,
	// transient slowdowns) plus the checkpoint cadence of the recovery
	// protocol; nil — or an inactive plan — is the reliable cluster,
	// bit-identical to the paper's model. See fault.Plan and DESIGN.md §7.
	Faults *fault.Plan

	// Transport selects how the Exchange deliver phase moves bytes
	// (DESIGN.md §11): nil — or wire.Inproc — is the in-process
	// shared-memory path, bit-identical to the pre-wire engine;
	// wire.NewPipe() routes every round through an AF_UNIX socketpair per
	// machine and wire.NewTCP() through a loopback TCP connection per
	// machine, both byte-identical in outputs and modeled Stats, with the
	// measured bytes surfaced in Stats.WireBytes. The cost model always
	// stays above delivery. A transport belongs to exactly one cluster;
	// release it with Cluster.Close.
	Transport wire.Transport

	// Metrics, when non-nil, publishes the engine's aggregate instruments
	// (DESIGN.md §12): per-machine word counters, round-time and inbox-size
	// histograms, per-link wire counters, fault and placement-estimator
	// activity. Like Trace, metrics observe and never perturb — a metered
	// run's Stats are bit-identical to the same run unmetered — and nil is
	// the zero-overhead path (no atomics, no allocations). One registry may
	// be shared across clusters; counters accumulate for the registry's
	// lifetime and are not rebased by ResetStats.
	Metrics *metrics.Registry

	// Trace, when non-nil, collects the structured per-round timeline
	// (DESIGN.md §9): one record per makespan contribution — exchange
	// rounds, checkpoint barriers, crash recoveries — tagged with the
	// phase-span path open at the time (Cluster.Span). Tracing observes
	// and never perturbs: a traced run's Stats are bit-identical to the
	// same run untraced, and nil is the zero-overhead path.
	Trace *trace.Collector
}

// DeriveK returns the number of small machines New would build for cfg,
// so callers can construct per-machine Profiles of the right length before
// calling New.
func (cfg Config) DeriveK() int {
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	k := cfg.K
	if k == 0 {
		k = int(math.Ceil(float64(cfg.M) / math.Pow(float64(cfg.N), gamma)))
	}
	if k < 2 {
		k = 2
	}
	return k
}

// Stats accumulates run metrics. The JSON field names are the stable wire
// format of the bench artifacts (BENCH_*.json); see internal/exp.
type Stats struct {
	Rounds       int   `json:"rounds"`
	Messages     int64 `json:"messages"`
	TotalWords   int64 `json:"total_words"`
	MaxSendWords int   `json:"max_send_words"` // max words sent by one machine in one round
	MaxRecvWords int   `json:"max_recv_words"` // max words received by one machine in one round

	// Makespan is the simulated wall-clock under the machine Profile:
	// Σ over rounds of RoundLatency + max over machines of
	// w_i·(1/Speed_i + 1/Bandwidth_i), where w_i is the words machine i
	// sent plus received that round (DESIGN.md §6). With a uniform profile
	// it reduces to Rounds + Σ_r 2·max_i w_i(r) — a pure function of the
	// round structure. Under an active fault plan it additionally carries
	// the checkpoint barriers, recovery rounds and restore transfers of
	// the recovery protocol (DESIGN.md §7).
	Makespan float64 `json:"makespan"`

	// Fault-tolerance metrics (DESIGN.md §7); all zero on fault-free runs.
	Crashes          int   `json:"crashes"`           // crash events processed
	RecoveryRounds   int   `json:"recovery_rounds"`   // extra barrier rounds spent detecting, restoring, replaying and waiting out restarts
	Checkpoints      int   `json:"checkpoints"`       // checkpoint barriers taken
	ReplicationWords int64 `json:"replication_words"` // checkpoint replication + crash restore traffic

	// SpeculationWords is the redundant traffic launched by a speculate:R
	// placement policy (DESIGN.md §8): every word of a slow shard mirrored
	// onto a fast partner machine is charged here and in the partner's busy
	// time, so speculation is never free. Zero under cap and throughput.
	SpeculationWords int64 `json:"speculation_words"`

	// WireBytes is the measured byte count the transport put on the wire
	// (frame headers + encoded payloads; DESIGN.md §11), reported beside
	// the modeled word counts it never influences. Always 0 under the
	// in-process shared-memory path.
	WireBytes int64 `json:"wire_bytes"`
}

// Cluster is a running heterogeneous MPC system.
type Cluster struct {
	cfg      Config
	k        int
	smallCap int // base (scale-1) small capacity
	largeCap int
	rngs     []*rand.Rand
	largeRng *rand.Rand
	stats    Stats
	exch     *exchScratch

	// Heterogeneity state (uniform when cfg.Profile is nil).
	smallCaps   []int     // per-machine capacity: CapScale[i] · smallCap
	minSmallCap int       // min over smallCaps; tree/broadcast sizing bound
	capShare    []float64 // CapScale normalized to max 1; capacity weights
	uniformCaps bool      // all small capacities equal
	invCost     []float64 // per slot (0=large, 1+i=small): 1/Speed + 1/Bandwidth
	busy        []float64 // per slot, accumulated simulated busy time
	latency     float64   // per-round synchronization cost

	// Placement state (sched policy; Cap when cfg.Placement is nil).
	placement    sched.Policy
	placeShare   []float64 // per-machine placement weight from the policy
	uniformPlace bool      // all placement shares equal: even-split fast path
	specR        int       // speculate:R redundancy dial (0 = off)
	spec         *specScratch
	est          *sched.Estimator // adaptive policy's online estimator (nil = static)
	estSend      []int            // estimator observation scratch, per slot
	estRecv      []int
	estBusy      []float64

	// Fault-injection and recovery engine (nil unless cfg.Faults is an
	// active plan). See recover.go and DESIGN.md §7.
	ft *faultState

	// Per-round trace collector (nil = untraced; see Config.Trace and
	// internal/trace).
	tr *trace.Collector

	// Prebound metrics instruments (nil = unmetered; see Config.Metrics and
	// metrics.go).
	mx *clusterMetrics

	// Transport-backed delivery state (nil = shared-memory delivery; see
	// wirenet.go and DESIGN.md §11).
	wn *wireNet

	// roundWire is the current round's measured transport bytes, staged
	// for the trace record (0 under shared-memory delivery).
	roundWire int64
}

// New validates cfg, fills defaults and returns a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("mpc: need N >= 2, got %d", cfg.N)
	}
	if cfg.M < 0 {
		return nil, fmt.Errorf("mpc: negative M")
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 0.5
	}
	if cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("mpc: gamma must be in (0,1), got %f", cfg.Gamma)
	}
	if cfg.F < 0 {
		return nil, fmt.Errorf("mpc: negative f")
	}
	if cfg.CSmall == 0 {
		cfg.CSmall = 6
	}
	if cfg.CLarge == 0 {
		cfg.CLarge = 8
	}
	if cfg.LogExpSmall == 0 {
		cfg.LogExpSmall = 3
	}
	if cfg.LogExpLarge == 0 {
		cfg.LogExpLarge = 3
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 100000
	}
	log2n := 1
	for v := cfg.N; v > 1; v >>= 1 {
		log2n++
	}
	polyS := ipow(log2n, cfg.LogExpSmall)
	polyL := ipow(log2n, cfg.LogExpLarge)
	smallCap := int(cfg.CSmall * math.Pow(float64(cfg.N), cfg.Gamma) * float64(polyS))
	largeCap := int(cfg.CLarge * math.Pow(float64(cfg.N), 1+cfg.F) * float64(polyL))
	k := cfg.DeriveK()
	c := &Cluster{
		cfg:      cfg,
		k:        k,
		smallCap: smallCap,
		largeCap: largeCap,
		rngs:     make([]*rand.Rand, k),
		largeRng: xrand.New(xrand.Split(cfg.Seed, 0)),
		exch:     newExchScratch(k),
		tr:       cfg.Trace,
		mx:       newClusterMetrics(cfg.Metrics, k),
	}
	for i := range c.rngs {
		c.rngs[i] = xrand.New(xrand.Split(cfg.Seed, uint64(i)+1))
	}
	if err := c.applyProfile(cfg.Profile); err != nil {
		return nil, err
	}
	if err := c.applyPlacement(cfg.Placement); err != nil {
		return nil, err
	}
	if err := c.applyFaults(cfg.Faults); err != nil {
		return nil, err
	}
	c.applyTransport(cfg.Transport)
	if !cfg.NoLarge && largeCap < 4*k {
		return nil, fmt.Errorf("mpc: out of the model envelope: large capacity %d cannot address K=%d machines", largeCap, k)
	}
	return c, nil
}

// applyProfile derives the per-machine capacity/cost state from p (nil =
// uniform).
func (c *Cluster) applyProfile(p *Profile) error {
	if p != nil {
		if err := p.validate(c.k); err != nil {
			return err
		}
	}
	var capScale, speed, bandwidth []float64
	largeSpeed, largeBandwidth, latency := 1.0, 1.0, 1.0
	if p != nil {
		capScale, speed, bandwidth = p.CapScale, p.Speed, p.Bandwidth
		largeSpeed = orOne(p.LargeSpeed)
		largeBandwidth = orOne(p.LargeBandwidth)
		latency = orOne(p.RoundLatency)
	}
	c.latency = latency
	c.smallCaps = make([]int, c.k)
	c.capShare = make([]float64, c.k)
	maxScale := 0.0
	for i := 0; i < c.k; i++ {
		if s := at(capScale, i); s > maxScale {
			maxScale = s
		}
	}
	c.minSmallCap = 0
	c.uniformCaps = true
	for i := 0; i < c.k; i++ {
		scale := at(capScale, i)
		w := int(scale * float64(c.smallCap))
		if w < 1 {
			w = 1
		}
		c.smallCaps[i] = w
		c.capShare[i] = scale / maxScale
		if i == 0 || w < c.minSmallCap {
			c.minSmallCap = w
		}
		if w != c.smallCaps[0] {
			c.uniformCaps = false
		}
	}
	c.invCost = make([]float64, c.k+1)
	c.invCost[0] = 1/largeSpeed + 1/largeBandwidth
	for i := 0; i < c.k; i++ {
		c.invCost[1+i] = 1/at(speed, i) + 1/at(bandwidth, i)
	}
	c.busy = make([]float64, c.k+1)
	return nil
}

// K returns the number of small machines.
func (c *Cluster) K() int { return c.k }

// N returns the configured vertex count.
func (c *Cluster) N() int { return c.cfg.N }

// SmallCap returns the base (profile scale 1) per-round word capacity of a
// small machine. Under a capacity-skewed profile individual machines differ;
// see SmallCapOf and MinSmallCap.
func (c *Cluster) SmallCap() int { return c.smallCap }

// SmallCapOf returns small machine i's per-round word capacity under the
// cluster's profile.
func (c *Cluster) SmallCapOf(i int) int { return c.smallCaps[i] }

// MinSmallCap returns the smallest small-machine capacity — the safe bound
// for broadcast payloads and tree branching that must fit every machine.
// Equals SmallCap on uniform profiles.
func (c *Cluster) MinSmallCap() int { return c.minSmallCap }

// CapShare returns small machine i's capacity scale normalized so the
// largest machine has share 1. Under the default Cap placement policy it is
// also the machine's placement weight (Frisk's balancing rule); on uniform
// profiles every share is exactly 1.
func (c *Cluster) CapShare(i int) float64 { return c.capShare[i] }

// UniformCaps reports whether all small machines have equal capacity (true
// for nil and uniform profiles).
func (c *Cluster) UniformCaps() bool { return c.uniformCaps }

// PlaceShare returns small machine i's placement weight under the cluster's
// placement policy (DESIGN.md §8). The placement primitives
// (prims.DistributeEdges, prims.Sort splitter weighting and, through Sort,
// prims.AggregateByKey) allot load proportional to it. Under the default
// Cap policy it equals CapShare(i) exactly.
func (c *Cluster) PlaceShare(i int) float64 { return c.placeShare[i] }

// UniformPlacement reports whether every machine has the same placement
// weight, letting placement take the even-split fast path. Under the
// default Cap policy it preserves the legacy UniformCaps semantics exactly;
// other policies compare their share vectors.
func (c *Cluster) UniformPlacement() bool { return c.uniformPlace }

// Placement returns the cluster's placement policy (never nil; the default
// is sched.Cap).
func (c *Cluster) Placement() sched.Policy { return c.placement }

// SpeculationR returns the effective speculate:R dial this cluster runs:
// the policy's requested R clamped to K/2 (every speculated shard needs a
// distinct partner machine). 0 when the policy does not speculate.
func (c *Cluster) SpeculationR() int { return c.specR }

// PlacementEstimator returns the online estimator driving an adaptive
// placement policy (sched.OnlinePolicy): the per-machine EWMA cost
// estimates the round barrier recomputes PlaceShare from. Nil under the
// static policies. Callers may read it (Estimate, Rounds) but must not
// mutate it mid-run.
func (c *Cluster) PlacementEstimator() *sched.Estimator { return c.est }

// Profile returns the cluster's machine profile (nil = uniform).
func (c *Cluster) Profile() *Profile { return c.cfg.Profile }

// LargeCap returns the per-round/word capacity of the large machine.
func (c *Cluster) LargeCap() int { return c.largeCap }

// HasLarge reports whether the cluster includes the large machine.
func (c *Cluster) HasLarge() bool { return !c.cfg.NoLarge }

// Gamma returns the small-machine memory exponent.
func (c *Cluster) Gamma() float64 { return c.cfg.Gamma }

// F returns the large machine's extra memory exponent (0 = near-linear).
func (c *Cluster) F() float64 { return c.cfg.F }

// Seed returns the master seed of the cluster.
func (c *Cluster) Seed() uint64 { return c.cfg.Seed }

// Stats returns the accumulated run metrics.
func (c *Cluster) Stats() Stats { return c.stats }

// Rounds returns the number of communication rounds executed so far.
func (c *Cluster) Rounds() int { return c.stats.Rounds }

// ResetStats zeroes the metrics, including per-machine busy times
// (capacities are unchanged), and rebases the fault engine's round clock:
// the round-keyed recovery state — last-checkpoint rounds, restart-downtime
// windows, held replica sizes — resets with the counter, so the checkpoint
// cadence restarts from the reset and no machine is left inside a downtime
// window addressed in pre-reset round numbers. A plan's round-addressed
// schedules (Crash.Round, Slowdown.From/To, the rate hash) are therefore
// interpreted relative to the most recent reset: resetting mid-run replays
// the plan from its round 1, exactly as if the cluster had been rebuilt.
// The trace buffer (Config.Trace) is cleared with the round clock — its
// records are keyed by round number, so post-reset records restart from
// round 1 on an empty timeline; open phase spans survive, since they belong
// to whatever algorithm is in flight.
func (c *Cluster) ResetStats() {
	c.stats = Stats{}
	for i := range c.busy {
		c.busy[i] = 0
	}
	if c.tr != nil {
		c.tr.Reset()
	}
	// An adaptive placement policy re-adapts from scratch after a reset:
	// the estimator returns to its declared-profile seed and the shares to
	// the static Throughput seed, exactly as if the cluster had been rebuilt.
	if c.est != nil {
		c.est.Reset()
		c.refreshPlaceShare()
	}
	if c.ft != nil {
		for i := 0; i < c.k; i++ {
			c.ft.lastCkpt[i] = 0
			c.ft.downUntil[i] = 0
			c.ft.replicaWords[i] = 0
		}
	}
	// Per-link byte counters track Stats.WireBytes, so they reset with it.
	if c.wn != nil {
		for i := range c.wn.bytes {
			c.wn.bytes[i] = 0
		}
	}
	// Traffic-proportional scratch — routing plans, offset tables, the
	// topology cache, encode buffers and decoder arenas — is returned to
	// the garbage collector rather than leaked into the next run: a reset
	// cluster's steady-state allocation profile must match a fresh one
	// (TestResetStatsScratchMatchesFresh), and a big run's high-water
	// footprint must not pin memory under a later small one.
	c.exch.release()
	if c.wn != nil {
		c.wn.release()
	}
}

// BusyTime returns the accumulated simulated busy time of machine id
// (Large or a small-machine index): Σ over rounds of
// w_id·(1/Speed + 1/Bandwidth). The makespan is Σ_r latency + max_i of the
// per-round terms, so BusyTime(i) ≤ Stats().Makespan for every machine.
func (c *Cluster) BusyTime(id int) float64 {
	if id == Large {
		return c.busy[0]
	}
	return c.busy[1+id]
}

// BusyImbalance returns max/mean of the small machines' busy times (1 =
// perfectly balanced). It is defined as 0 — never NaN — in the degenerate
// cases: a cluster where no small-machine traffic has flowed yet (all busy
// times zero, including freshly built and NoLarge clusters before their
// first Exchange), and the k == 0 cluster, which New can never build
// (DeriveK floors K at 2) but a zero-value Cluster would present. NoLarge
// only removes the large machine; the imbalance is over small machines and
// behaves identically with or without it.
func (c *Cluster) BusyImbalance() float64 {
	if c.k == 0 {
		return 0
	}
	var max, sum float64
	for i := 0; i < c.k; i++ {
		b := c.busy[1+i]
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	return max * float64(c.k) / sum
}

// Rand returns small machine i's private PRNG.
func (c *Cluster) Rand(i int) *rand.Rand { return c.rngs[i] }

// LargeRand returns the large machine's private PRNG.
func (c *Cluster) LargeRand() *rand.Rand { return c.largeRng }

// capOf returns the per-round word capacity of machine id under the
// cluster's profile.
func (c *Cluster) capOf(id int) int {
	if id == Large {
		return c.largeCap
	}
	return c.smallCaps[id]
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
