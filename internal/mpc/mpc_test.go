package mpc

import (
	"errors"
	"sync/atomic"
	"testing"
)

func newTest(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigDefaultsAndDerivedK(t *testing.T) {
	c := newTest(t, Config{N: 1024, M: 8192})
	// K = ceil(8192 / 1024^0.5) = ceil(8192/32) = 256
	if c.K() != 256 {
		t.Fatalf("K = %d, want 256", c.K())
	}
	// log2(1024) rounds to 11 with our ceil-style count; capacities positive
	// and ordered.
	if c.SmallCap() <= 0 || c.LargeCap() <= c.SmallCap() {
		t.Fatalf("capacities: small %d large %d", c.SmallCap(), c.LargeCap())
	}
	if !c.HasLarge() {
		t.Fatal("default cluster should have a large machine")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := New(Config{N: 100, Gamma: 1.5}); err == nil {
		t.Fatal("gamma out of range accepted")
	}
	if _, err := New(Config{N: 100, F: -1}); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestExchangeDeliversAndCounts(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	outs := make([][]Msg, c.K())
	outs[0] = []Msg{{To: 1, Words: 3, Data: "a"}, {To: Large, Words: 2, Data: "b"}}
	outs[1] = []Msg{{To: 0, Words: 1, Data: "c"}}
	outLarge := []Msg{{To: 1, Words: 5, Data: "d"}}
	ins, inLarge, err := c.Exchange(outs, outLarge)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 1 {
		t.Fatalf("Rounds = %d", c.Rounds())
	}
	if len(ins[0]) != 1 || ins[0][0].Data != "c" || ins[0][0].From != 1 {
		t.Fatalf("machine 0 inbox: %+v", ins[0])
	}
	if len(ins[1]) != 2 {
		t.Fatalf("machine 1 inbox size %d", len(ins[1]))
	}
	// Deterministic order: large machine's message first.
	if ins[1][0].From != Large || ins[1][1].From != 0 {
		t.Fatalf("delivery order: %+v", ins[1])
	}
	if len(inLarge) != 1 || inLarge[0].Data != "b" {
		t.Fatalf("large inbox: %+v", inLarge)
	}
	st := c.Stats()
	if st.Messages != 4 || st.TotalWords != 11 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestExchangeEnforcesSendCap(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	outs := make([][]Msg, c.K())
	outs[0] = []Msg{{To: 1, Words: c.SmallCap() + 1}}
	if _, _, err := c.Exchange(outs, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
}

func TestExchangeEnforcesRecvCap(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	// Many senders each under their cap, one receiver over its cap.
	per := c.SmallCap()/4 + 1
	outs := make([][]Msg, c.K())
	for i := 0; i < 8 && i < c.K(); i++ {
		outs[i] = []Msg{{To: 0, Words: per}}
	}
	if _, _, err := c.Exchange(outs, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
}

func TestLargeMachineCapLargerThanSmall(t *testing.T) {
	c := newTest(t, Config{N: 256, M: 1024, Seed: 1})
	// The large machine can absorb what a small machine cannot.
	words := c.SmallCap() * 2
	if words > c.LargeCap() {
		t.Skip("capacities too close for this test size")
	}
	outs := make([][]Msg, c.K())
	outs[0] = []Msg{{To: Large, Words: c.SmallCap()}}
	outs[1] = []Msg{{To: Large, Words: c.SmallCap()}}
	if _, _, err := c.Exchange(outs, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoLargeClusterRejectsLargeTraffic(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, NoLarge: true, Seed: 1})
	outs := make([][]Msg, c.K())
	outs[0] = []Msg{{To: Large, Words: 1}}
	if _, _, err := c.Exchange(outs, nil); err == nil {
		t.Fatal("send to missing large machine accepted")
	}
	if _, _, err := c.Exchange(nil, []Msg{{To: 0, Words: 1}}); err == nil {
		t.Fatal("send from missing large machine accepted")
	}
}

func TestRoundBudget(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 128, MaxRounds: 3, Seed: 1})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Exchange(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Exchange(nil, nil); !errors.Is(err, ErrRounds) {
		t.Fatalf("want ErrRounds, got %v", err)
	}
}

func TestPerMachineRNGDeterministicAndPrivate(t *testing.T) {
	c1 := newTest(t, Config{N: 64, M: 256, Seed: 9})
	c2 := newTest(t, Config{N: 64, M: 256, Seed: 9})
	if c1.Rand(0).Uint64() != c2.Rand(0).Uint64() {
		t.Fatal("same seed, different streams")
	}
	if c1.Rand(1).Uint64() == c2.Rand(2).Uint64() {
		t.Fatal("distinct machines share streams")
	}
	c3 := newTest(t, Config{N: 64, M: 256, Seed: 10})
	if c1.Rand(0).Uint64() == c3.Rand(0).Uint64() {
		t.Fatal("different seeds, same stream")
	}
}

func TestForSmallVisitsAllOnce(t *testing.T) {
	c := newTest(t, Config{N: 256, M: 2048, Seed: 1})
	counts := make([]atomic.Int32, c.K())
	if err := c.ForSmall(func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("machine %d visited %d times", i, counts[i].Load())
		}
	}
}

func TestForSmallPropagatesError(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 512, Seed: 1})
	sentinel := errors.New("boom")
	err := c.ForSmall(func(i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestSuperlinearCapacity(t *testing.T) {
	near := newTest(t, Config{N: 1024, M: 4096, Seed: 1})
	super := newTest(t, Config{N: 1024, M: 4096, F: 0.5, Seed: 1})
	if super.LargeCap() <= near.LargeCap() {
		t.Fatal("superlinear cap not larger")
	}
	// n^{1.5} vs n: ratio should be about sqrt(n) = 32
	ratio := float64(super.LargeCap()) / float64(near.LargeCap())
	if ratio < 16 || ratio > 64 {
		t.Fatalf("capacity ratio %f, want ~32", ratio)
	}
}
