package mpc

import (
	"fmt"
	"sync"
	"time"

	"hetmpc/internal/wire"
)

// wireNet runs the Exchange deliver phase over a wire.Transport: instead of
// copying Msg structs through shared memory, every message is encoded into
// a per-destination frame buffer, written through the destination's link,
// and decoded back into the flat inbox on the other side.
//
// The delivered inbox is bit-identical to the shared-memory path because
// both sides follow the same deterministic order: frames are encoded
// serially sender-major (large machine first, then small senders ascending,
// submission order within a sender) — exactly the order the layout phase
// assigned inbox offsets in — and each destination's reader decodes its
// stream sequentially into flat[slotBase+0..n). No offsets cross the wire;
// the stream order is the offset.
//
// Payloads that are not wire-native (algorithm-local structs; see the wire
// package comment) cross as KindRef frames whose payload values ride the
// per-destination refs table, built fully before the reader goroutines are
// spawned (the spawn is the happens-before edge; file descriptors provide
// none).
type wireNet struct {
	tr     wire.Transport
	opened bool
	links  []wire.Link
	inproc bool // transport opened to a nil link set: memcpy path

	bufs   [][]byte        // per destination slot, encoded frames of the round
	refs   [][]any         // per destination slot, KindRef payload table
	decs   []*wire.Decoder // per destination slot, pooled decode state
	werr   []error         // per slot, writer error of the round
	rerr   []error         // per slot, reader error of the round
	bytes  []int64         // per slot, cumulative bytes written
	broken error           // sticky: first transport failure; later rounds fail fast

	// mx mirrors the cluster's prebound instruments (nil = unmetered): the
	// links are wrapped with wire.InstrumentLink at open, and deliverWire
	// publishes frame counts and encode/decode wall-clock time.
	mx *clusterMetrics
}

// active reports whether delivery goes over links (false before Open and
// for transports that opted into the shared-memory path).
func (wn *wireNet) active() bool { return !wn.inproc }

// open lazily opens the transport's links at the first delivering Exchange.
func (wn *wireNet) open(slots int) error {
	if wn.opened {
		return nil
	}
	links, err := wn.tr.Open(slots)
	if err != nil {
		wn.broken = fmt.Errorf("mpc: transport %q failed to open: %v: %w", wn.tr.Name(), err, wire.ErrTransport)
		return wn.broken
	}
	wn.opened = true
	if links == nil {
		wn.inproc = true
		return nil
	}
	if len(links) != slots {
		wn.broken = fmt.Errorf("mpc: transport %q opened %d links, want %d: %w", wn.tr.Name(), len(links), slots, wire.ErrTransport)
		return wn.broken
	}
	if wn.mx != nil {
		for i := range links {
			links[i] = wire.InstrumentLink(links[i], wn.mx.reg)
		}
	}
	wn.links = links
	wn.bufs = make([][]byte, slots)
	wn.refs = make([][]any, slots)
	wn.decs = make([]*wire.Decoder, slots)
	wn.werr = make([]error, slots)
	wn.rerr = make([]error, slots)
	wn.bytes = make([]int64, slots)
	for i := range wn.decs {
		wn.decs[i] = &wire.Decoder{}
	}
	return nil
}

// release drops the traffic-proportional buffers — encode buffers, ref
// tables, decoder arenas — keeping the links and per-slot bookkeeping
// intact. Called from ResetStats so a reused transported cluster starts
// the next run without the previous run's high-water footprint.
func (wn *wireNet) release() {
	for i := range wn.bufs {
		wn.bufs[i] = nil
	}
	for i := range wn.refs {
		wn.refs[i] = nil
	}
	for _, d := range wn.decs {
		d.Drop()
	}
}

// fail closes the link of slot and records err once. Closing is the
// anti-hang mechanism: it unblocks whichever side of the link is still
// inside a Read or Write, so a mid-round failure always surfaces as an
// error instead of a deadlocked round.
func (wn *wireNet) fail(slot int, errs []error, err error) {
	if errs[slot] == nil {
		errs[slot] = err
	}
	wn.links[slot].Close()
}

// deliverWire is the transport-backed phase 4 of Exchange: encode, write,
// read back, place. It returns the round's bytes on the wire. On failure
// the first error in slot order is returned, wrapped in wire.ErrTransport
// and naming the link; the net is left broken so later rounds fail fast.
func (c *Cluster) deliverWire(flat []Msg) (int64, error) {
	wn := c.wn
	sc := c.exch
	plans := sc.plans

	// Encode, serially, in the deterministic delivery order. The refs
	// tables must be complete before any reader goroutine starts.
	for slot := range wn.bufs {
		wn.bufs[slot] = wn.bufs[slot][:0]
		wn.refs[slot] = wn.refs[slot][:0]
		wn.werr[slot], wn.rerr[slot] = nil, nil
	}
	var encStart time.Time
	if wn.mx != nil {
		encStart = time.Now() //hetlint:nondet wall-clock encode metering feeds the wire metrics only; Stats and traces use model time
	}
	if err := wn.encodeRound(plans); err != nil {
		return 0, err
	}

	if wn.mx != nil {
		wn.mx.encodeNs.Add(time.Since(encStart).Nanoseconds()) //hetlint:nondet wall-clock encode metering feeds the wire metrics only
		// Frames per destination link: exactly the messages the layout phase
		// counted for that slot (one frame per message on the wire).
		for slot := range wn.links {
			if n := sc.recvCount[slot]; n > 0 {
				wn.mx.frames[slot].Add(int64(n))
			}
		}
	}

	// Readers first (writes into a link block once its kernel buffer fills,
	// so the drain must already be running), one goroutine per receiving
	// slot, each decoding its stream sequentially into its flat window.
	var wg sync.WaitGroup
	for slot := range wn.links {
		n := sc.recvCount[slot]
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(slot, n int) {
			defer wg.Done()
			if wn.mx != nil {
				// Decode time is the reader's whole drain, including time
				// blocked waiting for bytes; the counter is atomic, so each
				// reader goroutine publishes its own link safely.
				t0 := time.Now()                                                          //hetlint:nondet wall-clock decode metering feeds the wire metrics only; Stats and traces use model time
				defer func() { wn.mx.decodeNs[slot].Add(time.Since(t0).Nanoseconds()) }() //hetlint:nondet wall-clock decode metering feeds the wire metrics only
			}
			if err := wn.readInto(slot, n, sc.slotBase[slot], flat); err != nil {
				wn.fail(slot, wn.rerr, err)
			}
		}(slot, n)
	}

	// Writes: one Write per destination link, sequential (determinism of
	// the byte accounting; the readers drain concurrently).
	var roundBytes int64
	for slot := range wn.links {
		buf := wn.bufs[slot]
		if len(buf) == 0 {
			continue
		}
		if _, err := wn.links[slot].Write(buf); err != nil {
			wn.fail(slot, wn.werr, err)
			continue
		}
		roundBytes += int64(len(buf))
		wn.bytes[slot] += int64(len(buf))
	}
	wg.Wait()

	for slot := range wn.links {
		err := wn.werr[slot]
		if err == nil {
			err = wn.rerr[slot]
		}
		if err == nil {
			continue
		}
		wn.broken = fmt.Errorf("mpc: transport %q link %q failed mid-round %d: %v: %w",
			wn.tr.Name(), wn.links[slot].Name(), c.stats.Rounds, err, wire.ErrTransport)
		return roundBytes, wn.broken
	}
	return roundBytes, nil
}

// encodeRound frames every planned message into the per-slot write buffers
// in the deterministic delivery order, recording out-of-line payloads in the
// per-slot ref tables. The ref tables must be complete before any reader
// goroutine starts, so this runs serially before the drain.
//
//hetlint:zeroalloc steady-state encode path: buffers and ref tables are reused round over round (AllocsPerRun pins in metrics_alloc_test.go)
func (wn *wireNet) encodeRound(plans []senderPlan) error {
	var fm wire.Message
	for s := range plans {
		p := &plans[s]
		for j := range p.msgs {
			m := &p.msgs[j]
			slot := 1 + m.To
			if m.To == Large {
				slot = 0
			}
			fm.From = int32(p.from)
			fm.To = int32(m.To)
			fm.Words = uint32(m.Words)
			if !fm.FromPayload(m.Data) {
				fm.Ref = uint32(len(wn.refs[slot]))
				wn.refs[slot] = append(wn.refs[slot], m.Data)
			}
			var err error
			if wn.bufs[slot], err = wire.AppendMessage(wn.bufs[slot], &fm); err != nil {
				wn.broken = fmt.Errorf("mpc: transport %q link %q: encode: %v: %w",
					wn.tr.Name(), wn.links[slot].Name(), err, wire.ErrTransport)
				return wn.broken
			}
		}
	}
	return nil
}

// readInto drains n frames from slot's link into flat[base:base+n],
// resolving ref frames against the slot's ref table. It is the body of one
// reader goroutine; the returned error is published by the caller through
// wn.fail.
//
//hetlint:zeroalloc steady-state decode path: the decoder arenas absorb payloads (AllocsPerRun pins in metrics_alloc_test.go)
func (wn *wireNet) readInto(slot, n, base int, flat []Msg) error {
	link := wn.links[slot]
	dec := wn.decs[slot]
	dec.Release()
	var m wire.Message
	for i := 0; i < n; i++ {
		if err := dec.ReadMessage(link, &m); err != nil {
			return err
		}
		data := m.Payload()
		if m.Kind == wire.KindRef {
			if int(m.Ref) >= len(wn.refs[slot]) {
				return fmt.Errorf("%w: ref %d of %d", wire.ErrCorrupt, m.Ref, len(wn.refs[slot]))
			}
			data = wn.refs[slot][m.Ref]
		}
		flat[base+i] = Msg{From: int(m.From), To: int(m.To), Words: int(m.Words), Data: data}
	}
	return nil
}

// applyTransport wires cfg.Transport into the cluster (nil = shared-memory
// delivery, the pre-wire engine path).
func (c *Cluster) applyTransport(tr wire.Transport) {
	if tr == nil {
		return
	}
	c.wn = &wireNet{tr: tr, mx: c.mx}
}

// Transport returns the cluster's transport, nil for the in-process
// shared-memory path.
func (c *Cluster) Transport() wire.Transport {
	if c.wn == nil {
		return nil
	}
	return c.wn.tr
}

// TransportName returns the transport spec name ("inproc" for the
// shared-memory path).
func (c *Cluster) TransportName() string {
	if c.wn == nil {
		return "inproc"
	}
	return c.wn.tr.Name()
}

// WireBytesOf returns the cumulative bytes written to machine id's link
// (Large or a small-machine index); 0 under the shared-memory path.
func (c *Cluster) WireBytesOf(id int) int64 {
	if c.wn == nil || c.wn.bytes == nil {
		return 0
	}
	return c.wn.bytes[senderSlot(id)]
}

// KillLink closes machine id's transport link mid-run — the fault hook the
// conformance suite uses to simulate a peer dying. The next delivering
// Exchange must surface a wire.ErrTransport naming the link rather than
// hanging. No-op under the shared-memory path.
func (c *Cluster) KillLink(id int) error {
	if c.wn == nil || c.wn.links == nil {
		return nil
	}
	return c.wn.links[senderSlot(id)].Close()
}

// Close releases the cluster's transport resources. Safe on untransported
// clusters and safe to call more than once. The cluster must not Exchange
// after Close.
func (c *Cluster) Close() error {
	if c.wn == nil {
		return nil
	}
	return c.wn.tr.Close()
}
