package mpc

import (
	"cmp"
	"math"
	"slices"

	"hetmpc/internal/fault"
	"hetmpc/internal/trace"
)

// The recovery engine (DESIGN.md §7) runs at the round barrier inside
// Exchange whenever the cluster was built with an active fault.Plan:
//
//   - every Plan.Interval completed rounds it takes a checkpoint barrier:
//     each machine with a registered Checkpointer snapshots its state and
//     replicates it to its capacity-aware buddy, and the replication words
//     are charged to Stats.ReplicationWords and the makespan exactly like
//     ordinary round traffic (the barrier costs one round latency plus the
//     busiest machine's transfer time);
//   - crashes scheduled by the plan are detected at the barrier ending
//     their round; the victim restores from its buddy's replica and replays
//     the rounds since the last checkpoint (or replays cold from its own
//     persisted checkpoint when the buddy died at the same barrier), then
//     re-enters the round barrier. The recovery cost — extra synchronous
//     rounds, restore traffic, restart downtime — lands in
//     Stats.RecoveryRounds, Stats.ReplicationWords and Stats.Makespan.
//
// Because a restored machine replays deterministically to exactly its
// pre-crash state, the algorithm's message pattern and output are identical
// to the fault-free run; what faults change is the measured cost. The
// engine exercises that contract for real: on every crash the victim's
// state makes a genuine round trip through its Checkpointer (Snapshot then
// Restore), so an unfaithful implementation corrupts the run and fails the
// output validation every experiment performs. All engine scans run
// serially in machine order, so crashes, recovery charges and float
// accumulation are deterministic under any GOMAXPROCS.

// faultState is the per-cluster recovery engine: the plan, the registered
// per-machine checkpointers, the buddy map and the replica bookkeeping.
// Only the replica *sizes* are retained (they price the restore
// transfers); the replica payloads themselves are not kept — see the
// modeling note on recoverCrashes.
type faultState struct {
	plan  *fault.Plan
	cks   []fault.Checkpointer // per small machine; nil = not registered
	buddy []int                // capacity-aware buddy of each small machine

	replicaWords []int // words of each machine's last checkpoint snapshot
	lastCkpt     []int // round of each machine's last checkpoint (0 = none)
	downUntil    []int // last round of each machine's restart downtime

	moved   []float64 // scratch: words moved per machine in a ckpt barrier
	crashed []bool    // scratch: crash set of the current barrier
	restart []int     // scratch: per-victim downtime of the current barrier
}

// applyFaults validates the plan and builds the engine state. Inactive
// plans (nil or zero) install nothing, keeping the run bit-identical to a
// fault-free cluster.
func (c *Cluster) applyFaults(p *fault.Plan) error {
	if err := p.Validate(c.k); err != nil {
		return err
	}
	if !p.Active() {
		return nil
	}
	c.ft = &faultState{
		plan:         p,
		cks:          make([]fault.Checkpointer, c.k),
		buddy:        buddyMap(c.smallCaps),
		replicaWords: make([]int, c.k),
		lastCkpt:     make([]int, c.k),
		downUntil:    make([]int, c.k),
		moved:        make([]float64, c.k),
		crashed:      make([]bool, c.k),
		restart:      make([]int, c.k),
	}
	return nil
}

// buddyMap pairs every machine with a capacity-aware buddy: machines are
// ranked by capacity (descending, index ascending on ties) and the machine
// at rank t is paired with rank (t + ⌈k/2⌉) mod k, so the largest machines
// hold the replicas of the smallest and no machine is its own buddy
// (k >= 2 always). The map is a pure function of the capacity vector, hence
// deterministic.
func buddyMap(caps []int) []int {
	k := len(caps)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		if caps[a] != caps[b] {
			return cmp.Compare(caps[b], caps[a]) // descending capacity
		}
		return cmp.Compare(a, b)
	})
	shift := (k + 1) / 2
	buddy := make([]int, k)
	for t, i := range order {
		buddy[i] = order[(t+shift)%k]
	}
	return buddy
}

// FaultsActive reports whether the cluster was built with an active fault
// plan (Config.Faults).
func (c *Cluster) FaultsActive() bool { return c.ft != nil }

// Faults returns the cluster's fault plan, nil when fault injection is off
// — including when Config.Faults was a non-nil but inactive (zero) plan.
func (c *Cluster) Faults() *fault.Plan {
	if c.ft == nil {
		return nil
	}
	return c.ft.plan
}

// Buddy returns the capacity-aware replication buddy of small machine i
// (-1 when fault injection is off).
func (c *Cluster) Buddy(i int) int {
	if c.ft == nil {
		return -1
	}
	return c.ft.buddy[i]
}

// SetCheckpointer registers small machine i's recoverable state with the
// fault engine; the engine replicates it at checkpoint barriers and
// round-trips it through Snapshot/Restore on a crash. Re-registering
// replaces the previous checkpointer (algorithm phases hand over their live
// state as it moves). A no-op when the cluster has no active fault plan, so
// algorithms register unconditionally at zero cost to fault-free runs.
func (c *Cluster) SetCheckpointer(i int, ck fault.Checkpointer) {
	if c.ft == nil || i < 0 || i >= c.k {
		return
	}
	if c.mx != nil && ck != nil {
		// A metered cluster counts the recovery engine's snapshot/restore
		// round trips per machine. Wrapping is transparent: the engine sees
		// the same Snapshot/Restore results, so the run is bit-identical.
		name := trace.MachineName(i)
		ck = fault.Instrument(ck,
			c.mx.reg.Counter("fault_snapshots_total", "machine", name),
			c.mx.reg.Counter("fault_snapshot_words_total", "machine", name),
			c.mx.reg.Counter("fault_restores_total", "machine", name))
	}
	c.ft.cks[i] = ck
}

// slowCost returns the effective per-word cost of slot for the current
// round, folding in any transient slowdown window of the fault plan.
func (c *Cluster) slowCost(slot int) float64 {
	cost := c.invCost[slot]
	if c.ft != nil && slot > 0 && c.ft.plan.HasSlowdowns() {
		cost *= c.ft.plan.SlowFactor(c.stats.Rounds, slot-1)
	}
	return cost
}

// postRoundFaults runs the barrier work of the fault engine after round r
// completed: the checkpoint barrier when due, then crash detection and
// recovery. Serial, machine order, deterministic.
func (c *Cluster) postRoundFaults() {
	if c.ft == nil {
		return
	}
	r := c.stats.Rounds
	if iv := c.ft.plan.Interval; iv > 0 && r%iv == 0 {
		c.checkpointBarrier(r)
	}
	c.recoverCrashes(r)
}

// checkpointBarrier snapshots every registered machine's state and
// replicates it to the machine's buddy. The replication traffic is charged
// like any other round: each owner sends its state words, each buddy
// receives them, the barrier costs one round latency plus the busiest
// machine's transfer time under the cluster profile.
func (c *Cluster) checkpointBarrier(r int) {
	ft := c.ft
	any := false
	var barrierWords int64
	for i := 0; i < c.k; i++ {
		ck := ft.cks[i]
		if ck == nil {
			continue
		}
		any = true
		// The snapshot payload is only needed for its accounted size: the
		// buddy's copy is re-derivable from the deterministic simulation,
		// so retaining it would only duplicate the live state in memory.
		_, words := ck.Snapshot()
		ft.replicaWords[i] = words
		ft.lastCkpt[i] = r
		if words > 0 {
			c.stats.ReplicationWords += int64(words)
			barrierWords += int64(words)
			ft.moved[i] += float64(words)
			ft.moved[ft.buddy[i]] += float64(words)
		}
	}
	if !any {
		return // nothing registered: no state to replicate, no barrier
	}
	c.stats.Checkpoints++
	roundMax := 0.0
	argSlot := -1
	var busyRec []float64
	if c.tr != nil {
		busyRec = make([]float64, c.k+1)
	}
	for i := 0; i < c.k; i++ {
		w := ft.moved[i]
		if w == 0 {
			continue
		}
		ft.moved[i] = 0
		// slowCost folds in any transient slowdown window active at this
		// round, so replication is priced like the round's own traffic.
		t := w * c.slowCost(1+i)
		c.busy[1+i] += t
		if busyRec != nil {
			busyRec[1+i] = t
		}
		if t > roundMax {
			roundMax, argSlot = t, 1+i
		}
	}
	c.stats.Makespan += c.latency + roundMax
	if c.mx != nil {
		c.observeCheckpoint(barrierWords, roundMax)
	}
	if c.tr != nil {
		c.tr.Add(trace.Round{
			Round:            r,
			Phase:            c.tr.Phase(),
			Kind:             trace.KindCheckpoint,
			Latency:          c.latency,
			MaxTime:          roundMax,
			Makespan:         c.latency + roundMax,
			Argmax:           slotMachine(argSlot),
			Victim:           trace.None,
			ReplicationWords: barrierWords,
			Checkpoints:      1,
			Busy:             busyRec,
		})
	}
}

// recoverCrashes detects the crash set of the barrier ending round r and
// runs the recovery protocol for each victim in machine order. The crash
// set is computed first so that two buddies dying at the same barrier see
// each other dead (the replay path).
func (c *Cluster) recoverCrashes(r int) {
	ft := c.ft
	p := ft.plan
	if len(p.Crashes) == 0 && p.CrashRate == 0 {
		return
	}
	any := false
	for i := 0; i < c.k; i++ {
		restart, crashed := p.CrashAt(r, i, c.cfg.Seed)
		if crashed && ft.downUntil[i] >= r {
			// The machine is still inside a previous crash's restart
			// downtime: a failure of an already-down machine is absorbed
			// by the recovery in flight, not a fresh crash event.
			crashed = false
		}
		ft.crashed[i], ft.restart[i] = crashed, restart
		any = any || crashed
	}
	if !any {
		return
	}
	for i := 0; i < c.k; i++ {
		if !ft.crashed[i] {
			continue
		}
		c.stats.Crashes++
		buddy := ft.buddy[i]
		replay := r - ft.lastCkpt[i]
		var rec, replayWork, words int
		if ft.crashed[buddy] || ft.downUntil[buddy] >= r {
			// The buddy died at the same barrier (or is still down from
			// an earlier crash), taking the hot replica with it: the
			// victim restores from its own persisted checkpoint and
			// replays cold — no network transfer, but detection, the
			// stable read and every replayed round pay double latency
			// and double re-execution work.
			rec = 2 + 2*replay + ft.restart[i]
			replayWork = 2 * replay
		} else {
			// Restore the buddy's replica over the network, then replay
			// the rounds since that checkpoint.
			words = ft.replicaWords[i]
			rec = 1 + replay + ft.restart[i]
			replayWork = replay
		}
		if ck := ft.cks[i]; ck != nil {
			// In the modeled protocol the victim restores the buddy's
			// checkpoint replica and replays forward; by determinism that
			// reconstructs exactly the pre-crash state, so the simulator
			// performs the reconstruction by round-tripping the live
			// state through the Checkpointer (the replica payload itself
			// is re-derivable and never retained). The round trip is a
			// real exercise of the interface: a Restore that does not
			// faithfully reinstall what Snapshot returned corrupts the
			// run and fails the output validation downstream.
			data, _ := ck.Snapshot()
			ck.Restore(data)
		}
		t := 0.0
		var ti, tb, replayT float64
		if words > 0 {
			c.stats.ReplicationWords += int64(words)
			// slowCost prices the restore like round traffic, including
			// any transient slowdown window covering this round.
			ti = float64(words) * c.slowCost(1+i)
			tb = float64(words) * c.slowCost(1+buddy)
			c.busy[1+i] += ti
			c.busy[1+buddy] += tb
			t = math.Max(ti, tb)
		}
		// A replayed round re-executes the victim's work since the
		// checkpoint; charge it the victim's historical mean per-round
		// busy time, so replaying a slow or heavily loaded machine costs
		// proportionally more than replaying an idle one.
		if replayWork > 0 && r > 0 {
			replayT = float64(replayWork) * c.busy[1+i] / float64(r)
			c.busy[1+i] += replayT
			t += replayT
		}
		c.stats.RecoveryRounds += rec
		c.stats.Makespan += float64(rec)*c.latency + t
		ft.downUntil[i] = r + ft.restart[i]
		if c.mx != nil {
			c.observeRecovery(i, rec, replayWork, words)
		}
		if c.tr != nil {
			// One record per victim: each victim's recovery is a distinct
			// makespan contribution, so conservation over the trace stays
			// exact even when several machines die at one barrier.
			busyRec := make([]float64, c.k+1)
			busyRec[1+i] = ti + replayT
			busyRec[1+buddy] += tb
			arg := i
			if tb > ti+replayT {
				arg = buddy
			}
			c.tr.Add(trace.Round{
				Round:            r,
				Phase:            c.tr.Phase(),
				Kind:             trace.KindRecovery,
				Latency:          c.latency,
				MaxTime:          t,
				Makespan:         float64(rec)*c.latency + t,
				Argmax:           arg,
				Victim:           i,
				Crashes:          1,
				RecoveryRounds:   rec,
				ReplicationWords: int64(words),
				Busy:             busyRec,
			})
		}
	}
	for i := 0; i < c.k; i++ {
		ft.crashed[i] = false
	}
}
