package mpc

import (
	"runtime"
	"slices"
	"testing"

	"hetmpc/internal/fault"
)

// sliceCheckpointer is the test stand-in for algorithm state: one machine's
// int slice, snapshotted by deep copy.
type sliceCheckpointer struct {
	data [][]int
	i    int
}

func (s sliceCheckpointer) Snapshot() (any, int) {
	cp := slices.Clone(s.data[s.i])
	return cp, len(cp)
}

func (s sliceCheckpointer) Restore(data any) { s.data[s.i] = data.([]int) }

// faultCluster builds a small cluster with the given plan and registers a
// slice checkpointer per machine holding `words` items.
func faultCluster(t *testing.T, plan *fault.Plan, words int) (*Cluster, [][]int) {
	t.Helper()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Faults: plan})
	state := make([][]int, c.K())
	for i := range state {
		for j := 0; j < words; j++ {
			state[i] = append(state[i], i*1000+j)
		}
		c.SetCheckpointer(i, sliceCheckpointer{state, i})
	}
	return c, state
}

func TestInactivePlanInstallsNoEngine(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Faults: &fault.Plan{}})
	if c.FaultsActive() {
		t.Fatal("zero plan activated the fault engine")
	}
	if c.Buddy(0) != -1 {
		t.Fatal("buddy map exists without a fault engine")
	}
	c.SetCheckpointer(0, sliceCheckpointer{}) // must be a silent no-op
}

func TestPlanValidationAtNew(t *testing.T) {
	bad := &fault.Plan{Crashes: []fault.Crash{{Round: 1, Machine: 99999}}}
	if _, err := New(Config{N: 64, M: 256, Seed: 1, Faults: bad}); err == nil {
		t.Fatal("out-of-range crash machine accepted")
	}
}

func TestBuddyMapPairsLargeWithSmall(t *testing.T) {
	caps := []int{100, 80, 60, 40, 20, 10}
	buddy := buddyMap(caps)
	for i, b := range buddy {
		if b == i {
			t.Fatalf("machine %d is its own buddy", i)
		}
		if b < 0 || b >= len(caps) {
			t.Fatalf("buddy[%d] = %d out of range", i, b)
		}
	}
	// Rank pairing with shift 3: capacity rank 0 (machine 0) pairs with
	// rank 3 (machine 3), so the largest machine holds a small one's state.
	if buddy[0] != 3 || buddy[3] != 0 {
		t.Fatalf("rank pairing broken: buddy[0]=%d buddy[3]=%d", buddy[0], buddy[3])
	}
}

// TestCheckpointBarrierChargesReplication: checkpoints happen at the
// configured cadence, charge the replicated words, and inflate the makespan
// by latency + the busiest machine's transfer time.
func TestCheckpointBarrierChargesReplication(t *testing.T) {
	const words = 5
	c, _ := faultCluster(t, &fault.Plan{Interval: 2}, words)
	k := c.K()
	for r := 0; r < 4; r++ {
		if _, _, err := c.Exchange(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Checkpoints != 2 {
		t.Fatalf("checkpoints %d, want 2 (rounds 2 and 4)", st.Checkpoints)
	}
	wantWords := int64(2 * k * words)
	if st.ReplicationWords != wantWords {
		t.Fatalf("replication words %d, want %d", st.ReplicationWords, wantWords)
	}
	if st.Crashes != 0 || st.RecoveryRounds != 0 {
		t.Fatalf("phantom crashes: %+v", st)
	}
	// 4 silent rounds + 2 checkpoint barriers, each barrier: latency 1 +
	// busiest machine moving 2·words (its own snapshot out, its buddy's in)
	// at unit cost (1/speed + 1/bw = 2).
	want := 4.0 + 2*(1.0+float64(2*words)*2)
	if st.Makespan != want {
		t.Fatalf("makespan %v, want %v", st.Makespan, want)
	}
}

// TestCrashRecoveryChargesAndRoundTrips: an explicit crash restores from
// the buddy, charges the replica transfer and the replay rounds since the
// last checkpoint, and round-trips the state through the Checkpointer.
func TestCrashRecoveryChargesAndRoundTrips(t *testing.T) {
	const words = 4
	plan := &fault.Plan{
		Interval: 2,
		Crashes:  []fault.Crash{{Round: 3, Machine: 1, RestartAfter: 2}},
	}
	c, state := faultCluster(t, plan, words)
	before := slices.Clone(state[1])
	for r := 0; r < 3; r++ {
		if _, _, err := c.Exchange(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Crashes != 1 {
		t.Fatalf("crashes %d, want 1", st.Crashes)
	}
	// Detect (1) + replay rounds 3-2=1 + restart 2.
	if want := 1 + 1 + 2; st.RecoveryRounds != want {
		t.Fatalf("recovery rounds %d, want %d", st.RecoveryRounds, want)
	}
	// Checkpoint at round 2 replicated k·words; the crash restore moved the
	// victim's replica (words) once more.
	if want := int64(c.K()*words + words); st.ReplicationWords != want {
		t.Fatalf("replication words %d, want %d", st.ReplicationWords, want)
	}
	if !slices.Equal(state[1], before) {
		t.Fatalf("state corrupted by recovery: %v vs %v", state[1], before)
	}
}

// TestBuddyDeathFallsBackToReplay: when a machine and its buddy die at the
// same barrier, recovery replays cold — more recovery rounds, no restore
// transfer.
func TestBuddyDeathFallsBackToReplay(t *testing.T) {
	c0, _ := faultCluster(t, &fault.Plan{Interval: 4}, 3)
	victim, buddy := 1, c0.Buddy(1)

	run := func(plan *fault.Plan) Stats {
		c, _ := faultCluster(t, plan, 3)
		for r := 0; r < 6; r++ {
			if _, _, err := c.Exchange(nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	solo := run(&fault.Plan{Interval: 4, Crashes: []fault.Crash{
		{Round: 6, Machine: victim},
	}})
	pair := run(&fault.Plan{Interval: 4, Crashes: []fault.Crash{
		{Round: 6, Machine: victim}, {Round: 6, Machine: buddy},
	}})
	// Solo: rec = 1 + (6-4) = 3 per victim; replica transfer charged.
	if solo.Crashes != 1 || solo.RecoveryRounds != 3 {
		t.Fatalf("solo crash: %+v", solo)
	}
	// Pair: both victims replay cold, rec = 2 + 2·2 = 6 each; no restore
	// words beyond the checkpoint replication (identical in both runs).
	if pair.Crashes != 2 || pair.RecoveryRounds != 12 {
		t.Fatalf("pair crash: %+v", pair)
	}
	if pair.ReplicationWords >= solo.ReplicationWords {
		t.Fatalf("cold replay should move fewer words: pair %d vs solo %d",
			pair.ReplicationWords, solo.ReplicationWords)
	}
}

// TestCrashDuringDowntimeAbsorbed: a machine that fails again while still
// inside a previous crash's restart downtime is not charged a second
// independent recovery.
func TestCrashDuringDowntimeAbsorbed(t *testing.T) {
	plan := &fault.Plan{
		Interval: 2,
		Crashes: []fault.Crash{
			{Round: 3, Machine: 1, RestartAfter: 3}, // down through round 6
			{Round: 5, Machine: 1},                  // inside the downtime: absorbed
			{Round: 7, Machine: 1},                  // after restart: a fresh crash
		},
	}
	c, _ := faultCluster(t, plan, 3)
	for r := 0; r < 8; r++ {
		if _, _, err := c.Exchange(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Crashes; got != 2 {
		t.Fatalf("crashes %d, want 2 (round-5 failure absorbed by downtime)", got)
	}
}

// TestSlowdownWindowMovesOnlyMakespan: a transient slowdown leaves every
// communication stat untouched and raises the makespan during its window.
func TestSlowdownWindowMovesOnlyMakespan(t *testing.T) {
	run := func(plan *fault.Plan) Stats {
		c := newTest(t, Config{N: 1024, M: 8192, Seed: 5, Faults: plan})
		for r := 0; r < 3; r++ {
			outs, outLarge := buildHeavyRound(c)
			if _, _, err := c.Exchange(outs, outLarge); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	base := run(nil)
	// The factor must be large enough for the slowed machine to out-last
	// the large machine (the makespan is a max over machines).
	slowed := run(&fault.Plan{Slowdowns: []fault.Slowdown{{Machine: 0, From: 2, To: 2, Factor: 1e5}}})
	if slowed.Rounds != base.Rounds || slowed.Messages != base.Messages ||
		slowed.TotalWords != base.TotalWords || slowed.MaxSendWords != base.MaxSendWords {
		t.Fatalf("slowdown changed communication stats: %+v vs %+v", slowed, base)
	}
	if slowed.Makespan <= base.Makespan {
		t.Fatalf("slowdown did not raise makespan: %v vs %v", slowed.Makespan, base.Makespan)
	}
}

// TestRecoveryDeterministicAcrossGOMAXPROCS: a run with checkpoints,
// rate-derived crashes and slowdowns produces bit-identical Stats whether
// the engine fans out over goroutines or runs on one CPU.
func TestRecoveryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	plan := &fault.Plan{
		Interval:  2,
		CrashRate: 0.02,
		Slowdowns: []fault.Slowdown{{Machine: 1, From: 1, To: 8, Factor: 4}},
	}
	run := func() Stats {
		c := newTest(t, Config{N: 1024, M: 8192, Seed: 5, Faults: plan})
		state := make([][]int, c.K())
		for i := range state {
			state[i] = []int{i, i + 1, i + 2}
			c.SetCheckpointer(i, sliceCheckpointer{state, i})
		}
		for r := 0; r < 10; r++ {
			outs, outLarge := buildHeavyRound(c)
			if _, _, err := c.Exchange(outs, outLarge); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(prev)
	many := run()
	if one != many {
		t.Fatalf("stats differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one, many)
	}
	if one.Crashes == 0 || one.Checkpoints == 0 {
		t.Fatalf("plan injected nothing: %+v", one)
	}
}
