package mpc

import (
	"testing"
)

// TestResetStatsScratchMatchesFresh pins the ResetStats scratch contract:
// a mid-run reset returns the traffic-proportional scratch (routing plans,
// offset tables, the topology cache, decoder arenas), so a reset cluster
// re-warms and then allocates exactly what a fresh cluster does in steady
// state — no more (a leaked pool would hide re-growth) and no less (a
// retained pool would mask the release).
func TestResetStatsScratchMatchesFresh(t *testing.T) {
	steady := func(c *Cluster) float64 {
		outs := ringRound(c, 2)
		for i := 0; i < 5; i++ {
			if _, _, err := c.Exchange(outs, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(100, func() { c.Exchange(outs, nil) })
	}

	fresh := newTest(t, Config{N: 64, M: 256, Seed: 1})
	want := steady(fresh)

	reset := newTest(t, Config{N: 64, M: 256, Seed: 1})
	steady(reset) // grow the scratch to its high-water mark
	reset.ResetStats()
	if reset.exch.plans != nil || reset.exch.topoValid || reset.exch.topoEnts != nil {
		t.Fatal("ResetStats kept the routing scratch alive")
	}
	if got := steady(reset); got != want {
		t.Errorf("reset cluster steady state allocates %v per round, fresh cluster %v", got, want)
	}
}

// TestResetStatsInvalidatesTopologyCache drives two different topologies
// around a reset: the cached flat offsets of the pre-reset shape must not
// leak into post-reset rounds (the exact-compare guard makes staleness
// impossible, but the reset must also drop the cache so memory follows).
func TestResetStatsInvalidatesTopologyCache(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	k := c.K()
	ring := ringRound(c, 2)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Exchange(ring, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.ResetStats()
	// A different shape: everyone sends two messages, to both neighbors.
	outs := make([][]Msg, k)
	for i := 0; i < k; i++ {
		outs[i] = []Msg{
			{To: (i + 1) % k, Words: 1, Data: i},
			{To: (i + k - 1) % k, Words: 1, Data: -i},
		}
	}
	ins, _, err := c.Exchange(outs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if len(ins[i]) != 2 {
			t.Fatalf("machine %d received %d messages, want 2", i, len(ins[i]))
		}
		for _, m := range ins[i] {
			want := m.From
			if m.Data != want && m.Data != -want {
				t.Fatalf("machine %d received %v from %d", i, m.Data, m.From)
			}
		}
	}
}

// TestExchangeTopologyCacheAlternating verifies the flat-offset cache under
// an alternating topology (the worst case for reuse): inbox contents must
// be identical round over round whether the cache hits or rebuilds.
func TestExchangeTopologyCacheAlternating(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	k := c.K()
	shapes := [][][]Msg{ringRound(c, 2), nil}
	// Shape 1: reversed ring with doubled fan-out from machine 0.
	rev := make([][]Msg, k)
	for i := 0; i < k; i++ {
		rev[i] = []Msg{{To: (i + k - 1) % k, Words: 1, Data: 100 + i}}
	}
	rev[0] = append(rev[0], Msg{To: k / 2, Words: 3, Data: -1})
	shapes[1] = rev
	for round := 0; round < 8; round++ {
		outs := shapes[round%2]
		ins, _, err := c.Exchange(outs, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := range ins {
			total += len(ins[i])
			for _, m := range ins[i] {
				if m.To != i {
					t.Fatalf("round %d: machine %d received a message addressed to %d", round, i, m.To)
				}
			}
		}
		want := k
		if round%2 == 1 {
			want = k + 1
		}
		if total != want {
			t.Fatalf("round %d delivered %d messages, want %d", round, total, want)
		}
	}
}
