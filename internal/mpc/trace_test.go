package mpc

import (
	"testing"

	"hetmpc/internal/fault"
	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
)

// TestSpanDeltaAndNesting: Span.End returns the Stats delta of the scope,
// nested spans attribute each round to the innermost path (no double
// counting across the phase partition), and End-by-depth cleans up inner
// spans leaked by early returns.
func TestSpanDeltaAndNesting(t *testing.T) {
	tr := trace.New()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Trace: tr})

	outer := c.Span("outer")
	if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
		t.Fatal(err)
	}
	inner := c.Span("inner")
	if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
		t.Fatal(err)
	}
	innerDelta := inner.End()
	if innerDelta.Rounds != 1 {
		t.Fatalf("inner delta rounds = %d, want 1", innerDelta.Rounds)
	}
	leak := c.Span("leaked") // never explicitly ended
	_ = leak
	outerDelta := outer.End() // must close "leaked" too
	if outerDelta.Rounds != 2 {
		t.Fatalf("outer delta rounds = %d, want 2", outerDelta.Rounds)
	}
	if got := tr.Depth(); got != 0 {
		t.Fatalf("span stack depth after outer End = %d, want 0 (leaked span not truncated)", got)
	}
	rounds := tr.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(rounds))
	}
	if rounds[0].Phase != "outer" || rounds[1].Phase != "outer/inner" {
		t.Fatalf("phases = %q, %q; want outer, outer/inner", rounds[0].Phase, rounds[1].Phase)
	}
	// Idempotent End returns the fixed delta.
	if again := outer.End(); again != outerDelta {
		t.Fatalf("second End returned %+v, want %+v", again, outerDelta)
	}
	// The phase partition sums to the totals.
	s := trace.Summarize(rounds)
	if s.Makespan != c.Stats().Makespan || s.Words != c.Stats().TotalWords {
		t.Fatalf("summary (%v, %d) != stats (%v, %d)",
			s.Makespan, s.Words, c.Stats().Makespan, c.Stats().TotalWords)
	}
}

// TestEmptyRoundAdvancesClockAndTraces: an all-empty Exchange still advances
// the round clock, charges the barrier latency, and — under tracing —
// produces a record with no argmax, so trace conservation holds on silent
// rounds too.
func TestEmptyRoundAdvancesClockAndTraces(t *testing.T) {
	tr := trace.New()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Trace: tr})
	for _, outs := range [][][]Msg{nil, make([][]Msg, c.K())} {
		before := c.Stats()
		if _, _, err := c.Exchange(outs, nil); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Rounds != before.Rounds+1 {
			t.Fatalf("empty round did not advance the clock: %d -> %d", before.Rounds, st.Rounds)
		}
		if st.Makespan != before.Makespan+1 {
			t.Fatalf("empty round makespan %v, want %v (barrier latency)", st.Makespan, before.Makespan+1)
		}
	}
	rounds := tr.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(rounds))
	}
	for i, r := range rounds {
		if r.Kind != trace.KindExchange || r.Words != 0 || r.Argmax != trace.None {
			t.Fatalf("empty-round record %d = %+v; want exchange kind, 0 words, no argmax", i, r)
		}
		if r.Makespan != 1 || r.Round != i+1 {
			t.Fatalf("empty-round record %d: makespan %v round %d, want 1 and %d", i, r.Makespan, r.Round, i+1)
		}
	}
}

// TestResetStatsClearsTrace: the trace buffer is keyed by the round clock,
// so ResetStats must clear it with the clock; post-reset records restart
// from round 1 on an empty timeline.
func TestResetStatsClearsTrace(t *testing.T) {
	tr := trace.New()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Trace: tr})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("recorded %d rounds, want 3", tr.Len())
	}
	c.ResetStats()
	if tr.Len() != 0 {
		t.Fatalf("trace buffer holds %d records after ResetStats, want 0", tr.Len())
	}
	if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.Rounds()[0].Round; got != 1 {
		t.Fatalf("post-reset record keyed to round %d, want 1 (stale clock)", got)
	}
}

// TestTracingIsObservational: the same workload with and without a
// collector produces bit-identical Stats — tracing never perturbs.
func TestTracingIsObservational(t *testing.T) {
	run := func(tr *trace.Collector) Stats {
		cfg := Config{N: 64, M: 256, Seed: 1, Trace: tr}
		cfg.Profile = StragglerProfile(cfg.DeriveK(), 2, 8)
		c := newTest(t, cfg)
		for i := 0; i < 4; i++ {
			if _, _, err := c.Exchange(ringRound(c, 3), nil); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	if untraced, traced := run(nil), run(trace.New()); untraced != traced {
		t.Fatalf("tracing changed the stats:\nuntraced: %+v\n  traced: %+v", untraced, traced)
	}
}

// TestSpeculationBusyTimeAndTrace pins the partner-charging contract of
// speculate:R that was previously untested: the partner's BusyTime carries
// the mirrored shard, BusyImbalance reflects the leveled round, and the
// trace record exposes the same charges (busy vector, argmax, spec words).
func TestSpeculationBusyTimeAndTrace(t *testing.T) {
	const B = 5
	tr := trace.New()
	cfg := Config{N: 64, M: 256, Seed: 1, Placement: sched.Speculate{R: 1}, Trace: tr}
	k := cfg.DeriveK()
	cfg.Profile = StragglerProfile(k, 1, 8) // machine k-1 at cost 9/word
	c := newTest(t, cfg)
	if _, _, err := c.Exchange(ringRound(c, B), nil); err != nil {
		t.Fatal(err)
	}

	// Machine 0 mirrors the straggler's 2B-word shard after its own: both
	// pair members finish at 2B·2 + 2B·2 = 8B; everyone else at 2B·2.
	want := float64(8 * B)
	if got := c.BusyTime(0); got != want {
		t.Fatalf("partner busy %v, want %v", got, want)
	}
	if got := c.BusyTime(k - 1); got != want {
		t.Fatalf("victim busy %v, want %v", got, want)
	}
	for i := 1; i < k-1; i++ {
		if got := c.BusyTime(i); got != float64(4*B) {
			t.Fatalf("bystander %d busy %v, want %v", i, got, float64(4*B))
		}
	}
	// max/mean over k machines: max = 8B, mean = (2·8B + (k-2)·4B)/k.
	mean := (2*float64(8*B) + float64(k-2)*float64(4*B)) / float64(k)
	if got := c.BusyImbalance(); got != want/mean {
		t.Fatalf("imbalance %v, want %v", got, want/mean)
	}
	if got := c.Stats().SpeculationWords; got != int64(2*B) {
		t.Fatalf("speculation words %d, want %d", got, 2*B)
	}

	// The trace record carries the same story.
	if tr.Len() != 1 {
		t.Fatalf("recorded %d rounds, want 1", tr.Len())
	}
	rec := tr.Rounds()[0]
	if rec.SpecWords != int64(2*B) {
		t.Fatalf("record spec words %d, want %d", rec.SpecWords, 2*B)
	}
	if rec.MaxTime != want {
		t.Fatalf("record max time %v, want %v", rec.MaxTime, want)
	}
	// First maximum wins ties: machine 0 (the partner) precedes the victim.
	if rec.Argmax != 0 {
		t.Fatalf("record argmax %d, want 0 (the charged partner)", rec.Argmax)
	}
	if rec.Busy[1+0] != want || rec.Busy[1+(k-1)] != want {
		t.Fatalf("record busy pair (%v, %v), want both %v", rec.Busy[1+0], rec.Busy[1+(k-1)], want)
	}
}

// TestTraceRecordsFaultEvents: checkpoint barriers and crash recoveries
// appear in the timeline as their own records, and the ordered sum of all
// record contributions stays bit-identical to the makespan even with the
// fault engine active.
func TestTraceRecordsFaultEvents(t *testing.T) {
	tr := trace.New()
	plan := &fault.Plan{
		Interval: 2,
		Crashes:  []fault.Crash{{Round: 3, Machine: 1, RestartAfter: 2}},
	}
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Faults: plan, Trace: tr})
	state := make([][]int, c.K())
	for i := range state {
		state[i] = []int{i, i}
		c.SetCheckpointer(i, sliceCheckpointer{data: state, i: i})
	}
	for r := 0; r < 5; r++ {
		if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Crashes != 1 || st.Checkpoints == 0 {
		t.Fatalf("plan did not exercise the engine: %+v", st)
	}
	ckpts, recoveries := 0, 0
	sum := 0.0
	var words int64
	for _, r := range tr.Rounds() {
		sum += r.Makespan
		words += r.Words
		switch r.Kind {
		case trace.KindCheckpoint:
			ckpts += r.Checkpoints
		case trace.KindRecovery:
			recoveries++
			if r.Victim != 1 {
				t.Fatalf("recovery record victim %d, want 1", r.Victim)
			}
		}
	}
	if ckpts != st.Checkpoints || recoveries != st.Crashes {
		t.Fatalf("trace saw %d checkpoints / %d recoveries, stats say %d / %d",
			ckpts, recoveries, st.Checkpoints, st.Crashes)
	}
	if sum != st.Makespan {
		t.Fatalf("trace makespan sum %v != stats %v (conservation with faults)", sum, st.Makespan)
	}
	if words != st.TotalWords {
		t.Fatalf("trace words %d != stats %d", words, st.TotalWords)
	}
}
