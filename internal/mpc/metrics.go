package mpc

import (
	"hetmpc/internal/metrics"
	"hetmpc/internal/trace"
)

// clusterMetrics is the engine's prebound instrument set (Config.Metrics,
// DESIGN.md §12). Every hot-path instrument is resolved once at New, so a
// metered round performs no registry lookups except for the per-phase words
// counter, whose label is only known at the round barrier. A nil
// *clusterMetrics — the Config.Metrics == nil path — is never touched: every
// hook site is guarded by `if c.mx != nil`, so the unmetered engine executes
// exactly the pre-metrics instruction stream (the same contract as the nil
// trace collector, pinned by the top-level golden and AllocsPerRun tests).
//
// Conservation by construction: the per-machine mpc_send_words_total
// counters are fed from the same live counters as Stats.TotalWords, so their
// sum equals it exactly; the per-link wire_link_write_bytes_total counters
// (wire.InstrumentLink) sum to Stats.WireBytes on successful runs. Both laws
// are asserted in tests.
//
// Counters are cumulative for the registry's lifetime and are deliberately
// NOT rebased by ResetStats: one registry may serve several clusters (an
// experiment sweep), and a reset of one cluster must not erase the others'
// history. Reconciliation against Stats therefore uses a fresh cluster (or
// snapshot deltas).
type clusterMetrics struct {
	reg *metrics.Registry

	rounds    *metrics.Counter   // mpc_rounds_total: exchange rounds (incl. silent)
	silent    *metrics.Counter   // mpc_silent_rounds_total: barrier-only rounds
	messages  *metrics.Counter   // mpc_messages_total
	words     *metrics.Counter   // mpc_words_total: == Stats.TotalWords growth
	specWords *metrics.Counter   // mpc_speculation_words_total
	makespan  *metrics.Gauge     // mpc_makespan: live Stats.Makespan
	roundTime *metrics.Histogram // mpc_round_time: latency + busiest machine, per contribution
	inbox     *metrics.Histogram // mpc_inbox_messages: per machine per round, delivered messages

	// Per-machine dimensions, indexed by slot (0 = large, 1+i = small i).
	sendWords []*metrics.Counter // mpc_send_words_total{machine}
	recvWords []*metrics.Counter // mpc_recv_words_total{machine}
	busyTime  []*metrics.Gauge   // mpc_busy_time{machine}: cumulative simulated busy time

	// Fault engine (recover.go).
	checkpoints      *metrics.Counter   // fault_checkpoints_total
	replicationWords *metrics.Counter   // fault_replication_words_total
	recoveryRounds   *metrics.Counter   // fault_recovery_rounds_total
	replayRounds     *metrics.Counter   // fault_replay_rounds_total: replayed work rounds
	crashes          []*metrics.Counter // fault_crashes_total{machine}, per small machine

	// Wire transport (wirenet.go); per destination slot.
	encodeNs *metrics.Counter   // wire_encode_ns_total: serial frame-encode time
	decodeNs []*metrics.Counter // wire_decode_ns_total{link}: per-reader decode time
	frames   []*metrics.Counter // wire_link_frames_total{link}: messages framed per link
}

// newClusterMetrics prebinds the engine instruments (nil reg = nil, the
// zero-overhead path).
func newClusterMetrics(reg *metrics.Registry, k int) *clusterMetrics {
	if reg == nil {
		return nil
	}
	mx := &clusterMetrics{
		reg:              reg,
		rounds:           reg.Counter("mpc_rounds_total"),
		silent:           reg.Counter("mpc_silent_rounds_total"),
		messages:         reg.Counter("mpc_messages_total"),
		words:            reg.Counter("mpc_words_total"),
		specWords:        reg.Counter("mpc_speculation_words_total"),
		makespan:         reg.Gauge("mpc_makespan"),
		roundTime:        reg.Histogram("mpc_round_time", metrics.ExpBuckets(1, 2, 20)),
		inbox:            reg.Histogram("mpc_inbox_messages", metrics.ExpBuckets(1, 4, 12)),
		sendWords:        make([]*metrics.Counter, k+1),
		recvWords:        make([]*metrics.Counter, k+1),
		busyTime:         make([]*metrics.Gauge, k+1),
		checkpoints:      reg.Counter("fault_checkpoints_total"),
		replicationWords: reg.Counter("fault_replication_words_total"),
		recoveryRounds:   reg.Counter("fault_recovery_rounds_total"),
		replayRounds:     reg.Counter("fault_replay_rounds_total"),
		crashes:          make([]*metrics.Counter, k),
		encodeNs:         reg.Counter("wire_encode_ns_total"),
		decodeNs:         make([]*metrics.Counter, k+1),
		frames:           make([]*metrics.Counter, k+1),
	}
	for slot := 0; slot <= k; slot++ {
		name := trace.MachineName(slotMachine(slot))
		mx.sendWords[slot] = reg.Counter("mpc_send_words_total", "machine", name)
		mx.recvWords[slot] = reg.Counter("mpc_recv_words_total", "machine", name)
		mx.busyTime[slot] = reg.Gauge("mpc_busy_time", "machine", name)
		mx.decodeNs[slot] = reg.Counter("wire_decode_ns_total", "link", name)
		mx.frames[slot] = reg.Counter("wire_link_frames_total", "link", name)
	}
	for i := 0; i < k; i++ {
		mx.crashes[i] = reg.Counter("fault_crashes_total", "machine", trace.MachineName(i))
	}
	return mx
}

// Metrics returns the cluster's metrics registry (Config.Metrics), nil when
// the run is unmetered.
func (c *Cluster) Metrics() *metrics.Registry {
	if c.mx == nil {
		return nil
	}
	return c.mx.reg
}

// observeSilentRound records a barrier-only round (no sender spoke).
func (c *Cluster) observeSilentRound() {
	mx := c.mx
	mx.rounds.Inc()
	mx.silent.Inc()
	mx.roundTime.Observe(c.latency)
	mx.makespan.Set(c.stats.Makespan)
}

// observeExchange records the round just charged, from the same live
// counters the stats pass and the trace record read (it runs at the serial
// round barrier, before the send counters are zeroed; the receive counters
// stay valid until the deferred reset). specDelta is the round's new
// speculation words.
func (c *Cluster) observeExchange(totalMsgs int, totalWords int64, roundMax float64, specDelta int64) {
	mx := c.mx
	sc := c.exch
	mx.rounds.Inc()
	mx.messages.Add(int64(totalMsgs))
	mx.words.Add(totalWords)
	mx.specWords.Add(specDelta)
	mx.roundTime.Observe(c.latency + roundMax)
	mx.makespan.Set(c.stats.Makespan)
	for slot := 0; slot <= c.k; slot++ {
		if w := sc.sendWords[slot]; w > 0 {
			mx.sendWords[slot].Add(int64(w))
		}
		if w := sc.recvWords[slot]; w > 0 {
			mx.recvWords[slot].Add(int64(w))
		}
		if n := sc.recvCount[slot]; n > 0 {
			mx.inbox.Observe(float64(n))
		}
		mx.busyTime[slot].Set(c.busy[slot])
	}
	// The per-phase words dimension attributes traffic to the innermost open
	// span; with no trace collector installed every round lands on the ""
	// phase (the span stack lives on the collector). This is the one lookup
	// the hot path performs — the phase set is small and the label dynamic.
	phase := ""
	if c.tr != nil {
		phase = c.tr.Phase()
	}
	mx.reg.Counter("mpc_phase_words_total", "phase", phase).Add(totalWords)
	mx.reg.Counter("mpc_phase_rounds_total", "phase", phase).Inc()
}

// observeCheckpoint records a checkpoint barrier's replication work.
func (c *Cluster) observeCheckpoint(barrierWords int64, roundMax float64) {
	mx := c.mx
	mx.checkpoints.Inc()
	mx.replicationWords.Add(barrierWords)
	mx.roundTime.Observe(c.latency + roundMax)
	mx.makespan.Set(c.stats.Makespan)
}

// observeRecovery records one victim's crash recovery: the extra barrier
// rounds, the replayed work and the restore transfer.
func (c *Cluster) observeRecovery(victim, rec, replayWork, restoreWords int) {
	mx := c.mx
	mx.crashes[victim].Inc()
	mx.recoveryRounds.Add(int64(rec))
	mx.replayRounds.Add(int64(replayWork))
	mx.replicationWords.Add(int64(restoreWords))
	mx.makespan.Set(c.stats.Makespan)
}
