package mpc

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"hetmpc/internal/wire"
)

// transports returns the three delivery paths under test, fresh per call (a
// transport belongs to one cluster).
func transports() map[string]func() wire.Transport {
	return map[string]func() wire.Transport{
		"inproc": func() wire.Transport { return nil },
		"pipe":   func() wire.Transport { return wire.NewPipe() },
		"tcp":    func() wire.Transport { return wire.NewTCP() },
	}
}

// TestWireDeliveryMatchesInproc runs the heavy mixed round over every
// transport: the delivered inboxes and the modeled Stats must be
// bit-identical to the shared-memory path, and the two real transports must
// put the identical byte count on the wire.
func TestWireDeliveryMatchesInproc(t *testing.T) {
	type result struct {
		ins     [][]Msg
		inLarge []Msg
		st      Stats
	}
	results := map[string]result{}
	for name, mk := range transports() {
		c := newTest(t, Config{N: 1024, M: 8192, Seed: 5, Transport: mk()})
		defer c.Close()
		outs, outLarge := buildHeavyRound(c)
		ins, inLarge, err := c.Exchange(outs, outLarge)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = result{ins, inLarge, c.Stats()}
	}
	base := results["inproc"]
	if base.st.WireBytes != 0 {
		t.Fatalf("inproc put %d bytes on a wire it does not have", base.st.WireBytes)
	}
	for _, name := range []string{"pipe", "tcp"} {
		r := results[name]
		if !reflect.DeepEqual(r.ins, base.ins) || !reflect.DeepEqual(r.inLarge, base.inLarge) {
			t.Errorf("%s: delivered inboxes differ from inproc", name)
		}
		if r.st.WireBytes <= 0 {
			t.Errorf("%s: no bytes measured on the wire", name)
		}
		modeled := r.st
		modeled.WireBytes = 0
		if modeled != base.st {
			t.Errorf("%s: modeled stats diverged: %+v vs %+v", name, modeled, base.st)
		}
	}
	if results["pipe"].st.WireBytes != results["tcp"].st.WireBytes {
		t.Errorf("frame streams differ: pipe %d bytes, tcp %d bytes",
			results["pipe"].st.WireBytes, results["tcp"].st.WireBytes)
	}
}

// TestWireNativePayloadKinds pushes every wire-native payload kind (and one
// by-ref payload) through a real transport and checks the delivered values.
func TestWireNativePayloadKinds(t *testing.T) {
	type local struct{ A, B int } // not wire-native: crosses by ref
	payloads := []any{
		nil,
		int64(-7),
		uint64(1) << 63,
		[]int64{1, -2, 3},
		[]uint64{4, 5},
		[]byte("frame me"),
		local{A: 1, B: 2},
	}
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Transport: wire.NewPipe()})
	defer c.Close()
	outs := make([][]Msg, c.K())
	for i, p := range payloads {
		outs[0] = append(outs[0], Msg{To: 1, Words: 1 + i, Data: p})
	}
	ins, _, err := c.Exchange(outs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins[1]) != len(payloads) {
		t.Fatalf("delivered %d messages, want %d", len(ins[1]), len(payloads))
	}
	for i, m := range ins[1] {
		if m.From != 0 || m.To != 1 || m.Words != 1+i {
			t.Errorf("msg %d header = {From:%d To:%d Words:%d}", i, m.From, m.To, m.Words)
		}
		if !reflect.DeepEqual(m.Data, payloads[i]) {
			t.Errorf("msg %d payload = %#v, want %#v", i, m.Data, payloads[i])
		}
	}
	if got := c.Stats().WireBytes; got != c.WireBytesOf(1) {
		t.Errorf("WireBytes %d but link small-1 carried %d (the only active link)", got, c.WireBytesOf(1))
	}
}

// TestWireTransportErrorNamesLink is the silent-hang regression: after a
// peer's link dies mid-run, the next Exchange must return — within the
// watchdog window, never hanging — a typed wire.ErrTransport naming the
// dead link, and every Exchange after that must fail fast with the same
// error.
func TestWireTransportErrorNamesLink(t *testing.T) {
	for _, name := range []string{"pipe", "tcp"} {
		t.Run(name, func(t *testing.T) {
			mk := transports()[name]
			c := newTest(t, Config{N: 256, M: 1024, Seed: 3, Transport: mk()})
			defer c.Close()
			round := func() error {
				outs := make([][]Msg, c.K())
				outs[0] = []Msg{{To: 2, Words: 1, Data: int64(1)}}
				outs[2] = []Msg{{To: 0, Words: 1, Data: int64(2)}}
				_, _, err := c.Exchange(outs, nil)
				return err
			}
			for r := 0; r < 3; r++ {
				if err := round(); err != nil {
					t.Fatalf("healthy round %d: %v", r, err)
				}
			}
			if err := c.KillLink(2); err != nil {
				t.Fatalf("KillLink: %v", err)
			}
			done := make(chan error, 1)
			go func() { done <- round() }()
			var err error
			select {
			case err = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("Exchange hung after the peer died (silent-hang regression)")
			}
			if !errors.Is(err, wire.ErrTransport) {
				t.Fatalf("err = %v, want wrapped wire.ErrTransport", err)
			}
			if !strings.Contains(err.Error(), `"small-2"`) {
				t.Errorf("error does not name the dead link: %v", err)
			}
			if err2 := round(); !errors.Is(err2, wire.ErrTransport) {
				t.Errorf("round after failure = %v, want fail-fast wire.ErrTransport", err2)
			}
		})
	}
}

// TestWireResetStatsClearsByteCounters pins ResetStats semantics: the
// per-link byte counters track Stats.WireBytes through a reset.
func TestWireResetStatsClearsByteCounters(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 2, Transport: wire.NewTCP()})
	defer c.Close()
	outs := make([][]Msg, c.K())
	outs[0] = []Msg{{To: 1, Words: 3, Data: []int64{9, 9, 9}}}
	if _, _, err := c.Exchange(outs, nil); err != nil {
		t.Fatal(err)
	}
	if c.Stats().WireBytes == 0 || c.WireBytesOf(1) == 0 {
		t.Fatal("no bytes measured before reset")
	}
	c.ResetStats()
	if c.Stats().WireBytes != 0 || c.WireBytesOf(1) != 0 {
		t.Fatalf("reset left wire bytes: stats %d, link %d", c.Stats().WireBytes, c.WireBytesOf(1))
	}
	outs[0] = []Msg{{To: 1, Words: 1, Data: int64(1)}}
	if _, _, err := c.Exchange(outs, nil); err != nil {
		t.Fatal(err)
	}
	if c.Stats().WireBytes != c.WireBytesOf(1) {
		t.Fatalf("post-reset counters diverge: stats %d, link %d", c.Stats().WireBytes, c.WireBytesOf(1))
	}
}
