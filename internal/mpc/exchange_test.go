package mpc

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// buildHeavyRound returns a deterministic round with enough traffic to take
// the parallel routing path: every small machine sends to a spread of
// destinations plus the large machine, and the large machine scatters to
// everyone.
func buildHeavyRound(c *Cluster) (outs [][]Msg, outLarge []Msg) {
	k := c.K()
	outs = make([][]Msg, k)
	for i := 0; i < k; i++ {
		n := 3 + i%13
		for j := 0; j < n; j++ {
			to := (i*31 + j*17) % k
			if j == n-1 {
				to = Large
			}
			outs[i] = append(outs[i], Msg{To: to, Words: 1 + (i+j)%3, Data: fmt.Sprintf("m%d.%d", i, j)})
		}
	}
	for i := 0; i < k; i++ {
		outLarge = append(outLarge, Msg{To: i, Words: 2, Data: fmt.Sprintf("L.%d", i)})
	}
	return outs, outLarge
}

func runHeavyRound(t *testing.T) (ins [][]Msg, inLarge []Msg, st Stats) {
	t.Helper()
	c := newTest(t, Config{N: 1024, M: 8192, Seed: 5})
	outs, outLarge := buildHeavyRound(c)
	ins, inLarge, err := c.Exchange(outs, outLarge)
	if err != nil {
		t.Fatal(err)
	}
	return ins, inLarge, c.Stats()
}

// TestExchangeDeterministicAcrossGOMAXPROCS pins the batched engine's core
// guarantee: inbox contents, delivery order and stats are identical no
// matter how many workers routed the round.
func TestExchangeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	ins1, inLarge1, st1 := runHeavyRound(t)
	runtime.GOMAXPROCS(8)
	ins8, inLarge8, st8 := runHeavyRound(t)

	if !reflect.DeepEqual(ins1, ins8) {
		t.Fatal("small-machine inboxes differ across GOMAXPROCS settings")
	}
	if !reflect.DeepEqual(inLarge1, inLarge8) {
		t.Fatal("large-machine inbox differs across GOMAXPROCS settings")
	}
	if st1 != st8 {
		t.Fatalf("stats differ: %+v vs %+v", st1, st8)
	}
}

// TestExchangeDeliveryOrder verifies the documented merge order under the
// batched plan: large machine's messages first, then small senders by id,
// each in submission order.
func TestExchangeDeliveryOrder(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	outs := make([][]Msg, c.K())
	outs[2] = []Msg{{To: 5, Words: 1, Data: "from2a"}, {To: 5, Words: 1, Data: "from2b"}}
	outs[0] = []Msg{{To: 5, Words: 1, Data: "from0"}}
	outLarge := []Msg{{To: 5, Words: 1, Data: "fromL"}}
	ins, _, err := c.Exchange(outs, outLarge)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(ins[5]))
	for _, m := range ins[5] {
		got = append(got, m.Data.(string))
	}
	want := []string{"fromL", "from0", "from2a", "from2b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
}

// TestExchangeLargeRecvCap exercises the receive cap of the large machine
// under the hoisted (per-destination counter) accounting.
func TestExchangeLargeRecvCap(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	per := c.SmallCap()
	outs := make([][]Msg, c.K())
	need := c.LargeCap()/per + 2
	if need > c.K() {
		t.Skip("not enough machines to overflow the large cap at this size")
	}
	for i := 0; i < need; i++ {
		outs[i] = []Msg{{To: Large, Words: per}}
	}
	if _, _, err := c.Exchange(outs, nil); !errors.Is(err, ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
}

// TestExchangeErrorOrderDeterministic: with violations on two senders, the
// reported error is the lowest-id sender's, regardless of scheduling.
func TestExchangeErrorOrderDeterministic(t *testing.T) {
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		c := newTest(t, Config{N: 64, M: 256, Seed: 1})
		outs := make([][]Msg, c.K())
		outs[2] = []Msg{{To: 1, Words: c.SmallCap() + 1}} // send-cap violation
		outs[5] = []Msg{{To: -7, Words: 1}}               // invalid destination
		_, _, err := c.Exchange(outs, nil)
		runtime.GOMAXPROCS(prev)
		if !errors.Is(err, ErrCapacity) {
			t.Fatalf("procs=%d: want machine 2's ErrCapacity first, got %v", procs, err)
		}
	}
}

// TestExchangeInvalidDestinationStillSurfaces guards the validation moved
// into the parallel plan phase.
func TestExchangeInvalidDestinationStillSurfaces(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	outs := make([][]Msg, c.K())
	outs[0] = []Msg{{To: c.K(), Words: 1}}
	if _, _, err := c.Exchange(outs, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

// TestExchangeReuseAcrossRounds runs many rounds over the same cluster to
// exercise the pooled scratch state (a reset bug would corrupt round 2+).
func TestExchangeReuseAcrossRounds(t *testing.T) {
	c := newTest(t, Config{N: 256, M: 1024, Seed: 3})
	for r := 0; r < 5; r++ {
		outs := make([][]Msg, c.K())
		for i := 0; i < c.K(); i++ {
			outs[i] = []Msg{{To: (i + r + 1) % c.K(), Words: 1, Data: r*1000 + i}}
		}
		ins, _, err := c.Exchange(outs, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for d, inbox := range ins {
			for _, m := range inbox {
				if m.Data.(int) != r*1000+m.From {
					t.Fatalf("round %d: machine %d got %v from %d", r, d, m.Data, m.From)
				}
				total++
			}
		}
		if total != c.K() {
			t.Fatalf("round %d delivered %d messages, want %d", r, total, c.K())
		}
	}
	if c.Stats().Messages != int64(5*c.K()) {
		t.Fatalf("messages = %d, want %d", c.Stats().Messages, 5*c.K())
	}
}

// TestExchangeRejectsOutOfRangeSender is the regression test for the
// silent-drop bug: outs entries at or beyond K were clamped away by the
// sender loop, losing their traffic without a trace. Exchange must refuse
// them with ErrUnknownSender, naming the out-of-range sender, and deliver
// nothing — while outs that are merely longer than K but empty past the end
// stay legal.
func TestExchangeRejectsOutOfRangeSender(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	k := c.K()

	outs := make([][]Msg, k+3)
	outs[0] = []Msg{{To: 1, Words: 1, Data: "legit"}}
	outs[k+1] = []Msg{{To: 0, Words: 1, Data: "ghost"}}
	ins, inLarge, err := c.Exchange(outs, nil)
	if !errors.Is(err, ErrUnknownSender) {
		t.Fatalf("out-of-range sender: err = %v, want ErrUnknownSender", err)
	}
	if want := fmt.Sprintf("outs[%d]", k+1); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the out-of-range sender %s", err, want)
	}
	if ins != nil || inLarge != nil {
		t.Fatal("a failed exchange must deliver nothing")
	}

	// Empty tail entries beyond K are the documented "few machines speak"
	// shape and must not error; the in-range message must be delivered.
	outs[k+1] = nil
	ins, _, err = c.Exchange(outs, nil)
	if err != nil {
		t.Fatalf("empty tail: %v", err)
	}
	if len(ins[1]) != 1 || ins[1][0].Data != "legit" {
		t.Fatalf("in-range message lost: %+v", ins[1])
	}
}

// TestParallelNFirstErrorWins: parallelN must return an error when any call
// fails, and it must be one of the errors actually produced.
func TestParallelNFirstErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := parallelN(64, func(i int) error {
		switch i {
		case 10:
			return errA
		case 50:
			return errB
		default:
			return nil
		}
	})
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("got %v, want one of the produced errors", err)
	}
}

// TestParallelNStopsSchedulingAfterError: after a failure, not every
// remaining index keeps running (best-effort early abort).
func TestParallelNStopsSchedulingAfterError(t *testing.T) {
	var calls atomic.Int64
	sentinel := errors.New("boom")
	err := parallelN(1_000_000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if calls.Load() == 1_000_000 {
		t.Fatal("no early abort: every index ran after the failure")
	}
}

// TestParallelNEdgeCases: n = 0 and n = 1 take the inline path.
func TestParallelNEdgeCases(t *testing.T) {
	if err := parallelN(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ran := false
	if err := parallelN(1, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("n=1: err=%v ran=%v", err, ran)
	}
}
