package mpc

import "hetmpc/internal/trace"

// Span is a phase-scoped measurement window opened by Cluster.Span. It
// replaces the hand-rolled `before := c.Stats()` / diff pattern: End
// returns the Stats delta accumulated inside the scope, and — when the
// cluster was built with Config.Trace — every round executed inside the
// scope is tagged with the span's "/"-joined path in the trace timeline.
//
// Spans nest: a round is attributed to the innermost open span, so the
// per-phase sums of a trace partition the totals instead of double-counting
// the way nested before/diff snapshots did. End closes every span opened
// inside the scope as well (by depth), so an error return that skipped an
// inner End cannot corrupt the attribution of later rounds; ending with
// `defer sp.End()` (or a defer that consumes the delta) is always safe.
type Span struct {
	c      *Cluster
	before Stats
	depth  int
	ended  bool
	delta  Stats
}

// Span opens a phase scope named name and returns its handle. With a nil
// Config.Trace the span still measures (End returns the Stats delta) at
// zero cost to the simulation; with tracing enabled it additionally tags
// every round run before End with the span path.
func (c *Cluster) Span(name string) *Span {
	s := &Span{c: c, before: c.stats}
	if c.tr != nil {
		s.depth = c.tr.Depth()
		c.tr.Push(name)
	}
	return s
}

// End closes the span and returns the Stats accumulated inside it:
// additive fields (Rounds, Messages, TotalWords, Makespan, the fault and
// speculation counters) are deltas over the scope; the running maxima
// (MaxSendWords, MaxRecvWords) carry the cluster's current values, since a
// windowed maximum cannot be recovered from two snapshots. End is
// idempotent — the first call fixes the delta and later calls return it.
func (s *Span) End() Stats {
	if s.ended {
		return s.delta
	}
	s.ended = true
	if s.c.tr != nil {
		s.c.tr.Truncate(s.depth)
	}
	now := s.c.stats
	s.delta = Stats{
		Rounds:           now.Rounds - s.before.Rounds,
		Messages:         now.Messages - s.before.Messages,
		TotalWords:       now.TotalWords - s.before.TotalWords,
		MaxSendWords:     now.MaxSendWords,
		MaxRecvWords:     now.MaxRecvWords,
		Makespan:         now.Makespan - s.before.Makespan,
		Crashes:          now.Crashes - s.before.Crashes,
		RecoveryRounds:   now.RecoveryRounds - s.before.RecoveryRounds,
		Checkpoints:      now.Checkpoints - s.before.Checkpoints,
		ReplicationWords: now.ReplicationWords - s.before.ReplicationWords,
		SpeculationWords: now.SpeculationWords - s.before.SpeculationWords,
		WireBytes:        now.WireBytes - s.before.WireBytes,
	}
	return s.delta
}

// Trace returns the cluster's trace collector (Config.Trace), nil when the
// run is untraced.
func (c *Cluster) Trace() *trace.Collector { return c.tr }

// slotMachine converts an engine slot (0 = large, 1+i = small i) to the
// trace machine-id convention; pass -1 for "no machine".
func slotMachine(slot int) int {
	switch {
	case slot < 0:
		return trace.None
	case slot == 0:
		return trace.Large
	default:
		return slot - 1
	}
}

// recordExchange emits the trace record of the exchange round that was just
// charged. Called only when tracing is on; it re-derives the per-slot
// charges from the same counters and costs the makespan scan used, so the
// recorded Busy vector matches the charged times exactly.
func (c *Cluster) recordExchange(msgs int, words int64, roundMax float64, argSlot int, specWords int64) {
	send := make([]int, c.k+1)
	recv := make([]int, c.k+1)
	busy := make([]float64, c.k+1)
	copy(send, c.exch.sendWords)
	copy(recv, c.exch.recvWords)
	if c.specR > 0 {
		if w := send[0] + recv[0]; w > 0 {
			busy[0] = float64(w) * c.slowCost(0)
		}
		copy(busy[1:], c.spec.eff) // effective times after first-copy-wins
	} else {
		for slot := 0; slot <= c.k; slot++ {
			if w := send[slot] + recv[slot]; w > 0 {
				busy[slot] = float64(w) * c.slowCost(slot)
			}
		}
	}
	c.tr.Add(trace.Round{
		Round:     c.stats.Rounds,
		Phase:     c.tr.Phase(),
		Kind:      trace.KindExchange,
		Messages:  msgs,
		Words:     words,
		WireBytes: c.roundWire,
		Latency:   c.latency,
		MaxTime:   roundMax,
		Makespan:  c.latency + roundMax,
		Argmax:    slotMachine(argSlot),
		Victim:    trace.None,
		SpecWords: specWords,
		SendWords: send,
		RecvWords: recv,
		Busy:      busy,
	})
}
