package mpc

import (
	"testing"

	"hetmpc/internal/fault"
	"hetmpc/internal/metrics"
	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
	"hetmpc/internal/wire"
)

// counterValue re-looks an instrument up by identity; the registry returns
// the same counter, so this reads the engine's live value.
func counterValue(reg *metrics.Registry, name string, labels ...string) int64 {
	return reg.Counter(name, labels...).Value()
}

// machineCounterSum sums a per-machine counter over every slot of c.
func machineCounterSum(c *Cluster, name, label string) int64 {
	var sum int64
	reg := c.Metrics()
	sum += counterValue(reg, name, label, "large")
	for i := 0; i < c.K(); i++ {
		sum += counterValue(reg, name, label, trace.MachineName(i))
	}
	return sum
}

// TestMetricsWordConservation pins the acceptance-criteria law: the
// per-machine send-word counters sum exactly to Stats.TotalWords, and the
// aggregate counters track Stats one for one — including a silent round and
// large-machine traffic.
func TestMetricsWordConservation(t *testing.T) {
	reg := metrics.New()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Metrics: reg})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Exchange(ringRound(c, 2+i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Large machine speaks, then a silent round.
	if _, _, err := c.Exchange(nil, []Msg{{To: 0, Words: 7, Data: "x"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exchange(nil, nil); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if got := machineCounterSum(c, "mpc_send_words_total", "machine"); got != st.TotalWords {
		t.Fatalf("Σ send-word counters = %d, Stats.TotalWords = %d", got, st.TotalWords)
	}
	if got := machineCounterSum(c, "mpc_recv_words_total", "machine"); got != st.TotalWords {
		t.Fatalf("Σ recv-word counters = %d, Stats.TotalWords = %d (every word sent is received)", got, st.TotalWords)
	}
	if got := counterValue(reg, "mpc_words_total"); got != st.TotalWords {
		t.Fatalf("mpc_words_total = %d, want %d", got, st.TotalWords)
	}
	if got := counterValue(reg, "mpc_rounds_total"); got != int64(st.Rounds) {
		t.Fatalf("mpc_rounds_total = %d, Stats.Rounds = %d", got, st.Rounds)
	}
	if got := counterValue(reg, "mpc_silent_rounds_total"); got != 1 {
		t.Fatalf("mpc_silent_rounds_total = %d, want 1", got)
	}
	if got := counterValue(reg, "mpc_messages_total"); got != st.Messages {
		t.Fatalf("mpc_messages_total = %d, Stats.Messages = %d", got, st.Messages)
	}
	if got := reg.Gauge("mpc_makespan").Value(); got != st.Makespan {
		t.Fatalf("mpc_makespan gauge = %v, Stats.Makespan = %v", got, st.Makespan)
	}
	// The round-time histogram saw every makespan contribution: its exact
	// sum is the makespan (same additions as the Stats accumulation).
	if got := reg.Histogram("mpc_round_time", nil).Sum(); got != st.Makespan {
		t.Fatalf("mpc_round_time sum = %v, Stats.Makespan = %v", got, st.Makespan)
	}
	// Busy-time gauges mirror BusyTime per machine.
	if got := reg.Gauge("mpc_busy_time", "machine", "large").Value(); got != c.BusyTime(Large) {
		t.Fatalf("large busy gauge = %v, BusyTime = %v", got, c.BusyTime(Large))
	}
}

// TestMetricsWireByteConservation pins the second law over a real transport:
// the per-link write-byte counters (wire.InstrumentLink) sum exactly to
// Stats.WireBytes, and the frame counters to Stats.Messages.
func TestMetricsWireByteConservation(t *testing.T) {
	reg := metrics.New()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Metrics: reg, Transport: wire.NewPipe()})
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := c.Exchange(ringRound(c, 3), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.WireBytes == 0 {
		t.Fatal("pipe transport moved no bytes")
	}
	if got := machineCounterSum(c, "wire_link_write_bytes_total", "link"); got != st.WireBytes {
		t.Fatalf("Σ link write-byte counters = %d, Stats.WireBytes = %d", got, st.WireBytes)
	}
	// Every byte written is read back by the destination's drain.
	if got := machineCounterSum(c, "wire_link_read_bytes_total", "link"); got != st.WireBytes {
		t.Fatalf("Σ link read-byte counters = %d, Stats.WireBytes = %d", got, st.WireBytes)
	}
	if got := machineCounterSum(c, "wire_link_frames_total", "link"); got != st.Messages {
		t.Fatalf("Σ link frame counters = %d, Stats.Messages = %d", got, st.Messages)
	}
	if counterValue(reg, "wire_encode_ns_total") <= 0 {
		t.Fatal("encode time not measured")
	}
}

// TestMetricsFaultCounters: checkpoint barriers, crashes, recovery rounds
// and replication words reconcile with the Stats fault fields, and the
// instrumented checkpointers count their snapshot/restore round trips.
func TestMetricsFaultCounters(t *testing.T) {
	reg := metrics.New()
	plan := &fault.Plan{Interval: 2, Crashes: []fault.Crash{{Round: 3, Machine: 1, RestartAfter: 1}}}
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Faults: plan, Metrics: reg})
	state := make([][]int, c.K())
	for i := range state {
		state[i] = []int{i, i, i}
		c.SetCheckpointer(i, sliceCheckpointer{state, i})
	}
	for i := 0; i < 4; i++ {
		if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Crashes != 1 || st.Checkpoints == 0 {
		t.Fatalf("plan did not fire: %+v", st)
	}
	if got := counterValue(reg, "fault_checkpoints_total"); got != int64(st.Checkpoints) {
		t.Fatalf("fault_checkpoints_total = %d, Stats.Checkpoints = %d", got, st.Checkpoints)
	}
	if got := counterValue(reg, "fault_crashes_total", "machine", "small-1"); got != 1 {
		t.Fatalf("victim crash counter = %d, want 1", got)
	}
	if got := machineCounterSum(c, "fault_crashes_total", "machine") - counterValue(reg, "fault_crashes_total", "machine", "large"); got != int64(st.Crashes) {
		t.Fatalf("Σ crash counters = %d, Stats.Crashes = %d", got, st.Crashes)
	}
	if got := counterValue(reg, "fault_recovery_rounds_total"); got != int64(st.RecoveryRounds) {
		t.Fatalf("fault_recovery_rounds_total = %d, Stats.RecoveryRounds = %d", got, st.RecoveryRounds)
	}
	if got := counterValue(reg, "fault_replication_words_total"); got != st.ReplicationWords {
		t.Fatalf("fault_replication_words_total = %d, Stats.ReplicationWords = %d", got, st.ReplicationWords)
	}
	// The victim's recovery performed a snapshot/restore round trip on top
	// of its checkpoint-barrier snapshots.
	if got := counterValue(reg, "fault_restores_total", "machine", "small-1"); got != 1 {
		t.Fatalf("fault_restores_total{small-1} = %d, want 1", got)
	}
	if got := counterValue(reg, "fault_snapshots_total", "machine", "small-1"); got < 2 {
		t.Fatalf("fault_snapshots_total{small-1} = %d, want >= 2 (checkpoints + recovery)", got)
	}
}

// TestMetricsPhasePartition: the phase-labeled word counters partition the
// total exactly, keyed by the innermost span path (trace collector
// installed).
func TestMetricsPhasePartition(t *testing.T) {
	reg := metrics.New()
	c := newTest(t, Config{N: 64, M: 256, Seed: 1, Metrics: reg, Trace: trace.New()})
	sp := c.Span("build")
	if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
		t.Fatal(err)
	}
	sp.End()
	sp = c.Span("query")
	if _, _, err := c.Exchange(ringRound(c, 3), nil); err != nil {
		t.Fatal(err)
	}
	sp.End()
	build := counterValue(reg, "mpc_phase_words_total", "phase", "build")
	query := counterValue(reg, "mpc_phase_words_total", "phase", "query")
	if build != int64(2*c.K()) || query != int64(3*c.K()) {
		t.Fatalf("phase words: build %d query %d, want %d and %d", build, query, 2*c.K(), 3*c.K())
	}
	if build+query != c.Stats().TotalWords {
		t.Fatalf("phase partition %d != TotalWords %d", build+query, c.Stats().TotalWords)
	}
}

// TestMetricsEstimatorInstruments: an adaptive run counts its share
// re-splits and observes estimate deltas.
func TestMetricsEstimatorInstruments(t *testing.T) {
	reg := metrics.New()
	cfg := Config{N: 64, M: 256, Seed: 1, Metrics: reg, Placement: sched.Adaptive{Alpha: 0.5}}
	cfg.Profile = ZipfProfile(cfg.DeriveK(), 0.8, 0.05)
	c := newTest(t, cfg)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Exchange(ringRound(c, 2), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(reg, "sched_resplits_total"); got != 3 {
		t.Fatalf("sched_resplits_total = %d, want 3 (one per observed round)", got)
	}
	if got := reg.Histogram("sched_estimate_delta", nil).Count(); got == 0 {
		t.Fatal("estimate-delta histogram saw no observations")
	}
}

// TestMetricsAreObservational: the same workload metered and unmetered
// produces bit-identical Stats — metrics never perturb, the Config.Metrics
// analogue of the nil-collector trace guarantee (the cross-GOMAXPROCS
// golden lives in the top-level metrics_golden_test.go).
func TestMetricsAreObservational(t *testing.T) {
	run := func(reg *metrics.Registry) Stats {
		plan := &fault.Plan{Interval: 2, Crashes: []fault.Crash{{Round: 3, Machine: 1, RestartAfter: 1}}}
		cfg := Config{N: 64, M: 256, Seed: 7, Metrics: reg, Faults: plan, Placement: sched.Adaptive{Alpha: 0.5}}
		cfg.Profile = ZipfProfile(cfg.DeriveK(), 0.8, 0.05)
		c := newTest(t, cfg)
		state := make([][]int, c.K())
		for i := range state {
			state[i] = []int{i}
			c.SetCheckpointer(i, sliceCheckpointer{state, i})
		}
		for i := 0; i < 5; i++ {
			if _, _, err := c.Exchange(ringRound(c, 2+i%3), nil); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	if metered, plain := run(metrics.New()), run(nil); metered != plain {
		t.Fatalf("metrics perturbed the run:\nmetered %+v\nplain   %+v", metered, plain)
	}
}
