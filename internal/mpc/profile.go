package mpc

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Profile generalizes the cluster from "K identical small machines" to a
// per-machine capacity/speed description, the heterogeneous-capacity setting
// of Frisk & Koutris ("Parallel Query Processing with Heterogeneous
// Machines") layered on top of the paper's model. A nil Profile — or
// UniformProfile — reproduces the paper's uniform cluster exactly: all
// scales 1, makespan a pure function of the round structure.
//
// Three per-machine axes, each relative to the uniform baseline of 1:
//
//   - CapScale scales small machine i's per-round word capacity (its Õ(n^γ)
//     memory); placement primitives (prims.DistributeEdges, prims.Sort)
//     allot load proportionally to it;
//   - Speed scales compute: a machine with Speed ½ takes twice as long to
//     process the words it moves;
//   - Bandwidth scales the machine's link: words move at Bandwidth words
//     per time unit.
//
// Capacity changes what executions are legal (caps are enforced per
// machine); Speed and Bandwidth change only the simulated time (makespan),
// never the round structure — a speed-skewed run is bit-identical to the
// uniform run except for its clock. See DESIGN.md §6 for the makespan
// formula.
type Profile struct {
	Name string // for table/artifact labels; generators fill it in

	// Spec is the ParseProfile spec this profile was built from ("" when
	// the profile was constructed directly or by a generator). Re-parsing
	// it reproduces the profile exactly (fuzz-tested), so a profile that
	// came off a CLI flag can always be reconstructed from its artifacts.
	Spec string

	// Per small machine; nil means "all 1". Non-nil slices must have
	// exactly K entries of positive values.
	CapScale  []float64
	Speed     []float64
	Bandwidth []float64

	// Large-machine factors; 0 means 1.
	LargeSpeed     float64
	LargeBandwidth float64

	// RoundLatency is the fixed synchronization cost charged per round
	// (the barrier); 0 means 1. With all scales 1 the makespan is
	// Rounds·RoundLatency plus the traffic term.
	RoundLatency float64
}

// UniformProfile returns the explicit form of the default profile: k small
// machines, every scale 1. New(cfg) with this profile is bit-identical to
// New(cfg) with Profile nil (tested).
func UniformProfile(k int) *Profile {
	return &Profile{
		Name:      "uniform",
		CapScale:  ones(k),
		Speed:     ones(k),
		Bandwidth: ones(k),
	}
}

// ZipfProfile returns a capacity-skewed profile: machine i's CapScale is
// (i+1)^-s, clamped below at floor (machine 0 is the largest, scale 1).
// Speeds and bandwidths stay 1, so the skew is purely in how much each
// machine may hold and move per round; capacity-aware primitives must allot
// proportionally or the small-cap tail violates its caps. floor keeps every
// capacity Θ(n^γ) — the skew lives in the constant, as in Frisk's model of
// machines with capacities within constant factors. floor <= 0 defaults to
// 0.05.
func ZipfProfile(k int, s, floor float64) *Profile {
	if floor <= 0 {
		floor = 0.05
	}
	p := &Profile{
		Name:      fmt.Sprintf("zipf(s=%g)", s),
		CapScale:  make([]float64, k),
		Speed:     ones(k),
		Bandwidth: ones(k),
	}
	for i := range p.CapScale {
		scale := math.Pow(float64(i+1), -s)
		if scale < floor {
			scale = floor
		}
		p.CapScale[i] = scale
	}
	return p
}

// BimodalProfile returns a fast/slow cluster: the last ⌈slowFrac·k⌉ machines
// run at Speed and Bandwidth 1/factor, the rest at 1. Capacities stay
// uniform, so the round structure is identical to the uniform run and only
// the makespan changes (Reisizadeh et al.'s heterogeneous-cluster setting).
func BimodalProfile(k int, slowFrac, factor float64) *Profile {
	slow := int(math.Ceil(slowFrac * float64(k)))
	if slow > k {
		slow = k
	}
	p := &Profile{
		Name:      fmt.Sprintf("bimodal(slow=%g×%g)", slowFrac, factor),
		CapScale:  ones(k),
		Speed:     ones(k),
		Bandwidth: ones(k),
	}
	for i := k - slow; i < k; i++ {
		p.Speed[i] = 1 / factor
		p.Bandwidth[i] = 1 / factor
	}
	return p
}

// StragglerProfile returns a straggler-tail profile: the last `stragglers`
// machines (at least 1, at most k) compute at Speed 1/slowdown; capacities
// and bandwidths stay uniform. Round counts match the uniform run exactly;
// the makespan shows the stragglers dominating wall-clock.
func StragglerProfile(k, stragglers int, slowdown float64) *Profile {
	if stragglers < 1 {
		stragglers = 1
	}
	if stragglers > k {
		stragglers = k
	}
	p := &Profile{
		Name:      fmt.Sprintf("straggler(%d×%g)", stragglers, slowdown),
		CapScale:  ones(k),
		Speed:     ones(k),
		Bandwidth: ones(k),
	}
	for i := k - stragglers; i < k; i++ {
		p.Speed[i] = 1 / slowdown
	}
	return p
}

// ParseProfile builds a profile for a k-machine cluster from a CLI spec:
//
//	uniform
//	zipf:S[:FLOOR]          e.g. zipf:1.2, zipf:0.8:0.1
//	bimodal:SLOWFRAC:FACTOR e.g. bimodal:0.25:4
//	straggler:N:SLOWDOWN    e.g. straggler:2:8
//	custom:I=SPEED[,I=SPEED...]  e.g. custom:0=0.5,3=0.25
//
// The empty spec and "uniform" return nil (the default profile). The custom
// form names individual machines: each token sets one machine's speed on an
// otherwise uniform profile; duplicate machine indices and non-positive
// speeds are rejected with the offending token named.
func ParseProfile(spec string, k int) (*Profile, error) {
	p, err := parseProfileSpec(spec, k)
	if err != nil || p == nil {
		return nil, err
	}
	// Validate at parse time: a degenerate numeric argument (an overflowing
	// zipf exponent, a subnormal slowdown whose reciprocal is +Inf, …) is a
	// spec error and should be rejected here with the spec named, not
	// deferred until New rejects the cluster.
	if err := p.validate(k); err != nil {
		return nil, fmt.Errorf("mpc: profile %q: %w", spec, err)
	}
	p.Spec = spec
	return p, nil
}

// parseProfileSpec dispatches the spec grammar; ParseProfile wraps it with
// the parse-time validation and Spec stamping shared by every form.
func parseProfileSpec(spec string, k int) (*Profile, error) {
	if spec == "" || spec == "uniform" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if parts[0] == "custom" {
		return parseCustomProfile(spec, parts[1:], k)
	}
	args := make([]float64, 0, len(parts)-1)
	for _, a := range parts[1:] {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("mpc: profile %q: bad number %q", spec, a)
		}
		args = append(args, v)
	}
	switch parts[0] {
	case "zipf":
		switch len(args) {
		case 1:
			return ZipfProfile(k, args[0], 0), nil
		case 2:
			return ZipfProfile(k, args[0], args[1]), nil
		}
		return nil, fmt.Errorf("mpc: profile %q: want zipf:S[:FLOOR]", spec)
	case "bimodal":
		if len(args) != 2 {
			return nil, fmt.Errorf("mpc: profile %q: want bimodal:SLOWFRAC:FACTOR", spec)
		}
		// The negated comparisons also reject NaN, which would otherwise
		// flow into the slow-machine count as an undefined int conversion.
		if !(args[0] >= 0 && args[0] <= 1) || !(args[1] > 0) {
			return nil, fmt.Errorf("mpc: profile %q: need 0<=slowfrac<=1, factor>0", spec)
		}
		return BimodalProfile(k, args[0], args[1]), nil
	case "straggler":
		if len(args) != 2 || !(args[1] > 0) {
			return nil, fmt.Errorf("mpc: profile %q: want straggler:N:SLOWDOWN with slowdown>0", spec)
		}
		if !(args[0] >= 1) || args[0] != math.Trunc(args[0]) || args[0] > float64(math.MaxInt32) {
			return nil, fmt.Errorf("mpc: profile %q: straggler count must be an integer >= 1", spec)
		}
		return StragglerProfile(k, int(args[0]), args[1]), nil
	}
	return nil, fmt.Errorf("mpc: unknown profile %q (uniform, zipf:…, bimodal:…, straggler:…, custom:…)", spec)
}

// parseCustomProfile parses the custom:I=SPEED[,I=SPEED...] form: explicit
// per-machine speed overrides on a uniform base. Every reject names the
// offending token, so a long machine list stays debuggable.
func parseCustomProfile(spec string, rest []string, k int) (*Profile, error) {
	if len(rest) != 1 || rest[0] == "" {
		return nil, fmt.Errorf("mpc: profile %q: want custom:I=SPEED[,I=SPEED...]", spec)
	}
	p := &Profile{
		Name:      spec,
		CapScale:  ones(k),
		Speed:     ones(k),
		Bandwidth: ones(k),
	}
	seen := make(map[int]bool)
	for _, tok := range strings.Split(rest[0], ",") {
		idxStr, speedStr, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("mpc: profile %q: token %q, want I=SPEED", spec, tok)
		}
		i, err := strconv.Atoi(idxStr)
		if err != nil {
			return nil, fmt.Errorf("mpc: profile %q: token %q: bad machine index %q", spec, tok, idxStr)
		}
		if i < 0 || i >= k {
			return nil, fmt.Errorf("mpc: profile %q: token %q names machine %d outside the cluster's 0..%d", spec, tok, i, k-1)
		}
		if seen[i] {
			return nil, fmt.Errorf("mpc: profile %q: token %q repeats machine index %d", spec, tok, i)
		}
		seen[i] = true
		s, err := strconv.ParseFloat(speedStr, 64)
		if err != nil {
			return nil, fmt.Errorf("mpc: profile %q: token %q: bad speed %q", spec, tok, speedStr)
		}
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("mpc: profile %q: token %q: speed must be a positive finite factor, got %v", spec, tok, s)
		}
		p.Speed[i] = s
	}
	return p, nil
}

// validate checks slice lengths and positivity against the machine count.
func (p *Profile) validate(k int) error {
	check := func(name string, v []float64) error {
		if v == nil {
			return nil
		}
		if len(v) != k {
			return fmt.Errorf("mpc: profile %s has %d entries, cluster has K=%d machines", name, len(v), k)
		}
		for i, x := range v {
			if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("mpc: profile %s[%d] = %v, want a positive finite factor", name, i, x)
			}
		}
		return nil
	}
	if err := check("CapScale", p.CapScale); err != nil {
		return err
	}
	if err := check("Speed", p.Speed); err != nil {
		return err
	}
	if err := check("Bandwidth", p.Bandwidth); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LargeSpeed", p.LargeSpeed},
		{"LargeBandwidth", p.LargeBandwidth},
		{"RoundLatency", p.RoundLatency},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("mpc: profile %s = %v, want a finite factor >= 0 (0 means 1)", f.name, f.v)
		}
	}
	return nil
}

// at returns v[i], treating nil as the all-ones vector.
func at(v []float64, i int) float64 {
	if v == nil {
		return 1
	}
	return v[i]
}

// orOne maps the zero value of an optional factor to 1.
func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

func ones(k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = 1
	}
	return v
}
