package mpc

import (
	"reflect"
	"testing"
)

// FuzzParseProfile fuzzes the machine-profile spec grammar (DESIGN.md §6):
// ParseProfile must never panic, every accepted profile must already be
// valid for the cluster it was parsed for (degenerate numeric arguments —
// NaN slow fractions, overflowing zipf exponents, subnormal slowdowns whose
// reciprocals are +Inf — are spec errors, not deferred New failures), and
// the stamped Spec must round-trip to an identical profile.
func FuzzParseProfile(f *testing.F) {
	for _, seed := range []string{
		"", "uniform",
		"zipf:0.8", "zipf:1.2:0.1", "zipf:-1e308", "zipf:NaN",
		"bimodal:0.25:4", "bimodal:NaN:4", "bimodal:2:4", "bimodal:0.5:1e-320",
		"straggler:2:8", "straggler:1e300:2", "straggler:2:1e-320", "straggler:0.5:2",
		"custom:0=0.5,3=0.25", "custom:0=0.5,0=2", "custom:9=2", "custom:0=NaN",
		"bogus:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		for _, k := range []int{3, 8} {
			p, err := ParseProfile(spec, k)
			if err != nil {
				if p != nil {
					t.Fatalf("ParseProfile(%q, %d) returned a profile alongside error %v", spec, k, err)
				}
				continue
			}
			if p == nil {
				// Only the default forms may resolve to the nil profile.
				if spec != "" && spec != "uniform" {
					t.Fatalf("ParseProfile(%q, %d) silently resolved to the nil default profile", spec, k)
				}
				continue
			}
			// Accepted ⇒ valid for this cluster, right now — not at New time.
			if verr := p.validate(k); verr != nil {
				t.Fatalf("ParseProfile(%q, %d) accepted an invalid profile: %v", spec, k, verr)
			}
			if p.Spec != spec {
				t.Fatalf("ParseProfile(%q, %d) stamped Spec %q", spec, k, p.Spec)
			}
			p2, err := ParseProfile(p.Spec, k)
			if err != nil {
				t.Fatalf("ParseProfile(%q, %d) accepted, but its Spec does not re-parse: %v", spec, k, err)
			}
			if !reflect.DeepEqual(p, p2) {
				t.Fatalf("ParseProfile(%q, %d) round trip diverged:\n first %#v\nsecond %#v", spec, k, p, p2)
			}
		}
	})
}
