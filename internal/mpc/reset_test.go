package mpc

import (
	"testing"

	"hetmpc/internal/fault"
)

// TestResetStatsRebasesFaultClock is the regression test for the stale
// round-clock bug: ResetStats rewound Stats.Rounds but left the fault
// engine's round-keyed state (last checkpoints, restart-downtime windows,
// replica sizes) pointing at pre-reset round numbers — so a machine that
// had crashed before the reset silently absorbed every post-reset crash
// scheduled inside its stale downtime window, and replays were measured
// against a checkpoint round that no longer existed. After the fix, a
// reset cluster must be bit-identical to a freshly built one.
func TestResetStatsRebasesFaultClock(t *testing.T) {
	plan := &fault.Plan{
		Interval: 4,
		Crashes:  []fault.Crash{{Round: 2, Machine: 1, RestartAfter: 6}},
	}
	build := func() *Cluster {
		c := newTest(t, Config{N: 64, M: 256, Seed: 1, Faults: plan})
		state := make([][]int, c.K())
		for i := range state {
			state[i] = []int{i, i, i, i, i}
			c.SetCheckpointer(i, sliceCheckpointer{data: state, i: i})
		}
		return c
	}
	drive := func(c *Cluster, rounds int) {
		t.Helper()
		for r := 0; r < rounds; r++ {
			if _, _, err := c.Exchange(nil, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Epoch 1: the crash fires at round 2 (downtime through round 8) and a
	// checkpoint lands at round 4.
	c := build()
	drive(c, 5)
	if got := c.Stats().Crashes; got != 1 {
		t.Fatalf("epoch 1 crashes = %d, want 1", got)
	}
	epoch1 := c.Stats()

	// Epoch 2 after a reset must replay the plan from round 1 exactly as a
	// fresh cluster would. Before the fix: machine 1's stale downUntil = 8
	// swallowed the round-2 crash (Crashes stayed 0), and the stale
	// last-checkpoint/replica state mispriced any recovery that did run.
	c.ResetStats()
	drive(c, 5)
	fresh := build()
	drive(fresh, 5)
	if got, want := c.Stats(), fresh.Stats(); got != want {
		t.Fatalf("post-reset run diverged from a fresh cluster:\nreset: %+v\nfresh: %+v", got, want)
	}
	if got := c.Stats().Crashes; got != 1 {
		t.Fatalf("post-reset crashes = %d, want 1 (stale downtime window swallowed the crash)", got)
	}
	if c.Stats() != epoch1 {
		t.Fatalf("identical epochs measured differently:\nepoch1: %+v\nepoch2: %+v", epoch1, c.Stats())
	}
}

// TestBusyImbalanceEdgeCases pins the documented degenerate behavior: 0 —
// never NaN — on the k == 0 cluster (unreachable through New, which floors
// K at 2, but presentable as a zero-value Cluster) and on clusters where no
// small-machine traffic has flowed, with and without the large machine.
func TestBusyImbalanceEdgeCases(t *testing.T) {
	var zero Cluster
	if got := zero.BusyImbalance(); got != 0 {
		t.Fatalf("zero-value cluster imbalance = %v, want 0", got)
	}

	for _, noLarge := range []bool{false, true} {
		c := newTest(t, Config{N: 64, M: 256, Seed: 1, NoLarge: noLarge})
		if got := c.BusyImbalance(); got != 0 {
			t.Fatalf("noLarge=%v: idle cluster imbalance = %v, want 0", noLarge, got)
		}
		// One lopsided round: only machine 0 speaks. Imbalance is now
		// defined (max/mean over k machines) and must be at least 1.
		outs := make([][]Msg, c.K())
		outs[0] = []Msg{{To: 1, Words: 3, Data: "x"}}
		if _, _, err := c.Exchange(outs, nil); err != nil {
			t.Fatal(err)
		}
		if got := c.BusyImbalance(); got < 1 {
			t.Fatalf("noLarge=%v: imbalance after traffic = %v, want >= 1", noLarge, got)
		}
	}
}
