package mpc

import (
	"fmt"
	"math"
	"slices"

	"hetmpc/internal/sched"
	"hetmpc/internal/trace"
)

// Placement-policy state (DESIGN.md §8). The policy itself only supplies
// static per-machine placement weights (consumed by the prims through
// PlaceShare); what lives here is the simulator side: validating the policy
// against the cluster's profile, and the per-round first-copy-wins
// accounting of speculate:R, which needs the one thing a static policy
// cannot see — the actual words each machine moved this round, under any
// transient slowdown window the fault plan has open.

// specScratch is the per-round working state of the speculation scan,
// allocated once so speculation adds no steady-state allocations.
type specScratch struct {
	w    []int     // words moved this round, per small machine
	cost []float64 // effective per-word cost this round (slowCost)
	eff  []float64 // effective round time after speculation
	ord  []int     // machines with traffic, slowest shard first
	part []int     // partner candidates, fastest first
}

// applyPlacement resolves the configured policy (nil = Cap), derives the
// per-machine placement weights from the profile-derived capacity shares
// and per-word costs, and validates them.
func (c *Cluster) applyPlacement(pol sched.Policy) error {
	if pol == nil {
		pol = sched.Cap{}
	}
	c.placement = pol
	if _, isCap := pol.(sched.Cap); isCap {
		// The default policy must be bit-identical to the pre-policy
		// simulator: reuse the capacity shares (same backing floats) and the
		// legacy integer-capacity uniformity flag for the even-split path.
		c.placeShare = c.capShare
		c.uniformPlace = c.uniformCaps
		c.specR = 0
		return nil
	}
	shares, err := pol.Shares(sched.Machines{
		CapShare: slices.Clone(c.capShare),
		InvCost:  slices.Clone(c.invCost[1:]),
	})
	if err != nil {
		return fmt.Errorf("mpc: placement %s: %w", pol.Name(), err)
	}
	if len(shares) != c.k {
		return fmt.Errorf("mpc: placement %s returned %d shares, cluster has K=%d machines", pol.Name(), len(shares), c.k)
	}
	uniform := true
	for i, s := range shares {
		if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
			return fmt.Errorf("mpc: placement %s: share[%d] = %v, want a positive finite weight", pol.Name(), i, s)
		}
		if s != shares[0] {
			uniform = false
		}
	}
	c.placeShare = shares
	c.uniformPlace = uniform
	c.specR = pol.Speculation()
	if op, ok := pol.(sched.OnlinePolicy); ok {
		// The adaptive path: one estimator per cluster, seeded with the
		// declared profile, plus a slot-indexed observation scratch so the
		// per-round observe/recompute/switch adds no steady-state
		// allocations. c.placeShare is the policy's own fresh slice here
		// (never the capShare backing — Cap returned above), so the round
		// barrier may overwrite it in place.
		est, err := op.NewEstimator(sched.Machines{
			CapShare: slices.Clone(c.capShare),
			InvCost:  slices.Clone(c.invCost[1:]),
		})
		if err != nil {
			return fmt.Errorf("mpc: placement %s: %w", pol.Name(), err)
		}
		c.est = est
		if c.mx != nil {
			c.est.SetMetrics(c.mx.reg)
		}
		c.estSend = make([]int, c.k+1)
		c.estRecv = make([]int, c.k+1)
		c.estBusy = make([]float64, c.k+1)
	}
	if c.specR > c.k/2 {
		// Every victim needs a distinct partner outside the slow set. The
		// policy (and any spec tag derived from it) records the requested
		// dial; SpeculationR reports what this cluster actually runs, and
		// hetrun prints it when the two differ.
		c.specR = c.k / 2
	}
	if c.specR > 0 {
		c.spec = &specScratch{
			w:    make([]int, c.k),
			cost: make([]float64, c.k),
			eff:  make([]float64, c.k),
			ord:  make([]int, 0, c.k),
			part: make([]int, 0, c.k),
		}
	}
	return nil
}

// adaptPlacement is the snapshot-and-switch step of an adaptive placement
// policy (sched.OnlinePolicy, DESIGN.md §10), called by Exchange at the
// round barrier — after the serial makespan scan has charged the round,
// while the send/receive counters are still live. It folds the round's
// observation (words moved and busy time per slot, the same quantities a
// trace record carries, recomputed from the same counters and costs the
// scan used) into the EWMA estimator, then swaps the recomputed
// throughput-style shares into c.placeShare. Every placement decision
// inside a round therefore sees one consistent share vector, and the
// switch happens at the same serial program point of every run — adaptive
// placement is bit-identical under any GOMAXPROCS, traced or not (the
// observation is rebuilt from the counters rather than taken from the
// trace, so tracing still only observes).
//
// Rounds where no machine moved a word (and the silent barrier-only
// rounds, which never reach this hook) carry no speed information and
// leave the estimate untouched. Checkpoint barriers and crash recoveries
// are priced outside Exchange and are deliberately not observed: their
// traffic is the recovery protocol's, not the placement primitives'.
func (c *Cluster) adaptPlacement() {
	sc := c.exch
	moved := false
	for slot := 0; slot <= c.k; slot++ {
		c.estSend[slot] = sc.sendWords[slot]
		c.estRecv[slot] = sc.recvWords[slot]
		if w := sc.sendWords[slot] + sc.recvWords[slot]; w > 0 {
			c.estBusy[slot] = float64(w) * c.slowCost(slot)
			moved = true
		} else {
			c.estBusy[slot] = 0
		}
	}
	if !moved {
		return
	}
	c.est.Observe(trace.Round{
		Round:     c.stats.Rounds,
		Kind:      trace.KindExchange,
		SendWords: c.estSend,
		RecvWords: c.estRecv,
		Busy:      c.estBusy,
	})
	c.refreshPlaceShare()
}

// refreshPlaceShare recomputes the live placement shares from the adaptive
// estimator's current state (in place — the snapshot the next round's
// placement decisions will see) and re-derives the even-split fast-path
// flag the same way applyPlacement did.
func (c *Cluster) refreshPlaceShare() {
	c.est.Shares(c.placeShare)
	uniform := true
	for _, s := range c.placeShare {
		if s != c.placeShare[0] {
			uniform = false
			break
		}
	}
	c.uniformPlace = uniform
}

// speculateRoundMax prices one round under speculate:R, replacing the plain
// busiest-machine scan of Exchange. The model (DESIGN.md §8):
//
//   - each small machine's shard is the w_i words it moved this round, at
//     its effective per-word cost (profile speed/bandwidth × any transient
//     slowdown window), t_i = w_i · cost_i;
//   - the R slowest shards (largest t_i; ties to the lower index) are the
//     victims. Victim r is paired with the r-th fastest machine outside the
//     victim set (smallest cost, then least own traffic, then lower index)
//     — the idle fast machines;
//   - the partner re-executes the victim's shard after its own: its copy
//     finishes at t_p + w_v·cost_p. The copy is launched only when that
//     beats the victim (first-copy-wins is decided by the scheduler, which
//     knows the costs); a launched copy charges the mirrored words to
//     Stats.SpeculationWords and the partner's busy time, and the victim is
//     cancelled the moment the copy wins, so both sides of the pair finish
//     at the copy's time.
//
// The large machine is the paper's coordinator and is never speculated on.
// The scan runs serially in deterministic order, so speculation — like the
// rest of the makespan accounting — is bit-identical under any GOMAXPROCS.
//
// The second return value is the slot that set the round's clock (-1 when
// no machine moved a word), feeding the trace's argmax attribution; the
// float arithmetic is untouched by tracking it.
func (c *Cluster) speculateRoundMax(send, recv []int) (float64, int) {
	var roundMax float64
	argSlot := -1
	if w := send[0] + recv[0]; w > 0 {
		t := float64(w) * c.slowCost(0)
		c.busy[0] += t
		if t > roundMax {
			roundMax, argSlot = t, 0
		}
	}
	st := c.spec
	st.ord = st.ord[:0]
	for i := 0; i < c.k; i++ {
		st.w[i] = send[1+i] + recv[1+i]
		st.cost[i] = c.slowCost(1 + i)
		st.eff[i] = float64(st.w[i]) * st.cost[i]
		if st.w[i] > 0 {
			st.ord = append(st.ord, i)
		}
	}
	slices.SortFunc(st.ord, func(a, b int) int {
		if st.eff[a] != st.eff[b] {
			if st.eff[a] > st.eff[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	victims := c.specR
	if victims > len(st.ord) {
		victims = len(st.ord)
	}
	if victims > 0 {
		inSlow := func(i int) bool {
			for _, v := range st.ord[:victims] {
				if v == i {
					return true
				}
			}
			return false
		}
		st.part = st.part[:0]
		for i := 0; i < c.k; i++ {
			if !inSlow(i) {
				st.part = append(st.part, i)
			}
		}
		slices.SortFunc(st.part, func(a, b int) int {
			if st.cost[a] != st.cost[b] {
				if st.cost[a] < st.cost[b] {
					return -1
				}
				return 1
			}
			if st.eff[a] != st.eff[b] {
				if st.eff[a] < st.eff[b] {
					return -1
				}
				return 1
			}
			return a - b
		})
		for r := 0; r < victims && r < len(st.part); r++ {
			v, p := st.ord[r], st.part[r]
			copyT := float64(st.w[v]) * st.cost[p]
			alt := st.eff[p] + copyT
			if alt >= st.eff[v] {
				continue // the copy cannot win: not launched, nothing charged
			}
			c.stats.SpeculationWords += int64(st.w[v])
			st.eff[p] = alt // partner works its shard, then the copy
			st.eff[v] = alt // victim cancelled when the copy wins
		}
	}
	for i := 0; i < c.k; i++ {
		t := st.eff[i]
		if t == 0 {
			continue
		}
		c.busy[1+i] += t
		if t > roundMax {
			roundMax, argSlot = t, 1+i
		}
	}
	return roundMax, argSlot
}
