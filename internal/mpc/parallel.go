package mpc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForSmall runs fn(i) for every small machine i, distributing the calls over
// a bounded pool of goroutines (the simulator's stand-in for the machines
// computing locally in parallel between rounds). fn must only touch machine
// i's state. The first error aborts scheduling of new work and is returned;
// all started goroutines are waited for before returning.
func (c *Cluster) ForSmall(fn func(i int) error) error {
	return parallelN(c.k, fn)
}

// parallelN runs fn(0..n-1) on a bounded worker pool and returns the first
// error encountered.
func parallelN(n int, fn func(i int) error) error {
	workers := 2*runtime.GOMAXPROCS(0) + 2 //hetlint:nondet worker-pool sizing only; engine outputs are pinned bit-identical across pool widths by the GOMAXPROCS golden sweeps
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
