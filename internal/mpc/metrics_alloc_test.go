package mpc

import (
	"testing"

	"hetmpc/internal/metrics"
)

// TestNilMetricsZeroAlloc pins the nil-registry contract at the allocation
// level: every metrics hook in the engine is guarded by `if c.mx != nil`, so
// a cluster built without Config.Metrics executes the exact pre-metrics
// instruction stream. The absolute counts below are the engine's own
// steady-state allocations (the returned inbox slices) measured before the
// metrics hooks existed; a guard that slips — building a label slice or
// boxing a value before the nil check — shows up here as a count bump.
func TestNilMetricsZeroAlloc(t *testing.T) {
	c := newTest(t, Config{N: 64, M: 256, Seed: 1})
	outs := ringRound(c, 2)
	for i := 0; i < 5; i++ {
		if _, _, err := c.Exchange(outs, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Historically 4: the flat-offset delivery rework (DESIGN.md §14)
	// removed the per-delivery slot-map pool round-trip, leaving the two
	// caller-owned inbox allocations plus one pool interaction in planning.
	if got := testing.AllocsPerRun(100, func() { c.Exchange(outs, nil) }); got != 3 {
		t.Errorf("unmetered exchange allocates %v per round, want 3", got)
	}
	if got := testing.AllocsPerRun(100, func() { c.Exchange(nil, nil) }); got != 1 {
		t.Errorf("unmetered silent round allocates %v, want the pre-metrics 1", got)
	}

	// The metered silent path uses only prebound instruments, so it must
	// allocate exactly as much as the unmetered one — the cheap proof that
	// the prebinding strategy works (the metered exchange path is allowed
	// its one per-round phase-counter lookup).
	cm := newTest(t, Config{N: 64, M: 256, Seed: 1, Metrics: metrics.New()})
	for i := 0; i < 5; i++ {
		if _, _, err := cm.Exchange(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(100, func() { cm.Exchange(nil, nil) }); got != 1 {
		t.Errorf("metered silent round allocates %v, want 1 (prebound instruments only)", got)
	}
}

// BenchmarkExchangeNilMetrics / BenchmarkExchangeMetered measure the
// per-round cost of the metrics hooks: the nil case is the engine baseline,
// the metered case carries the prebound-instrument updates plus one
// phase-counter lookup per round.
func benchmarkExchange(b *testing.B, reg *metrics.Registry) {
	c, err := New(Config{N: 64, M: 256, Seed: 1, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	outs := make([][]Msg, c.K())
	for i := 0; i < c.K(); i++ {
		outs[i] = []Msg{{To: (i + 1) % c.K(), Words: 2, Data: i}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Exchange(outs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExchangeNilMetrics(b *testing.B) { benchmarkExchange(b, nil) }
func BenchmarkExchangeMetered(b *testing.B)    { benchmarkExchange(b, metrics.New()) }
