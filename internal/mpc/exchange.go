package mpc

import (
	"fmt"
	"sync"

	"hetmpc/internal/trace"
)

// The exchange engine routes one synchronous round as a batched plan instead
// of per-message appends:
//
//  1. plan (parallel over senders): stamp From, validate destinations, and
//     build per-sender destination entries — (destination, count, words) in
//     first-seen order — plus the per-message flat-offset table (entry
//     index, offset within the entry's window), so capacity accounting
//     reads running counters and delivery is a pure scatter;
//  2. layout (sequential, O(#entries + K)): assign every entry its absolute
//     start offset within the flat inbox, in the fixed sender order (large
//     machine first, then small machines 0..K-1), and check the receive
//     caps against the per-destination word totals. When the round's
//     topology — the (sender, destination, count) shape — matches the
//     previous round's, the cached offsets are reused and only the word
//     totals are re-accumulated (iterative algorithms repeat a topology for
//     many rounds, so the steady state skips the prefix sums entirely);
//  3. deliver (parallel over senders): a single offset-indexed copy loop
//     into the flat inbox — flat[entry.start+msgOff[j]] = msgs[j] — with no
//     map lookups or cursor mutation on the hot path.
//
// After delivery a serial stats pass reads the same counters to update the
// traffic totals and the simulated makespan: each machine is charged
// w_i·(1/Speed_i + 1/Bandwidth_i) for the words it moved, the round costs
// the barrier latency plus the busiest machine's charge, and capacities are
// per machine under the cluster Profile (violations name the machine and
// its cap).
//
// Because offsets are fixed in step 2 before any copying starts, the
// delivered inbox contents and order are identical under any GOMAXPROCS
// setting — delivery order remains "large machine's messages first, then
// small senders in increasing id, each sender's messages in submission
// order". All validation errors are collected and reported in that same
// deterministic order. Scratch state (plans, counters, offset tables, the
// topology cache) is pooled on the Cluster and reused across rounds, so a
// steady-state round performs exactly two allocations: the flat message
// array and the top-level inbox index, both of which are handed to the
// caller.
//
// Exchange is not safe for concurrent use; the model is synchronous rounds.

// destEntry is one (sender, destination) routing entry of the round plan.
type destEntry struct {
	slot  int // destination slot: 0 = large machine, 1+i = small machine i
	count int // messages from this sender to this destination
	words int // words from this sender to this destination
	start int // layout phase: offset of the entry's first message — relative
	// to the destination inbox while counting, absolute in the flat
	// array once the slot bases are folded in
}

// senderPlan is one sender's routing plan for the round.
type senderPlan struct {
	from    int
	msgs    []Msg
	words   int // total words sent (send-cap accounting)
	entries []destEntry
	entIdx  []int32 // per message: index into entries
	msgOff  []int32 // per message: offset within its entry's inbox window
	err     error   // first validation/cap error of this sender
}

// topoEnt is one cached routing entry of the previous round's topology:
// the (slot, count) pair it must match and the absolute start offset it
// grants on a hit.
type topoEnt struct {
	slot  int
	count int
	start int
}

// topoPlan is one cached sender of the previous round's topology.
type topoPlan struct {
	from     int
	nEntries int
}

// exchScratch holds the pooled per-round routing state.
type exchScratch struct {
	plans     []senderPlan
	recvCount []int // per destination slot, messages received
	recvWords []int // per destination slot, words received
	sendWords []int // per sender slot, words sent (makespan accounting)
	slotBase  []int // per destination slot, base offset in the flat inbox
	slotPool  sync.Pool

	// Flat-offset topology cache: the previous round's routing shape and
	// its computed offsets. Verified against the live plans every round
	// (an exact compare, so staleness is impossible) and rebuilt on miss.
	topoValid bool
	topoPlans []topoPlan
	topoEnts  []topoEnt
	topoCount []int // recvCount snapshot of the cached topology
	topoBase  []int // slotBase snapshot of the cached topology
}

func newExchScratch(k int) *exchScratch {
	sc := &exchScratch{
		recvCount: make([]int, k+1),
		recvWords: make([]int, k+1),
		sendWords: make([]int, k+1),
		slotBase:  make([]int, k+1),
		topoCount: make([]int, k+1),
		topoBase:  make([]int, k+1),
	}
	sc.slotPool.New = func() any {
		s := make([]int32, k+1)
		return &s
	}
	return sc
}

// release returns the traffic-proportional scratch to the garbage collector
// and invalidates the topology cache. ResetStats calls it so a reused
// cluster does not leak the previous run's high-water footprint, and so a
// reset cluster's steady-state allocation profile matches a fresh one.
// The fixed-size per-slot counters (K+1 ints) are retained.
func (sc *exchScratch) release() {
	sc.plans = nil
	sc.topoValid = false
	sc.topoPlans, sc.topoEnts = nil, nil
}

// destSlot maps a message destination to its slot, validating it.
func (c *Cluster) destSlot(from, to int) (int, error) {
	if to == Large {
		if !c.HasLarge() {
			return 0, fmt.Errorf("mpc: machine %d sent to the large machine but the cluster has none", from)
		}
		return 0, nil
	}
	if to < 0 || to >= c.k {
		return 0, fmt.Errorf("mpc: machine %d sent to invalid machine %d", from, to)
	}
	return 1 + to, nil
}

// Exchange executes one synchronous communication round. outs[i] holds the
// messages sent by small machine i (outs may be nil or shorter than K for
// rounds where few machines speak); outLarge holds the large machine's
// messages. It returns the delivered inboxes. Send and receive volumes are
// checked against the per-machine capacities; violations wrap ErrCapacity
// and deliver nothing.
func (c *Cluster) Exchange(outs [][]Msg, outLarge []Msg) (ins [][]Msg, inLarge []Msg, err error) {
	if c.stats.Rounds >= c.cfg.MaxRounds {
		return nil, nil, fmt.Errorf("%w: %d rounds", ErrRounds, c.stats.Rounds)
	}
	if c.wn != nil && c.wn.broken != nil {
		// A transport that failed mid-round stays failed: every later round
		// reports the original link failure instead of limping on a cluster
		// whose machines disagree about what was delivered.
		return nil, nil, c.wn.broken
	}
	c.stats.Rounds++
	c.roundWire = 0
	ins = make([][]Msg, c.k)

	// Assemble the sender list in the deterministic delivery order. Plans
	// are recycled in place so their entry slices keep their capacity.
	sc := c.exch
	plans := sc.plans[:0]
	totalMsgs := 0
	addPlan := func(from int, msgs []Msg) {
		if len(plans) < cap(plans) {
			plans = plans[:len(plans)+1]
		} else {
			plans = append(plans, senderPlan{})
		}
		p := &plans[len(plans)-1]
		p.from, p.msgs = from, msgs
		totalMsgs += len(msgs)
	}
	if len(outLarge) > 0 {
		if !c.HasLarge() {
			return nil, nil, fmt.Errorf("mpc: outLarge non-empty but the cluster has no large machine: %w", ErrNeedsLarge)
		}
		addPlan(Large, outLarge)
	}
	// outs may be shorter than K (machines that do not speak), but an entry
	// at or beyond K is a sender the cluster does not have: refusing it
	// loudly beats the silent drop it used to be.
	for i := c.k; i < len(outs); i++ {
		if len(outs[i]) > 0 {
			return nil, nil, fmt.Errorf("%w: outs[%d] holds %d messages but the cluster has K=%d small machines",
				ErrUnknownSender, i, len(outs[i]), c.k)
		}
	}
	for i := 0; i < len(outs) && i < c.k; i++ {
		if len(outs[i]) == 0 {
			continue
		}
		addPlan(i, outs[i])
	}
	sc.plans = plans
	if len(plans) == 0 {
		c.stats.Makespan += c.latency // a silent round still pays the barrier
		if c.tr != nil {
			// The silent round advanced the clock and paid the barrier, so
			// it gets a record like any other — conservation over the trace
			// must reproduce the makespan exactly.
			c.tr.Add(trace.Round{
				Round:    c.stats.Rounds,
				Phase:    c.tr.Phase(),
				Kind:     trace.KindExchange,
				Latency:  c.latency,
				Makespan: c.latency,
				Argmax:   trace.None,
				Victim:   trace.None,
			})
		}
		if c.mx != nil {
			c.observeSilentRound()
		}
		c.postRoundFaults()
		return ins, nil, nil
	}
	// Goroutine fan-out only pays for itself on heavy rounds; light rounds
	// run the same phases inline (the result is identical either way — the
	// merge order is fixed by the offsets, not the schedule).
	serial := totalMsgs < serialRoundThreshold
	defer func() {
		// Reset only the touched counters, so the reset cost tracks traffic.
		for s := range plans {
			for _, e := range plans[s].entries {
				sc.recvCount[e.slot] = 0
				sc.recvWords[e.slot] = 0
			}
			plans[s].entries = plans[s].entries[:0]
			plans[s].msgs = nil
			plans[s].err = nil
		}
	}()

	// Phase 1: stamp, validate and count, in parallel over senders. Errors
	// are recorded per sender and reported in sender order below, so the
	// surfaced error does not depend on goroutine scheduling.
	if serial {
		slotOf := sc.getSlots()
		for s := range plans {
			c.planSender(&plans[s], slotOf)
		}
		sc.putSlots(slotOf)
	} else {
		_ = parallelN(len(plans), func(s int) error {
			slotOf := sc.getSlots()
			c.planSender(&plans[s], slotOf)
			sc.putSlots(slotOf)
			return nil
		})
	}
	for s := range plans {
		if plans[s].err != nil {
			return nil, nil, plans[s].err
		}
	}

	// Phase 2: offsets and receive-cap accounting, in sender order. On a
	// topology hit the cached absolute offsets are restored and only the
	// word totals are accumulated; on a miss the offsets are computed from
	// scratch (relative here, absolutized with the slot bases below).
	hit := sc.topoMatch(plans)
	if hit {
		copy(sc.recvCount, sc.topoCount)
		copy(sc.slotBase, sc.topoBase)
		ti := 0
		for s := range plans {
			p := &plans[s]
			for ei := range p.entries {
				e := &p.entries[ei]
				e.start = sc.topoEnts[ti].start
				ti++
				sc.recvWords[e.slot] += e.words
			}
		}
	} else {
		for s := range plans {
			p := &plans[s]
			for ei := range p.entries {
				e := &p.entries[ei]
				e.start = sc.recvCount[e.slot]
				sc.recvCount[e.slot] += e.count
				sc.recvWords[e.slot] += e.words
			}
		}
	}
	if sc.recvWords[0] > c.largeCap {
		return nil, nil, fmt.Errorf("%w: large machine received %d > cap %d words in round %d",
			ErrCapacity, sc.recvWords[0], c.largeCap, c.stats.Rounds)
	}
	for i := 0; i < c.k; i++ {
		if sc.recvWords[1+i] > c.smallCaps[i] {
			return nil, nil, fmt.Errorf("%w: machine %d received %d > cap %d words in round %d",
				ErrCapacity, i, sc.recvWords[1+i], c.smallCaps[i], c.stats.Rounds)
		}
	}

	// Phase 3: carve the flat inbox array into per-destination windows. The
	// three-index slices keep caller-side appends from clobbering neighbors.
	if !hit {
		base := 0
		for slot := 0; slot <= c.k; slot++ {
			sc.slotBase[slot] = base
			base += sc.recvCount[slot]
		}
	}
	flat := make([]Msg, totalMsgs)
	if n := sc.recvCount[0]; n > 0 {
		inLarge = flat[0:n:n]
	}
	for i := 0; i < c.k; i++ {
		if n := sc.recvCount[1+i]; n > 0 {
			b := sc.slotBase[1+i]
			ins[i] = flat[b : b+n : b+n]
		}
	}
	if !hit {
		sc.rebuildTopo(plans, c.k)
	}

	// Phase 4: deliver at the precomputed offsets. Under a transport the
	// messages are framed through the per-machine links (wirenet.go) in the
	// same deterministic order the offsets were assigned in, so the inbox
	// is bit-identical to the shared-memory copy; either way the result is
	// schedule-independent.
	if c.wn != nil && c.wn.active() {
		if err := c.wn.open(c.k + 1); err != nil {
			return nil, nil, err
		}
	}
	if c.wn != nil && c.wn.active() {
		wb, werr := c.deliverWire(flat)
		c.roundWire = wb
		c.stats.WireBytes += wb
		if werr != nil {
			return nil, nil, werr
		}
	} else if serial {
		for s := range plans {
			sc.scatterSender(&plans[s], flat)
		}
	} else {
		_ = parallelN(len(plans), func(s int) error {
			sc.scatterSender(&plans[s], flat)
			return nil
		})
	}

	// Stats, from the running counters (no message re-walk).
	maxRecv := sc.recvWords[0]
	var totalWords int64
	for s := range plans {
		p := &plans[s]
		sc.sendWords[senderSlot(p.from)] = p.words
		totalWords += int64(p.words)
		if p.words > c.stats.MaxSendWords {
			c.stats.MaxSendWords = p.words
		}
		for _, e := range p.entries {
			if w := sc.recvWords[e.slot]; w > maxRecv {
				maxRecv = w
			}
		}
	}
	c.stats.Messages += int64(totalMsgs)
	c.stats.TotalWords += totalWords
	if maxRecv > c.stats.MaxRecvWords {
		c.stats.MaxRecvWords = maxRecv
	}

	// Makespan: the round takes the barrier latency plus the busiest
	// machine's time, w_i · (1/Speed_i + 1/Bandwidth_i) over the words it
	// moved (scaled by any transient slowdown window of the fault plan).
	// The scan runs serially in slot order, so the float accumulation is
	// deterministic under any GOMAXPROCS. Under a speculate:R placement
	// policy the scan additionally mirrors the R slowest shards onto idle
	// fast machines, first-copy-wins (placement.go, DESIGN.md §8); the
	// default path below is untouched, so cap and throughput runs are
	// bit-identical to the pre-policy accounting.
	var roundMax float64
	argSlot := -1 // slot that set roundMax; -1 = none (all-zero words)
	specBefore := c.stats.SpeculationWords
	if c.specR > 0 {
		roundMax, argSlot = c.speculateRoundMax(sc.sendWords, sc.recvWords)
	} else {
		for slot := 0; slot <= c.k; slot++ {
			w := sc.sendWords[slot] + sc.recvWords[slot]
			if w == 0 {
				continue
			}
			t := float64(w) * c.slowCost(slot)
			c.busy[slot] += t
			if t > roundMax {
				roundMax, argSlot = t, slot
			}
		}
	}
	c.stats.Makespan += c.latency + roundMax
	if c.tr != nil {
		// Record before the send counters are zeroed below; the receive
		// counters stay valid until the deferred reset.
		c.recordExchange(totalMsgs, totalWords, roundMax, argSlot, c.stats.SpeculationWords-specBefore)
	}
	if c.mx != nil {
		// Same barrier point, same live counters: the published metrics
		// reconcile exactly with Stats and the trace record.
		c.observeExchange(totalMsgs, totalWords, roundMax, c.stats.SpeculationWords-specBefore)
	}
	if c.est != nil {
		// Adaptive placement's snapshot-and-switch: observe the round from
		// the same live counters, recompute the shares, swap them in at the
		// barrier. Serial, so still deterministic under any GOMAXPROCS.
		c.adaptPlacement()
	}
	for s := range plans {
		sc.sendWords[senderSlot(plans[s].from)] = 0
	}
	c.postRoundFaults()
	return ins, inLarge, nil
}

// senderSlot maps a (validated) machine id to its slot index.
func senderSlot(from int) int {
	if from == Large {
		return 0
	}
	return 1 + from
}

// serialRoundThreshold is the message count below which the routing phases
// run inline: goroutine fan-out costs more than it saves on light rounds.
const serialRoundThreshold = 2048

// topoMatch reports whether the live plans have exactly the cached
// topology: the same senders, in the same order, with the same
// (destination, count) entries. A pure compare — no side effects — so a
// mid-walk mismatch leaves nothing to undo. Word totals are deliberately
// not compared: they vary round to round without moving any offset.
func (sc *exchScratch) topoMatch(plans []senderPlan) bool {
	if !sc.topoValid || len(plans) != len(sc.topoPlans) {
		return false
	}
	ti := 0
	for s := range plans {
		p := &plans[s]
		tp := &sc.topoPlans[s]
		if tp.from != p.from || tp.nEntries != len(p.entries) {
			return false
		}
		for ei := range p.entries {
			te := &sc.topoEnts[ti+ei]
			if te.slot != p.entries[ei].slot || te.count != p.entries[ei].count {
				return false
			}
		}
		ti += len(p.entries)
	}
	return true
}

// rebuildTopo absolutizes the entry offsets (folding the slot bases in, so
// delivery indexes the flat array directly) and snapshots the round's
// topology for reuse: shape, offsets, and the per-slot count/base arrays.
func (sc *exchScratch) rebuildTopo(plans []senderPlan, k int) {
	sc.topoPlans = sc.topoPlans[:0]
	sc.topoEnts = sc.topoEnts[:0]
	for s := range plans {
		p := &plans[s]
		sc.topoPlans = append(sc.topoPlans, topoPlan{from: p.from, nEntries: len(p.entries)})
		for ei := range p.entries {
			e := &p.entries[ei]
			e.start += sc.slotBase[e.slot]
			sc.topoEnts = append(sc.topoEnts, topoEnt{slot: e.slot, count: e.count, start: e.start})
		}
	}
	copy(sc.topoCount, sc.recvCount[:k+1])
	copy(sc.topoBase, sc.slotBase[:k+1])
	sc.topoValid = true
}

// planSender stamps From, validates destinations, builds the sender's
// destination entries and per-message offset table, and checks its send
// cap. slotOf is a zeroed scratch map (destination slot → 1+entry index)
// and is re-zeroed before returning.
func (c *Cluster) planSender(p *senderPlan, slotOf []int32) {
	n := len(p.msgs)
	if cap(p.entIdx) < n {
		p.entIdx = make([]int32, n)
		p.msgOff = make([]int32, n)
	}
	p.entIdx = p.entIdx[:n]
	p.msgOff = p.msgOff[:n]
	words := 0
	for j := range p.msgs {
		m := &p.msgs[j]
		m.From = p.from
		words += m.Words
		slot, derr := c.destSlot(p.from, m.To)
		if derr != nil {
			if p.err == nil {
				p.err = derr
			}
			p.entIdx[j], p.msgOff[j] = 0, 0
			continue
		}
		e := slotOf[slot]
		if e == 0 {
			p.entries = append(p.entries, destEntry{slot: slot})
			e = int32(len(p.entries))
			slotOf[slot] = e
		}
		ent := &p.entries[e-1]
		p.entIdx[j] = e - 1
		p.msgOff[j] = int32(ent.count)
		ent.count++
		ent.words += m.Words
	}
	p.words = words
	if p.err == nil && words > c.capOf(p.from) {
		p.err = fmt.Errorf("%w: machine %d sent %d > cap %d words in round %d",
			ErrCapacity, p.from, words, c.capOf(p.from), c.stats.Rounds)
	}
	for _, ent := range p.entries {
		slotOf[ent.slot] = 0
	}
}

// scatterSender copies one sender's messages into the flat inbox array at
// the offsets fixed during planning and layout: a single offset-indexed
// copy loop, unrolled 4-wide. No map lookups and no cursor mutation — the
// entry starts are absolute and the per-message offsets were assigned in
// the plan phase — so the loop body is pure loads and stores.
//
//hetlint:zeroalloc deliver inner loop; pinned by TestNilMetricsZeroAlloc and BenchmarkExchangeNilMetrics
func (sc *exchScratch) scatterSender(p *senderPlan, flat []Msg) {
	msgs := p.msgs
	ents := p.entries
	entIdx := p.entIdx[:len(msgs)]
	msgOff := p.msgOff[:len(msgs)]
	j := 0
	for ; j+4 <= len(msgs); j += 4 {
		e0, e1, e2, e3 := entIdx[j], entIdx[j+1], entIdx[j+2], entIdx[j+3]
		flat[ents[e0].start+int(msgOff[j])] = msgs[j]
		flat[ents[e1].start+int(msgOff[j+1])] = msgs[j+1]
		flat[ents[e2].start+int(msgOff[j+2])] = msgs[j+2]
		flat[ents[e3].start+int(msgOff[j+3])] = msgs[j+3]
	}
	for ; j < len(msgs); j++ {
		flat[ents[entIdx[j]].start+int(msgOff[j])] = msgs[j]
	}
}

// getSlots hands out a zeroed per-worker destination→entry map.
func (sc *exchScratch) getSlots() []int32 { return *sc.slotPool.Get().(*[]int32) }

// putSlots returns a slot map to the pool; the caller must have re-zeroed
// the entries it touched.
func (sc *exchScratch) putSlots(s []int32) { sc.slotPool.Put(&s) }
