package mpc

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestProfileGenerators(t *testing.T) {
	const k = 16
	u := UniformProfile(k)
	for i := 0; i < k; i++ {
		if u.CapScale[i] != 1 || u.Speed[i] != 1 || u.Bandwidth[i] != 1 {
			t.Fatalf("uniform profile not all ones at %d", i)
		}
	}
	z := ZipfProfile(k, 1, 0.1)
	if z.CapScale[0] != 1 {
		t.Fatalf("zipf machine 0 scale %v, want 1", z.CapScale[0])
	}
	for i := 1; i < k; i++ {
		if z.CapScale[i] > z.CapScale[i-1] {
			t.Fatalf("zipf scales not non-increasing at %d", i)
		}
		if z.CapScale[i] < 0.1 {
			t.Fatalf("zipf floor violated at %d: %v", i, z.CapScale[i])
		}
	}
	b := BimodalProfile(k, 0.25, 4)
	slow := 0
	for i := 0; i < k; i++ {
		if b.Speed[i] != 1 {
			slow++
			if b.Speed[i] != 0.25 || b.Bandwidth[i] != 0.25 {
				t.Fatalf("bimodal slow machine %d: speed %v bw %v", i, b.Speed[i], b.Bandwidth[i])
			}
		}
	}
	if slow != 4 {
		t.Fatalf("bimodal slow count %d, want 4", slow)
	}
	s := StragglerProfile(k, 2, 8)
	for i := 0; i < k; i++ {
		want := 1.0
		if i >= k-2 {
			want = 0.125
		}
		if s.Speed[i] != want || s.Bandwidth[i] != 1 || s.CapScale[i] != 1 {
			t.Fatalf("straggler machine %d: %v/%v/%v", i, s.Speed[i], s.Bandwidth[i], s.CapScale[i])
		}
	}
}

func TestParseProfile(t *testing.T) {
	if p, err := ParseProfile("", 8); err != nil || p != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	if p, err := ParseProfile("uniform", 8); err != nil || p != nil {
		t.Fatalf("uniform spec: %v %v", p, err)
	}
	p, err := ParseProfile("zipf:1.2", 8)
	if err != nil || len(p.CapScale) != 8 {
		t.Fatalf("zipf spec: %+v %v", p, err)
	}
	if p, err = ParseProfile("straggler:2:8", 8); err != nil || p.Speed[7] != 0.125 {
		t.Fatalf("straggler spec: %+v %v", p, err)
	}
	if p, err = ParseProfile("bimodal:0.5:4", 8); err != nil || p.Speed[7] != 0.25 {
		t.Fatalf("bimodal spec: %+v %v", p, err)
	}
	for _, bad := range []string{"nope", "zipf", "zipf:x", "bimodal:2:4", "straggler:1:0", "bimodal:0.5",
		"straggler:0:8", "straggler:2.9:8"} {
		if _, err := ParseProfile(bad, 8); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestParseProfileCustom pins the custom:I=SPEED form: per-machine speed
// overrides, with duplicates and bad speeds rejected by messages that name
// the offending token.
func TestParseProfileCustom(t *testing.T) {
	p, err := ParseProfile("custom:0=0.5,3=0.25", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 1, 0.25, 1, 1, 1, 1}
	for i, s := range p.Speed {
		if s != want[i] {
			t.Fatalf("Speed[%d] = %v, want %v", i, s, want[i])
		}
	}
	for i := range p.CapScale {
		if p.CapScale[i] != 1 || p.Bandwidth[i] != 1 {
			t.Fatalf("custom touched non-speed axes at machine %d", i)
		}
	}

	rejects := []struct {
		spec string
		want string // substring the error must contain (the offending token)
	}{
		{"custom", "want custom:"},
		{"custom:", "want custom:"},
		{"custom:0", `token "0"`},
		{"custom:x=1", `token "x=1"`},
		{"custom:8=1", `token "8=1"`},             // index out of range for k=8
		{"custom:-1=1", `token "-1=1"`},           // negative machine index
		{"custom:2=0.5,2=0.25", `token "2=0.25"`}, // duplicate machine index
		{"custom:2=0.5,2=0.25", "repeats machine index 2"},
		{"custom:1=-0.5", `token "1=-0.5"`}, // negative speed
		{"custom:1=-0.5", "positive"},
		{"custom:1=0", `token "1=0"`}, // zero speed
		{"custom:1=zz", `token "1=zz"`},
		{"custom:1=NaN", "positive finite"},
		{"custom:1=+Inf", "positive finite"},
	}
	for _, tc := range rejects {
		_, err := ParseProfile(tc.spec, 8)
		if err == nil {
			t.Fatalf("spec %q accepted", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("spec %q: error %q does not name %q", tc.spec, err, tc.want)
		}
	}

	// A parsed custom profile must survive cluster construction and slow
	// only the named machines' makespan contribution.
	cfg := Config{N: 64, M: 256, Seed: 1}
	cfg.Profile, err = ParseProfile("custom:1=0.5", cfg.DeriveK())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidation(t *testing.T) {
	base := Config{N: 64, M: 256, Seed: 1}
	k := base.DeriveK()
	short := base
	short.Profile = &Profile{CapScale: []float64{1, 1}}
	if k != 2 {
		if _, err := New(short); err == nil {
			t.Fatal("short CapScale accepted")
		}
	}
	neg := base
	neg.Profile = &Profile{Speed: make([]float64, k)} // zeros are invalid speeds
	if _, err := New(neg); err == nil {
		t.Fatal("zero speeds accepted")
	}
	inf := base
	inf.Profile = UniformProfile(k)
	inf.Profile.Bandwidth[0] = math.Inf(1)
	if _, err := New(inf); err == nil {
		t.Fatal("infinite bandwidth accepted")
	}
	nan := base
	nan.Profile = &Profile{RoundLatency: math.NaN()}
	if _, err := New(nan); err == nil {
		t.Fatal("NaN round latency accepted")
	}
	lspd := base
	lspd.Profile = &Profile{LargeSpeed: math.Inf(1)}
	if _, err := New(lspd); err == nil {
		t.Fatal("infinite large speed accepted")
	}
}

// TestPerMachineCaps: a capacity-skewed profile yields per-machine caps, and
// violations name the offending machine and its own cap.
func TestPerMachineCaps(t *testing.T) {
	cfg := Config{N: 64, M: 256, Seed: 1}
	k := cfg.DeriveK()
	p := UniformProfile(k)
	p.CapScale[2] = 0.25
	cfg.Profile = p
	c := newTest(t, cfg)

	if c.SmallCapOf(2) >= c.SmallCapOf(1) {
		t.Fatalf("machine 2 cap %d not reduced vs %d", c.SmallCapOf(2), c.SmallCapOf(1))
	}
	if c.MinSmallCap() != c.SmallCapOf(2) {
		t.Fatalf("MinSmallCap %d, want machine 2's %d", c.MinSmallCap(), c.SmallCapOf(2))
	}
	if c.UniformCaps() {
		t.Fatal("UniformCaps true under skewed profile")
	}

	// Receive-side violation on machine 2 only: the same volume is fine
	// for a full-cap machine.
	over := c.SmallCapOf(2) + 1
	outs := make([][]Msg, k)
	outs[0] = []Msg{{To: 1, Words: over}}
	if _, _, err := c.Exchange(outs, nil); err != nil {
		t.Fatalf("full-cap machine rejected %d words: %v", over, err)
	}
	outs = make([][]Msg, k)
	outs[0] = []Msg{{To: 2, Words: over}}
	_, _, err := c.Exchange(outs, nil)
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
	for _, want := range []string{"machine 2", "cap"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}

	// Send-side violation reports machine 2's own (reduced) cap.
	outs = make([][]Msg, k)
	outs[2] = []Msg{{To: 0, Words: over}}
	_, _, err = c.Exchange(outs, nil)
	if !errors.Is(err, ErrCapacity) || !strings.Contains(err.Error(), "machine 2 sent") {
		t.Fatalf("send violation: %v", err)
	}
}

// TestMakespanAccounting pins the DESIGN.md §6 formula on a hand-checked
// round: latency + max_i w_i·(1/speed_i + 1/bw_i).
func TestMakespanAccounting(t *testing.T) {
	cfg := Config{N: 64, M: 256, Seed: 1}
	k := cfg.DeriveK()
	p := UniformProfile(k)
	p.Speed[1] = 0.5 // machine 1 computes at half speed
	cfg.Profile = p
	c := newTest(t, cfg)

	outs := make([][]Msg, k)
	outs[0] = []Msg{{To: 1, Words: 10}}
	if _, _, err := c.Exchange(outs, nil); err != nil {
		t.Fatal(err)
	}
	// Machine 0 moved 10 words at unit cost: t = 10·(1+1) = 20.
	// Machine 1 moved 10 words at speed ½:  t = 10·(2+1) = 30.
	want := 1.0 + 30.0
	if got := c.Stats().Makespan; got != want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
	if c.BusyTime(0) != 20 || c.BusyTime(1) != 30 {
		t.Fatalf("busy times %v/%v, want 20/30", c.BusyTime(0), c.BusyTime(1))
	}

	// A silent round still pays the barrier latency.
	if _, _, err := c.Exchange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Makespan; got != want+1 {
		t.Fatalf("makespan after empty round %v, want %v", got, want+1)
	}

	c.ResetStats()
	if c.Stats().Makespan != 0 || c.BusyTime(1) != 0 {
		t.Fatal("ResetStats did not clear makespan/busy state")
	}
}

// TestUniformProfileBitIdentical: an explicit all-ones profile produces the
// same caps, stats and makespan as the nil default.
func TestUniformProfileBitIdentical(t *testing.T) {
	run := func(p *Profile) (Stats, int) {
		cfg := Config{N: 1024, M: 8192, Seed: 5, Profile: p}
		c := newTest(t, cfg)
		outs, outLarge := buildHeavyRound(c)
		if _, _, err := c.Exchange(outs, outLarge); err != nil {
			t.Fatal(err)
		}
		return c.Stats(), c.SmallCapOf(0)
	}
	stNil, capNil := run(nil)
	cfg := Config{N: 1024, M: 8192}
	stU, capU := run(UniformProfile(cfg.DeriveK()))
	if stNil != stU || capNil != capU {
		t.Fatalf("explicit uniform differs: %+v/%d vs %+v/%d", stNil, capNil, stU, capU)
	}
	if stNil.Makespan <= 0 {
		t.Fatal("makespan not accrued")
	}
}
