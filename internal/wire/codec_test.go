package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"reflect"
	"testing"
)

// sampleMessages covers every payload kind, including the empty-slice and
// extreme-value edges of each.
func sampleMessages() []Message {
	return []Message{
		{From: -1, To: 0, Words: 0, Kind: KindNil},
		{From: 0, To: -1, Words: 1, Kind: KindInt64, I64: -7},
		{From: 3, To: 4, Words: 2, Kind: KindInt64, I64: 1<<63 - 1},
		{From: 1, To: 2, Words: 1, Kind: KindUint64, U64: 1 << 63},
		{From: 2, To: 0, Words: 3, Kind: KindInt64Slice, I64s: []int64{1, -2, 3}},
		{From: 2, To: 1, Words: 0, Kind: KindInt64Slice, I64s: []int64{}},
		{From: 5, To: 6, Words: 4, Kind: KindUint64Slice, U64s: []uint64{0, ^uint64(0)}},
		{From: 6, To: 5, Words: 2, Kind: KindBytes, Bytes: []byte("frame me")},
		{From: 7, To: 8, Words: 1, Kind: KindBytes, Bytes: []byte{}},
		{From: -1, To: 9, Words: 9, Kind: KindRef, Ref: 41},
	}
}

// payloadEqual compares the kind-selected payload of two messages (the
// other union fields are scratch and intentionally not compared).
func payloadEqual(a, b *Message) bool {
	if a.Kind != b.Kind || a.From != b.From || a.To != b.To || a.Words != b.Words {
		return false
	}
	switch a.Kind {
	case KindInt64:
		return a.I64 == b.I64
	case KindUint64:
		return a.U64 == b.U64
	case KindInt64Slice:
		return len(a.I64s) == len(b.I64s) && (len(a.I64s) == 0 || reflect.DeepEqual(a.I64s, b.I64s))
	case KindUint64Slice:
		return len(a.U64s) == len(b.U64s) && (len(a.U64s) == 0 || reflect.DeepEqual(a.U64s, b.U64s))
	case KindBytes:
		return bytes.Equal(a.Bytes, b.Bytes)
	case KindRef:
		return a.Ref == b.Ref
	}
	return true
}

// TestMessageRoundTrip checks encode→decode identity for every kind, on
// both the byte-slice and the streaming decoder, and that re-encoding the
// decoded message reproduces the original bytes (canonical encoding).
func TestMessageRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		buf, err := AppendMessage(nil, &m)
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		var got Message
		rest, err := DecodeMessage(buf, &got)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("msg %d: %d undecoded bytes", i, len(rest))
		}
		if !payloadEqual(&m, &got) {
			t.Errorf("msg %d: decode mismatch: %+v vs %+v", i, m, got)
		}
		re, err := AppendMessage(nil, &got)
		if err != nil || !bytes.Equal(re, buf) {
			t.Errorf("msg %d: re-encode not canonical (err %v)", i, err)
		}

		var dec Decoder
		var sgot Message
		if err := dec.ReadMessage(bytes.NewReader(buf), &sgot); err != nil {
			t.Fatalf("msg %d: stream decode: %v", i, err)
		}
		if !payloadEqual(&m, &sgot) {
			t.Errorf("msg %d: stream decode mismatch: %+v vs %+v", i, m, sgot)
		}
	}
}

// TestFromPayloadRoundTrip checks the engine-payload classification:
// wire-native values survive FromPayload→Payload unchanged, non-native
// values are flagged for the by-ref path.
func TestFromPayloadRoundTrip(t *testing.T) {
	native := []any{nil, int64(-3), uint64(9), []int64{1, 2}, []uint64{3}, []byte("x")}
	var m Message
	for i, p := range native {
		if !m.FromPayload(p) {
			t.Errorf("payload %d (%T) should be wire-native", i, p)
		}
		if !reflect.DeepEqual(m.Payload(), p) {
			t.Errorf("payload %d: round-trip %#v -> %#v", i, p, m.Payload())
		}
	}
	type local struct{ X int }
	for _, p := range []any{local{1}, "a string", 7, []int{1}} {
		if m.FromPayload(p) {
			t.Errorf("payload %T wrongly classified wire-native", p)
		}
		if m.Kind != KindRef {
			t.Errorf("payload %T: kind %d, want KindRef", p, m.Kind)
		}
	}
}

// TestDecodeTypedErrors drives malformed frames through both decoders:
// every failure must be one of the typed codec errors, never a panic and
// never a silent success.
func TestDecodeTypedErrors(t *testing.T) {
	good, err := AppendMessage(nil, &Message{From: 1, To: 2, Words: 3, Kind: KindInt64Slice, I64s: []int64{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int, b byte) []byte {
		c := bytes.Clone(good)
		c[off] = b
		return c
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"cut header", good[:HeaderSize-1], ErrTruncated},
		{"cut payload", good[:HeaderSize+3], ErrTruncated},
		{"bad magic", corrupt(0, 0x00), ErrCorrupt},
		{"bad version", corrupt(2, 9), ErrCorrupt},
		{"bad kind", corrupt(3, byte(kindCount)), ErrCorrupt},
		{"plen vs kind", corrupt(16, 7), ErrCorrupt}, // slice payload not /8
		{"huge plen", corrupt(19, 0xFF), ErrTooLarge},
	}
	for _, tc := range cases {
		var m Message
		if _, err := DecodeMessage(tc.in, &m); !errors.Is(err, tc.want) {
			t.Errorf("DecodeMessage(%s): err %v, want %v", tc.name, err, tc.want)
		}
		var dec Decoder
		if err := dec.ReadMessage(bytes.NewReader(tc.in), &m); !errors.Is(err, tc.want) {
			// An empty stream is a clean EOF at a frame boundary.
			if !(tc.name == "empty" && err == io.EOF) {
				t.Errorf("ReadMessage(%s): err %v, want %v", tc.name, err, tc.want)
			}
		}
	}
}

// chunkReader yields at most its per-call quota, cycling through chunks —
// the adversarial io.Reader for framing tests: 1-byte dribbles, prime-sized
// chunks, jumbo reads.
type chunkReader struct {
	r     io.Reader
	sizes []int
	i     int
	reads int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	n := c.sizes[c.i%len(c.sizes)]
	c.i++
	c.reads++
	if n > len(p) {
		n = len(p)
	}
	return c.r.Read(p[:n])
}

// randomMessages builds n deterministic pseudo-random messages across all
// wire-native kinds.
func randomMessages(n int, seed uint64) []Message {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	msgs := make([]Message, n)
	for i := range msgs {
		m := &msgs[i]
		m.From = int32(rng.IntN(64)) - 1
		m.To = int32(rng.IntN(64)) - 1
		m.Words = uint32(rng.IntN(1 << 16))
		switch rng.IntN(7) {
		case 0:
			m.Kind = KindNil
		case 1:
			m.Kind, m.I64 = KindInt64, int64(rng.Uint64())
		case 2:
			m.Kind, m.U64 = KindUint64, rng.Uint64()
		case 3:
			m.Kind = KindInt64Slice
			m.I64s = make([]int64, rng.IntN(40))
			for j := range m.I64s {
				m.I64s[j] = int64(rng.Uint64())
			}
		case 4:
			m.Kind = KindUint64Slice
			m.U64s = make([]uint64, rng.IntN(40))
			for j := range m.U64s {
				m.U64s[j] = rng.Uint64()
			}
		case 5:
			m.Kind = KindBytes
			m.Bytes = make([]byte, rng.IntN(100))
			for j := range m.Bytes {
				m.Bytes[j] = byte(rng.Uint64())
			}
		case 6:
			m.Kind, m.Ref = KindRef, uint32(rng.IntN(1000))
		}
	}
	return msgs
}

// TestStreamSurvivesChunkBoundaries is the framing property test: a stream
// of N random messages decodes identically no matter how the reader chops
// it — 1-byte dribbles, prime-sized chunks, jumbo reads.
func TestStreamSurvivesChunkBoundaries(t *testing.T) {
	msgs := randomMessages(200, 42)
	var stream []byte
	var err error
	for i := range msgs {
		if stream, err = AppendMessage(stream, &msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, sizes := range [][]int{{1}, {3, 7, 1}, {13}, {1 << 20}, {1, 1 << 20, 5}} {
		cr := &chunkReader{r: bytes.NewReader(stream), sizes: sizes}
		var dec Decoder
		var m Message
		for i := range msgs {
			if err := dec.ReadMessage(cr, &m); err != nil {
				t.Fatalf("chunks %v: msg %d: %v", sizes, i, err)
			}
			if !payloadEqual(&msgs[i], &m) {
				t.Fatalf("chunks %v: msg %d mismatch", sizes, i)
			}
		}
		if err := dec.ReadMessage(cr, &m); err != io.EOF {
			t.Fatalf("chunks %v: want io.EOF at stream end, got %v", sizes, err)
		}
	}
}

// TestDecoderZeroSteadyStateAllocs pins the zero-alloc claim: after one
// warm-up pass grows the arenas to their high-water mark, decoding the full
// framed stream (with the per-round Release) allocates nothing.
func TestDecoderZeroSteadyStateAllocs(t *testing.T) {
	msgs := randomMessages(300, 7)
	var stream []byte
	var err error
	for i := range msgs {
		if stream, err = AppendMessage(stream, &msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec := &Decoder{}
	r := bytes.NewReader(stream)
	var m Message
	pass := func() {
		r.Reset(stream)
		dec.Release()
		for i := 0; i < len(msgs); i++ {
			if err := dec.ReadMessage(r, &m); err != nil {
				t.Fatal(err)
			}
		}
	}
	pass() // warm-up: arenas grow once
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Errorf("steady-state decode allocates %.1f per stream, want 0", allocs)
	}

	// Encoding into a warm buffer is allocation-free too.
	buf := make([]byte, 0, len(stream))
	if allocs := testing.AllocsPerRun(10, func() {
		buf = buf[:0]
		for i := range msgs {
			buf, _ = AppendMessage(buf, &msgs[i])
		}
	}); allocs != 0 {
		t.Errorf("steady-state encode allocates %.1f per stream, want 0", allocs)
	}
}
