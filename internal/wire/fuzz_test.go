package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzCodecRoundTrip fuzzes the frame codec with raw byte streams
// (committed seed corpus under testdata/fuzz): decoding must never panic;
// every failure must be one of the typed errors (ErrTruncated, ErrCorrupt,
// ErrTooLarge); and because the encoding is canonical, any input that
// decodes must re-encode to exactly the bytes consumed. The streaming
// decoder must agree with the byte-slice decoder frame for frame.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		buf, err := AppendMessage(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	two, _ := AppendMessage(nil, &Message{Kind: KindInt64, I64: 1})
	two, _ = AppendMessage(two, &Message{Kind: KindBytes, Bytes: []byte("x")})
	f.Add(two)
	f.Add(two[:len(two)-1]) // truncated tail frame
	f.Add([]byte{0x18, 0xA8, 1, 0})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		sr := bytes.NewReader(data)
		var dec Decoder
		rest := data
		for frame := 0; ; frame++ {
			var m, sm Message
			next, err := DecodeMessage(rest, &m)
			serr := dec.ReadMessage(sr, &sm)
			if err != nil {
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTooLarge) {
					t.Fatalf("frame %d: untyped decode error %v", frame, err)
				}
				// The stream decoder must refuse the same frame: same typed
				// error, except that a clean empty tail is its io.EOF.
				if serr == nil {
					t.Fatalf("frame %d: slice decoder rejected (%v) but stream decoder accepted", frame, err)
				}
				if len(rest) == 0 && serr != io.EOF {
					t.Fatalf("frame %d: empty tail gave %v, want io.EOF", frame, serr)
				}
				return
			}
			if serr != nil {
				t.Fatalf("frame %d: stream decoder rejected (%v) what the slice decoder accepted", frame, serr)
			}
			if !payloadEqual(&m, &sm) {
				t.Fatalf("frame %d: decoders disagree: %+v vs %+v", frame, m, sm)
			}
			consumed := rest[:len(rest)-len(next)]
			re, err := AppendMessage(nil, &m)
			if err != nil {
				t.Fatalf("frame %d: re-encode of a decoded message failed: %v", frame, err)
			}
			if !bytes.Equal(re, consumed) {
				t.Fatalf("frame %d: decode∘encode not identity:\n in: %x\nout: %x", frame, consumed, re)
			}
			rest = next
			if len(rest) == 0 {
				return
			}
		}
	})
}
