//go:build ignore

// corpus_gen regenerates the committed seed corpus of FuzzCodecRoundTrip:
//
//	go run ./internal/wire/corpus_gen.go
//
// The seeds cover every payload kind, multi-frame streams, and the three
// typed-error shapes (truncated, corrupt, oversized), so a plain `go test`
// run replays all of them as regression inputs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hetmpc/internal/wire"
)

func frame(m wire.Message) []byte {
	b, err := wire.AppendMessage(nil, &m)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func main() {
	seeds := [][]byte{
		frame(wire.Message{From: -1, To: 0, Kind: wire.KindNil}),
		frame(wire.Message{From: 0, To: 1, Words: 1, Kind: wire.KindInt64, I64: -7}),
		frame(wire.Message{From: 1, To: 2, Words: 1, Kind: wire.KindUint64, U64: 1 << 63}),
		frame(wire.Message{From: 2, To: -1, Words: 3, Kind: wire.KindInt64Slice, I64s: []int64{1, -2, 3}}),
		frame(wire.Message{From: 3, To: 4, Words: 2, Kind: wire.KindUint64Slice, U64s: []uint64{9, ^uint64(0)}}),
		frame(wire.Message{From: 4, To: 5, Words: 2, Kind: wire.KindBytes, Bytes: []byte("seed bytes")}),
		frame(wire.Message{From: -1, To: 6, Words: 1, Kind: wire.KindRef, Ref: 12}),
	}
	// A two-frame stream and its truncation.
	stream := append(frame(wire.Message{Kind: wire.KindInt64, I64: 42}),
		frame(wire.Message{Kind: wire.KindBytes, Bytes: []byte("tail")})...)
	seeds = append(seeds, stream, stream[:len(stream)-3])
	// Corrupt shapes: bad magic, bad version, bad kind, plen/kind clash,
	// oversized plen.
	bad := func(off int, v byte) []byte {
		b := frame(wire.Message{From: 1, To: 2, Words: 1, Kind: wire.KindInt64, I64: 5})
		b[off] = v
		return b
	}
	seeds = append(seeds, bad(0, 0x00), bad(2, 99), bad(3, 250), bad(16, 3), bad(19, 0xFF))

	dir := filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzCodecRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, s := range seeds {
		path := filepath.Join(dir, fmt.Sprintf("seed%d", i+1))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}
