package wire

import (
	"fmt"
	"net"
)

// tcpLink is one loopback TCP connection: the engine writes frames into the
// dialed side and the delivery goroutine reads them from the accepted side.
type tcpLink struct {
	name string
	w    net.Conn // dialed (engine writes)
	r    net.Conn // accepted (delivery reads)
}

func (l *tcpLink) Name() string                { return l.name }
func (l *tcpLink) Read(p []byte) (int, error)  { return l.r.Read(p) }
func (l *tcpLink) Write(p []byte) (int, error) { return l.w.Write(p) }

func (l *tcpLink) Close() error {
	werr := l.w.Close()
	rerr := l.r.Close()
	if werr != nil {
		return werr
	}
	return rerr
}

// TCP is the sockets transport: one TCP connection per machine slot through
// a loopback listener. The frame stream is byte-identical to what would
// cross a real network; Addr makes the transport's contract observable and
// is the seam a future cross-host runner replaces with remote dialing.
type TCP struct {
	// Addr is the listen address; empty means "127.0.0.1:0" (an ephemeral
	// loopback port).
	Addr string

	ln    net.Listener
	links []Link
}

// NewTCP returns an unopened loopback TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Name implements Transport.
func (*TCP) Name() string { return "tcp" }

// Open implements Transport: listens once, then dials and accepts one
// connection pair per slot. Dials are sequential, so the k-th accepted
// connection pairs with the k-th dial.
func (t *TCP) Open(slots int) ([]Link, error) {
	addr := t.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	t.ln = ln
	t.links = make([]Link, slots)
	for slot := 0; slot < slots; slot++ {
		w, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dial for %s: %w", LinkName(slot), err)
		}
		r, err := ln.Accept()
		if err != nil {
			w.Close()
			t.Close()
			return nil, fmt.Errorf("accept for %s: %w", LinkName(slot), err)
		}
		t.links[slot] = &tcpLink{name: LinkName(slot), w: w, r: r}
	}
	return t.links, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	var first error
	if t.ln != nil {
		if err := t.ln.Close(); err != nil {
			first = err
		}
		t.ln = nil
	}
	for _, l := range t.links {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.links = nil
	return first
}
