package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"hetmpc/internal/graph"
)

// Blocks are the second frame family: bulk records (graph shards, recovery
// checkpoints) that travel outside the per-round Exchange stream. They use
// their own magic so a message stream and a block stream cannot be confused
// for each other, and implement io.WriterTo / io.ReaderFrom in the
// lattigo utils/buffer shape with pooled scratch.
const (
	// BlockMagic is the block frame magic (little-endian uint16).
	BlockMagic uint16 = 0xA818
	// block header: magic(2) version(1) kind(1) blen(4).
	blockHeaderSize = 8
)

// Block kinds.
const (
	blockShard      byte = 1
	blockCheckpoint byte = 2
)

var blockScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Shard is a contiguous slice of a graph's edge list, addressed for one
// machine: edges [Offset, Offset+len(Edges)) of a graph on N vertices.
// A shard with Offset 0 covering every edge is a whole graph (WriteGraph).
type Shard struct {
	N        uint32
	Offset   uint32
	Weighted bool
	Edges    []graph.Edge
}

// Shard body: n(4) offset(4) weighted(1) nedges(4), then u(4) v(4) w(8)
// per edge.
const shardFixed = 13
const shardEdgeSize = 16

// WriteTo implements io.WriterTo: one block frame containing the shard.
func (s *Shard) WriteTo(w io.Writer) (int64, error) {
	if len(s.Edges) > (math.MaxUint32-shardFixed)/shardEdgeSize {
		return 0, fmt.Errorf("%w: %d edges", ErrTooLarge, len(s.Edges))
	}
	bp := blockScratch.Get().(*[]byte)
	defer blockScratch.Put(bp)
	b := (*bp)[:0]
	blen := shardFixed + shardEdgeSize*len(s.Edges)
	b = binary.LittleEndian.AppendUint16(b, BlockMagic)
	b = append(b, Version, blockShard)
	b = binary.LittleEndian.AppendUint32(b, uint32(blen))
	b = binary.LittleEndian.AppendUint32(b, s.N)
	b = binary.LittleEndian.AppendUint32(b, s.Offset)
	if s.Weighted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Edges)))
	for _, e := range s.Edges {
		if e.U < 0 || e.V < 0 || uint64(e.U) > math.MaxUint32 || uint64(e.V) > math.MaxUint32 {
			return 0, fmt.Errorf("%w: edge endpoints %d-%d", ErrTooLarge, e.U, e.V)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(e.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.V))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.W))
	}
	*bp = b
	n, err := w.Write(b)
	return int64(n), err
}

// ReadFrom implements io.ReaderFrom: reads one shard block frame.
func (s *Shard) ReadFrom(r io.Reader) (int64, error) {
	body, n, err := readBlock(r, blockShard)
	if err != nil {
		return n, err
	}
	if len(body) < shardFixed {
		return n, fmt.Errorf("%w: shard body %d bytes", ErrCorrupt, len(body))
	}
	s.N = binary.LittleEndian.Uint32(body[0:4])
	s.Offset = binary.LittleEndian.Uint32(body[4:8])
	switch body[8] {
	case 0:
		s.Weighted = false
	case 1:
		s.Weighted = true
	default:
		return n, fmt.Errorf("%w: weighted flag %d", ErrCorrupt, body[8])
	}
	ne := int(binary.LittleEndian.Uint32(body[9:13]))
	if len(body) != shardFixed+shardEdgeSize*ne {
		return n, fmt.Errorf("%w: shard of %d edges in %d bytes", ErrCorrupt, ne, len(body))
	}
	if cap(s.Edges) < ne {
		s.Edges = make([]graph.Edge, ne)
	}
	s.Edges = s.Edges[:ne]
	for i := range s.Edges {
		off := shardFixed + shardEdgeSize*i
		s.Edges[i] = graph.Edge{
			U: int(binary.LittleEndian.Uint32(body[off : off+4])),
			V: int(binary.LittleEndian.Uint32(body[off+4 : off+8])),
			W: int64(binary.LittleEndian.Uint64(body[off+8 : off+16])),
		}
	}
	return n, nil
}

// Checkpoint is one machine's encoded recovery state at a checkpoint
// barrier: the opaque payload the Checkpointer contract snapshots, plus the
// modeled word count the barrier charged for it.
type Checkpoint struct {
	Machine int32 // -1 = large machine
	Round   uint32
	Words   uint32
	Payload []byte
}

// WriteTo implements io.WriterTo: one block frame containing the checkpoint.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	if len(c.Payload) > math.MaxUint32-16 {
		return 0, fmt.Errorf("%w: %d payload bytes", ErrTooLarge, len(c.Payload))
	}
	bp := blockScratch.Get().(*[]byte)
	defer blockScratch.Put(bp)
	b := (*bp)[:0]
	b = binary.LittleEndian.AppendUint16(b, BlockMagic)
	b = append(b, Version, blockCheckpoint)
	b = binary.LittleEndian.AppendUint32(b, uint32(12+len(c.Payload)))
	b = binary.LittleEndian.AppendUint32(b, uint32(c.Machine))
	b = binary.LittleEndian.AppendUint32(b, c.Round)
	b = binary.LittleEndian.AppendUint32(b, c.Words)
	b = append(b, c.Payload...)
	*bp = b
	n, err := w.Write(b)
	return int64(n), err
}

// ReadFrom implements io.ReaderFrom: reads one checkpoint block frame.
func (c *Checkpoint) ReadFrom(r io.Reader) (int64, error) {
	body, n, err := readBlock(r, blockCheckpoint)
	if err != nil {
		return n, err
	}
	if len(body) < 12 {
		return n, fmt.Errorf("%w: checkpoint body %d bytes", ErrCorrupt, len(body))
	}
	c.Machine = int32(binary.LittleEndian.Uint32(body[0:4]))
	c.Round = binary.LittleEndian.Uint32(body[4:8])
	c.Words = binary.LittleEndian.Uint32(body[8:12])
	payload := body[12:]
	if cap(c.Payload) < len(payload) {
		c.Payload = make([]byte, len(payload))
	}
	c.Payload = c.Payload[:len(payload)]
	copy(c.Payload, payload)
	return n, nil
}

// readBlock reads and validates one block frame of the wanted kind,
// returning its body. The body aliases a pooled buffer only until return,
// so it is copied out by the callers that retain it.
func readBlock(r io.Reader, want byte) (body []byte, n int64, err error) {
	var hdr [blockHeaderSize]byte
	nn, err := io.ReadFull(r, hdr[:])
	n = int64(nn)
	if err != nil {
		return nil, n, fmt.Errorf("%w: block header: %v", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint16(hdr[0:2]) != BlockMagic {
		return nil, n, fmt.Errorf("%w: bad block magic 0x%04x", ErrCorrupt, binary.LittleEndian.Uint16(hdr[0:2]))
	}
	if hdr[2] != Version {
		return nil, n, fmt.Errorf("%w: unknown block version %d", ErrCorrupt, hdr[2])
	}
	if hdr[3] != want {
		return nil, n, fmt.Errorf("%w: block kind %d, want %d", ErrCorrupt, hdr[3], want)
	}
	blen := binary.LittleEndian.Uint32(hdr[4:8])
	if blen > DefaultMaxPayload {
		return nil, n, fmt.Errorf("%w: block body %d > limit %d", ErrTooLarge, blen, DefaultMaxPayload)
	}
	body = make([]byte, blen)
	nn, err = io.ReadFull(r, body)
	n += int64(nn)
	if err != nil {
		return nil, n, fmt.Errorf("%w: block body: %v", ErrTruncated, err)
	}
	return body, n, nil
}

// WriteGraph writes g as one whole-graph shard block. The binary format is
// the bulk-transfer twin of the text format in internal/graph: hetrun
// distinguishes the two by sniffing the magic.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	if g.N < 0 || uint64(g.N) > math.MaxUint32 {
		return fmt.Errorf("%w: %d vertices", ErrTooLarge, g.N)
	}
	s := Shard{N: uint32(g.N), Offset: 0, Weighted: g.Weighted, Edges: g.Edges}
	_, err := s.WriteTo(w)
	return err
}

// ReadGraph reads a whole-graph shard block written by WriteGraph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	var s Shard
	if _, err := s.ReadFrom(r); err != nil {
		return nil, err
	}
	return graph.New(int(s.N), s.Edges, s.Weighted), nil
}

// SniffBlock reports whether br's next bytes start a wire block frame
// (vs. e.g. the text graph format). It peeks without consuming.
func SniffBlock(br *bufio.Reader) bool {
	b, err := br.Peek(2)
	return err == nil && binary.LittleEndian.Uint16(b) == BlockMagic
}
