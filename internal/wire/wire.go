// Package wire puts the simulator's messages on a real wire: a zero-alloc,
// length-prefixed binary codec for Exchange messages, checkpoints and graph
// shards (DESIGN.md §11), plus the pluggable Transport the mpc engine runs
// its deliver phase over.
//
// # Frame codec
//
// Every Exchange message crosses the wire as one frame:
//
//	offset  size  field
//	0       2     magic   (0xA817, little-endian)
//	2       1     version (currently 1)
//	3       1     payload kind
//	4       4     from    (int32; -1 = large machine)
//	8       4     to      (int32; -1 = large machine)
//	12      4     words   (uint32; the modeled message size)
//	16      4     plen    (uint32; payload byte length)
//	20      plen  payload
//
// All integers are little-endian, fixed-width; for a given Message value the
// encoding is canonical — decode∘encode is the identity on bytes, which the
// FuzzCodecRoundTrip target enforces. Truncated or corrupt input surfaces as
// the typed errors ErrTruncated / ErrCorrupt / ErrTooLarge, never a panic.
//
// The codec follows the WriteTo/ReadFrom shape of lattigo's utils/buffer:
// encoding appends to a caller-owned buffer (AppendMessage), decoding reads
// into caller-owned Message structs from reusable scratch and arenas
// (Decoder.ReadMessage), so the steady-state path of a framed stream
// performs zero allocations once buffers reach their high-water mark.
//
// # Payload kinds
//
// The engine moves []uint64-ish payloads; the codec encodes those natively
// (KindInt64, KindUint64, KindInt64Slice, KindUint64Slice, KindBytes).
// Algorithm-local payloads — the ad-hoc generic structs the prims exchange —
// are not wire-encodable from outside their packages; they cross as KindRef:
// the frame carries a per-link sequence token and the payload value rides
// the engine's in-process handoff table. The frame header (and its bytes on
// the wire) are still real, so wire_bytes accounting stays meaningful, but a
// KindRef frame can only be resolved inside the sending process. True
// multi-host operation requires every payload to be wire-native; the codec
// and transports are built so that boundary is a payload audit, not a
// redesign. See DESIGN.md §11.
//
// # Transports
//
// A Transport opens one duplex byte link per destination machine. Delivery
// stays above the cost model: the engine computes the same plans, offsets
// and capacity checks regardless of transport, then either copies messages
// through shared memory (inproc — bit-identical to the pre-wire engine) or
// encodes them through the links (pipe — an AF_UNIX socketpair per machine;
// tcp — a loopback TCP connection per machine). Measured bytes land in
// Stats.WireBytes and per-round trace records, next to the modeled words.
package wire

import "errors"

// Frame geometry and limits.
const (
	// Magic is the frame magic (little-endian uint16 at offset 0).
	Magic uint16 = 0xA817
	// Version is the codec version stamped into every frame header.
	Version byte = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 20
	// DefaultMaxPayload bounds the payload length a Decoder accepts before
	// allocating, so corrupt length prefixes cannot drive huge allocations.
	DefaultMaxPayload = 1 << 26 // 64 MiB
)

// Typed codec and transport errors. Decoding never panics: malformed input
// maps onto exactly one of these.
var (
	// ErrTruncated is returned when the input ends inside a frame header or
	// declared payload (the io.ErrUnexpectedEOF of the frame layer).
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCorrupt is returned for structurally invalid frames: bad magic,
	// unknown version or kind, or a payload length that contradicts the kind
	// (e.g. a KindInt64 frame whose plen is not 8).
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrTooLarge is returned when a declared payload length exceeds the
	// decoder's MaxPayload bound.
	ErrTooLarge = errors.New("wire: frame payload exceeds limit")
	// ErrTransport is wrapped by every transport-layer failure the engine
	// surfaces — a link write/read failing mid-round, a peer dying, a
	// transport that cannot open its links. The wrapping error names the
	// link ("large", "small-3").
	ErrTransport = errors.New("wire: transport failure")
)

// Kind tags a frame's payload encoding.
type Kind byte

const (
	// KindNil is the nil payload (plen 0).
	KindNil Kind = iota
	// KindInt64 is one int64 (plen 8).
	KindInt64
	// KindUint64 is one uint64 (plen 8).
	KindUint64
	// KindInt64Slice is a []int64 (plen 8·len).
	KindInt64Slice
	// KindUint64Slice is a []uint64 (plen 8·len).
	KindUint64Slice
	// KindBytes is a raw []byte (plen len).
	KindBytes
	// KindRef is the in-process payload handoff: the frame carries a
	// per-link sequence token (plen 4) and the payload value itself rides
	// the engine's round-scoped reference table. See the package comment.
	KindRef

	kindCount // one past the last valid kind
)

// Message is one decoded (or to-be-encoded) Exchange message. Exactly one
// payload field is meaningful, selected by Kind; the union-of-fields shape
// (rather than an `any`) keeps native decode paths free of interface boxing
// so the steady-state stream costs zero allocations.
type Message struct {
	From  int32
	To    int32
	Words uint32
	Kind  Kind

	I64   int64    // KindInt64
	U64   uint64   // KindUint64
	I64s  []int64  // KindInt64Slice
	U64s  []uint64 // KindUint64Slice
	Bytes []byte   // KindBytes
	Ref   uint32   // KindRef: index into the sender's round reference table
}

// FromPayload classifies an engine payload (mpc.Msg.Data) into m's kind and
// payload fields. It reports false when the dynamic type is not
// wire-native — the caller must then assign a KindRef token and carry the
// value through its reference table. From/To/Words are left untouched.
func (m *Message) FromPayload(data any) bool {
	m.I64s, m.U64s, m.Bytes = nil, nil, nil
	switch v := data.(type) {
	case nil:
		m.Kind = KindNil
	case int64:
		m.Kind, m.I64 = KindInt64, v
	case uint64:
		m.Kind, m.U64 = KindUint64, v
	case []int64:
		m.Kind, m.I64s = KindInt64Slice, v
	case []uint64:
		m.Kind, m.U64s = KindUint64Slice, v
	case []byte:
		m.Kind, m.Bytes = KindBytes, v
	default:
		m.Kind = KindRef
		return false
	}
	return true
}

// Payload boxes the decoded payload back into the engine's `any` shape.
// KindRef returns nil — the caller resolves the reference table with m.Ref.
// Slice payloads are returned as decoded (for Decoder.ReadMessage they point
// into the decoder's arena and stay valid until its next Release).
func (m *Message) Payload() any {
	switch m.Kind {
	case KindNil, KindRef:
		return nil
	case KindInt64:
		return m.I64
	case KindUint64:
		return m.U64
	case KindInt64Slice:
		return m.I64s
	case KindUint64Slice:
		return m.U64s
	case KindBytes:
		return m.Bytes
	}
	return nil
}
