package wire

import (
	"time"

	"hetmpc/internal/metrics"
)

// instrumentedLink wraps a Link so every Read and Write publishes the moved
// bytes and elapsed wall-clock nanoseconds. The counters are atomic, so the
// engine's per-destination reader goroutines and the serial writer can share
// one registry safely.
type instrumentedLink struct {
	Link
	readBytes  *metrics.Counter
	writeBytes *metrics.Counter
	readNs     *metrics.Counter
	writeNs    *metrics.Counter
}

// InstrumentLink wraps l with per-link byte and time counters registered
// under the link's name (wire_link_read_bytes_total, _write_bytes_total,
// _read_ns_total, _write_ns_total; label link=<Name>). A nil registry or
// nil link returns l unchanged — the zero-overhead path stays untouched.
//
// The write-byte counters carry the engine's conservation law: on a
// successful run the sum over links of wire_link_write_bytes_total equals
// Stats.WireBytes exactly (every encoded frame buffer is written through
// its destination link exactly once).
func InstrumentLink(l Link, reg *metrics.Registry) Link {
	if reg == nil || l == nil {
		return l
	}
	name := l.Name()
	return &instrumentedLink{
		Link:       l,
		readBytes:  reg.Counter("wire_link_read_bytes_total", "link", name),
		writeBytes: reg.Counter("wire_link_write_bytes_total", "link", name),
		readNs:     reg.Counter("wire_link_read_ns_total", "link", name),
		writeNs:    reg.Counter("wire_link_write_ns_total", "link", name),
	}
}

func (il *instrumentedLink) Read(p []byte) (int, error) {
	t0 := time.Now() //hetlint:nondet wall-clock metering feeds the wire_link_read_ns observability counter only; Stats and traces use model time
	n, err := il.Link.Read(p)
	il.readNs.Add(time.Since(t0).Nanoseconds()) //hetlint:nondet wall-clock metering feeds the observability counters only
	il.readBytes.Add(int64(n))
	return n, err
}

func (il *instrumentedLink) Write(p []byte) (int, error) {
	t0 := time.Now() //hetlint:nondet wall-clock metering feeds the wire_link_write_ns observability counter only; Stats and traces use model time
	n, err := il.Link.Write(p)
	il.writeNs.Add(time.Since(t0).Nanoseconds()) //hetlint:nondet wall-clock metering feeds the observability counters only
	il.writeBytes.Add(int64(n))
	return n, err
}
