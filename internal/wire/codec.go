package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// payloadLen returns the payload byte length a Message encodes to, or an
// error when the message cannot be framed (slice too long for the uint32
// length prefix).
//
//hetlint:zeroalloc encode hot path; pinned by TestDecoderZeroSteadyStateAllocs and the mpc AllocsPerRun suite
func payloadLen(m *Message) (int, error) {
	switch m.Kind {
	case KindNil:
		return 0, nil
	case KindInt64, KindUint64:
		return 8, nil
	case KindInt64Slice:
		if len(m.I64s) > math.MaxUint32/8 {
			return 0, fmt.Errorf("%w: %d int64s", ErrTooLarge, len(m.I64s))
		}
		return 8 * len(m.I64s), nil
	case KindUint64Slice:
		if len(m.U64s) > math.MaxUint32/8 {
			return 0, fmt.Errorf("%w: %d uint64s", ErrTooLarge, len(m.U64s))
		}
		return 8 * len(m.U64s), nil
	case KindBytes:
		if len(m.Bytes) > math.MaxUint32 {
			return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(m.Bytes))
		}
		return len(m.Bytes), nil
	case KindRef:
		return 4, nil
	}
	return 0, fmt.Errorf("%w: kind %d", ErrCorrupt, m.Kind)
}

// AppendMessage appends m's frame to dst and returns the extended slice. It
// allocates only when dst needs to grow, so a caller reusing its buffer
// round over round encodes with zero steady-state allocations.
//
//hetlint:zeroalloc encode hot path; pinned by TestDecoderZeroSteadyStateAllocs and the mpc AllocsPerRun suite
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	plen, err := payloadLen(m)
	if err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(m.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.LittleEndian.AppendUint32(dst, m.Words)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(plen))
	switch m.Kind {
	case KindInt64:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.I64))
	case KindUint64:
		dst = binary.LittleEndian.AppendUint64(dst, m.U64)
	case KindInt64Slice:
		for _, v := range m.I64s {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case KindUint64Slice:
		for _, v := range m.U64s {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	case KindBytes:
		dst = append(dst, m.Bytes...)
	case KindRef:
		dst = binary.LittleEndian.AppendUint32(dst, m.Ref)
	}
	return dst, nil
}

// parseHeader validates a 20-byte header and returns kind and payload
// length. maxPayload <= 0 means DefaultMaxPayload.
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func parseHeader(h []byte, m *Message, maxPayload int) (plen int, err error) {
	if binary.LittleEndian.Uint16(h[0:2]) != Magic {
		return 0, fmt.Errorf("%w: bad magic 0x%04x", ErrCorrupt, binary.LittleEndian.Uint16(h[0:2]))
	}
	if h[2] != Version {
		return 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, h[2])
	}
	kind := Kind(h[3])
	if kind >= kindCount {
		return 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	m.Kind = kind
	m.From = int32(binary.LittleEndian.Uint32(h[4:8]))
	m.To = int32(binary.LittleEndian.Uint32(h[8:12]))
	m.Words = binary.LittleEndian.Uint32(h[12:16])
	plen32 := binary.LittleEndian.Uint32(h[16:20])
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if uint64(plen32) > uint64(maxPayload) {
		return 0, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, plen32, maxPayload)
	}
	plen = int(plen32)
	switch kind {
	case KindNil:
		if plen != 0 {
			return 0, fmt.Errorf("%w: nil payload with plen %d", ErrCorrupt, plen)
		}
	case KindInt64, KindUint64:
		if plen != 8 {
			return 0, fmt.Errorf("%w: scalar payload with plen %d", ErrCorrupt, plen)
		}
	case KindInt64Slice, KindUint64Slice:
		if plen%8 != 0 {
			return 0, fmt.Errorf("%w: word-slice payload with plen %d", ErrCorrupt, plen)
		}
	case KindRef:
		if plen != 4 {
			return 0, fmt.Errorf("%w: ref payload with plen %d", ErrCorrupt, plen)
		}
	}
	return plen, nil
}

// decodePayload fills m's payload field from body (length already validated
// against the kind). Slice payloads alias or copy via the provided arena
// allocators; pass nil allocators to alias body directly (DecodeMessage).
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func decodePayload(m *Message, body []byte) {
	switch m.Kind {
	case KindInt64:
		m.I64 = int64(binary.LittleEndian.Uint64(body))
	case KindUint64:
		m.U64 = binary.LittleEndian.Uint64(body)
	case KindInt64Slice:
		n := len(body) / 8
		if cap(m.I64s) < n {
			m.I64s = make([]int64, n)
		}
		m.I64s = m.I64s[:n]
		for i := range m.I64s {
			m.I64s[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
		}
	case KindUint64Slice:
		n := len(body) / 8
		if cap(m.U64s) < n {
			m.U64s = make([]uint64, n)
		}
		m.U64s = m.U64s[:n]
		for i := range m.U64s {
			m.U64s[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
	case KindBytes:
		if cap(m.Bytes) < len(body) {
			m.Bytes = make([]byte, len(body))
		}
		m.Bytes = m.Bytes[:len(body)]
		copy(m.Bytes, body)
	case KindRef:
		m.Ref = binary.LittleEndian.Uint32(body)
	}
}

// DecodeMessage decodes one frame from the front of b into m and returns
// the remaining bytes. Slice payloads are decoded into m's existing
// capacity when it suffices (so a reused Message decodes without
// allocating). A short b returns ErrTruncated.
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func DecodeMessage(b []byte, m *Message) (rest []byte, err error) {
	if len(b) < HeaderSize {
		return b, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	plen, err := parseHeader(b[:HeaderSize], m, 0)
	if err != nil {
		return b, err
	}
	if len(b) < HeaderSize+plen {
		return b, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncated, len(b)-HeaderSize, plen)
	}
	decodePayload(m, b[HeaderSize:HeaderSize+plen])
	return b[HeaderSize+plen:], nil
}

// A Decoder reads frames from an io.Reader with reusable scratch: a fixed
// header buffer, a growable payload buffer, and per-kind arenas the decoded
// slice payloads point into. After the arenas reach their high-water mark,
// ReadMessage performs zero allocations per frame.
//
// Decoded slice payloads alias the arenas and stay valid until the next
// Release — in the engine, one Release per round, matching the synchronous
// round contract that inbox payloads are consumed before the next Exchange.
type Decoder struct {
	// MaxPayload bounds accepted payload lengths; 0 means DefaultMaxPayload.
	MaxPayload int

	hdr     [HeaderSize]byte
	body    []byte
	i64s    []int64
	u64s    []uint64
	bytes   []byte
	i64Off  int
	u64Off  int
	byteOff int
}

// Release resets the arenas. Every slice payload decoded since the previous
// Release becomes invalid; capacity is retained.
func (d *Decoder) Release() {
	d.i64Off, d.u64Off, d.byteOff = 0, 0, 0
}

// growI64 extends the arena view by n, growing the backing array only past
// its high-water mark.
//
//hetlint:zeroalloc arena growth is the sanctioned cap()-guarded idiom; pinned by TestDecoderZeroSteadyStateAllocs
func growI64(arena []int64, off, n int) []int64 {
	if off+n > cap(arena) {
		next := make([]int64, max(2*cap(arena), off+n))
		copy(next, arena[:off])
		arena = next
	}
	return arena[:off+n]
}

// growU64 is growI64 for the uint64 arena.
//
//hetlint:zeroalloc arena growth is the sanctioned cap()-guarded idiom; pinned by TestDecoderZeroSteadyStateAllocs
func growU64(arena []uint64, off, n int) []uint64 {
	if off+n > cap(arena) {
		next := make([]uint64, max(2*cap(arena), off+n))
		copy(next, arena[:off])
		arena = next
	}
	return arena[:off+n]
}

// growBytes is growI64 for the byte arena.
//
//hetlint:zeroalloc arena growth is the sanctioned cap()-guarded idiom; pinned by TestDecoderZeroSteadyStateAllocs
func growBytes(arena []byte, off, n int) []byte {
	if off+n > cap(arena) {
		next := make([]byte, max(2*cap(arena), off+n))
		copy(next, arena[:off])
		arena = next
	}
	return arena[:off+n]
}

// ReadMessage reads exactly one frame from r into m. io.EOF at a frame
// boundary is returned as io.EOF; EOF inside a frame is ErrTruncated.
// Slice payloads point into the decoder's arenas (valid until Release).
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs (arena growth is the sanctioned cap()-guarded idiom)
func (d *Decoder) ReadMessage(r io.Reader, m *Message) error {
	if _, err := io.ReadFull(r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	plen, err := parseHeader(d.hdr[:], m, d.MaxPayload)
	if err != nil {
		return err
	}
	if cap(d.body) < plen {
		d.body = make([]byte, plen)
	}
	body := d.body[:plen]
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	switch m.Kind {
	case KindInt64Slice:
		n := plen / 8
		d.i64s = growI64(d.i64s, d.i64Off, n)
		dst := d.i64s[d.i64Off : d.i64Off+n]
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
		}
		m.I64s = dst
		d.i64Off += n
	case KindUint64Slice:
		n := plen / 8
		d.u64s = growU64(d.u64s, d.u64Off, n)
		dst := d.u64s[d.u64Off : d.u64Off+n]
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		m.U64s = dst
		d.u64Off += n
	case KindBytes:
		d.bytes = growBytes(d.bytes, d.byteOff, plen)
		dst := d.bytes[d.byteOff : d.byteOff+plen]
		copy(dst, body)
		m.Bytes = dst
		d.byteOff += plen
	default:
		decodePayload(m, body)
	}
	return nil
}
