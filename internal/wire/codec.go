package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hetmpc/internal/arena"
)

// payloadLen returns the payload byte length a Message encodes to, or an
// error when the message cannot be framed (slice too long for the uint32
// length prefix).
//
//hetlint:zeroalloc encode hot path; pinned by TestDecoderZeroSteadyStateAllocs and the mpc AllocsPerRun suite
func payloadLen(m *Message) (int, error) {
	switch m.Kind {
	case KindNil:
		return 0, nil
	case KindInt64, KindUint64:
		return 8, nil
	case KindInt64Slice:
		if len(m.I64s) > math.MaxUint32/8 {
			return 0, fmt.Errorf("%w: %d int64s", ErrTooLarge, len(m.I64s))
		}
		return 8 * len(m.I64s), nil
	case KindUint64Slice:
		if len(m.U64s) > math.MaxUint32/8 {
			return 0, fmt.Errorf("%w: %d uint64s", ErrTooLarge, len(m.U64s))
		}
		return 8 * len(m.U64s), nil
	case KindBytes:
		if len(m.Bytes) > math.MaxUint32 {
			return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(m.Bytes))
		}
		return len(m.Bytes), nil
	case KindRef:
		return 4, nil
	}
	return 0, fmt.Errorf("%w: kind %d", ErrCorrupt, m.Kind)
}

// AppendMessage appends m's frame to dst and returns the extended slice. It
// allocates only when dst needs to grow, so a caller reusing its buffer
// round over round encodes with zero steady-state allocations.
//
//hetlint:zeroalloc encode hot path; pinned by TestDecoderZeroSteadyStateAllocs and the mpc AllocsPerRun suite
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	plen, err := payloadLen(m)
	if err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(m.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.LittleEndian.AppendUint32(dst, m.Words)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(plen))
	switch m.Kind {
	case KindInt64:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.I64))
	case KindUint64:
		dst = binary.LittleEndian.AppendUint64(dst, m.U64)
	case KindInt64Slice:
		dst = appendI64s(dst, m.I64s)
	case KindUint64Slice:
		dst = appendU64s(dst, m.U64s)
	case KindBytes:
		dst = append(dst, m.Bytes...)
	case KindRef:
		dst = binary.LittleEndian.AppendUint32(dst, m.Ref)
	}
	return dst, nil
}

// grow extends dst by n bytes in one step, reallocating only past the
// buffer's high-water mark, and returns the extended slice plus the fresh
// n-byte window. One growth check per slice payload instead of one per
// element is what lets the word loops below run unrolled with the bounds
// checks hoisted.
//
//hetlint:zeroalloc encode hot path; growth is the sanctioned cap()-guarded idiom (pinned by TestDecoderZeroSteadyStateAllocs)
func grow(dst []byte, n int) (buf, window []byte) {
	need := len(dst) + n
	if need > cap(dst) {
		next := make([]byte, need, max(2*cap(dst), need))
		copy(next, dst)
		dst = next
	} else {
		dst = dst[:need]
	}
	return dst, dst[need-n : need]
}

// appendI64s appends the little-endian encoding of src, 4-wide: each
// iteration loads a fixed 32-byte window so the compiler drops the
// per-store bounds checks. The byte stream is identical to the one-word
// AppendUint64 loop it replaces (canonical encoding is pinned by the codec
// fuzz corpus).
//
//hetlint:zeroalloc encode hot path; pinned by TestDecoderZeroSteadyStateAllocs and the mpc AllocsPerRun suite
func appendI64s(dst []byte, src []int64) []byte {
	dst, buf := grow(dst, 8*len(src))
	i := 0
	for ; i+4 <= len(src); i += 4 {
		b := buf[8*i : 8*i+32]
		binary.LittleEndian.PutUint64(b[0:8], uint64(src[i]))
		binary.LittleEndian.PutUint64(b[8:16], uint64(src[i+1]))
		binary.LittleEndian.PutUint64(b[16:24], uint64(src[i+2]))
		binary.LittleEndian.PutUint64(b[24:32], uint64(src[i+3]))
	}
	for ; i < len(src); i++ {
		binary.LittleEndian.PutUint64(buf[8*i:8*i+8], uint64(src[i]))
	}
	return dst
}

// appendU64s is appendI64s for uint64 payloads.
//
//hetlint:zeroalloc encode hot path; pinned by TestDecoderZeroSteadyStateAllocs and the mpc AllocsPerRun suite
func appendU64s(dst []byte, src []uint64) []byte {
	dst, buf := grow(dst, 8*len(src))
	i := 0
	for ; i+4 <= len(src); i += 4 {
		b := buf[8*i : 8*i+32]
		binary.LittleEndian.PutUint64(b[0:8], src[i])
		binary.LittleEndian.PutUint64(b[8:16], src[i+1])
		binary.LittleEndian.PutUint64(b[16:24], src[i+2])
		binary.LittleEndian.PutUint64(b[24:32], src[i+3])
	}
	for ; i < len(src); i++ {
		binary.LittleEndian.PutUint64(buf[8*i:8*i+8], src[i])
	}
	return dst
}

// decodeI64s fills dst from body's little-endian words, 4-wide with the
// same fixed-window bounds-check-elimination shape as appendI64s.
// len(body) must be 8*len(dst).
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func decodeI64s(dst []int64, body []byte) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		b := body[8*i : 8*i+32]
		dst[i] = int64(binary.LittleEndian.Uint64(b[0:8]))
		dst[i+1] = int64(binary.LittleEndian.Uint64(b[8:16]))
		dst[i+2] = int64(binary.LittleEndian.Uint64(b[16:24]))
		dst[i+3] = int64(binary.LittleEndian.Uint64(b[24:32]))
	}
	for ; i < len(dst); i++ {
		dst[i] = int64(binary.LittleEndian.Uint64(body[8*i : 8*i+8]))
	}
}

// decodeU64s is decodeI64s for uint64 payloads.
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func decodeU64s(dst []uint64, body []byte) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		b := body[8*i : 8*i+32]
		dst[i] = binary.LittleEndian.Uint64(b[0:8])
		dst[i+1] = binary.LittleEndian.Uint64(b[8:16])
		dst[i+2] = binary.LittleEndian.Uint64(b[16:24])
		dst[i+3] = binary.LittleEndian.Uint64(b[24:32])
	}
	for ; i < len(dst); i++ {
		dst[i] = binary.LittleEndian.Uint64(body[8*i : 8*i+8])
	}
}

// parseHeader validates a 20-byte header and returns kind and payload
// length. maxPayload <= 0 means DefaultMaxPayload.
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func parseHeader(h []byte, m *Message, maxPayload int) (plen int, err error) {
	if binary.LittleEndian.Uint16(h[0:2]) != Magic {
		return 0, fmt.Errorf("%w: bad magic 0x%04x", ErrCorrupt, binary.LittleEndian.Uint16(h[0:2]))
	}
	if h[2] != Version {
		return 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, h[2])
	}
	kind := Kind(h[3])
	if kind >= kindCount {
		return 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	m.Kind = kind
	m.From = int32(binary.LittleEndian.Uint32(h[4:8]))
	m.To = int32(binary.LittleEndian.Uint32(h[8:12]))
	m.Words = binary.LittleEndian.Uint32(h[12:16])
	plen32 := binary.LittleEndian.Uint32(h[16:20])
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if uint64(plen32) > uint64(maxPayload) {
		return 0, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, plen32, maxPayload)
	}
	plen = int(plen32)
	switch kind {
	case KindNil:
		if plen != 0 {
			return 0, fmt.Errorf("%w: nil payload with plen %d", ErrCorrupt, plen)
		}
	case KindInt64, KindUint64:
		if plen != 8 {
			return 0, fmt.Errorf("%w: scalar payload with plen %d", ErrCorrupt, plen)
		}
	case KindInt64Slice, KindUint64Slice:
		if plen%8 != 0 {
			return 0, fmt.Errorf("%w: word-slice payload with plen %d", ErrCorrupt, plen)
		}
	case KindRef:
		if plen != 4 {
			return 0, fmt.Errorf("%w: ref payload with plen %d", ErrCorrupt, plen)
		}
	}
	return plen, nil
}

// decodePayload fills m's payload field from body (length already validated
// against the kind). Slice payloads alias or copy via the provided arena
// allocators; pass nil allocators to alias body directly (DecodeMessage).
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func decodePayload(m *Message, body []byte) {
	switch m.Kind {
	case KindInt64:
		m.I64 = int64(binary.LittleEndian.Uint64(body))
	case KindUint64:
		m.U64 = binary.LittleEndian.Uint64(body)
	case KindInt64Slice:
		n := len(body) / 8
		if cap(m.I64s) < n {
			m.I64s = make([]int64, n)
		}
		m.I64s = m.I64s[:n]
		decodeI64s(m.I64s, body)
	case KindUint64Slice:
		n := len(body) / 8
		if cap(m.U64s) < n {
			m.U64s = make([]uint64, n)
		}
		m.U64s = m.U64s[:n]
		decodeU64s(m.U64s, body)
	case KindBytes:
		if cap(m.Bytes) < len(body) {
			m.Bytes = make([]byte, len(body))
		}
		m.Bytes = m.Bytes[:len(body)]
		copy(m.Bytes, body)
	case KindRef:
		m.Ref = binary.LittleEndian.Uint32(body)
	}
}

// DecodeMessage decodes one frame from the front of b into m and returns
// the remaining bytes. Slice payloads are decoded into m's existing
// capacity when it suffices (so a reused Message decodes without
// allocating). A short b returns ErrTruncated.
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs
func DecodeMessage(b []byte, m *Message) (rest []byte, err error) {
	if len(b) < HeaderSize {
		return b, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	plen, err := parseHeader(b[:HeaderSize], m, 0)
	if err != nil {
		return b, err
	}
	if len(b) < HeaderSize+plen {
		return b, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncated, len(b)-HeaderSize, plen)
	}
	decodePayload(m, b[HeaderSize:HeaderSize+plen])
	return b[HeaderSize+plen:], nil
}

// A Decoder reads frames from an io.Reader with reusable scratch: a fixed
// header buffer, a growable payload buffer, and per-kind slab arenas
// (internal/arena) the decoded slice payloads point into. After the arenas
// reach their high-water mark, ReadMessage performs zero allocations per
// frame.
//
// Decoded slice payloads alias the arenas and stay valid until the next
// Release — in the engine, one Release per round, matching the synchronous
// round contract that inbox payloads are consumed before the next Exchange.
type Decoder struct {
	// MaxPayload bounds accepted payload lengths; 0 means DefaultMaxPayload.
	MaxPayload int

	hdr   [HeaderSize]byte
	body  []byte
	i64s  arena.Arena[int64]
	u64s  arena.Arena[uint64]
	bytes arena.Arena[byte]
}

// Release resets the arenas. Every slice payload decoded since the previous
// Release becomes invalid; capacity is retained.
func (d *Decoder) Release() {
	d.i64s.Reset()
	d.u64s.Reset()
	d.bytes.Reset()
}

// Drop releases the arenas' slabs and the payload buffer to the garbage
// collector — Release plus surrendering the high-water capacity. Clusters
// call it through ResetStats so a mid-run reset returns the decode scratch
// instead of leaking it into the next run.
func (d *Decoder) Drop() {
	d.i64s.Drop()
	d.u64s.Drop()
	d.bytes.Drop()
	d.body = nil
}

// ReadMessage reads exactly one frame from r into m. io.EOF at a frame
// boundary is returned as io.EOF; EOF inside a frame is ErrTruncated.
// Slice payloads point into the decoder's arenas (valid until Release).
//
//hetlint:zeroalloc decode hot path; pinned by TestDecoderZeroSteadyStateAllocs (arena growth is the sanctioned cap()-guarded idiom)
func (d *Decoder) ReadMessage(r io.Reader, m *Message) error {
	if _, err := io.ReadFull(r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	plen, err := parseHeader(d.hdr[:], m, d.MaxPayload)
	if err != nil {
		return err
	}
	if cap(d.body) < plen {
		d.body = make([]byte, plen)
	}
	body := d.body[:plen]
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	switch m.Kind {
	case KindInt64Slice:
		dst := d.i64s.AllocUninit(plen / 8)
		decodeI64s(dst, body)
		m.I64s = dst
	case KindUint64Slice:
		dst := d.u64s.AllocUninit(plen / 8)
		decodeU64s(dst, body)
		m.U64s = dst
	case KindBytes:
		dst := d.bytes.AllocUninit(plen)
		copy(dst, body)
		m.Bytes = dst
	default:
		decodePayload(m, body)
	}
	return nil
}
