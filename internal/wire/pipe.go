//go:build unix

package wire

import (
	"fmt"
	"os"
	"syscall"
)

// pipeLink is one AF_UNIX stream socketpair: the engine writes encoded
// frames into w and the delivery goroutine reads them back from r, so every
// byte genuinely crosses the kernel boundary even on one host.
type pipeLink struct {
	name string
	r, w *os.File
}

func (l *pipeLink) Name() string                { return l.name }
func (l *pipeLink) Read(p []byte) (int, error)  { return l.r.Read(p) }
func (l *pipeLink) Write(p []byte) (int, error) { return l.w.Write(p) }

func (l *pipeLink) Close() error {
	werr := l.w.Close()
	rerr := l.r.Close()
	if werr != nil {
		return werr
	}
	return rerr
}

// Pipe is the socketpair transport: one AF_UNIX SOCK_STREAM pair per
// machine slot. This is the single-host multi-process wire shape — the same
// file-descriptor I/O a forked worker would use — with the delivery
// endpoint living in-process.
type Pipe struct {
	links []Link
}

// NewPipe returns an unopened socketpair transport.
func NewPipe() *Pipe { return &Pipe{} }

// Name implements Transport.
func (*Pipe) Name() string { return "pipe" }

// Open implements Transport: one socketpair per slot.
func (p *Pipe) Open(slots int) ([]Link, error) {
	p.links = make([]Link, slots)
	for slot := 0; slot < slots; slot++ {
		fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("socketpair for %s: %w", LinkName(slot), err)
		}
		name := LinkName(slot)
		p.links[slot] = &pipeLink{
			name: name,
			w:    os.NewFile(uintptr(fds[0]), "wire-pipe-w-"+name),
			r:    os.NewFile(uintptr(fds[1]), "wire-pipe-r-"+name),
		}
	}
	return p.links, nil
}

// Close implements Transport.
func (p *Pipe) Close() error {
	var first error
	for _, l := range p.links {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.links = nil
	return first
}
