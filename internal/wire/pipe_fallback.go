//go:build !unix

package wire

import "net"

// On platforms without AF_UNIX socketpairs the pipe transport degrades to
// net.Pipe: still a duplex byte stream through the runtime's synchronous
// pipe, preserving the transport contract (framing, error propagation,
// wire_bytes accounting) without kernel file descriptors.

type pipeLink struct {
	name string
	a, b net.Conn // engine writes a, delivery reads b
}

func (l *pipeLink) Name() string                { return l.name }
func (l *pipeLink) Read(p []byte) (int, error)  { return l.b.Read(p) }
func (l *pipeLink) Write(p []byte) (int, error) { return l.a.Write(p) }

func (l *pipeLink) Close() error {
	aerr := l.a.Close()
	berr := l.b.Close()
	if aerr != nil {
		return aerr
	}
	return berr
}

// Pipe is the single-host byte-stream transport (see pipe.go for the unix
// socketpair implementation this stands in for).
type Pipe struct {
	links []Link
}

// NewPipe returns an unopened pipe transport.
func NewPipe() *Pipe { return &Pipe{} }

// Name implements Transport.
func (*Pipe) Name() string { return "pipe" }

// Open implements Transport: one synchronous duplex pipe per slot.
func (p *Pipe) Open(slots int) ([]Link, error) {
	p.links = make([]Link, slots)
	for slot := 0; slot < slots; slot++ {
		a, b := net.Pipe()
		p.links[slot] = &pipeLink{name: LinkName(slot), a: a, b: b}
	}
	return p.links, nil
}

// Close implements Transport.
func (p *Pipe) Close() error {
	var first error
	for _, l := range p.links {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.links = nil
	return first
}
