package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"hetmpc/internal/graph"
)

// TestParse covers the -transport spec grammar.
func TestParse(t *testing.T) {
	for _, spec := range []string{"", "inproc", " inproc "} {
		tr, err := Parse(spec)
		if err != nil || tr != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil transport", spec, tr, err)
		}
	}
	if tr, err := Parse("pipe"); err != nil || tr.Name() != "pipe" {
		t.Errorf("Parse(pipe) = %v, %v", tr, err)
	}
	if tr, err := Parse("tcp"); err != nil || tr.Name() != "tcp" {
		t.Errorf("Parse(tcp) = %v, %v", tr, err)
	}
	if _, err := Parse("carrier-pigeon"); err == nil {
		t.Error("Parse accepted an unknown transport")
	}
}

// TestLinkNames pins the link naming convention errors rely on.
func TestLinkNames(t *testing.T) {
	if LinkName(0) != "large" || LinkName(1) != "small-0" || LinkName(5) != "small-4" {
		t.Errorf("LinkName convention drifted: %q %q %q", LinkName(0), LinkName(1), LinkName(5))
	}
}

// TestTransportLinks drives raw bytes through every real transport's links:
// per-slot naming, write→read delivery, independence of links, and error
// (not hang) after Close.
func TestTransportLinks(t *testing.T) {
	for _, mk := range []func() Transport{func() Transport { return NewPipe() }, func() Transport { return NewTCP() }} {
		tr := mk()
		t.Run(tr.Name(), func(t *testing.T) {
			defer tr.Close()
			links, err := tr.Open(4)
			if err != nil {
				t.Fatal(err)
			}
			if len(links) != 4 {
				t.Fatalf("opened %d links, want 4", len(links))
			}
			for slot, l := range links {
				if l.Name() != LinkName(slot) {
					t.Errorf("slot %d named %q, want %q", slot, l.Name(), LinkName(slot))
				}
				msg := []byte(l.Name() + " payload")
				done := make(chan error, 1)
				go func() {
					_, werr := l.Write(msg)
					done <- werr
				}()
				got := make([]byte, len(msg))
				if _, err := io.ReadFull(l, got); err != nil {
					t.Fatalf("%s: read: %v", l.Name(), err)
				}
				if err := <-done; err != nil {
					t.Fatalf("%s: write: %v", l.Name(), err)
				}
				if !bytes.Equal(got, msg) {
					t.Errorf("%s: delivered %q, want %q", l.Name(), got, msg)
				}
			}
			// A closed link must error on both ends, never block.
			if err := links[1].Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if _, err := links[1].Write([]byte("x")); err == nil {
				t.Error("write to a closed link succeeded")
			}
			if _, err := links[1].Read(make([]byte, 1)); err == nil {
				t.Error("read from a closed link succeeded")
			}
			// Other links are unaffected.
			go links[2].Write([]byte("ok"))
			got := make([]byte, 2)
			if _, err := io.ReadFull(links[2], got); err != nil || string(got) != "ok" {
				t.Errorf("sibling link broken after close: %q, %v", got, err)
			}
		})
	}
}

// TestShardBlockRoundTrip checks the graph-shard block codec, including the
// chunked-reader path and sniffing against the text format.
func TestShardBlockRoundTrip(t *testing.T) {
	g := graph.GNMWeighted(100, 300, 9)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	stream := bytes.Clone(buf.Bytes())

	got, err := ReadGraph(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || got.Weighted != g.Weighted || len(got.Edges) != len(g.Edges) {
		t.Fatalf("graph shape changed: %d/%d/%d vs %d/%d/%d",
			got.N, len(got.Edges), boolInt(got.Weighted), g.N, len(g.Edges), boolInt(g.Weighted))
	}
	for i, e := range g.Edges {
		if got.Edges[i] != e {
			t.Fatalf("edge %d: %v vs %v", i, got.Edges[i], e)
		}
	}

	// Dribbled reads must still frame correctly.
	var s Shard
	if _, err := s.ReadFrom(&chunkReader{r: bytes.NewReader(stream), sizes: []int{1, 3}}); err != nil {
		t.Fatalf("chunked shard read: %v", err)
	}
	if int(s.N) != g.N || len(s.Edges) != len(g.Edges) || s.Offset != 0 {
		t.Fatal("chunked shard read mismatch")
	}

	// A mid-graph shard keeps its addressing.
	part := Shard{N: 100, Offset: 17, Weighted: true, Edges: g.Edges[17:40]}
	var pb bytes.Buffer
	if _, err := part.WriteTo(&pb); err != nil {
		t.Fatal(err)
	}
	var back Shard
	if _, err := back.ReadFrom(&pb); err != nil {
		t.Fatal(err)
	}
	if back.Offset != 17 || len(back.Edges) != 23 || back.Edges[0] != g.Edges[17] {
		t.Fatalf("shard addressing lost: %+v", back)
	}

	if !SniffBlock(bufio.NewReader(bytes.NewReader(stream))) {
		t.Error("SniffBlock missed a block stream")
	}
	var text bytes.Buffer
	if err := graph.Write(&text, g); err != nil {
		t.Fatal(err)
	}
	if SniffBlock(bufio.NewReader(bytes.NewReader(text.Bytes()))) {
		t.Error("SniffBlock misread the text format as binary")
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestCheckpointBlockRoundTrip checks the checkpoint block codec and its
// typed error behavior on malformed input.
func TestCheckpointBlockRoundTrip(t *testing.T) {
	ck := Checkpoint{Machine: -1, Round: 12, Words: 512, Payload: []byte("opaque state")}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	stream := bytes.Clone(buf.Bytes())
	var got Checkpoint
	if _, err := got.ReadFrom(bytes.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	if got.Machine != -1 || got.Round != 12 || got.Words != 512 || !bytes.Equal(got.Payload, ck.Payload) {
		t.Fatalf("checkpoint mismatch: %+v", got)
	}

	// Typed errors: truncation, magic, cross-kind confusion.
	if _, err := got.ReadFrom(bytes.NewReader(stream[:5])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated block: %v, want ErrTruncated", err)
	}
	bad := bytes.Clone(stream)
	bad[0] = 0
	if _, err := got.ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v, want ErrCorrupt", err)
	}
	var s Shard
	if _, err := s.ReadFrom(bytes.NewReader(stream)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("checkpoint read as shard: %v, want ErrCorrupt", err)
	}
	// A message frame is not a block frame.
	mf, err := AppendMessage(nil, &Message{Kind: KindNil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.ReadFrom(bytes.NewReader(mf)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("message frame read as block: %v, want ErrCorrupt", err)
	}
	if !strings.HasPrefix(ErrCorrupt.Error(), "wire:") {
		t.Error("error strings should carry the wire: prefix")
	}
}
