package wire

import (
	"fmt"
	"io"
	"strings"
)

// A Link is one duplex byte channel between the coordinating process and a
// destination machine's delivery endpoint. Writes push encoded frames
// toward the machine's inbox; reads pull them back out on the receiving
// side. Close unblocks any peer still reading or writing (the engine closes
// a failed link so a mid-round transport error surfaces instead of
// hanging).
type Link interface {
	io.Reader
	io.Writer
	io.Closer
	// Name identifies the link in errors and stats: "large" for the large
	// machine's link, "small-3" for small machine 3.
	Name() string
}

// A Transport opens the per-machine links the Exchange deliver phase runs
// over. Implementations must be usable for exactly one Cluster: Open is
// called once (lazily, at the first delivering Exchange), Close at
// Cluster.Close.
//
// A nil Transport — or one whose Open returns a nil slice — selects the
// in-process shared-memory path: delivery copies message structs directly
// into the inbox, bit-identical to the pre-wire engine, and wire_bytes
// stays 0.
type Transport interface {
	// Name reports the spec name ("inproc", "pipe", "tcp").
	Name() string
	// Open returns one link per machine slot (slot 0 = large machine,
	// slot 1+i = small machine i), or nil to select the shared-memory
	// path. Errors are wrapped in ErrTransport by the engine.
	Open(slots int) ([]Link, error)
	// Close releases every resource the transport holds. Safe to call
	// more than once and before Open.
	Close() error
}

// LinkName returns the canonical link name for a machine slot
// (0 = "large", 1+i = "small-i").
func LinkName(slot int) string {
	if slot == 0 {
		return "large"
	}
	return fmt.Sprintf("small-%d", slot-1)
}

// Inproc is the explicit in-process transport: the same shared-memory
// delivery a nil Config.Transport selects. It exists so "-transport inproc"
// and transport sweeps can name the baseline.
type Inproc struct{}

// Name implements Transport.
func (Inproc) Name() string { return "inproc" }

// Open implements Transport; a nil link slice selects the memcpy path.
func (Inproc) Open(int) ([]Link, error) { return nil, nil }

// Close implements Transport.
func (Inproc) Close() error { return nil }

// Parse resolves a -transport spec: "" or "inproc" select the shared-memory
// path (nil Transport), "pipe" a socketpair per machine, "tcp" a loopback
// TCP connection per machine.
func Parse(spec string) (Transport, error) {
	switch strings.TrimSpace(spec) {
	case "", "inproc":
		return nil, nil
	case "pipe":
		return NewPipe(), nil
	case "tcp":
		return NewTCP(), nil
	}
	return nil, fmt.Errorf("unknown transport %q (want inproc, pipe or tcp)", spec)
}
