// Package fault describes deterministic fault-injection schedules for the
// heterogeneous-MPC simulator: machine crashes (with optional
// restart-after-k-rounds downtime), transient slowdown windows, and the
// round-level checkpoint cadence the recovery protocol replicates state at.
//
// A Plan is pure data — it never mutates during a run — and every schedule
// it can express is a deterministic function of the plan and the master
// seed: the rate-derived crash schedule hashes (seed, round, machine), so
// two runs of the same plan see byte-identical fault sequences under any
// GOMAXPROCS. The engine that consumes a Plan (the Exchange hooks in
// internal/mpc) charges every recovery action in the same currencies as
// ordinary traffic — words, rounds, makespan — so fault tolerance is never
// free. See DESIGN.md §7.
//
// The zero Plan injects nothing and checkpoints never; a cluster built with
// &Plan{} is bit-identical to one built with a nil plan (tested).
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hetmpc/internal/xrand"
)

// Crash schedules one machine failure: small machine Machine fails at the
// barrier ending round Round and stays down for RestartAfter extra rounds
// before recovery completes (0 = restore immediately).
type Crash struct {
	Round        int
	Machine      int
	RestartAfter int
}

// Slowdown is a transient straggler window: small machine Machine runs
// Factor× slower (per word it moves) during rounds From..To inclusive.
// Unlike a Profile speed, the window is temporary and round-addressed; like
// a Profile speed it changes only the simulated clock, never the round
// structure.
type Slowdown struct {
	Machine  int
	From, To int
	Factor   float64
}

// Plan is a deterministic fault schedule plus the checkpoint cadence. The
// zero value injects nothing.
type Plan struct {
	Name string // for table/artifact labels; ParsePlan fills it in

	// Interval is the checkpoint cadence: every Interval completed rounds
	// the engine replicates each registered machine's state to its buddy
	// (charging the replication words and makespan). 0 disables
	// checkpointing; crashes then replay from round 0.
	Interval int

	// Crashes is the explicit schedule. Entries are processed in (Round,
	// Machine) order regardless of slice order.
	Crashes []Crash

	// CrashRate adds a seed-derived schedule on top of Crashes: each
	// (machine, round) pair fails independently with this probability,
	// decided by hashing (Seed, round, machine). 0 disables it.
	CrashRate float64

	// RestartAfter is the downtime applied to rate-derived crashes (and a
	// floor is never applied to explicit Crash entries, which carry their
	// own).
	RestartAfter int

	// Slowdowns are transient straggler windows.
	Slowdowns []Slowdown

	// Seed derives the CrashRate schedule. 0 means the engine substitutes
	// the cluster's master seed, so reseeding the run reseeds the faults.
	Seed uint64
}

// Active reports whether the plan can have any effect on a run. Inactive
// plans (including the zero Plan and nil) leave Stats bit-identical to a
// fault-free run.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Interval > 0 || len(p.Crashes) > 0 || p.CrashRate > 0 || len(p.Slowdowns) > 0
}

// Validate checks the plan against a k-machine cluster. Only small machines
// (0..k-1) can crash or slow down: the large machine is the paper's
// coordinator and its loss is out of scope (DESIGN.md §7).
func (p *Plan) Validate(k int) error {
	if p == nil {
		return nil
	}
	if p.Interval < 0 {
		return fmt.Errorf("fault: negative checkpoint interval %d", p.Interval)
	}
	if p.CrashRate < 0 || p.CrashRate >= 1 || math.IsNaN(p.CrashRate) {
		return fmt.Errorf("fault: crash rate %v outside [0,1)", p.CrashRate)
	}
	if p.RestartAfter < 0 {
		return fmt.Errorf("fault: negative restart-after %d", p.RestartAfter)
	}
	for _, cr := range p.Crashes {
		if cr.Machine < 0 || cr.Machine >= k {
			return fmt.Errorf("fault: crash machine %d outside cluster of K=%d", cr.Machine, k)
		}
		if cr.Round < 1 {
			return fmt.Errorf("fault: crash round %d, rounds are numbered from 1", cr.Round)
		}
		if cr.RestartAfter < 0 {
			return fmt.Errorf("fault: crash at round %d: negative restart-after %d", cr.Round, cr.RestartAfter)
		}
	}
	for _, s := range p.Slowdowns {
		if s.Machine < 0 || s.Machine >= k {
			return fmt.Errorf("fault: slowdown machine %d outside cluster of K=%d", s.Machine, k)
		}
		if s.From < 1 || s.To < s.From {
			return fmt.Errorf("fault: slowdown window [%d,%d] invalid, need 1 <= from <= to", s.From, s.To)
		}
		if s.Factor < 1 || math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("fault: slowdown factor %v, want a finite factor >= 1", s.Factor)
		}
	}
	return nil
}

// CrashAt reports whether machine crashes at the barrier ending round, and
// the downtime before its recovery completes. seed is the cluster's master
// seed, used when the plan's own Seed is 0. Explicit Crash entries take
// precedence over the rate schedule.
func (p *Plan) CrashAt(round, machine int, seed uint64) (restartAfter int, crashed bool) {
	if p == nil {
		return 0, false
	}
	for _, cr := range p.Crashes {
		if cr.Round == round && cr.Machine == machine {
			return cr.RestartAfter, true
		}
	}
	if p.CrashRate > 0 {
		s := p.Seed
		if s == 0 {
			s = seed
		}
		h := xrand.Split(xrand.Split(s^0xfa017_c4a5, uint64(round)), uint64(machine))
		if float64(h>>11)/(1<<53) < p.CrashRate {
			return p.RestartAfter, true
		}
	}
	return 0, false
}

// SlowFactor returns the combined transient slowdown of machine in round
// (overlapping windows multiply); 1 when no window is active.
func (p *Plan) SlowFactor(round, machine int) float64 {
	if p == nil || len(p.Slowdowns) == 0 {
		return 1
	}
	f := 1.0
	for _, s := range p.Slowdowns {
		if s.Machine == machine && round >= s.From && round <= s.To {
			f *= s.Factor
		}
	}
	return f
}

// HasSlowdowns reports whether any slowdown window exists (a fast-path
// guard for the per-round makespan scan).
func (p *Plan) HasSlowdowns() bool { return p != nil && len(p.Slowdowns) > 0 }

// Checkpointer is implemented by one machine's algorithm state so the
// recovery engine can replicate and restore it. Snapshot must return a deep
// copy (the engine holds it across rounds while the live state mutates) and
// its accounted size in words; Restore must reinstall a snapshot so that
// the machine's subsequent execution is indistinguishable from never having
// crashed. The engine only calls either between rounds, never concurrently
// with local computation.
type Checkpointer interface {
	Snapshot() (data any, words int)
	Restore(data any)
}

// Funcs adapts two closures to a Checkpointer.
type Funcs struct {
	SnapshotFn func() (any, int)
	RestoreFn  func(any)
}

// Snapshot calls SnapshotFn.
func (f Funcs) Snapshot() (any, int) { return f.SnapshotFn() }

// Restore calls RestoreFn.
func (f Funcs) Restore(data any) { f.RestoreFn(data) }

// ParsePlan builds a fault plan for a k-machine cluster from a CLI spec of
// `+`-joined clauses, mirroring mpc.ParseProfile:
//
//	none                      no faults (returns nil, as does the empty spec)
//	ckpt:I                    checkpoint every I rounds
//	crash:R:M[:K]             machine M crashes at round R, down K rounds
//	rate:P[:SEED]             each (machine, round) crashes with prob. P
//	slow:M:FROM:TO:FACTOR     machine M runs FACTOR× slower in rounds FROM..TO
//	restart:K                 downtime applied to rate-derived crashes
//
// e.g. "ckpt:8+crash:12:3" or "ckpt:16+rate:0.002+restart:2".
func ParsePlan(spec string, k int) (*Plan, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Plan{Name: spec}
	for _, clause := range strings.Split(spec, "+") {
		parts := strings.Split(clause, ":")
		args := make([]float64, 0, len(parts)-1)
		for _, a := range parts[1:] {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: plan %q: bad number %q", spec, a)
			}
			args = append(args, v)
		}
		integral := func(i int) (int, error) {
			if args[i] != math.Trunc(args[i]) {
				return 0, fmt.Errorf("fault: plan %q: %q must be an integer", spec, parts[1+i])
			}
			return int(args[i]), nil
		}
		switch parts[0] {
		case "ckpt":
			if len(args) != 1 {
				return nil, fmt.Errorf("fault: plan %q: want ckpt:INTERVAL", spec)
			}
			v, err := integral(0)
			if err != nil {
				return nil, err
			}
			p.Interval = v
		case "crash":
			if len(args) != 2 && len(args) != 3 {
				return nil, fmt.Errorf("fault: plan %q: want crash:ROUND:MACHINE[:RESTART]", spec)
			}
			var cr Crash
			var err error
			if cr.Round, err = integral(0); err != nil {
				return nil, err
			}
			if cr.Machine, err = integral(1); err != nil {
				return nil, err
			}
			if len(args) == 3 {
				if cr.RestartAfter, err = integral(2); err != nil {
					return nil, err
				}
			}
			p.Crashes = append(p.Crashes, cr)
		case "rate":
			if len(args) != 1 && len(args) != 2 {
				return nil, fmt.Errorf("fault: plan %q: want rate:P[:SEED]", spec)
			}
			p.CrashRate = args[0]
			if len(args) == 2 {
				// The seed is a full uint64: parse the raw token rather
				// than the float64 form, which would silently accept
				// negative values and corrupt seeds above 2^53.
				v, err := strconv.ParseUint(parts[2], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: plan %q: bad seed %q", spec, parts[2])
				}
				p.Seed = v
			}
		case "slow":
			if len(args) != 4 {
				return nil, fmt.Errorf("fault: plan %q: want slow:MACHINE:FROM:TO:FACTOR", spec)
			}
			var s Slowdown
			var err error
			if s.Machine, err = integral(0); err != nil {
				return nil, err
			}
			if s.From, err = integral(1); err != nil {
				return nil, err
			}
			if s.To, err = integral(2); err != nil {
				return nil, err
			}
			s.Factor = args[3]
			p.Slowdowns = append(p.Slowdowns, s)
		case "restart":
			if len(args) != 1 {
				return nil, fmt.Errorf("fault: plan %q: want restart:K", spec)
			}
			v, err := integral(0)
			if err != nil {
				return nil, err
			}
			p.RestartAfter = v
		default:
			return nil, fmt.Errorf("fault: unknown plan clause %q in %q (ckpt:…, crash:…, rate:…, slow:…, restart:…)", parts[0], spec)
		}
	}
	if err := p.Validate(k); err != nil {
		return nil, err
	}
	return p, nil
}
