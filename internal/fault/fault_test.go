package fault

import (
	"strings"
	"testing"
)

func TestZeroPlanInactive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan active")
	}
	if (&Plan{}).Active() {
		t.Fatal("zero plan active")
	}
	if _, crashed := nilPlan.CrashAt(5, 0, 7); crashed {
		t.Fatal("nil plan crashed")
	}
	if f := nilPlan.SlowFactor(5, 0); f != 1 {
		t.Fatalf("nil plan slow factor %v", f)
	}
	for _, p := range []*Plan{
		{Interval: 4},
		{Crashes: []Crash{{Round: 1, Machine: 0}}},
		{CrashRate: 0.1},
		{Slowdowns: []Slowdown{{Machine: 0, From: 1, To: 2, Factor: 2}}},
	} {
		if !p.Active() {
			t.Fatalf("plan %+v not active", p)
		}
	}
}

func TestExplicitCrashSchedule(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Round: 3, Machine: 1, RestartAfter: 2}}}
	if _, crashed := p.CrashAt(3, 0, 7); crashed {
		t.Fatal("wrong machine crashed")
	}
	if _, crashed := p.CrashAt(2, 1, 7); crashed {
		t.Fatal("wrong round crashed")
	}
	restart, crashed := p.CrashAt(3, 1, 7)
	if !crashed || restart != 2 {
		t.Fatalf("crash at (3,1): restart=%d crashed=%v", restart, crashed)
	}
}

// TestRateScheduleDeterministic: the rate-derived schedule is a pure
// function of (seed, round, machine), hits roughly the requested rate, and
// changes with the seed.
func TestRateScheduleDeterministic(t *testing.T) {
	p := &Plan{CrashRate: 0.05, RestartAfter: 1}
	count := func(seed uint64) int {
		n := 0
		for r := 1; r <= 200; r++ {
			for m := 0; m < 16; m++ {
				if restart, crashed := p.CrashAt(r, m, seed); crashed {
					if restart != 1 {
						t.Fatalf("rate crash restart %d, want plan default 1", restart)
					}
					n++
				}
			}
		}
		return n
	}
	a, b := count(7), count(7)
	if a != b {
		t.Fatalf("same seed, different schedules: %d vs %d", a, b)
	}
	// 200×16 trials at rate 0.05: expect 160, allow a wide deterministic band.
	if a < 80 || a > 260 {
		t.Fatalf("crash count %d far from expectation 160", a)
	}
	if c := count(8); c == a {
		t.Fatalf("seed change did not move the schedule (%d)", a)
	}
	// The plan's own Seed pins the schedule regardless of the cluster seed.
	p.Seed = 99
	if count(7) != count(123) {
		t.Fatal("plan seed not overriding cluster seed")
	}
}

func TestSlowFactorWindows(t *testing.T) {
	p := &Plan{Slowdowns: []Slowdown{
		{Machine: 2, From: 5, To: 10, Factor: 4},
		{Machine: 2, From: 8, To: 9, Factor: 2},
	}}
	if !p.HasSlowdowns() {
		t.Fatal("HasSlowdowns false")
	}
	cases := []struct {
		round, machine int
		want           float64
	}{
		{4, 2, 1}, {5, 2, 4}, {10, 2, 4}, {11, 2, 1},
		{8, 2, 8}, // overlapping windows multiply
		{8, 1, 1},
	}
	for _, c := range cases {
		if got := p.SlowFactor(c.round, c.machine); got != c.want {
			t.Fatalf("SlowFactor(%d, %d) = %v, want %v", c.round, c.machine, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []struct {
		name string
		p    Plan
		want string
	}{
		{"interval", Plan{Interval: -1}, "interval"},
		{"rate", Plan{CrashRate: 1.5}, "rate"},
		{"restart", Plan{RestartAfter: -2}, "restart"},
		{"crash machine", Plan{Crashes: []Crash{{Round: 1, Machine: 9}}}, "machine 9"},
		{"crash round", Plan{Crashes: []Crash{{Round: 0, Machine: 1}}}, "round"},
		{"crash restart", Plan{Crashes: []Crash{{Round: 1, Machine: 1, RestartAfter: -1}}}, "restart"},
		{"slow machine", Plan{Slowdowns: []Slowdown{{Machine: -1, From: 1, To: 2, Factor: 2}}}, "machine -1"},
		{"slow window", Plan{Slowdowns: []Slowdown{{Machine: 0, From: 3, To: 1, Factor: 2}}}, "window"},
		{"slow factor", Plan{Slowdowns: []Slowdown{{Machine: 0, From: 1, To: 2, Factor: 0.5}}}, "factor"},
	}
	for _, tc := range bad {
		err := tc.p.Validate(4)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	ok := Plan{
		Interval:  8,
		Crashes:   []Crash{{Round: 12, Machine: 3, RestartAfter: 2}},
		CrashRate: 0.01,
		Slowdowns: []Slowdown{{Machine: 0, From: 1, To: 100, Factor: 16}},
	}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParsePlan(t *testing.T) {
	if p, err := ParsePlan("", 8); err != nil || p != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	if p, err := ParsePlan("none", 8); err != nil || p != nil {
		t.Fatalf("none spec: %v %v", p, err)
	}
	p, err := ParsePlan("ckpt:8+crash:12:3:2+rate:0.01+slow:1:5:9:4+restart:1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Interval != 8 || p.CrashRate != 0.01 || p.RestartAfter != 1 {
		t.Fatalf("parsed plan %+v", p)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (Crash{Round: 12, Machine: 3, RestartAfter: 2}) {
		t.Fatalf("parsed crashes %+v", p.Crashes)
	}
	if len(p.Slowdowns) != 1 || p.Slowdowns[0] != (Slowdown{Machine: 1, From: 5, To: 9, Factor: 4}) {
		t.Fatalf("parsed slowdowns %+v", p.Slowdowns)
	}
	if p.Name == "" {
		t.Fatal("name not recorded")
	}
	if p, err = ParsePlan("rate:0.005:42", 8); err != nil || p.Seed != 42 {
		t.Fatalf("rate seed: %+v %v", p, err)
	}

	for _, bad := range []string{
		"nope", "ckpt", "ckpt:x", "ckpt:1.5", "crash:1", "crash:1:9", "crash:0:1",
		"rate:2", "slow:1:5:9", "slow:1:9:5:4", "slow:9:1:2:4", "restart:-1",
		"ckpt:8+bogus:1",
	} {
		if _, err := ParsePlan(bad, 8); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
