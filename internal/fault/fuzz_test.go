package fault

import (
	"reflect"
	"testing"
)

// FuzzParsePlan fuzzes the fault-plan spec grammar (DESIGN.md §7):
// ParsePlan must never panic, every accepted plan must already validate
// against the cluster it was parsed for, and the stamped Name (the spec
// itself — it names the plan in tables and artifacts) must round-trip to
// an identical plan.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"", "none",
		"ckpt:8", "ckpt:0", "ckpt:-1", "ckpt:8+rate:0.002",
		"crash:5:1", "crash:5:1:3", "crash:1e300:0", "crash:5:9",
		"rate:0.01", "rate:0.01:12345", "rate:2", "rate:NaN", "rate:0.5:-1",
		"slow:0:5:40:16", "slow:0:0:0:0", "slow:1:5:40:0.5",
		"restart:2", "restart:-2",
		"ckpt:8+slow:0:5:40:16", "bogus:1", "ckpt:8+",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		for _, k := range []int{2, 8} {
			p, err := ParsePlan(spec, k)
			if err != nil {
				if p != nil {
					t.Fatalf("ParsePlan(%q, %d) returned a plan alongside error %v", spec, k, err)
				}
				continue
			}
			if p == nil {
				// Only the default forms may resolve to the nil plan.
				if spec != "" && spec != "none" {
					t.Fatalf("ParsePlan(%q, %d) silently resolved to the nil default plan", spec, k)
				}
				continue
			}
			if verr := p.Validate(k); verr != nil {
				t.Fatalf("ParsePlan(%q, %d) accepted an invalid plan: %v", spec, k, verr)
			}
			if p.Name != spec {
				t.Fatalf("ParsePlan(%q, %d) stamped Name %q", spec, k, p.Name)
			}
			p2, err := ParsePlan(p.Name, k)
			if err != nil {
				t.Fatalf("ParsePlan(%q, %d) accepted, but its Name does not re-parse: %v", spec, k, err)
			}
			if !reflect.DeepEqual(p, p2) {
				t.Fatalf("ParsePlan(%q, %d) round trip diverged:\n first %#v\nsecond %#v", spec, k, p, p2)
			}
		}
	})
}
