package fault

import "hetmpc/internal/metrics"

// instrumentedCk wraps a Checkpointer with replication-work counters.
type instrumentedCk struct {
	ck            Checkpointer
	snapshots     *metrics.Counter
	snapshotWords *metrics.Counter
	restores      *metrics.Counter
}

// Instrument wraps ck so every Snapshot and Restore the recovery engine
// performs is counted: snapshots and their accounted word sizes (the
// checkpoint-barrier replication work) and restores (the crash round trips).
// Nil counters are inert, and a nil ck stays nil, so the wrapper is safe on
// every path the engine takes.
func Instrument(ck Checkpointer, snapshots, snapshotWords, restores *metrics.Counter) Checkpointer {
	if ck == nil {
		return nil
	}
	return &instrumentedCk{ck: ck, snapshots: snapshots, snapshotWords: snapshotWords, restores: restores}
}

func (w *instrumentedCk) Snapshot() (any, int) {
	data, words := w.ck.Snapshot()
	w.snapshots.Inc()
	w.snapshotWords.Add(int64(words))
	return data, words
}

func (w *instrumentedCk) Restore(data any) {
	w.restores.Inc()
	w.ck.Restore(data)
}
