// Package labeling implements the flow labeling scheme of Katz, Katz, Korman
// and Peleg [42] in the form the paper's MST algorithm needs (§3): a marker
// algorithm that, given a spanning forest F, assigns each vertex a label of
// O(log^2 n) bits, and a decoder that — from two labels alone — returns the
// maximum-weight edge on the path between the two vertices in F (or reports
// that they lie in different trees).
//
// The construction is a centroid decomposition: each vertex stores, for every
// ancestor centroid c in the centroid tree (at most ⌈log2 n⌉ + 1 of them), the
// pair (c, heaviest edge on the F-path from the vertex to c). For any two
// vertices in the same tree, their deepest common centroid-tree ancestor lies
// on the F-path between them, so the path maximum is the heavier of the two
// stored edges for that centroid. Labels have O(log n) entries of O(1) words,
// i.e. O(log^2 n) bits — matching the scheme cited by the paper.
//
// Weight comparisons use the global (W, U, V) tie-breaking order so that the
// "heaviest edge" is unique even with repeated weights.
package labeling

import (
	"hetmpc/internal/graph"
)

// Entry is one centroid record in a label.
type Entry struct {
	Centroid int        // the centroid vertex id
	Level    int        // depth in the centroid tree (root = 0)
	MaxEdge  graph.Edge // heaviest edge on the F-path vertex→centroid; W==0 when vertex==centroid
}

// Label is the per-vertex label: entries ordered by increasing level.
type Label []Entry

// Words returns the label size in machine words (4 words per entry), the
// unit used by the simulator's communication accounting.
func (l Label) Words() int { return 1 + 4*len(l) }

// Labels holds the labels of all vertices of the forest.
type Labels []Label

// Build runs the marker algorithm: it computes labels for the forest given
// by treeEdges over n vertices. Runs in O(n log n).
func Build(n int, treeEdges []graph.Edge) Labels {
	adj := make([][]graph.Half, n)
	deg := make([]int, n)
	for _, e := range treeEdges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := range adj {
		adj[v] = make([]graph.Half, 0, deg[v])
	}
	for _, e := range treeEdges {
		adj[e.U] = append(adj[e.U], graph.Half{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], graph.Half{To: e.U, W: e.W})
	}

	labels := make(Labels, n)
	removed := make([]bool, n)
	size := make([]int, n)

	// Iterative work list of (piece root, level) pairs; each piece is
	// processed by finding its centroid, labeling the piece from the
	// centroid, removing it and enqueueing the sub-pieces.
	type piece struct {
		root  int
		level int
	}
	stack := make([]piece, 0, n)
	for v := 0; v < n; v++ {
		if removed[v] || len(labels[v]) > 0 {
			continue // already covered by a processed tree
		}
		if len(adj[v]) == 0 {
			labels[v] = Label{{Centroid: v, Level: 0}}
			continue
		}
		// Process v's whole tree: every vertex eventually becomes the
		// centroid of its own piece and is then marked removed.
		stack = append(stack, piece{root: v, level: 0})
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := processPiece(p.root, p.level, adj, removed, size, labels)
			for _, h := range adj[c] {
				if !removed[h.To] {
					stack = append(stack, piece{root: h.To, level: p.level + 1})
				}
			}
			removed[c] = true
		}
	}
	return labels
}

// processPiece finds the centroid of the piece containing root (over
// non-removed vertices), appends an entry for it to every vertex of the
// piece, and returns the centroid.
func processPiece(root, level int, adj [][]graph.Half, removed []bool, size []int, labels Labels) int {
	// Collect the piece (BFS order) and compute subtree sizes bottom-up.
	order := collect(root, adj, removed)
	total := len(order)
	for _, v := range order {
		size[v] = 1
	}
	parent := bfsParents(root, adj, removed)
	for i := total - 1; i >= 0; i-- {
		v := order[i]
		if p := parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	// Find centroid: vertex minimizing the maximum component size after
	// removal.
	centroid, best := root, total+1
	for _, v := range order {
		worst := total - size[v]
		for _, h := range adj[v] {
			if !removed[h.To] && parent[h.To] == v && size[h.To] > worst {
				worst = size[h.To]
			}
		}
		if worst < best {
			centroid, best = v, worst
		}
	}
	// BFS from the centroid recording the running path-max edge.
	labels[centroid] = append(labels[centroid], Entry{Centroid: centroid, Level: level})
	type qi struct {
		v   int
		max graph.Edge
	}
	queue := []qi{{v: centroid}}
	seen := map[int]bool{centroid: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range adj[cur.v] {
			if removed[h.To] || seen[h.To] {
				continue
			}
			seen[h.To] = true
			edge := graph.NewEdge(cur.v, h.To, h.W)
			m := cur.max
			if m.W == 0 || m.Less(edge) {
				m = edge
			}
			labels[h.To] = append(labels[h.To], Entry{Centroid: centroid, Level: level, MaxEdge: m})
			queue = append(queue, qi{v: h.To, max: m})
		}
	}
	return centroid
}

func collect(root int, adj [][]graph.Half, removed []bool) []int {
	order := []int{root}
	seen := map[int]bool{root: true}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, h := range adj[v] {
			if !removed[h.To] && !seen[h.To] {
				seen[h.To] = true
				order = append(order, h.To)
			}
		}
	}
	return order
}

func bfsParents(root int, adj [][]graph.Half, removed []bool) map[int]int {
	parent := map[int]int{root: -1}
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range adj[v] {
			if removed[h.To] {
				continue
			}
			if _, ok := parent[h.To]; !ok {
				parent[h.To] = v
				queue = append(queue, h.To)
			}
		}
	}
	return parent
}

// Decode is the decoder algorithm D_flow: given the labels of u and v it
// returns the heaviest edge on the F-path between them and connected=true,
// or connected=false if they lie in different trees of F. Decoding uses only
// the two labels.
func Decode(lu, lv Label) (maxEdge graph.Edge, connected bool) {
	// Find the common centroid with the greatest level: that is the
	// centroid-tree LCA, which lies on the F-path u-v.
	bestLevel := -1
	var eu, ev graph.Edge
	same := false
	for _, a := range lu {
		for _, b := range lv {
			if a.Centroid == b.Centroid && a.Level > bestLevel {
				bestLevel = a.Level
				eu, ev = a.MaxEdge, b.MaxEdge
				same = true
			}
		}
	}
	if !same {
		return graph.Edge{}, false
	}
	// u == v case: both path maxima are zero.
	if eu.W == 0 {
		return ev, true
	}
	if ev.W == 0 {
		return eu, true
	}
	if eu.Less(ev) {
		return ev, true
	}
	return eu, true
}

// FLight reports whether edge e is F-light with respect to the forest whose
// labels are given: e is F-light if its endpoints are in different trees, or
// if e is not heavier than the heaviest edge on the F-path between its
// endpoints (§3: F-heavy edges cannot be MST edges).
func FLight(e graph.Edge, lu, lv Label) bool {
	maxEdge, connected := Decode(lu, lv)
	if !connected {
		return true
	}
	if maxEdge.W == 0 {
		// endpoints coincide in F's labeling — cannot happen for a real edge
		return false
	}
	// e is F-heavy iff e is strictly heavier than every edge on the path,
	// i.e. the path max is Less than e.
	return !maxEdge.Less(graph.NewEdge(e.U, e.V, e.W))
}
