package labeling

import (
	"math"
	"testing"
	"testing/quick"

	"hetmpc/internal/graph"
	"hetmpc/internal/xrand"
)

// refPathMax returns the heaviest edge on the u-v path of the forest, using
// BFS, or connected=false.
func refPathMax(n int, treeEdges []graph.Edge, u, v int) (graph.Edge, bool) {
	adj := make([][]graph.Half, n)
	for _, e := range treeEdges {
		adj[e.U] = append(adj[e.U], graph.Half{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], graph.Half{To: e.U, W: e.W})
	}
	type st struct {
		v   int
		max graph.Edge
	}
	seen := make([]bool, n)
	seen[u] = true
	queue := []st{{v: u}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.v == v {
			return cur.max, true
		}
		for _, h := range adj[cur.v] {
			if seen[h.To] {
				continue
			}
			seen[h.To] = true
			e := graph.NewEdge(cur.v, h.To, h.W)
			m := cur.max
			if m.W == 0 || m.Less(e) {
				m = e
			}
			queue = append(queue, st{v: h.To, max: m})
		}
	}
	return graph.Edge{}, false
}

func randomForest(n int, trees int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, 0, n)
	// Random recursive forest: vertex v attaches to a random earlier vertex
	// unless chosen as a new root.
	roots := 1
	for v := 1; v < n; v++ {
		if roots < trees && rng.IntN(n/trees) == 0 {
			roots++
			continue
		}
		u := rng.IntN(v)
		edges = append(edges, graph.NewEdge(u, v, int64(rng.IntN(1000))+1))
	}
	return edges
}

func TestDecodeMatchesBFSOnPath(t *testing.T) {
	// Deterministic path with increasing then decreasing weights.
	n := 16
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		w := int64(v + 1)
		if v >= n/2 {
			w = int64(n - v)
		}
		edges = append(edges, graph.NewEdge(v, v+1, w))
	}
	labels := Build(n, edges)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			got, ok := Decode(labels[u], labels[v])
			want, wok := refPathMax(n, edges, u, v)
			if !ok || !wok {
				t.Fatalf("path: %d-%d reported disconnected", u, v)
			}
			if got != want {
				t.Fatalf("path max %d-%d: got %v want %v", u, v, got, want)
			}
		}
	}
}

func TestDecodeRandomForests(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		n := 60
		edges := randomForest(n, 3, seed)
		labels := Build(n, edges)
		rng := xrand.New(seed + 100)
		for trial := 0; trial < 300; trial++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			got, ok := Decode(labels[u], labels[v])
			want, wok := refPathMax(n, edges, u, v)
			if ok != wok {
				t.Fatalf("seed %d: connectivity of %d,%d: got %v want %v", seed, u, v, ok, wok)
			}
			if ok && got != want {
				t.Fatalf("seed %d: path max %d-%d: got %v want %v", seed, u, v, got, want)
			}
		}
	}
}

func TestLabelSizeLogarithmic(t *testing.T) {
	// Labels must have O(log n) entries; a path is the worst case for naive
	// schemes but centroid decomposition keeps it logarithmic.
	n := 1024
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.NewEdge(v, v+1, int64(v)+1))
	}
	labels := Build(n, edges)
	limit := int(math.Log2(float64(n))) + 2
	for v, l := range labels {
		if len(l) > limit {
			t.Fatalf("label of %d has %d entries > %d", v, len(l), limit)
		}
		if len(l) == 0 {
			t.Fatalf("vertex %d has empty label", v)
		}
	}
}

func TestIsolatedAndSingleton(t *testing.T) {
	labels := Build(3, nil)
	for v := 0; v < 3; v++ {
		if len(labels[v]) != 1 {
			t.Fatalf("isolated vertex %d label %v", v, labels[v])
		}
	}
	if _, ok := Decode(labels[0], labels[1]); ok {
		t.Fatal("isolated vertices decoded as connected")
	}
	if _, ok := Decode(labels[0], labels[0]); !ok {
		t.Fatal("vertex not connected to itself")
	}
}

func TestFLightMatchesDefinition(t *testing.T) {
	// Build an MSF F of a random graph; an edge is F-light iff it is in the
	// MSF or it would replace a heavier path edge. Cross-check FLight against
	// the direct definition via refPathMax.
	for seed := uint64(1); seed <= 5; seed++ {
		g := graph.GNMWeighted(40, 120, seed)
		msf, _ := graph.KruskalMSF(g)
		labels := Build(g.N, msf)
		for _, e := range g.Edges {
			pathMax, connected := refPathMax(g.N, msf, e.U, e.V)
			wantLight := !connected || !pathMax.Less(e)
			if got := FLight(e, labels[e.U], labels[e.V]); got != wantLight {
				t.Fatalf("seed %d: FLight(%v) = %v, want %v", seed, e, got, wantLight)
			}
		}
		// KKT sanity: every MSF edge must be F-light w.r.t. its own forest.
		for _, e := range msf {
			if !FLight(e, labels[e.U], labels[e.V]) {
				t.Fatalf("MSF edge %v classified F-heavy", e)
			}
		}
	}
}

func TestMSTContainedInFLightEdges(t *testing.T) {
	// Fundamental KKT property used by §3: no F-heavy edge is in the MST of
	// the full graph, for any forest F of any subgraph.
	for seed := uint64(1); seed <= 4; seed++ {
		g := graph.GNMWeighted(30, 200, seed)
		// F = MSF of a random half of the edges.
		rng := xrand.New(seed)
		sub := make([]graph.Edge, 0, len(g.Edges)/2)
		for _, e := range g.Edges {
			if rng.IntN(2) == 0 {
				sub = append(sub, e)
			}
		}
		f, _ := graph.KruskalMSF(graph.New(g.N, sub, true))
		labels := Build(g.N, f)
		mst, _ := graph.KruskalMSF(g)
		for _, e := range mst {
			if !FLight(e, labels[e.U], labels[e.V]) {
				t.Fatalf("seed %d: MST edge %v classified F-heavy", seed, e)
			}
		}
	}
}

func TestWordsAccounting(t *testing.T) {
	l := Label{{Centroid: 1, Level: 0}, {Centroid: 2, Level: 1}}
	if l.Words() != 9 {
		t.Fatalf("Words = %d, want 9", l.Words())
	}
}

func TestQuickRandomTrees(t *testing.T) {
	prop := func(seed uint64) bool {
		n := 24
		edges := randomForest(n, 2, seed%512)
		labels := Build(n, edges)
		rng := xrand.New(seed)
		for i := 0; i < 20; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			got, ok := Decode(labels[u], labels[v])
			want, wok := refPathMax(n, edges, u, v)
			if ok != wok || (ok && u != v && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
