package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleRounds is a small timeline exercising every record kind and both
// busy-vector shapes.
func sampleRounds() []Round {
	return []Round{
		{Round: 1, Phase: "sort/route", Kind: KindExchange, Messages: 3, Words: 10,
			WireBytes: 128, Latency: 1, MaxTime: 2, Makespan: 3, Argmax: Large, Victim: None,
			SendWords: []int{10, 0, 0}, RecvWords: []int{0, 5, 5}, Busy: []float64{2, 1, 1}},
		{Round: 2, Phase: "sort", Kind: KindCheckpoint, Makespan: 2, Argmax: 0, Victim: None,
			ReplicationWords: 64, Checkpoints: 1, Busy: []float64{0, 2, 0}},
		{Round: 2, Phase: "sort", Kind: KindRecovery, Makespan: 4, Argmax: None, Victim: 1,
			Crashes: 1, RecoveryRounds: 2},
		{Round: 3, Phase: "", Kind: KindExchange, Latency: 1, Makespan: 1, Argmax: None, Victim: None},
	}
}

// TestJSONLRoundTrip: WriteJSONL → ReadJSONL reproduces the records exactly.
func TestJSONLRoundTrip(t *testing.T) {
	rounds := sampleRounds()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rounds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rounds) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, rounds)
	}
}

// TestReadJSONLSchemaRefusal: wrong schema version, wrong format tag, and an
// empty file all fail wrapping ErrSchema; a garbage body line fails with a
// line-numbered error.
func TestReadJSONLSchemaRefusal(t *testing.T) {
	for name, input := range map[string]string{
		"wrong version": `{"schema":99,"format":"hetmpc-trace"}`,
		"wrong format":  `{"schema":1,"format":"spans"}`,
		"not json":      `makespan,words`,
		"empty":         "",
	} {
		_, err := ReadJSONL(strings.NewReader(input))
		if !errors.Is(err, ErrSchema) {
			t.Fatalf("%s: err %v, want ErrSchema", name, err)
		}
	}
	_, err := ReadJSONL(strings.NewReader("{\"schema\":1,\"format\":\"hetmpc-trace\"}\n{bad"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("garbage record: err %v, want a line-2 error", err)
	}
}

// TestCollectorSink pins the streaming contract: without retain the
// collector stops buffering and the sink sees every record; with retain
// both paths fill; a nil sink restores buffering.
func TestCollectorSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New()
	tr.SetSink(sink, false)
	tr.Add(Round{Round: 1, Kind: KindExchange, Makespan: 2, Argmax: None, Victim: None})
	tr.Add(Round{Round: 2, Kind: KindExchange, Makespan: 3, Argmax: None, Victim: None})
	if tr.Len() != 0 {
		t.Fatalf("no-retain sink buffered %d rounds", tr.Len())
	}
	tr.SetSink(sink, true)
	tr.Add(Round{Round: 3, Kind: KindExchange, Makespan: 1, Argmax: None, Victim: None})
	if tr.Len() != 1 {
		t.Fatalf("retain sink buffered %d rounds, want 1", tr.Len())
	}
	tr.SetSink(nil, false)
	tr.Add(Round{Round: 4, Kind: KindExchange, Makespan: 1, Argmax: None, Victim: None})
	if tr.Len() != 2 {
		t.Fatalf("after clearing the sink: %d rounds buffered, want 2", tr.Len())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Round != 1 || got[2].Round != 3 {
		t.Fatalf("sink stream: %+v", got)
	}
}

// failWriter fails after n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestJSONLSinkStickyError: the first write failure is kept and surfaces at
// Close; Record never panics after it.
func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(&failWriter{n: 0})
	for i := 0; i < 10000; i++ { // overflow the bufio buffer to force the write
		sink.Record(Round{Round: i, Phase: strings.Repeat("x", 64)})
	}
	if err := sink.Close(); err == nil {
		t.Fatal("sticky write error lost")
	}
}

// TestWritePerfetto validates the trace-event JSON shape: the schema stamp,
// metadata naming every track, one phase span per record on the rounds
// track, per-machine busy spans, fault markers on the right tracks, and a
// time axis equal to the summed makespan.
func TestWritePerfetto(t *testing.T) {
	rounds := sampleRounds()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rounds); err != nil {
		t.Fatal(err)
	}
	var file struct {
		Schema      int `json:"schema"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if file.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", file.Schema, SchemaVersion)
	}
	threadNames := map[int]string{}
	var spans, machineSpans, instants int
	var lastEnd float64
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames[e.Tid] = e.Args["name"].(string)
			}
		case "X":
			if e.Tid == tidRounds {
				spans++
				if end := e.Ts + e.Dur; end > lastEnd {
					lastEnd = end
				}
			} else {
				machineSpans++
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if spans != len(rounds) {
		t.Fatalf("%d rounds-track spans, want %d", spans, len(rounds))
	}
	// sampleRounds busy vectors: 3 positive entries in record 0, 1 in record 1.
	if machineSpans != 4 {
		t.Fatalf("%d machine spans, want 4", machineSpans)
	}
	if instants != 2 { // one checkpoint, one recovery
		t.Fatalf("%d instant markers, want 2", instants)
	}
	if threadNames[tidRounds] != "rounds" || threadNames[tidMachineOffset] != "large" || threadNames[tidMachineOffset+1] != "small-0" {
		t.Fatalf("track names: %v", threadNames)
	}
	// Horizontal axis = Σ Makespan (3+2+4+1 = 10 units → 10000 µs).
	if lastEnd != 10*perfettoScale {
		t.Fatalf("trace ends at %v µs, want %v", lastEnd, 10*perfettoScale)
	}
	// The recovery marker lands on the victim's track (small-1 = slot 2 → tid 3).
	foundRecovery := false
	for _, e := range file.TraceEvents {
		if e.Ph == "i" && e.Cat == KindRecovery {
			foundRecovery = true
			if e.Tid != 1+1+tidMachineOffset {
				t.Fatalf("recovery marker on tid %d, want %d", e.Tid, 1+1+tidMachineOffset)
			}
		}
	}
	if !foundRecovery {
		t.Fatal("no recovery marker")
	}
}

// TestWritePerfettoEmpty: an empty timeline still renders a valid file with
// the metadata tracks (Perfetto loads it as an empty trace).
func TestWritePerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if _, ok := file["traceEvents"].([]any); !ok {
		t.Fatalf("missing traceEvents array: %v", file)
	}
}

// TestSummarizeEdgeCases covers the satellite checklist: empty trace,
// all-empty-round-only trace (silent barriers), single-machine cluster, and
// a fault-event-only timeline.
func TestSummarizeEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := Summarize(nil)
		if s.Rounds != 0 || s.Words != 0 || s.Makespan != 0 || len(s.Phases) != 0 {
			t.Fatalf("empty trace summary: %+v", s)
		}
	})
	t.Run("silent rounds only", func(t *testing.T) {
		// Barrier-only rounds: latency charged, no machine moved a word.
		rounds := []Round{
			{Phase: "idle", Kind: KindExchange, Latency: 1, Makespan: 1, Argmax: None, Victim: None},
			{Phase: "idle", Kind: KindExchange, Latency: 1, Makespan: 1, Argmax: None, Victim: None},
		}
		s := Summarize(rounds)
		if s.Rounds != 2 || s.Words != 0 || s.Makespan != 2 {
			t.Fatalf("silent summary: %+v", s)
		}
		p := s.Phases[0]
		if p.Top != None || p.TopTime != 0 || p.TopShare != 0 {
			t.Fatalf("silent rounds produced a bottleneck machine: %+v", p)
		}
		if p.Share != 1 {
			t.Fatalf("single phase share %v, want 1", p.Share)
		}
	})
	t.Run("single machine", func(t *testing.T) {
		// A cluster with only the large machine: one-slot busy vectors.
		rounds := []Round{
			{Phase: "solo", Kind: KindExchange, Words: 8, MaxTime: 4, Makespan: 5, Argmax: Large,
				Busy: []float64{4}},
			{Phase: "solo", Kind: KindExchange, Words: 2, MaxTime: 1, Makespan: 2, Argmax: Large,
				Busy: []float64{1}},
		}
		s := Summarize(rounds)
		p := s.Phases[0]
		if p.Top != Large || p.TopTime != 5 || p.TopShare != 1 {
			t.Fatalf("single-machine bottleneck: %+v", p)
		}
		if s.Makespan != 7 || s.Words != 10 {
			t.Fatalf("single-machine totals: %+v", s)
		}
	})
	t.Run("fault events only", func(t *testing.T) {
		rounds := []Round{
			{Phase: "ckpt", Kind: KindCheckpoint, Makespan: 3, Argmax: 0, Busy: []float64{0, 3}},
			{Phase: "ckpt", Kind: KindRecovery, Makespan: 4, Argmax: None, Victim: 2, Crashes: 1},
		}
		s := Summarize(rounds)
		if s.Rounds != 0 {
			t.Fatalf("fault-only trace counted %d exchange rounds", s.Rounds)
		}
		p := s.Phases[0]
		if p.Barriers != 2 || p.Makespan != 7 {
			t.Fatalf("fault-only phase: %+v", p)
		}
		if p.Top != 0 || p.TopTime != 3 {
			t.Fatalf("fault-only bottleneck: %+v", p)
		}
	})
}
