package trace

import "testing"

// TestCollectorStack pins the span-stack semantics: "/"-joined paths,
// depth-based truncation (the leak-cleanup contract of mpc.Span.End), and
// Reset dropping records while keeping open spans.
func TestCollectorStack(t *testing.T) {
	tr := New()
	if tr.Phase() != "" || tr.Depth() != 0 {
		t.Fatalf("fresh collector: phase %q depth %d", tr.Phase(), tr.Depth())
	}
	tr.Push("a")
	tr.Push("b")
	tr.Push("c")
	if tr.Phase() != "a/b/c" {
		t.Fatalf("phase %q, want a/b/c", tr.Phase())
	}
	tr.Truncate(1) // close c and b in one step, as a leaked-span cleanup would
	if tr.Phase() != "a" || tr.Depth() != 1 {
		t.Fatalf("after truncate: phase %q depth %d", tr.Phase(), tr.Depth())
	}
	tr.Truncate(5) // deeper than the stack: no-op
	if tr.Phase() != "a" {
		t.Fatalf("truncate past depth changed the stack to %q", tr.Phase())
	}
	tr.Add(Round{Phase: tr.Phase(), Kind: KindExchange, Makespan: 1})
	tr.Reset()
	if tr.Len() != 0 || tr.Phase() != "a" {
		t.Fatalf("Reset: len %d phase %q, want empty buffer with the span kept", tr.Len(), tr.Phase())
	}
	tr.Truncate(-1)
	if tr.Depth() != 0 {
		t.Fatalf("negative truncate left depth %d", tr.Depth())
	}
}

// TestSummarize pins the aggregation: phases in first-appearance order,
// shares partitioning the totals, exchange-vs-barrier counting, and the
// per-phase bottleneck machine from the summed busy vectors (argmax/
// max-time fallback when a record carries no vector).
func TestSummarize(t *testing.T) {
	rounds := []Round{
		{Phase: "a", Kind: KindExchange, Words: 10, Makespan: 4, Argmax: Large,
			Busy: []float64{3, 1, 0}},
		{Phase: "b", Kind: KindExchange, Words: 20, Makespan: 6, Argmax: 1,
			Busy: []float64{0, 2, 5}},
		{Phase: "a", Kind: KindCheckpoint, Words: 0, Makespan: 2, Argmax: 0,
			Busy: []float64{0, 4, 0}},
		// No busy vector: falls back to (Argmax, MaxTime).
		{Phase: "c", Kind: KindExchange, Words: 5, Makespan: 3, MaxTime: 2, Argmax: 1},
	}
	s := Summarize(rounds)
	if s.Rounds != 3 || s.Words != 35 || s.Makespan != 15 {
		t.Fatalf("totals: %+v", s)
	}
	if len(s.Phases) != 3 || s.Phases[0].Phase != "a" || s.Phases[1].Phase != "b" || s.Phases[2].Phase != "c" {
		t.Fatalf("phase order: %+v", s.Phases)
	}
	a := s.Phases[0]
	if a.Rounds != 1 || a.Barriers != 1 || a.Makespan != 6 || a.Share != 6.0/15 {
		t.Fatalf("phase a: %+v", a)
	}
	// Phase a busy: large 3, small-0 1+4=5 -> top is small machine 0.
	if a.Top != 0 || a.TopTime != 5 || a.TopShare != 5.0/8 {
		t.Fatalf("phase a top: %+v", a)
	}
	b := s.Phases[1]
	if b.Top != 1 || b.TopTime != 5 {
		t.Fatalf("phase b top: %+v", b)
	}
	cph := s.Phases[2]
	if cph.Top != 1 || cph.TopTime != 2 || cph.TopShare != 1 {
		t.Fatalf("phase c fallback top: %+v", cph)
	}
	var shares float64
	for _, p := range s.Phases {
		shares += p.Share
	}
	if shares != 1 {
		t.Fatalf("phase shares sum to %v, want 1", shares)
	}
}

// TestMachineName covers the id rendering conventions.
func TestMachineName(t *testing.T) {
	for id, want := range map[int]string{Large: "large", None: "-", 0: "small-0", 7: "small-7"} {
		if got := MachineName(id); got != want {
			t.Fatalf("MachineName(%d) = %q, want %q", id, got, want)
		}
	}
}
