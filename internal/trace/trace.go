// Package trace is the per-round observability layer of the simulator
// (DESIGN.md §9). The mpc engine, when built with a Collector in
// Config.Trace, emits one structured Round record for every makespan
// contribution it charges — ordinary exchange rounds (including silent
// barrier-only rounds), checkpoint barriers, and per-victim crash
// recoveries — tagged with the phase-span path the algorithm had open at
// the time (Cluster.Span).
//
// The records are exact by construction: summing the per-record Makespan
// contributions in order reproduces Stats.Makespan bit-for-bit (same
// additions, same order, from the same zero), and the per-round Words sum
// to Stats.TotalWords. A nil Collector is the zero-overhead path — the
// engine skips all recording and the run is bit-identical to the
// pre-trace simulator.
//
// trace deliberately depends on nothing inside the repo, so every layer
// (mpc, prims, algorithms, exp, the CLIs) can share its types.
package trace

import (
	"fmt"
	"sort"
)

// Machine-id conventions, mirroring mpc: the large machine is -1, small
// machines are 0..K-1, and None marks "no machine" (a silent round where
// only the barrier latency was paid).
const (
	Large = -1
	None  = -2
)

// Record kinds.
const (
	// KindExchange is an ordinary synchronous communication round.
	KindExchange = "exchange"
	// KindCheckpoint is a checkpoint-replication barrier of the recovery
	// engine (DESIGN.md §7); it charges makespan but no algorithm words.
	KindCheckpoint = "checkpoint"
	// KindRecovery is one victim's crash recovery: detection, restore (or
	// cold replay) and restart downtime, charged at the barrier ending the
	// crash round.
	KindRecovery = "recovery"
)

// Round is one makespan contribution of the run: an exchange round, a
// checkpoint barrier, or one victim's crash recovery. Per-machine slices
// are indexed by slot — slot 0 is the large machine, slot 1+i is small
// machine i — matching the engine's internal layout.
type Round struct {
	Round int    `json:"round"` // Stats.Rounds when the record was emitted
	Phase string `json:"phase"` // "/"-joined span path ("" = untagged)
	Kind  string `json:"kind"`

	Messages int   `json:"messages,omitempty"`
	Words    int64 `json:"words"` // algorithm words moved (0 on barriers)

	// WireBytes is the round's measured bytes on the transport links
	// (DESIGN.md §11); 0 under in-process shared-memory delivery.
	WireBytes int64 `json:"wire_bytes,omitempty"`

	Latency  float64 `json:"latency"`  // barrier latency charged
	MaxTime  float64 `json:"max_time"` // busiest machine's charge
	Makespan float64 `json:"makespan"` // exact contribution to Stats.Makespan

	// Argmax is the machine that set MaxTime (Large, a small-machine
	// index, or None when no machine moved words).
	Argmax int `json:"argmax"`

	// Victim is the recovering machine on KindRecovery records and None
	// otherwise.
	Victim int `json:"victim"`

	// Fault/speculation events folded into this record; all zero on plain
	// reliable rounds.
	SpecWords        int64 `json:"spec_words,omitempty"`
	Crashes          int   `json:"crashes,omitempty"`
	RecoveryRounds   int   `json:"recovery_rounds,omitempty"`
	ReplicationWords int64 `json:"replication_words,omitempty"`
	Checkpoints      int   `json:"checkpoints,omitempty"`

	// Per-slot detail (slot 0 = large machine, 1+i = small machine i):
	// words sent/received and the simulated time charged this round.
	SendWords []int     `json:"send_words,omitempty"`
	RecvWords []int     `json:"recv_words,omitempty"`
	Busy      []float64 `json:"busy,omitempty"`
}

// MachineName renders a trace machine id ("large", "small-3", "-").
func MachineName(id int) string {
	switch {
	case id == Large:
		return "large"
	case id >= 0:
		return fmt.Sprintf("small-%d", id)
	default:
		return "-"
	}
}

// Sink receives each Round as the engine records it — the streaming path
// for long runs (JSONLSink writes them straight to disk). Record runs
// synchronously on the round barrier, so implementations must not block on
// anything the round depends on.
type Sink interface {
	Record(Round)
}

// Collector accumulates the round timeline and the current phase-span
// stack. It is not safe for concurrent use — the model is synchronous
// rounds, and all engine recording runs on the round barrier.
type Collector struct {
	rounds []Round
	stack  []string
	path   string // cached "/"-join of stack
	sink   Sink
	retain bool // buffer rounds even when a sink is set
}

// New returns an empty collector, ready for Config.Trace.
func New() *Collector { return &Collector{} }

// Push opens a phase span; subsequent records carry the extended path.
func (t *Collector) Push(name string) {
	t.stack = append(t.stack, name)
	if t.path == "" {
		t.path = name
	} else {
		t.path += "/" + name
	}
}

// Depth returns the current span-stack depth (for Truncate).
func (t *Collector) Depth() int { return len(t.stack) }

// Truncate closes spans down to depth d. Closing by depth rather than one
// Pop at a time lets an enclosing span's End clean up inner spans leaked
// by error returns.
func (t *Collector) Truncate(d int) {
	if d < 0 {
		d = 0
	}
	if d >= len(t.stack) {
		return
	}
	t.stack = t.stack[:d]
	t.path = ""
	for i, s := range t.stack {
		if i > 0 {
			t.path += "/"
		}
		t.path += s
	}
}

// Phase returns the current "/"-joined span path ("" when no span is open).
func (t *Collector) Phase() string { return t.path }

// SetSink streams every subsequent record to s as it is added. With
// retain=false the collector stops buffering — the long-run mode where the
// timeline would not fit in memory (Rounds returns only what was buffered
// before); retain=true keeps the in-memory timeline alongside the stream.
// A nil s restores buffer-only collection.
func (t *Collector) SetSink(s Sink, retain bool) {
	t.sink = s
	t.retain = retain
}

// Add appends one record to the timeline (and streams it to the sink, when
// one is set).
func (t *Collector) Add(r Round) {
	if t.sink != nil {
		t.sink.Record(r)
		if !t.retain {
			return
		}
	}
	t.rounds = append(t.rounds, r)
}

// Rounds returns the recorded timeline (the collector's backing slice;
// callers must not mutate it).
func (t *Collector) Rounds() []Round { return t.rounds }

// Len returns the number of recorded rounds.
func (t *Collector) Len() int { return len(t.rounds) }

// Reset drops the recorded timeline. Open spans are kept: the collector's
// round buffer resets with the cluster's round clock (ResetStats), while
// span scopes belong to whatever algorithm is in flight.
func (t *Collector) Reset() { t.rounds = t.rounds[:0] }

// PhaseStat is one row of the critical-path summary: every record whose
// phase path equals Phase, aggregated.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	Rounds   int     `json:"rounds"`             // exchange rounds attributed here
	Barriers int     `json:"barriers,omitempty"` // checkpoint/recovery records
	Words    int64   `json:"words"`
	Makespan float64 `json:"makespan"`
	Share    float64 `json:"share"` // Makespan / Summary.Makespan

	// Top is the phase's bottleneck machine: the machine with the largest
	// summed per-round charge across the phase's records (None when the
	// phase never moved a word). TopTime is that sum; TopShare is
	// TopTime over the summed charges of all machines in the phase.
	Top      int     `json:"top"`
	TopTime  float64 `json:"top_time"`
	TopShare float64 `json:"top_share"`
}

// Summary is the aggregated view of a timeline: totals plus the per-phase
// decomposition, phases in first-appearance order. Because every record is
// attributed to exactly one (innermost) phase path, the phase rows
// partition the totals — Σ Phases[i].Makespan == Makespan and
// Σ Phases[i].Words == Words.
type Summary struct {
	Rounds   int         `json:"rounds"` // exchange rounds (== Stats.Rounds of the traced span)
	Words    int64       `json:"words"`
	Makespan float64     `json:"makespan"` // Σ per-record contributions, in order: bit-identical to Stats.Makespan
	Phases   []PhaseStat `json:"phases"`
}

// Summarize aggregates a timeline (typically Collector.Rounds, or several
// clusters' timelines concatenated) into the per-phase critical-path view.
func Summarize(rounds []Round) *Summary {
	s := &Summary{}
	idx := map[string]int{}
	busy := map[string]map[int]float64{} // phase -> machine id -> summed charge
	for _, r := range rounds {
		s.Makespan += r.Makespan
		s.Words += r.Words
		if r.Kind == KindExchange {
			s.Rounds++
		}
		i, ok := idx[r.Phase]
		if !ok {
			i = len(s.Phases)
			idx[r.Phase] = i
			s.Phases = append(s.Phases, PhaseStat{Phase: r.Phase})
			busy[r.Phase] = map[int]float64{}
		}
		p := &s.Phases[i]
		p.Makespan += r.Makespan
		p.Words += r.Words
		if r.Kind == KindExchange {
			p.Rounds++
		} else {
			p.Barriers++
		}
		b := busy[r.Phase]
		if len(r.Busy) > 0 {
			for slot, t := range r.Busy {
				if t > 0 {
					b[slotMachine(slot)] += t
				}
			}
		} else if r.Argmax != None {
			b[r.Argmax] += r.MaxTime
		}
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		if s.Makespan > 0 {
			p.Share = p.Makespan / s.Makespan
		}
		p.Top = None
		total := 0.0
		// Ascending id order: the float sum is evaluated in one fixed order
		// (bit-stable across runs), and strict > picks the smallest id among
		// tied maxima.
		ids := make([]int, 0, len(busy[p.Phase]))
		for id := range busy[p.Phase] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			t := busy[p.Phase][id]
			total += t
			if t > p.TopTime {
				p.Top, p.TopTime = id, t
			}
		}
		if total > 0 {
			p.TopShare = p.TopTime / total
		}
	}
	return s
}

// slotMachine converts a per-slot index (0 = large, 1+i = small i) to the
// machine-id convention.
func slotMachine(slot int) int {
	if slot == 0 {
		return Large
	}
	return slot - 1
}
