package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Export formats of a trace timeline (DESIGN.md §12): the Chrome
// trace-event JSON that Perfetto (ui.perfetto.dev) and chrome://tracing
// load, and a JSONL stream of raw Round records for long runs and for
// cmd/hettrace.

// SchemaVersion is the wire-format version stamped into both export
// formats; cmd/hettrace refuses files whose schema does not match its own.
const SchemaVersion = 1

// jsonlHeader is the first line of a JSONL trace file: the schema and a
// format tag, so a truncated or foreign file is refused before any record
// is parsed.
type jsonlHeader struct {
	Schema int    `json:"schema"`
	Format string `json:"format"`
}

// jsonlFormat tags the JSONL header.
const jsonlFormat = "hetmpc-trace"

// WriteJSONL writes the timeline as a JSONL stream: one schema header line,
// then one Round per line in record order.
func WriteJSONL(w io.Writer, rounds []Round) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Schema: SchemaVersion, Format: jsonlFormat}); err != nil {
		return err
	}
	for i := range rounds {
		if err := enc.Encode(&rounds[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrSchema is wrapped by readers that meet a trace file whose schema
// version (or format tag) does not match this build's SchemaVersion.
var ErrSchema = errors.New("trace: schema mismatch")

// ReadJSONL reads a WriteJSONL stream back: it validates the header line
// (wrapping ErrSchema on a version or format mismatch) and returns the
// records in order. Blank lines are tolerated; any other malformed line is
// an error naming its line number.
func ReadJSONL(r io.Reader) ([]Round, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var rounds []Round
	seenHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if !seenHeader {
			var h jsonlHeader
			if err := json.Unmarshal([]byte(text), &h); err != nil || h.Format != jsonlFormat {
				return nil, fmt.Errorf("trace: line 1 is not a %q header: %w", jsonlFormat, ErrSchema)
			}
			if h.Schema != SchemaVersion {
				return nil, fmt.Errorf("trace: file schema %d, this build reads %d: %w", h.Schema, SchemaVersion, ErrSchema)
			}
			seenHeader = true
			continue
		}
		var rec Round
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rounds = append(rounds, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("trace: empty file: %w", ErrSchema)
	}
	return rounds, nil
}

// JSONLSink streams Round records as they are recorded — the long-run path
// where buffering the whole timeline in the Collector is unwanted. Wire it
// with Collector.SetSink; Close flushes. Errors are sticky: the first write
// failure is kept and returned by Close, so the synchronous record path
// never has to handle I/O errors.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink streaming to w, with the schema header
// already staged.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	s.enc = json.NewEncoder(s.bw)
	s.err = s.enc.Encode(jsonlHeader{Schema: SchemaVersion, Format: jsonlFormat})
	return s
}

// Record writes one round (a no-op after the first error).
func (s *JSONLSink) Record(r Round) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(&r)
}

// Close flushes and returns the first error of the stream's lifetime.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// perfettoScale maps one simulated time unit to Chrome trace-event
// microseconds: 1 unit renders as 1ms, so a round-latency-1 cluster shows
// rounds at millisecond pitch.
const perfettoScale = 1000.0

// perfettoEvent is one Chrome trace-event. Only the fields the exporter
// emits are declared; ts and dur are in microseconds.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the trace-event JSON object format: Perfetto and
// chrome://tracing both accept extra top-level keys, so the schema version
// rides along for hettrace and the CI smoke check.
type perfettoFile struct {
	Schema          int             `json:"schema"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// Track layout: everything is one process; tid 0 is the per-round phase
// track, tid 1 the large machine, tid 2+i small machine i.
const (
	perfettoPid      = 0
	tidRounds        = 0
	tidMachineOffset = 1 // slot s renders on tid s+1
)

// WritePerfetto renders the timeline as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) and chrome://tracing:
//
//   - a "rounds" track carrying one span per record, named by its phase
//     path and categorized by its kind, so the phase structure of the run
//     reads as a timeline;
//   - one track per machine (large first, then small machines) carrying
//     that machine's busy-time span of each round — the per-machine cost
//     attribution view;
//   - instant-event markers for the fault records: a checkpoint marker on
//     the rounds track, a crash-recovery marker on the victim's track.
//
// Time is the simulated clock: spans start at the cumulative makespan of
// the records before them and last the record's Makespan (machine spans:
// the machine's busy charge), so the horizontal axis is exactly
// Stats.Makespan.
func WritePerfetto(w io.Writer, rounds []Round) error {
	slots := 1
	for i := range rounds {
		if n := len(rounds[i].Busy); n > slots {
			slots = n
		}
	}
	events := make([]perfettoEvent, 0, 2*len(rounds)+slots+2)
	events = append(events, perfettoEvent{
		Name: "process_name", Ph: "M", Pid: perfettoPid,
		Args: map[string]any{"name": "hetmpc cluster"},
	})
	events = append(events, perfettoEvent{
		Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: tidRounds,
		Args: map[string]any{"name": "rounds"},
	})
	for slot := 0; slot < slots; slot++ {
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: slot + tidMachineOffset,
			Args: map[string]any{"name": MachineName(slotMachine(slot))},
		})
	}

	t := 0.0 // cumulative simulated time
	for i := range rounds {
		r := &rounds[i]
		name := r.Phase
		if name == "" {
			name = "(untagged)"
		}
		args := map[string]any{
			"round":  r.Round,
			"kind":   r.Kind,
			"words":  r.Words,
			"argmax": MachineName(r.Argmax),
		}
		if r.WireBytes > 0 {
			args["wire_bytes"] = r.WireBytes
		}
		if r.Messages > 0 {
			args["messages"] = r.Messages
		}
		events = append(events, perfettoEvent{
			Name: name, Cat: r.Kind, Ph: "X",
			Ts: t * perfettoScale, Dur: r.Makespan * perfettoScale,
			Pid: perfettoPid, Tid: tidRounds, Args: args,
		})
		for slot, busy := range r.Busy {
			if busy <= 0 {
				continue
			}
			events = append(events, perfettoEvent{
				Name: name, Cat: r.Kind, Ph: "X",
				Ts: t * perfettoScale, Dur: busy * perfettoScale,
				Pid: perfettoPid, Tid: slot + tidMachineOffset,
			})
		}
		switch r.Kind {
		case KindCheckpoint:
			events = append(events, perfettoEvent{
				Name: fmt.Sprintf("checkpoint @%d", r.Round), Cat: r.Kind, Ph: "i", S: "p",
				Ts: t * perfettoScale, Pid: perfettoPid, Tid: tidRounds,
				Args: map[string]any{"replication_words": r.ReplicationWords},
			})
		case KindRecovery:
			tid := tidRounds
			if r.Victim >= 0 {
				tid = 1 + r.Victim + tidMachineOffset // victim's small-machine slot
			}
			events = append(events, perfettoEvent{
				Name: fmt.Sprintf("recovery %s @%d", MachineName(r.Victim), r.Round), Cat: r.Kind, Ph: "i", S: "p",
				Ts: t * perfettoScale, Pid: perfettoPid, Tid: tid,
				Args: map[string]any{
					"victim":          MachineName(r.Victim),
					"recovery_rounds": r.RecoveryRounds,
				},
			})
		}
		t += r.Makespan
	}
	data, err := json.MarshalIndent(perfettoFile{
		Schema:          SchemaVersion,
		DisplayTimeUnit: "ms",
		TraceEvents:     events,
	}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
