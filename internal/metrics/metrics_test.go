package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsInert pins the zero-overhead contract: every constructor
// on a nil registry returns nil, every instrument method on a nil receiver
// is a no-op, and none of it allocates.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", ExpBuckets(1, 2, 4))
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out live instruments: %v %v %v", c, g, h)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		c.Inc()
		g.Set(1.5)
		h.Observe(2.5)
		_ = c.Value()
		_ = g.Value()
		_ = h.Sum()
		_ = h.Count()
	})
	if allocs != 0 {
		t.Fatalf("nil instruments allocated %v per op, want 0", allocs)
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
}

// TestInstrumentIdentity: same name+labels returns the same instrument;
// different labels (or label order) are distinct; kind mismatch panics.
func TestInstrumentIdentity(t *testing.T) {
	r := New()
	a := r.Counter("words", "machine", "small-0")
	b := r.Counter("words", "machine", "small-0")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	other := r.Counter("words", "machine", "small-1")
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Add(5)
	if other.Value() != 0 {
		t.Fatal("label dimensions share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("words", "machine", "small-0")
}

// TestHistogramBuckets pins the le (at-or-below) bucket semantics, the
// overflow bucket, and the exact sum/count bookkeeping.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count %d, want 7", h.Count())
	}
	want := 0.5 + 1 + 1.5 + 10 + 99 + 100 + 1e6
	if h.Sum() != want {
		t.Fatalf("sum %v, want %v", h.Sum(), want)
	}
	s := r.Snapshot()
	if len(s) != 1 || s[0].Kind != KindHistogram {
		t.Fatalf("snapshot %+v", s)
	}
	counts := []int64{2, 2, 2, 1} // le-1: {0.5, 1}; le-10: {1.5, 10}; le-100: {99, 100}; +Inf: {1e6}
	for i, b := range s[0].Buckets {
		if b.Count != counts[i] {
			t.Fatalf("bucket %d count %d, want %d (%+v)", i, b.Count, counts[i], s[0].Buckets)
		}
	}
	if s[0].Buckets[3].Le != nil {
		t.Fatal("overflow bucket carries a bound")
	}
}

// TestCounterConcurrency: counters take concurrent adds without loss (the
// wire transports update per-link counters from reader goroutines).
func TestCounterConcurrency(t *testing.T) {
	r := New()
	c := r.Counter("bytes", "link", "large")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("concurrent adds lost updates: %d, want 16000", got)
	}
}

// TestSnapshotDeterministic: registration order does not leak into the
// snapshot — it is sorted by name then labels — and WriteJSON is
// byte-deterministic with the schema header.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := New()
		names := []struct{ name, k, v string }{
			{"zz", "", ""},
			{"aa", "machine", "small-1"},
			{"aa", "machine", "small-0"},
		}
		for _, i := range order {
			n := names[i]
			if n.k == "" {
				r.Counter(n.name).Add(int64(i))
			} else {
				r.Counter(n.name, n.k, n.v).Add(int64(i))
			}
		}
		return r
	}
	var bufA, bufB bytes.Buffer
	if err := build([]int{0, 1, 2}).WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{2, 1, 0}).WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	// Same instruments, different registration order and values: structure
	// (name order) must match; compare the name sequences.
	var a, b struct {
		Schema  int      `json:"schema"`
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal(bufA.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bufB.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if a.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", a.Schema, SchemaVersion)
	}
	for i := range a.Metrics {
		if a.Metrics[i].Name != b.Metrics[i].Name || a.Metrics[i].Labels["machine"] != b.Metrics[i].Labels["machine"] {
			t.Fatalf("snapshot order depends on registration order:\n%v\n%v", a.Metrics, b.Metrics)
		}
	}
	wantOrder := []string{"aa", "aa", "zz"}
	for i, s := range a.Metrics {
		if s.Name != wantOrder[i] {
			t.Fatalf("snapshot not sorted: %v", a.Metrics)
		}
	}
	if a.Metrics[0].Labels["machine"] != "small-0" {
		t.Fatalf("labels not sorted within a name: %v", a.Metrics)
	}
}

// TestExpBuckets pins the geometric layout and the argument guard.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0,2,3) did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

// TestWriteJSONNil: a nil registry still writes a valid, schema-stamped,
// empty snapshot (the CLIs can dump unconditionally).
func TestWriteJSONNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": 1`) {
		t.Fatalf("missing schema header: %s", buf.String())
	}
}
