// Package metrics is the aggregation layer of the observability stack
// (DESIGN.md §12): a zero-dependency registry of named counters, gauges and
// fixed-bucket histograms with label dimensions (machine, link, phase, …).
// The mpc engine, the wire transports, the placement estimator and the
// fault engine all publish through it when a Registry is installed in
// mpc.Config.Metrics; a nil Registry is the zero-overhead path — every
// instrument constructor on a nil Registry returns a nil instrument, every
// instrument method on a nil receiver is a no-op, and the engine skips all
// recording, so an uninstrumented run is bit-identical to the pre-metrics
// simulator (the same contract as the nil trace.Collector).
//
// Identity and determinism: an instrument is identified by its name plus
// its ordered label pairs; asking the registry for the same identity twice
// returns the same instrument, and asking for it with a different
// instrument kind panics (a programming error, never a data error).
// Snapshot renders the registry sorted by name then labels, so the exported
// JSON is byte-deterministic for a deterministic run.
//
// Concurrency: Counter and Gauge are atomic — the wire transports update
// per-link counters from reader goroutines. Histogram is not synchronized;
// the engine observes histograms only at the serial round barrier, matching
// the synchronous-rounds model.
//
// metrics deliberately depends on nothing inside the repo, so every layer
// (trace, wire, sched, fault, mpc, exp, the CLIs) can share it.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SchemaVersion is the wire-format version of the snapshot JSON (and of the
// observability artifacts generally; internal/exp and internal/trace stamp
// the same constant so hettrace can refuse mismatched files uniformly).
const SchemaVersion = 1

// Instrument kinds, as rendered in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotone atomic int64. Counters accumulate for the lifetime
// of the registry; they are not rebased by mpc.Cluster.ResetStats (the
// Prometheus convention — rates and deltas are the reader's job).
type Counter struct {
	v atomic.Int64
}

// Add adds d (no-op on a nil receiver).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc adds 1 (no-op on a nil receiver).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the latest set value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// exact sum and count of every observation. It is not safe for concurrent
// use — the engine observes on the serial round barrier.
type Histogram struct {
	bounds []float64 // ascending upper bounds; observations above the last land in the +Inf overflow
	counts []int64   // len(bounds)+1; the last is the overflow bucket
	sum    float64
	n      int64
}

// Observe records v (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// Sum returns the exact sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// ExpBuckets returns n ascending upper bounds start, start·factor,
// start·factor², … — the standard fixed-bucket layout for latency- and
// size-shaped distributions. It panics on a non-positive start, a factor
// <= 1 or n < 1 (a programming error in the instrumentation site).
func ExpBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d): want start > 0, factor > 1, n >= 1", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// instrument is one registered instrument with its identity.
type instrument struct {
	name   string
	labels []string // ordered k, v pairs
	kind   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds the instruments. The zero value is NOT ready; use New. A
// nil *Registry is the documented zero-overhead path: every constructor
// returns nil and every lookup is skipped.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*instrument
	ins  []*instrument
}

// New returns an empty registry, ready for mpc.Config.Metrics.
func New() *Registry {
	return &Registry{byID: map[string]*instrument{}}
}

// id builds the identity key. Label pairs are part of the identity in the
// order given; instrumentation sites use one fixed order per name.
func id(name string, labels []string) string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: instrument %q: odd label list %q (want key, value pairs)", name, labels))
	}
	if len(labels) == 0 {
		return name
	}
	return name + "\x00" + strings.Join(labels, "\x00")
}

// lookup returns the instrument of the identity, creating it via mk on first
// use and panicking when the identity is already registered as another kind.
func (r *Registry) lookup(kind, name string, labels []string, mk func() *instrument) *instrument {
	key := id(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byID[key]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("metrics: instrument %q registered as %s, requested as %s", name, in.kind, kind))
		}
		return in
	}
	in := mk()
	in.name, in.kind = name, kind
	in.labels = append([]string(nil), labels...)
	r.byID[key] = in
	r.ins = append(r.ins, in)
	return in
}

// Counter returns the counter of name with the given ordered label pairs,
// registering it on first use. Nil-safe: a nil registry returns a nil
// counter, whose methods are no-ops.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(KindCounter, name, labels, func() *instrument {
		return &instrument{c: &Counter{}}
	}).c
}

// Gauge returns the gauge of name with the given ordered label pairs,
// registering it on first use. Nil-safe like Counter.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(KindGauge, name, labels, func() *instrument {
		return &instrument{g: &Gauge{}}
	}).g
}

// Histogram returns the fixed-bucket histogram of name with the given
// ordered label pairs, registering it with the bounds on first use (later
// calls reuse the registered bounds and ignore the argument). Nil-safe like
// Counter.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(KindHistogram, name, labels, func() *instrument {
		b := append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("metrics: histogram %q: bounds %v not ascending", name, bounds))
		}
		return &instrument{h: &Histogram{bounds: b, counts: make([]int64, len(b)+1)}}
	}).h
}

// Bucket is one histogram bucket of a snapshot: the count of observations
// at or below the upper bound Le (the overflow bucket renders Le as +Inf,
// which JSON cannot carry, so it is emitted with Le omitted).
type Bucket struct {
	Le    *float64 `json:"le,omitempty"` // nil = the +Inf overflow bucket
	Count int64    `json:"count"`
}

// Sample is one instrument of a snapshot. Counter values are exact int64;
// gauge and histogram values are float64.
type Sample struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Value   int64             `json:"value,omitempty"`   // counter
	Gauge   float64           `json:"gauge,omitempty"`   // gauge
	Sum     float64           `json:"sum,omitempty"`     // histogram
	Count   int64             `json:"count,omitempty"`   // histogram observations
	Buckets []Bucket          `json:"buckets,omitempty"` // histogram
}

// Snapshot renders every instrument, sorted by name then labels, so a
// deterministic run exports byte-identical JSON. Nil-safe: a nil registry
// snapshots empty.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ins := append([]*instrument(nil), r.ins...)
	r.mu.Unlock()
	sort.SliceStable(ins, func(a, b int) bool {
		if ins[a].name != ins[b].name {
			return ins[a].name < ins[b].name
		}
		return strings.Join(ins[a].labels, "\x00") < strings.Join(ins[b].labels, "\x00")
	})
	out := make([]Sample, 0, len(ins))
	for _, in := range ins {
		s := Sample{Name: in.name, Kind: in.kind}
		if len(in.labels) > 0 {
			s.Labels = make(map[string]string, len(in.labels)/2)
			for i := 0; i+1 < len(in.labels); i += 2 {
				s.Labels[in.labels[i]] = in.labels[i+1]
			}
		}
		switch in.kind {
		case KindCounter:
			s.Value = in.c.Value()
		case KindGauge:
			s.Gauge = in.g.Value()
		case KindHistogram:
			s.Sum, s.Count = in.h.sum, in.h.n
			s.Buckets = make([]Bucket, len(in.h.counts))
			for i, c := range in.h.counts {
				if i < len(in.h.bounds) {
					le := in.h.bounds[i]
					s.Buckets[i] = Bucket{Le: &le, Count: c}
				} else {
					s.Buckets[i] = Bucket{Count: c}
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// snapshotFile is the wire format of WriteJSON: the schema version plus the
// sorted samples.
type snapshotFile struct {
	Schema  int      `json:"schema"`
	Metrics []Sample `json:"metrics"`
}

// WriteJSON writes the snapshot as indented JSON with the schema version —
// the METRICS_*.json format of the CLIs. Nil-safe (an empty snapshot still
// carries the schema header).
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteSamples(w, r.Snapshot())
}

// WriteSamples writes an already-taken snapshot in the WriteJSON format, for
// callers that hold the samples but no longer the registry (a BENCH
// artifact's metrics field, say).
func WriteSamples(w io.Writer, samples []Sample) error {
	if samples == nil {
		samples = []Sample{}
	}
	data, err := json.MarshalIndent(snapshotFile{Schema: SchemaVersion, Metrics: samples}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
