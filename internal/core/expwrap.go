package core

import (
	"hetmpc/internal/graph"
	"hetmpc/internal/xrand"
)

// BaswanaSenReference runs the original Baswana-Sen algorithm locally on g
// (the whole graph as one machine's input) and returns the (2k-1)-spanner.
// It exists for experiment E6, which compares the original against the
// paper's modified variant (Figure 1 / Lemma 4.3).
func BaswanaSenReference(g *graph.Graph, k int, seed uint64) []graph.Edge {
	verts, ces := graphToClusterEdges(g)
	return baswanaSenLocal(verts, ces, k, xrand.New(seed))
}

// ModifiedBaswanaSenReference runs Algorithm 2 locally with edge-sampling
// probability p (experiment E6).
func ModifiedBaswanaSenReference(g *graph.Graph, k int, p float64, seed uint64) []graph.Edge {
	verts, ces := graphToClusterEdges(g)
	return modifiedBaswanaSenLocal(verts, ces, k, p, xrand.New(seed))
}

func graphToClusterEdges(g *graph.Graph) ([]int, []clusterEdge) {
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	ces := make([]clusterEdge, 0, len(g.Edges))
	for _, e := range g.Edges {
		ces = append(ces, clusterEdge{U: e.U, V: e.V, Orig: e})
	}
	return verts, ces
}
