package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// ColoringResult is the output of the Appendix C.5 algorithm.
type ColoringResult struct {
	Colors        []int // proper coloring with colors in [0, Δ]
	MaxColor      int
	ConflictEdges int64
	Retries       int
	Stats         Stats
}

// Coloring computes a (Δ+1)-coloring in O(1) rounds (Theorem C.7, after
// Assadi-Chen-Khanna [6]): every vertex's Θ(log n) color list is derived
// from a broadcast shared seed (so no per-vertex dissemination is needed);
// the small machines ship exactly the conflicting edges — those whose
// endpoint lists intersect, O(n polylog n) of them w.h.p. (Lemma 4.1 of [6])
// — and the large machine completes a proper list-coloring.
//
// For Δ ≤ polylog n the whole graph has O(n polylog n) edges and is shipped
// directly (also O(1) rounds). The list-coloring completion is greedy with
// retry-on-failure (DESIGN.md substitution 4); retries are counted.
func Coloring(c *mpc.Cluster, g *graph.Graph) (*ColoringResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("Coloring")
	}
	sp := c.Span("coloring")
	n := g.N
	res := &ColoringResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	if len(g.Edges) == 0 {
		res.Colors = make([]int, n)
		return res, nil
	}
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	// Δ via aggregation.
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			degItems[i] = append(degItems[i],
				prims.KV[int64]{K: int64(e.U), V: 1},
				prims.KV[int64]{K: int64(e.V), V: 1})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, degAtLarge, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return nil, err
	}
	maxDeg := 1
	for _, d := range degAtLarge {
		if int(d) > maxDeg {
			maxDeg = int(d)
		}
	}
	res.MaxColor = maxDeg
	logn := math.Log2(float64(n) + 2)
	listLen := int(math.Ceil(2 * logn))

	// Small-Δ fallback: the whole graph is Õ(n) and fits the large machine.
	if maxDeg+1 <= 2*int(logn*logn) {
		all, err := prims.GatherToLarge(c, edges, prims.EdgeWords)
		if err != nil {
			return nil, err
		}
		res.Colors = greedyColorComplete(n, all, maxDeg, nil)
		if res.Colors == nil {
			return nil, fmt.Errorf("core: greedy (Δ+1)-coloring failed on the full graph")
		}
		return res, nil
	}

	maxRetries := 5
	for retry := 0; retry <= maxRetries; retry++ {
		seed, err := prims.BroadcastSeed(c)
		if err != nil {
			return nil, err
		}
		listHash := xrand.NewHash(xrand.Split(seed, 3), 6)
		list := func(v int) []int {
			out := make([]int, listLen)
			for j := 0; j < listLen; j++ {
				out[j] = int(listHash.Eval(uint64(v)*1024+uint64(j)) % uint64(maxDeg+1))
			}
			return out
		}
		// Ship the conflicting edges.
		conflicts := make([][]graph.Edge, kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if listsIntersect(list(e.U), list(e.V)) {
					conflicts[i] = append(conflicts[i], e)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		cnt, err := prims.SumToLarge(c, countsOf(conflicts))
		if err != nil {
			return nil, err
		}
		res.ConflictEdges = cnt
		if cnt > int64(c.LargeCap()/(4*prims.EdgeWords)) {
			res.Retries++
			continue // extraordinarily unlucky lists
		}
		confEdges, err := prims.GatherToLarge(c, conflicts, prims.EdgeWords)
		if err != nil {
			return nil, err
		}
		// Large machine: greedy list-coloring of the conflict graph; all
		// other vertices take their first list color (their lists are
		// disjoint from every neighbor's list).
		colors := listColorConflicts(n, confEdges, list)
		if colors == nil {
			res.Retries++
			continue
		}
		for v := 0; v < n; v++ {
			if colors[v] < 0 {
				colors[v] = list(v)[0]
			}
		}
		res.Colors = colors
		return res, nil
	}
	return nil, fmt.Errorf("core: list coloring failed after %d retries", maxRetries)
}

func listsIntersect(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return true
		}
	}
	return false
}

// listColorConflicts colors the conflict-graph vertices from their lists
// (descending conflict degree), using Kuhn-style augmentation when a vertex
// is stuck: it tries to steal a list color from a neighbor that can itself
// move to another color, recursively. On clique-like conflict graphs this is
// exactly bipartite-matching augmentation, which finds the proper
// list-coloring whose existence Lemma C.8 guarantees. Returns nil only if
// augmentation fails for some vertex (the caller retries with fresh lists).
// Non-conflict vertices keep color -1.
func listColorConflicts(n int, confEdges []graph.Edge, list func(int) []int) []int {
	adj := make(map[int][]int)
	for _, e := range confEdges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	verts := make([]int, 0, len(adj))
	for v := range adj {
		verts = append(verts, v)
	}
	slices.SortFunc(verts, func(a, b int) int {
		if c := cmp.Compare(len(adj[b]), len(adj[a])); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	free := func(v, c int) bool {
		for _, u := range adj[v] {
			if colors[u] == c {
				return false
			}
		}
		return true
	}
	visited := make(map[int]bool)
	var assign func(v int, depth int) bool
	assign = func(v int, depth int) bool {
		if depth > 64 {
			return false
		}
		for _, c := range list(v) {
			if free(v, c) {
				colors[v] = c
				return true
			}
		}
		// Augment: steal a color from a movable neighbor.
		for _, c := range list(v) {
			for _, u := range adj[v] {
				if colors[u] != c || visited[u] {
					continue
				}
				visited[u] = true
				colors[u] = -1
				colors[v] = c
				if assign(u, depth+1) {
					return true
				}
				colors[v] = -1
				colors[u] = c
			}
		}
		return false
	}
	for _, v := range verts {
		clear(visited)
		visited[v] = true
		if !assign(v, 0) {
			return nil // retry with fresh lists
		}
	}
	return colors
}

// greedyColorComplete colors the whole (shipped) graph greedily with at most
// maxColor+1 colors; pre is an optional pre-coloring. Returns nil only if
// some vertex exhausts the palette, which cannot happen for a (Δ+1) palette.
func greedyColorComplete(n int, edges []graph.Edge, maxColor int, pre []int) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	if pre != nil {
		copy(colors, pre)
	}
	for v := 0; v < n; v++ {
		if colors[v] >= 0 {
			continue
		}
		used := make(map[int]bool, len(adj[v]))
		for _, u := range adj[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		for col := 0; col <= maxColor; col++ {
			if !used[col] {
				colors[v] = col
				break
			}
		}
		if colors[v] < 0 {
			return nil
		}
	}
	return colors
}
