package core

import (
	"math"
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

func TestMinCutUnweightedKnown(t *testing.T) {
	// Cycle: min cut 2.
	cyc := graph.Cycles(64, 1, 3)
	c := newCluster(t, cyc.N, cyc.M(), 7)
	res, err := MinCutUnweighted(c, cyc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("cycle min cut %d, want 2", res.Value)
	}
	// Disconnected: 0.
	two := graph.Cycles(60, 2, 5)
	c2 := newCluster(t, two.N, two.M(), 7)
	res2, err := MinCutUnweighted(c2, two)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != 0 {
		t.Fatalf("disconnected min cut %d, want 0", res2.Value)
	}
	// Star: 1 (singleton cut of a leaf).
	s := graph.Star(40)
	c3 := newCluster(t, s.N, s.M(), 7)
	res3, err := MinCutUnweighted(c3, s)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Value != 1 {
		t.Fatalf("star min cut %d, want 1", res3.Value)
	}
}

func TestMinCutUnweightedPlanted(t *testing.T) {
	for _, cut := range []int{2, 4} {
		g := graph.PlantedCut(64, 250, cut, uint64(cut)+11, false)
		want := graph.StoerWagner(g)
		c := newCluster(t, g.N, g.M(), 13)
		res, err := MinCutUnweighted(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("planted cut %d: got %d want %d", cut, res.Value, want)
		}
	}
}

func TestMinCutAgainstReference(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := graph.ConnectedGNM(48, 300, seed, false)
		want := graph.StoerWagner(g)
		c := newCluster(t, g.N, g.M(), seed*7)
		res, err := MinCutUnweighted(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("seed %d: got %d want %d", seed, res.Value, want)
		}
	}
}

func TestApproxMinCutWeighted(t *testing.T) {
	g := graph.PlantedCut(64, 300, 3, 17, true)
	want := graph.StoerWagner(g)
	eps := 0.25
	c := newCluster(t, g.N, g.M(), 5)
	res, err := ApproxMinCut(c, g, eps)
	if err != nil {
		t.Fatal(err)
	}
	lo := float64(want) * (1 - eps - 0.1)
	hi := float64(want) * (1 + eps + 0.1)
	if float64(res.Value) < lo || float64(res.Value) > hi {
		t.Fatalf("approx cut %d outside [%.1f, %.1f] (exact %d)", res.Value, lo, hi, want)
	}
}

func TestApproxMinCutDense(t *testing.T) {
	// Dense graph with a large min cut: the skeleton path must engage.
	g := graph.Complete(48, false, 1)
	for i := range g.Edges {
		g.Edges[i].W = 3
	}
	g.Weighted = true
	want := graph.StoerWagner(g) // 47*3 = 141
	c := newCluster(t, g.N, g.M(), 9)
	res, err := ApproxMinCut(c, g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Value)-float64(want)) > 0.45*float64(want) {
		t.Fatalf("dense approx cut %d vs exact %d", res.Value, want)
	}
}

func checkMISRun(t *testing.T, g *graph.Graph, seed uint64) *MISResult {
	t.Helper()
	c := newCluster(t, g.N, g.M(), seed)
	res, err := MIS(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMIS(g, res.Set); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMISVariousGraphs(t *testing.T) {
	checkMISRun(t, graph.GNM(96, 500, 3), 5)
	checkMISRun(t, graph.Star(64), 5)
	checkMISRun(t, graph.Path(80), 5)
	checkMISRun(t, graph.Complete(32, false, 1), 5)
	checkMISRun(t, graph.Grid(8, 10), 5)
	checkMISRun(t, graph.New(20, nil, false), 5) // empty: all vertices
}

func TestMISIterationsLogLogDelta(t *testing.T) {
	// Iterations must stay tiny and grow (at most) like log log Δ.
	sparse := graph.GNM(256, 512, 1)
	dense := graph.GNM(256, 8000, 2)
	rS := checkMISRun(t, sparse, 7)
	rD := checkMISRun(t, dense, 7)
	if rS.Iterations > 8 || rD.Iterations > 9 {
		t.Fatalf("too many iterations: sparse %d dense %d", rS.Iterations, rD.Iterations)
	}
}

func TestMISStarIncludesLeaves(t *testing.T) {
	res := checkMISRun(t, graph.Star(50), 3)
	if len(res.Set) < 2 {
		t.Fatalf("star MIS size %d (leaves should be independent)", len(res.Set))
	}
}

func checkColoringRun(t *testing.T, g *graph.Graph, seed uint64) *ColoringResult {
	t.Helper()
	c := newCluster(t, g.N, g.M(), seed)
	res, err := Coloring(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckColoring(g, res.Colors, res.MaxColor); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestColoringSmallDelta(t *testing.T) {
	// Δ ≤ polylog: the direct-ship path.
	checkColoringRun(t, graph.Cycles(90, 1, 3), 5)
	checkColoringRun(t, graph.Grid(9, 9), 5)
	checkColoringRun(t, graph.GNM(128, 400, 7), 5)
}

func TestColoringLargeDelta(t *testing.T) {
	// Δ above the 2·log²n fallback threshold: the list-sampling path must
	// engage (conflict edges shipped, list-coloring completed at the large
	// machine) and the result must still be proper.
	g := graph.Complete(280, false, 2) // Δ = 279 > 2·(log2 282)² = 162
	c, err := mpc.New(mpc.Config{N: g.N, M: g.M(), Gamma: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Coloring(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckColoring(g, res.Colors, res.MaxColor); err != nil {
		t.Fatal(err)
	}
	if res.ConflictEdges == 0 {
		t.Fatal("list-sampling path did not engage (0 conflict edges on K_n)")
	}
}

func TestColoringUsesAtMostDeltaPlusOne(t *testing.T) {
	g := graph.GNM(128, 1000, 11)
	res := checkColoringRun(t, g, 7)
	if res.MaxColor != g.MaxDegree() {
		t.Fatalf("palette %d, want Δ=%d", res.MaxColor, g.MaxDegree())
	}
}

func TestTwoVsOneCycle(t *testing.T) {
	for parts := 1; parts <= 2; parts++ {
		g := graph.Cycles(128, parts, uint64(parts)+3)
		c := newCluster(t, g.N, g.M(), 5)
		res, err := TwoVsOneCycle(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != parts {
			t.Fatalf("got %d cycles, want %d", res.Cycles, parts)
		}
		// The headline: O(1) rounds.
		if res.Stats.Rounds > 5 {
			t.Fatalf("2-vs-1 cycle used %d rounds", res.Stats.Rounds)
		}
	}
	// Reject non-cycle inputs.
	c := newCluster(t, 10, 5, 1)
	if _, err := TwoVsOneCycle(c, graph.Path(10)); err == nil {
		t.Fatal("path accepted as cycle instance")
	}
}

func TestAPSPOracle(t *testing.T) {
	g := graph.ConnectedGNM(96, 700, 3, false)
	c := newCluster(t, g.N, g.M(), 7)
	oracle, err := BuildAPSPOracle(c, g)
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Adj()
	for _, src := range []int{0, 13, 47} {
		exact := graph.BFSDist(adj, src)
		for v := 0; v < g.N; v += 7 {
			est := oracle.Dist(src, v)
			if exact[v] == math.MaxInt {
				if est != math.MaxInt64 {
					t.Fatalf("unreachable pair got estimate %d", est)
				}
				continue
			}
			if est < int64(exact[v]) {
				t.Fatalf("oracle below true distance: %d < %d", est, exact[v])
			}
			if exact[v] > 0 && est > int64(oracle.Stretch)*int64(exact[v]) {
				t.Fatalf("stretch violated: est %d exact %d stretch %d", est, exact[v], oracle.Stretch)
			}
		}
	}
}
