package core

import (
	"fmt"
	"math"
	"sort"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/sketch"
	"hetmpc/internal/unionfind"
	"hetmpc/internal/xrand"
)

// ConnectivityResult is the output of the Appendix C.1 algorithm.
type ConnectivityResult struct {
	Labels     []int // per-vertex component label (smallest member id)
	Components int
	Phases     int // Borůvka phases executed on the large machine (local)
	Stats      Stats
}

// Connectivity identifies the connected components in O(1) rounds
// (Theorem C.1): the small machines build linear ℓ0-sampling sketches of
// their shares of each vertex's incidence vector, the sketches are summed by
// aggregation (Property 1) and shipped to the large machine — O(n polylog n)
// bits in total — which then runs Borůvka locally, sampling an outgoing edge
// of each component from the summed sketches of fresh rounds.
//
// Shared randomness is a single broadcast seed, replacing [36]'s shared
// random bits exactly as the paper describes.
func Connectivity(c *mpc.Cluster, g *graph.Graph) (*ConnectivityResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("Connectivity")
	}
	sp := c.Span("connectivity")
	n := g.N
	res := &ConnectivityResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	phases := int(math.Ceil(math.Log2(float64(n)+2))) + 8
	universe := int64(n) * int64(n)
	// Levels beyond log2(support) are always empty: the support of any
	// sketched vector is at most 2m, so cap the level count there.
	levels := 2
	for u := 1; u < 2*len(g.Edges)+2; u <<= 1 {
		levels++
	}
	levels += 2
	maxLevels := 2
	for u := int64(1); u < universe; u <<= 1 {
		maxLevels++
	}
	if levels > maxLevels {
		levels = maxLevels
	}
	families := make([]*sketch.Family, phases)
	for t := range families {
		families[t] = sketch.NewFamilyLevels(levels, xrand.Split(seed, uint64(t)+1))
	}
	skWords := families[0].NewSketch(universe).Words()
	// One edge updater per family: precomputed fingerprint power tables plus
	// a shared hash/fingerprint evaluation for the two endpoint updates of
	// each edge. Updaters are read-only and shared across the small-machine
	// goroutines.
	updaters := make([]*sketch.EdgeUpdater, phases)
	for t := range updaters {
		updaters[t] = families[t].NewEdgeUpdater(n)
	}

	// Small machines: partial sketches per (phase, vertex), merged by
	// aggregation with the linear Merge combine. The whole block is the
	// "sketch" phase of the trace timeline (its rounds are the aggregation
	// shipping the summed sketches to the large machine).
	ssp := c.Span("sketch")
	items := make([][]prims.KV[*sketch.Sketch], kk)
	if err := c.ForSmall(func(i int) error {
		arenas := make([]*sketch.Arena, phases)
		for t := range arenas {
			arenas[t] = families[t].NewArena(universe)
		}
		partial := make(map[int64]*sketch.Sketch)
		sketchFor := func(t int, v int) *sketch.Sketch {
			key := int64(t)*int64(n) + int64(v)
			s, ok := partial[key]
			if !ok {
				s = arenas[t].NewSketch()
				partial[key] = s
			}
			return s
		}
		for _, e := range edges[i] {
			for t := 0; t < phases; t++ {
				su := sketchFor(t, e.U)
				sv := sketchFor(t, e.V)
				updaters[t].AddEdgeBoth(su, sv, e)
			}
		}
		keys := make([]int64, 0, len(partial))
		for key := range partial {
			keys = append(keys, key)
		}
		prims.SortInts(keys)
		for _, key := range keys {
			items[i] = append(items[i], prims.KV[*sketch.Sketch]{K: key, V: partial[key]})
		}
		return nil
	}); err != nil {
		//hetlint:span error path: the run aborts and no Stats or trace records are consumed from the leaked sketch span
		return nil, err
	}
	// The combine merges in place: AggregateByKey passes ownership of both
	// arguments, and nothing reads a partial sketch after it is combined.
	combine := func(a, b *sketch.Sketch) *sketch.Sketch {
		if err := a.Merge(b); err != nil {
			// Same family by construction; a mismatch is a bug.
			panic(err)
		}
		return a
	}
	_, atLarge, err := prims.AggregateByKey(c, items, skWords, combine, true)
	if err != nil {
		//hetlint:span error path: the run aborts and no Stats or trace records are consumed from the leaked sketch span
		return nil, err
	}
	ssp.End()

	// Large machine: local Borůvka with fresh sketches per phase.
	dsu := unionfind.New(n)
	for t := 0; t < phases; t++ {
		// Sum member sketches per current component.
		sums := make(map[int]*sketch.Sketch)
		for v := 0; v < n; v++ {
			s, ok := atLarge[int64(t)*int64(n)+int64(v)]
			if !ok {
				continue // isolated vertex: no sketch
			}
			r := dsu.Find(v)
			if cur, ok := sums[r]; ok {
				if err := cur.Merge(s); err != nil {
					return nil, err
				}
			} else {
				sums[r] = s.Clone()
			}
		}
		roots := make([]int, 0, len(sums))
		for r := range sums {
			roots = append(roots, r)
		}
		sort.Ints(roots)
		progress := false
		allZero := true
		for _, r := range roots {
			s := sums[r]
			if s.IsZero() {
				continue
			}
			allZero = false
			idx, _, ok := families[t].Query(s)
			if !ok {
				continue // sampler failure: retry next phase
			}
			u, v := sketch.DecodeEdgeKey(idx, n)
			if dsu.Union(u, v) {
				progress = true
			}
		}
		res.Phases++
		if allZero {
			break
		}
		_ = progress
	}
	// Verify completion: any nonzero component sum left means we ran out of
	// phases (vanishingly unlikely with 2 log n + 6 phases).
	lastT := res.Phases - 1
	sums := make(map[int]*sketch.Sketch)
	for v := 0; v < n; v++ {
		if s, ok := atLarge[int64(lastT)*int64(n)+int64(v)]; ok {
			r := dsu.Find(v)
			if cur, ok := sums[r]; ok {
				if err := cur.Merge(s); err != nil {
					return nil, err
				}
			} else {
				sums[r] = s.Clone()
			}
		}
	}
	for _, s := range sums {
		if !s.IsZero() {
			return nil, fmt.Errorf("core: connectivity did not converge in %d phases", phases)
		}
	}

	// Labels: smallest member id per component (computed on the large
	// machine, where the output resides).
	min := make([]int, n)
	for i := range min {
		min[i] = n
	}
	for v := 0; v < n; v++ {
		r := dsu.Find(v)
		if v < min[r] {
			min[r] = v
		}
	}
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = min[dsu.Find(v)]
	}
	res.Labels = labels
	res.Components = dsu.Count()
	return res, nil
}

// MSTApproxResult is the output of the (1+ε)-MST-weight approximation.
type MSTApproxResult struct {
	Estimate   int64
	Thresholds int
	Stats      Stats
}

// ApproxMSTWeight estimates the MST weight within (1+ε) (Theorem C.2 /
// Appendix C.1.1) by the Chazelle-style reduction to connected-component
// counting: the number of components of the threshold subgraphs G_{≤τ} at
// geometrically spaced thresholds τ. Each count is one sketch-connectivity
// run; the thresholds are processed sequentially (DESIGN.md substitution 2).
// The input must be connected for the estimate to be meaningful (the
// standard assumption of the reduction).
func ApproxMSTWeight(c *mpc.Cluster, g *graph.Graph, eps float64) (*MSTApproxResult, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("core: eps must be positive")
	}
	if !c.HasLarge() {
		return nil, errNeedsLarge("ApproxMSTWeight")
	}
	sp := c.Span("approx-mst")
	res := &MSTApproxResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	var maxW int64 = 1
	for _, e := range g.Edges {
		if e.W > maxW {
			maxW = e.W
		}
	}
	// Thresholds τ_0 = 0 < τ_1 = 1 < ... geometric with ratio (1+ε),
	// integer, strictly increasing, last ≥ maxW.
	thresholds := []int64{0}
	for t := int64(1); t < maxW; {
		thresholds = append(thresholds, t)
		nt := int64(math.Ceil(float64(t) * (1 + eps)))
		if nt <= t {
			nt = t + 1
		}
		t = nt
	}
	thresholds = append(thresholds, maxW)

	// MST = Σ_{i=0}^{W-1} (c_i - 1) with c_i = #CC(edges of weight ≤ i);
	// approximate the sum with the component counts at the thresholds.
	var est int64
	for j := 0; j+1 < len(thresholds); j++ {
		tau := thresholds[j]
		width := thresholds[j+1] - tau
		sub := &graph.Graph{N: g.N, Weighted: g.Weighted}
		for _, e := range g.Edges {
			if e.W <= tau {
				sub.Edges = append(sub.Edges, e)
			}
		}
		cc, err := Connectivity(c, sub)
		if err != nil {
			return nil, err
		}
		est += width * int64(cc.Components-1)
		res.Thresholds++
	}
	res.Estimate = est
	return res, nil
}
