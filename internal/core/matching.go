package core

import (
	"fmt"
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/sublinear"
	"hetmpc/internal/xrand"
)

// MatchingResult is the output of the §5 maximal-matching algorithms.
type MatchingResult struct {
	Edges       []graph.Edge // the maximal matching
	Phase1Iters int          // peeling iterations (grow with the average degree d)
	FilterIters int          // filtering iterations (Theorem 5.5 variant)
	Stats       Stats
}

// MaximalMatching computes a maximal matching in the heterogeneous MPC
// model by the three-phase algorithm of §5 (Theorem 5.1):
//
//	Phase 1: peel the subgraph induced by the low-degree vertices
//	         (deg ≤ d², d = average degree) until the leftover fits the
//	         large machine, then complete M1 there — the round count
//	         depends on d, not on Δ;
//	Phase 2: every high-degree vertex sends 2d·log n random incident edges
//	         to the large machine, which greedily extends the matching;
//	Phase 3: all edges with both endpoints still unmatched (≤ 2n w.h.p.,
//	         Lemma 5.4) are shipped and the matching is completed.
func MaximalMatching(c *mpc.Cluster, g *graph.Graph) (*MatchingResult, error) {
	if !c.HasLarge() {
		// The sublinear baseline is sublinear.MaximalMatching.
		return nil, errNeedsLarge("MaximalMatching")
	}
	sp := c.Span("matching")
	res := &MatchingResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	n := g.N
	m := len(g.Edges)
	if m == 0 {
		return res, nil
	}
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	// Degrees and the low/high threshold.
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		degItems[i] = make([]prims.KV[int64], 0, 2*len(edges[i]))
		for _, e := range edges[i] {
			degItems[i] = append(degItems[i],
				prims.KV[int64]{K: int64(e.U), V: 1},
				prims.KV[int64]{K: int64(e.V), V: 1})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, degAtLarge, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return nil, err
	}
	needs := endpointNeedsOf(edges)
	degMaps, err := prims.DisseminateFromLarge(c, needs, degAtLarge, 1)
	if err != nil {
		return nil, err
	}
	d := int64(math.Ceil(2 * float64(m) / float64(n)))
	if d < 2 {
		d = 2
	}
	lowCap := d * d

	// --- Phase 1: peel the low-degree induced subgraph ---
	lowEdges := make([][]graph.Edge, kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			if degMaps[i][int64(e.U)] <= lowCap && degMaps[i][int64(e.V)] <= lowCap {
				lowEdges[i] = append(lowEdges[i], e)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	peel, err := sublinear.PeelMatching(c, lowEdges, int64(n))
	if err != nil {
		return nil, err
	}
	res.Phase1Iters = peel.Iterations
	// Ship the partial matching and the leftover to the large machine and
	// complete M1 = maximal matching on the low-degree induced subgraph.
	m1Part, err := prims.GatherToLarge(c, peel.Matched, prims.EdgeWords)
	if err != nil {
		return nil, err
	}
	leftover, err := prims.GatherToLarge(c, peel.Live, prims.EdgeWords)
	if err != nil {
		return nil, err
	}
	matchedAt := make([]bool, n)
	matching := make([]graph.Edge, 0, n/2)
	for _, e := range m1Part {
		matching = append(matching, e)
		matchedAt[e.U] = true
		matchedAt[e.V] = true
	}
	sortEdgesStable(leftover)
	add, matchedAt := graph.GreedyMatching(n, leftover, matchedAt)
	matching = append(matching, add...)

	// --- Phase 2: high-degree vertices send 2d·log n random edges ---
	logn := int64(math.Ceil(math.Log2(float64(n) + 2)))
	budget := 2 * d * logn
	// Directed copies with a per-edge shared random rank: the arrangement
	// sorted by (vertex, rank) makes "the budget lowest-ranked incident
	// edges" exactly a uniform random sample (§5 Phase 2).
	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	rankHash := xrand.NewHash(seed, 4)
	type rankedEdge struct {
		Src  int32
		Rank uint64
		E    graph.Edge
	}
	directed := make([][]rankedEdge, kk)
	if err := c.ForSmall(func(i int) error {
		directed[i] = make([]rankedEdge, 0, 2*len(edges[i]))
		for _, e := range edges[i] {
			r := rankHash.Eval(uint64(e.Key(n)))
			directed[i] = append(directed[i],
				rankedEdge{Src: int32(e.U), Rank: r, E: e},
				rankedEdge{Src: int32(e.V), Rank: r, E: e})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	arr, err := prims.Arrange(c, directed, func(re rankedEdge) prims.SortKey {
		return prims.SortKey{A: int64(re.Src), B: int64(re.Rank >> 1), C: re.E.Key(n)}
	}, prims.EdgeWords+2)
	if err != nil {
		return nil, err
	}
	collected, err := arr.CollectBudget(c, func(key int64) int {
		if degAtLarge[key] > lowCap {
			return int(budget)
		}
		return 0
	})
	if err != nil {
		return nil, err
	}
	// Large machine: greedy M2 over the high vertices in sorted order.
	highs := make([]int64, 0, len(degAtLarge))
	for v, dv := range degAtLarge {
		if dv > lowCap {
			highs = append(highs, v)
		}
	}
	prims.SortInts(highs)
	for _, v := range highs {
		if matchedAt[v] {
			continue
		}
		for _, re := range collected[v] {
			u := re.E.Other(int(v))
			if !matchedAt[u] {
				matching = append(matching, re.E)
				matchedAt[v] = true
				matchedAt[u] = true
				break
			}
		}
	}

	// --- Phase 3: ship all edges with both endpoints unmatched ---
	matchedVals := make(map[int64]bool, len(matching)*2)
	for v, ok := range matchedAt {
		if ok {
			matchedVals[int64(v)] = true
		}
	}
	matchedMaps, err := prims.DisseminateFromLarge(c, needs, matchedVals, 1)
	if err != nil {
		return nil, err
	}
	residual := make([][]graph.Edge, kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			if !matchedMaps[i][int64(e.U)] && !matchedMaps[i][int64(e.V)] {
				residual[i] = append(residual[i], e)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	cnt, err := prims.SumToLarge(c, countsOf(residual))
	if err != nil {
		return nil, err
	}
	if cnt > int64(4*n) {
		return nil, fmt.Errorf("core: phase 3 residual %d exceeds 4n (Lemma 5.4 violated)", cnt)
	}
	rest, err := prims.GatherToLarge(c, residual, prims.EdgeWords)
	if err != nil {
		return nil, err
	}
	sortEdgesStable(rest)
	add, _ = graph.GreedyMatching(n, rest, matchedAt)
	matching = append(matching, add...)

	sortEdgesStable(matching)
	res.Edges = matching
	return res, nil
}

// MatchingFiltering is the Theorem 5.5 variant for a superlinear large
// machine (cluster configured with F = f > 0): the filtering method of
// Lattanzi et al. [44]. Each iteration samples the live edges at a rate that
// fits the large machine, matches the sample there greedily, and discards
// edges covered by the matching; O(1/f) iterations suffice.
func MatchingFiltering(c *mpc.Cluster, g *graph.Graph) (*MatchingResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("MatchingFiltering")
	}
	sp := c.Span("matching-filter")
	res := &MatchingResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	n := g.N
	if len(g.Edges) == 0 {
		return res, nil
	}
	live, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()
	// The semantic memory budget is n^{1+f} edges (Theorem 5.5); the
	// cluster's polylog slack exists for protocol overheads, not to inflate
	// the filtering budget, so the recursion bottoms out at n^{1+f}.
	capEdges := int64(math.Ceil(math.Pow(float64(n), 1+c.F())))
	if max := int64(c.LargeCap() / (4 * prims.EdgeWords)); capEdges > max {
		capEdges = max
	}
	matchedAt := make([]bool, n)
	var matching []graph.Edge
	maxIters := 4*int(math.Ceil(math.Log2(float64(len(g.Edges))+2))) + 8

	for iter := 0; ; iter++ {
		liveCnt, err := prims.SumAll(c, countsOf(live))
		if err != nil {
			return nil, err
		}
		if liveCnt <= capEdges {
			break
		}
		if iter >= maxIters {
			return nil, fmt.Errorf("core: filtering failed to converge (%d live)", liveCnt)
		}
		res.FilterIters++
		p := float64(capEdges) / float64(liveCnt)
		ps, err := prims.BroadcastValue(c, p, 1)
		if err != nil {
			return nil, err
		}
		sample := make([][]graph.Edge, kk)
		if err := c.ForSmall(func(i int) error {
			rng := c.Rand(i)
			for _, e := range live[i] {
				if rng.Float64() < ps[i] {
					sample[i] = append(sample[i], e)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		got, err := prims.GatherToLarge(c, sample, prims.EdgeWords)
		if err != nil {
			return nil, err
		}
		sortEdgesStable(got)
		add, _ := graph.GreedyMatching(n, got, matchedAt)
		matching = append(matching, add...)

		// Disseminate matched vertices and filter.
		matchedVals := make(map[int64]bool, 2*len(matching))
		for v, ok := range matchedAt {
			if ok {
				matchedVals[int64(v)] = true
			}
		}
		needs := endpointNeedsOf(live)
		maps, err := prims.DisseminateFromLarge(c, needs, matchedVals, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			out := live[i][:0]
			for _, e := range live[i] {
				if !maps[i][int64(e.U)] && !maps[i][int64(e.V)] {
					out = append(out, e)
				}
			}
			live[i] = out
			return nil
		}); err != nil {
			return nil, err
		}
	}
	rest, err := prims.GatherToLarge(c, live, prims.EdgeWords)
	if err != nil {
		return nil, err
	}
	sortEdgesStable(rest)
	add, _ := graph.GreedyMatching(n, rest, matchedAt)
	matching = append(matching, add...)
	sortEdgesStable(matching)
	res.Edges = matching
	return res, nil
}

// sortEdgesStable orders edges by (U, V, W) through the local-sort kernel
// (the key covers every field, so the order is total and stability is
// vacuous; the name records the original comparator's contract).
func sortEdgesStable(es []graph.Edge) {
	prims.SortLocal(es, func(e graph.Edge) prims.SortKey {
		return prims.SortKey{A: int64(e.U), B: int64(e.V), C: e.W}
	})
}

// endpointNeedsOf returns each machine's deduplicated endpoint key list,
// sorted. Like sublinear's endpointNeeds, dedup is sort + compact: the hash
// set it replaces was a fixed per-round map cost on every edge.
func endpointNeedsOf(edges [][]graph.Edge) [][]int64 {
	needs := make([][]int64, len(edges))
	for i := range edges {
		if len(edges[i]) == 0 {
			continue
		}
		vs := make([]int64, 0, 2*len(edges[i]))
		for _, e := range edges[i] {
			vs = append(vs, int64(e.U), int64(e.V))
		}
		prims.SortInts(vs)
		needs[i] = slices.Compact(vs)
	}
	return needs
}

func countsOf[T any](data [][]T) []int64 {
	out := make([]int64, len(data))
	for i := range data {
		out[i] = int64(len(data[i]))
	}
	return out
}
