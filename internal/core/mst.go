package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"hetmpc/internal/graph"
	"hetmpc/internal/labeling"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/unionfind"
)

// MSTResult is the output of the §3 MST algorithm.
type MSTResult struct {
	Edges         []graph.Edge // the minimum spanning forest of the input
	Weight        int64
	BoruvkaPhases int // doubly-exponential Borůvka phases executed
	SampleTries   int // KKT sampling attempts until success
	Stats         Stats
}

// MSTOptions tunes the §3 algorithm for the ablation study (experiment
// E16). The zero value is the paper's algorithm.
type MSTOptions struct {
	// FixedBudget > 0 pins every phase's per-vertex edge budget (2 turns
	// the first part into plain Borůvka); 0 uses the doubly-exponential
	// schedule n^{f·2^i}.
	FixedBudget int
	// DisableSampling skips the KKT sampling step and runs the contraction
	// to completion instead.
	DisableSampling bool
}

// MST computes a minimum spanning forest of g in the heterogeneous MPC
// model (§3, Theorem 3.1). With the default near-linear large machine
// (f = 0) it runs O(log log(m/n)) Borůvka phases of O(1) rounds each,
// followed by the O(1)-round KKT sampling step. With a superlinear large
// machine (cluster configured with F = f > 0) the phase budgets grow as
// n^{f·2^i}, giving O(log(log_n(m/n)/f)) phases.
func MST(c *mpc.Cluster, g *graph.Graph) (*MSTResult, error) {
	return MSTWithOptions(c, g, MSTOptions{})
}

// MSTWithOptions is MST with ablation knobs (see MSTOptions).
func MSTWithOptions(c *mpc.Cluster, g *graph.Graph, opts MSTOptions) (*MSTResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("MST")
	}
	sp := c.Span("mst")
	n := g.N
	m := len(g.Edges)
	res := &MSTResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	if m == 0 {
		return res, nil
	}

	placed, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	edges := toCEdges(placed)

	// Large-machine persistent state.
	dsu := unionfind.New(n)
	var mstEdges []graph.Edge

	// Effective exponent: f = 0 means the near-linear 2^{2^i} schedule
	// (equivalently f = 1/log2 n, as the paper notes).
	f := c.F()
	log2n := math.Log2(float64(n))
	effF := f
	if effF < 1/log2n {
		effF = 1 / log2n
	}
	// Borůvka target: contract until at most n^{2(1+f)}/(4m) active vertices
	// remain (n²/(4m) in the near-linear case), so that the KKT sample and
	// the F-light edges fit the large machine.
	nf := math.Pow(float64(n), 1+f)
	target := int(nf * nf / (4 * float64(m)))
	if target < 1 {
		target = 1
	}
	maxPhases := 2*int(math.Ceil(math.Log2(log2n+2))) + 8
	if opts.FixedBudget > 0 || opts.DisableSampling {
		// Ablated schedules may legitimately need Θ(log n) phases.
		maxPhases = 2*int(math.Ceil(log2n)) + 12
	}

	dirSortKey := func(e cEdge) prims.SortKey {
		return prims.SortKey{A: int64(e.U), B: e.W, C: int64(e.OU)<<32 | int64(e.OV)}
	}

	for phase := 0; ; phase++ {
		// One doubly-exponential Borůvka contraction: everything through
		// the relabel dissemination is the "contract" phase of the trace.
		csp := c.Span("contract")
		// Build directed copies and arrange by (source, weight) — Claim 4.
		directed := make([][]cEdge, c.K())
		if err := c.ForSmall(func(i int) error {
			directed[i] = make([]cEdge, 0, 2*len(edges[i]))
			for _, e := range edges[i] {
				directed[i] = append(directed[i], e)
				directed[i] = append(directed[i], cEdge{U: e.V, V: e.U, W: e.W, OU: e.OU, OV: e.OV})
			}
			return nil
		}); err != nil {
			//hetlint:span error path: the run aborts and no Stats or trace records are consumed from the leaked contract span
			return nil, err
		}
		arr, err := prims.Arrange(c, directed, dirSortKey, cEdgeWords)
		if err != nil {
			//hetlint:span error path: the run aborts and no Stats or trace records are consumed from the leaked contract span
			return nil, err
		}
		active := len(arr.Keys)
		if active == 0 || (!opts.DisableSampling && active <= target) {
			csp.End()
			break
		}
		if phase >= maxPhases {
			csp.End()
			break // safety valve; the sampling step still finishes correctly
		}
		res.BoruvkaPhases++

		// Phase budget d_i = n^{effF·2^i}, capacity-capped.
		budget := phaseBudget(effF, log2n, phase, active, c.LargeCap())
		if opts.FixedBudget > 0 {
			budget = opts.FixedBudget
		}

		// Collect each active vertex's min(budget, deg) lightest out-edges.
		collected, err := arr.CollectBudget(c, func(int64) int { return budget })
		if err != nil {
			return nil, err
		}

		// Local budgeted Borůvka merging on the large machine (the safe
		// active/inactive rule of Lotker et al. [45]; see DESIGN.md §3.5).
		relabel := localBudgetedBoruvka(dsu, arr, collected, budget, &mstEdges)

		// Disseminate the relabel map c'_i (Claim 3) and relabel locally.
		needs := make([][]int64, c.K())
		if err := c.ForSmall(func(i int) error {
			needs[i] = distinctEndpoints(edges[i])
			return nil
		}); err != nil {
			return nil, err
		}
		maps, err := prims.DisseminateFromLarge(c, needs, relabel, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			out := edges[i][:0]
			for _, e := range edges[i] {
				if nu, ok := maps[i][int64(e.U)]; ok {
					e.U = int(nu)
				}
				if nv, ok := maps[i][int64(e.V)]; ok {
					e.V = int(nv)
				}
				if e.U != e.V {
					out = append(out, e)
				}
			}
			edges[i] = out
			return nil
		}); err != nil {
			return nil, err
		}

		// Keep only the lightest edge between any two contracted vertices
		// (Claim 2 variant, as in the paper).
		var dedupErr error
		edges, dedupErr = dedupParallel(c, edges, n)
		if dedupErr != nil {
			return nil, dedupErr
		}
		csp.End()
	}

	// --- KKT sampling part ---
	ksp := c.Span("sample")
	defer ksp.End()
	mRemaining := prims.CountItems(edges)
	tries := 0
	if mRemaining > 0 {
		p := nf / (2 * float64(m))
		if p > 1 {
			p = 1
		}
		maxTries := 2*int(math.Ceil(math.Log2(float64(n)+2))) + 4
		capBudget := int64(c.LargeCap() / (2 * cEdgeWords))
		done := false
		for tries = 1; tries <= maxTries && !done; tries++ {
			finalEdges, ok, err := kktTry(c, edges, n, p, capBudget, dsu)
			if err != nil {
				return nil, err
			}
			if ok {
				mstEdges = append(mstEdges, finalEdges...)
				done = true
			}
		}
		tries--
		if !done {
			return nil, fmt.Errorf("core: KKT sampling failed %d times", maxTries)
		}
	}
	res.SampleTries = tries

	slices.SortFunc(mstEdges, graph.Edge.Compare)
	res.Edges = mstEdges
	for _, e := range mstEdges {
		res.Weight += e.W
	}
	return res, nil
}

// phaseBudget returns d_i = n^{effF·2^i}, clamped to [2, capacity bound].
func phaseBudget(effF, log2n float64, phase, active, largeCap int) int {
	exp := effF * math.Pow(2, float64(phase)) * log2n // bits
	var d int
	if exp >= 40 {
		d = 1 << 40
	} else {
		d = int(math.Pow(2, exp))
	}
	if d < 2 {
		d = 2
	}
	capD := largeCap / (4 * cEdgeWords * maxInt(1, active))
	if capD < 2 {
		capD = 2
	}
	if d > capD {
		d = capD
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// localBudgetedBoruvka merges contracted vertices along collected edges on
// the large machine, with the budget rule: a supercluster may select its
// minimum outgoing candidate only while no member's truncated list is
// exhausted (see DESIGN.md substitution 5 for why plain Kruskal on the
// collected edges is not sound). It mutates dsu, appends the used original
// edges to mstEdges and returns the relabel map phase-vertex → new root.
func localBudgetedBoruvka(
	dsu *unionfind.DSU,
	arr *prims.Arranged[cEdge],
	collected map[int64][]cEdge,
	budget int,
	mstEdges *[]graph.Edge,
) map[int64]int64 {
	type vlist struct {
		v        int
		edges    []cEdge // sorted by weight
		ptr      int
		complete bool // list covers all of v's out-edges
	}
	verts := make([]*vlist, 0, len(arr.Keys))
	byV := make(map[int]*vlist, len(arr.Keys))
	for _, key := range arr.Keys {
		v := int(key)
		deg := arr.Degree(key)
		lst := &vlist{v: v, edges: collected[key], complete: deg <= budget}
		verts = append(verts, lst)
		byV[v] = lst
	}
	// Supercluster membership: root → member phase-vertices.
	members := make(map[int][]int, len(verts))
	for _, vl := range verts {
		members[dsu.Find(vl.v)] = append(members[dsu.Find(vl.v)], vl.v)
	}

	for {
		// For each supercluster, find the minimum non-internal candidate,
		// honoring the budget rule.
		type cand struct {
			edge cEdge
			ok   bool
		}
		cands := make(map[int]cand, len(members))
		for root, mem := range members {
			best := cand{}
			blocked := false
			for _, v := range mem {
				vl := byV[v]
				// Advance past internal edges.
				for vl.ptr < len(vl.edges) && dsu.Find(vl.edges[vl.ptr].V) == root {
					vl.ptr++
				}
				if vl.ptr >= len(vl.edges) {
					if !vl.complete {
						blocked = true // truncated list exhausted: unsafe
						break
					}
					continue // v truly has no outgoing edges left
				}
				e := vl.edges[vl.ptr]
				if !best.ok || e.lessByWeight(best.edge) {
					best = cand{edge: e, ok: true}
				}
			}
			if !blocked && best.ok {
				cands[root] = best
			}
		}
		if len(cands) == 0 {
			break
		}
		// Merge along all candidates (each is the true minimum outgoing edge
		// of its cluster, hence an MST edge by the cut property).
		merged := false
		// Deterministic iteration order.
		roots := make([]int, 0, len(cands))
		for r := range cands {
			roots = append(roots, r)
		}
		sort.Ints(roots)
		for _, r := range roots {
			e := cands[r].edge
			ru, rv := dsu.Find(e.U), dsu.Find(e.V)
			if ru == rv {
				continue // the other side already merged into us this round
			}
			dsu.Union(ru, rv)
			nr := dsu.Find(ru)
			// Merge membership lists.
			if nr != ru {
				members[nr] = append(members[nr], members[ru]...)
				delete(members, ru)
			}
			if nr != rv {
				members[nr] = append(members[nr], members[rv]...)
				delete(members, rv)
			}
			*mstEdges = append(*mstEdges, e.orig())
			merged = true
		}
		if !merged {
			break
		}
	}

	relabel := make(map[int64]int64, len(verts))
	for _, vl := range verts {
		relabel[int64(vl.v)] = int64(dsu.Find(vl.v))
	}
	return relabel
}

// dedupParallel keeps only the lightest contracted edge between any pair of
// contracted vertices, using Claim 2 aggregation with min-combine; the
// deduplicated edges remain distributed (at the aggregation roots).
func dedupParallel(c *mpc.Cluster, edges [][]cEdge, n int) ([][]cEdge, error) {
	items := make([][]prims.KV[cEdge], c.K())
	if err := c.ForSmall(func(i int) error {
		items[i] = make([]prims.KV[cEdge], 0, len(edges[i]))
		for _, e := range edges[i] {
			items[i] = append(items[i], prims.KV[cEdge]{K: pairKey(e.U, e.V, n), V: e})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	roots, _, err := prims.AggregateByKey(c, items, cEdgeWords,
		func(a, b cEdge) cEdge {
			if a.lessByWeight(b) {
				return a
			}
			return b
		}, false)
	if err != nil {
		return nil, err
	}
	out := make([][]cEdge, c.K())
	if err := c.ForSmall(func(i int) error {
		keys := make([]int64, 0, len(roots[i]))
		for k := range roots[i] {
			keys = append(keys, k)
		}
		prims.SortInts(keys)
		out[i] = make([]cEdge, 0, len(keys))
		for _, k := range keys {
			out[i] = append(out[i], roots[i][k])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// kktTry performs one iteration of the §3 sampling step: sample each stored
// edge with probability p, build the sampled MSF F on the large machine,
// disseminate the flow labels, count the F-light edges, and — if they fit —
// ship them and finish the MSF of the contracted graph. Returns the original
// edges completing the MST and ok=false if the try must be repeated.
func kktTry(
	c *mpc.Cluster,
	edges [][]cEdge,
	n int,
	p float64,
	capBudget int64,
	dsu *unionfind.DSU,
) ([]graph.Edge, bool, error) {
	k := c.K()
	// Sample locally with private randomness.
	samples := make([][]cEdge, k)
	if err := c.ForSmall(func(i int) error {
		rng := c.Rand(i)
		for _, e := range edges[i] {
			if rng.Float64() < p {
				samples[i] = append(samples[i], e)
			}
		}
		return nil
	}); err != nil {
		return nil, false, err
	}
	// Guard the gather volume, then ship the sample.
	counts := make([]int64, k)
	for i := range samples {
		counts[i] = int64(len(samples[i]))
	}
	total, err := prims.SumToLarge(c, counts)
	if err != nil {
		return nil, false, err
	}
	if total > capBudget {
		return nil, false, nil // resample
	}
	sampleEdges, err := prims.GatherToLarge(c, samples, cEdgeWords)
	if err != nil {
		return nil, false, err
	}

	// Large machine: MSF F of the sample, under unique-weight order.
	slices.SortFunc(sampleEdges, cEdge.cmpByWeight)
	fdsu := unionfind.New(n)
	var forest []graph.Edge // on contracted ids, weights kept unique via W
	for _, e := range sampleEdges {
		if fdsu.Union(e.U, e.V) {
			forest = append(forest, graph.Edge{U: e.U, V: e.V, W: e.W})
		}
	}
	labels := labeling.Build(n, forest)

	// Disseminate labels to every machine holding an edge of v (Claim 3).
	needs := make([][]int64, k)
	if err := c.ForSmall(func(i int) error {
		needs[i] = distinctEndpoints(edges[i])
		return nil
	}); err != nil {
		return nil, false, err
	}
	values := make(map[int64]labeling.Label, len(labels))
	lwords := 1
	for v, l := range labels {
		if len(l) == 0 {
			continue
		}
		values[int64(v)] = l
		if l.Words() > lwords {
			lwords = l.Words()
		}
	}
	maps, err := prims.DisseminateFromLarge(c, needs, values, lwords)
	if err != nil {
		return nil, false, err
	}

	// Identify and count the F-light edges.
	light := make([][]cEdge, k)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			lu, okU := maps[i][int64(e.U)]
			lv, okV := maps[i][int64(e.V)]
			if !okU || !okV {
				// Endpoint absent from F's labeling: treat as F-light.
				light[i] = append(light[i], e)
				continue
			}
			// Compare under the unique (W, OU, OV) order embedded in labels
			// via the contracted-edge weights.
			if labeling.FLight(graph.Edge{U: e.U, V: e.V, W: e.W}, lu, lv) {
				light[i] = append(light[i], e)
			}
		}
		return nil
	}); err != nil {
		return nil, false, err
	}
	lightCounts := make([]int64, k)
	for i := range light {
		lightCounts[i] = int64(len(light[i]))
	}
	lightTotal, err := prims.SumToLarge(c, lightCounts)
	if err != nil {
		return nil, false, err
	}
	if lightTotal > capBudget {
		return nil, false, nil // unlucky sample: retry
	}
	lightEdges, err := prims.GatherToLarge(c, light, cEdgeWords)
	if err != nil {
		return nil, false, err
	}

	// Finish: MSF over the F-light edges (which contain all remaining MSF
	// edges of the contracted graph), continuing the global contraction DSU.
	slices.SortFunc(lightEdges, cEdge.cmpByWeight)
	var out []graph.Edge
	for _, e := range lightEdges {
		if dsu.Union(e.U, e.V) {
			out = append(out, e.orig())
		}
	}
	return out, true, nil
}
