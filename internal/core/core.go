// Package core implements the paper's Heterogeneous MPC algorithms:
//
//   - MST in O(log log(m/n)) rounds (§3, Theorem 3.1), via doubly-exponential
//     Borůvka + KKT sampling + flow-labeling F-light filtering;
//   - O(k)-spanners of size O(n^{1+1/k}) in O(1) rounds (§4, Theorem 4.1),
//     via clustering graphs + modified Baswana-Sen, and the APSP
//     approximation of Corollary 4.2;
//   - maximal matching (§5, Theorem 5.1 and the filtering variant of
//     Theorem 5.5);
//   - the ported near-linear algorithms of Appendix C: connectivity and
//     (1+ε)-MST via sketches, exact and approximate minimum cut,
//     MIS in O(log log Δ), and (Δ+1)-coloring in O(1) rounds;
//   - the 2-vs-1-cycle problem from the introduction.
//
// Every algorithm runs entirely through the mpc simulator's Exchange rounds
// and the prims toolbox; outputs are validated against the exact reference
// algorithms in internal/graph by the package tests.
package core

import (
	"cmp"
	"fmt"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

// cEdge is an edge of the current contracted multigraph: (U, V) are
// contracted vertex ids, (OU, OV, W) identify the original edge it
// represents (§3: "together with each edge we also store the original graph
// edge"). The (W, OU, OV) triple is globally unique, giving the unique-weight
// tie-breaking the paper assumes.
type cEdge struct {
	U, V   int
	W      int64
	OU, OV int
}

const cEdgeWords = 5

// orig returns the original graph edge.
func (e cEdge) orig() graph.Edge { return graph.NewEdge(e.OU, e.OV, e.W) }

// lessByWeight orders contracted edges by unique weight.
func (e cEdge) lessByWeight(o cEdge) bool { return e.cmpByWeight(o) < 0 }

// cmpByWeight is the three-way unique-weight order on contracted edges.
func (e cEdge) cmpByWeight(o cEdge) int {
	if c := cmp.Compare(e.W, o.W); c != 0 {
		return c
	}
	if c := cmp.Compare(e.OU, o.OU); c != 0 {
		return c
	}
	return cmp.Compare(e.OV, o.OV)
}

// pairKey packs an unordered contracted vertex pair into an int64 key.
func pairKey(u, v, n int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)*int64(n) + int64(v)
}

// toCEdges converts distributed graph edges into contracted-edge state.
func toCEdges(data [][]graph.Edge) [][]cEdge {
	out := make([][]cEdge, len(data))
	for i := range data {
		out[i] = make([]cEdge, 0, len(data[i]))
		for _, e := range data[i] {
			out[i] = append(out[i], cEdge{U: e.U, V: e.V, W: e.W, OU: e.U, OV: e.V})
		}
	}
	return out
}

// distinctEndpoints returns the sorted distinct contracted endpoints of a
// machine's edges (the dissemination "needs" list).
func distinctEndpoints(edges []cEdge) []int64 {
	seen := make(map[int64]bool, 2*len(edges))
	out := make([]int64, 0, 2*len(edges))
	for _, e := range edges {
		for _, v := range [2]int{e.U, e.V} {
			if !seen[int64(v)] {
				seen[int64(v)] = true
				out = append(out, int64(v))
			}
		}
	}
	slices.Sort(out)
	return out
}

// Stats is the per-run metrics snapshot attached to every algorithm result.
type Stats struct {
	Rounds     int
	Messages   int64
	TotalWords int64
}

// statsOf converts a finished span's full model-stats delta (mpc.Span.End)
// into the compact per-run view attached to algorithm results.
func statsOf(d mpc.Stats) Stats {
	return Stats{Rounds: d.Rounds, Messages: d.Messages, TotalWords: d.TotalWords}
}

// errNeedsLarge is the unified "requires the large machine" failure: every
// large-requiring algorithm returns it wrapped with its name, so callers
// detect the condition with errors.Is(err, mpc.ErrNeedsLarge).
func errNeedsLarge(alg string) error {
	return fmt.Errorf("core: %s: %w", alg, mpc.ErrNeedsLarge)
}
