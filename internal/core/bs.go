package core

import (
	"cmp"
	"math"
	"math/rand/v2"
	"slices"
	"sort"

	"hetmpc/internal/graph"
)

// bsTables is the clustering history of a (modified) Baswana-Sen run:
// Centers[i][v] is c_i(v), the center of v's level-i cluster, or -1 (⊥).
// Levels 0..k are stored; level k is all-⊥ by construction.
type bsTables struct {
	K       int
	Centers [][]int
}

// removalLevel returns the level i at which v became unclustered
// (c_{i-1}(v) != ⊥ and c_i(v) == ⊥).
func (t *bsTables) removalLevel(v int) int {
	for i := 1; i <= t.K; i++ {
		if t.Centers[i-1][v] >= 0 && t.Centers[i][v] < 0 {
			return i
		}
	}
	return -1 // never (cannot happen: level k is all-⊥)
}

// bsPhase1 runs lines 1–15 of Algorithm 2 (ModifiedBaswanaSen) locally:
// given the sampled subgraphs G_1..G_k as adjacency maps, it computes the
// cluster tables and the re-clustering spanner edges. With every G_i equal
// to the full graph this is exactly lines 1–15 of the original Baswana-Sen
// (Algorithm 1).
//
// vertices lists the (cluster) vertex ids in play; centerProb is the
// per-level center survival probability 1/r^{1/k}. sampledAdj[i] maps vertex
// → neighbors in G_{i+1} (i.e. index 0 holds G_1). Each neighbor entry
// carries the original graph edge to be added to the spanner when used.
type bsHalf struct {
	To   int
	Orig graph.Edge
}

func bsPhase1(
	vertices []int,
	sampledAdj []map[int][]bsHalf,
	k int,
	centerProb float64,
	rng *rand.Rand,
) (*bsTables, []graph.Edge) {
	t := &bsTables{K: k, Centers: make([][]int, k+1)}
	maxID := 0
	for _, v := range vertices {
		if v+1 > maxID {
			maxID = v + 1
		}
	}
	for _, a := range sampledAdj {
		for v, hs := range a {
			if v+1 > maxID {
				maxID = v + 1
			}
			for _, h := range hs {
				if h.To+1 > maxID {
					maxID = h.To + 1
				}
			}
		}
	}
	for i := range t.Centers {
		t.Centers[i] = make([]int, maxID)
		for j := range t.Centers[i] {
			t.Centers[i][j] = -1
		}
	}
	for _, v := range vertices {
		t.Centers[0][v] = v
	}
	var spanner []graph.Edge

	// Centers kept as a sorted slice so the per-center coin flips are
	// deterministic for a given rng state.
	centers := make([]int, len(vertices))
	copy(centers, vertices)
	sort.Ints(centers)
	isCenter := make(map[int]bool, len(centers))
	for _, v := range centers {
		isCenter[v] = true // C_0 = V
	}
	for i := 1; i <= k; i++ {
		// Sample C_i from C_{i-1}.
		next := make(map[int]bool, len(isCenter))
		var nextList []int
		if i < k {
			for _, c := range centers {
				if rng.Float64() < centerProb {
					next[c] = true
					nextList = append(nextList, c)
				}
			}
		}
		adj := sampledAdj[i-1]
		for _, v := range vertices {
			cv := t.Centers[i-1][v]
			if cv < 0 {
				continue
			}
			if next[cv] {
				t.Centers[i][v] = cv
				continue
			}
			// Re-cluster via a neighbor in G_i whose center survived.
			// Deterministic choice: smallest neighbor id.
			bestU := -1
			var bestEdge graph.Edge
			for _, h := range adj[v] {
				cu := t.Centers[i-1][h.To]
				if cu >= 0 && next[cu] && (bestU < 0 || h.To < bestU) {
					bestU = h.To
					bestEdge = h.Orig
				}
			}
			if bestU >= 0 {
				t.Centers[i][v] = t.Centers[i-1][bestU]
				spanner = append(spanner, bestEdge)
			}
			// else: v becomes unclustered at level i (lines 16-18 happen
			// elsewhere, on the full neighborhood).
		}
		isCenter = next
		centers = nextList
	}
	return t, spanner
}

// bsRemovalEdges runs lines 16–18 of Algorithm 2 on the full edge set: for
// every vertex v removed at level i, add one edge to each adjacent
// level-(i-1) cluster (choosing the smallest-id neighbor per cluster,
// excluding v's own former cluster).
func bsRemovalEdges(t *bsTables, vertices []int, fullAdj map[int][]bsHalf) []graph.Edge {
	type pick struct {
		u    int
		edge graph.Edge
	}
	var out []graph.Edge
	for _, v := range vertices {
		i := t.removalLevel(v)
		if i < 0 {
			continue
		}
		own := t.Centers[i-1][v]
		best := make(map[int]pick)
		for _, h := range fullAdj[v] {
			c := t.Centers[i-1][h.To]
			if c < 0 || c == own {
				continue
			}
			if p, ok := best[c]; !ok || h.To < p.u {
				best[c] = pick{u: h.To, edge: h.Orig}
			}
		}
		cs := make([]int, 0, len(best))
		for c := range best {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		for _, c := range cs {
			out = append(out, best[c].edge)
		}
	}
	return out
}

// baswanaSenLocal computes a (2k-1)-spanner of the unweighted graph given by
// `edges` over the vertex ids in `vertices`, entirely locally (used by the
// large machine for small clustering graphs, and by experiment E6 as the
// "original Baswana-Sen" reference). Every edge carries its original-graph
// edge; the returned spanner consists of original edges.
func baswanaSenLocal(vertices []int, edges []clusterEdge, k int, rng *rand.Rand) []graph.Edge {
	if k < 1 {
		k = 1
	}
	adj := make(map[int][]bsHalf, len(vertices))
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], bsHalf{To: e.V, Orig: e.Orig})
		adj[e.V] = append(adj[e.V], bsHalf{To: e.U, Orig: e.Orig})
	}
	sampled := make([]map[int][]bsHalf, k)
	for i := range sampled {
		sampled[i] = adj // original BS: N_i(v) = N(v)
	}
	prob := 1 / math.Pow(float64(maxInt(2, len(vertices))), 1/float64(k))
	t, reclust := bsPhase1(vertices, sampled, k, prob, rng)
	removal := bsRemovalEdges(t, vertices, adj)
	return dedupeEdges(append(reclust, removal...))
}

// modifiedBaswanaSenLocal is Algorithm 2 run entirely locally, sampling each
// G_i with probability p — the object of experiment E6 (Figure 1): the
// spanner is still a (2k-1)-spanner but with O(k·r^{1+1/k}/p) expected edges
// (Lemma 4.3).
func modifiedBaswanaSenLocal(vertices []int, edges []clusterEdge, k int, p float64, rng *rand.Rand) []graph.Edge {
	adj := make(map[int][]bsHalf, len(vertices))
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], bsHalf{To: e.V, Orig: e.Orig})
		adj[e.V] = append(adj[e.V], bsHalf{To: e.U, Orig: e.Orig})
	}
	sampled := make([]map[int][]bsHalf, k)
	for i := range sampled {
		sampled[i] = make(map[int][]bsHalf)
		for _, e := range edges {
			if rng.Float64() < p {
				sampled[i][e.U] = append(sampled[i][e.U], bsHalf{To: e.V, Orig: e.Orig})
				sampled[i][e.V] = append(sampled[i][e.V], bsHalf{To: e.U, Orig: e.Orig})
			}
		}
	}
	prob := 1 / math.Pow(float64(maxInt(2, len(vertices))), 1/float64(k))
	t, reclust := bsPhase1(vertices, sampled, k, prob, rng)
	removal := bsRemovalEdges(t, vertices, adj)
	return dedupeEdges(append(reclust, removal...))
}

// clusterEdge is an edge of a clustering graph A_i: endpoints are cluster
// ids, Orig is the attached original-graph edge EG((U,V)).
type clusterEdge struct {
	U, V int
	Orig graph.Edge
}

const clusterEdgeWords = 5

// greedySpanner computes a (2k-1)-spanner by the classical greedy algorithm
// (add an edge iff the current spanner distance between its endpoints
// exceeds 2k-1), using depth-limited BFS with timestamps. Size is
// O(r^{1+1/k}) by the girth argument. Returns the attached original edges.
func greedySpanner(vertices []int, edges []clusterEdge, k int) []graph.Edge {
	maxID := 0
	for _, v := range vertices {
		if v+1 > maxID {
			maxID = v + 1
		}
	}
	for _, e := range edges {
		if e.U+1 > maxID {
			maxID = e.U + 1
		}
		if e.V+1 > maxID {
			maxID = e.V + 1
		}
	}
	adjH := make([][]int, maxID)
	limit := 2*k - 1
	visited := make([]int, maxID) // timestamp marks
	depth := make([]int, maxID)
	stamp := 0
	var queue []int
	withinDist := func(src, dst int) bool {
		if src == dst {
			return true
		}
		stamp++
		queue = queue[:0]
		queue = append(queue, src)
		visited[src] = stamp
		depth[src] = 0
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if depth[v] >= limit {
				continue
			}
			for _, u := range adjH[v] {
				if visited[u] == stamp {
					continue
				}
				if u == dst {
					return true
				}
				visited[u] = stamp
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
		}
		return false
	}
	// Process in deterministic order.
	es := make([]clusterEdge, len(edges))
	copy(es, edges)
	slices.SortFunc(es, func(a, b clusterEdge) int {
		if c := cmp.Compare(a.U, b.U); c != 0 {
			return c
		}
		return cmp.Compare(a.V, b.V)
	})
	var out []graph.Edge
	for _, e := range es {
		if e.U == e.V {
			continue
		}
		if !withinDist(e.U, e.V) {
			adjH[e.U] = append(adjH[e.U], e.V)
			adjH[e.V] = append(adjH[e.V], e.U)
			out = append(out, e.Orig)
		}
	}
	return out
}

// dedupeEdges canonicalizes and deduplicates a list of original edges.
func dedupeEdges(edges []graph.Edge) []graph.Edge {
	seen := make(map[[2]int]bool, len(edges))
	out := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		e = graph.NewEdge(e.U, e.V, e.W)
		key := [2]int{e.U, e.V}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	slices.SortFunc(out, graph.CompareEndpoints)
	return out
}
