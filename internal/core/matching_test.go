package core

import (
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/sublinear"
)

func checkMatchingRun(t *testing.T, g *graph.Graph, seed uint64) *MatchingResult {
	t.Helper()
	c := newCluster(t, g.N, g.M(), seed)
	res, err := MaximalMatching(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMatching(g, res.Edges, true); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMaximalMatchingRandom(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{64, 200},
		{128, 1000},
		{200, 600},
	} {
		g := graph.GNM(tc.n, tc.m, uint64(tc.n)+1)
		checkMatchingRun(t, g, 5)
	}
}

func TestMaximalMatchingHighDegree(t *testing.T) {
	// Star: matching is a single edge, phase 2 must handle the hub.
	s := graph.Star(80)
	res := checkMatchingRun(t, s, 3)
	if len(res.Edges) != 1 {
		t.Fatalf("star matching has %d edges, want 1", len(res.Edges))
	}
	// Planted hubs: huge Δ, small average degree.
	g := graph.PlantedHubs(300, 4, 3, 250, 7)
	checkMatchingRun(t, g, 9)
}

func TestMaximalMatchingEdgeCases(t *testing.T) {
	// Empty graph.
	e := graph.New(10, nil, false)
	c := newCluster(t, 10, 0, 1)
	res, err := MaximalMatching(c, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Fatal("phantom matching edges")
	}
	// Single edge.
	one := graph.New(4, []graph.Edge{graph.NewEdge(0, 1, 1)}, false)
	c2 := newCluster(t, 4, 1, 1)
	res2, err := MaximalMatching(c2, one)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Edges) != 1 {
		t.Fatal("single edge not matched")
	}
	// Perfect-matching graph (disjoint edges).
	var pm []graph.Edge
	for v := 0; v < 40; v += 2 {
		pm = append(pm, graph.NewEdge(v, v+1, 1))
	}
	g := graph.New(40, pm, false)
	c3 := newCluster(t, 40, 20, 2)
	res3, err := MaximalMatching(c3, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Edges) != 20 {
		t.Fatalf("disjoint edges: matched %d of 20", len(res3.Edges))
	}
}

func TestSublinearBaselineMatching(t *testing.T) {
	g := graph.GNM(128, 800, 7)
	c, err := mpc.New(mpc.Config{N: g.N, M: g.M(), NoLarge: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	match, peel, err := sublinear.MaximalMatching(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMatching(g, match, true); err != nil {
		t.Fatal(err)
	}
	if peel.Iterations < 1 {
		t.Fatal("baseline should need at least one iteration")
	}
}

func TestMatchingDegreeSeparation(t *testing.T) {
	// The Theorem 5.1 shape (experiment E7): heterogeneous peeling runs on
	// the low-degree induced subgraph, so raising Δ (hub degree) while
	// keeping the average degree fixed must NOT increase phase-1 iterations.
	n := 400
	small := graph.PlantedHubs(n, 4, 4, 50, 11)
	big := graph.PlantedHubs(n, 4, 4, 350, 11)
	rSmall := checkMatchingRun(t, small, 21)
	rBig := checkMatchingRun(t, big, 21)
	if rBig.Phase1Iters > rSmall.Phase1Iters+1 {
		t.Fatalf("phase-1 iterations grew with Δ: %d -> %d", rSmall.Phase1Iters, rBig.Phase1Iters)
	}
}

func TestMatchingFiltering(t *testing.T) {
	g := graph.GNM(128, 2000, 9)
	// Superlinear memory: few iterations.
	c, err := mpc.New(mpc.Config{N: g.N, M: g.M(), F: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MatchingFiltering(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMatching(g, res.Edges, true); err != nil {
		t.Fatal(err)
	}
	// A graph already fitting the n^{1+f} budget: zero iterations.
	small := graph.GNM(64, 100, 3)
	c2, err := mpc.New(mpc.Config{N: 64, M: 100, F: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := MatchingFiltering(c2, small)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMatching(small, res2.Edges, true); err != nil {
		t.Fatal(err)
	}
	if res2.FilterIters != 0 {
		t.Fatalf("small graph should need 0 filtering iterations, got %d", res2.FilterIters)
	}
	// More memory ⇒ fewer iterations (the 1/f shape).
	big := graph.GNM(128, 4000, 11)
	itersAt := func(f float64) int {
		cf, err := mpc.New(mpc.Config{N: 128, M: 4000, F: f, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		r, err := MatchingFiltering(cf, big)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckMatching(big, r.Edges, true); err != nil {
			t.Fatal(err)
		}
		return r.FilterIters
	}
	if lo, hi := itersAt(0.6), itersAt(0.15); lo > hi {
		t.Fatalf("more memory used more iterations: f=0.6 -> %d, f=0.15 -> %d", lo, hi)
	}
}

func TestMatchingDeterministic(t *testing.T) {
	g := graph.GNM(100, 700, 13)
	a := checkMatchingRun(t, g, 31)
	b := checkMatchingRun(t, g, 31)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("nondeterministic matching size: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("nondeterministic matching")
		}
	}
}
