package core

import (
	"math"
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/xrand"
)

func toClusterEdges(g *graph.Graph) ([]int, []clusterEdge) {
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	ces := make([]clusterEdge, 0, g.M())
	for _, e := range g.Edges {
		ces = append(ces, clusterEdge{U: e.U, V: e.V, Orig: e})
	}
	return verts, ces
}

func TestBaswanaSenLocalStretchAndSize(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		g := graph.ConnectedGNM(120, 1800, uint64(k), false)
		verts, ces := toClusterEdges(g)
		h := baswanaSenLocal(verts, ces, k, xrand.New(uint64(k)+7))
		hg := graph.New(g.N, h, false)
		if err := graph.CheckSpanner(g, hg, 2*k-1, 6, 3); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Size must be well below the input for dense graphs.
		bound := 8 * float64(k) * math.Pow(float64(g.N), 1+1/float64(k))
		if float64(len(h)) > bound {
			t.Fatalf("k=%d: spanner size %d > %f", k, len(h), bound)
		}
	}
}

func TestGreedySpannerStretchAndGirthSize(t *testing.T) {
	for _, k := range []int{2, 3} {
		g := graph.ConnectedGNM(100, 1500, uint64(k)+5, false)
		verts, ces := toClusterEdges(g)
		h := greedySpanner(verts, ces, k)
		hg := graph.New(g.N, h, false)
		if err := graph.CheckSpanner(g, hg, 2*k-1, 6, 3); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Greedy is the optimal-size construction: O(n^{1+1/k}).
		bound := 4 * math.Pow(float64(g.N), 1+1/float64(k))
		if float64(len(h)) > bound {
			t.Fatalf("k=%d: greedy size %d > %f", k, len(h), bound)
		}
	}
}

func TestModifiedBaswanaSenLemma43(t *testing.T) {
	// Lemma 4.3: stretch stays 2k-1; expected size O(k n^{1+1/k} / p).
	k := 3
	g := graph.ConnectedGNM(100, 2000, 11, false)
	verts, ces := toClusterEdges(g)
	full := baswanaSenLocal(verts, ces, k, xrand.New(42))
	sizes := map[float64]int{}
	for _, p := range []float64{1.0, 0.5, 0.25} {
		total := 0
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			h := modifiedBaswanaSenLocal(verts, ces, k, p, xrand.New(uint64(trial)*31+uint64(p*100)))
			hg := graph.New(g.N, h, false)
			if err := graph.CheckSpanner(g, hg, 2*k-1, 4, 5); err != nil {
				t.Fatalf("p=%f: %v", p, err)
			}
			total += len(h)
		}
		sizes[p] = total / trials
	}
	// Figure 1 behaviour: smaller p ⇒ larger over-approximation. Allow noise
	// but the ordering must hold between extremes.
	if sizes[0.25] < sizes[1.0] {
		t.Fatalf("sizes not increasing as p decreases: %v (full BS %d)", sizes, len(full))
	}
}

func TestSpannerDistributed(t *testing.T) {
	for _, tc := range []struct {
		n, m, k int
	}{
		{96, 800, 2},
		{128, 1500, 3},
		{160, 600, 4},
	} {
		g := graph.ConnectedGNM(tc.n, tc.m, uint64(tc.n), false)
		c := newCluster(t, g.N, g.M(), 9)
		res, err := Spanner(c, g, tc.k)
		if err != nil {
			t.Fatalf("n=%d m=%d k=%d: %v", tc.n, tc.m, tc.k, err)
		}
		h := graph.New(g.N, res.Edges, false)
		if err := graph.CheckSpanner(g, h, res.Stretch, 6, 3); err != nil {
			t.Fatalf("n=%d m=%d k=%d: %v", tc.n, tc.m, tc.k, err)
		}
		if len(res.Edges) >= g.M() && g.M() > 4*g.N {
			t.Fatalf("spanner did not sparsify: %d of %d edges", len(res.Edges), g.M())
		}
	}
}

func TestSpannerSizeScaling(t *testing.T) {
	// Theorem 4.1: size O(n^{1+1/k}). Check with a generous constant.
	n, m := 192, 3000
	g := graph.ConnectedGNM(n, m, 77, false)
	for _, k := range []int{2, 3, 5} {
		c := newCluster(t, n, m, uint64(k))
		res, err := Spanner(c, g, k)
		if err != nil {
			t.Fatal(err)
		}
		bound := 12 * float64(k) * math.Pow(float64(n), 1+1/float64(k))
		if float64(len(res.Edges)) > bound {
			t.Fatalf("k=%d: size %d > bound %f", k, len(res.Edges), bound)
		}
	}
}

func TestSpannerConstantRounds(t *testing.T) {
	// Theorem 4.1 headline: O(1) rounds. The round count must not grow with
	// n (compare two sizes) and must stay under a fixed constant.
	small := graph.ConnectedGNM(96, 768, 5, false)
	big := graph.ConnectedGNM(384, 3072, 5, false)
	cS := newCluster(t, small.N, small.M(), 3)
	rS, err := Spanner(cS, small, 3)
	if err != nil {
		t.Fatal(err)
	}
	cB := newCluster(t, big.N, big.M(), 3)
	rB, err := Spanner(cB, big, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rB.Stats.Rounds > rS.Stats.Rounds+30 {
		t.Fatalf("rounds grew with n: %d -> %d", rS.Stats.Rounds, rB.Stats.Rounds)
	}
	if rB.Stats.Rounds > 150 {
		t.Fatalf("spanner used %d rounds", rB.Stats.Rounds)
	}
}

func TestSpannerOnSparseAndTinyGraphs(t *testing.T) {
	// Path: spanner must keep connectivity (it is the only path).
	p := graph.Path(60)
	c := newCluster(t, p.N, p.M(), 3)
	res, err := Spanner(c, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != p.M() {
		t.Fatalf("path spanner dropped edges: %d of %d", len(res.Edges), p.M())
	}
	// Star: hub degree n-1.
	s := graph.Star(50)
	c2 := newCluster(t, s.N, s.M(), 3)
	res2, err := Spanner(c2, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	hg := graph.New(s.N, res2.Edges, false)
	if err := graph.CheckSpanner(s, hg, res2.Stretch, 4, 9); err != nil {
		t.Fatal(err)
	}
	// Empty graph.
	e := graph.New(10, nil, false)
	c3 := newCluster(t, 10, 0, 3)
	res3, err := Spanner(c3, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Edges) != 0 {
		t.Fatal("phantom spanner edges")
	}
}

func TestSpannerWeighted(t *testing.T) {
	g := graph.ConnectedGNM(100, 1200, 13, true)
	// Spread weights over several scales.
	for i := range g.Edges {
		g.Edges[i].W = g.Edges[i].W%64 + 1
	}
	c := newCluster(t, g.N, g.M(), 7)
	res, err := SpannerWeighted(c, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.New(g.N, res.Edges, true)
	if err := graph.CheckSpanner(g, h, res.Stretch, 5, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerDeterministic(t *testing.T) {
	g := graph.ConnectedGNM(100, 900, 3, false)
	run := func() []graph.Edge {
		c := newCluster(t, g.N, g.M(), 55)
		res, err := Spanner(c, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.Edges
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}
