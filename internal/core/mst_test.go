package core

import (
	"testing"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/unionfind"
	"hetmpc/internal/xrand"
)

func newCluster(t *testing.T, n, m int, seed uint64) *mpc.Cluster {
	t.Helper()
	c, err := mpc.New(mpc.Config{N: n, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func checkMSTRun(t *testing.T, g *graph.Graph, seed uint64) *MSTResult {
	t.Helper()
	c := newCluster(t, g.N, g.M(), seed)
	res, err := MST(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMST(g, res.Edges); err != nil {
		t.Fatal(err)
	}
	_, want := graph.KruskalMSF(g)
	if res.Weight != want {
		t.Fatalf("weight %d, want %d", res.Weight, want)
	}
	return res
}

func TestMSTRandomGraphs(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{64, 200},
		{128, 512},
		{200, 1200},
		{256, 400}, // sparse
	} {
		g := graph.GNMWeighted(tc.n, tc.m, uint64(tc.n))
		checkMSTRun(t, g, 7)
	}
}

func TestMSTConnectedDense(t *testing.T) {
	g := graph.ConnectedGNM(128, 2000, 5, true)
	res := checkMSTRun(t, g, 11)
	if len(res.Edges) != g.N-1 {
		t.Fatalf("spanning tree has %d edges", len(res.Edges))
	}
}

func TestMSTDisconnected(t *testing.T) {
	// Two components: MSF has n - 2 edges.
	a := graph.ConnectedGNM(40, 120, 1, false)
	b := graph.ConnectedGNM(40, 120, 2, false)
	edges := make([]graph.Edge, 0, a.M()+b.M())
	edges = append(edges, a.Edges...)
	for _, e := range b.Edges {
		edges = append(edges, graph.NewEdge(e.U+40, e.V+40, 1))
	}
	g := graph.New(80, edges, true)
	// unique weights
	for i := range g.Edges {
		g.Edges[i].W = int64(i) + 1
	}
	res := checkMSTRun(t, g, 3)
	if len(res.Edges) != 78 {
		t.Fatalf("MSF has %d edges, want 78", len(res.Edges))
	}
}

func TestMSTTinyAndEdgeCases(t *testing.T) {
	// Single edge.
	g := graph.New(2, []graph.Edge{graph.NewEdge(0, 1, 5)}, true)
	res := checkMSTRun(t, g, 1)
	if res.Weight != 5 {
		t.Fatalf("weight %d", res.Weight)
	}
	// Empty graph.
	empty := graph.New(8, nil, true)
	c := newCluster(t, 8, 0, 1)
	r, err := MST(c, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 0 {
		t.Fatal("phantom MST edges")
	}
	// Path (forest-like, m < n).
	p := graph.Path(50)
	for i := range p.Edges {
		p.Edges[i].W = int64(50 - i)
	}
	p.Weighted = true
	checkMSTRun(t, p, 9)
}

func TestMSTDeterministicAcrossRuns(t *testing.T) {
	g := graph.GNMWeighted(100, 500, 31)
	r1 := checkMSTRun(t, g, 77)
	r2 := checkMSTRun(t, g, 77)
	if r1.Weight != r2.Weight || len(r1.Edges) != len(r2.Edges) {
		t.Fatal("same seed produced different results")
	}
	for i := range r1.Edges {
		if r1.Edges[i] != r2.Edges[i] {
			t.Fatal("edge lists differ")
		}
	}
}

func TestMSTPhasesGrowWithDensity(t *testing.T) {
	// The headline shape: Borůvka phases ≈ log log(m/n). Denser graphs may
	// use more phases but the count must stay tiny (≤ loglog envelope).
	n := 256
	sparse := graph.GNMWeighted(n, 2*n, 1)
	dense := graph.GNMWeighted(n, 16*n, 2)
	cS := newCluster(t, n, sparse.M(), 5)
	rS, err := MST(cS, sparse)
	if err != nil {
		t.Fatal(err)
	}
	cD := newCluster(t, n, dense.M(), 5)
	rD, err := MST(cD, dense)
	if err != nil {
		t.Fatal(err)
	}
	if rS.BoruvkaPhases > 4 || rD.BoruvkaPhases > 5 {
		t.Fatalf("phases too high: sparse %d dense %d", rS.BoruvkaPhases, rD.BoruvkaPhases)
	}
	if err := graph.CheckMST(sparse, rS.Edges); err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMST(dense, rD.Edges); err != nil {
		t.Fatal(err)
	}
}

func TestMSTSuperlinearFewerPhases(t *testing.T) {
	// Theorem 3.1: with a superlinear large machine the phase budgets grow
	// as n^{f·2^i}, so fewer phases are needed.
	n, m := 256, 4096
	g := graph.GNMWeighted(n, m, 3)
	near := newCluster(t, n, m, 5)
	rNear, err := MST(near, g)
	if err != nil {
		t.Fatal(err)
	}
	super, err := mpc.New(mpc.Config{N: n, M: m, F: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rSuper, err := MST(super, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMST(g, rSuper.Edges); err != nil {
		t.Fatal(err)
	}
	if rSuper.BoruvkaPhases > rNear.BoruvkaPhases {
		t.Fatalf("superlinear used more phases (%d) than near-linear (%d)",
			rSuper.BoruvkaPhases, rNear.BoruvkaPhases)
	}
}

// TestKruskalOnCollectedIsUnsound documents DESIGN.md substitution 5: merging
// the per-vertex budget-truncated lightest edges Kruskal-style (as Algorithm
// 3 is written) can pick a non-MST edge; the budgeted active/inactive rule is
// required. This is the counterexample from the design document.
func TestKruskalOnCollectedIsUnsound(t *testing.T) {
	// S = {a=0, a'=1, a''=2}, T = {b=3, b'=4, b''=5}
	// a-a':1, a-a'':3, b-b':2, b-b'':4, f=(a,b):5, e=(a'',b''):6
	edges := []graph.Edge{
		graph.NewEdge(0, 1, 1),
		graph.NewEdge(0, 2, 3),
		graph.NewEdge(3, 4, 2),
		graph.NewEdge(3, 5, 4),
		graph.NewEdge(0, 3, 5),
		graph.NewEdge(2, 5, 6),
	}
	g := graph.New(6, edges, true)
	// Budget-2 per-vertex lightest lists exclude f=(0,3):5 (vertex 0's two
	// lightest are 1 and 3; vertex 3's are 2 and 4).
	collected := map[int64][]graph.Edge{}
	adj := g.Adj()
	for v := 0; v < g.N; v++ {
		hs := append([]graph.Half{}, adj[v]...)
		for i := 0; i < len(hs); i++ {
			for j := i + 1; j < len(hs); j++ {
				if hs[j].W < hs[i].W {
					hs[i], hs[j] = hs[j], hs[i]
				}
			}
		}
		for i := 0; i < len(hs) && i < 2; i++ {
			collected[int64(v)] = append(collected[int64(v)], graph.NewEdge(v, hs[i].To, hs[i].W))
		}
	}
	// Naive Kruskal over collected edges picks e (weight 6): total 16.
	var flat []graph.Edge
	for _, es := range collected {
		flat = append(flat, es...)
	}
	gSub := graph.New(6, flat, true)
	_, naiveW := graph.KruskalMSF(gSub)
	_, trueW := graph.KruskalMSF(g)
	if naiveW <= trueW {
		t.Fatalf("counterexample broken: naive %d true %d", naiveW, trueW)
	}
	// The full distributed algorithm must still get it right.
	checkMSTRun(t, g, 13)
}

func TestMSTRoundsAreModest(t *testing.T) {
	g := graph.GNMWeighted(256, 2048, 17)
	res := checkMSTRun(t, g, 23)
	// Phases are O(loglog) and each phase is O(1) rounds through the
	// toolbox; the entire run must stay well under any Θ(log n) behaviour
	// blow-up (log2(256) = 8 phases of Borůvka would be ~8x this).
	if res.Stats.Rounds > 400 {
		t.Fatalf("MST used %d rounds", res.Stats.Rounds)
	}
	if res.SampleTries > 4 {
		t.Fatalf("too many sampling tries: %d", res.SampleTries)
	}
}

// TestKKTSamplingBound empirically validates Lemma 3.2 (the KKT sampling
// lemma): E[#F-light edges] ≤ n/p, using the labeling machinery directly.
func TestKKTSamplingBound(t *testing.T) {
	n, m := 100, 2000
	g := graph.GNMWeighted(n, m, 21)
	rng := xrand.New(5)
	for _, p := range []float64{0.1, 0.3, 0.5} {
		totalLight := 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			var sample []graph.Edge
			for _, e := range g.Edges {
				if rng.Float64() < p {
					sample = append(sample, e)
				}
			}
			f, _ := graph.KruskalMSF(graph.New(n, sample, true))
			labels := labelingBuild(n, f)
			for _, e := range g.Edges {
				if labelingFLight(e, labels) {
					totalLight++
				}
			}
		}
		avg := float64(totalLight) / trials
		bound := 3 * float64(n) / p // 3x slack over the expectation bound
		if avg > bound {
			t.Fatalf("p=%.1f: avg F-light %.1f > %.1f", p, avg, bound)
		}
	}
}

// Local helpers so the test reads like the lemma.
func labelingBuild(n int, f []graph.Edge) labelsT { return labelsT{n: n, f: f} }

type labelsT struct {
	n int
	f []graph.Edge
}

func labelingFLight(e graph.Edge, l labelsT) bool {
	// Reference implementation: BFS path max in the forest.
	adj := make([][]graph.Half, l.n)
	for _, fe := range l.f {
		adj[fe.U] = append(adj[fe.U], graph.Half{To: fe.V, W: fe.W})
		adj[fe.V] = append(adj[fe.V], graph.Half{To: fe.U, W: fe.W})
	}
	type st struct {
		v   int
		max graph.Edge
	}
	seen := make([]bool, l.n)
	seen[e.U] = true
	queue := []st{{v: e.U}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.v == e.V {
			return !cur.max.Less(e)
		}
		for _, h := range adj[cur.v] {
			if !seen[h.To] {
				seen[h.To] = true
				m := cur.max
				ne := graph.NewEdge(cur.v, h.To, h.W)
				if m.W == 0 || m.Less(ne) {
					m = ne
				}
				queue = append(queue, st{v: h.To, max: m})
			}
		}
	}
	return true // different trees
}

func TestMSTComponentsPreserved(t *testing.T) {
	// Output must span exactly the graph's components.
	g := graph.Cycles(60, 3, 4)
	for i := range g.Edges {
		g.Edges[i].W = int64(i) + 1
	}
	g.Weighted = true
	res := checkMSTRun(t, g, 2)
	dsu := unionfind.New(g.N)
	for _, e := range res.Edges {
		dsu.Union(e.U, e.V)
	}
	if dsu.Count() != 3 {
		t.Fatalf("MSF components %d, want 3", dsu.Count())
	}
}
