package core

import (
	"testing"
	"testing/quick"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
)

// TestMSTQuickRandomGraphs property-tests the full distributed MST against
// Kruskal over random shapes, densities and seeds.
func TestMSTQuickRandomGraphs(t *testing.T) {
	prop := func(seed uint64, dense bool) bool {
		n := 48 + int(seed%64)
		m := 3 * n
		if dense {
			m = 10 * n
		}
		g := graph.GNMWeighted(n, m, seed%997)
		c, err := mpc.New(mpc.Config{N: n, M: g.M(), Seed: seed})
		if err != nil {
			return false
		}
		res, err := MST(c, g)
		if err != nil {
			return false
		}
		return graph.CheckMST(g, res.Edges) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSpannerQuick property-tests the spanner: subgraph, connectivity
// preserved, stretch bound holds on sampled pairs.
func TestSpannerQuick(t *testing.T) {
	prop := func(seed uint64, kPick uint8) bool {
		k := 2 + int(kPick)%3
		n := 64 + int(seed%32)
		g := graph.ConnectedGNM(n, 6*n, seed%997, false)
		c, err := mpc.New(mpc.Config{N: n, M: g.M(), Seed: seed})
		if err != nil {
			return false
		}
		res, err := Spanner(c, g, k)
		if err != nil {
			return false
		}
		h := graph.New(n, res.Edges, false)
		return graph.CheckSpanner(g, h, res.Stretch, 3, seed) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestMatchingQuick property-tests maximal matching across degree profiles.
func TestMatchingQuick(t *testing.T) {
	prop := func(seed uint64, hubby bool) bool {
		n := 96 + int(seed%64)
		var g *graph.Graph
		if hubby {
			g = graph.PlantedHubs(n, 3, 2, n/2, seed%997)
		} else {
			g = graph.GNM(n, 4*n, seed%997)
		}
		c, err := mpc.New(mpc.Config{N: n, M: g.M(), Seed: seed})
		if err != nil {
			return false
		}
		res, err := MaximalMatching(c, g)
		if err != nil {
			return false
		}
		return graph.CheckMatching(g, res.Edges, true) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmsOnCompleteGraph(t *testing.T) {
	// K_n stresses every degree-dependent path (Δ = n-1, m = n(n-1)/2).
	g := graph.Complete(64, true, 3)
	c := newCluster(t, g.N, g.M(), 5)
	mst, err := MST(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMST(g, mst.Edges); err != nil {
		t.Fatal(err)
	}
	gu := g.Unweighted()
	c2 := newCluster(t, gu.N, gu.M(), 5)
	mm, err := MaximalMatching(c2, gu)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.CheckMatching(gu, mm.Edges, true); err != nil {
		t.Fatal(err)
	}
	if len(mm.Edges) != 32 {
		t.Fatalf("K_64 perfect matching has 32 edges, got %d", len(mm.Edges))
	}
	c3 := newCluster(t, gu.N, gu.M(), 5)
	mis, err := MIS(c3, gu)
	if err != nil {
		t.Fatal(err)
	}
	if len(mis.Set) != 1 {
		t.Fatalf("K_64 MIS has 1 vertex, got %d", len(mis.Set))
	}
	c4 := newCluster(t, gu.N, gu.M(), 5)
	sp, err := Spanner(c4, gu, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.New(gu.N, sp.Edges, false)
	if err := graph.CheckSpanner(gu, h, sp.Stretch, 4, 9); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerK1IsWholeGraphSafe(t *testing.T) {
	// k=1: stretch bound 5; the algorithm must not crash and must produce a
	// valid (possibly large) spanner.
	g := graph.ConnectedGNM(80, 400, 7, false)
	c := newCluster(t, g.N, g.M(), 3)
	res, err := Spanner(c, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.New(g.N, res.Edges, false)
	if err := graph.CheckSpanner(g, h, res.Stretch, 4, 5); err != nil {
		t.Fatal(err)
	}
}

func TestGammaVariants(t *testing.T) {
	// The model parameter γ changes K and the capacities; algorithms must
	// work across the range.
	g := graph.GNMWeighted(128, 1024, 9)
	for _, gamma := range []float64{0.3, 0.5, 0.7} {
		c, err := mpc.New(mpc.Config{N: g.N, M: g.M(), Gamma: gamma, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := MST(c, g)
		if err != nil {
			t.Fatalf("gamma=%.1f: %v", gamma, err)
		}
		if err := graph.CheckMST(g, res.Edges); err != nil {
			t.Fatalf("gamma=%.1f: %v", gamma, err)
		}
	}
}

func TestConnectivityAllIsolated(t *testing.T) {
	g := graph.New(40, nil, false)
	c := newCluster(t, g.N, 0, 3)
	res, err := Connectivity(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 40 {
		t.Fatalf("components %d, want 40", res.Components)
	}
}

func TestMISQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		n := 64 + int(seed%48)
		g := graph.GNM(n, 5*n, seed%997)
		c, err := mpc.New(mpc.Config{N: n, M: g.M(), Seed: seed})
		if err != nil {
			return false
		}
		res, err := MIS(c, g)
		if err != nil {
			return false
		}
		return graph.CheckMIS(g, res.Set) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestColoringQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		n := 64 + int(seed%48)
		g := graph.GNM(n, 4*n, seed%997)
		c, err := mpc.New(mpc.Config{N: n, M: g.M(), Seed: seed})
		if err != nil {
			return false
		}
		res, err := Coloring(c, g)
		if err != nil {
			return false
		}
		return graph.CheckColoring(g, res.Colors, res.MaxColor) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
