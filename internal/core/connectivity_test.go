package core

import (
	"testing"

	"hetmpc/internal/graph"
)

func checkConnectivity(t *testing.T, g *graph.Graph, seed uint64) *ConnectivityResult {
	t.Helper()
	c := newCluster(t, g.N, g.M(), seed)
	res, err := Connectivity(c, g)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels, wantCC := graph.Components(g)
	if res.Components != wantCC {
		t.Fatalf("components %d, want %d", res.Components, wantCC)
	}
	for v := range wantLabels {
		if res.Labels[v] != wantLabels[v] {
			t.Fatalf("label of %d: got %d want %d", v, res.Labels[v], wantLabels[v])
		}
	}
	return res
}

func TestConnectivityVariousTopologies(t *testing.T) {
	checkConnectivity(t, graph.GNM(96, 300, 3), 5)
	checkConnectivity(t, graph.Cycles(90, 3, 7), 5)
	checkConnectivity(t, graph.Grid(8, 12), 5)
	checkConnectivity(t, graph.Star(64), 5)
	checkConnectivity(t, graph.Path(80), 5)
	// Isolated vertices plus a clique.
	k := graph.Complete(10, false, 1)
	g := graph.New(30, k.Edges, false)
	checkConnectivity(t, g, 5)
	// Empty graph: n components.
	checkConnectivity(t, graph.New(12, nil, false), 5)
}

func TestConnectivityManyComponents(t *testing.T) {
	// 10 small cliques.
	var edges []graph.Edge
	for b := 0; b < 10; b++ {
		base := b * 8
		for u := 0; u < 8; u++ {
			for v := u + 1; v < 8; v++ {
				edges = append(edges, graph.NewEdge(base+u, base+v, 1))
			}
		}
	}
	g := graph.New(80, edges, false)
	res := checkConnectivity(t, g, 9)
	if res.Components != 10 {
		t.Fatalf("components %d", res.Components)
	}
}

func TestConnectivityConstantRounds(t *testing.T) {
	// The whole point of Theorem C.1: rounds must not grow with n.
	small := graph.GNM(64, 200, 1)
	big := graph.GNM(256, 800, 1)
	cS := newCluster(t, small.N, small.M(), 3)
	rS, err := Connectivity(cS, small)
	if err != nil {
		t.Fatal(err)
	}
	cB := newCluster(t, big.N, big.M(), 3)
	rB, err := Connectivity(cB, big)
	if err != nil {
		t.Fatal(err)
	}
	if rB.Stats.Rounds > rS.Stats.Rounds+10 {
		t.Fatalf("rounds grew with n: %d -> %d", rS.Stats.Rounds, rB.Stats.Rounds)
	}
	if rB.Stats.Rounds > 60 {
		t.Fatalf("connectivity used %d rounds", rB.Stats.Rounds)
	}
}

func TestConnectivityDeterministic(t *testing.T) {
	g := graph.GNM(100, 250, 17)
	a := checkConnectivity(t, g, 7)
	b := checkConnectivity(t, g, 7)
	if a.Phases != b.Phases {
		t.Fatalf("nondeterministic phases: %d vs %d", a.Phases, b.Phases)
	}
}

func TestApproxMSTWeight(t *testing.T) {
	g := graph.ConnectedGNM(64, 400, 11, true)
	// Compress weights so the threshold count stays small.
	for i := range g.Edges {
		g.Edges[i].W = g.Edges[i].W%32 + 1
	}
	_, exact := graph.KruskalMSF(g)
	for _, eps := range []float64{0.5, 0.25} {
		c := newCluster(t, g.N, g.M(), 3)
		res, err := ApproxMSTWeight(c, g, eps)
		if err != nil {
			t.Fatal(err)
		}
		lo := float64(exact) * 0.9
		hi := float64(exact) * (1 + eps) * 1.1
		if float64(res.Estimate) < lo || float64(res.Estimate) > hi {
			t.Fatalf("eps=%.2f: estimate %d outside [%f, %f] (exact %d)",
				eps, res.Estimate, lo, hi, exact)
		}
	}
}

func TestApproxMSTTighterEpsIsCloser(t *testing.T) {
	g := graph.ConnectedGNM(72, 300, 23, true)
	for i := range g.Edges {
		g.Edges[i].W = g.Edges[i].W%64 + 1
	}
	_, exact := graph.KruskalMSF(g)
	errAt := func(eps float64) float64 {
		c := newCluster(t, g.N, g.M(), 5)
		res, err := ApproxMSTWeight(c, g, eps)
		if err != nil {
			t.Fatal(err)
		}
		d := float64(res.Estimate - exact)
		if d < 0 {
			d = -d
		}
		return d / float64(exact)
	}
	coarse, fine := errAt(1.0), errAt(0.1)
	if fine > coarse+0.05 {
		t.Fatalf("finer eps gave worse error: %.3f vs %.3f", fine, coarse)
	}
	if fine > 0.2 {
		t.Fatalf("eps=0.1 error too large: %.3f", fine)
	}
}
