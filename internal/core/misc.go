package core

import (
	"fmt"
	"math"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
)

// TwoVsOneCycleResult is the output of the motivating §1 problem.
type TwoVsOneCycleResult struct {
	Cycles int // number of cycles (connected components)
	Stats  Stats
}

// TwoVsOneCycle solves the "2-vs-1 cycle" problem — the source of the
// sublinear regime's conditional hardness — in O(1) rounds, exactly as the
// paper's introduction observes: the input has only n edges, so a single
// machine with Ω(n log n) memory can hold the entire graph.
func TwoVsOneCycle(c *mpc.Cluster, g *graph.Graph) (*TwoVsOneCycleResult, error) {
	if !c.HasLarge() {
		// That one machine can hold the whole input is the point.
		return nil, errNeedsLarge("TwoVsOneCycle")
	}
	if len(g.Edges) != g.N {
		return nil, fmt.Errorf("core: input is not a disjoint union of cycles (m=%d, n=%d)", len(g.Edges), g.N)
	}
	sp := c.Span("2v1")
	res := &TwoVsOneCycleResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	all, err := prims.GatherToLarge(c, edges, prims.EdgeWords)
	if err != nil {
		return nil, err
	}
	_, res.Cycles = graph.ComponentsOf(g.N, all)
	return res, nil
}

// APSPOracle answers approximate all-pairs-shortest-path queries from an
// O(log n)-spanner stored on the large machine (Corollary 4.2).
type APSPOracle struct {
	Spanner    *graph.Graph
	Stretch    int // guaranteed multiplicative stretch (O(log n))
	BuildStats Stats

	adj   [][]graph.Half
	cache map[int][]int64 // per-source distance cache (large-machine local)
}

// BuildAPSPOracle constructs the oracle in O(1) rounds: an O(log n)-spanner
// of size Õ(n) is computed (Theorem 4.1 with k = log n) and kept on the
// large machine; queries are answered locally from the spanner.
func BuildAPSPOracle(c *mpc.Cluster, g *graph.Graph) (*APSPOracle, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("BuildAPSPOracle")
	}
	sp := c.Span("apsp")
	o := &APSPOracle{}
	defer func() { o.BuildStats = statsOf(sp.End()) }()
	k := int(math.Ceil(math.Log2(float64(g.N) + 2)))
	var (
		res *SpannerResult
		err error
	)
	if g.Weighted {
		res, err = SpannerWeighted(c, g, k)
	} else {
		res, err = Spanner(c, g, k)
	}
	if err != nil {
		return nil, err
	}
	h := graph.New(g.N, res.Edges, g.Weighted)
	o.Spanner = h
	o.Stretch = res.Stretch
	o.adj = h.Adj()
	o.cache = make(map[int][]int64)
	return o, nil
}

// Dist returns the oracle's distance estimate between u and v: at most
// Stretch times the true distance, and never below it. Unreachable pairs
// return math.MaxInt64.
func (o *APSPOracle) Dist(u, v int) int64 {
	d, ok := o.cache[u]
	if !ok {
		if o.Spanner.Weighted {
			d = graph.DijkstraDist(o.adj, u)
		} else {
			bfs := graph.BFSDist(o.adj, u)
			d = make([]int64, len(bfs))
			for i, x := range bfs {
				if x == math.MaxInt {
					d[i] = math.MaxInt64
				} else {
					d[i] = int64(x)
				}
			}
		}
		o.cache[u] = d
	}
	return d[v]
}
