package core

import (
	"cmp"
	"math"
	"slices"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// MISResult is the output of the Appendix C.4 algorithm.
type MISResult struct {
	Set        []int
	Iterations int // rank-prefix iterations; O(log log Δ) by [26]
	Stats      Stats
}

// MIS computes a maximal independent set in O(log log Δ) iterations of O(1)
// rounds each (Theorem C.6, after Ghaffari et al. [26]): a shared random
// vertex priority simulates the random permutation; iteration i ships to the
// large machine every still-alive edge whose endpoints both have priority at
// most τ_i = Δ^{-(3/4)^i} (Õ(n) edges w.h.p.), the large machine extends the
// greedy-by-priority MIS, and dominated vertices are announced back through
// aggregation and dissemination.
func MIS(c *mpc.Cluster, g *graph.Graph) (*MISResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("MIS")
	}
	sp := c.Span("mis")
	n := g.N
	res := &MISResult{}
	defer func() { res.Stats = statsOf(sp.End()) }()
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()
	needs := endpointNeedsOf(edges)

	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	prio := xrand.NewHash(xrand.Split(seed, 1), 6)
	pr := func(v int) float64 { return prio.Eval01(uint64(v) + 1) }

	// Δ via aggregation (needed for the prefix schedule).
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			degItems[i] = append(degItems[i],
				prims.KV[int64]{K: int64(e.U), V: 1},
				prims.KV[int64]{K: int64(e.V), V: 1})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, degAtLarge, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return nil, err
	}
	maxDeg := float64(1)
	for _, d := range degAtLarge {
		if float64(d) > maxDeg {
			maxDeg = float64(d)
		}
	}

	// Prefix thresholds τ_i = Δ^{-(3/4)^i}, ending with τ = 1.
	var taus []float64
	alpha := 0.75
	for e := 1.0; ; e *= alpha {
		tau := math.Pow(maxDeg, -e)
		taus = append(taus, tau)
		if math.Pow(maxDeg, e) <= 2 { // Δ^{α^i} ≤ 2 ⇒ prefix ≈ everything
			break
		}
		if len(taus) > 64 {
			break
		}
	}
	taus = append(taus, 1.0)
	tauList, err := prims.BroadcastValue(c, taus, len(taus))
	if err != nil {
		return nil, err
	}

	// Large-machine state: alive flags, accumulated alive edges, the MIS.
	aliveLarge := make([]bool, n)
	for v := range aliveLarge {
		aliveLarge[v] = true
	}
	inMIS := make([]bool, n)
	processed := make([]bool, n) // vertices already decided by greedy
	accAdj := make(map[int][]int)
	// Machines' view of dead vertices.
	deadMaps := make([]map[int64]bool, kk)
	for i := range deadMaps {
		deadMaps[i] = map[int64]bool{}
	}

	for it, tau := range taus {
		// Early exit: with no alive-alive edges left, the alive vertices are
		// pairwise non-adjacent and all join the MIS.
		aliveCounts := make([]int64, kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if !deadMaps[i][int64(e.U)] && !deadMaps[i][int64(e.V)] {
					aliveCounts[i]++
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		aliveEdges, err := prims.SumAll(c, aliveCounts)
		if err != nil {
			return nil, err
		}
		if aliveEdges == 0 {
			break
		}
		res.Iterations++
		// Ship alive prefix edges.
		batch := make([][]graph.Edge, kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if deadMaps[i][int64(e.U)] || deadMaps[i][int64(e.V)] {
					continue
				}
				if pr(e.U) <= tauList[i][it] && pr(e.V) <= tauList[i][it] {
					batch[i] = append(batch[i], e)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		got, err := prims.GatherToLarge(c, batch, prims.EdgeWords)
		if err != nil {
			return nil, err
		}
		for _, e := range got {
			accAdj[e.U] = append(accAdj[e.U], e.V)
			accAdj[e.V] = append(accAdj[e.V], e.U)
		}
		// Greedy by priority over the alive prefix.
		prefix := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if aliveLarge[v] && !processed[v] && pr(v) <= tau {
				prefix = append(prefix, v)
			}
		}
		slices.SortFunc(prefix, func(a, b int) int {
			if c := cmp.Compare(pr(a), pr(b)); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		var newlyDead []int
		for _, v := range prefix {
			if !aliveLarge[v] {
				continue
			}
			inMIS[v] = true
			processed[v] = true
			for _, u := range accAdj[v] {
				if aliveLarge[u] && u != v {
					aliveLarge[u] = false
					processed[u] = true
					newlyDead = append(newlyDead, u)
				}
			}
			newlyDead = append(newlyDead, v) // MIS vertices also leave the graph
			aliveLarge[v] = false
		}

		// Announce the MIS additions; machines derive local domination and
		// aggregate it so every holder of a dominated vertex's edges learns.
		misVals := make(map[int64]bool, len(newlyDead))
		for v := 0; v < n; v++ {
			if inMIS[v] {
				misVals[int64(v)] = true
			}
		}
		misMaps, err := prims.DisseminateFromLarge(c, needs, misVals, 1)
		if err != nil {
			return nil, err
		}
		domItems := make([][]prims.KV[bool], kk)
		if err := c.ForSmall(func(i int) error {
			for _, e := range edges[i] {
				if misMaps[i][int64(e.U)] {
					domItems[i] = append(domItems[i], prims.KV[bool]{K: int64(e.V), V: true})
				}
				if misMaps[i][int64(e.V)] {
					domItems[i] = append(domItems[i], prims.KV[bool]{K: int64(e.U), V: true})
				}
				if misMaps[i][int64(e.U)] {
					domItems[i] = append(domItems[i], prims.KV[bool]{K: int64(e.U), V: true})
				}
				if misMaps[i][int64(e.V)] {
					domItems[i] = append(domItems[i], prims.KV[bool]{K: int64(e.V), V: true})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		domRoots, domLarge, err := prims.AggregateByKey(c, domItems, 1,
			func(a, b bool) bool { return a || b }, true)
		if err != nil {
			return nil, err
		}
		domKVs := rootsToKVsCore(c, domRoots)
		gotDead, err := prims.SegmentedBroadcast(c, needs, domKVs, nil, 1)
		if err != nil {
			return nil, err
		}
		if err := c.ForSmall(func(i int) error {
			for key, dead := range gotDead[i] {
				if dead {
					deadMaps[i][key] = true
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// The large machine also learns which vertices died via edges it
		// never saw (a dominated vertex with all its edges off-prefix).
		for v := range domLarge {
			if domLarge[v] && aliveLarge[v] {
				aliveLarge[v] = false
				processed[v] = true
			}
		}
	}

	// Any vertices still alive have no alive edges left: they join the MIS
	// (this also covers the early-exit path and isolated vertices).
	set := make([]int, 0, n/2)
	for v := 0; v < n; v++ {
		if inMIS[v] || aliveLarge[v] {
			set = append(set, v)
		}
	}
	res.Set = set
	return res, nil
}

// rootsToKVsCore mirrors sublinear.rootsToKVs for this package.
func rootsToKVsCore[V any](c *mpc.Cluster, roots []map[int64]V) [][]prims.KV[V] {
	out := make([][]prims.KV[V], c.K())
	for i := range roots {
		out[i] = make([]prims.KV[V], 0, len(roots[i]))
		for key, v := range roots[i] {
			out[i] = append(out[i], prims.KV[V]{K: key, V: v})
		}
		prims.SortKVsByKey(out[i])
	}
	return out
}
